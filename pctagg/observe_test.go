package pctagg

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestQueryTracedVertical(t *testing.T) {
	db := demoDB(t)
	rows, root, err := db.QueryTraced(
		"SELECT state, city, Vpct(salesAmt BY city) FROM sales GROUP BY state, city")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 4 {
		t.Fatalf("data = %v", rows.Data)
	}
	if root == nil || root.Name != "query" || root.Duration <= 0 {
		t.Fatalf("root = %v", root)
	}
	for _, frag := range []string{"parse", "plan vertical", "divide", "statement", "final select", "cleanup"} {
		if root.Find(frag) == nil {
			t.Errorf("trace lacks %q span:\n%s", frag, root.Format())
		}
	}
	// The division-join step must nest the actual join statement.
	if div := root.Find("divide"); div != nil && div.Find("statement") == nil {
		t.Errorf("division step has no statement span:\n%s", div.Format())
	}
}

func TestTraceSinkReceivesQueries(t *testing.T) {
	db := demoDB(t)
	var got []*Span
	db.SetTraceSink(func(s *Span) { got = append(got, s) })
	if _, err := db.Query("SELECT state, Hpct(salesAmt BY city) FROM sales GROUP BY state"); err != nil {
		t.Fatal(err)
	}
	db.SetTraceSink(nil)
	if _, err := db.Query("SELECT count(*) FROM sales"); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("sink received %d traces, want 1 (detach must stick)", len(got))
	}
	if got[0].Find("plan horizontal") == nil {
		t.Errorf("trace lacks plan span:\n%s", got[0].Format())
	}
}

func TestExplainAnalyzePercentageQuery(t *testing.T) {
	db := demoDB(t)
	rows, err := db.Query("EXPLAIN ANALYZE SELECT state, city, Vpct(salesAmt BY city) FROM sales GROUP BY state, city")
	if err != nil {
		t.Fatal(err)
	}
	var text strings.Builder
	for _, r := range rows.Data {
		text.WriteString(r[0].(string))
		text.WriteByte('\n')
	}
	out := text.String()
	for _, frag := range []string{"plan vertical", "step: ", "divide", "Execution: rows=4", "out="} {
		if !strings.Contains(out, frag) {
			t.Errorf("EXPLAIN ANALYZE lacks %q:\n%s", frag, out)
		}
	}
	// Plain EXPLAIN still shows the generated SQL script, and must not leave
	// temporaries behind.
	rows, err = db.Query("EXPLAIN SELECT state, city, Vpct(salesAmt BY city) FROM sales GROUP BY state, city")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) == 0 || !strings.Contains(rows.Data[0][0].(string), "--") {
		t.Errorf("plain EXPLAIN output = %v", rows.Data)
	}
	if n := len(db.Tables()); n != 1 {
		t.Errorf("EXPLAIN leaked temporaries: tables = %v", db.Tables())
	}
}

func TestSlowQueryLogAPI(t *testing.T) {
	db := demoDB(t)
	var buf bytes.Buffer
	db.SetSlowQueryLog(&buf, 0)
	if _, err := db.Query("SELECT count(*) FROM sales"); err != nil {
		t.Fatal(err)
	}
	db.SetSlowQueryLog(nil, time.Second)
	if !strings.Contains(buf.String(), "slow query (") {
		t.Errorf("slow log = %q", buf.String())
	}
}

func TestQueryMetrics(t *testing.T) {
	db := demoDB(t)
	vpct, plain := mQueryVpct.Value(), mQueryPlain.Value()
	if _, err := db.Query("SELECT state, city, Vpct(salesAmt BY city) FROM sales GROUP BY state, city"); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query("SELECT count(*) FROM sales"); err != nil {
		t.Fatal(err)
	}
	if got := mQueryVpct.Value() - vpct; got != 1 {
		t.Errorf("vpct delta = %d, want 1", got)
	}
	if got := mQueryPlain.Value() - plain; got != 1 {
		t.Errorf("plain delta = %d, want 1", got)
	}

	// A planner rejection counts under its PCTxxx diagnostic code.
	if _, err := db.Query("SELECT state, Vpct(salesAmt BY state) FROM sales GROUP BY state"); err == nil {
		t.Fatal("expected rejection")
	}
	if obs.Default.Counter("query.errors.PCT017").Value() == 0 {
		t.Errorf("PCT017 rejection not counted; metrics:\n%s", db.MetricsJSON())
	}
}

func TestMetricsJSON(t *testing.T) {
	db := demoDB(t)
	if _, err := db.Query("SELECT count(*) FROM sales"); err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal([]byte(db.MetricsJSON()), &m); err != nil {
		t.Fatalf("MetricsJSON is not valid JSON: %v", err)
	}
	for _, name := range []string{"engine.statements", "engine.rows.scanned", "query.plain"} {
		if _, ok := m[name]; !ok {
			t.Errorf("MetricsJSON lacks %q", name)
		}
	}
}

// TestMetricNamesStable is the registry guard: every metric name registered
// anywhere in the process must be unique (the registry panics on kind
// clashes, so uniqueness is given) and must either be one of the pinned
// stable names below or match a known dynamic prefix. Renaming or dropping a
// pinned name is a breaking change to dashboards — update this list
// deliberately.
func TestMetricNamesStable(t *testing.T) {
	db := demoDB(t)
	// Exercise every layer once so lazily-registered names exist.
	if _, err := db.Query("SELECT state, city, Vpct(salesAmt BY city) FROM sales GROUP BY state, city"); err != nil {
		t.Fatal(err)
	}
	pinned := []string{
		"batch.fallbacks",
		"batch.fold.rows",
		"batch.folds",
		"batch.pivot.fallbacks",
		"batch.pivot.folds",
		"batch.pool.gets",
		"batch.pool.hits",
		"batch.pool.misses",
		"batch.pool.puts",
		"cache.delta_applied",
		"cache.delta_fallback",
		"cache.fj_rollup",
		"cache.hits",
		"cache.invalidations",
		"cache.lattice_finest_reused",
		"cache.lattice_nodes",
		"cache.lattice_plans",
		"cache.misses",
		"core.plans",
		"core.steps",
		"engine.agg.budget_fallback",
		"engine.agg.parallel",
		"engine.agg.seq_fallback",
		"engine.cancelled",
		"engine.limits.exceeded",
		"engine.panics",
		"engine.errors",
		"engine.groups.emitted",
		"engine.join.builds",
		"engine.join.index_reuse",
		"engine.rows.scanned",
		"engine.statement.ns",
		"engine.statements",
		"introspect.recorded",
		"introspect.self_skipped",
		"introspect.snapshots",
		"query.hagg",
		"query.hpct",
		"query.plain",
		"query.vpct",
	}
	names := obs.Default.Names()
	have := make(map[string]bool, len(names))
	seen := make(map[string]bool, len(names))
	for _, n := range names {
		if seen[n] {
			t.Errorf("duplicate metric name %q", n)
		}
		seen[n] = true
		have[n] = true
	}
	for _, p := range pinned {
		if !have[p] {
			t.Errorf("pinned metric %q not registered", p)
		}
		delete(have, p)
	}
	for n := range have {
		if !strings.HasPrefix(n, "query.errors.") {
			t.Errorf("unpinned metric %q: add it to the pinned list or a dynamic prefix", n)
		}
	}
}
