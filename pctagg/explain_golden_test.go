package pctagg

import (
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/workload"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden EXPLAIN files")

// goldenDB loads a miniature — but seeded, hence fully deterministic —
// version of the papers' employee and sales data sets and wraps the bench
// suite's engine in a DB, so the goldens exercise the public
// EXPLAIN / EXPLAIN ANALYZE surface over the eight primary paper queries.
// Parallelism is pinned to 1: worker fan-out spans depend on GOMAXPROCS
// and have their own tests.
func goldenDB(t *testing.T) (*DB, *bench.Suite) {
	t.Helper()
	cards := workload.PaperCardinalities()
	cards.Dept = 3
	cards.Store = 2 // widest Hpct: 3×2 = 6 columns — keeps goldens readable
	cfg := bench.Config{
		EmployeeN: 300, SalesN: 600, TransN1: 1, TransN2: 1, CensusN: 1,
		Seed: 7, Cards: cards, Reps: 1,
	}
	s, err := bench.NewSuite(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, ds := range []string{"employee", "sales"} {
		if err := s.Ensure(ds); err != nil {
			t.Fatal(err)
		}
	}
	db := &DB{eng: s.Eng, planner: s.Planner, strat: DefaultStrategies(), par: 1}
	db.eng.SetParallelism(1)
	return db, s
}

var (
	// Temp tables and indexes are numbered by a per-planner sequence that
	// keeps counting across queries; the number carries no information.
	tempSeqRe = regexp.MustCompile(`(pct_[a-z]+_)\d+`)
	// Span durations are wall-clock readings in Go duration syntax.
	durRe  = regexp.MustCompile(`\((\d+(\.\d+)?(ns|µs|ms|s|m|h))+\)`)
	timeRe = regexp.MustCompile(`time=\S+`)
)

// normalizeExplain strips the run-dependent parts of EXPLAIN output:
// temp-table sequence numbers, span durations, and the total-time summary.
func normalizeExplain(line string) string {
	line = tempSeqRe.ReplaceAllString(line, "${1}N")
	line = durRe.ReplaceAllString(line, "(DUR)")
	line = timeRe.ReplaceAllString(line, "time=DUR")
	return line
}

// explainGolden renders EXPLAIN (or EXPLAIN ANALYZE) for the Vpct and Hpct
// form of every primary query into one normalized text block.
func explainGolden(t *testing.T, db *DB, s *bench.Suite, analyze bool) string {
	t.Helper()
	kw := "EXPLAIN "
	if analyze {
		kw = "EXPLAIN ANALYZE "
	}
	var sb strings.Builder
	for _, q := range s.PrimaryQueries() {
		for _, sql := range []string{q.VpctSQL(), q.HpctSQL()} {
			rows, err := db.Query(kw + sql)
			if err != nil {
				t.Fatalf("%s%s: %v", kw, sql, err)
			}
			sb.WriteString("===== " + sql + " =====\n")
			for _, r := range rows.Data {
				sb.WriteString(normalizeExplain(r[0].(string)))
				sb.WriteByte('\n')
			}
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// TestExplainGolden pins the generated multi-statement SQL that plain
// EXPLAIN shows for the eight primary paper queries (both percentage
// forms). Codegen regressions show up as a readable text diff. Regenerate
// after intentional changes with:
//
//	go test ./pctagg/ -run ExplainGolden -update
func TestExplainGolden(t *testing.T) {
	db, s := goldenDB(t)
	compareGolden(t, "explain.golden", explainGolden(t, db, s, false))
	if n := len(db.Tables()); n != 2 {
		t.Errorf("EXPLAIN leaked temporaries: tables = %v", db.Tables())
	}
}

// TestExplainAnalyzeGolden pins the execution trace shape — span nesting,
// stage names, actual row counts — with durations normalized out. Every
// operator a primary query touches (scan, join build/probe, fold, pivot,
// the Vpct division join) must keep its place in the tree.
func TestExplainAnalyzeGolden(t *testing.T) {
	db, s := goldenDB(t)
	compareGolden(t, "explain_analyze.golden", explainGolden(t, db, s, true))
	if n := len(db.Tables()); n != 2 {
		t.Errorf("EXPLAIN ANALYZE leaked temporaries: tables = %v", db.Tables())
	}
}

func compareGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden file %s rewritten (%d bytes)", name, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create it): %v", err)
	}
	if got != string(want) {
		gl, wl := strings.Split(got, "\n"), strings.Split(string(want), "\n")
		for i := 0; i < len(gl) || i < len(wl); i++ {
			var g, w string
			if i < len(gl) {
				g = gl[i]
			}
			if i < len(wl) {
				w = wl[i]
			}
			if g != w {
				t.Fatalf("%s diverges from golden at line %d:\n  got:  %s\n  want: %s\n(run with -update if intentional)", name, i+1, g, w)
			}
		}
		t.Fatalf("%s diverges from golden (length mismatch)", name)
	}
}
