// Introspection catalog surface of the public API: queryable pct_stat_*
// system tables over the database's own execution statistics. See DESIGN.md
// "Introspection catalog" for the table reference.
package pctagg

import (
	"errors"

	"repro/internal/diag"
	"repro/internal/engine"
	"repro/internal/sqlparse"
)

// IntrospectionConfig sizes the introspection state; the zero value uses
// the defaults (see engine.IntrospectionConfig).
type IntrospectionConfig = engine.IntrospectionConfig

// EnableIntrospection turns on statement recording and registers the
// introspection catalog — five read-only virtual relations queryable with
// the full dialect, percentage aggregations included:
//
//	pct_stat_statements  cumulative per-fingerprint statement statistics
//	pct_stat_activity    statements executing right now, with live progress
//	pct_metrics          every registered counter, gauge, and histogram
//	pct_cache_entries    the summary cache's entries and lifecycle states
//	pct_trace_recent     flight recorder: the last N completed statements
//
// Each scan sees a point-in-time snapshot. Queries that read any of these
// relations are themselves excluded from recording, so observing the
// statistics never changes them. Disabled databases pay nothing: the
// recording path is a single atomic load.
func (db *DB) EnableIntrospection(cfg IntrospectionConfig) error {
	db.eng.EnableIntrospection(cfg)
	return db.planner.RegisterCacheIntrospection()
}

// DisableIntrospection switches recording off and drops the catalog along
// with its accumulated statistics.
func (db *DB) DisableIntrospection() {
	db.eng.DisableIntrospection()
	db.planner.UnregisterCacheIntrospection()
}

// IntrospectionStats summarizes the introspection state without a query.
type IntrospectionStats struct {
	// Enabled reports whether statement recording is on.
	Enabled bool
	// Statements is the number of distinct fingerprints tracked.
	Statements int
	// Dropped counts observations discarded because the fingerprint table
	// was full (new fingerprints past the configured maximum).
	Dropped int64
	// Active is the number of statements executing right now.
	Active int
	// FlightRecords is the number of completed statements retained in the
	// flight recorder.
	FlightRecords int
}

// IntrospectionStats reports the current introspection state.
func (db *DB) IntrospectionStats() IntrospectionStats {
	s := IntrospectionStats{Enabled: db.eng.IntrospectionEnabled()}
	if stats := db.eng.StatementStats(); stats != nil {
		s.Statements = stats.Len()
		s.Dropped = stats.Dropped()
	}
	s.Active = len(db.eng.ActiveStatements())
	s.FlightRecords = len(db.eng.FlightRecords())
	return s
}

// ResetStatementStats clears the cumulative per-fingerprint statistics
// (pct_stat_statements starts empty again); the flight recorder and live
// activity are untouched.
func (db *DB) ResetStatementStats() {
	if stats := db.eng.StatementStats(); stats != nil {
		stats.Reset()
	}
}

// queryErrCode maps a Query error to the stable code recorded in
// pct_stat_statements: the PCTxxx diagnostic code when the error carries
// one, the syntax code for parse failures, "error" otherwise, "" on success.
func queryErrCode(err error) string {
	if err == nil {
		return ""
	}
	var coded interface{ Code() string }
	var se *sqlparse.SyntaxError
	switch {
	case errors.As(err, &coded):
		return coded.Code()
	case errors.As(err, &se):
		return diag.CodeSyntax
	}
	return "error"
}
