// Package pctagg is the public API of the percentage-aggregation library:
// an embedded SQL engine extended with the two aggregate functions of
// "Vertical and Horizontal Percentage Aggregations" (SIGMOD 2004) and the
// generalized horizontal aggregations of its companion paper.
//
// Open a database, create tables, load rows, and query with standard SQL
// plus the extensions:
//
//	db := pctagg.Open()
//	db.Exec(`CREATE TABLE sales (state VARCHAR, city VARCHAR, salesAmt INTEGER)`)
//	db.Exec(`INSERT INTO sales VALUES ('CA', 'San Francisco', 13), …`)
//
//	// Vertical percentages: one row per percentage.
//	rows, _ := db.Query(`SELECT state, city, Vpct(salesAmt BY city)
//	                     FROM sales GROUP BY state, city`)
//
//	// Horizontal percentages: each 100% group on one row, one column per
//	// BY combination.
//	rows, _ = db.Query(`SELECT state, Hpct(salesAmt BY city) FROM sales GROUP BY state`)
//
//	// Horizontal aggregations (companion paper): any standard aggregate
//	// with a BY list, e.g. building a tabular data set for mining.
//	rows, _ = db.Query(`SELECT store, sum(amt BY dweek), sum(amt) FROM f GROUP BY store`)
//
// Percentage and horizontal queries are rewritten into multi-statement
// standard SQL by the planner — the role the paper's Java code generator
// plays — and executed against the embedded engine. Explain returns that
// generated SQL. Strategies replicates the paper's evaluation knobs.
package pctagg

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/lint"
	"repro/internal/obs"
	"repro/internal/sqlparse"
	"repro/internal/storage"
	"repro/internal/value"
)

// DB is an embedded database with percentage-aggregation support. A DB is
// not safe for concurrent writes; guard it externally if needed.
type DB struct {
	eng     *engine.Engine
	planner *core.Planner
	strat   Strategies
	auto    bool
	par     int
	// sink is the per-query trace sink (see SetTraceSink), boxed in an
	// atomic pointer so attaching or detaching it races safely with queries
	// in flight — the same discipline the engine uses for its own sink.
	sink atomic.Pointer[sinkBox]
}

// sinkBox wraps the sink callback so it can live in an atomic.Pointer.
type sinkBox struct{ fn func(*Span) }

// Open creates an empty database with the paper's recommended default
// strategies. Aggregations run in automatic parallel mode (one worker per
// CPU once the input is large enough to pay off); see SetParallelism.
func Open() *DB {
	eng := engine.New(storage.NewCatalog())
	eng.SetParallelism(0)
	return &DB{
		eng:     eng,
		planner: core.NewPlanner(eng),
		strat:   DefaultStrategies(),
	}
}

// SetParallelism sets the aggregation worker count for subsequent queries:
// 0 (the default) uses one worker per CPU on large inputs, 1 forces the
// sequential path, n > 1 forces exactly n workers. Results are identical
// across settings — the parallel path's deterministic merge reproduces the
// sequential output exactly.
func (db *DB) SetParallelism(p int) {
	db.par = p
	db.eng.SetParallelism(p)
}

// Parallelism returns the configured aggregation parallelism.
func (db *DB) Parallelism() int { return db.par }

// Limits bounds the resources one statement may consume; the zero value
// means unlimited. See engine.Limits for the per-field semantics.
type Limits = engine.Limits

// SetLimits installs database-wide resource limits enforced on every
// subsequent statement: row/group/byte budgets fail the statement with a
// typed PCT2xx error instead of exhausting memory, MaxPivotColumns rejects
// oversized horizontal layouts at plan time, and Timeout applies a
// per-statement deadline. The zero value removes all limits.
func (db *DB) SetLimits(l Limits) { db.eng.SetLimits(l) }

// Limits returns the database-wide resource limits.
func (db *DB) Limits() Limits { return db.eng.Limits() }

// Rows is a query result: column names and row data. Values are plain Go
// types: nil (SQL NULL), int64, float64, string, bool.
type Rows struct {
	Columns []string
	Data    [][]any
}

// String renders the rows as an aligned text table.
func (r *Rows) String() string {
	res := &engine.Result{Columns: r.Columns}
	for _, row := range r.Data {
		vals := make([]value.Value, len(row))
		for i, c := range row {
			vals[i] = toValue(c)
		}
		res.Rows = append(res.Rows, vals)
	}
	return res.Format()
}

// Exec runs one or more semicolon-separated statements (DDL, INSERT,
// UPDATE, or queries whose results are discarded) and returns the affected
// row count of the last statement.
func (db *DB) Exec(sql string) (int64, error) {
	return db.ExecCtx(context.Background(), sql)
}

// ExecCtx is Exec under a context: cancelling ctx stops the running
// statement cooperatively with a typed error, leaving its target table
// unchanged (statements are atomic — they commit fully or not at all).
func (db *DB) ExecCtx(ctx context.Context, sql string) (int64, error) {
	res, err := db.eng.ExecSQLCtx(ctx, sql)
	if err != nil {
		return 0, err
	}
	return int64(res.Affected), nil
}

// Query runs one SELECT. Standard SQL executes directly; queries using
// Vpct, Hpct, BY-aggregates, or OVER(PARTITION BY …) are planned and
// evaluated with the configured strategies. With a trace sink attached (see
// SetTraceSink) each call also emits an execution trace.
func (db *DB) Query(sql string) (*Rows, error) {
	return db.QueryCtx(context.Background(), sql)
}

// QueryCtx is Query under a context: cancelling ctx stops the in-flight
// query cooperatively — scans, joins, folds, and parallel workers all check
// it — and returns a typed cancellation error (PCT200, or PCT201 past a
// deadline). Resource limits installed with SetLimits are enforced the same
// way.
func (db *DB) QueryCtx(ctx context.Context, sql string) (*Rows, error) {
	// One load covers both the decision to trace and the delivery, so a
	// concurrent SetTraceSink can never tear the pair.
	sink := db.sink.Load()
	var root *Span
	if sink != nil {
		root = newQuerySpan(sql)
	}
	rows, err := db.queryIn(ctx, sql, root)
	if root != nil {
		finishQuerySpan(root, err)
		sink.fn(root)
	}
	return rows, err
}

// qmeta carries per-query facts the introspection recording needs out of
// the query body: whether the query must not observe itself, and the plan's
// summary-cache reuse counts.
type qmeta struct {
	skip                   bool
	cacheHits, cacheMisses int
}

// queryIn wraps the query body with top-level introspection recording: one
// Top-flagged fingerprint entry per Query call, carrying the whole-call
// latency (parse + plan + every generated statement) and the plan's
// summary-cache hit/miss counts. Engine-level entries (Top false) record
// each generated statement individually.
func (db *DB) queryIn(ctx context.Context, sql string, root *Span) (*Rows, error) {
	stats := db.eng.StatementStats()
	if stats == nil {
		return db.queryInner(ctx, sql, root, nil)
	}
	start := time.Now()
	var meta qmeta
	rows, err := db.queryInner(ctx, sql, root, &meta)
	if !meta.skip {
		norm, hash := obs.Fingerprint(sql)
		var nrows int64
		if rows != nil {
			nrows = int64(len(rows.Data))
		}
		stats.Observe(obs.StmtObservation{
			Hash: hash, Query: norm, Top: true,
			DurNs: time.Since(start).Nanoseconds(), Rows: nrows,
			ErrCode:   queryErrCode(err),
			CacheHits: int64(meta.cacheHits), CacheMisses: int64(meta.cacheMisses),
		})
	}
	return rows, err
}

// touchesVirtual reports whether the SELECT reads any virtual relation —
// the public-API half of the self-observation guard.
func (db *DB) touchesVirtual(sel *sqlparse.Select) bool {
	for _, f := range sel.From {
		if db.eng.IsVirtualTable(f.Table.Name) {
			return true
		}
	}
	return false
}

// queryInner is the Query body. root, when non-nil, receives the trace:
// parse and plan spans, then either the engine statement span (standard SQL)
// or the planner's full plan trace (percentage/horizontal queries). meta,
// when non-nil, collects introspection facts for queryIn.
func (db *DB) queryInner(ctx context.Context, sql string, root *Span, meta *qmeta) (*Rows, error) {
	ps := root.NewChild("parse")
	stmt, err := sqlparse.Parse(sql)
	ps.End()
	if err != nil {
		countQueryError(err)
		return nil, err
	}
	if ex, ok := stmt.(*sqlparse.Explain); ok {
		if meta != nil && ex.Query != nil && db.touchesVirtual(ex.Query) {
			meta.skip = true
		}
		class, err := core.Classify(ex.Query)
		if err != nil {
			countQueryError(err)
			return nil, err
		}
		if class != core.ClassStandard || ex.Query.GroupSets != nil {
			// The engine cannot run percentage aggregates or grouping-set
			// lattices: EXPLAIN shows the rewriter's multi-statement plan,
			// EXPLAIN ANALYZE executes it and shows the recorded trace.
			return db.explainPlanned(ex, root)
		}
		res, err := db.eng.ExecuteCtxIn(ctx, ex, db.par, root)
		if err != nil {
			countQueryError(err)
			return nil, err
		}
		out := &Rows{Columns: res.Columns}
		for _, row := range res.Rows {
			out.Data = append(out.Data, []any{fromValue(row[0])})
		}
		return out, nil
	}
	sel, ok := stmt.(*sqlparse.Select)
	if !ok {
		return nil, fmt.Errorf("pctagg: Query needs a SELECT; use Exec for %T", stmt)
	}
	if meta != nil && db.touchesVirtual(sel) {
		meta.skip = true
	}
	class, err := core.Classify(sel)
	if err != nil {
		countQueryError(err)
		return nil, err
	}
	countQueryClass(class)
	if meta != nil && meta.skip {
		// Extend the self-observation guard across the whole plan: none of
		// the generated temp-table statements may record themselves either.
		ctx = engine.WithoutIntrospection(ctx)
	}
	var res *engine.Result
	if class == core.ClassStandard && sel.GroupSets == nil {
		res, err = db.eng.ExecuteCtxIn(ctx, sel, db.par, root)
	} else {
		// Percentage/horizontal aggregations and any GROUP BY
		// ROLLUP/CUBE/GROUPING SETS go through the planner's rewriter.
		res, err = db.queryPlanned(ctx, sel, root, meta)
	}
	if err != nil {
		countQueryError(err)
		return nil, err
	}
	out := &Rows{Columns: res.Columns}
	for _, row := range res.Rows {
		conv := make([]any, len(row))
		for i, v := range row {
			conv[i] = fromValue(v)
		}
		out.Data = append(out.Data, conv)
	}
	return out, nil
}

// planFor resolves the effective options — the advisor's pick under
// AutoStrategy, the configured strategies otherwise, with the DB-level
// parallelism stamped on either (it is orthogonal to strategy choice and
// the advisor never sets it) — and plans the SELECT.
func (db *DB) planFor(sel *sqlparse.Select) (*core.Plan, error) {
	opts := db.strat.coreOptions()
	var err error
	if db.auto {
		opts, err = db.planner.Advise(sel)
		if err != nil {
			return nil, err
		}
	}
	opts.Parallelism = db.par
	// The database-wide limits are stamped on the plan so plan-time checks
	// (MaxPivotColumns) see them; per-step enforcement resolves the same
	// limits either way.
	opts.Limits = db.eng.Limits()
	return db.planner.Plan(sel, opts)
}

// queryPlanned evaluates a percentage/horizontal SELECT through the planner,
// nesting the plan's trace under root when tracing.
func (db *DB) queryPlanned(ctx context.Context, sel *sqlparse.Select, root *Span, meta *qmeta) (*engine.Result, error) {
	pls := root.NewChild("plan")
	plan, err := db.planFor(sel)
	pls.End()
	if err != nil {
		return nil, err
	}
	if meta != nil {
		meta.cacheHits = plan.CacheHits()
		meta.cacheMisses = plan.CacheMisses()
	}
	if root == nil {
		return db.planner.ExecuteCtx(ctx, plan)
	}
	res, planSpan, err := db.planner.ExecuteTracedCtx(ctx, plan)
	root.AddChild(planSpan)
	return res, err
}

// explainPlanned renders EXPLAIN output for a percentage/horizontal query:
// the generated multi-statement SQL script (the paper's code-generator
// output), or — under EXPLAIN ANALYZE — the execution trace of actually
// running the plan, one span per line with actual rows and times.
func (db *DB) explainPlanned(ex *sqlparse.Explain, root *Span) (*Rows, error) {
	pls := root.NewChild("plan")
	plan, err := db.planFor(ex.Query)
	pls.End()
	if err != nil {
		countQueryError(err)
		return nil, err
	}
	var lines []string
	if ex.Analyze {
		res, trace, err := db.planner.ExecuteTraced(plan)
		root.AddChild(trace)
		if err != nil {
			countQueryError(err)
			return nil, err
		}
		lines = strings.Split(strings.TrimRight(trace.Format(), "\n"), "\n")
		lines = append(lines, fmt.Sprintf("Execution: rows=%d time=%s", len(res.Rows), trace.Duration))
	} else {
		defer db.planner.CleanupPlan(plan)
		lines = strings.Split(strings.TrimRight(plan.SQL(), "\n"), "\n")
	}
	out := &Rows{Columns: []string{"plan"}}
	for _, l := range lines {
		out.Data = append(out.Data, []any{l})
	}
	return out, nil
}

// Explain returns the standard-SQL plan the query rewriter generates for a
// percentage/horizontal query under the configured strategies — the output
// of the paper's code generator. Standard queries return themselves.
func (db *DB) Explain(sql string) (string, error) {
	plan, err := db.planner.PlanSQL(sql, db.strat.coreOptions())
	if err != nil {
		return "", err
	}
	defer db.planner.CleanupPlan(plan)
	return plan.SQL(), nil
}

// OLAPEquivalent returns the ANSI SQL/OLAP window-function formulation of
// a percentage query — the baseline the paper's Section 4.2 compares
// against. It is directly executable with Query.
func (db *DB) OLAPEquivalent(sql string) (string, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return "", err
	}
	sel, ok := stmt.(*sqlparse.Select)
	if !ok {
		return "", fmt.Errorf("pctagg: expected a SELECT")
	}
	return db.planner.OLAPEquivalent(sel)
}

// Diagnostic is one finding of the percentage-query linter: a stable
// PCTxxx code, a severity ("error", "warning", or "advisory"), a 1-based
// source position (zero when the finding has no single location), the
// human-readable message, and an optional suggested fix.
type Diagnostic struct {
	Code     string
	Severity string
	Line     int
	Col      int
	Message  string
	Fix      string
}

// String renders the diagnostic as a compiler-style line.
func (d Diagnostic) String() string {
	s := ""
	if d.Line > 0 {
		s = fmt.Sprintf("%d:%d: ", d.Line, d.Col)
	}
	s += fmt.Sprintf("%s[%s]: %s", d.Severity, d.Code, d.Message)
	if d.Fix != "" {
		s += "\n    fix: " + d.Fix
	}
	return s
}

// Lint statically checks the SELECT statements of a SQL script against the
// database's catalog and live data without running them: every violation
// of the paper's usage rules (the errors Query would report one at a
// time), plus warnings for its silent failure modes — division by zero,
// missing grouping combinations, Hpct column explosion — and strategy
// advisories. Non-SELECT statements in the script are ignored, not
// executed.
func (db *DB) Lint(sql string) []Diagnostic {
	ds := lint.New(db.planner).LintQueries(sql)
	out := make([]Diagnostic, len(ds))
	for i, d := range ds {
		out[i] = Diagnostic{
			Code:     d.Code,
			Severity: d.Severity.String(),
			Line:     d.Span.Start.Line,
			Col:      d.Span.Start.Col,
			Message:  d.Message,
			Fix:      d.Fix,
		}
	}
	return out
}

// InsertRows bulk-appends rows into a table without SQL parsing, the fast
// path for loading generated data. Row values use the same Go types Rows
// returns; integers may be int or int64.
func (db *DB) InsertRows(table string, rows [][]any) error {
	t, err := db.eng.Catalog().Get(table)
	if err != nil {
		return err
	}
	vals := make([]value.Value, 0, 16)
	for ri, row := range rows {
		vals = vals[:0]
		for _, c := range row {
			vals = append(vals, toValue(c))
		}
		if _, err := t.AppendRow(vals); err != nil {
			return fmt.Errorf("pctagg: row %d: %w", ri, err)
		}
	}
	return nil
}

// Tables lists the tables in the database.
func (db *DB) Tables() []string { return db.eng.Catalog().Names() }

// Engine exposes the underlying engine for embedding layers — the server
// front door registers its pct_stat_sessions virtual table through it.
// Most callers never need it.
func (db *DB) Engine() *engine.Engine { return db.eng }

// AutoStrategy toggles the cost-based strategy advisor: before each
// percentage query, live statistics (the distinct BY combinations, the
// fine-grouping size relative to |F|) pick the strategy per the paper's
// Section 4 recommendations, overriding SetStrategies.
func (db *DB) AutoStrategy(on bool) { db.auto = on }

// ShareSummaries toggles the materialized summary cache: while enabled,
// structurally identical intermediate aggregates (the Fk/Fj tables) are
// computed once and reused by later percentage queries — the paper's
// "shared summaries" idea for query batches. The cache is DML-aware:
// INSERTs through the engine refresh distributive summaries incrementally
// (aggregate only the new rows, merge), UPDATE/DELETE/DROP invalidate and
// rebuild — a cached summary is never served stale. Call FlushSummaries
// when the batch is done to reclaim the cache tables.
func (db *DB) ShareSummaries(on bool) { db.planner.ShareSummaries(on) }

// EnableSummaryCache is ShareSummaries under the name the cache deserves
// now that it maintains itself through DML.
func (db *DB) EnableSummaryCache(on bool) { db.ShareSummaries(on) }

// CacheStats is a snapshot of the summary cache's counters — hits, misses,
// invalidations, incremental refreshes (and their fault fallbacks), and
// Fj-from-cached-Fk rollups.
type CacheStats = core.CacheStats

// SummaryCacheStats returns a snapshot of the summary cache's counters.
func (db *DB) SummaryCacheStats() CacheStats { return db.planner.CacheStats() }

// FlushSummaries drops every cached shared summary.
func (db *DB) FlushSummaries() { db.planner.FlushSummaries() }

// MaxColumns reports the configured per-table column limit used to decide
// when horizontal results are vertically partitioned.
func (db *DB) MaxColumns() int { return db.planner.MaxColumns }

// SetMaxColumns configures the per-table column limit (the paper's DBMS
// constraint that forces vertical partitioning of wide FH tables).
func (db *DB) SetMaxColumns(n int) { db.planner.MaxColumns = n }

func fromValue(v value.Value) any {
	switch v.Kind() {
	case value.KindInt:
		return v.Int()
	case value.KindFloat:
		return v.Float()
	case value.KindString:
		return v.Str()
	case value.KindBool:
		return v.Bool()
	default:
		return nil
	}
}

func toValue(c any) value.Value {
	switch x := c.(type) {
	case nil:
		return value.Null
	case int:
		return value.NewInt(int64(x))
	case int64:
		return value.NewInt(x)
	case float64:
		return value.NewFloat(x)
	case string:
		return value.NewString(x)
	case bool:
		return value.NewBool(x)
	default:
		return value.NewString(fmt.Sprint(x))
	}
}
