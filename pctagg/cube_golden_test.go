package pctagg

import (
	"fmt"
	"strconv"
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/workload"
)

// cubeGoldenDB is goldenDB shrunk further: the cube goldens check in full
// cross-tab results (not just plans), and ROLLUP over the age dimension
// multiplies rows, so the data sets stay tiny to keep the goldens readable.
func cubeGoldenDB(t *testing.T) (*DB, *bench.Suite) {
	t.Helper()
	cards := workload.PaperCardinalities()
	cards.Dept = 3
	cards.Store = 2
	cfg := bench.Config{
		EmployeeN: 48, SalesN: 96, TransN1: 1, TransN2: 1, CensusN: 1,
		Seed: 7, Cards: cards, Reps: 1,
	}
	s, err := bench.NewSuite(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, ds := range []string{"employee", "sales"} {
		if err := s.Ensure(ds); err != nil {
			t.Fatal(err)
		}
	}
	db := &DB{eng: s.Eng, planner: s.Planner, strat: DefaultStrategies(), par: 1}
	db.eng.SetParallelism(1)
	return db, s
}

func formatCell(v any) string {
	switch x := v.(type) {
	case nil:
		return "NULL"
	case float64:
		return strconv.FormatFloat(x, 'g', -1, 64)
	case int64:
		return strconv.FormatInt(x, 10)
	case string:
		return x
	default:
		return fmt.Sprint(x)
	}
}

// cubeQueries renders the percentage-cube form of every primary query:
// Vpct under ROLLUP/CUBE with GROUPING markers, and Hpct under ROLLUP
// where the query has a GROUP BY to roll up.
func cubeQueries(s *bench.Suite) []string {
	var out []string
	for _, q := range s.PrimaryQueries() {
		out = append(out, q.CubeVpctSQL())
		if sql := q.CubeHpctSQL(); sql != "" {
			out = append(out, sql)
		}
	}
	return out
}

// cubeResultsGolden renders the full cross-tab of every cube query as a
// text block: a header line of column names, then one line per row.
func cubeResultsGolden(t *testing.T, db *DB, s *bench.Suite) string {
	t.Helper()
	var sb strings.Builder
	for _, sql := range cubeQueries(s) {
		rows, err := db.Query(sql)
		if err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
		sb.WriteString("===== " + sql + " =====\n")
		sb.WriteString(strings.Join(rows.Columns, " | ") + "\n")
		for _, r := range rows.Data {
			cells := make([]string, len(r))
			for i, v := range r {
				cells[i] = formatCell(v)
			}
			sb.WriteString(strings.Join(cells, " | ") + "\n")
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestCubeResultsGolden pins the full cross-tab output of the eight primary
// paper queries re-run as percentage cubes, and doubles as the determinism
// regression: the corpus is rendered twice from independently built
// databases and must match byte for byte before being compared to the
// golden. Regenerate after intentional changes with:
//
//	go test ./pctagg/ -run CubeResultsGolden -update
func TestCubeResultsGolden(t *testing.T) {
	db, s := cubeGoldenDB(t)
	got := cubeResultsGolden(t, db, s)
	db2, s2 := cubeGoldenDB(t)
	if again := cubeResultsGolden(t, db2, s2); again != got {
		t.Fatal("cube corpus is not deterministic across identical runs")
	}
	// Run-twice on the same DB: temp-table state from the first pass must
	// not leak into the second.
	if again := cubeResultsGolden(t, db, s); again != got {
		t.Fatal("cube corpus is not deterministic across repeated runs on one DB")
	}
	compareGolden(t, "cube_results.golden", got)
	if n := len(db.Tables()); n != 2 {
		t.Errorf("cube corpus leaked temporaries: tables = %v", db.Tables())
	}
}

// cubeExplainGolden renders EXPLAIN (or EXPLAIN ANALYZE) for every cube
// query, normalized like the plain EXPLAIN goldens.
func cubeExplainGolden(t *testing.T, db *DB, s *bench.Suite, analyze bool) string {
	t.Helper()
	kw := "EXPLAIN "
	if analyze {
		kw = "EXPLAIN ANALYZE "
	}
	var sb strings.Builder
	for _, sql := range cubeQueries(s) {
		rows, err := db.Query(kw + sql)
		if err != nil {
			t.Fatalf("%s%s: %v", kw, sql, err)
		}
		sb.WriteString("===== " + sql + " =====\n")
		for _, r := range rows.Data {
			sb.WriteString(normalizeExplain(r[0].(string)))
			sb.WriteByte('\n')
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// TestCubeExplainGolden pins the generated lattice plans for the cube
// corpus and enforces the single-scan acceptance criterion on every one of
// them: each plan must reference its base table exactly once.
func TestCubeExplainGolden(t *testing.T) {
	db, s := cubeGoldenDB(t)
	got := cubeExplainGolden(t, db, s, false)
	for _, block := range strings.Split(got, "===== ") {
		if block == "" {
			continue
		}
		dataset := "employee"
		if strings.Contains(block[:strings.Index(block, "\n")], "FROM sales") {
			dataset = "sales"
		}
		scans := strings.Count(block, "FROM "+dataset)
		// The header line quotes the query's own FROM clause; the plan body
		// must add exactly one more (the finest-summary scan).
		if scans != 2 {
			t.Errorf("plan scans %s %d times, want exactly 1 base-table scan:\n%s", dataset, scans-1, block)
		}
	}
	compareGolden(t, "cube_explain.golden", got)
	if n := len(db.Tables()); n != 2 {
		t.Errorf("EXPLAIN leaked temporaries: tables = %v", db.Tables())
	}
}

// TestCubeExplainAnalyzeGolden pins the executed lattice trace — per-node
// step nesting and actual row counts — with durations normalized out.
func TestCubeExplainAnalyzeGolden(t *testing.T) {
	db, s := cubeGoldenDB(t)
	compareGolden(t, "cube_explain_analyze.golden", cubeExplainGolden(t, db, s, true))
	if n := len(db.Tables()); n != 2 {
		t.Errorf("EXPLAIN ANALYZE leaked temporaries: tables = %v", db.Tables())
	}
}
