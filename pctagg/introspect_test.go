package pctagg

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"

	"repro/internal/leakcheck"
)

// paperDB loads the two tables the paper's eight primary queries (Tables 4,
// 5, 6) run over, at toy scale.
func paperDB(t *testing.T) *DB {
	t.Helper()
	db := Open()
	if _, err := db.Exec(`CREATE TABLE employee (RID INTEGER, gender VARCHAR, marstatus VARCHAR, educat VARCHAR, age INTEGER, salary INTEGER);
		CREATE TABLE sales (RID INTEGER, dweek VARCHAR, monthNo INTEGER, dept VARCHAR, store VARCHAR, salesAmt INTEGER)`); err != nil {
		t.Fatal(err)
	}
	genders := []string{"F", "M"}
	mars := []string{"single", "married"}
	educs := []string{"hs", "college"}
	weeks := []string{"mon", "tue", "wed"}
	depts := []string{"toys", "food"}
	stores := []string{"s1", "s2"}
	var emp, sal strings.Builder
	emp.WriteString("INSERT INTO employee VALUES ")
	sal.WriteString("INSERT INTO sales VALUES ")
	for i := 0; i < 48; i++ {
		if i > 0 {
			emp.WriteByte(',')
			sal.WriteByte(',')
		}
		fmt.Fprintf(&emp, "(%d,'%s','%s','%s',%d,%d)", i,
			genders[i%2], mars[i%3%2], educs[i%5%2], 20+i%40, 1000+i*7)
		fmt.Fprintf(&sal, "(%d,'%s',%d,'%s','%s',%d)", i,
			weeks[i%3], 1+i%4, depts[i%2], stores[i%7%2], 5+i%11)
	}
	if _, err := db.Exec(emp.String()); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(sal.String()); err != nil {
		t.Fatal(err)
	}
	return db
}

// primarySQL is the paper's eight primary percentage queries.
var primarySQL = []string{
	"SELECT gender, Vpct(salary) FROM employee GROUP BY gender",
	"SELECT marstatus, gender, Vpct(salary BY gender) FROM employee GROUP BY marstatus, gender",
	"SELECT educat, marstatus, gender, Vpct(salary BY gender) FROM employee GROUP BY educat, marstatus, gender",
	"SELECT age, marstatus, gender, educat, Vpct(salary BY gender, educat) FROM employee GROUP BY age, marstatus, gender, educat",
	"SELECT dweek, Vpct(salesAmt) FROM sales GROUP BY dweek",
	"SELECT dweek, Hpct(salesAmt BY monthNo) FROM sales GROUP BY dweek",
	"SELECT dweek, monthNo, Hpct(salesAmt BY dept) FROM sales GROUP BY dweek, monthNo",
	"SELECT dweek, monthNo, Hpct(salesAmt BY dept, store) FROM sales GROUP BY dweek, monthNo",
}

// one unwraps a single-row single-column query.
func one(t *testing.T, db *DB, sql string) any {
	t.Helper()
	rows, err := db.Query(sql)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	if len(rows.Data) != 1 || len(rows.Data[0]) != 1 {
		t.Fatalf("%s: want 1x1 result, got %v", sql, rows.Data)
	}
	return rows.Data[0][0]
}

// TestIntrospectionPrimaryQueries is the PR's acceptance scenario: run the
// paper's eight primary queries N times each with the summary cache on, then
// read exact call counts, latencies, and cache-hit counters back through
// SELECTs over pct_stat_statements.
func TestIntrospectionPrimaryQueries(t *testing.T) {
	const N = 3
	db := paperDB(t)
	db.EnableSummaryCache(true)
	if err := db.EnableIntrospection(IntrospectionConfig{}); err != nil {
		t.Fatal(err)
	}
	for _, sql := range primarySQL {
		for i := 0; i < N; i++ {
			if _, err := db.Query(sql); err != nil {
				t.Fatalf("%s: %v", sql, err)
			}
		}
	}

	rows, err := db.Query("SELECT query, calls, total_ms, p50_ms, p99_ms, cache_hits, cache_misses FROM pct_stat_statements WHERE top = 1 ORDER BY query")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != len(primarySQL) {
		t.Fatalf("top-level fingerprints = %d, want %d: %v", len(rows.Data), len(primarySQL), rows.Data)
	}
	var sumHits, sumMisses int64
	for _, row := range rows.Data {
		q := row[0].(string)
		if calls := row[1].(int64); calls != N {
			t.Errorf("%s: calls = %d, want %d", q, calls, N)
		}
		if total := row[2].(float64); total <= 0 {
			t.Errorf("%s: total_ms = %v, want > 0", q, total)
		}
		if p50, p99 := row[3].(float64), row[4].(float64); p50 > p99 {
			t.Errorf("%s: p50 %v > p99 %v", q, p50, p99)
		}
		sumHits += row[5].(int64)
		sumMisses += row[6].(int64)
	}
	// Every planned query registers summaries on its first run and reuses
	// them on the other N-1, so the counters read back from SQL must agree
	// exactly with the planner's own cache statistics.
	cs := db.SummaryCacheStats()
	if sumHits != cs.Hits || sumMisses != cs.Misses {
		t.Errorf("cache counters via SQL = %d hits/%d misses, planner says %d/%d",
			sumHits, sumMisses, cs.Hits, cs.Misses)
	}
	if sumHits == 0 || sumMisses == 0 {
		t.Errorf("expected both hits (%d) and misses (%d) after %d repeated runs", sumHits, sumMisses, N)
	}

	// Statement-level (top = 0) entries record the generated statements.
	if n := one(t, db, "SELECT COUNT(*) FROM pct_stat_statements WHERE top = 0").(int64); n == 0 {
		t.Error("no statement-level fingerprints recorded")
	}
}

// TestIntrospectionVpctOverStats closes the loop the PR title promises:
// percentage aggregations over the statistics tables themselves.
func TestIntrospectionVpctOverStats(t *testing.T) {
	db := paperDB(t)
	if err := db.EnableIntrospection(IntrospectionConfig{}); err != nil {
		t.Fatal(err)
	}
	// 3 + 1 top-level calls across two fingerprints.
	for i := 0; i < 3; i++ {
		if _, err := db.Query("SELECT gender, Vpct(salary) FROM employee GROUP BY gender"); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := db.Query("SELECT dweek, Vpct(salesAmt) FROM sales GROUP BY dweek"); err != nil {
		t.Fatal(err)
	}

	rows, err := db.Query("SELECT query, Vpct(calls) FROM pct_stat_statements WHERE top = 1 GROUP BY query")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 2 {
		t.Fatalf("rows = %v", rows.Data)
	}
	shares := map[string]float64{}
	var sum float64
	for _, row := range rows.Data {
		s := row[1].(float64)
		shares[row[0].(string)] = s
		sum += s
	}
	if math.Abs(sum-1.0) > 1e-9 {
		t.Errorf("shares sum to %v, want 1.0", sum)
	}
	for q, s := range shares {
		want := 0.25
		if strings.Contains(q, "employee") {
			want = 0.75
		}
		if math.Abs(s-want) > 1e-9 {
			t.Errorf("%s share = %v, want %v", q, s, want)
		}
	}

	// Hpct pivots the same statistics horizontally: one column per query.
	hrows, err := db.Query("SELECT top, Hpct(calls BY query) FROM pct_stat_statements GROUP BY top")
	if err != nil {
		t.Fatal(err)
	}
	if len(hrows.Data) == 0 || len(hrows.Columns) < 3 {
		t.Errorf("Hpct over stats: columns = %v, data = %v", hrows.Columns, hrows.Data)
	}
}

func TestIntrospectionSelfGuard(t *testing.T) {
	db := paperDB(t)
	if err := db.EnableIntrospection(IntrospectionConfig{}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query("SELECT gender, Vpct(salary) FROM employee GROUP BY gender"); err != nil {
		t.Fatal(err)
	}
	before := db.IntrospectionStats()
	r1, err := db.Query("SELECT query, calls FROM pct_stat_statements ORDER BY query")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := db.Query("SELECT query, calls FROM pct_stat_statements ORDER BY query")
	if err != nil {
		t.Fatal(err)
	}
	after := db.IntrospectionStats()
	if before.Statements != after.Statements {
		t.Errorf("introspection queries changed the fingerprint count: %d -> %d", before.Statements, after.Statements)
	}
	if len(r1.Data) != len(r2.Data) {
		t.Fatalf("row count changed between identical introspection queries: %d vs %d", len(r1.Data), len(r2.Data))
	}
	for i := range r1.Data {
		if r1.Data[i][0] != r2.Data[i][0] || r1.Data[i][1] != r2.Data[i][1] {
			t.Errorf("row %d changed: %v vs %v", i, r1.Data[i], r2.Data[i])
		}
	}
	// A Vpct over the stats is a planned, multi-statement query — none of
	// its generated statements may record themselves either.
	if _, err := db.Query("SELECT query, Vpct(calls) FROM pct_stat_statements GROUP BY query"); err != nil {
		t.Fatal(err)
	}
	if got := db.IntrospectionStats().Statements; got != after.Statements {
		t.Errorf("planned introspection query recorded itself: %d -> %d fingerprints", after.Statements, got)
	}
	// Full-content check, not just the count: the planned query's generated
	// statements (CREATE/INSERT/DROP pct_fk_N) must not have bumped calls on
	// fingerprints an earlier recorded percentage query already created.
	r3, err := db.Query("SELECT query, calls FROM pct_stat_statements ORDER BY query")
	if err != nil {
		t.Fatal(err)
	}
	if len(r3.Data) != len(r2.Data) {
		t.Fatalf("planned introspection query changed the row count: %d vs %d", len(r2.Data), len(r3.Data))
	}
	for i := range r3.Data {
		if r3.Data[i][0] != r2.Data[i][0] || r3.Data[i][1] != r2.Data[i][1] {
			t.Errorf("planned introspection query mutated row %d: %v vs %v", i, r2.Data[i], r3.Data[i])
		}
	}
}

func TestIntrospectionCacheEntriesTable(t *testing.T) {
	db := paperDB(t)
	db.EnableSummaryCache(true)
	if err := db.EnableIntrospection(IntrospectionConfig{}); err != nil {
		t.Fatal(err)
	}
	q := "SELECT gender, Vpct(salary) FROM employee GROUP BY gender"
	for i := 0; i < 2; i++ {
		if _, err := db.Query(q); err != nil {
			t.Fatal(err)
		}
	}
	rows, err := db.Query("SELECT cache_key, base_table, state, deltable FROM pct_cache_entries")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) == 0 {
		t.Fatal("pct_cache_entries empty after cached query")
	}
	for _, row := range rows.Data {
		if row[1].(string) != "employee" {
			t.Errorf("base_table = %v, want employee", row[1])
		}
		if st := row[2].(string); st != "clean" {
			t.Errorf("state = %q, want clean", st)
		}
	}
	// An append flips deltable entries to pending (incremental maintenance
	// outstanding) without invalidating them.
	if _, err := db.Exec("INSERT INTO employee VALUES (999,'F','single','hs',30,1234)"); err != nil {
		t.Fatal(err)
	}
	n := one(t, db, "SELECT COUNT(*) FROM pct_cache_entries WHERE state = 'pending' AND deltable = 1").(int64)
	if n == 0 {
		t.Error("no pending deltable entries after an append")
	}
}

func TestIntrospectionStatsAndReset(t *testing.T) {
	db := paperDB(t)
	s := db.IntrospectionStats()
	if s.Enabled || s.Statements != 0 {
		t.Errorf("introspection should start disabled and empty: %+v", s)
	}
	if err := db.EnableIntrospection(IntrospectionConfig{MaxStatements: 100, FlightRecords: 16}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query("SELECT gender, Vpct(salary) FROM employee GROUP BY gender"); err != nil {
		t.Fatal(err)
	}
	s = db.IntrospectionStats()
	if !s.Enabled || s.Statements == 0 || s.FlightRecords == 0 {
		t.Errorf("stats after a query = %+v", s)
	}
	db.ResetStatementStats()
	if got := db.IntrospectionStats().Statements; got != 0 {
		t.Errorf("Statements after reset = %d, want 0", got)
	}
	db.DisableIntrospection()
	if db.IntrospectionStats().Enabled {
		t.Error("still enabled after DisableIntrospection")
	}
	if _, err := db.Query("SELECT * FROM pct_cache_entries"); err == nil {
		t.Error("pct_cache_entries should be gone after DisableIntrospection")
	}
}

// TestIntrospectTraceSinkSwapRace flips the trace sink on and off while a
// concurrent workload queries — the regression test for the racy plain-field
// sink this PR replaced with an atomic pointer. Run under -race.
func TestIntrospectTraceSinkSwapRace(t *testing.T) {
	defer leakcheck.Check(t)()
	db := demoDB(t)
	if err := db.EnableIntrospection(IntrospectionConfig{}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var delivered sync.Map
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := db.Query("SELECT state, Vpct(salesAmt) FROM sales GROUP BY state"); err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	for i := 0; i < 200; i++ {
		i := i
		db.SetTraceSink(func(sp *Span) { delivered.Store(i, sp.Name) })
		db.SetTraceSink(nil)
	}
	close(stop)
	wg.Wait()
	// Any delivered span must be a complete query root, not a torn pair.
	delivered.Range(func(_, v any) bool {
		if v.(string) != "query" {
			t.Errorf("sink received span %q, want query root", v)
		}
		return true
	})
}
