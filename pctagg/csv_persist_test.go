package pctagg

import (
	"bytes"
	"strings"
	"testing"
)

func TestLoadCSVWithInference(t *testing.T) {
	db := Open()
	csvText := "state,city,amount,rate\nCA,San Francisco,83,0.78\nCA,Los Angeles,23,0.22\nTX,,64,\n"
	n, err := db.LoadCSV("sales", strings.NewReader(csvText), CSVOptions{Header: true, CreateTable: true})
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("loaded %d rows", n)
	}
	rows, err := db.Query("SELECT state, city, amount, rate FROM sales ORDER BY amount")
	if err != nil {
		t.Fatal(err)
	}
	if rows.Data[0][2].(int64) != 23 {
		t.Errorf("amount inferred wrong: %v", rows.Data[0])
	}
	if rows.Data[0][3].(float64) != 0.22 { // floateq:ok exact expected value
		t.Errorf("rate inferred wrong: %v", rows.Data[0])
	}
	// Empty cells are NULL (the TX row, amount 64, sorts second).
	if rows.Data[1][1] != nil || rows.Data[1][3] != nil {
		t.Errorf("empty cells must be NULL: %v", rows.Data[1])
	}
	// And the loaded table answers percentage queries.
	res, err := db.Query("SELECT state, Vpct(amount) FROM sales GROUP BY state")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Data) != 2 {
		t.Errorf("pct rows = %v", res.Data)
	}
}

func TestLoadCSVIntoExistingTable(t *testing.T) {
	db := Open()
	db.Exec("CREATE TABLE t (a INTEGER, b VARCHAR, ok BOOLEAN)")
	n, err := db.LoadCSV("t", strings.NewReader("1,x,true\n2,NA,false\n"), CSVOptions{NullToken: "NA"})
	if err != nil || n != 2 {
		t.Fatal(n, err)
	}
	rows, _ := db.Query("SELECT a, b, ok FROM t ORDER BY a")
	if rows.Data[1][1] != nil {
		t.Errorf("NA must load as NULL: %v", rows.Data[1])
	}
	if rows.Data[0][2].(bool) != true {
		t.Errorf("bool parse: %v", rows.Data[0])
	}
}

func TestLoadCSVErrors(t *testing.T) {
	db := Open()
	if _, err := db.LoadCSV("t", strings.NewReader(""), CSVOptions{}); err == nil {
		t.Error("empty input must fail")
	}
	if _, err := db.LoadCSV("t", strings.NewReader("a,b\n1,2\n"), CSVOptions{CreateTable: true}); err == nil {
		t.Error("CreateTable without Header must fail")
	}
	if _, err := db.LoadCSV("nosuch", strings.NewReader("1,2\n"), CSVOptions{}); err == nil {
		t.Error("missing table must fail")
	}
	db.Exec("CREATE TABLE t (a INTEGER)")
	if _, err := db.LoadCSV("t", strings.NewReader("xyz\n"), CSVOptions{}); err == nil {
		t.Error("non-integer into INTEGER must fail")
	}
	if _, err := db.LoadCSV("t", strings.NewReader("1,2\n"), CSVOptions{}); err == nil {
		t.Error("arity mismatch must fail")
	}
}

func TestWriteCSVRoundTrip(t *testing.T) {
	db := demoDB(t)
	var buf bytes.Buffer
	err := db.WriteCSV(&buf, "SELECT state, city, Vpct(salesAmt BY city) FROM sales GROUP BY state, city", "")
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "state,city,salesAmt\n") {
		t.Errorf("header = %q", out[:40])
	}
	// Load it back into a second database.
	db2 := Open()
	n, err := db2.LoadCSV("pcts", strings.NewReader(out), CSVOptions{Header: true, CreateTable: true})
	if err != nil || n != 4 {
		t.Fatal(n, err)
	}
	rows, _ := db2.Query("SELECT count(*), sum(salesAmt) FROM pcts")
	if rows.Data[0][0].(int64) != 4 {
		t.Errorf("round trip rows = %v", rows.Data)
	}
	// Two states × shares summing to 1 each → total 2.
	if s := rows.Data[0][1].(float64); s < 1.999 || s > 2.001 {
		t.Errorf("round trip share sum = %v", s)
	}
}

func TestSaveLoadSnapshot(t *testing.T) {
	db := demoDB(t)
	db.Exec("CREATE TABLE wide (i INTEGER, f REAL, s VARCHAR, b BOOLEAN, PRIMARY KEY(i))")
	db.InsertRows("wide", [][]any{
		{1, 1.5, "x", true},
		{2, nil, nil, nil},
	})
	db.Exec("CREATE INDEX wide_s ON wide (s)")

	var buf bytes.Buffer
	if err := db.Save(&buf); err != nil {
		t.Fatal(err)
	}

	db2 := Open()
	if err := db2.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if len(db2.Tables()) != 2 {
		t.Fatalf("tables = %v", db2.Tables())
	}
	rows, err := db2.Query("SELECT i, f, s, b FROM wide ORDER BY i")
	if err != nil {
		t.Fatal(err)
	}
	if rows.Data[0][1].(float64) != 1.5 || rows.Data[0][3].(bool) != true { // floateq:ok exact expected value
		t.Errorf("row 0 = %v", rows.Data[0])
	}
	if rows.Data[1][1] != nil || rows.Data[1][2] != nil {
		t.Errorf("NULLs lost: %v", rows.Data[1])
	}
	// Percentage queries work on the restored data.
	res, err := db2.Query("SELECT state, city, Vpct(salesAmt BY city) FROM sales GROUP BY state, city")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Data) != 4 {
		t.Errorf("restored pct rows = %v", res.Data)
	}
	// The restored table kept its secondary index (used by joins).
	if _, err := db2.Exec("CREATE INDEX wide_s ON wide (s)"); err == nil {
		t.Error("index wide_s should already exist after restore")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	db := Open()
	if err := db.Load(strings.NewReader("not a snapshot")); err == nil {
		t.Error("garbage must fail")
	}
	// A snapshot with a clashing table name fails cleanly.
	db1 := demoDB(t)
	var buf bytes.Buffer
	if err := db1.Save(&buf); err != nil {
		t.Fatal(err)
	}
	db2 := demoDB(t)
	if err := db2.Load(&buf); err == nil {
		t.Error("loading over an existing table must fail")
	}
}
