package pctagg

import (
	"encoding/gob"
	"fmt"
	"io"

	"repro/internal/storage"
	"repro/internal/value"
)

// Snapshot persistence: Save serializes every table (schema, rows, primary
// key, secondary indexes) with encoding/gob; Load restores them into an
// empty or existing database. The format is columnar: one typed vector and
// a null bitmap per column, which keeps files compact and loads fast.

// snapColumn is the gob form of one column.
type snapColumn struct {
	Name  string
	Type  uint8
	Ints  []int64
	Flts  []float64
	Strs  []string
	Bools []bool
	Nulls []bool
}

// snapIndex is the gob form of one secondary index definition.
type snapIndex struct {
	Name    string
	Columns []string
}

// snapTable is the gob form of one table.
type snapTable struct {
	Name       string
	NumRows    int
	Columns    []snapColumn
	PrimaryKey []string
	Indexes    []snapIndex
}

// snapshot is the gob header and payload.
type snapshot struct {
	Magic   string
	Version int
	Tables  []snapTable
}

const snapMagic = "pctagg-snapshot"

// Save writes every table in the database to w. The planner's shared
// summaries are not included (they are transient by design).
func (db *DB) Save(w io.Writer) error {
	snap := snapshot{Magic: snapMagic, Version: 1}
	for _, name := range db.Tables() {
		t, err := db.eng.Catalog().Get(name)
		if err != nil {
			return err
		}
		st := snapTable{Name: t.Name(), NumRows: t.NumRows()}
		for _, pos := range t.PrimaryKey() {
			st.PrimaryKey = append(st.PrimaryKey, t.Schema()[pos].Name)
		}
		for _, ix := range t.Indexes() {
			if len(st.PrimaryKey) > 0 && ix.Name() == "pk_"+t.Name() {
				continue // recreated by SetPrimaryKey on load
			}
			st.Indexes = append(st.Indexes, snapIndex{Name: ix.Name(), Columns: ix.Columns()})
		}
		for ci, def := range t.Schema() {
			col := snapColumn{Name: def.Name, Type: uint8(def.Type), Nulls: make([]bool, t.NumRows())}
			for r := 0; r < t.NumRows(); r++ {
				v := t.Get(r, ci)
				if v.IsNull() {
					col.Nulls[r] = true
				}
				switch def.Type {
				case storage.TypeInt:
					var x int64
					if !v.IsNull() {
						x = v.Int()
					}
					col.Ints = append(col.Ints, x)
				case storage.TypeFloat:
					var x float64
					if !v.IsNull() {
						x = v.Float()
					}
					col.Flts = append(col.Flts, x)
				case storage.TypeString:
					var x string
					if !v.IsNull() {
						x = v.Str()
					}
					col.Strs = append(col.Strs, x)
				case storage.TypeBool:
					var x bool
					if !v.IsNull() {
						x = v.Bool()
					}
					col.Bools = append(col.Bools, x)
				}
			}
			st.Columns = append(st.Columns, col)
		}
		snap.Tables = append(snap.Tables, st)
	}
	return gob.NewEncoder(w).Encode(&snap)
}

// Load restores tables saved by Save. Tables whose names already exist in
// the database cause an error; load into a fresh DB to restore a snapshot
// wholesale.
func (db *DB) Load(r io.Reader) error {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return fmt.Errorf("pctagg: reading snapshot: %w", err)
	}
	if snap.Magic != snapMagic {
		return fmt.Errorf("pctagg: not a pctagg snapshot")
	}
	if snap.Version != 1 {
		return fmt.Errorf("pctagg: unsupported snapshot version %d", snap.Version)
	}
	for _, st := range snap.Tables {
		schema := make(storage.Schema, len(st.Columns))
		for i, c := range st.Columns {
			schema[i] = storage.ColumnDef{Name: c.Name, Type: storage.ColumnType(c.Type)}
		}
		t, err := db.eng.Catalog().Create(st.Name, schema)
		if err != nil {
			return err
		}
		row := make([]value.Value, len(st.Columns))
		for r := 0; r < st.NumRows; r++ {
			for i, c := range st.Columns {
				if c.Nulls[r] {
					row[i] = value.Null
					continue
				}
				switch storage.ColumnType(c.Type) {
				case storage.TypeInt:
					row[i] = value.NewInt(c.Ints[r])
				case storage.TypeFloat:
					row[i] = value.NewFloat(c.Flts[r])
				case storage.TypeString:
					row[i] = value.NewString(c.Strs[r])
				case storage.TypeBool:
					row[i] = value.NewBool(c.Bools[r])
				default:
					return fmt.Errorf("pctagg: snapshot column %s has unknown type %d", c.Name, c.Type)
				}
			}
			if _, err := t.AppendRow(row); err != nil {
				return err
			}
		}
		if len(st.PrimaryKey) > 0 {
			if err := t.SetPrimaryKey(st.PrimaryKey); err != nil {
				return err
			}
		}
		for _, ix := range st.Indexes {
			if _, err := t.CreateIndex(ix.Name, ix.Columns); err != nil {
				return err
			}
		}
	}
	return nil
}
