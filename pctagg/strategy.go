package pctagg

import "repro/internal/core"

// Strategies selects how percentage and horizontal queries are evaluated.
// The zero value is NOT the recommended configuration; use
// DefaultStrategies (the settings the paper's evaluation found best) and
// adjust from there.
type Strategies struct {
	Vpct VpctStrategy
	Hpct HpctStrategy
	Hagg HaggStrategy
}

// VpctStrategy mirrors the optimization knobs of the paper's Table 4.
type VpctStrategy struct {
	// CoarseTotalsFromF computes the Fj totals by re-scanning F instead of
	// reusing the partial aggregate Fk. Slower when |Fk| ≪ |F|.
	CoarseTotalsFromF bool
	// UpdateInPlace produces the result by updating Fk instead of
	// inserting into a third table. Saves a temporary table; costs up to
	// an order of magnitude when |FV| ≈ |F|.
	UpdateInPlace bool
	// SubkeyIndexes builds identical hash indexes on the common subkey of
	// Fj and Fk before the division join.
	SubkeyIndexes bool
	// MissingRows enables the optional missing-row treatment: "" (off),
	// "pre" (insert zero-measure rows into F), or "post" (zero-fill the
	// result table).
	MissingRows string
}

// HpctStrategy mirrors the strategies of the paper's Table 5.
type HpctStrategy struct {
	// FromVertical computes FH by building FV first and transposing it,
	// instead of directly from F. Recommended when the BY columns are
	// three or more, or highly selective.
	FromVertical bool
	// HashPivot evaluates the transposition with one hash lookup per row
	// instead of N CASE terms — the optimizer improvement the paper
	// proposes.
	HashPivot bool
}

// HaggStrategy mirrors the companion paper's Table 3 strategies.
type HaggStrategy struct {
	// SPJ uses the relational-operators-only strategy (N filtered
	// aggregates assembled with left outer joins) instead of CASE.
	SPJ bool
	// FromVertical aggregates from the pre-aggregate FV instead of F.
	FromVertical bool
	// HashPivot evaluates CASE transposition with one hash lookup per row.
	HashPivot bool
}

// DefaultStrategies returns the paper's recommended settings: Fj from Fk,
// INSERT-based FV with subkey indexes, FH directly from F, CASE-based
// horizontal aggregation directly from F.
func DefaultStrategies() Strategies {
	return Strategies{Vpct: VpctStrategy{SubkeyIndexes: true}}
}

// SetStrategies replaces the evaluation strategies for subsequent queries.
func (db *DB) SetStrategies(s Strategies) { db.strat = s }

// GetStrategies returns the current strategies.
func (db *DB) GetStrategies() Strategies { return db.strat }

func (s Strategies) coreOptions() core.Options {
	missing := core.MissingNone
	switch s.Vpct.MissingRows {
	case "pre":
		missing = core.MissingPre
	case "post":
		missing = core.MissingPost
	}
	method := core.HaggCASE
	if s.Hagg.SPJ {
		method = core.HaggSPJ
	}
	vopts := core.VpctOptions{
		FjFromF:       s.Vpct.CoarseTotalsFromF,
		UseUpdate:     s.Vpct.UpdateInPlace,
		SubkeyIndexes: s.Vpct.SubkeyIndexes,
		MissingRows:   missing,
	}
	return core.Options{
		Vpct: vopts,
		Hpct: core.HpctOptions{
			FromFV:    s.Hpct.FromVertical,
			Vpct:      core.VpctOptions{SubkeyIndexes: true},
			HashPivot: s.Hpct.HashPivot,
		},
		Hagg: core.HaggOptions{
			Method:    method,
			FromFV:    s.Hagg.FromVertical,
			HashPivot: s.Hagg.HashPivot,
		},
	}
}
