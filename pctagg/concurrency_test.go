package pctagg

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/leakcheck"
	"repro/internal/obs"
)

// TestObservabilityUnderConcurrency runs a mixed workload — vertical,
// horizontal, plain, and deliberately-invalid queries, several with
// Parallelism > 1 so statements fan out worker goroutines — while a shared
// trace sink collects every trace, the slow-query log is attached, and
// reader goroutines hammer the metrics registry (JSON and Names snapshots).
// The -race CI shard runs exactly this test: sink attachment, counter and
// histogram updates, dynamic error-counter registration, and registry
// snapshots must all be safe under concurrent statement execution. It also
// re-checks the trace invariants on every collected trace: positive
// durations and sum-of-sequential-children never exceeding the parent.
func TestObservabilityUnderConcurrency(t *testing.T) {
	defer leakcheck.Check(t)()
	db := Open()
	if _, err := db.Exec(`CREATE TABLE f (store INTEGER, dweek INTEGER, amt INTEGER)`); err != nil {
		t.Fatal(err)
	}
	rows := make([][]any, 0, 10000)
	for i := 0; i < 10000; i++ {
		rows = append(rows, []any{i % 50, i % 7, 1 + i%100})
	}
	if err := db.InsertRows("f", rows); err != nil {
		t.Fatal(err)
	}
	db.SetParallelism(3)
	defer db.SetParallelism(0)

	var mu sync.Mutex
	var traces []*Span
	db.SetTraceSink(func(s *Span) {
		mu.Lock()
		traces = append(traces, s)
		mu.Unlock()
	})
	defer db.SetTraceSink(nil)
	db.SetSlowQueryLog(io.Discard, 0)
	defer db.SetSlowQueryLog(nil, time.Second)

	queries := []struct {
		sql  string
		fail bool
	}{
		{"SELECT store, dweek, Vpct(amt BY dweek) FROM f GROUP BY store, dweek", false},
		{"SELECT store, Hpct(amt BY dweek) FROM f GROUP BY store", false},
		{"SELECT store, sum(amt BY dweek) FROM f GROUP BY store", false},
		{"SELECT dweek, sum(amt) FROM f GROUP BY dweek", false},
		// Rejected by the planner (BY list not a proper subset): exercises
		// the dynamic query.errors.PCTxxx counter registration.
		{"SELECT store, Vpct(amt BY store) FROM f GROUP BY store", true},
	}

	const workers, iters = 6, 5
	var wg sync.WaitGroup
	errs := make(chan error, workers*iters)
	var ok, failed int64
	var cmu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				q := queries[(w+i)%len(queries)]
				_, err := db.Query(q.sql)
				if q.fail != (err != nil) {
					errs <- fmt.Errorf("worker %d: %s: err=%v, want fail=%v", w, q.sql, err, q.fail)
					return
				}
				cmu.Lock()
				if q.fail {
					failed++
				} else {
					ok++
				}
				cmu.Unlock()
			}
		}(w)
	}
	// Registry readers racing the writers inside the queries.
	stop := make(chan struct{})
	var rwg sync.WaitGroup
	for r := 0; r < 2; r++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = obs.Default.JSON()
					_ = obs.Default.Names()
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	rwg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Every query — including the failing ones, whose traces carry the
	// error attribute — produced exactly one trace.
	if int64(len(traces)) != ok+failed {
		t.Fatalf("sink received %d traces, want %d", len(traces), ok+failed)
	}
	if obs.Default.Counter("query.errors.PCT017").Value() == 0 {
		t.Error("concurrent rejections did not register the PCT017 counter")
	}
	for _, tr := range traces {
		if tr.Name != "query" || tr.Duration <= 0 {
			t.Fatalf("bad trace root: %v", tr)
		}
		tr.Walk(func(s *Span) {
			if s.Concurrent {
				return
			}
			var sum time.Duration
			for _, c := range s.Children {
				sum += c.Duration
			}
			if s.Duration > 0 && sum > s.Duration+time.Microsecond {
				t.Errorf("children of %q (%s) sum to %s:\n%s", s.Name, s.Duration, sum,
					strings.TrimRight(s.Format(), "\n"))
			}
		})
	}
}
