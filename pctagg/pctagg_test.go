package pctagg

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
)

func demoDB(t *testing.T) *DB {
	t.Helper()
	db := Open()
	_, err := db.Exec(`CREATE TABLE sales (RID INTEGER, state VARCHAR, city VARCHAR, salesAmt INTEGER);
		INSERT INTO sales VALUES
		(1,'CA','San Francisco',13),(2,'CA','San Francisco',3),(3,'CA','San Francisco',67),
		(4,'CA','Los Angeles',23),(5,'TX','Houston',5),(6,'TX','Houston',35),
		(7,'TX','Houston',10),(8,'TX','Houston',14),(9,'TX','Dallas',53),(10,'TX','Dallas',32)`)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestQueryStandardSQL(t *testing.T) {
	db := demoDB(t)
	rows, err := db.Query("SELECT state, sum(salesAmt) FROM sales GROUP BY state ORDER BY state")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 2 || rows.Data[0][1].(int64) != 106 {
		t.Errorf("data = %v", rows.Data)
	}
}

func TestQueryVpct(t *testing.T) {
	db := demoDB(t)
	rows, err := db.Query("SELECT state, city, Vpct(salesAmt BY city) FROM sales GROUP BY state, city")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 4 {
		t.Fatalf("data = %v", rows.Data)
	}
	if got := rows.Data[0][2].(float64); math.Abs(got-23.0/106) > 1e-9 {
		t.Errorf("LA pct = %v", got)
	}
}

func TestQueryHpct(t *testing.T) {
	db := demoDB(t)
	rows, err := db.Query("SELECT state, Hpct(salesAmt BY city) FROM sales GROUP BY state")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 2 || len(rows.Columns) != 5 { // state + 4 cities
		t.Fatalf("columns = %v, data = %v", rows.Columns, rows.Data)
	}
	// Cities absent from a state read 0%.
	var caRow []any
	for _, r := range rows.Data {
		if r[0] == "CA" {
			caRow = r
		}
	}
	zero := 0
	for _, v := range caRow[1:] {
		if f, ok := v.(float64); ok && f == 0 { // floateq:ok exact expected value
			zero++
		}
	}
	if zero != 2 { // Dallas, Houston
		t.Errorf("CA row = %v", caRow)
	}
}

func TestQueryHagg(t *testing.T) {
	db := demoDB(t)
	rows, err := db.Query("SELECT state, sum(salesAmt BY city), count(*) FROM sales GROUP BY state")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Columns) != 6 {
		t.Fatalf("columns = %v", rows.Columns)
	}
	for _, r := range rows.Data {
		if r[0] == "TX" {
			// TX has no SF/LA sales: NULLs.
			nulls := 0
			for _, v := range r[1:5] {
				if v == nil {
					nulls++
				}
			}
			if nulls != 2 {
				t.Errorf("TX row = %v", r)
			}
		}
	}
}

func TestStrategiesChangeGeneratedSQL(t *testing.T) {
	db := demoDB(t)
	q := "SELECT state, city, Vpct(salesAmt BY city) FROM sales GROUP BY state, city"
	def, err := db.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(def, "INSERT INTO") || strings.Contains(def, "UPDATE") {
		t.Errorf("default plan:\n%s", def)
	}
	s := DefaultStrategies()
	s.Vpct.UpdateInPlace = true
	db.SetStrategies(s)
	upd, err := db.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(upd, "UPDATE") {
		t.Errorf("update plan:\n%s", upd)
	}
	if got := db.GetStrategies(); !got.Vpct.UpdateInPlace {
		t.Error("GetStrategies mismatch")
	}
}

func TestAllStrategiesAgreeThroughPublicAPI(t *testing.T) {
	q := "SELECT state, Hpct(salesAmt BY city) FROM sales GROUP BY state"
	variants := []Strategies{
		DefaultStrategies(),
		{Hpct: HpctStrategy{FromVertical: true}},
		{Hpct: HpctStrategy{HashPivot: true}},
	}
	var base *Rows
	for _, s := range variants {
		db := demoDB(t)
		db.SetStrategies(s)
		rows, err := db.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if base == nil {
			base = rows
			continue
		}
		if len(rows.Data) != len(base.Data) {
			t.Fatalf("row counts differ")
		}
		for i := range rows.Data {
			for j := range rows.Data[i] {
				a, b := base.Data[i][j], rows.Data[i][j]
				fa, aok := a.(float64)
				fb, bok := b.(float64)
				if aok && bok {
					if math.Abs(fa-fb) > 1e-9 {
						t.Fatalf("cell (%d,%d): %v vs %v", i, j, a, b)
					}
				} else if a != b {
					t.Fatalf("cell (%d,%d): %v vs %v", i, j, a, b)
				}
			}
		}
	}
}

func TestOLAPEquivalentRunnable(t *testing.T) {
	db := demoDB(t)
	q := "SELECT state, city, Vpct(salesAmt BY city) FROM sales GROUP BY state, city"
	olap, err := db.OLAPEquivalent(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(olap, "OVER (PARTITION BY") {
		t.Errorf("olap = %s", olap)
	}
	rows, err := db.Query(olap)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 4 {
		t.Errorf("olap rows = %v", rows.Data)
	}
	base, _ := db.Query(q)
	for i := range rows.Data {
		fa := rows.Data[i][2].(float64)
		fb := base.Data[i][2].(float64)
		if math.Abs(fa-fb) > 1e-9 {
			t.Errorf("row %d: olap %v vs vpct %v", i, fa, fb)
		}
	}
}

func TestInsertRowsBulkLoad(t *testing.T) {
	db := Open()
	if _, err := db.Exec("CREATE TABLE f (d INTEGER, a REAL, s VARCHAR, ok BOOLEAN)"); err != nil {
		t.Fatal(err)
	}
	err := db.InsertRows("f", [][]any{
		{1, 2.5, "x", true},
		{int64(2), 3.5, "y", false},
		{nil, nil, nil, nil},
	})
	if err != nil {
		t.Fatal(err)
	}
	rows, err := db.Query("SELECT count(*), sum(a) FROM f")
	if err != nil {
		t.Fatal(err)
	}
	if rows.Data[0][0].(int64) != 3 || rows.Data[0][1].(float64) != 6.0 { // floateq:ok exact expected value
		t.Errorf("data = %v", rows.Data)
	}
	if err := db.InsertRows("nosuch", nil); err == nil {
		t.Error("InsertRows into missing table must fail")
	}
	if err := db.InsertRows("f", [][]any{{"not-an-int", 1.0, "s", true}}); err == nil {
		t.Error("type mismatch must fail")
	}
}

func TestRowsString(t *testing.T) {
	db := demoDB(t)
	rows, _ := db.Query("SELECT state, sum(salesAmt) AS total FROM sales GROUP BY state ORDER BY state")
	s := rows.String()
	if !strings.Contains(s, "total") || !strings.Contains(s, "149") {
		t.Errorf("String = %q", s)
	}
}

func TestTablesAndLimits(t *testing.T) {
	db := demoDB(t)
	if tabs := db.Tables(); len(tabs) != 1 || tabs[0] != "sales" {
		t.Errorf("tables = %v", tabs)
	}
	db.SetMaxColumns(3)
	if db.MaxColumns() != 3 {
		t.Error("MaxColumns not set")
	}
	// Partitioned horizontal query still answers correctly.
	rows, err := db.Query("SELECT state, Hpct(salesAmt BY city) FROM sales GROUP BY state")
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Columns) != 5 {
		t.Errorf("columns = %v", rows.Columns)
	}
}

func TestQueryErrors(t *testing.T) {
	db := demoDB(t)
	if _, err := db.Query("UPDATE sales SET salesAmt = 0"); err == nil {
		t.Error("Query on UPDATE must fail")
	}
	if _, err := db.Query("SELECT Vpct(salesAmt BY city) FROM sales"); err == nil {
		t.Error("rule violation must surface")
	}
	if _, err := db.Exec("SELECT FROM"); err == nil {
		t.Error("parse error must surface")
	}
	if _, err := db.OLAPEquivalent("SELECT a FROM sales"); err == nil {
		t.Error("OLAP equivalent of a standard query must fail")
	}
}

func TestQueryExplainStatement(t *testing.T) {
	db := demoDB(t)
	rows, err := db.Query("EXPLAIN SELECT state, sum(salesAmt) FROM sales GROUP BY state")
	if err != nil {
		t.Fatal(err)
	}
	text := ""
	for _, r := range rows.Data {
		text += r[0].(string) + "\n"
	}
	if !strings.Contains(text, "HashAggregate") || !strings.Contains(text, "Scan sales") {
		t.Errorf("plan:\n%s", text)
	}
}

func TestShareSummariesThroughPublicAPI(t *testing.T) {
	db := demoDB(t)
	db.ShareSummaries(true)
	defer db.FlushSummaries()
	q := "SELECT state, city, Vpct(salesAmt BY city) FROM sales GROUP BY state, city"
	first, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	second, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if len(first.Data) != len(second.Data) {
		t.Fatal("shared run changed results")
	}
	for i := range first.Data {
		if first.Data[i][2].(float64) != second.Data[i][2].(float64) { // floateq:ok exact expected value
			t.Fatalf("row %d changed: %v vs %v", i, first.Data[i], second.Data[i])
		}
	}
	db.FlushSummaries()
	if len(db.Tables()) != 1 {
		t.Errorf("summaries leaked: %v", db.Tables())
	}
}

func TestConcurrentQueriesThroughPublicAPI(t *testing.T) {
	// Reads and percentage queries may run concurrently; each plan's
	// temporary tables are private.
	db := demoDB(t)
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 3; i++ {
				rows, err := db.Query("SELECT state, city, Vpct(salesAmt BY city) FROM sales GROUP BY state, city")
				if err != nil {
					errs <- err
					return
				}
				if len(rows.Data) != 4 {
					errs <- fmt.Errorf("got %d rows", len(rows.Data))
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if len(db.Tables()) != 1 {
		t.Errorf("temporaries leaked: %v", db.Tables())
	}
}
