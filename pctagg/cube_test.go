package pctagg

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

// findRow returns the first row whose leading columns equal want (nil
// matches SQL NULL).
func findRow(t *testing.T, rows *Rows, want ...any) []any {
	t.Helper()
	for _, r := range rows.Data {
		ok := true
		for i, w := range want {
			if r[i] != w {
				ok = false
				break
			}
		}
		if ok {
			return r
		}
	}
	t.Fatalf("no row with prefix %v in %v", want, rows.Data)
	return nil
}

func TestQueryRollup(t *testing.T) {
	db := demoDB(t)
	rows, err := db.Query(`SELECT state, city, sum(salesAmt), GROUPING(state, city)
		FROM sales GROUP BY ROLLUP(state, city)`)
	if err != nil {
		t.Fatal(err)
	}
	// 4 (state, city) nodes + 2 state nodes + 1 grand total.
	if len(rows.Data) != 7 {
		t.Fatalf("rows = %v", rows.Data)
	}
	r := findRow(t, rows, "CA", "Los Angeles")
	if r[2].(int64) != 23 || r[3].(int64) != 0 {
		t.Errorf("finest row = %v", r)
	}
	r = findRow(t, rows, "TX", nil)
	if r[2].(int64) != 149 || r[3].(int64) != 1 {
		t.Errorf("state row = %v", r)
	}
	r = findRow(t, rows, nil, nil)
	if r[2].(int64) != 255 || r[3].(int64) != 3 {
		t.Errorf("grand total = %v", r)
	}
	// Node-major order: finest block first, grand total last.
	last := rows.Data[len(rows.Data)-1]
	if last[0] != nil || last[1] != nil {
		t.Errorf("grand total not last: %v", last)
	}
}

func TestQueryCubeVpct(t *testing.T) {
	db := demoDB(t)
	rows, err := db.Query(`SELECT state, city, Vpct(salesAmt BY city), GROUPING(state, city)
		FROM sales GROUP BY CUBE(state, city)`)
	if err != nil {
		t.Fatal(err)
	}
	// 4 + 2 + 4 + 1 rows.
	if len(rows.Data) != 11 {
		t.Fatalf("%d rows: %v", len(rows.Data), rows.Data)
	}
	// Finest node: percentage of the state's total, as without CUBE.
	r := findRow(t, rows, "CA", "Los Angeles")
	if got := r[2].(float64); math.Abs(got-23.0/106) > 1e-9 {
		t.Errorf("LA pct = %v", got)
	}
	// (state) node: city rolled away entirely, so each row is its own
	// super-group: 100%.
	r = findRow(t, rows, "CA", nil)
	if got := r[2].(float64); math.Abs(got-1) > 1e-9 {
		t.Errorf("CA pct = %v", got)
	}
	// (city) node: share of the grand total per city.
	r = findRow(t, rows, nil, "Houston")
	if got := r[2].(float64); math.Abs(got-64.0/255) > 1e-9 {
		t.Errorf("Houston pct = %v", got)
	}
	if r[3].(int64) != 2 { // GROUPING(state, city) = 10b
		t.Errorf("Houston marker = %v", r[3])
	}
}

// TestQueryRollupVpctGrandTotal pins the BY-less Vpct form: an empty BY
// list means totals over all rows at every node, so the finest rows are
// shares of the grand total and the grand-total row is exactly 100%.
func TestQueryRollupVpctGrandTotal(t *testing.T) {
	db := demoDB(t)
	rows, err := db.Query(`SELECT state, Vpct(salesAmt)
		FROM sales GROUP BY ROLLUP(state)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 3 {
		t.Fatalf("rows = %v", rows.Data)
	}
	r := findRow(t, rows, "CA")
	if got := r[1].(float64); math.Abs(got-106.0/255) > 1e-9 {
		t.Errorf("CA share = %v", got)
	}
	r = findRow(t, rows, nil)
	if got := r[1].(float64); math.Abs(got-1) > 1e-9 {
		t.Errorf("grand-total share = %v", got)
	}
}

func TestQueryGroupingSets(t *testing.T) {
	db := demoDB(t)
	rows, err := db.Query(`SELECT state, city, sum(salesAmt)
		FROM sales GROUP BY GROUPING SETS ((state), (city))`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 6 { // 2 states + 4 cities
		t.Fatalf("rows = %v", rows.Data)
	}
	r := findRow(t, rows, "CA", nil)
	if r[2].(int64) != 106 {
		t.Errorf("CA row = %v", r)
	}
	r = findRow(t, rows, nil, "Dallas")
	if r[2].(int64) != 85 {
		t.Errorf("Dallas row = %v", r)
	}
}

func TestQueryRollupHpct(t *testing.T) {
	db := demoDB(t)
	rows, err := db.Query(`SELECT state, Hpct(salesAmt BY city)
		FROM sales GROUP BY ROLLUP(state)`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 3 || len(rows.Columns) != 5 {
		t.Fatalf("columns = %v, rows = %v", rows.Columns, rows.Data)
	}
	// The grand-total row transposes shares of the global total.
	r := findRow(t, rows, nil)
	sum := 0.0
	for _, v := range r[1:] {
		sum += v.(float64)
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("grand-total Hpct row sums to %v: %v", sum, r)
	}
	var houston float64
	for i, c := range rows.Columns {
		if c == "Houston" {
			houston = r[i].(float64)
		}
	}
	if math.Abs(houston-64.0/255) > 1e-9 {
		t.Errorf("Houston share = %v", houston)
	}
}

func TestQueryRollupOrderAndLimit(t *testing.T) {
	db := demoDB(t)
	rows, err := db.Query(`SELECT state, sum(salesAmt) AS total
		FROM sales GROUP BY ROLLUP(state) ORDER BY total DESC LIMIT 2`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows.Data) != 2 {
		t.Fatalf("rows = %v", rows.Data)
	}
	if rows.Data[0][1].(int64) != 255 || rows.Data[1][1].(int64) != 149 {
		t.Errorf("rows = %v", rows.Data)
	}
}

func TestQueryCubeRejectsNonDistributive(t *testing.T) {
	db := demoDB(t)
	_, err := db.Query(`SELECT state, avg(salesAmt) FROM sales GROUP BY ROLLUP(state)`)
	if err == nil {
		t.Fatal("avg under ROLLUP should be rejected")
	}
	// min/max/count/sum are all derivable.
	rows, err := db.Query(`SELECT state, min(salesAmt), max(salesAmt), count(*), sum(salesAmt)
		FROM sales GROUP BY ROLLUP(state)`)
	if err != nil {
		t.Fatal(err)
	}
	r := findRow(t, rows, nil)
	if r[1].(int64) != 3 || r[2].(int64) != 67 || r[3].(int64) != 10 || r[4].(int64) != 255 {
		t.Errorf("grand total = %v", r)
	}
}

// TestCubeLatticeFromCache proves the headline property: a finest summary
// cached by a plain Vpct query answers an entire CUBE lattice with no
// base-table scan, and incremental maintenance keeps the lattice consistent
// under DML.
func TestCubeLatticeFromCache(t *testing.T) {
	db := cacheWorkloadDB(t)
	db.EnableSummaryCache(true)
	const vq = "SELECT store, dweek, Vpct(amt BY dweek) FROM f GROUP BY store, dweek"
	const cq = "SELECT store, dweek, Vpct(amt BY dweek), GROUPING(store, dweek) FROM f GROUP BY CUBE(store, dweek)"

	// The plain Vpct query warms the cache; the cube's finest summary shares
	// its key, so the whole lattice derives from the cached table.
	if _, err := db.Query(vq); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Query(cq); err != nil {
		t.Fatal(err)
	}
	s := db.SummaryCacheStats()
	if s.LatticePlans != 1 || s.LatticeNodes != 4 {
		t.Errorf("lattice stats = %+v", s)
	}
	if s.LatticeFinestReused != 1 {
		t.Errorf("cube did not reuse the Vpct query's cached summary: %+v", s)
	}

	// DML, then re-query: the delta path must refresh the finest summary and
	// every node must agree with a cold evaluation.
	for _, stmt := range []string{
		"INSERT INTO f VALUES (3, 5, 41)",
		"INSERT INTO f VALUES (21, 2, 17)", // a brand-new store group
	} {
		if _, err := db.Exec(stmt); err != nil {
			t.Fatal(err)
		}
	}
	got, err := db.Query(cq)
	if err != nil {
		t.Fatal(err)
	}
	cold := cacheWorkloadDB(t)
	for _, stmt := range []string{
		"INSERT INTO f VALUES (3, 5, 41)",
		"INSERT INTO f VALUES (21, 2, 17)",
	} {
		if _, err := cold.Exec(stmt); err != nil {
			t.Fatal(err)
		}
	}
	want, err := cold.Query(cq)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Data, want.Data) {
		t.Fatalf("cached lattice diverges from cold evaluation after DML:\ngot  %v\nwant %v", got.Data, want.Data)
	}
	s = db.SummaryCacheStats()
	if s.LatticeFinestReused != 2 {
		t.Errorf("post-DML cube should still ride the cached summary via delta: %+v", s)
	}
}

// TestCubeExplainSingleScan checks the acceptance criterion directly: the
// CUBE plan contains exactly one step that scans the base table.
func TestCubeExplainSingleScan(t *testing.T) {
	db := demoDB(t)
	rows, err := db.Query(`EXPLAIN SELECT state, city, Vpct(salesAmt BY city)
		FROM sales GROUP BY CUBE(state, city)`)
	if err != nil {
		t.Fatal(err)
	}
	scans, latticeSteps := 0, 0
	for _, r := range rows.Data {
		line := r[0].(string)
		if strings.Contains(line, "FROM sales") {
			scans++
		}
		if strings.Contains(line, "lattice node") {
			latticeSteps++
		}
	}
	if scans != 1 {
		t.Errorf("expected exactly one base-table scan in the plan, found %d:\n%v", scans, rows.Data)
	}
	if latticeSteps == 0 {
		t.Errorf("plan shows no per-node lattice steps:\n%v", rows.Data)
	}
}

func TestQueryCubeNoTempLeak(t *testing.T) {
	db := demoDB(t)
	if _, err := db.Query(`SELECT state, city, Vpct(salesAmt BY city)
		FROM sales GROUP BY CUBE(state, city)`); err != nil {
		t.Fatal(err)
	}
	if n := len(db.Tables()); n != 1 {
		t.Errorf("tables after cube query = %v", db.Tables())
	}
}
