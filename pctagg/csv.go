package pctagg

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/storage"
)

// CSVOptions configures LoadCSV.
type CSVOptions struct {
	// Header treats the first record as column names. Required when
	// CreateTable is set.
	Header bool
	// CreateTable infers a schema (INTEGER → REAL → VARCHAR, per column)
	// and creates the table before loading. Without it the target table
	// must exist and values are coerced to its declared types.
	CreateTable bool
	// NullToken marks SQL NULL in the file, in addition to the empty
	// string.
	NullToken string
	// Comma overrides the field delimiter (default ',').
	Comma rune
}

// LoadCSV reads delimited text into a table and returns the number of rows
// loaded.
func (db *DB) LoadCSV(table string, r io.Reader, opts CSVOptions) (int, error) {
	cr := csv.NewReader(r)
	if opts.Comma != 0 {
		cr.Comma = opts.Comma
	}
	cr.ReuseRecord = false
	records, err := cr.ReadAll()
	if err != nil {
		return 0, fmt.Errorf("pctagg: reading CSV: %w", err)
	}
	if len(records) == 0 {
		return 0, fmt.Errorf("pctagg: empty CSV input")
	}

	var header []string
	if opts.Header {
		header = records[0]
		records = records[1:]
	}

	isNull := func(s string) bool {
		return s == "" || (opts.NullToken != "" && s == opts.NullToken)
	}

	if opts.CreateTable {
		if header == nil {
			return 0, fmt.Errorf("pctagg: CreateTable requires Header")
		}
		kinds := make([]int, len(header)) // 0 int, 1 float, 2 string
		seen := make([]bool, len(header))
		for _, rec := range records {
			for i, cell := range rec {
				if i >= len(header) || isNull(cell) {
					continue
				}
				seen[i] = true
				if kinds[i] == 0 {
					if _, err := strconv.ParseInt(cell, 10, 64); err == nil {
						continue
					}
					kinds[i] = 1
				}
				if kinds[i] == 1 {
					if _, err := strconv.ParseFloat(cell, 64); err == nil {
						continue
					}
					kinds[i] = 2
				}
			}
		}
		defs := make([]string, len(header))
		for i, h := range header {
			typ := "VARCHAR"
			if seen[i] {
				typ = []string{"INTEGER", "REAL", "VARCHAR"}[kinds[i]]
			}
			defs[i] = quoteCSVIdent(h) + " " + typ
		}
		if _, err := db.Exec(fmt.Sprintf("CREATE TABLE %s (%s)", table, strings.Join(defs, ", "))); err != nil {
			return 0, err
		}
	}

	// Coerce cells to the table's declared types.
	t, err := db.eng.Catalog().Get(table)
	if err != nil {
		return 0, err
	}
	schema := t.Schema()
	rows := make([][]any, 0, len(records))
	for ri, rec := range records {
		if len(rec) != len(schema) {
			return 0, fmt.Errorf("pctagg: CSV row %d has %d fields, table %s has %d columns", ri+1, len(rec), table, len(schema))
		}
		row := make([]any, len(rec))
		for i, cell := range rec {
			if isNull(cell) {
				row[i] = nil
				continue
			}
			switch schema[i].Type {
			case storage.TypeInt:
				n, err := strconv.ParseInt(cell, 10, 64)
				if err != nil {
					return 0, fmt.Errorf("pctagg: CSV row %d column %s: %q is not an integer", ri+1, schema[i].Name, cell)
				}
				row[i] = n
			case storage.TypeFloat:
				f, err := strconv.ParseFloat(cell, 64)
				if err != nil {
					return 0, fmt.Errorf("pctagg: CSV row %d column %s: %q is not a number", ri+1, schema[i].Name, cell)
				}
				row[i] = f
			case storage.TypeBool:
				switch strings.ToLower(cell) {
				case "true", "t", "1":
					row[i] = true
				case "false", "f", "0":
					row[i] = false
				default:
					return 0, fmt.Errorf("pctagg: CSV row %d column %s: %q is not a boolean", ri+1, schema[i].Name, cell)
				}
			default:
				row[i] = cell
			}
		}
		rows = append(rows, row)
	}
	if err := db.InsertRows(table, rows); err != nil {
		return 0, err
	}
	return len(rows), nil
}

// WriteCSV runs a query and writes its result as CSV with a header row.
// NULL renders as the empty string (or nullToken if nonempty).
func (db *DB) WriteCSV(w io.Writer, query string, nullToken string) error {
	rows, err := db.Query(query)
	if err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(rows.Columns); err != nil {
		return err
	}
	rec := make([]string, len(rows.Columns))
	for _, row := range rows.Data {
		for i, v := range row {
			switch x := v.(type) {
			case nil:
				rec[i] = nullToken
			case float64:
				rec[i] = strconv.FormatFloat(x, 'g', -1, 64)
			case int64:
				rec[i] = strconv.FormatInt(x, 10)
			case bool:
				rec[i] = strconv.FormatBool(x)
			default:
				rec[i] = fmt.Sprint(x)
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// quoteCSVIdent quotes a header cell for use as a column name.
func quoteCSVIdent(s string) string {
	simple := s != ""
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || i > 0 && c >= '0' && c <= '9') {
			simple = false
			break
		}
	}
	if simple {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}
