// Observability surface of the public API: execution traces, the metrics
// registry, and the slow-query log. See DESIGN.md's "Observability" section
// for the span model and metric naming rules.
package pctagg

import (
	"context"
	"errors"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/obs"
	"repro/internal/sqlparse"
)

// Span is one node of an execution trace: a named stage with a monotonic
// duration, optional row counts and attributes, and child stages. Concurrent
// spans (partition fan-outs) hold one child per worker whose wall times
// overlap. See internal/obs for the full API (Find, Walk, Format,
// StageTotals).
type Span = obs.Span

// Query-level metrics: statements by class, plus dynamic per-code error
// counters (query.errors.PCTxxx) registered on first occurrence.
var (
	mQueryPlain = obs.Default.Counter("query.plain")
	mQueryVpct  = obs.Default.Counter("query.vpct")
	mQueryHpct  = obs.Default.Counter("query.hpct")
	mQueryHagg  = obs.Default.Counter("query.hagg")
)

// SetTraceSink attaches a per-query trace sink: after every Query call the
// sink receives the root span of that query's execution trace (parse, plan,
// per-step statement spans, operator details, parallel worker breakdowns).
// Pass nil to detach. With no sink attached tracing is off and queries pay
// no tracing cost. The sink runs synchronously on the querying goroutine; it
// must not call back into the DB.
func (db *DB) SetTraceSink(fn func(*Span)) {
	if fn == nil {
		db.sink.Store(nil)
		return
	}
	db.sink.Store(&sinkBox{fn: fn})
}

// SetSlowQueryLog logs every SQL statement whose execution exceeds
// threshold to w, one "slow query (<duration>): <sql>" line each. This is
// statement-granular: a percentage query that rewrites into several
// statements can log several lines. Pass a nil writer to disable.
func (db *DB) SetSlowQueryLog(w io.Writer, threshold time.Duration) {
	db.eng.SetSlowQueryLog(w, threshold)
}

// QueryTraced runs one SELECT like Query and also returns the execution
// trace, whether or not a trace sink is attached (the sink, if any, is not
// invoked). The trace is returned even when the query fails, annotated with
// the error.
func (db *DB) QueryTraced(sql string) (*Rows, *Span, error) {
	return db.QueryTracedCtx(context.Background(), sql)
}

// QueryTracedCtx is QueryTraced under a context (see QueryCtx). The trace is
// returned even when the query is cancelled mid-flight, with every span
// closed.
func (db *DB) QueryTracedCtx(ctx context.Context, sql string) (*Rows, *Span, error) {
	root := newQuerySpan(sql)
	rows, err := db.queryIn(ctx, sql, root)
	finishQuerySpan(root, err)
	return rows, root, err
}

// MetricsJSON renders every registered metric — counters, gauges, and
// histograms, across the engine, planner, and query layers — as one sorted
// JSON object, expvar-style.
func (db *DB) MetricsJSON() string { return obs.Default.JSON() }

func newQuerySpan(sql string) *Span {
	root := obs.NewSpan("query")
	root.Attr("sql", sql)
	return root
}

func finishQuerySpan(root *Span, err error) {
	root.End()
	if err != nil {
		root.Attr("error", err.Error())
	}
}

func countQueryClass(class core.QueryClass) {
	switch class {
	case core.ClassVertical:
		mQueryVpct.Inc()
	case core.ClassHorizontalPct:
		mQueryHpct.Inc()
	case core.ClassHorizontalAgg:
		mQueryHagg.Inc()
	default:
		mQueryPlain.Inc()
	}
}

// countQueryError bumps the per-diagnostic-code error counter. Any error
// carrying a stable PCTxxx code counts under it — planner rejections
// (core.CodedError) and the engine's typed lifecycle errors (cancellation,
// deadline, limits, contained panics) alike; parse failures map to the
// linter's syntax code; anything else lands in query.errors.other.
func countQueryError(err error) {
	code := "other"
	var coded interface{ Code() string }
	var se *sqlparse.SyntaxError
	switch {
	case errors.As(err, &coded):
		code = coded.Code()
	case errors.As(err, &se):
		code = diag.CodeSyntax
	}
	obs.Default.Counter("query.errors." + code).Inc()
}
