package pctagg

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/diag"
	"repro/internal/leakcheck"
)

// TestTraceSpansAllClosed is the trace invariant: every span in a finished
// trace has been Ended, on success, error, and cancellation paths alike. A
// zero-duration span is an early return that skipped End.
func TestTraceSpansAllClosed(t *testing.T) {
	cases := []struct {
		name    string
		prep    func(db *DB)
		ctx     func() context.Context
		sql     string
		wantErr bool
	}{
		{name: "standard", sql: "SELECT state, sum(salesAmt) FROM sales GROUP BY state"},
		{name: "vpct", sql: "SELECT state, city, Vpct(salesAmt BY city) FROM sales GROUP BY state, city"},
		{
			name: "hpct-hash-pivot",
			prep: func(db *DB) { db.SetStrategies(Strategies{Hpct: HpctStrategy{HashPivot: true}}) },
			sql:  "SELECT state, Hpct(salesAmt BY city) FROM sales GROUP BY state",
		},
		{name: "hpct-sql", sql: "SELECT state, Hpct(salesAmt BY city) FROM sales GROUP BY state"},
		// Runtime error mid-statement: ORDER BY a column that does not exist
		// fails after the scan has produced rows (the fixed sort-span path).
		{name: "sort-error", sql: "SELECT state FROM sales ORDER BY nosuch", wantErr: true},
		{
			name: "pre-cancelled",
			ctx: func() context.Context {
				ctx, cancel := context.WithCancel(context.Background())
				cancel()
				return ctx
			},
			sql:     "SELECT state, sum(salesAmt) FROM sales GROUP BY state",
			wantErr: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			db := demoDB(t)
			db.SetParallelism(4)
			if tc.prep != nil {
				tc.prep(db)
			}
			ctx := context.Background()
			if tc.ctx != nil {
				ctx = tc.ctx()
			}
			_, root, err := db.QueryTracedCtx(ctx, tc.sql)
			if tc.wantErr != (err != nil) {
				t.Fatalf("err = %v, wantErr = %v", err, tc.wantErr)
			}
			if root == nil {
				t.Fatal("no trace returned")
			}
			if un := root.Unclosed(); len(un) > 0 {
				names := make([]string, len(un))
				for i, s := range un {
					names[i] = s.Name
				}
				t.Errorf("unclosed spans: %v\n%s", names, root.Format())
			}
		})
	}
}

// TestQueryCtxCancellation: a cancelled context surfaces as the typed
// PCT200 error through the public Query path, and nothing leaks.
func TestQueryCtxCancellation(t *testing.T) {
	defer leakcheck.Check(t)()
	db := demoDB(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := db.QueryCtx(ctx, "SELECT state, Vpct(salesAmt BY city) FROM sales GROUP BY state, city")
	if err == nil {
		t.Fatal("cancelled query succeeded")
	}
	var coded interface{ Code() string }
	if !errors.As(err, &coded) || coded.Code() != diag.CodeCancelled {
		t.Fatalf("err = %v, want code %s", err, diag.CodeCancelled)
	}
	if !errors.Is(err, context.Canceled) {
		t.Error("cancellation cause not preserved through the public API")
	}
}

// TestSetLimitsMaxPivotColumns: the pivot-width budget rejects a too-wide
// Hpct query at plan time with PCT204.
func TestSetLimitsMaxPivotColumns(t *testing.T) {
	db := demoDB(t)
	db.SetLimits(Limits{MaxPivotColumns: 2})
	_, err := db.Query("SELECT state, Hpct(salesAmt BY city) FROM sales GROUP BY state")
	if err == nil {
		t.Fatal("4-city Hpct under MaxPivotColumns=2 succeeded")
	}
	var coded interface{ Code() string }
	if !errors.As(err, &coded) || coded.Code() != diag.CodePivotLimit {
		t.Fatalf("err = %v, want code %s", err, diag.CodePivotLimit)
	}
	// Within budget still works.
	db.SetLimits(Limits{MaxPivotColumns: 4})
	if _, err := db.Query("SELECT state, Hpct(salesAmt BY city) FROM sales GROUP BY state"); err != nil {
		t.Fatalf("Hpct within pivot budget failed: %v", err)
	}
}

// TestRuntimeErrorsCounted: lifecycle errors land in the per-code
// query.errors.* counters like any other coded failure.
func TestRuntimeErrorsCounted(t *testing.T) {
	db := demoDB(t)
	before := strings.Count(db.MetricsJSON(), `"query.errors.`+diag.CodeCancelled+`"`)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := db.QueryCtx(ctx, "SELECT state FROM sales"); err == nil {
		t.Fatal("cancelled query succeeded")
	}
	if !strings.Contains(db.MetricsJSON(), `"query.errors.`+diag.CodeCancelled+`"`) {
		t.Fatalf("query.errors.%s not in metrics after cancelled query (before=%d)", diag.CodeCancelled, before)
	}
}

// TestSetLimitsRoundTrip pins the accessor pair.
func TestSetLimitsRoundTrip(t *testing.T) {
	db := demoDB(t)
	lim := Limits{MaxRows: 100, MaxGroups: 10, MaxPivotColumns: 3, MaxBytes: 1 << 20}
	db.SetLimits(lim)
	if got := db.Limits(); got != lim {
		t.Errorf("Limits() = %+v, want %+v", got, lim)
	}
}
