package pctagg

import (
	"strings"
	"testing"
)

func TestLintReportsAllViolations(t *testing.T) {
	db := Open()
	if _, err := db.Exec(`CREATE TABLE sales (state VARCHAR, city VARCHAR, amt INTEGER)`); err != nil {
		t.Fatal(err)
	}
	// Two independent violations in one statement: fail-fast Query reports
	// one; Lint must report both, with positions.
	ds := db.Lint(`SELECT state, Vpct(amt BY state, city), Vpct(nosuch BY city)
FROM sales GROUP BY state, city`)
	var codes []string
	for _, d := range ds {
		codes = append(codes, d.Code)
		if d.Line == 0 || d.Col == 0 {
			t.Errorf("diagnostic %s has no position: %+v", d.Code, d)
		}
		if d.Severity != "error" {
			t.Errorf("diagnostic %s severity = %q, want error", d.Code, d.Severity)
		}
	}
	joined := strings.Join(codes, ",")
	if !strings.Contains(joined, "PCT017") || !strings.Contains(joined, "PCT024") {
		t.Fatalf("want PCT017 and PCT024, got %v", codes)
	}
}

func TestLintDoesNotExecuteSetup(t *testing.T) {
	db := Open()
	ds := db.Lint(`CREATE TABLE t (a INTEGER); SELECT a, Hpct(a BY a) FROM t GROUP BY a`)
	// The CREATE must not run: the SELECT then fails with unknown table,
	// and the catalog stays empty.
	if len(ds) != 1 || ds[0].Code != "PCT010" {
		t.Fatalf("want a single PCT010, got %+v", ds)
	}
	if n := len(db.Tables()); n != 0 {
		t.Fatalf("Lint executed DDL: %d tables", n)
	}
}

func TestLintCleanQuery(t *testing.T) {
	db := Open()
	if _, err := db.Exec(`CREATE TABLE f (region VARCHAR, quarter INTEGER, amt INTEGER);
INSERT INTO f VALUES ('East', 1, 10), ('East', 2, 20), ('West', 1, 15), ('West', 2, 25)`); err != nil {
		t.Fatal(err)
	}
	ds := db.Lint(`SELECT region, quarter, Vpct(amt BY quarter) FROM f GROUP BY region, quarter ORDER BY region, quarter`)
	if len(ds) != 0 {
		t.Fatalf("clean query produced findings: %+v", ds)
	}
}

// TestLintStaticAnalysis round-trips one of the interval-analysis codes
// through the public API: a contradictory WHERE must surface as PCT106
// with a position, and the satisfiable near-miss must stay clean.
func TestLintStaticAnalysis(t *testing.T) {
	db := Open()
	if _, err := db.Exec(`CREATE TABLE f (region VARCHAR, quarter INTEGER, amt INTEGER);
INSERT INTO f VALUES ('East', 1, 10), ('East', 2, 20), ('West', 1, 15), ('West', 2, 25)`); err != nil {
		t.Fatal(err)
	}
	ds := db.Lint(`SELECT region, count(*) FROM f WHERE amt > 100 AND amt < 50 GROUP BY region ORDER BY region`)
	if len(ds) != 1 || ds[0].Code != "PCT106" || ds[0].Severity != "warning" {
		t.Fatalf("want one PCT106 warning, got %+v", ds)
	}
	if ds[0].Line == 0 || ds[0].Col == 0 {
		t.Fatalf("PCT106 has no position: %+v", ds[0])
	}
	ds = db.Lint(`SELECT region, count(*) FROM f WHERE amt > 50 AND amt < 100 GROUP BY region ORDER BY region`)
	if len(ds) != 0 {
		t.Fatalf("satisfiable near-miss produced findings: %+v", ds)
	}
}

func TestLintSyntaxError(t *testing.T) {
	db := Open()
	ds := db.Lint(`SELECT FROM`)
	if len(ds) != 1 || ds[0].Code != "PCT000" || ds[0].Severity != "error" {
		t.Fatalf("want one PCT000 error, got %+v", ds)
	}
	if !strings.Contains(ds[0].String(), "PCT000") {
		t.Fatalf("String() missing code: %s", ds[0].String())
	}
}
