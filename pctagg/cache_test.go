package pctagg

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/leakcheck"
)

// cacheWorkloadDML is the writer's deterministic statement sequence: mostly
// inserts (the incremental path), with periodic updates and deletes (the
// invalidation path).
func cacheWorkloadDML(writes int) []string {
	stmts := make([]string, 0, writes)
	for i := 0; i < writes; i++ {
		switch {
		case i%11 == 10:
			stmts = append(stmts, fmt.Sprintf("UPDATE f SET amt = amt + %d WHERE store = %d", i%5, i%20))
		case i%17 == 16:
			stmts = append(stmts, fmt.Sprintf("DELETE FROM f WHERE store = %d AND dweek = %d", i%20, i%7))
		default:
			stmts = append(stmts, fmt.Sprintf("INSERT INTO f VALUES (%d, %d, %d)", i%20, i%7, 1+i%100))
		}
	}
	return stmts
}

func cacheWorkloadDB(t *testing.T) *DB {
	t.Helper()
	db := Open()
	if _, err := db.Exec(`CREATE TABLE f (store INTEGER, dweek INTEGER, amt INTEGER)`); err != nil {
		t.Fatal(err)
	}
	rows := make([][]any, 0, 2000)
	for i := 0; i < 2000; i++ {
		rows = append(rows, []any{i % 20, i % 7, 1 + i%100})
	}
	if err := db.InsertRows("f", rows); err != nil {
		t.Fatal(err)
	}
	return db
}

// TestCacheUnderConcurrentDML races query submitters against a DML writer
// with the summary cache enabled. The engine's storage is single-writer, so
// an RWMutex serializes statements against queries the way an embedding
// application would; what races freely is everything the cache adds —
// epoch reads, hook bookkeeping, lookup/publish, the stats — across
// goroutines, which the -race shard checks. Correctness: every concurrent
// query must succeed, and once the writer quiesces the cached answer must
// equal a cold replay of the same statement sequence.
func TestCacheUnderConcurrentDML(t *testing.T) {
	defer leakcheck.Check(t)()
	db := cacheWorkloadDB(t)
	db.EnableSummaryCache(true)
	const q = "SELECT store, dweek, Vpct(amt BY dweek) FROM f GROUP BY store, dweek"
	if _, err := db.Query(q); err != nil {
		t.Fatal(err)
	}

	dml := cacheWorkloadDML(40)
	var rw sync.RWMutex
	const readers, iters = 4, 25
	errs := make(chan error, readers*iters+len(dml))
	var wg sync.WaitGroup
	for w := 0; w < readers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				rw.RLock()
				_, err := db.Query(q)
				rw.RUnlock()
				if err != nil {
					errs <- fmt.Errorf("reader %d iter %d: %v", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i, stmt := range dml {
			rw.Lock()
			_, err := db.Exec(stmt)
			rw.Unlock()
			if err != nil {
				errs <- fmt.Errorf("writer stmt %d %s: %v", i, stmt, err)
				return
			}
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Quiesced: the cached answer must match a cold replay bit for bit.
	got, err := db.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	cold := cacheWorkloadDB(t)
	for _, stmt := range dml {
		if _, err := cold.Exec(stmt); err != nil {
			t.Fatal(err)
		}
	}
	want, err := cold.Query(q)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Data, want.Data) {
		t.Fatalf("cached result diverges from cold replay after concurrent DML:\n%v\nwant\n%v", got.Data, want.Data)
	}

	s := db.SummaryCacheStats()
	if s.Hits == 0 || s.Misses == 0 {
		t.Errorf("workload did not exercise both hit and miss paths: %+v", s)
	}
	if s.Invalidations == 0 {
		t.Errorf("updates and deletes ran but nothing invalidated: %+v", s)
	}
}
