package lint

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/diag"
)

var (
	backtickString = regexp.MustCompile("`([^`]*)`")
	quotedString   = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)
	sqlStart       = regexp.MustCompile(`(?is)^\s*(CREATE|INSERT|SELECT|EXPLAIN)\s`)
)

// sqlLiterals extracts the SQL statement literals from a Go source file, in
// source order.
func sqlLiterals(src string) []string {
	type hit struct {
		pos int
		sql string
	}
	var hits []hit
	for _, re := range []*regexp.Regexp{backtickString, quotedString} {
		for _, m := range re.FindAllStringSubmatchIndex(src, -1) {
			s := src[m[2]:m[3]]
			if sqlStart.MatchString(s) {
				hits = append(hits, hit{pos: m[0], sql: s})
			}
		}
	}
	for i := range hits {
		for j := i + 1; j < len(hits); j++ {
			if hits[j].pos < hits[i].pos {
				hits[i], hits[j] = hits[j], hits[i]
			}
		}
	}
	out := make([]string, len(hits))
	for i, h := range hits {
		out[i] = h.sql
	}
	return out
}

// exampleFixtures declares tables an example creates outside SQL (e.g.
// CSV ingestion with schema inference), so its queries can resolve.
var exampleFixtures = map[string]string{
	"etlpipeline": `CREATE TABLE tx (region VARCHAR, store INTEGER, category VARCHAR, month INTEGER, amount INTEGER)`,
}

// TestExamplesLintClean asserts every SQL statement embedded in the
// example programs lints free of error-severity findings: the shipped
// examples must satisfy the usage rules they demonstrate. (Example data is
// loaded programmatically, so the data-aware warning checks see empty
// tables and stay quiet; only the rule checks are exercised here.)
func TestExamplesLintClean(t *testing.T) {
	mains, err := filepath.Glob(filepath.Join("..", "..", "examples", "*", "main.go"))
	if err != nil || len(mains) == 0 {
		t.Fatalf("no example programs found: %v", err)
	}
	for _, path := range mains {
		name := filepath.Base(filepath.Dir(path))
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			stmts := sqlLiterals(string(src))
			if len(stmts) == 0 {
				t.Fatalf("no SQL literals found in %s", path)
			}
			l := newLinter()
			if fixture := exampleFixtures[name]; fixture != "" {
				if _, err := l.LintSQL(fixture); err != nil {
					t.Fatal(err)
				}
			}
			for _, sql := range stmts {
				ds, err := l.LintSQL(sql)
				if err != nil {
					t.Fatalf("setup failed for %q: %v", sql, err)
				}
				for _, d := range ds {
					if d.Severity == diag.Error {
						t.Errorf("example statement lints with an error:\n  %s\n  %s", sql, Render("", d))
					}
				}
			}
		})
	}
}

// TestCoreGoldenQueriesLintClean asserts the queries documented in the
// planner's golden SQL corpus lint free of error-severity findings against
// the fixture they were generated from.
func TestCoreGoldenQueriesLintClean(t *testing.T) {
	b, err := os.ReadFile(filepath.Join("..", "core", "testdata", "generated_sql.golden"))
	if err != nil {
		t.Fatal(err)
	}
	l := newLinter()
	fixture := `
CREATE TABLE sales (RID INTEGER, state VARCHAR, city VARCHAR, salesAmt INTEGER);
INSERT INTO sales VALUES
  (1, 'CA', 'San Francisco', 13), (2, 'CA', 'San Francisco', 3),
  (3, 'CA', 'San Francisco', 67), (4, 'CA', 'Los Angeles', 23),
  (5, 'TX', 'Houston', 5), (6, 'TX', 'Houston', 35),
  (7, 'TX', 'Houston', 10), (8, 'TX', 'Houston', 14),
  (9, 'TX', 'Dallas', 53), (10, 'TX', 'Dallas', 32);
CREATE TABLE daily (store INTEGER, dweek VARCHAR, salesAmt INTEGER);
INSERT INTO daily VALUES
  (2,'Mo',7),(2,'Tu',6),(2,'We',8),(2,'Th',9),(2,'Fr',16),(2,'Sa',24),(2,'Su',30),
  (4,'Tu',9),(4,'We',9),(4,'Th',9),(4,'Fr',18),(4,'Sa',20),(4,'Su',35);`
	if _, err := l.LintSQL(fixture); err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, line := range strings.Split(string(b), "\n") {
		query, ok := strings.CutPrefix(strings.TrimSpace(line), "-- query: ")
		if !ok {
			continue
		}
		n++
		ds, err := l.LintSQL(query)
		if err != nil {
			t.Fatalf("lint %q: %v", query, err)
		}
		for _, d := range ds {
			if d.Severity == diag.Error {
				t.Errorf("golden query lints with an error:\n  %s\n  %s", query, Render("", d))
			}
		}
	}
	if n == 0 {
		t.Fatal("no -- query: lines found in golden corpus")
	}
}
