package lint

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/engine"
	"repro/internal/storage"
)

var update = flag.Bool("update", false, "rewrite golden files")

// newLinter returns a linter over a fresh, empty engine.
func newLinter() *Linter {
	return New(core.NewPlanner(engine.New(storage.NewCatalog())))
}

// lintFile lints one corpus file with a fresh engine. Directives like
// "-- lint:max-columns=N" are honored by LintSQL itself.
func lintFile(t *testing.T, path string) []Diagnostic {
	t.Helper()
	src, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := newLinter().LintSQL(string(src))
	if err != nil {
		t.Fatalf("%s: setup failed: %v", path, err)
	}
	return ds
}

// TestGoldenCorpus checks every testdata/*.sql file against its .golden
// rendering: exact codes, severities, source positions, messages, and fix
// suggestions. Run with -update to rewrite.
func TestGoldenCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.sql"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no corpus files: %v", err)
	}
	for _, path := range files {
		name := strings.TrimSuffix(filepath.Base(path), ".sql")
		t.Run(name, func(t *testing.T) {
			got := RenderAll("", lintFile(t, path))
			golden := strings.TrimSuffix(path, ".sql") + ".golden"
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if got != string(want) {
				t.Errorf("diagnostics mismatch\n--- got ---\n%s--- want ---\n%s", got, want)
			}
		})
	}
}

// TestCorpusCoversAllCodes asserts the corpus exercises every registered
// diagnostic code, so adding a code forces adding a corpus case.
func TestCorpusCoversAllCodes(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "*.sql"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no corpus files: %v", err)
	}
	seen := map[string]bool{}
	for _, path := range files {
		for _, d := range lintFile(t, path) {
			seen[d.Code] = true
		}
	}
	for _, ci := range diag.Registry {
		// Runtime codes (PCT2xx lifecycle errors) are raised by the engine
		// mid-execution, never by static analysis — the linter cannot emit
		// them, so the corpus does not cover them.
		if ci.Runtime {
			continue
		}
		if !seen[ci.Code] {
			t.Errorf("no corpus case emits %s (%s)", ci.Code, ci.Title)
		}
	}
}

// TestSeverityMatchesRegistry asserts every emitted diagnostic uses its
// code's registered default severity.
func TestSeverityMatchesRegistry(t *testing.T) {
	files, _ := filepath.Glob(filepath.Join("testdata", "*.sql"))
	for _, path := range files {
		for _, d := range lintFile(t, path) {
			ci, ok := diag.Lookup(d.Code)
			if !ok {
				t.Errorf("%s: unregistered code %s", path, d.Code)
				continue
			}
			if d.Severity != ci.DefaultSeverity {
				t.Errorf("%s: %s emitted with severity %v, registry says %v", path, d.Code, d.Severity, ci.DefaultSeverity)
			}
		}
	}
}
