package lint

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzLint asserts the parser + linter pipeline never panics, whatever the
// input: syntax errors must become PCT000 diagnostics and semantic garbage
// must become positioned findings, never a crash. Each run gets a fresh
// engine pre-loaded with a small table so the data-aware checks execute
// too.
func FuzzLint(f *testing.F) {
	files, _ := filepath.Glob(filepath.Join("testdata", "*.sql"))
	for _, p := range files {
		if b, err := os.ReadFile(p); err == nil {
			f.Add(string(b))
		}
	}
	f.Add("SELECT a, Vpct(amt BY b) FROM f GROUP BY a, b")
	f.Add("SELECT a, Hpct(amt BY b) FROM f GROUP BY a")
	f.Add("SELECT ,;;( FROM")
	f.Fuzz(func(t *testing.T, src string) {
		l := newLinter()
		_, _ = l.Planner.Eng.ExecSQL("CREATE TABLE f (a INTEGER, b VARCHAR, amt INTEGER)")
		_, _ = l.Planner.Eng.ExecSQL("INSERT INTO f VALUES (1, 'x', 10), (1, 'y', 0), (2, 'x', -3)")
		ds, _ := l.LintSQL(src)
		_ = RenderAll("fuzz.sql", ds)
		if _, err := JSON("fuzz.sql", ds); err != nil {
			t.Fatalf("JSON rendering failed: %v", err)
		}
	})
}
