package lint

import (
	"os"
	"path/filepath"
	"testing"
)

// FuzzLint asserts the parser + linter pipeline never panics, whatever the
// input: syntax errors must become PCT000 diagnostics and semantic garbage
// must become positioned findings, never a crash. Each run gets a fresh
// engine pre-loaded with a small table so the data-aware checks execute
// too.
func FuzzLint(f *testing.F) {
	files, _ := filepath.Glob(filepath.Join("testdata", "*.sql"))
	for _, p := range files {
		if b, err := os.ReadFile(p); err == nil {
			f.Add(string(b))
		}
	}
	f.Add("SELECT a, Vpct(amt BY b) FROM f GROUP BY a, b")
	f.Add("SELECT a, Hpct(amt BY b) FROM f GROUP BY a")
	f.Add("SELECT ,;;( FROM")
	// Seeds aimed at the static WHERE analysis (PCT106-PCT110).
	f.Add("SELECT a FROM f WHERE amt > 100 AND amt < 50 AND a = 1")
	f.Add("SELECT a FROM f WHERE (amt <= 0 OR amt > 0) AND amt IN (1, NULL) AND b BETWEEN 'a' AND NULL")
	f.Add("SELECT a FROM f WHERE NOT (amt <> 5) AND amt NOT IN (5, 6) OR b > 7")
	f.Add("SELECT a, Vpct(0 BY b, b) FROM f WHERE amt = 0 GROUP BY a, b")
	// Seeds aimed at grouping-set analysis (per-set PCT110, lattice checks).
	f.Add("SELECT a, b, Vpct(amt BY b), GROUPING(a, b) FROM f GROUP BY CUBE(a, b)")
	f.Add("SELECT a, b, Vpct(amt BY b, b) FROM f GROUP BY GROUPING SETS ((a, b), (a), ())")
	f.Add("SELECT a, avg(amt) FROM f GROUP BY ROLLUP(a)")
	f.Add("SELECT a, Hpct(amt BY b) FROM f GROUP BY ROLLUP(a) ORDER BY 1 LIMIT 2")
	f.Add("SELECT a FROM f GROUP BY GROUPING SETS ((a, a), (1), ())")
	f.Fuzz(func(t *testing.T, src string) {
		l := newLinter()
		_, _ = l.Planner.Eng.ExecSQL("CREATE TABLE f (a INTEGER, b VARCHAR, amt INTEGER)")
		_, _ = l.Planner.Eng.ExecSQL("INSERT INTO f VALUES (1, 'x', 10), (1, 'y', 0), (2, 'x', -3)")
		ds, _ := l.LintSQL(src)
		_ = RenderAll("fuzz.sql", ds)
		if _, err := JSON("fuzz.sql", ds); err != nil {
			t.Fatalf("JSON rendering failed: %v", err)
		}
	})
}
