// Package lint is the static semantic analyzer for percentage queries
// ("pctlint"). It layers on top of the core planner's collecting analysis:
// error-class checks are exactly the usage rules the planner enforces
// (reported all at once, with source positions, instead of fail-fast), and
// the linter adds warning/advisory checks for the paper's silent failure
// modes — division by zero, missing rows, Hpct column explosion — plus
// strategy advisories from the cost-based advisor.
//
// Warning checks are data-aware: they run the same feedback queries the
// planner uses (SELECT DISTINCT over the subgrouping columns) against live
// data, so a query lints differently on different tables — by design. The
// paper's failure modes are properties of the data, not the text.
package lint

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/diag"
	"repro/internal/sqlparse"
	"repro/internal/storage"
)

// Diagnostic is re-exported so callers need not import internal/diag.
type Diagnostic = diag.Diagnostic

// Severities, re-exported.
const (
	Error    = diag.Error
	Warning  = diag.Warning
	Advisory = diag.Advisory
)

// Registry re-exports the diagnostic-code registry.
var Registry = diag.Registry

// Linter runs the full check suite over parsed statements. It needs a
// planner (and through it an engine) because the warning checks measure
// live cardinalities with feedback queries.
type Linter struct {
	Planner *core.Planner
	// ColumnLimit is the DBMS column limit PCT103 checks Hpct results
	// against. Zero means the planner's MaxColumns.
	ColumnLimit int
}

// New returns a linter over the planner.
func New(p *core.Planner) *Linter { return &Linter{Planner: p} }

func (l *Linter) columnLimit() int {
	if l.ColumnLimit > 0 {
		return l.ColumnLimit
	}
	if l.Planner.MaxColumns > 0 {
		return l.Planner.MaxColumns
	}
	return 2048
}

// maxColumnsDirective matches a "-- lint:max-columns=N" script comment,
// which pins the PCT103 column limit for a self-describing script.
var maxColumnsDirective = regexp.MustCompile(`lint:max-columns=(\d+)`)

// MaxColumnsDirective extracts a "lint:max-columns=N" directive from a
// script's comments, or 0 when absent.
func MaxColumnsDirective(src string) int {
	m := maxColumnsDirective.FindStringSubmatch(src)
	if m == nil {
		return 0
	}
	n, _ := strconv.Atoi(m[1])
	return n
}

// LintSQL lints a semicolon-separated script. Syntax errors surface as a
// single PCT000 diagnostic. SELECT (and EXPLAIN) statements are linted;
// every other statement is executed against the engine so that DDL and
// loads earlier in a script provide the catalog and data the checks need.
// A "-- lint:max-columns=N" comment in the script pins the PCT103 limit
// unless the linter already has an explicit ColumnLimit. The error return
// reports an infrastructure failure (a setup statement that did not
// execute), not a finding.
func (l *Linter) LintSQL(src string) ([]Diagnostic, error) {
	if l.ColumnLimit == 0 {
		if n := MaxColumnsDirective(src); n > 0 {
			defer func(old int) { l.ColumnLimit = old }(l.ColumnLimit)
			l.ColumnLimit = n
		}
	}
	stmts, err := sqlparse.ParseAll(src)
	if err != nil {
		return []Diagnostic{syntaxDiagnostic(err)}, nil
	}
	var out []Diagnostic
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *sqlparse.Select:
			out = append(out, l.LintSelect(s)...)
		case *sqlparse.Explain:
			out = append(out, l.LintSelect(s.Query)...)
		default:
			if _, err := l.Planner.Eng.Execute(stmt); err != nil {
				return out, fmt.Errorf("lint: setup statement failed: %w", err)
			}
		}
	}
	return out, nil
}

// LintQueries lints the SELECT (and EXPLAIN) statements of a script
// against the engine's current catalog and data, without executing
// anything else in the script — the read-only variant LintSQL's setup
// execution would make unsuitable for linting against a live database.
func (l *Linter) LintQueries(src string) []Diagnostic {
	stmts, err := sqlparse.ParseAll(src)
	if err != nil {
		return []Diagnostic{syntaxDiagnostic(err)}
	}
	var out []Diagnostic
	for _, stmt := range stmts {
		switch s := stmt.(type) {
		case *sqlparse.Select:
			out = append(out, l.LintSelect(s)...)
		case *sqlparse.Explain:
			out = append(out, l.LintSelect(s.Query)...)
		}
	}
	return out
}

// syntaxDiagnostic wraps a parse error as a PCT000 finding, positioned
// when the parser reported a location.
func syntaxDiagnostic(err error) Diagnostic {
	d := Diagnostic{Code: diag.CodeSyntax, Severity: diag.Error, Message: err.Error()}
	if se, ok := err.(*sqlparse.SyntaxError); ok {
		d.Span = se.Span()
		d.Message = se.Msg
	}
	return d
}

// LintSelect checks one SELECT. Error-class findings come from the
// planner's collecting analysis; the static dataflow checks (core.Analyze,
// PCT106–PCT110) run on every statement — standard SELECTs included —
// and when the query is a structurally valid percentage query the
// data-aware warning and advisory checks run on top. The result is sorted
// by source position, then code, so repeated runs render identically.
func (l *Linter) LintSelect(sel *sqlparse.Select) []Diagnostic {
	shape, ds := l.Planner.Check(sel)
	static := core.Analyze(sel, l.schemaFor(sel, shape))
	ds = append(ds, static...)
	if diag.HasErrors(ds) || shape == nil || shape.Class == core.ClassStandard {
		diag.Sort(ds)
		return ds
	}
	// PCT108 statically proves what PCT101 would measure: suppress the
	// weaker data-aware finding for the same aggregate term.
	proven := map[diag.Span]bool{}
	for _, d := range static {
		if d.Code == diag.CodeZeroDenominator {
			proven[d.Span] = true
		}
	}
	ds = append(ds, l.checkDivZero(shape, proven)...)
	ds = append(ds, l.checkMissingRows(shape)...)
	ds = append(ds, l.checkColumnExplosion(shape)...)
	ds = append(ds, l.checkOrdering(shape)...)
	ds = append(ds, l.checkStrategy(sel, shape)...)
	diag.Sort(ds)
	return ds
}

// schemaFor resolves the schema of F for the static checks: the checked
// shape's schema when analysis got that far, else a direct catalog lookup
// (standard SELECTs never populate a shape), else nil — the static
// analysis degrades gracefully without declared types.
func (l *Linter) schemaFor(sel *sqlparse.Select, shape *core.QueryShape) storage.Schema {
	if shape != nil && len(shape.Schema) > 0 {
		return shape.Schema
	}
	if len(sel.From) == 1 {
		if tab, err := l.Planner.Eng.Catalog().Get(sel.From[0].Table.Name); err == nil {
			return tab.Schema()
		}
	}
	return nil
}

// count runs SELECT count(*) FROM table with the given " WHERE …" suffix.
func (l *Linter) count(table, whereSQL string) (int, bool) {
	res, err := l.Planner.Eng.ExecSQL("SELECT count(*) FROM " + table + whereSQL)
	if err != nil || len(res.Rows) != 1 || len(res.Rows[0]) != 1 {
		return 0, false
	}
	n, ok := res.Rows[0][0].AsInt()
	return int(n), ok
}

// andWhere appends a condition to an existing " WHERE …" suffix.
func andWhere(whereSQL, cond string) string {
	if whereSQL == "" {
		return " WHERE " + cond
	}
	return whereSQL + " AND " + cond
}

// checkDivZero implements PCT101: if a percentage measure is NULL or
// non-positive on some rows, a super-group total can come out zero or
// NULL, and the paper's division-by-zero treatment makes those percentages
// NULL. The probe is a count over live data, deduplicated per measure
// expression. Terms whose zero denominator PCT108 already proved
// statically are skipped.
func (l *Linter) checkDivZero(shape *core.QueryShape, proven map[diag.Span]bool) []Diagnostic {
	var out []Diagnostic
	seen := map[string]bool{}
	for _, t := range shape.Aggs {
		if !t.Pct || t.Call.Arg == nil || proven[t.Span] {
			continue
		}
		arg := t.Call.Arg.String()
		if seen[arg] {
			continue
		}
		seen[arg] = true
		cond := fmt.Sprintf("(%s IS NULL OR %s <= 0)", arg, arg)
		n, ok := l.count(shape.Table, andWhere(shape.WhereSQL, cond))
		if !ok || n == 0 {
			continue
		}
		out = append(out, Diagnostic{
			Code: diag.CodeDivZeroRisk, Severity: diag.Warning, Span: t.Span,
			Message: fmt.Sprintf("measure %s is NULL or non-positive on %d row(s) of %s; a zero or NULL total makes the percentages of that group NULL (the paper's division-by-zero treatment)",
				arg, n, shape.Table),
			Fix: "filter those rows in WHERE, or accept NULL percentages for the affected groups",
		})
	}
	return out
}

// checkMissingRows implements PCT102: when some combinations of the
// grouping and subgrouping columns never occur in F, a vertical result
// silently lacks those rows, and a horizontal result has NULL cells — the
// paper's missing-rows failure mode.
func (l *Linter) checkMissingRows(shape *core.QueryShape) []Diagnostic {
	var out []Diagnostic
	seen := map[string]bool{}
	for _, t := range shape.Aggs {
		if len(t.Call.By) == 0 || !(t.Pct || t.Horizontal) {
			continue
		}
		key := strings.Join(t.Call.By, ",")
		if seen[key] {
			continue
		}
		seen[key] = true

		var coarse []string
		if t.Horizontal {
			coarse = shape.GroupCols
		} else {
			// Vertical: the totals grouping is GROUP BY minus BY.
			for _, g := range shape.GroupCols {
				if !containsFold(t.Call.By, g) {
					coarse = append(coarse, g)
				}
			}
		}
		fine := append(append([]string{}, coarse...), t.Call.By...)
		nCoarse, err1 := l.Planner.CountDistinct(shape.Table, coarse, shape.WhereSQL)
		nBy, err2 := l.Planner.CountDistinct(shape.Table, t.Call.By, shape.WhereSQL)
		nFine, err3 := l.Planner.CountDistinct(shape.Table, fine, shape.WhereSQL)
		if err1 != nil || err2 != nil || err3 != nil {
			continue
		}
		possible := nCoarse * nBy
		if nFine >= possible {
			continue
		}
		missing := possible - nFine
		if t.Horizontal {
			out = append(out, Diagnostic{
				Code: diag.CodeMissingRows, Severity: diag.Warning, Span: t.Span,
				Message: fmt.Sprintf("%d of %d (%s) × (%s) combinations are absent from %s; the corresponding result cells will be NULL (the paper's missing-rows failure mode)",
					missing, possible, strings.Join(coarse, ", "), strings.Join(t.Call.By, ", "), shape.Table),
				Fix: "treat NULL cells as zero downstream, or pre-process F to insert zero-measure rows for the absent combinations",
			})
		} else {
			out = append(out, Diagnostic{
				Code: diag.CodeMissingRows, Severity: diag.Warning, Span: t.Span,
				Message: fmt.Sprintf("%d of %d (%s) × (%s) combinations are absent from %s; the result will silently lack rows for them (the paper's missing-rows failure mode)",
					missing, possible, strings.Join(coarse, ", "), strings.Join(t.Call.By, ", "), shape.Table),
				Fix: "enable the missing-rows treatment (Options.Vpct.MissingRows) to emit explicit zero-percentage rows",
			})
		}
	}
	return out
}

// checkColumnExplosion implements PCT103: Hpct creates one result column
// per distinct BY combination; past the DBMS column limit the planner
// vertically partitions the result into several tables.
func (l *Linter) checkColumnExplosion(shape *core.QueryShape) []Diagnostic {
	limit := l.columnLimit()
	var out []Diagnostic
	seen := map[string]bool{}
	for _, t := range shape.Aggs {
		if !t.Horizontal || len(t.Call.By) == 0 {
			continue
		}
		key := strings.Join(t.Call.By, ",")
		if seen[key] {
			continue
		}
		seen[key] = true
		n, err := l.Planner.CountDistinct(shape.Table, t.Call.By, shape.WhereSQL)
		if err != nil || n <= limit {
			continue
		}
		parts := (n + limit - 1) / limit
		out = append(out, Diagnostic{
			Code: diag.CodeColumnExplosion, Severity: diag.Warning, Span: t.Span,
			Message: fmt.Sprintf("the BY list (%s) has %d distinct combinations, exceeding the column limit %d; the horizontal result will be vertically partitioned into %d tables",
				strings.Join(t.Call.By, ", "), n, limit, parts),
			Fix: "narrow the BY list or filter F; or raise Planner.MaxColumns if the DBMS allows wider tables",
		})
	}
	return out
}

// checkOrdering implements PCT104: without ORDER BY, result row order is
// implementation-defined. (Column order is safe: the planner's feedback
// query already sorts the BY combinations.)
func (l *Linter) checkOrdering(shape *core.QueryShape) []Diagnostic {
	if shape.HasOrderBy || len(shape.GroupCols) == 0 {
		return nil
	}
	horizontal := false
	var span diag.Span
	for _, t := range shape.Aggs {
		if t.Horizontal || t.Pct {
			if span.IsZero() {
				span = t.Span
			}
		}
		if t.Horizontal {
			horizontal = true
		}
	}
	if !horizontal && shape.Class != core.ClassVertical {
		return nil
	}
	return []Diagnostic{{
		Code: diag.CodeUnorderedResult, Severity: diag.Advisory, Span: span,
		Message: "result row order is not guaranteed without ORDER BY",
		Fix:     "add ORDER BY " + strings.Join(shape.GroupCols, ", "),
	}}
}

// checkStrategy implements PCT105: run the cost-based advisor and report
// when it recommends non-default evaluation strategy knobs for this
// query's live statistics.
func (l *Linter) checkStrategy(sel *sqlparse.Select, shape *core.QueryShape) []Diagnostic {
	opts, err := l.Planner.Advise(sel)
	if err != nil {
		return nil
	}
	def := core.DefaultOptions()
	var recs []string
	switch shape.Class {
	case core.ClassVertical:
		if opts.Vpct != def.Vpct {
			recs = append(recs, "non-default vertical strategy knobs")
		}
	case core.ClassHorizontalPct:
		if opts.Hpct.FromFV != def.Hpct.FromFV {
			recs = append(recs, "compute FH from the vertical percentage table FV (Options.Hpct.FromFV)")
		}
	case core.ClassHorizontalAgg:
		if opts.Hagg.FromFV != def.Hagg.FromFV {
			recs = append(recs, "aggregate from the vertical pre-aggregate FV (Options.Hagg.FromFV)")
		}
		if opts.Hagg.Method != def.Hagg.Method {
			recs = append(recs, "use the SPJ method (Options.Hagg.Method)")
		}
	}
	if len(recs) == 0 {
		return nil
	}
	var span diag.Span
	for _, t := range shape.Aggs {
		if t.Pct || t.Horizontal {
			span = t.Span
			break
		}
	}
	return []Diagnostic{{
		Code: diag.CodeStrategy, Severity: diag.Advisory, Span: span,
		Message: "the advisor recommends a non-default evaluation strategy for this table's statistics: " + strings.Join(recs, "; "),
		Fix:     "pass the advisor's options (Planner.Advise) instead of DefaultOptions when planning this query",
	}}
}

func containsFold(list []string, s string) bool {
	for _, x := range list {
		if strings.EqualFold(x, s) {
			return true
		}
	}
	return false
}
