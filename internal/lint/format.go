package lint

import (
	"encoding/json"
	"strings"

	"repro/internal/diag"
)

// Render formats one diagnostic as a compiler-style line,
// "file:line:col: severity[CODE]: message", followed by an indented fix
// suggestion when the analyzer has one. file may be empty.
func Render(file string, d Diagnostic) string {
	var sb strings.Builder
	if file != "" {
		sb.WriteString(file)
		sb.WriteString(":")
	}
	if !d.Span.IsZero() {
		sb.WriteString(d.Span.Start.String())
		sb.WriteString(":")
	}
	if sb.Len() > 0 {
		sb.WriteString(" ")
	}
	sb.WriteString(d.Severity.String())
	sb.WriteString("[")
	sb.WriteString(d.Code)
	sb.WriteString("]: ")
	sb.WriteString(d.Message)
	if d.Fix != "" {
		sb.WriteString("\n    fix: ")
		sb.WriteString(d.Fix)
	}
	return sb.String()
}

// RenderAll formats a diagnostic slice one finding per line (fixes
// indented beneath), ending with a trailing newline; empty input renders
// as the empty string.
func RenderAll(file string, ds []Diagnostic) string {
	var sb strings.Builder
	for _, d := range ds {
		sb.WriteString(Render(file, d))
		sb.WriteString("\n")
	}
	return sb.String()
}

// fileDiagnostic is the JSON shape: the diagnostic plus its source file.
type fileDiagnostic struct {
	File string `json:"file,omitempty"`
	diag.Diagnostic
}

// JSON renders diagnostics as an indented JSON array (never null: an empty
// slice renders as []). file may be empty.
func JSON(file string, ds []Diagnostic) ([]byte, error) {
	out := make([]fileDiagnostic, 0, len(ds))
	for _, d := range ds {
		out = append(out, fileDiagnostic{File: file, Diagnostic: d})
	}
	return json.MarshalIndent(out, "", "  ")
}
