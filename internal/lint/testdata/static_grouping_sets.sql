-- Grouping-set lattice checks. PCT111: an empty ROLLUP/CUBE/GROUPING SETS
-- defines no lattice. PCT112: a duplicate grouping set is evaluated once,
-- so the duplicate adds nothing. PCT113: GROUPING() is only defined for
-- cube queries and must name lattice dimensions. PCT110 fires per grouping
-- set: a duplicated Vpct BY dimension is reported once for each set that
-- contains the dimension and stays silent for sets that do not (the (a)
-- set draws no finding). The second-to-last query is the near-miss: the
-- same sets with a duplicate-free BY list are clean, and the final ROLLUP
-- query shows a fully clean percentage cube.
CREATE TABLE cube_f (a VARCHAR, b INTEGER, d VARCHAR, m INTEGER);
INSERT INTO cube_f VALUES
  ('x', 1, 'p', 10), ('x', 2, 'q', 20), ('y', 1, 'p', 30), ('y', 2, 'q', 40);
SELECT a, sum(m) FROM cube_f GROUP BY GROUPING SETS ();
SELECT a, b, sum(m) FROM cube_f GROUP BY GROUPING SETS ((a, b), (a, b));
SELECT a, sum(m), GROUPING(a) FROM cube_f GROUP BY a;
SELECT a, b, sum(m), GROUPING(m) FROM cube_f GROUP BY CUBE(a, b);
SELECT a, b, d, Vpct(m BY d, d) FROM cube_f GROUP BY GROUPING SETS ((a, b, d), (a, d), (a));
SELECT a, b, d, Vpct(m BY d) FROM cube_f GROUP BY GROUPING SETS ((a, b, d), (a, d), (a)) ORDER BY 1, 2, 3;
SELECT a, b, Vpct(m BY b), GROUPING(a, b) FROM cube_f GROUP BY ROLLUP(a, b) ORDER BY 1, 2;
