-- Fully crossed dimensions, positive measures, ORDER BY present: a valid
-- horizontal percentage query with no findings.
CREATE TABLE f (region VARCHAR, quarter INTEGER, amt INTEGER);
INSERT INTO f VALUES
  ('East', 1, 10), ('East', 2, 20), ('East', 3, 30), ('East', 4, 40),
  ('West', 1, 15), ('West', 2, 25), ('West', 3, 35), ('West', 4, 45);
SELECT region, Hpct(amt BY quarter)
FROM f GROUP BY region
ORDER BY region;
