-- Mixing aggregation classes in one statement (PCT001, PCT002).
CREATE TABLE f (region VARCHAR, quarter INTEGER, amt INTEGER);
INSERT INTO f VALUES ('East', 1, 10);
SELECT region, quarter, Vpct(amt BY quarter), Hpct(amt BY quarter)
FROM f GROUP BY region, quarter;
SELECT region, Hpct(amt BY quarter), sum(amt BY quarter)
FROM f GROUP BY region;
