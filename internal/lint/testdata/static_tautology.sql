-- Tautological WHERE predicates (PCT107): the disjunction covers every
-- integer, so it only filters NULLs; the constant comparison filters
-- nothing at all. The last query is the near-miss: its disjunction leaves
-- a real gap, so no finding.
CREATE TABLE sales (region VARCHAR, quarter INTEGER, amt INTEGER);
INSERT INTO sales VALUES
  ('East', 1, 60), ('East', 2, 70), ('East', 3, 80), ('East', 4, 90),
  ('West', 1, 65), ('West', 2, 75), ('West', 3, 85), ('West', 4, 95);
SELECT region, count(*)
FROM sales WHERE (amt <= 0 OR amt > 0) AND quarter >= 1
GROUP BY region ORDER BY region;
SELECT region, count(*)
FROM sales WHERE 1 = 1 AND quarter >= 1
GROUP BY region ORDER BY region;
SELECT region, count(*)
FROM sales WHERE amt <= 0 OR amt > 70
GROUP BY region ORDER BY region;
