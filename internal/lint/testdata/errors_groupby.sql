-- GROUP BY and Vpct BY-list violations (PCT007-PCT009, PCT015-PCT018,
-- PCT024).
CREATE TABLE sales (RID INTEGER, state VARCHAR, city VARCHAR, salesAmt INTEGER);
INSERT INTO sales VALUES (1, 'CA', 'San Francisco', 13);
SELECT state, Vpct(salesAmt BY city) FROM sales GROUP BY 5, state, city;
SELECT state, Vpct(salesAmt BY city) FROM sales GROUP BY state, city, nosuch;
SELECT state, Vpct(salesAmt BY city) FROM sales GROUP BY state, city, state;
SELECT Vpct(salesAmt BY city) FROM sales;
SELECT state, city, Vpct(BY city) FROM sales GROUP BY state, city;
SELECT state, city, Vpct(salesAmt BY state, city) FROM sales GROUP BY state, city;
SELECT state, city, Vpct(salesAmt BY nosuch) FROM sales GROUP BY state, city;
SELECT state, city, Vpct(nosuch BY city) FROM sales GROUP BY state, city;
