-- Statically provable zero denominator (PCT108): the WHERE clause pins the
-- measure to 0 on every qualifying row, so the Vpct denominator is
-- identically zero before any data is consulted; the data-driven PCT101 is
-- suppressed for that term. The second query is the near-miss: amt >= 0
-- does not pin the value, so only the data-driven PCT101 fires.
CREATE TABLE ledger (region VARCHAR, quarter INTEGER, amt INTEGER);
INSERT INTO ledger VALUES
  ('East', 1, 10), ('East', 2, 0), ('West', 1, 15), ('West', 2, 0);
SELECT region, quarter, Vpct(amt BY quarter)
FROM ledger WHERE amt = 0
GROUP BY region, quarter ORDER BY region, quarter;
SELECT region, quarter, Vpct(amt BY quarter)
FROM ledger WHERE amt >= 0
GROUP BY region, quarter ORDER BY region, quarter;
