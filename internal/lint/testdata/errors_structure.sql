-- Structural rule violations: multi-table, HAVING, DISTINCT, SELECT *,
-- unknown table, window mix, nesting, bad items, ungrouped columns
-- (PCT003-PCT006, PCT010-PCT014).
CREATE TABLE sales (RID INTEGER, state VARCHAR, city VARCHAR, salesAmt INTEGER);
CREATE TABLE stores (city VARCHAR, sqft INTEGER);
INSERT INTO sales VALUES (1, 'CA', 'San Francisco', 13);
SELECT state, Vpct(salesAmt BY city) FROM sales, stores GROUP BY state, city;
SELECT state, Vpct(salesAmt BY city) FROM sales GROUP BY state, city HAVING state = 'CA';
SELECT DISTINCT state, Vpct(salesAmt BY city) FROM sales GROUP BY state, city;
SELECT *, Vpct(salesAmt BY city) FROM sales GROUP BY state, city;
SELECT state, Vpct(salesAmt BY city) FROM nosuch GROUP BY state, city;
SELECT state, Vpct(salesAmt BY city), sum(salesAmt) OVER (PARTITION BY state)
FROM sales GROUP BY state, city;
SELECT state, Vpct(salesAmt BY city) / 2 FROM sales GROUP BY state, city;
SELECT state, salesAmt + 1, Vpct(salesAmt BY city) FROM sales GROUP BY state, city;
SELECT RID, Vpct(salesAmt BY city) FROM sales GROUP BY state, city;
