-- Duplicate Vpct BY dimension (PCT110): repeating a column in the BY list
-- does not change the subgrouping and usually means a different column was
-- intended. PCT022 catches this for horizontal BY lists; this is the
-- vertical counterpart. The second query is the near-miss.
CREATE TABLE mix (a VARCHAR, b INTEGER, c VARCHAR, m INTEGER);
INSERT INTO mix VALUES
  ('x', 1, 'p', 10), ('x', 1, 'q', 20), ('x', 2, 'p', 30), ('x', 2, 'q', 40),
  ('y', 1, 'p', 15), ('y', 1, 'q', 25), ('y', 2, 'p', 35), ('y', 2, 'q', 45);
SELECT a, b, c, Vpct(m BY c, c)
FROM mix GROUP BY a, b, c ORDER BY a, b, c;
SELECT a, b, c, Vpct(m BY c)
FROM mix GROUP BY a, b, c ORDER BY a, b, c;
