-- Horizontal BY-list violations (PCT019-PCT023).
CREATE TABLE daily (store INTEGER, dweek VARCHAR, amt INTEGER);
INSERT INTO daily VALUES (2, 'Mo', 7);
SELECT store, Hpct(amt) FROM daily GROUP BY store;
SELECT store, Hpct(amt BY store) FROM daily GROUP BY store;
SELECT store, Hpct(amt BY nosuch) FROM daily GROUP BY store;
SELECT store, Hpct(amt BY dweek, dweek) FROM daily GROUP BY store;
SELECT store, sum(BY dweek) FROM daily GROUP BY store;
