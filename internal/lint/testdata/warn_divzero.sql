-- NULL and non-positive measure values: super-group totals can be zero or
-- NULL, so percentages come out NULL (PCT101).
CREATE TABLE f (region VARCHAR, quarter INTEGER, amt INTEGER);
INSERT INTO f VALUES
  ('East', 1, 10), ('East', 2, 0), ('East', 3, -5), ('East', 4, 40),
  ('West', 1, NULL), ('West', 2, 25), ('West', 3, 35), ('West', 4, 45);
SELECT region, quarter, Vpct(amt BY quarter)
FROM f GROUP BY region, quarter
ORDER BY region, quarter;
