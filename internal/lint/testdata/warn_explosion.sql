-- lint:max-columns=4
-- Seven distinct BY values against a column limit of four: the horizontal
-- result is vertically partitioned (PCT103).
CREATE TABLE daily (store INTEGER, dweek VARCHAR, amt INTEGER);
INSERT INTO daily VALUES
  (2,'Mo',7),(2,'Tu',6),(2,'We',8),(2,'Th',9),(2,'Fr',16),(2,'Sa',24),(2,'Su',30);
SELECT store, Hpct(amt BY dweek)
FROM daily GROUP BY store
ORDER BY store;
