-- Contradictory WHERE predicates (PCT106): interval analysis proves the
-- predicate set unsatisfiable, so the query returns no rows. The second
-- query is the near-miss: the ranges overlap, so no finding.
CREATE TABLE sales (region VARCHAR, quarter INTEGER, amt INTEGER);
INSERT INTO sales VALUES
  ('East', 1, 60), ('East', 2, 70), ('East', 3, 80), ('East', 4, 90),
  ('West', 1, 65), ('West', 2, 75), ('West', 3, 85), ('West', 4, 95);
SELECT region, count(*)
FROM sales WHERE amt > 100 AND amt < 50
GROUP BY region ORDER BY region;
SELECT region, count(*)
FROM sales WHERE amt > 50 AND amt < 100
GROUP BY region ORDER BY region;
SELECT region, count(*)
FROM sales WHERE quarter > 1 AND quarter < 2
GROUP BY region ORDER BY region;
