-- Type-mismatched comparison (PCT109): sku is VARCHAR, and mixed-kind
-- values order by type tag rather than content, so comparing it with an
-- integer literal never matches on value. The second query is the
-- near-miss: the literal is a string, so the comparison is meaningful.
CREATE TABLE inv (sku VARCHAR, qty INTEGER);
INSERT INTO inv VALUES ('7', 10), ('8', 20), ('9', 30);
SELECT sku, count(*)
FROM inv WHERE sku > 7
GROUP BY sku ORDER BY sku;
SELECT sku, count(*)
FROM inv WHERE sku > '7'
GROUP BY sku ORDER BY sku;
