-- Store 4 is closed on Monday (the paper's Table 3 example): the (store,
-- dweek) cross product has an absent combination, so the vertical result
-- silently lacks that row (PCT102).
CREATE TABLE daily (store INTEGER, dweek VARCHAR, amt INTEGER);
INSERT INTO daily VALUES
  (2,'Mo',7),(2,'Tu',6),(2,'We',8),(2,'Th',9),(2,'Fr',16),(2,'Sa',24),(2,'Su',30),
  (4,'Tu',9),(4,'We',9),(4,'Th',9),(4,'Fr',18),(4,'Sa',20),(4,'Su',35);
SELECT store, dweek, Vpct(amt BY dweek)
FROM daily GROUP BY store, dweek
ORDER BY store, dweek;
