-- Three BY columns: the paper's Section 4 recommendation is to evaluate
-- horizontal aggregations from the vertical pre-aggregate FV (PCT105).
CREATE TABLE t (store INTEGER, a INTEGER, b INTEGER, c INTEGER, amt INTEGER);
INSERT INTO t VALUES
  (1,0,0,0,5),(1,0,0,1,6),(1,0,1,0,7),(1,0,1,1,8),
  (1,1,0,0,9),(1,1,0,1,10),(1,1,1,0,11),(1,1,1,1,12);
SELECT store, sum(amt BY a, b, c)
FROM t GROUP BY store
ORDER BY store;
