package lint

import (
	"testing"
)

// determinismScript packs findings from every analysis layer — structural
// rules, data-aware checks, and the static WHERE analysis — into one
// script, so the run-twice comparison covers all diagnostic sources.
const determinismScript = `
CREATE TABLE f (region VARCHAR, quarter INTEGER, amt INTEGER);
INSERT INTO f VALUES
  ('East', 1, 10), ('East', 2, 0), ('West', 1, NULL), ('West', 2, 45);
SELECT region, quarter, Vpct(amt BY quarter)
FROM f WHERE amt > 9000 AND amt < 3
GROUP BY region, quarter;
SELECT region, count(*)
FROM f WHERE region = 5 AND 1 = 1
GROUP BY region ORDER BY region;
SELECT region, quarter, Vpct(amt BY quarter, quarter)
FROM f GROUP BY region, quarter ORDER BY region, quarter;
`

// TestLintDeterministic runs the linter twice on fresh engines and demands
// byte-identical renderings: map iteration or data-layout accidents must
// never reorder findings between runs.
func TestLintDeterministic(t *testing.T) {
	render := func() string {
		t.Helper()
		ds, err := newLinter().LintSQL(determinismScript)
		if err != nil {
			t.Fatalf("setup failed: %v", err)
		}
		return RenderAll("d.sql", ds)
	}
	first := render()
	if first == "" {
		t.Fatal("script produced no findings; the determinism check is vacuous")
	}
	for i := 0; i < 3; i++ {
		if got := render(); got != first {
			t.Fatalf("run %d differs:\n--- first ---\n%s--- now ---\n%s", i+2, first, got)
		}
	}
}

// TestLintSorted asserts the published ordering contract: diagnostics come
// back sorted by source position (line, then column), with unpositioned
// findings last.
func TestLintSorted(t *testing.T) {
	ds, err := newLinter().LintSQL(determinismScript)
	if err != nil {
		t.Fatalf("setup failed: %v", err)
	}
	if len(ds) < 2 {
		t.Fatalf("want several findings, got %d", len(ds))
	}
	for i := 1; i < len(ds); i++ {
		a, b := ds[i-1].Span.Start, ds[i].Span.Start
		switch {
		case a.IsZero():
			if !b.IsZero() {
				t.Errorf("finding %d: positioned %s follows unpositioned", i, b)
			}
		case b.IsZero():
			// positioned before unpositioned: fine
		case b.Line < a.Line || (b.Line == a.Line && b.Col < a.Col):
			t.Errorf("finding %d: %s sorts before %s", i, b, a)
		}
	}
}
