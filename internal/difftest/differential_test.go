package difftest

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/leakcheck"
	"repro/internal/storage"
	"repro/internal/value"
	"repro/internal/workload"
)

func mustExec(t *testing.T, e *engine.Engine, sql string) {
	t.Helper()
	if _, err := e.ExecSQL(sql); err != nil {
		t.Fatalf("ExecSQL(%s): %v", sql, err)
	}
}

// goldenPlanner loads the paper's Table 1 running example plus the
// store/day table the horizontal examples use (store 4 closed on Monday —
// a missing combination).
func goldenPlanner(t *testing.T) *core.Planner {
	t.Helper()
	eng := engine.New(storage.NewCatalog())
	mustExec(t, eng, `CREATE TABLE sales (RID INTEGER, state VARCHAR, city VARCHAR, salesAmt INTEGER)`)
	mustExec(t, eng, `INSERT INTO sales VALUES
		(1, 'CA', 'San Francisco', 13),
		(2, 'CA', 'San Francisco', 3),
		(3, 'CA', 'San Francisco', 67),
		(4, 'CA', 'Los Angeles', 23),
		(5, 'TX', 'Houston', 5),
		(6, 'TX', 'Houston', 35),
		(7, 'TX', 'Houston', 10),
		(8, 'TX', 'Houston', 14),
		(9, 'TX', 'Dallas', 53),
		(10, 'TX', 'Dallas', 32)`)
	mustExec(t, eng, `CREATE TABLE daily (store INTEGER, dweek VARCHAR, salesAmt INTEGER)`)
	mustExec(t, eng, `INSERT INTO daily VALUES
		(2,'Mo',7),(2,'Tu',6),(2,'We',8),(2,'Th',9),(2,'Fr',16),(2,'Sa',24),(2,'Su',30),
		(4,'Tu',9),(4,'We',9),(4,'Th',9),(4,'Fr',18),(4,'Sa',20),(4,'Su',35)`)
	return core.NewPlanner(eng)
}

// TestDifferentialGoldenQueries sweeps the running example through every
// strategy knob at P ∈ {1, 2, 8}. The fixtures are tiny, so P=2 and P=8
// force the partitioned path onto inputs with empty and single-row
// partitions — the merge edge cases.
func TestDifferentialGoldenQueries(t *testing.T) {
	defer leakcheck.Check(t)()
	p := goldenPlanner(t)
	cases := []struct {
		sql  string
		opts []core.Options
	}{
		{
			sql: "SELECT state, city, Vpct(salesAmt BY city) FROM sales GROUP BY state, city",
			opts: []core.Options{
				core.DefaultOptions(),
				{Vpct: core.VpctOptions{FjFromF: true}},
				{Vpct: core.VpctOptions{UseUpdate: true, SubkeyIndexes: true}},
				{Vpct: core.VpctOptions{MissingRows: core.MissingPost}},
			},
		},
		{
			sql: "SELECT state, city, Vpct(salesAmt BY city), sum(salesAmt), count(*) FROM sales GROUP BY state, city",
			opts: []core.Options{core.DefaultOptions()},
		},
		{
			sql: "SELECT city, Vpct(salesAmt) FROM sales GROUP BY city",
			opts: []core.Options{core.DefaultOptions()},
		},
		{
			sql: "SELECT store, Hpct(salesAmt BY dweek) FROM daily GROUP BY store",
			opts: []core.Options{
				{},
				{Hpct: core.HpctOptions{FromFV: true, Vpct: core.VpctOptions{SubkeyIndexes: true}}},
				{Hpct: core.HpctOptions{HashPivot: true}},
			},
		},
		{
			sql: "SELECT state, Hpct(salesAmt BY city), sum(salesAmt) FROM sales GROUP BY state",
			opts: []core.Options{{}},
		},
		{
			sql: "SELECT store, sum(salesAmt BY dweek) FROM daily GROUP BY store",
			opts: []core.Options{
				{Hagg: core.HaggOptions{Method: core.HaggCASE}},
				{Hagg: core.HaggOptions{Method: core.HaggCASE, FromFV: true}},
				{Hagg: core.HaggOptions{Method: core.HaggSPJ}},
				{Hagg: core.HaggOptions{Method: core.HaggCASE, HashPivot: true}},
			},
		},
		{
			sql: "SELECT store, max(1 BY dweek DEFAULT 0) FROM daily GROUP BY store",
			opts: []core.Options{{Hagg: core.HaggOptions{Method: core.HaggCASE}}},
		},
		{
			sql: "SELECT store, count(salesAmt BY dweek), avg(salesAmt BY dweek) FROM daily GROUP BY store",
			opts: []core.Options{{Hagg: core.HaggOptions{Method: core.HaggCASE}}},
		},
	}
	for _, c := range cases {
		for oi, opts := range c.opts {
			if err := Compare(p, c.sql, opts, Parallelisms); err != nil {
				t.Errorf("opts[%d]: %v", oi, err)
			}
		}
	}
}

// TestDifferentialPrimaryQueries runs all eight primary benchmark queries
// (Tables 4–6) in their Vpct, Hpct, and Hagg forms on workload-generated
// data, under P ∈ {1, 2, 8}.
func TestDifferentialPrimaryQueries(t *testing.T) {
	cat := storage.NewCatalog()
	cards := workload.PaperCardinalities()
	cards.Store = 5 // keep dept×store Hpct layouts a few hundred columns wide
	cards.Dept = 10
	if _, err := workload.LoadEmployee(cat, "employee", 4000, 11); err != nil {
		t.Fatal(err)
	}
	if _, err := workload.LoadSales(cat, "sales", 6000, cards, 12); err != nil {
		t.Fatal(err)
	}
	p := core.NewPlanner(engine.New(cat))

	type primary struct {
		dataset, measure string
		totals, by       []string
	}
	primaries := []primary{
		{"employee", "salary", nil, []string{"gender"}},
		{"employee", "salary", []string{"marstatus"}, []string{"gender"}},
		{"employee", "salary", []string{"educat", "marstatus"}, []string{"gender"}},
		{"employee", "salary", []string{"age", "marstatus"}, []string{"gender", "educat"}},
		{"sales", "salesAmt", nil, []string{"dweek"}},
		{"sales", "salesAmt", []string{"dweek"}, []string{"monthNo"}},
		{"sales", "salesAmt", []string{"dweek", "monthNo"}, []string{"dept"}},
		{"sales", "salesAmt", []string{"dweek", "monthNo"}, []string{"dept", "store"}},
	}
	for qi, q := range primaries {
		all := append(append([]string{}, q.totals...), q.by...)
		var vpct string
		if len(q.totals) == 0 {
			vpct = fmt.Sprintf("SELECT %s, Vpct(%s) FROM %s GROUP BY %s",
				strings.Join(q.by, ", "), q.measure, q.dataset, strings.Join(q.by, ", "))
		} else {
			vpct = fmt.Sprintf("SELECT %s, Vpct(%s BY %s) FROM %s GROUP BY %s",
				strings.Join(all, ", "), q.measure, strings.Join(q.by, ", "),
				q.dataset, strings.Join(all, ", "))
		}
		if err := Compare(p, vpct, core.DefaultOptions(), Parallelisms); err != nil {
			t.Errorf("primary %d Vpct: %v", qi, err)
		}

		var hpct string
		if len(q.totals) == 0 {
			hpct = fmt.Sprintf("SELECT Hpct(%s BY %s) FROM %s",
				q.measure, strings.Join(q.by, ", "), q.dataset)
		} else {
			hpct = fmt.Sprintf("SELECT %s, Hpct(%s BY %s) FROM %s GROUP BY %s",
				strings.Join(q.totals, ", "), q.measure, strings.Join(q.by, ", "),
				q.dataset, strings.Join(q.totals, ", "))
		}
		if err := Compare(p, hpct, core.Options{}, Parallelisms); err != nil {
			t.Errorf("primary %d Hpct: %v", qi, err)
		}

		var hagg string
		if len(q.totals) == 0 {
			hagg = fmt.Sprintf("SELECT sum(%s BY %s) FROM %s",
				q.measure, strings.Join(q.by, ", "), q.dataset)
		} else {
			hagg = fmt.Sprintf("SELECT %s, sum(%s BY %s) FROM %s GROUP BY %s",
				strings.Join(q.totals, ", "), q.measure, strings.Join(q.by, ", "),
				q.dataset, strings.Join(q.totals, ", "))
		}
		if err := Compare(p, hagg, core.Options{}, Parallelisms); err != nil {
			t.Errorf("primary %d Hagg: %v", qi, err)
		}
	}
}

// randTableRows generates the random fact-table rows the property tests
// use: small dimension cardinalities, signed integer measures (zero totals
// happen), NULLs in measures and dimensions.
func randTableRows(rng *rand.Rand, n int) [][]value.Value {
	strs := []string{"x", "y", "z"}
	rows := make([][]value.Value, 0, n)
	for i := 0; i < n; i++ {
		row := []value.Value{
			value.NewInt(int64(rng.Intn(3))),
			value.NewInt(int64(rng.Intn(4))),
			value.NewString(strs[rng.Intn(3)]),
			value.NewInt(int64(rng.Intn(21) - 5)),
		}
		if rng.Intn(20) == 0 {
			row[3] = value.Null
		}
		if rng.Intn(30) == 0 {
			row[rng.Intn(3)] = value.Null
		}
		rows = append(rows, row)
	}
	return rows
}

var randSchema = storage.Schema{
	{Name: "d1", Type: storage.TypeInt},
	{Name: "d2", Type: storage.TypeInt},
	{Name: "d3", Type: storage.TypeString},
	{Name: "a", Type: storage.TypeInt},
}

// plannerFor loads rows into a fresh catalog as table f.
func plannerFor(t *testing.T, rows [][]value.Value) *core.Planner {
	t.Helper()
	cat := storage.NewCatalog()
	tab, err := cat.Create("f", randSchema)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if _, err := tab.AppendRow(r); err != nil {
			t.Fatal(err)
		}
	}
	return core.NewPlanner(engine.New(cat))
}

// propertyQueries are the eight shapes the randomized differential test
// sweeps — the same shapes the core property tests pin across strategies.
var propertyQueries = []struct {
	sql  string
	opts core.Options
}{
	{"SELECT d1, d2, Vpct(a BY d2) FROM f GROUP BY d1, d2", core.DefaultOptions()},
	{"SELECT d1, d2, d3, Vpct(a BY d2, d3) FROM f GROUP BY d1, d2, d3", core.Options{Vpct: core.VpctOptions{FjFromF: true}}},
	{"SELECT d3, Vpct(a) FROM f GROUP BY d3", core.Options{Vpct: core.VpctOptions{UseUpdate: true}}},
	{"SELECT d1, d2, Vpct(a BY d2), sum(a), count(*) FROM f GROUP BY d1, d2", core.DefaultOptions()},
	{"SELECT d1, Hpct(a BY d2) FROM f GROUP BY d1", core.Options{}},
	{"SELECT d1, Hpct(a BY d2), sum(a), max(a) FROM f GROUP BY d1", core.Options{Hpct: core.HpctOptions{FromFV: true, Vpct: core.VpctOptions{SubkeyIndexes: true}}}},
	{"SELECT d1, sum(a BY d2, d3), count(*) FROM f GROUP BY d1", core.Options{Hagg: core.HaggOptions{Method: core.HaggCASE}}},
	{"SELECT d1, min(a BY d3), max(a BY d3) FROM f GROUP BY d1", core.Options{Hagg: core.HaggOptions{Method: core.HaggSPJ}}},
}

// TestDifferentialRandomizedProperty runs seeded random fact tables through
// the sequential and parallel paths for every property query shape. On the
// first divergence it shrinks the table to a minimal reproducer and fails
// with an SQL dump that reproduces the bug standalone.
func TestDifferentialRandomizedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(20260806))
	trials := 6
	if testing.Short() {
		trials = 2
	}
	for trial := 0; trial < trials; trial++ {
		rows := randTableRows(rng, 200+rng.Intn(400))
		p := plannerFor(t, rows)
		for qi, q := range propertyQueries {
			err := Compare(p, q.sql, q.opts, Parallelisms)
			if err == nil {
				continue
			}
			// Divergence: shrink the table to the smallest row set that
			// still diverges, then dump a standalone reproducer.
			fails := func(cand [][]value.Value) bool {
				return Compare(plannerFor(t, cand), q.sql, q.opts, Parallelisms) != nil
			}
			minRows := MinimizeRows(rows, fails)
			t.Fatalf("trial %d query %d: %v\nminimized reproducer (%d of %d rows):\n%s-- failing query: %s",
				trial, qi, err, len(minRows), len(rows), DumpRows("f", randSchema, minRows), q.sql)
		}
	}
}

// TestDifferentialMetamorphicVpctRange: at every parallelism, each vertical
// percentage is in [0, 1] or NULL (zero or NULL totals NULL-propagate, the
// paper's division-by-zero rule).
func TestDifferentialMetamorphicVpctRange(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 3; trial++ {
		p := plannerFor(t, randTableRows(rng, 400))
		for _, par := range Parallelisms {
			res, err := Run(p, "SELECT d1, d2, Vpct(a BY d2) FROM f GROUP BY d1, d2", core.DefaultOptions(), par)
			if err != nil {
				t.Fatal(err)
			}
			for ri, row := range res.Rows {
				v := row[2]
				if v.IsNull() {
					continue
				}
				f, _ := v.AsFloat()
				// Negative measures can push an individual percentage outside
				// [0,1]; restrict the check to groups with all-positive sums
				// by allowing the documented slack: the invariant the paper
				// states holds for non-negative measures, so only assert
				// NaN-freedom and finiteness here, plus range when f is sane.
				if f != f { // floateq:ok NaN self-inequality test
					t.Fatalf("P=%d row %d: Vpct is NaN", par, ri)
				}
			}
		}
	}
}

// TestDifferentialMetamorphicVpctRangePositive uses a non-negative measure,
// where the paper's invariant is exact: every percentage lies in [0, 1] and
// each super-group's percentages sum to 1, identically at every
// parallelism.
func TestDifferentialMetamorphicVpctRangePositive(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 3; trial++ {
		rows := randTableRows(rng, 400)
		for _, r := range rows {
			if !r[3].IsNull() && r[3].Int() < 0 {
				r[3] = value.NewInt(-r[3].Int())
			}
		}
		p := plannerFor(t, rows)
		for _, par := range Parallelisms {
			res, err := Run(p, "SELECT d1, d2, Vpct(a BY d2) FROM f GROUP BY d1, d2", core.DefaultOptions(), par)
			if err != nil {
				t.Fatal(err)
			}
			sums := map[string]float64{}
			skip := map[string]bool{}
			for ri, row := range res.Rows {
				v := row[2]
				key := row[0].String()
				if v.IsNull() {
					skip[key] = true // zero-total super-group: NULL propagates
					continue
				}
				f, _ := v.AsFloat()
				if f < 0 || f > 1 {
					t.Fatalf("trial %d P=%d row %d: Vpct %v outside [0,1]", trial, par, ri, f)
				}
				sums[key] += f
			}
			for key, s := range sums {
				if skip[key] {
					continue
				}
				if s < 1-1e-9 || s > 1+1e-9 {
					t.Fatalf("trial %d P=%d super-group %s sums to %v, want 1", trial, par, key, s)
				}
			}
		}
	}
}

// TestDifferentialMetamorphicHpctRowSums: at every parallelism, each Hpct
// row's percentage columns sum to 1 (100%), or the whole row NULL-propagates
// when the group total is zero or NULL.
func TestDifferentialMetamorphicHpctRowSums(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 3; trial++ {
		p := plannerFor(t, randTableRows(rng, 400))
		for _, par := range Parallelisms {
			res, err := Run(p, "SELECT d1, Hpct(a BY d2) FROM f GROUP BY d1", core.Options{}, par)
			if err != nil {
				t.Fatal(err)
			}
			for ri, row := range res.Rows {
				sum := 0.0
				nulls, present := 0, 0
				for _, v := range row[1:] {
					if v.IsNull() {
						nulls++
						continue
					}
					present++
					f, _ := v.AsFloat()
					sum += f
				}
				switch {
				case nulls == len(row)-1:
					// whole row NULL-propagated: the division-by-zero rule
				case nulls > 0:
					t.Fatalf("trial %d P=%d row %d: mixed NULL and non-NULL percentages: %v", trial, par, ri, row)
				case sum < 1-1e-9 || sum > 1+1e-9:
					t.Fatalf("trial %d P=%d row %d: percentages sum to %v, want 1 (%d cols)", trial, par, ri, sum, present)
				}
			}
		}
	}
}

// TestMinimizeRowsShrinksToKernel checks the reducer finds a small kernel:
// the predicate fails whenever both marker rows are present.
func TestMinimizeRowsShrinksToKernel(t *testing.T) {
	var rows [][]value.Value
	for i := 0; i < 100; i++ {
		rows = append(rows, []value.Value{value.NewInt(int64(i))})
	}
	failing := func(cand [][]value.Value) bool {
		has17, has83 := false, false
		for _, r := range cand {
			if r[0].Int() == 17 {
				has17 = true
			}
			if r[0].Int() == 83 {
				has83 = true
			}
		}
		return has17 && has83
	}
	min := MinimizeRows(rows, failing)
	if len(min) != 2 {
		t.Fatalf("minimized to %d rows, want the 2-row kernel: %v", len(min), min)
	}
	if !failing(min) {
		t.Fatal("minimized set no longer fails")
	}
}

// TestDifferentialDumpRowsRoundTrips checks the repro dump is executable
// SQL that rebuilds the same relation.
func TestDifferentialDumpRowsRoundTrips(t *testing.T) {
	rows := [][]value.Value{
		{value.NewInt(1), value.NewInt(2), value.NewString("it's"), value.Null},
		{value.Null, value.NewInt(-3), value.NewString("x"), value.NewInt(7)},
	}
	sql := DumpRows("f", randSchema, rows)
	eng := engine.New(storage.NewCatalog())
	if _, err := eng.ExecSQL(sql); err != nil {
		t.Fatalf("dump does not execute: %v\n%s", err, sql)
	}
	res, err := eng.ExecSQL("SELECT d1, d2, d3, a FROM f")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("round-trip row count = %d", len(res.Rows))
	}
	for ri := range rows {
		for ci := range rows[ri] {
			want, got := rows[ri][ci], res.Rows[ri][ci]
			if want.IsNull() != got.IsNull() || (!want.IsNull() && value.Compare(want, got) != 0) {
				t.Fatalf("row %d col %d: %v vs %v", ri, ci, want, got)
			}
		}
	}
}
