package difftest

import (
	"math/rand"
	"testing"

	"repro/internal/leakcheck"
	"repro/internal/value"
)

// cacheParallelisms is the cache suite's sweep: the sequential reference
// and a partition count that forces the parallel fold onto every build
// and rebuild the cache performs.
var cacheParallelisms = []int{1, 8}

// TestDifferentialCacheConsistencyRandomized replays seeded random
// interleavings of queries and DML against a cache-enabled planner and a
// cold one, asserting byte-identical answers at P ∈ {1, 8}. On the first
// divergence the op sequence and then the fact table are ddmin-shrunk
// and dumped as a standalone SQL reproducer.
func TestDifferentialCacheConsistencyRandomized(t *testing.T) {
	defer leakcheck.Check(t)()
	rng := rand.New(rand.NewSource(20260806))
	trials := 5
	if testing.Short() {
		trials = 2
	}
	for trial := 0; trial < trials; trial++ {
		rows := randTableRows(rng, 100+rng.Intn(200))
		ops := RandCacheOps(rng, 24+rng.Intn(24))
		for _, par := range cacheParallelisms {
			err := ReplayCacheOps(randSchema, rows, ops, par)
			if err == nil {
				continue
			}
			failsOps := func(cand []CacheOp) bool {
				return ReplayCacheOps(randSchema, rows, cand, par) != nil
			}
			minOps := MinimizeCacheOps(ops, failsOps)
			failsRows := func(cand [][]value.Value) bool {
				return ReplayCacheOps(randSchema, cand, minOps, par) != nil
			}
			minRows := MinimizeRows(rows, failsRows)
			t.Fatalf("trial %d P=%d: %v\nminimized reproducer (%d of %d ops, %d of %d rows):\n%s",
				trial, par, err, len(minOps), len(ops), len(minRows), len(rows),
				DumpCacheOps("f", randSchema, minRows, minOps))
		}
	}
}

// TestDifferentialCacheDirectedInterleavings pins the named maintenance
// paths with fixed sequences: single delta, folded pending chain,
// update/delete invalidation, Fj-from-cached-Fk across statements,
// non-distributive rebuild, and two shapes alternating around DML.
func TestDifferentialCacheDirectedInterleavings(t *testing.T) {
	defer leakcheck.Check(t)()
	q := func(i int) CacheOp { return CacheOp{Query: i} }
	ins := CacheOp{SQL: "INSERT INTO f VALUES (0, 1, 'x', 7), (2, 3, 'z', -2)"}
	seqs := [][]CacheOp{
		{q(0), ins, q(0)},                              // one pending delta
		{q(0), ins, ins, ins, q(0)},                    // chain folded by one refresh
		{q(0), {SQL: "UPDATE f SET a = 9 WHERE d1 = 1"}, q(0)},  // rebuild after update
		{q(0), {SQL: "DELETE FROM f WHERE d2 = 2"}, q(0)},       // rebuild after delete
		{q(0), q(1), ins, q(0), q(1)},                  // Fj rolled up from cached Fk, then both delta
		{q(5), ins, q(5)},                              // avg: non-distributive, must rebuild
		{q(3), q(4), ins, q(4), q(3)},                  // distributive extras ride the delta
		{q(6), ins, q(6), q(0)},                        // WHERE-keyed entry stays distinct
	}
	rng := rand.New(rand.NewSource(7))
	rows := randTableRows(rng, 150)
	for si, ops := range seqs {
		for _, par := range cacheParallelisms {
			if err := ReplayCacheOps(randSchema, rows, ops, par); err != nil {
				t.Errorf("seq %d P=%d: %v", si, par, err)
			}
		}
	}
}
