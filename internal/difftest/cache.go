// Cache-consistency differential harness: proves the DML-aware summary
// cache invisible. A cached planner and a cold planner replay the same
// randomized interleaving of percentage queries and DML over identical
// fact tables; every query's result must be byte-identical between the
// two — same kinds, same order, no tolerance — at every parallelism. Any
// difference means the cache served a stale, half-merged, or misfolded
// summary. On divergence the op sequence (and then the table) is shrunk
// ddmin-style to a minimal standalone reproducer.
package difftest

import (
	"fmt"
	"math/rand"
	"strings"

	"repro/internal/core"
	"repro/internal/storage"
	"repro/internal/value"

	"repro/internal/engine"
)

// CacheOp is one step of an interleaving: either a DML statement (SQL
// non-empty) applied to both planners, or a percentage query (Query
// indexes CacheQueries) run on both and compared exactly.
type CacheOp struct {
	SQL   string
	Query int
}

// IsQuery reports whether the op is a compare point rather than DML.
func (o CacheOp) IsQuery() bool { return o.SQL == "" }

// CacheQueries are the shapes the interleavings draw from, chosen to hit
// every maintenance path: plain Vpct (delta-merge), a second BY over the
// same GROUP BY (Fj rolled up from the cached Fk), a wider lattice key,
// distributive extra aggregates (sum/count/min/max ride the delta),
// avg (non-distributive — DML must force a rebuild), and a WHERE-keyed
// entry that must not alias the unfiltered one.
var CacheQueries = []string{
	"SELECT d1, d2, Vpct(a BY d2) FROM f GROUP BY d1, d2",
	"SELECT d1, d2, Vpct(a BY d1) FROM f GROUP BY d1, d2",
	"SELECT d1, d2, d3, Vpct(a BY d2, d3) FROM f GROUP BY d1, d2, d3",
	"SELECT d1, d2, Vpct(a BY d2), sum(a), count(*) FROM f GROUP BY d1, d2",
	"SELECT d1, d2, Vpct(a BY d2), min(a), max(a) FROM f GROUP BY d1, d2",
	"SELECT d1, d2, Vpct(a BY d2), avg(a) FROM f GROUP BY d1, d2",
	"SELECT d1, d2, Vpct(a BY d2) FROM f WHERE d1 < 2 GROUP BY d1, d2",
}

var cacheDims = []string{"x", "y", "z"}

// RandCacheOps generates a seeded interleaving of n ops, bracketed by
// queries so the cache is populated before the first DML and checked
// after the last. Inserts dominate (they exercise the incremental path);
// updates and deletes appear often enough to exercise invalidation.
func RandCacheOps(rng *rand.Rand, n int) []CacheOp {
	ops := make([]CacheOp, 0, n+2)
	ops = append(ops, CacheOp{Query: rng.Intn(len(CacheQueries))})
	for i := 0; i < n; i++ {
		switch k := rng.Intn(10); {
		case k < 4:
			ops = append(ops, CacheOp{Query: rng.Intn(len(CacheQueries))})
		case k < 8:
			m := 1 + rng.Intn(3)
			vals := make([]string, 0, m)
			for j := 0; j < m; j++ {
				amt := fmt.Sprintf("%d", rng.Intn(21)-5)
				if rng.Intn(15) == 0 {
					amt = "NULL"
				}
				vals = append(vals, fmt.Sprintf("(%d, %d, '%s', %s)",
					rng.Intn(3), rng.Intn(4), cacheDims[rng.Intn(3)], amt))
			}
			ops = append(ops, CacheOp{SQL: "INSERT INTO f VALUES " + strings.Join(vals, ", ")})
		case k < 9:
			ops = append(ops, CacheOp{SQL: fmt.Sprintf(
				"UPDATE f SET a = %d WHERE d1 = %d AND d2 = %d",
				rng.Intn(31)-5, rng.Intn(3), rng.Intn(4))})
		default:
			// Narrow predicate: the table shrinks but survives.
			ops = append(ops, CacheOp{SQL: fmt.Sprintf(
				"DELETE FROM f WHERE d1 = %d AND d2 = %d AND d3 = '%s'",
				rng.Intn(3), rng.Intn(4), cacheDims[rng.Intn(3)])})
		}
	}
	ops = append(ops, CacheOp{Query: rng.Intn(len(CacheQueries))})
	return ops
}

func cachePlannerFor(schema storage.Schema, rows [][]value.Value) (*core.Planner, error) {
	cat := storage.NewCatalog()
	tab, err := cat.Create("f", schema)
	if err != nil {
		return nil, err
	}
	for _, r := range rows {
		if _, err := tab.AppendRow(r); err != nil {
			return nil, err
		}
	}
	return core.NewPlanner(engine.New(cat)), nil
}

// ReplayCacheOps replays one interleaving against a cache-enabled planner
// and a cold reference planner over identical copies of the initial
// table, running every query op on both at the given parallelism. It
// returns a description of the first divergence, or nil when the cache
// was invisible end to end. Deterministic: same inputs, same verdict.
func ReplayCacheOps(schema storage.Schema, initial [][]value.Value, ops []CacheOp, parallelism int) error {
	cached, err := cachePlannerFor(schema, initial)
	if err != nil {
		return err
	}
	cold, err := cachePlannerFor(schema, initial)
	if err != nil {
		return err
	}
	cached.ShareSummaries(true)
	for i, op := range ops {
		if !op.IsQuery() {
			if _, err := cached.Eng.ExecSQL(op.SQL); err != nil {
				return fmt.Errorf("op %d cached %s: %w", i, op.SQL, err)
			}
			if _, err := cold.Eng.ExecSQL(op.SQL); err != nil {
				return fmt.Errorf("op %d cold %s: %w", i, op.SQL, err)
			}
			continue
		}
		sql := CacheQueries[op.Query]
		got, err := Run(cached, sql, core.DefaultOptions(), parallelism)
		if err != nil {
			return fmt.Errorf("op %d cached: %w", i, err)
		}
		want, err := Run(cold, sql, core.DefaultOptions(), parallelism)
		if err != nil {
			return fmt.Errorf("op %d cold: %w", i, err)
		}
		if diff := Equal(want, got); diff != "" {
			return fmt.Errorf("op %d (P=%d) %s: cached diverges from cold: %s", i, parallelism, sql, diff)
		}
	}
	return nil
}

// MinimizeCacheOps shrinks a failing op sequence while the predicate
// keeps failing, with the same ddmin chunk-removal loop MinimizeRows
// uses. Every subsequence of an interleaving is itself a valid
// interleaving (each op is self-contained SQL), so removal is always
// legal. The predicate must be deterministic.
func MinimizeCacheOps(ops []CacheOp, failing func([]CacheOp) bool) []CacheOp {
	cur := ops
	for chunk := len(cur) / 2; chunk >= 1; {
		removed := false
		for start := 0; start < len(cur); {
			end := start + chunk
			if end > len(cur) {
				end = len(cur)
			}
			cand := make([]CacheOp, 0, len(cur)-(end-start))
			cand = append(cand, cur[:start]...)
			cand = append(cand, cur[end:]...)
			if len(cand) > 0 && failing(cand) {
				cur = cand
				removed = true
				// retry the same start: the next chunk slid into place
			} else {
				start = end
			}
		}
		if !removed {
			chunk /= 2
		}
	}
	return cur
}

// DumpCacheOps renders a standalone reproducer: the minimized table as
// CREATE + INSERTs, then the minimized interleaving in replay order.
func DumpCacheOps(table string, schema storage.Schema, rows [][]value.Value, ops []CacheOp) string {
	var sb strings.Builder
	sb.WriteString(DumpRows(table, schema, rows))
	sb.WriteString("-- enable the summary cache (ShareSummaries), then replay:\n")
	for _, op := range ops {
		if op.IsQuery() {
			fmt.Fprintf(&sb, "%s; -- compare against a cold run\n", CacheQueries[op.Query])
		} else {
			fmt.Fprintf(&sb, "%s;\n", op.SQL)
		}
	}
	return sb.String()
}
