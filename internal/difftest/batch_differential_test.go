package difftest

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/leakcheck"
	"repro/internal/storage"
	"repro/internal/value"
	"repro/internal/workload"
)

// CompareBatch proves the vectorized batch path equivalent to the scalar
// fold on one query: the reference runs with batch kernels disabled at P=1,
// every candidate runs with them enabled at each parallelism in ps. Results
// must be identical by Equal's exact, kind-sensitive comparison, and errors
// must be deterministic: if the scalar reference errors, every batch run
// must error too (and vice versa). The engine is left with batch enabled.
func CompareBatch(p *core.Planner, sql string, opts core.Options, ps []int) error {
	p.Eng.SetBatch(false)
	ref, refErr := Run(p, sql, opts, 1)
	p.Eng.SetBatch(true)
	for _, par := range ps {
		got, err := Run(p, sql, opts, par)
		if (refErr == nil) != (err == nil) {
			return fmt.Errorf("difftest: %s: batch P=%d err=%v, scalar err=%v", sql, par, err, refErr)
		}
		if refErr != nil {
			if refErr.Error() != err.Error() {
				return fmt.Errorf("difftest: %s: batch P=%d error %q, scalar error %q", sql, par, err, refErr)
			}
			continue
		}
		if diff := Equal(ref, got); diff != "" {
			return fmt.Errorf("difftest: %s: batch P=%d diverges from scalar: %s", sql, par, diff)
		}
	}
	return nil
}

// TestDifferentialBatchGoldenQueries sweeps the paper's running example
// through the strategy knobs with batch kernels on, against the scalar
// reference. The tiny fixtures hit the batch path's edge cases: groups
// smaller than a batch, empty partitions at P=8, the no-GROUP-BY global
// fold, and mixed aggregate lists.
func TestDifferentialBatchGoldenQueries(t *testing.T) {
	defer leakcheck.Check(t)()
	p := goldenPlanner(t)
	cases := []struct {
		sql  string
		opts []core.Options
	}{
		{
			sql: "SELECT state, city, Vpct(salesAmt BY city) FROM sales GROUP BY state, city",
			opts: []core.Options{
				core.DefaultOptions(),
				{Vpct: core.VpctOptions{FjFromF: true}},
				{Vpct: core.VpctOptions{UseUpdate: true, SubkeyIndexes: true}},
				{Vpct: core.VpctOptions{MissingRows: core.MissingPost}},
			},
		},
		{
			sql:  "SELECT state, city, Vpct(salesAmt BY city), sum(salesAmt), count(*) FROM sales GROUP BY state, city",
			opts: []core.Options{core.DefaultOptions()},
		},
		{
			sql:  "SELECT city, Vpct(salesAmt) FROM sales GROUP BY city",
			opts: []core.Options{core.DefaultOptions()},
		},
		{
			sql: "SELECT store, Hpct(salesAmt BY dweek) FROM daily GROUP BY store",
			opts: []core.Options{
				{},
				{Hpct: core.HpctOptions{FromFV: true, Vpct: core.VpctOptions{SubkeyIndexes: true}}},
				{Hpct: core.HpctOptions{HashPivot: true}},
			},
		},
		{
			sql:  "SELECT state, Hpct(salesAmt BY city), sum(salesAmt) FROM sales GROUP BY state",
			opts: []core.Options{{}},
		},
		{
			sql: "SELECT store, sum(salesAmt BY dweek) FROM daily GROUP BY store",
			opts: []core.Options{
				{Hagg: core.HaggOptions{Method: core.HaggCASE}},
				{Hagg: core.HaggOptions{Method: core.HaggSPJ}},
				{Hagg: core.HaggOptions{Method: core.HaggCASE, HashPivot: true}},
			},
		},
		{
			sql:  "SELECT store, count(salesAmt BY dweek), avg(salesAmt BY dweek) FROM daily GROUP BY store",
			opts: []core.Options{{Hagg: core.HaggOptions{Method: core.HaggCASE}}},
		},
	}
	for _, c := range cases {
		for oi, opts := range c.opts {
			if err := CompareBatch(p, c.sql, opts, Parallelisms); err != nil {
				t.Errorf("opts[%d]: %v", oi, err)
			}
		}
	}
}

// primaryPlanner loads the workload data the primary-query sweep runs on:
// large enough that every batch query spans multiple 1024-row batches.
func primaryPlanner(t *testing.T) *core.Planner {
	t.Helper()
	cat := storage.NewCatalog()
	cards := workload.PaperCardinalities()
	cards.Store = 5
	cards.Dept = 10
	if _, err := workload.LoadEmployee(cat, "employee", 4000, 21); err != nil {
		t.Fatal(err)
	}
	if _, err := workload.LoadSales(cat, "sales", 6000, cards, 22); err != nil {
		t.Fatal(err)
	}
	return core.NewPlanner(engine.New(cat))
}

// primaryShapes renders the eight primary queries' Vpct and Hpct SQL.
func primaryShapes() []struct{ vpct, hpct string } {
	type primary struct {
		dataset, measure string
		totals, by       []string
	}
	primaries := []primary{
		{"employee", "salary", nil, []string{"gender"}},
		{"employee", "salary", []string{"marstatus"}, []string{"gender"}},
		{"employee", "salary", []string{"educat", "marstatus"}, []string{"gender"}},
		{"employee", "salary", []string{"age", "marstatus"}, []string{"gender", "educat"}},
		{"sales", "salesAmt", nil, []string{"dweek"}},
		{"sales", "salesAmt", []string{"dweek"}, []string{"monthNo"}},
		{"sales", "salesAmt", []string{"dweek", "monthNo"}, []string{"dept"}},
		{"sales", "salesAmt", []string{"dweek", "monthNo"}, []string{"dept", "store"}},
	}
	var out []struct{ vpct, hpct string }
	for _, q := range primaries {
		all := append(append([]string{}, q.totals...), q.by...)
		var s struct{ vpct, hpct string }
		if len(q.totals) == 0 {
			s.vpct = fmt.Sprintf("SELECT %s, Vpct(%s) FROM %s GROUP BY %s",
				strings.Join(q.by, ", "), q.measure, q.dataset, strings.Join(q.by, ", "))
			s.hpct = fmt.Sprintf("SELECT Hpct(%s BY %s) FROM %s",
				q.measure, strings.Join(q.by, ", "), q.dataset)
		} else {
			s.vpct = fmt.Sprintf("SELECT %s, Vpct(%s BY %s) FROM %s GROUP BY %s",
				strings.Join(all, ", "), q.measure, strings.Join(q.by, ", "),
				q.dataset, strings.Join(all, ", "))
			s.hpct = fmt.Sprintf("SELECT %s, Hpct(%s BY %s) FROM %s GROUP BY %s",
				strings.Join(q.totals, ", "), q.measure, strings.Join(q.by, ", "),
				q.dataset, strings.Join(q.totals, ", "))
		}
		out = append(out, s)
	}
	return out
}

// TestDifferentialBatchPrimaryQueries runs the eight primary benchmark
// queries (Tables 4–6) in their Vpct and Hpct forms on workload data large
// enough to span many 1024-row batches, batch kernels vs the scalar fold.
func TestDifferentialBatchPrimaryQueries(t *testing.T) {
	p := primaryPlanner(t)
	for qi, q := range primaryShapes() {
		if err := CompareBatch(p, q.vpct, core.DefaultOptions(), Parallelisms); err != nil {
			t.Errorf("primary %d Vpct: %v", qi, err)
		}
		if err := CompareBatch(p, q.hpct, core.Options{}, Parallelisms); err != nil {
			t.Errorf("primary %d Hpct: %v", qi, err)
		}
	}
}

// TestDifferentialBatchRandomizedProperty runs seeded random fact tables —
// NULLs in measures and dimensions, signed measures, string dimensions —
// through the batch and scalar paths for every property query shape. On the
// first divergence it shrinks the table with ddmin and fails with a
// standalone SQL reproducer.
func TestDifferentialBatchRandomizedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(20260808))
	trials := 6
	if testing.Short() {
		trials = 2
	}
	for trial := 0; trial < trials; trial++ {
		rows := randTableRows(rng, 200+rng.Intn(400))
		p := plannerFor(t, rows)
		for qi, q := range propertyQueries {
			err := CompareBatch(p, q.sql, q.opts, Parallelisms)
			if err == nil {
				continue
			}
			fails := func(cand [][]value.Value) bool {
				return CompareBatch(plannerFor(t, cand), q.sql, q.opts, Parallelisms) != nil
			}
			minRows := MinimizeRows(rows, fails)
			t.Fatalf("trial %d query %d: %v\nminimized reproducer (%d of %d rows):\n%s-- failing query: %s",
				trial, qi, err, len(minRows), len(rows), DumpRows("f", randSchema, minRows), q.sql)
		}
	}
}

// TestDifferentialBatchErroringPredicates pins the error-determinism rule:
// WHERE clauses that can raise per-row errors (division by zero, type
// mismatches) force the batch path into interleaved pred-then-fold order,
// so the batch run must fail with exactly the scalar path's error — same
// row, same message — or succeed with identical rows when no row errors.
func TestDifferentialBatchErroringPredicates(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	queries := []string{
		// 10/d2 errors on the first d2=0 row; scan order fixes which row.
		"SELECT d1, sum(a) FROM f WHERE 10 / d2 > 2 GROUP BY d1",
		// Errors only when a d2=0 row survives the d1 filter first.
		"SELECT d1, count(*) FROM f WHERE d1 = 1 AND 10 / d2 > 2 GROUP BY d1",
		// Error-free filters stay vectorized; results must still match.
		"SELECT d1, sum(a), min(a), max(a) FROM f WHERE d2 = 1 GROUP BY d1",
		"SELECT d3, count(a) FROM f WHERE d1 IS NULL GROUP BY d3",
	}
	for trial := 0; trial < 4; trial++ {
		rows := randTableRows(rng, 300)
		p := plannerFor(t, rows)
		for qi, sql := range queries {
			if err := CompareBatch(p, sql, core.Options{}, Parallelisms); err != nil {
				t.Errorf("trial %d query %d: %v", trial, qi, err)
			}
		}
	}
}

// TestDifferentialBatchMetamorphicVpct rides the paper's vertical invariant
// on the batch path: with a non-negative measure, every Vpct value lies in
// [0, 1] and each super-group sums to 1 at every parallelism, batch on.
func TestDifferentialBatchMetamorphicVpct(t *testing.T) {
	rng := rand.New(rand.NewSource(45))
	for trial := 0; trial < 3; trial++ {
		rows := randTableRows(rng, 400)
		for _, r := range rows {
			if !r[3].IsNull() && r[3].Int() < 0 {
				r[3] = value.NewInt(-r[3].Int())
			}
		}
		p := plannerFor(t, rows)
		p.Eng.SetBatch(true)
		for _, par := range Parallelisms {
			res, err := Run(p, "SELECT d1, d2, Vpct(a BY d2) FROM f GROUP BY d1, d2", core.DefaultOptions(), par)
			if err != nil {
				t.Fatal(err)
			}
			sums := map[string]float64{}
			skip := map[string]bool{}
			for ri, row := range res.Rows {
				v := row[2]
				key := row[0].String()
				if v.IsNull() {
					skip[key] = true
					continue
				}
				f, _ := v.AsFloat()
				if f < 0 || f > 1 {
					t.Fatalf("trial %d P=%d row %d: Vpct %v outside [0,1]", trial, par, ri, f)
				}
				sums[key] += f
			}
			for key, s := range sums {
				if skip[key] {
					continue
				}
				if s < 1-1e-9 || s > 1+1e-9 {
					t.Fatalf("trial %d P=%d super-group %s sums to %v, want 1", trial, par, key, s)
				}
			}
		}
	}
}

// TestDifferentialBatchMetamorphicHpct rides the horizontal invariant on
// the batch path: each Hpct row sums to 1 or NULL-propagates whole.
func TestDifferentialBatchMetamorphicHpct(t *testing.T) {
	rng := rand.New(rand.NewSource(46))
	for trial := 0; trial < 3; trial++ {
		p := plannerFor(t, randTableRows(rng, 400))
		p.Eng.SetBatch(true)
		for _, par := range Parallelisms {
			res, err := Run(p, "SELECT d1, Hpct(a BY d2) FROM f GROUP BY d1", core.Options{}, par)
			if err != nil {
				t.Fatal(err)
			}
			for ri, row := range res.Rows {
				sum := 0.0
				nulls := 0
				for _, v := range row[1:] {
					if v.IsNull() {
						nulls++
						continue
					}
					f, _ := v.AsFloat()
					sum += f
				}
				switch {
				case nulls == len(row)-1:
					// whole row NULL-propagated under the division-by-zero rule
				case nulls > 0:
					t.Fatalf("trial %d P=%d row %d: mixed NULL and non-NULL percentages: %v", trial, par, ri, row)
				case sum < 1-1e-9 || sum > 1+1e-9:
					t.Fatalf("trial %d P=%d row %d: percentages sum to %v, want 1", trial, par, ri, sum)
				}
			}
		}
	}
}
