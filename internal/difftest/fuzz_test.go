package difftest

import (
	"testing"

	"repro/internal/core"
	"repro/internal/value"
)

// fuzzCubeRows decodes fuzz bytes into rows of f(d1, d2, d3, a): two bytes
// per row, with high bits of the first byte injecting NULLs into a
// dimension or the measure so rolled-away NULLs and data NULLs coexist.
func fuzzCubeRows(data []byte) [][]value.Value {
	strs := []string{"x", "y", "z"}
	var rows [][]value.Value
	for i := 0; i+1 < len(data) && len(rows) < 64; i += 2 {
		b0, b1 := data[i], data[i+1]
		row := []value.Value{
			value.NewInt(int64(b0 % 3)),
			value.NewInt(int64((b0 >> 2) % 4)),
			value.NewString(strs[b1%3]),
			value.NewInt(int64(b1) - 128),
		}
		if b0&0x80 != 0 {
			row[3] = value.Null
		}
		if b0&0x40 != 0 {
			row[i/2%2] = value.Null // alternate NULLing d1 and d2
		}
		rows = append(rows, row)
	}
	return rows
}

// FuzzCubeEquivalence checks the lattice planner's defining identity:
// GROUP BY CUBE(d1, d2) is byte-identical to GROUP BY GROUPING SETS
// listing its four subsets finest-first — same rows, same order, same
// kinds — for arbitrary data including NULL dimensions and measures, with
// and without the summary cache.
func FuzzCubeEquivalence(f *testing.F) {
	f.Add([]byte{0x00, 0x10, 0x05, 0x22, 0x0a, 0x91})
	f.Add([]byte{0x80, 0x00, 0x40, 0x7f, 0xc0, 0x80, 0x01, 0x01}) // NULL measure + NULL dims
	f.Add([]byte{0x06, 0x80, 0x06, 0x80})                         // same group twice, negative measure
	f.Add([]byte{})                                               // empty table
	f.Fuzz(func(t *testing.T, data []byte) {
		rows := fuzzCubeRows(data)
		const cube = "SELECT d1, d2, Vpct(a BY d2), sum(a), GROUPING(d1, d2) FROM f GROUP BY CUBE(d1, d2)"
		const sets = "SELECT d1, d2, Vpct(a BY d2), sum(a), GROUPING(d1, d2) FROM f " +
			"GROUP BY GROUPING SETS ((d1, d2), (d1), (d2), ())"
		for _, share := range []bool{false, true} {
			pc := plannerFor(t, rows)
			ps := plannerFor(t, rows)
			if share {
				pc.ShareSummaries(true)
				ps.ShareSummaries(true)
			}
			want, err := Run(pc, cube, core.DefaultOptions(), 1)
			if err != nil {
				t.Fatalf("cube (share=%v): %v", share, err)
			}
			got, err := Run(ps, sets, core.DefaultOptions(), 1)
			if err != nil {
				t.Fatalf("grouping sets (share=%v): %v", share, err)
			}
			if diff := Equal(want, got); diff != "" {
				t.Fatalf("CUBE vs explicit GROUPING SETS (share=%v): %s\nrows:\n%s",
					share, diff, DumpRows("f", randSchema, rows))
			}
		}
	})
}
