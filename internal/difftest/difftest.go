// Package difftest is the reference-vs-parallel differential harness: it
// proves the engine's partitioned parallel aggregation path equivalent to
// the sequential fold by running the same percentage queries at P=1 (the
// reference) and P>1 and asserting the result relations are identical —
// same columns, same rows, same order, values compared exactly with no
// tolerance. The parallel path's pinned partition-order merge promises
// byte-identical output for the integer measures these workloads use, so
// any difference, however small, is a real divergence.
//
// The harness backs three kinds of tests (all named *Differential* so CI
// can shard them with -run Differential):
//
//   - golden: the paper's running example and the eight primary benchmark
//     queries, every strategy knob exercised;
//   - property: randomized seeded fact tables; on the first divergence the
//     failing table is shrunk to a minimal reproducer and dumped as SQL;
//   - metamorphic: paper invariants that must hold at every parallelism
//     (Vpct values in [0,1] or NULL; Hpct rows summing to 1 or
//     NULL-propagating under the division-by-zero rule).
package difftest

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/storage"
	"repro/internal/value"
)

// Parallelisms is the standard sweep: the sequential reference plus a
// partition count below and above typical core counts (8 forces several
// partitions even on tiny fixtures, covering empty and single-row
// partitions).
var Parallelisms = []int{1, 2, 8}

// Equal compares two results exactly and returns "" when identical, else a
// description of the first difference. NULLs only match NULLs; numeric
// values must compare equal AND have the same kind (an int64 17 is not a
// float64 17 — a kind flip would mark a merge that demoted a sum).
func Equal(a, b *engine.Result) string {
	if len(a.Columns) != len(b.Columns) {
		return fmt.Sprintf("column count %d vs %d", len(a.Columns), len(b.Columns))
	}
	for i := range a.Columns {
		if a.Columns[i] != b.Columns[i] {
			return fmt.Sprintf("column %d named %q vs %q", i, a.Columns[i], b.Columns[i])
		}
	}
	if len(a.Rows) != len(b.Rows) {
		return fmt.Sprintf("row count %d vs %d", len(a.Rows), len(b.Rows))
	}
	for ri := range a.Rows {
		ra, rb := a.Rows[ri], b.Rows[ri]
		for ci := range ra {
			va, vb := ra[ci], rb[ci]
			switch {
			case va.IsNull() != vb.IsNull():
				return fmt.Sprintf("row %d col %s: %v vs %v", ri, a.Columns[ci], va, vb)
			case va.IsNull():
				// both NULL
			case va.Kind() != vb.Kind() || value.Compare(va, vb) != 0:
				return fmt.Sprintf("row %d col %s: %v (%v) vs %v (%v)",
					ri, a.Columns[ci], va, va.Kind(), vb, vb.Kind())
			}
		}
	}
	return ""
}

// Run plans and executes one percentage query at the given parallelism.
func Run(p *core.Planner, sql string, opts core.Options, parallelism int) (*engine.Result, error) {
	opts.Parallelism = parallelism
	plan, err := p.PlanSQL(sql, opts)
	if err != nil {
		return nil, fmt.Errorf("plan (P=%d): %w", parallelism, err)
	}
	res, err := p.Execute(plan)
	if err != nil {
		return nil, fmt.Errorf("execute (P=%d): %w", parallelism, err)
	}
	return res, nil
}

// Compare runs sql under every parallelism in ps (the first entry is the
// reference, conventionally 1) and returns an error describing the first
// divergence, or nil when all runs agree exactly.
func Compare(p *core.Planner, sql string, opts core.Options, ps []int) error {
	if len(ps) < 2 {
		return fmt.Errorf("difftest: need a reference and at least one candidate parallelism, got %v", ps)
	}
	ref, err := Run(p, sql, opts, ps[0])
	if err != nil {
		return err
	}
	for _, par := range ps[1:] {
		got, err := Run(p, sql, opts, par)
		if err != nil {
			return err
		}
		if diff := Equal(ref, got); diff != "" {
			return fmt.Errorf("difftest: %s: P=%d diverges from P=%d: %s", sql, par, ps[0], diff)
		}
	}
	return nil
}

// MinimizeRows shrinks a failing row set while the predicate keeps failing,
// using ddmin-style chunk removal: try dropping ever-smaller contiguous
// chunks, keeping each removal that still fails, until no single row can be
// dropped. The predicate must be deterministic.
func MinimizeRows(rows [][]value.Value, failing func([][]value.Value) bool) [][]value.Value {
	cur := rows
	for chunk := len(cur) / 2; chunk >= 1; {
		removed := false
		for start := 0; start < len(cur); {
			end := start + chunk
			if end > len(cur) {
				end = len(cur)
			}
			cand := make([][]value.Value, 0, len(cur)-(end-start))
			cand = append(cand, cur[:start]...)
			cand = append(cand, cur[end:]...)
			if len(cand) > 0 && failing(cand) {
				cur = cand
				removed = true
				// retry the same start: the next chunk slid into place
			} else {
				start = end
			}
		}
		if !removed {
			chunk /= 2
		}
	}
	return cur
}

// DumpRows renders a minimal SQL reproducer: CREATE TABLE + INSERTs for the
// rows, ready to paste into a shell or a new test.
func DumpRows(table string, schema storage.Schema, rows [][]value.Value) string {
	var sb strings.Builder
	var defs []string
	for _, c := range schema {
		ty := "INTEGER"
		switch c.Type {
		case storage.TypeFloat:
			ty = "FLOAT"
		case storage.TypeString:
			ty = "VARCHAR"
		case storage.TypeBool:
			ty = "BOOLEAN"
		}
		defs = append(defs, c.Name+" "+ty)
	}
	fmt.Fprintf(&sb, "CREATE TABLE %s (%s);\n", table, strings.Join(defs, ", "))
	for _, row := range rows {
		var vals []string
		for _, v := range row {
			switch {
			case v.IsNull():
				vals = append(vals, "NULL")
			case v.Kind() == value.KindString:
				vals = append(vals, "'"+strings.ReplaceAll(v.Str(), "'", "''")+"'")
			default:
				vals = append(vals, v.String())
			}
		}
		fmt.Fprintf(&sb, "INSERT INTO %s VALUES (%s);\n", table, strings.Join(vals, ", "))
	}
	return sb.String()
}
