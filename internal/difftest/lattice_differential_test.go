package difftest

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/leakcheck"
	"repro/internal/value"
)

// latticeQueries are the grouping-set shapes the lattice suite sweeps over
// the random fact table f(d1, d2, d3, a): plain distributive aggregates,
// Vpct and Hpct at every node, GROUPING markers, and an explicit set list.
var latticeQueries = []string{
	"SELECT d1, d2, sum(a), count(*), GROUPING(d1, d2) FROM f GROUP BY ROLLUP(d1, d2)",
	"SELECT d1, d2, Vpct(a BY d2), GROUPING(d1, d2) FROM f GROUP BY CUBE(d1, d2)",
	"SELECT d1, d3, Vpct(a BY d3), sum(a) FROM f GROUP BY GROUPING SETS ((d1, d3), (d1), ())",
	"SELECT d1, Hpct(a BY d2), sum(a) FROM f GROUP BY ROLLUP(d1)",
	"SELECT d1, d2, d3, min(a), max(a), GROUPING(d1, d2, d3) FROM f GROUP BY ROLLUP(d1, d2, d3)",
}

// TestDifferentialLatticeParallelism: every lattice query is byte-identical
// at P ∈ {1, 2, 8} on seeded random tables. On divergence the table is
// ddmin-shrunk and dumped as a standalone SQL reproducer.
func TestDifferentialLatticeParallelism(t *testing.T) {
	defer leakcheck.Check(t)()
	rng := rand.New(rand.NewSource(20260808))
	trials := 4
	if testing.Short() {
		trials = 2
	}
	for trial := 0; trial < trials; trial++ {
		rows := randTableRows(rng, 150+rng.Intn(300))
		p := plannerFor(t, rows)
		for qi, sql := range latticeQueries {
			err := Compare(p, sql, core.DefaultOptions(), Parallelisms)
			if err == nil {
				continue
			}
			fails := func(cand [][]value.Value) bool {
				return Compare(plannerFor(t, cand), sql, core.DefaultOptions(), Parallelisms) != nil
			}
			minRows := MinimizeRows(rows, fails)
			t.Fatalf("trial %d query %d: %v\nminimized reproducer (%d of %d rows):\n%s-- failing query: %s",
				trial, qi, err, len(minRows), len(rows), DumpRows("f", randSchema, minRows), sql)
		}
	}
}

// replayLatticeOps is ReplayCacheOps with the lattice query set: a cached
// and a cold planner replay the same query/DML interleaving and every
// lattice answer must match byte for byte.
func replayLatticeOps(initial [][]value.Value, ops []CacheOp, parallelism int) error {
	cached, err := cachePlannerFor(randSchema, initial)
	if err != nil {
		return err
	}
	cold, err := cachePlannerFor(randSchema, initial)
	if err != nil {
		return err
	}
	cached.ShareSummaries(true)
	for i, op := range ops {
		if !op.IsQuery() {
			if _, err := cached.Eng.ExecSQL(op.SQL); err != nil {
				return fmt.Errorf("op %d cached %s: %w", i, op.SQL, err)
			}
			if _, err := cold.Eng.ExecSQL(op.SQL); err != nil {
				return fmt.Errorf("op %d cold %s: %w", i, op.SQL, err)
			}
			continue
		}
		sql := latticeQueries[op.Query%len(latticeQueries)]
		got, err := Run(cached, sql, core.DefaultOptions(), parallelism)
		if err != nil {
			return fmt.Errorf("op %d cached: %w", i, err)
		}
		want, err := Run(cold, sql, core.DefaultOptions(), parallelism)
		if err != nil {
			return fmt.Errorf("op %d cold: %w", i, err)
		}
		if diff := Equal(want, got); diff != "" {
			return fmt.Errorf("op %d (P=%d) %s: cached lattice diverges from cold: %s", i, parallelism, sql, diff)
		}
	}
	return nil
}

// TestDifferentialLatticeCachedVsCold interleaves lattice queries with DML
// against a cache-enabled planner and a cold one at P ∈ {1, 8}: the cached
// finest summary must answer every node identically to a cold evaluation
// through inserts (delta merges) and updates/deletes (invalidations). On
// divergence the op sequence and table are ddmin-shrunk into a reproducer.
func TestDifferentialLatticeCachedVsCold(t *testing.T) {
	defer leakcheck.Check(t)()
	rng := rand.New(rand.NewSource(20260808))
	trials := 4
	if testing.Short() {
		trials = 2
	}
	for trial := 0; trial < trials; trial++ {
		rows := randTableRows(rng, 100+rng.Intn(150))
		ops := RandCacheOps(rng, 16+rng.Intn(16))
		for _, par := range cacheParallelisms {
			err := replayLatticeOps(rows, ops, par)
			if err == nil {
				continue
			}
			failsOps := func(cand []CacheOp) bool {
				return replayLatticeOps(rows, cand, par) != nil
			}
			minOps := MinimizeCacheOps(ops, failsOps)
			failsRows := func(cand [][]value.Value) bool {
				return replayLatticeOps(cand, minOps, par) != nil
			}
			minRows := MinimizeRows(rows, failsRows)
			t.Fatalf("trial %d P=%d: %v\nminimized reproducer (%d of %d ops, %d of %d rows):\n%s",
				trial, par, err, len(minOps), len(ops), len(minRows), len(rows),
				DumpCacheOps("f", randSchema, minRows, minOps))
		}
	}
}

// latticeKey renders a dimension value as a partition-map key; GROUPING
// markers keep a rolled-away NULL distinct from a data NULL, so within one
// marker the rendered value is unambiguous.
func latticeKey(vs ...value.Value) string {
	key := ""
	for _, v := range vs {
		key += "|" + v.String()
	}
	return key
}

// nonNegativeRows flips negative measures positive so the paper's sum-to-1
// invariants are exact.
func nonNegativeRows(rng *rand.Rand, n int) [][]value.Value {
	rows := randTableRows(rng, n)
	for _, r := range rows {
		if !r[3].IsNull() && r[3].Int() < 0 {
			r[3] = value.NewInt(-r[3].Int())
		}
	}
	return rows
}

// runBoth runs sql on a cold planner and a cache-warmed planner (same rows,
// query run twice so the second ride hits the cache) at the given
// parallelism and checks they agree, returning the result.
func runBoth(t *testing.T, rows [][]value.Value, sql string, par int) *engine.Result {
	t.Helper()
	cold := plannerFor(t, rows)
	res, err := Run(cold, sql, core.DefaultOptions(), par)
	if err != nil {
		t.Fatal(err)
	}
	warm := plannerFor(t, rows)
	warm.ShareSummaries(true)
	if _, err := Run(warm, sql, core.DefaultOptions(), par); err != nil {
		t.Fatal(err)
	}
	cachedRes, err := Run(warm, sql, core.DefaultOptions(), par)
	if err != nil {
		t.Fatal(err)
	}
	if diff := Equal(res, cachedRes); diff != "" {
		t.Fatalf("P=%d %s: cached run diverges from cold: %s", par, sql, diff)
	}
	return res
}

// TestDifferentialLatticeParentFold: in a ROLLUP, every parent node's sum
// and count equal the fold of its children — the (d1) row's aggregates are
// the sums of its (d1, d2) children, and the grand total folds the (d1)
// rows. Checked at P ∈ {1, 8}, cached and cold.
func TestDifferentialLatticeParentFold(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	rows := randTableRows(rng, 400)
	const sql = "SELECT d1, d2, sum(a), count(*), GROUPING(d1, d2) FROM f GROUP BY ROLLUP(d1, d2)"
	for _, par := range cacheParallelisms {
		res := runBoth(t, rows, sql, par)
		type agg struct {
			sum     int64
			sumNull bool
			cnt     int64
		}
		fold := func(into map[string]*agg, key string, sum, cnt value.Value) {
			a := into[key]
			if a == nil {
				a = &agg{sumNull: true}
				into[key] = a
			}
			if !sum.IsNull() {
				a.sum += sum.Int()
				a.sumNull = false
			}
			a.cnt += cnt.Int()
		}
		childFold := map[string]*agg{} // finest rows folded by d1
		parents := map[string]*agg{}   // the (d1) rows as reported
		var rootFold, root *agg
		for _, row := range res.Rows {
			marker := row[4].Int()
			switch marker {
			case 0:
				fold(childFold, latticeKey(row[0]), row[2], row[3])
			case 1:
				parents[latticeKey(row[0])] = &agg{sum: zeroIfNull(row[2]), sumNull: row[2].IsNull(), cnt: row[3].Int()}
				if rootFold == nil {
					rootFold = &agg{sumNull: true}
				}
				if !row[2].IsNull() {
					rootFold.sum += row[2].Int()
					rootFold.sumNull = false
				}
				rootFold.cnt += row[3].Int()
			case 3:
				root = &agg{sum: zeroIfNull(row[2]), sumNull: row[2].IsNull(), cnt: row[3].Int()}
			default:
				t.Fatalf("P=%d: unexpected GROUPING marker %d in ROLLUP", par, marker)
			}
		}
		if len(parents) != len(childFold) {
			t.Fatalf("P=%d: %d parent rows vs %d child partitions", par, len(parents), len(childFold))
		}
		for key, want := range childFold {
			got := parents[key]
			if got == nil {
				t.Fatalf("P=%d: no parent row for child partition %s", par, key)
			}
			if got.sumNull != want.sumNull || got.sum != want.sum || got.cnt != want.cnt {
				t.Fatalf("P=%d parent %s: got %+v, children fold to %+v", par, key, got, want)
			}
		}
		if root == nil || rootFold == nil {
			t.Fatalf("P=%d: missing grand total or parent rows", par)
		}
		if root.sumNull != rootFold.sumNull || root.sum != rootFold.sum || root.cnt != rootFold.cnt {
			t.Fatalf("P=%d grand total %+v, parents fold to %+v", par, root, rootFold)
		}
	}
}

func zeroIfNull(v value.Value) int64 {
	if v.IsNull() {
		return 0
	}
	return v.Int()
}

// TestDifferentialLatticeVpctNodeSums: with a non-negative measure, Vpct
// sums to 1 within every super-group partition of every CUBE node — the
// finest node partitions by d1, the (d1) node is 100% per row, the (d2)
// node shares the grand total, and the all node is a single 100% row.
// NULL percentages (zero totals) exempt their partition, the paper's
// division-by-zero rule. Checked at P ∈ {1, 8}, cached and cold.
func TestDifferentialLatticeVpctNodeSums(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	rows := nonNegativeRows(rng, 400)
	const sql = "SELECT d1, d2, Vpct(a BY d2), GROUPING(d1, d2) FROM f GROUP BY CUBE(d1, d2)"
	for _, par := range cacheParallelisms {
		res := runBoth(t, rows, sql, par)
		sums := map[string]float64{}
		skip := map[string]bool{}
		for ri, row := range res.Rows {
			marker := row[3].Int()
			// The Vpct super-group at a node S is S minus BY: partition the
			// node's rows by the surviving totals columns.
			var part string
			switch marker {
			case 0: // (d1, d2): totals over d1
				part = "n0" + latticeKey(row[0])
			case 1: // (d1): BY fully rolled away, totals = (d1): one row each
				part = fmt.Sprintf("n1|%d", ri)
			case 2: // (d2): totals over the grand total
				part = "n2"
			case 3: // (): single grand-total row
				part = fmt.Sprintf("n3|%d", ri)
			}
			v := row[2]
			if v.IsNull() {
				skip[part] = true
				continue
			}
			f, _ := v.AsFloat()
			if f < -1e-9 || f > 1+1e-9 {
				t.Fatalf("P=%d row %d (marker %d): Vpct %v outside [0,1]", par, ri, marker, f)
			}
			sums[part] += f
		}
		for part, s := range sums {
			if skip[part] {
				continue
			}
			if math.Abs(s-1) > 1e-9 {
				t.Fatalf("P=%d partition %s: Vpct sums to %v, want 1", par, part, s)
			}
		}
	}
}

// TestDifferentialLatticeHpctRowTotals: under ROLLUP, every Hpct row's
// percentages sum to 1 or the whole row NULL-propagates — and the
// grand-total row must equal the Vpct shares of the same BY dimension over
// the plain query (the node's vertical base). Checked at P ∈ {1, 8},
// cached and cold.
func TestDifferentialLatticeHpctRowTotals(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	rows := nonNegativeRows(rng, 400)
	const sql = "SELECT d1, Hpct(a BY d2) FROM f GROUP BY ROLLUP(d1)"
	for _, par := range cacheParallelisms {
		res := runBoth(t, rows, sql, par)
		var totalRow []value.Value
		seenTotal := false
		for ri, row := range res.Rows {
			sum := 0.0
			nulls := 0
			for _, v := range row[1:] {
				if v.IsNull() {
					nulls++
					continue
				}
				f, _ := v.AsFloat()
				sum += f
			}
			switch {
			case nulls == len(row)-1:
				// whole row NULL-propagated
			case nulls > 0:
				t.Fatalf("P=%d row %d: mixed NULL and non-NULL percentages: %v", par, ri, row)
			case math.Abs(sum-1) > 1e-9:
				t.Fatalf("P=%d row %d: percentages sum to %v, want 1", par, ri, sum)
			}
			if row[0].IsNull() {
				// ROLLUP(d1) with a data-NULL d1 group also lands here; the
				// last NULL-keyed row is the grand total (node-major order).
				totalRow = row
				seenTotal = true
			}
		}
		if !seenTotal {
			t.Fatalf("P=%d: no grand-total row", par)
		}

		// The grand-total Hpct row is the (d2) node transposed: its cells
		// must equal each d2 group's Vpct share of the grand total.
		p := plannerFor(t, rows)
		vres, err := Run(p, "SELECT d2, Vpct(a) FROM f GROUP BY d2", core.DefaultOptions(), par)
		if err != nil {
			t.Fatal(err)
		}
		want := map[string]float64{}
		wantNull := map[string]bool{}
		for _, row := range vres.Rows {
			if row[1].IsNull() {
				wantNull[row[0].String()] = true
				continue
			}
			f, _ := row[1].AsFloat()
			want[row[0].String()] = f
		}
		for ci, col := range res.Columns[1:] {
			cell := totalRow[ci+1]
			if cell.IsNull() {
				if !wantNull[col] {
					t.Fatalf("P=%d: grand-total cell %q is NULL but Vpct base is %v", par, col, want[col])
				}
				continue
			}
			wf, ok := want[col]
			if !ok {
				t.Fatalf("P=%d: grand-total column %q has no Vpct base row", par, col)
			}
			f, _ := cell.AsFloat()
			if math.Abs(f-wf) > 1e-9 {
				t.Fatalf("P=%d: grand-total cell %q = %v, Vpct base = %v", par, col, f, wf)
			}
		}
	}
}
