package index

import (
	"testing"
	"testing/quick"

	"repro/internal/value"
)

func key(parts ...any) []value.Value {
	out := make([]value.Value, len(parts))
	for i, p := range parts {
		switch v := p.(type) {
		case int:
			out[i] = value.NewInt(int64(v))
		case string:
			out[i] = value.NewString(v)
		case nil:
			out[i] = value.Null
		}
	}
	return out
}

func TestAddLookup(t *testing.T) {
	ix := New("i", []string{"state", "city"})
	ix.Add(key("CA", "SF"), 0)
	ix.Add(key("CA", "SF"), 1)
	ix.Add(key("TX", "Dallas"), 2)
	if got := ix.Lookup(key("CA", "SF")); len(got) != 2 {
		t.Errorf("CA/SF rows = %v", got)
	}
	if got := ix.Lookup(key("CA", "LA")); len(got) != 0 {
		t.Errorf("CA/LA rows = %v", got)
	}
	if ix.Len() != 3 || ix.Buckets() != 2 {
		t.Errorf("Len=%d Buckets=%d", ix.Len(), ix.Buckets())
	}
	if ix.Name() != "i" {
		t.Error("Name wrong")
	}
	if cols := ix.Columns(); len(cols) != 2 || cols[0] != "state" {
		t.Errorf("Columns = %v", cols)
	}
	if ix.String() == "" {
		t.Error("String empty")
	}
}

func TestNullKeysIndexed(t *testing.T) {
	ix := New("i", []string{"d"})
	ix.Add(key(nil), 0)
	ix.Add(key(nil), 1)
	if got := ix.Lookup(key(nil)); len(got) != 2 {
		t.Errorf("NULL bucket = %v", got)
	}
}

func TestRemove(t *testing.T) {
	ix := New("i", []string{"d"})
	ix.Add(key(1), 10)
	ix.Add(key(1), 11)
	if !ix.Remove(key(1), 10) {
		t.Error("Remove existing entry must succeed")
	}
	if ix.Remove(key(1), 10) {
		t.Error("Remove twice must fail")
	}
	if got := ix.Lookup(key(1)); len(got) != 1 || got[0] != 11 {
		t.Errorf("after remove: %v", got)
	}
	if !ix.Remove(key(1), 11) {
		t.Error("Remove last entry must succeed")
	}
	if ix.Buckets() != 0 || ix.Len() != 0 {
		t.Errorf("index not empty: buckets=%d len=%d", ix.Buckets(), ix.Len())
	}
	if ix.Remove(key(2), 5) {
		t.Error("Remove from missing bucket must fail")
	}
}

func TestLookupKeyMatchesLookup(t *testing.T) {
	ix := New("i", []string{"a", "b"})
	k := key("x", 3)
	ix.Add(k, 7)
	enc := value.EncodeKeyString(k...)
	if got := ix.LookupKey(enc); len(got) != 1 || got[0] != 7 {
		t.Errorf("LookupKey = %v", got)
	}
}

func TestAddRemoveBalanceProperty(t *testing.T) {
	// After adding entries and removing all of them, the index is empty.
	f := func(keys []int8) bool {
		ix := New("p", []string{"k"})
		for i, k := range keys {
			ix.Add(key(int(k)), i)
		}
		for i, k := range keys {
			if !ix.Remove(key(int(k)), i) {
				return false
			}
		}
		return ix.Len() == 0 && ix.Buckets() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
