// Package index implements secondary hash indexes over encoded value keys.
// The paper's Vpct evaluation joins the fine aggregate Fk with the coarse
// totals Fj on their common subkey D1..Dj; building identical hash indexes
// on that subkey on both tables is one of the optimizations Table 4 studies.
// Indexes map an encoded key (see value.EncodeKey) to the row ids holding it.
package index

import (
	"fmt"

	"repro/internal/value"
)

// Index is a hash index over one or more columns of a table. The index does
// not know about tables; the owner feeds it (key-tuple, row id) pairs and
// keeps it in sync on updates. Row ids are dense ints as assigned by the
// storage layer.
type Index struct {
	name    string
	columns []string // indexed column names, for catalog display
	buckets map[string][]int
	entries int
}

// New creates an empty index named name over the given columns.
func New(name string, columns []string) *Index {
	return &Index{
		name:    name,
		columns: append([]string(nil), columns...),
		buckets: make(map[string][]int),
	}
}

// Name returns the index name.
func (ix *Index) Name() string { return ix.name }

// Columns returns the indexed column names in index order.
func (ix *Index) Columns() []string { return append([]string(nil), ix.columns...) }

// Len reports the number of (key,row) entries in the index.
func (ix *Index) Len() int { return ix.entries }

// Buckets reports the number of distinct keys.
func (ix *Index) Buckets() int { return len(ix.buckets) }

// Add records that row rid holds the key tuple vals.
func (ix *Index) Add(vals []value.Value, rid int) {
	k := value.EncodeKeyString(vals...)
	ix.buckets[k] = append(ix.buckets[k], rid)
	ix.entries++
}

// Remove forgets the (vals, rid) entry. It is a no-op if the entry is not
// present; it returns whether an entry was removed.
func (ix *Index) Remove(vals []value.Value, rid int) bool {
	k := value.EncodeKeyString(vals...)
	rows := ix.buckets[k]
	for i, r := range rows {
		if r == rid {
			rows[i] = rows[len(rows)-1]
			rows = rows[:len(rows)-1]
			if len(rows) == 0 {
				delete(ix.buckets, k)
			} else {
				ix.buckets[k] = rows
			}
			ix.entries--
			return true
		}
	}
	return false
}

// Lookup returns the row ids holding the key tuple vals. The returned slice
// is owned by the index and must not be mutated.
func (ix *Index) Lookup(vals []value.Value) []int {
	return ix.buckets[value.EncodeKeyString(vals...)]
}

// LookupKey returns the row ids for an already-encoded key.
func (ix *Index) LookupKey(key string) []int { return ix.buckets[key] }

// String summarizes the index for catalog listings.
func (ix *Index) String() string {
	return fmt.Sprintf("INDEX %s (%d keys, %d entries)", ix.name, len(ix.buckets), ix.entries)
}
