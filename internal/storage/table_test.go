package storage

import (
	"testing"

	"repro/internal/value"
)

func testSchema() Schema {
	return Schema{
		{Name: "state", Type: TypeString},
		{Name: "city", Type: TypeString},
		{Name: "salesAmt", Type: TypeInt},
	}
}

func mustTable(t *testing.T) *Table {
	t.Helper()
	tb, err := NewTable("sales", testSchema())
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestNewTableValidation(t *testing.T) {
	if _, err := NewTable("empty", nil); err == nil {
		t.Error("empty schema must fail")
	}
	dup := Schema{{Name: "a", Type: TypeInt}, {Name: "A", Type: TypeInt}}
	if _, err := NewTable("dup", dup); err == nil {
		t.Error("duplicate (case-insensitive) columns must fail")
	}
}

func TestAppendGetRoundTrip(t *testing.T) {
	tb := mustTable(t)
	rows := [][]value.Value{
		{value.NewString("CA"), value.NewString("SF"), value.NewInt(13)},
		{value.NewString("TX"), value.NewString("Houston"), value.Null},
		{value.Null, value.Null, value.NewInt(0)},
	}
	for i, r := range rows {
		rid, err := tb.AppendRow(r)
		if err != nil {
			t.Fatal(err)
		}
		if rid != i {
			t.Errorf("row id %d, want %d", rid, i)
		}
	}
	if tb.NumRows() != 3 || tb.NumCols() != 3 {
		t.Fatalf("dims = %dx%d", tb.NumRows(), tb.NumCols())
	}
	for r, want := range rows {
		for c := range want {
			got := tb.Get(r, c)
			if value.Compare(got, want[c]) != 0 {
				t.Errorf("Get(%d,%d) = %v, want %v", r, c, got, want[c])
			}
		}
	}
	row := tb.Row(1, nil)
	if row[0].Str() != "TX" || !row[2].IsNull() {
		t.Errorf("Row(1) = %v", row)
	}
}

func TestAppendTypeMismatch(t *testing.T) {
	tb := mustTable(t)
	_, err := tb.AppendRow([]value.Value{value.NewInt(1), value.NewString("x"), value.NewInt(2)})
	if err == nil {
		t.Fatal("int into VARCHAR must fail")
	}
	// A failed append must not leave ragged columns.
	if tb.NumRows() != 0 {
		t.Fatalf("NumRows = %d after failed append", tb.NumRows())
	}
	if _, err := tb.AppendRow([]value.Value{value.NewString("CA"), value.NewString("SF"), value.NewInt(1)}); err != nil {
		t.Fatalf("append after failure: %v", err)
	}
	if tb.Get(0, 2).Int() != 1 {
		t.Error("columns misaligned after rollback")
	}
}

func TestAppendArityMismatch(t *testing.T) {
	tb := mustTable(t)
	if _, err := tb.AppendRow([]value.Value{value.NewString("CA")}); err == nil {
		t.Error("short row must fail")
	}
}

func TestIntColumnStoresExactFloats(t *testing.T) {
	tb := mustTable(t)
	// Float 2.0 fits an INTEGER column; 2.5 does not.
	if _, err := tb.AppendRow([]value.Value{value.NewString("a"), value.NewString("b"), value.NewFloat(2)}); err != nil {
		t.Errorf("exact float into int: %v", err)
	}
	if _, err := tb.AppendRow([]value.Value{value.NewString("a"), value.NewString("b"), value.NewFloat(2.5)}); err == nil {
		t.Error("fractional float into int must fail")
	}
}

func TestSetInPlace(t *testing.T) {
	tb := mustTable(t)
	tb.AppendRow([]value.Value{value.NewString("CA"), value.NewString("SF"), value.NewInt(10)})
	if err := tb.Set(0, 2, value.NewInt(99)); err != nil {
		t.Fatal(err)
	}
	if got := tb.Get(0, 2).Int(); got != 99 {
		t.Errorf("after Set, Get = %d", got)
	}
	if err := tb.Set(0, 2, value.Null); err != nil {
		t.Fatal(err)
	}
	if !tb.Get(0, 2).IsNull() {
		t.Error("Set NULL not visible")
	}
	// Un-null again.
	if err := tb.Set(0, 2, value.NewInt(7)); err != nil {
		t.Fatal(err)
	}
	if tb.Get(0, 2).Int() != 7 {
		t.Error("Set after NULL not visible")
	}
	if err := tb.Set(5, 0, value.Null); err == nil {
		t.Error("out-of-range Set must fail")
	}
}

func TestIndexMaintenance(t *testing.T) {
	tb := mustTable(t)
	tb.AppendRow([]value.Value{value.NewString("CA"), value.NewString("SF"), value.NewInt(1)})
	tb.AppendRow([]value.Value{value.NewString("CA"), value.NewString("LA"), value.NewInt(2)})
	tb.AppendRow([]value.Value{value.NewString("TX"), value.NewString("Dallas"), value.NewInt(3)})
	ix, err := tb.CreateIndex("by_state", []string{"state"})
	if err != nil {
		t.Fatal(err)
	}
	if got := ix.Lookup([]value.Value{value.NewString("CA")}); len(got) != 2 {
		t.Errorf("CA rows = %v", got)
	}
	// Appends maintain the index.
	tb.AppendRow([]value.Value{value.NewString("CA"), value.NewString("SD"), value.NewInt(4)})
	if got := ix.Lookup([]value.Value{value.NewString("CA")}); len(got) != 3 {
		t.Errorf("CA rows after append = %v", got)
	}
	// Updates to the indexed column move the row between buckets.
	if err := tb.Set(2, 0, value.NewString("CA")); err != nil {
		t.Fatal(err)
	}
	if got := ix.Lookup([]value.Value{value.NewString("CA")}); len(got) != 4 {
		t.Errorf("CA rows after update = %v", got)
	}
	if got := ix.Lookup([]value.Value{value.NewString("TX")}); len(got) != 0 {
		t.Errorf("TX rows after update = %v", got)
	}
	// Updates to non-indexed columns leave the index untouched.
	if err := tb.Set(0, 2, value.NewInt(100)); err != nil {
		t.Fatal(err)
	}
	if got := ix.Lookup([]value.Value{value.NewString("CA")}); len(got) != 4 {
		t.Errorf("CA rows after measure update = %v", got)
	}
}

func TestIndexOnAndDuplicates(t *testing.T) {
	tb := mustTable(t)
	if _, err := tb.CreateIndex("i1", []string{"state", "city"}); err != nil {
		t.Fatal(err)
	}
	if _, err := tb.CreateIndex("i1", []string{"state"}); err == nil {
		t.Error("duplicate index name must fail")
	}
	if _, err := tb.CreateIndex("i2", []string{"nosuch"}); err == nil {
		t.Error("index on missing column must fail")
	}
	if tb.IndexOn([]string{"state", "city"}) == nil {
		t.Error("IndexOn must find i1")
	}
	if tb.IndexOn([]string{"city", "state"}) != nil {
		t.Error("IndexOn is order-sensitive")
	}
	if tb.IndexOn([]string{"STATE", "CITY"}) == nil {
		t.Error("IndexOn must be case-insensitive")
	}
}

func TestPrimaryKey(t *testing.T) {
	tb := mustTable(t)
	if err := tb.SetPrimaryKey([]string{"state", "city"}); err != nil {
		t.Fatal(err)
	}
	if got := tb.PrimaryKey(); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Errorf("PrimaryKey = %v", got)
	}
	if tb.IndexOn([]string{"state", "city"}) == nil {
		t.Error("primary key must create an index")
	}
	if err := tb.SetPrimaryKey([]string{"bogus"}); err == nil {
		t.Error("PK on missing column must fail")
	}
}

func TestTruncate(t *testing.T) {
	tb := mustTable(t)
	tb.AppendRow([]value.Value{value.NewString("CA"), value.NewString("SF"), value.NewInt(1)})
	ix, _ := tb.CreateIndex("by_state", []string{"state"})
	if ix.Len() != 1 {
		t.Fatalf("index len = %d", ix.Len())
	}
	tb.Truncate()
	if tb.NumRows() != 0 {
		t.Errorf("rows after truncate = %d", tb.NumRows())
	}
	ix2 := tb.IndexOn([]string{"state"})
	if ix2 == nil || ix2.Len() != 0 {
		t.Error("truncate must keep an empty index")
	}
	// Table still usable.
	if _, err := tb.AppendRow([]value.Value{value.NewString("TX"), value.NewString("D"), value.NewInt(2)}); err != nil {
		t.Fatal(err)
	}
	if got := ix2.Lookup([]value.Value{value.NewString("TX")}); len(got) != 1 {
		t.Error("index not maintained after truncate")
	}
}

func TestRawColumnAccessors(t *testing.T) {
	tb := mustTable(t)
	tb.AppendRow([]value.Value{value.NewString("CA"), value.NewString("SF"), value.NewInt(5)})
	tb.AppendRow([]value.Value{value.NewString("CA"), value.NewString("SF"), value.Null})
	vals, isNull, ok := tb.IntColumn(2)
	if !ok || len(vals) != 2 || vals[0] != 5 {
		t.Fatalf("IntColumn = %v %v", vals, ok)
	}
	if isNull(0) || !isNull(1) {
		t.Error("null bitmap wrong")
	}
	if _, _, ok := tb.IntColumn(0); ok {
		t.Error("IntColumn on VARCHAR must report !ok")
	}
	if _, _, ok := tb.FloatColumn(2); ok {
		t.Error("FloatColumn on INTEGER must report !ok")
	}
}

func TestSchemaHelpers(t *testing.T) {
	s := testSchema()
	if s.ColumnIndex("CITY") != 1 {
		t.Error("ColumnIndex must be case-insensitive")
	}
	if s.ColumnIndex("none") != -1 {
		t.Error("missing column must be -1")
	}
	names := s.Names()
	if len(names) != 3 || names[2] != "salesAmt" {
		t.Errorf("Names = %v", names)
	}
	if s.String() == "" {
		t.Error("Schema.String empty")
	}
}

func TestColumnTypeNames(t *testing.T) {
	for _, ct := range []ColumnType{TypeInt, TypeFloat, TypeString, TypeBool} {
		if ct.String() == "" {
			t.Errorf("type %d unnamed", ct)
		}
		k := ct.Kind()
		back, err := TypeForKind(k)
		if err != nil || back != ct {
			t.Errorf("TypeForKind(%v) = %v, %v", k, back, err)
		}
	}
	if _, err := TypeForKind(value.KindNull); err == nil {
		t.Error("TypeForKind(NULL) must fail")
	}
}
