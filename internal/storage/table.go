package storage

import (
	"fmt"
	"strings"
	"sync/atomic"

	"repro/internal/index"
	"repro/internal/value"
)

// epochClock is the process-wide modification clock: every mutation of any
// table stamps the table with a fresh tick. Because ticks are globally
// monotonic — never reused across tables — a cache entry keyed by (table,
// epoch) can never be aliased by a drop-and-recreate or a staging-swap: the
// replacement table necessarily carries a newer epoch.
var epochClock atomic.Int64

// ColumnDef declares one column of a table schema.
type ColumnDef struct {
	Name string
	Type ColumnType
}

// Schema is an ordered list of column definitions.
type Schema []ColumnDef

// ColumnIndex returns the position of the named column (case-insensitive),
// or -1 if absent.
func (s Schema) ColumnIndex(name string) int {
	for i, c := range s {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// Names returns the column names in order.
func (s Schema) Names() []string {
	out := make([]string, len(s))
	for i, c := range s {
		out[i] = c.Name
	}
	return out
}

// String renders the schema as a CREATE TABLE column list.
func (s Schema) String() string {
	parts := make([]string, len(s))
	for i, c := range s {
		parts[i] = c.Name + " " + c.Type.String()
	}
	return strings.Join(parts, ", ")
}

// Table is an in-memory columnar table. Tables are not safe for concurrent
// mutation; the engine serializes writes per statement. Reads may proceed
// concurrently with each other.
type Table struct {
	name    string
	schema  Schema
	cols    []*column
	nrows   int
	indexes []*index.Index
	// primaryKey holds the positions of primary-key columns, if declared.
	primaryKey []int
	// epoch is the table's position on the global modification clock: it
	// advances on every row mutation (append, set, truncate) and at creation.
	// Readers that cached derived state (the planner's summary cache) compare
	// it to decide whether their snapshot is still current. Atomic so
	// concurrent readers may poll it while the serialized writer advances it.
	epoch atomic.Int64
}

// NewTable creates an empty table with the given schema.
func NewTable(name string, schema Schema) (*Table, error) {
	if len(schema) == 0 {
		return nil, fmt.Errorf("storage: table %q needs at least one column", name)
	}
	seen := make(map[string]bool, len(schema))
	cols := make([]*column, len(schema))
	for i, def := range schema {
		lower := strings.ToLower(def.Name)
		if seen[lower] {
			return nil, fmt.Errorf("storage: table %q: duplicate column %q", name, def.Name)
		}
		seen[lower] = true
		cols[i] = newColumn(def.Type)
	}
	t := &Table{
		name:   name,
		schema: append(Schema(nil), schema...),
		cols:   cols,
	}
	t.bumpEpoch()
	return t, nil
}

// Epoch returns the table's last-modification tick on the global clock.
// Two reads returning the same value bracket a span with no row mutations;
// a table created later (including a staging clone swapped in under the
// same name) always reports a strictly greater epoch.
func (t *Table) Epoch() int64 { return t.epoch.Load() }

// bumpEpoch advances the table to a fresh tick of the global clock.
func (t *Table) bumpEpoch() { t.epoch.Store(epochClock.Add(1)) }

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Schema returns the table schema. The caller must not mutate it.
func (t *Table) Schema() Schema { return t.schema }

// NumRows reports the number of rows.
func (t *Table) NumRows() int { return t.nrows }

// NumCols reports the number of columns.
func (t *Table) NumCols() int { return len(t.schema) }

// SetPrimaryKey records the primary-key columns (by name) and builds a
// backing index for them. It must be called before rows are appended if
// uniqueness is to be enforced from the start.
func (t *Table) SetPrimaryKey(columns []string) error {
	pos := make([]int, len(columns))
	for i, c := range columns {
		j := t.schema.ColumnIndex(c)
		if j < 0 {
			return fmt.Errorf("storage: table %q: no column %q for primary key", t.name, c)
		}
		pos[i] = j
	}
	t.primaryKey = pos
	_, err := t.CreateIndex("pk_"+t.name, columns)
	return err
}

// PrimaryKey returns the primary key column positions, or nil.
func (t *Table) PrimaryKey() []int { return t.primaryKey }

// AppendRow appends vals as a new row and returns its row id. The number
// and types of values must match the schema (NULL fits any column).
func (t *Table) AppendRow(vals []value.Value) (int, error) {
	if len(vals) != len(t.cols) {
		return 0, fmt.Errorf("storage: table %q has %d columns, row has %d values",
			t.name, len(t.cols), len(vals))
	}
	for i, v := range vals {
		if err := t.cols[i].append(v); err != nil {
			// Roll back the columns already appended to keep them aligned.
			for j := 0; j < i; j++ {
				t.truncColumn(j, t.nrows)
			}
			return 0, fmt.Errorf("storage: table %q column %q: %w", t.name, t.schema[i].Name, err)
		}
	}
	rid := t.nrows
	t.nrows++
	for _, ix := range t.indexes {
		ix.Add(t.indexKey(ix, rid), rid)
	}
	t.bumpEpoch()
	return rid, nil
}

func (t *Table) truncColumn(i, n int) {
	c := t.cols[i]
	// Clear the null bits of the discarded rows: append trusts the bitmap to
	// be clean past the end, so a stale bit would make a later row at the
	// same position read as NULL.
	for r := n; r < c.len(); r++ {
		c.nulls.clear(r)
	}
	switch c.typ {
	case TypeInt:
		c.ints = c.ints[:n]
	case TypeFloat:
		c.flts = c.flts[:n]
	case TypeString:
		c.strs = c.strs[:n]
	case TypeBool:
		c.bools = c.bools[:n]
	}
}

// TruncateTo discards rows n onward, restoring the table to an earlier row
// count — the rollback half of the engine's statement-atomic INSERT (append
// under a savepoint, truncate back on failure). Indexes are rebuilt from
// the surviving rows. A count at or beyond the current size is a no-op.
func (t *Table) TruncateTo(n int) {
	if n < 0 {
		n = 0
	}
	if n >= t.nrows {
		return
	}
	for i := range t.cols {
		t.truncColumn(i, n)
	}
	t.nrows = n
	t.bumpEpoch()
	defs := make([][2]any, 0, len(t.indexes))
	for _, ix := range t.indexes {
		defs = append(defs, [2]any{ix.Name(), ix.Columns()})
	}
	t.indexes = nil
	for _, d := range defs {
		// Re-create from surviving rows; errors are impossible for existing
		// columns.
		_, _ = t.CreateIndex(d[0].(string), d[1].([]string))
	}
}

// EmptyClone returns a new zero-row table with the same name, schema,
// primary key, and (empty) index definitions. It is the staging half of the
// engine's statement-atomic table rewrites: build the new contents into the
// clone, then publish it with Catalog.Put on success, so a mid-statement
// failure leaves the live table untouched.
func (t *Table) EmptyClone() *Table {
	c, err := NewTable(t.name, t.schema)
	if err != nil {
		// t's schema was validated when t was created.
		panic("storage: EmptyClone of invalid table: " + err.Error())
	}
	c.primaryKey = append([]int(nil), t.primaryKey...)
	for _, ix := range t.indexes {
		_, _ = c.CreateIndex(ix.Name(), ix.Columns())
	}
	return c
}

// Get returns the value at (row, col).
func (t *Table) Get(row, col int) value.Value {
	return t.cols[col].get(row)
}

// Row copies row r into dst (allocating if dst is too small) and returns it.
func (t *Table) Row(r int, dst []value.Value) []value.Value {
	if cap(dst) < len(t.cols) {
		dst = make([]value.Value, len(t.cols))
	}
	dst = dst[:len(t.cols)]
	for i, c := range t.cols {
		dst[i] = c.get(r)
	}
	return dst
}

// Set overwrites the value at (row, col), keeping indexes in sync.
func (t *Table) Set(row, col int, v value.Value) error {
	if row < 0 || row >= t.nrows {
		return fmt.Errorf("storage: table %q: row %d out of range", t.name, row)
	}
	var touched []*index.Index
	for _, ix := range t.indexes {
		for _, c := range ix.Columns() {
			if t.schema.ColumnIndex(c) == col {
				touched = append(touched, ix)
				break
			}
		}
	}
	for _, ix := range touched {
		ix.Remove(t.indexKey(ix, row), row)
	}
	if err := t.cols[col].set(row, v); err != nil {
		for _, ix := range touched {
			ix.Add(t.indexKey(ix, row), row)
		}
		return fmt.Errorf("storage: table %q column %q: %w", t.name, t.schema[col].Name, err)
	}
	for _, ix := range touched {
		ix.Add(t.indexKey(ix, row), row)
	}
	t.bumpEpoch()
	return nil
}

// CreateIndex builds a hash index over the named columns, populated from the
// current rows, and registers it for maintenance on future writes.
func (t *Table) CreateIndex(name string, columns []string) (*index.Index, error) {
	pos := make([]int, len(columns))
	for i, c := range columns {
		j := t.schema.ColumnIndex(c)
		if j < 0 {
			return nil, fmt.Errorf("storage: table %q: no column %q to index", t.name, c)
		}
		pos[i] = j
	}
	for _, ix := range t.indexes {
		if strings.EqualFold(ix.Name(), name) {
			return nil, fmt.Errorf("storage: table %q: index %q already exists", t.name, name)
		}
	}
	ix := index.New(name, columns)
	key := make([]value.Value, len(pos))
	for r := 0; r < t.nrows; r++ {
		for i, p := range pos {
			key[i] = t.cols[p].get(r)
		}
		ix.Add(key, r)
	}
	t.indexes = append(t.indexes, ix)
	return ix, nil
}

// Indexes returns the table's indexes.
func (t *Table) Indexes() []*index.Index { return t.indexes }

// IndexOn returns an index whose column list equals columns (order-
// sensitive, case-insensitive), or nil.
func (t *Table) IndexOn(columns []string) *index.Index {
	for _, ix := range t.indexes {
		ic := ix.Columns()
		if len(ic) != len(columns) {
			continue
		}
		match := true
		for i := range ic {
			if !strings.EqualFold(ic[i], columns[i]) {
				match = false
				break
			}
		}
		if match {
			return ix
		}
	}
	return nil
}

// indexKey extracts the key tuple for ix from row rid.
func (t *Table) indexKey(ix *index.Index, rid int) []value.Value {
	cols := ix.Columns()
	key := make([]value.Value, len(cols))
	for i, c := range cols {
		key[i] = t.cols[t.schema.ColumnIndex(c)].get(rid)
	}
	return key
}

// Truncate removes all rows, keeping schema and (now empty) indexes.
func (t *Table) Truncate() {
	for i := range t.cols {
		t.cols[i] = newColumn(t.schema[i].Type)
	}
	t.nrows = 0
	t.bumpEpoch()
	names := make([][2]any, 0, len(t.indexes))
	for _, ix := range t.indexes {
		names = append(names, [2]any{ix.Name(), ix.Columns()})
	}
	t.indexes = nil
	for _, n := range names {
		// Re-create empty indexes; errors are impossible for existing columns.
		_, _ = t.CreateIndex(n[0].(string), n[1].([]string))
	}
}

// IntColumn exposes the raw int64 vector and null bitmap checker of an
// INTEGER column for tight benchmark loops. The returned slice must not be
// mutated. ok is false if the column is not INTEGER.
func (t *Table) IntColumn(col int) (vals []int64, isNull func(int) bool, ok bool) {
	c := t.cols[col]
	if c.typ != TypeInt {
		return nil, nil, false
	}
	return c.ints, c.nulls.get, true
}

// FloatColumn exposes the raw float64 vector of a REAL column, as IntColumn.
func (t *Table) FloatColumn(col int) (vals []float64, isNull func(int) bool, ok bool) {
	c := t.cols[col]
	if c.typ != TypeFloat {
		return nil, nil, false
	}
	return c.flts, c.nulls.get, true
}

// StringColumn exposes the raw string vector of a VARCHAR column, as
// IntColumn.
func (t *Table) StringColumn(col int) (vals []string, isNull func(int) bool, ok bool) {
	c := t.cols[col]
	if c.typ != TypeString {
		return nil, nil, false
	}
	return c.strs, c.nulls.get, true
}

// BoolColumn exposes the raw bool vector of a BOOLEAN column, as IntColumn.
func (t *Table) BoolColumn(col int) (vals []bool, isNull func(int) bool, ok bool) {
	c := t.cols[col]
	if c.typ != TypeBool {
		return nil, nil, false
	}
	return c.bools, c.nulls.get, true
}

// ColumnNulls exposes a column's null test regardless of its type; the
// vectorized IS NULL kernel needs only the bitmap.
func (t *Table) ColumnNulls(col int) func(int) bool {
	return t.cols[col].nulls.get
}
