package storage

import (
	"fmt"
	"sync"
	"testing"
)

func TestCatalogCreateGetDrop(t *testing.T) {
	c := NewCatalog()
	tb, err := c.Create("F", Schema{{Name: "a", Type: TypeInt}})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Get("f") // case-insensitive
	if err != nil || got != tb {
		t.Fatalf("Get(f) = %v, %v", got, err)
	}
	if !c.Has("F") || c.Has("G") {
		t.Error("Has wrong")
	}
	if _, err := c.Create("f", Schema{{Name: "a", Type: TypeInt}}); err == nil {
		t.Error("duplicate create must fail")
	}
	if err := c.Drop("F"); err != nil {
		t.Fatal(err)
	}
	if err := c.Drop("F"); err == nil {
		t.Error("double drop must fail")
	}
	c.DropIfExists("F") // no-op, no panic
	if _, err := c.Get("F"); err == nil {
		t.Error("Get after drop must fail")
	}
}

func TestCatalogPutReplaces(t *testing.T) {
	c := NewCatalog()
	t1, _ := NewTable("t", Schema{{Name: "a", Type: TypeInt}})
	t2, _ := NewTable("T", Schema{{Name: "b", Type: TypeFloat}})
	c.Put(t1)
	c.Put(t2)
	got, err := c.Get("t")
	if err != nil || got != t2 {
		t.Error("Put must replace same-name table")
	}
}

func TestCatalogNamesSorted(t *testing.T) {
	c := NewCatalog()
	for _, n := range []string{"zeta", "alpha", "mid"} {
		if _, err := c.Create(n, Schema{{Name: "a", Type: TypeInt}}); err != nil {
			t.Fatal(err)
		}
	}
	names := c.Names()
	if len(names) != 3 || names[0] != "alpha" || names[2] != "zeta" {
		t.Errorf("Names = %v", names)
	}
}

func TestCatalogConcurrentAccess(t *testing.T) {
	c := NewCatalog()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("t%d", i)
			if _, err := c.Create(name, Schema{{Name: "a", Type: TypeInt}}); err != nil {
				t.Error(err)
				return
			}
			if _, err := c.Get(name); err != nil {
				t.Error(err)
			}
			c.Names()
			c.DropIfExists(name)
		}(i)
	}
	wg.Wait()
	if len(c.Names()) != 0 {
		t.Errorf("leftover tables: %v", c.Names())
	}
}
