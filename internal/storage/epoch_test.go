package storage

import (
	"testing"

	"repro/internal/value"
)

// Epochs are the invalidation backbone of the planner's summary cache: any
// row mutation must advance them, and the global clock must make staging
// swaps and drop-recreate cycles distinguishable from the original table.

func TestEpochAdvancesOnEveryMutation(t *testing.T) {
	tab, err := NewTable("t", Schema{{Name: "a", Type: TypeInt}, {Name: "b", Type: TypeInt}})
	if err != nil {
		t.Fatal(err)
	}
	e0 := tab.Epoch()
	if e0 == 0 {
		t.Fatal("fresh table has zero epoch")
	}

	if _, err := tab.AppendRow([]value.Value{value.NewInt(1), value.NewInt(2)}); err != nil {
		t.Fatal(err)
	}
	e1 := tab.Epoch()
	if e1 <= e0 {
		t.Fatalf("AppendRow did not advance epoch: %d -> %d", e0, e1)
	}

	if err := tab.Set(0, 1, value.NewInt(9)); err != nil {
		t.Fatal(err)
	}
	e2 := tab.Epoch()
	if e2 <= e1 {
		t.Fatalf("Set did not advance epoch: %d -> %d", e1, e2)
	}

	tab.TruncateTo(0)
	e3 := tab.Epoch()
	if e3 <= e2 {
		t.Fatalf("TruncateTo did not advance epoch: %d -> %d", e2, e3)
	}

	tab.Truncate()
	if tab.Epoch() <= e3 {
		t.Fatalf("Truncate did not advance epoch: %d -> %d", e3, tab.Epoch())
	}
}

func TestEpochStableAcrossReads(t *testing.T) {
	tab, err := NewTable("t", Schema{{Name: "a", Type: TypeInt}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tab.AppendRow([]value.Value{value.NewInt(7)}); err != nil {
		t.Fatal(err)
	}
	e := tab.Epoch()
	_ = tab.Get(0, 0)
	_ = tab.Row(0, nil)
	if _, err := tab.CreateIndex("ix", []string{"a"}); err != nil {
		t.Fatal(err)
	}
	if tab.Epoch() != e {
		t.Fatalf("reads or index builds changed the epoch: %d -> %d", e, tab.Epoch())
	}
	// TruncateTo at or beyond the current size is a documented no-op.
	tab.TruncateTo(5)
	if tab.Epoch() != e {
		t.Fatalf("no-op TruncateTo changed the epoch: %d -> %d", e, tab.Epoch())
	}
}

// A staging swap (EmptyClone + Catalog.Put) must never alias the replaced
// table's epoch: the clone draws a fresh, strictly newer tick from the
// global clock, so a cache entry stamped against the old table goes stale.
func TestEpochGloballyMonotonicAcrossSwap(t *testing.T) {
	cat := NewCatalog()
	tab, err := cat.Create("t", Schema{{Name: "a", Type: TypeInt}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tab.AppendRow([]value.Value{value.NewInt(1)}); err != nil {
		t.Fatal(err)
	}
	old := tab.Epoch()

	stage := tab.EmptyClone()
	cat.Put(stage)
	cur, err := cat.Get("t")
	if err != nil {
		t.Fatal(err)
	}
	if cur.Epoch() <= old {
		t.Fatalf("staging swap reused an old epoch: %d <= %d", cur.Epoch(), old)
	}

	// Drop and recreate under the same name: again strictly newer.
	if err := cat.Drop("t"); err != nil {
		t.Fatal(err)
	}
	re, err := cat.Create("t", Schema{{Name: "a", Type: TypeInt}})
	if err != nil {
		t.Fatal(err)
	}
	if re.Epoch() <= cur.Epoch() {
		t.Fatalf("recreate reused an old epoch: %d <= %d", re.Epoch(), cur.Epoch())
	}
}
