package storage

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Catalog is the set of named tables visible to the engine: base tables,
// temporary tables created by the percentage-query rewriter (Fk, Fj, FV,
// FH, …) and result tables. Access is guarded so that concurrent benchmark
// runs over disjoint tables are safe.
type Catalog struct {
	mu     sync.RWMutex
	tables map[string]*Table
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{tables: make(map[string]*Table)}
}

// Create creates a new table. It fails if a table with the same
// (case-insensitive) name exists.
func (c *Catalog) Create(name string, schema Schema) (*Table, error) {
	t, err := NewTable(name, schema)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(name)
	if _, exists := c.tables[key]; exists {
		return nil, fmt.Errorf("storage: table %q already exists", name)
	}
	c.tables[key] = t
	return t, nil
}

// Put registers an existing table, replacing any table of the same name.
// It is used by operators that build a result table and publish it.
func (c *Catalog) Put(t *Table) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.tables[strings.ToLower(t.Name())] = t
}

// Get returns the named table, or an error naming the missing table.
func (c *Catalog) Get(name string) (*Table, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	t, ok := c.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("storage: no table %q", name)
	}
	return t, nil
}

// Has reports whether the named table exists.
func (c *Catalog) Has(name string) bool {
	c.mu.RLock()
	defer c.mu.RUnlock()
	_, ok := c.tables[strings.ToLower(name)]
	return ok
}

// Drop removes the named table. Dropping a missing table is an error, as in
// SQL without IF EXISTS.
func (c *Catalog) Drop(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := strings.ToLower(name)
	if _, ok := c.tables[key]; !ok {
		return fmt.Errorf("storage: no table %q to drop", name)
	}
	delete(c.tables, key)
	return nil
}

// DropIfExists removes the named table if present.
func (c *Catalog) DropIfExists(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.tables, strings.ToLower(name))
}

// Names returns the table names in sorted order.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.tables))
	for _, t := range c.tables {
		out = append(out, t.Name())
	}
	sort.Strings(out)
	return out
}
