// Package storage implements the in-memory columnar table substrate the
// query engine runs on: typed column vectors with null bitmaps, tables with
// schemas and in-place update (the paper's UPDATE-based strategies depend on
// it), and a catalog of named tables. The layout favors the access patterns
// of percentage queries: full sequential scans, append-heavy INSERT … SELECT
// into temporary tables, and keyed updates.
package storage

import (
	"fmt"

	"repro/internal/value"
)

// ColumnType is the declared type of a table column.
type ColumnType uint8

// Supported column types.
const (
	TypeInt ColumnType = iota
	TypeFloat
	TypeString
	TypeBool
)

// String returns the SQL name of the type, as accepted by CREATE TABLE.
func (t ColumnType) String() string {
	switch t {
	case TypeInt:
		return "INTEGER"
	case TypeFloat:
		return "REAL"
	case TypeString:
		return "VARCHAR"
	case TypeBool:
		return "BOOLEAN"
	default:
		return fmt.Sprintf("ColumnType(%d)", uint8(t))
	}
}

// Kind maps the column type to the runtime value kind stored in it.
func (t ColumnType) Kind() value.Kind {
	switch t {
	case TypeInt:
		return value.KindInt
	case TypeFloat:
		return value.KindFloat
	case TypeString:
		return value.KindString
	case TypeBool:
		return value.KindBool
	default:
		return value.KindNull
	}
}

// TypeForKind returns the column type that stores values of kind k.
func TypeForKind(k value.Kind) (ColumnType, error) {
	switch k {
	case value.KindInt:
		return TypeInt, nil
	case value.KindFloat:
		return TypeFloat, nil
	case value.KindString:
		return TypeString, nil
	case value.KindBool:
		return TypeBool, nil
	default:
		return 0, fmt.Errorf("storage: no column type for %s", k)
	}
}

// column is one typed vector plus a null bitset. Only the slice matching typ
// is populated.
type column struct {
	typ   ColumnType
	ints  []int64
	flts  []float64
	strs  []string
	bools []bool
	nulls bitset
}

func newColumn(typ ColumnType) *column { return &column{typ: typ} }

// len reports the number of rows stored.
func (c *column) len() int {
	switch c.typ {
	case TypeInt:
		return len(c.ints)
	case TypeFloat:
		return len(c.flts)
	case TypeString:
		return len(c.strs)
	case TypeBool:
		return len(c.bools)
	}
	return 0
}

// append adds v at the end. v must be NULL or match the column type.
func (c *column) append(v value.Value) error {
	if v.IsNull() {
		c.nulls.set(c.len())
		switch c.typ {
		case TypeInt:
			c.ints = append(c.ints, 0)
		case TypeFloat:
			c.flts = append(c.flts, 0)
		case TypeString:
			c.strs = append(c.strs, "")
		case TypeBool:
			c.bools = append(c.bools, false)
		}
		return nil
	}
	switch c.typ {
	case TypeInt:
		i, ok := v.AsInt()
		if !ok || v.Kind() == value.KindFloat && v.Float() != float64(i) { // floateq:ok lossless-store check is exact by design
			return fmt.Errorf("storage: cannot store %s %v in INTEGER column", v.Kind(), v)
		}
		c.ints = append(c.ints, i)
	case TypeFloat:
		f, ok := v.AsFloat()
		if !ok {
			return fmt.Errorf("storage: cannot store %s in REAL column", v.Kind())
		}
		c.flts = append(c.flts, f)
	case TypeString:
		if v.Kind() != value.KindString {
			return fmt.Errorf("storage: cannot store %s in VARCHAR column", v.Kind())
		}
		c.strs = append(c.strs, v.Str())
	case TypeBool:
		if v.Kind() != value.KindBool {
			return fmt.Errorf("storage: cannot store %s in BOOLEAN column", v.Kind())
		}
		c.bools = append(c.bools, v.Bool())
	}
	return nil
}

// get returns the value at row r.
func (c *column) get(r int) value.Value {
	if c.nulls.get(r) {
		return value.Null
	}
	switch c.typ {
	case TypeInt:
		return value.NewInt(c.ints[r])
	case TypeFloat:
		return value.NewFloat(c.flts[r])
	case TypeString:
		return value.NewString(c.strs[r])
	case TypeBool:
		return value.NewBool(c.bools[r])
	}
	return value.Null
}

// set overwrites the value at row r in place.
func (c *column) set(r int, v value.Value) error {
	if v.IsNull() {
		c.nulls.set(r)
		return nil
	}
	switch c.typ {
	case TypeInt:
		i, ok := v.AsInt()
		if !ok || v.Kind() == value.KindFloat && v.Float() != float64(i) { // floateq:ok lossless-store check is exact by design
			return fmt.Errorf("storage: cannot store %s %v in INTEGER column", v.Kind(), v)
		}
		c.ints[r] = i
	case TypeFloat:
		f, ok := v.AsFloat()
		if !ok {
			return fmt.Errorf("storage: cannot store %s in REAL column", v.Kind())
		}
		c.flts[r] = f
	case TypeString:
		if v.Kind() != value.KindString {
			return fmt.Errorf("storage: cannot store %s in VARCHAR column", v.Kind())
		}
		c.strs[r] = v.Str()
	case TypeBool:
		if v.Kind() != value.KindBool {
			return fmt.Errorf("storage: cannot store %s in BOOLEAN column", v.Kind())
		}
		c.bools[r] = v.Bool()
	}
	c.nulls.clear(r)
	return nil
}

// bitset is a growable bitmap used for null tracking.
type bitset struct {
	words []uint64
}

func (b *bitset) set(i int) {
	w := i >> 6
	for len(b.words) <= w {
		b.words = append(b.words, 0)
	}
	b.words[w] |= 1 << (uint(i) & 63)
}

func (b *bitset) clear(i int) {
	w := i >> 6
	if w < len(b.words) {
		b.words[w] &^= 1 << (uint(i) & 63)
	}
}

func (b *bitset) get(i int) bool {
	w := i >> 6
	return w < len(b.words) && b.words[w]&(1<<(uint(i)&63)) != 0
}
