// Package sqlparse implements a lexer and recursive-descent parser for the
// SQL subset the system needs: CREATE TABLE / INDEX, DROP TABLE, INSERT
// (VALUES and INSERT … SELECT), UPDATE (including the cross-table form the
// paper's UPDATE strategy generates), and SELECT with DISTINCT, comma joins,
// LEFT OUTER JOIN … ON, WHERE, GROUP BY (names or positions), ORDER BY, and
// aggregate calls — the standard five, the paper's Vpct/Hpct percentage
// aggregations with their BY subgrouping lists, the companion paper's
// horizontal aggregations (any standard aggregate with BY and an optional
// DEFAULT), and ANSI OLAP window aggregates with OVER (PARTITION BY …).
package sqlparse

import (
	"fmt"
	"strings"
	"unicode"

	"repro/internal/diag"
)

// tokenKind classifies lexical tokens.
type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokIdent
	tokQuotedIdent
	tokKeyword
	tokNumber
	tokString
	tokSymbol
)

// token is one lexical token with its source span (line/col 1-based).
type token struct {
	kind    tokenKind
	text    string // keywords upper-cased; quoted idents unquoted
	pos     int    // byte offset in the input
	line    int
	col     int
	end     int // byte offset one past the token
	endLine int
	endCol  int
}

// span returns the token's source range as a diagnostic span.
func (t token) span() diag.Span {
	return diag.Span{
		Start: diag.Pos{Offset: t.pos, Line: t.line, Col: t.col},
		End:   diag.Pos{Offset: t.end, Line: t.endLine, Col: t.endCol},
	}
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokString:
		return fmt.Sprintf("string %q", t.text)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// keywords recognized by the lexer. Identifiers matching these (case-
// insensitively) become keyword tokens.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"ORDER": true, "HAVING": true, "AS": true, "DISTINCT": true, "ALL": true,
	"INSERT": true, "INTO": true, "VALUES": true, "UPDATE": true, "SET": true,
	"CREATE": true, "TABLE": true, "INDEX": true, "DROP": true, "IF": true,
	"EXISTS": true, "PRIMARY": true, "KEY": true, "ON": true, "AND": true,
	"OR": true, "NOT": true, "NULL": true, "IS": true, "CASE": true,
	"WHEN": true, "THEN": true, "ELSE": true, "END": true, "JOIN": true,
	"LEFT": true, "RIGHT": true, "INNER": true, "OUTER": true, "CROSS": true,
	"OVER": true, "PARTITION": true, "ASC": true, "DESC": true, "LIMIT": true,
	"DEFAULT": true, "TRUE": true, "FALSE": true, "INTEGER": true, "INT": true,
	"REAL": true, "FLOAT": true, "VARCHAR": true, "BOOLEAN": true, "IN": true,
	"BETWEEN": true, "LIKE": true, "UNION": true, "EXPLAIN": true, "DELETE": true,
	"ANALYZE": true, "ROLLUP": true, "CUBE": true, "GROUPING": true, "SETS": true,
}

// lexer tokenizes a SQL string.
type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1, col: 1} }

// SyntaxError is a positioned lexical or syntax error. Line and Col are
// 1-based; tools (cmd/pctlint) unwrap it to place the finding precisely.
type SyntaxError struct {
	Line, Col int
	Msg       string
}

// Error renders the message with its source position.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("sql: %s at line %d, col %d", e.Msg, e.Line, e.Col)
}

// Span returns the error position as a zero-width diagnostic span.
func (e *SyntaxError) Span() diag.Span {
	p := diag.Pos{Line: e.Line, Col: e.Col}
	return diag.Span{Start: p, End: p}
}

func (l *lexer) errorf(format string, args ...any) error {
	return &SyntaxError{Line: l.line, Col: l.col, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) advance() byte {
	ch := l.src[l.pos]
	l.pos++
	if ch == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return ch
}

func (l *lexer) peek() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) peekAt(off int) byte {
	if l.pos+off >= len(l.src) {
		return 0
	}
	return l.src[l.pos+off]
}

// next returns the next token with its end position stamped.
func (l *lexer) next() (token, error) {
	t, err := l.scan()
	if err != nil {
		return t, err
	}
	t.end, t.endLine, t.endCol = l.pos, l.line, l.col
	return t, nil
}

// scan lexes the next token; next fills in the end position.
func (l *lexer) scan() (token, error) {
	for l.pos < len(l.src) {
		ch := l.peek()
		switch {
		case ch == ' ' || ch == '\t' || ch == '\n' || ch == '\r':
			l.advance()
		case ch == '-' && l.peekAt(1) == '-': // line comment
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case ch == '/' && l.peekAt(1) == '*': // block comment
			l.advance()
			l.advance()
			for l.pos < len(l.src) && !(l.peek() == '*' && l.peekAt(1) == '/') {
				l.advance()
			}
			if l.pos >= len(l.src) {
				return token{}, l.errorf("unterminated block comment")
			}
			l.advance()
			l.advance()
		default:
			goto scan
		}
	}
	return token{kind: tokEOF, pos: l.pos, line: l.line, col: l.col}, nil

scan:
	start, line, col := l.pos, l.line, l.col
	ch := l.peek()

	switch {
	case isIdentStart(ch):
		for l.pos < len(l.src) && isIdentPart(l.peek()) {
			l.advance()
		}
		text := l.src[start:l.pos]
		upper := strings.ToUpper(text)
		if keywords[upper] {
			return token{kind: tokKeyword, text: upper, pos: start, line: line, col: col}, nil
		}
		return token{kind: tokIdent, text: text, pos: start, line: line, col: col}, nil

	case ch >= '0' && ch <= '9', ch == '.' && isDigit(l.peekAt(1)):
		sawDot, sawExp := false, false
		for l.pos < len(l.src) {
			c := l.peek()
			switch {
			case isDigit(c):
				l.advance()
			case c == '.' && !sawDot && !sawExp:
				sawDot = true
				l.advance()
			case (c == 'e' || c == 'E') && !sawExp && l.pos > start:
				sawExp = true
				l.advance()
				if l.peek() == '+' || l.peek() == '-' {
					l.advance()
				}
			default:
				goto numDone
			}
		}
	numDone:
		return token{kind: tokNumber, text: l.src[start:l.pos], pos: start, line: line, col: col}, nil

	case ch == '\'':
		l.advance()
		var sb strings.Builder
		for {
			if l.pos >= len(l.src) {
				return token{}, &SyntaxError{Line: line, Col: col, Msg: "unterminated string literal"}
			}
			c := l.advance()
			if c == '\'' {
				if l.peek() == '\'' { // escaped quote
					l.advance()
					sb.WriteByte('\'')
					continue
				}
				break
			}
			sb.WriteByte(c)
		}
		return token{kind: tokString, text: sb.String(), pos: start, line: line, col: col}, nil

	case ch == '"':
		l.advance()
		var sb strings.Builder
		for {
			if l.pos >= len(l.src) {
				return token{}, &SyntaxError{Line: line, Col: col, Msg: "unterminated quoted identifier"}
			}
			c := l.advance()
			if c == '"' {
				if l.peek() == '"' {
					l.advance()
					sb.WriteByte('"')
					continue
				}
				break
			}
			sb.WriteByte(c)
		}
		return token{kind: tokQuotedIdent, text: sb.String(), pos: start, line: line, col: col}, nil

	default:
		// Multi-byte symbols first.
		two := ""
		if l.pos+1 < len(l.src) {
			two = l.src[l.pos : l.pos+2]
		}
		switch two {
		case "<>", "<=", ">=", "!=":
			l.advance()
			l.advance()
			return token{kind: tokSymbol, text: two, pos: start, line: line, col: col}, nil
		}
		switch ch {
		case '(', ')', ',', ';', '*', '+', '-', '/', '=', '<', '>', '.':
			l.advance()
			return token{kind: tokSymbol, text: string(ch), pos: start, line: line, col: col}, nil
		}
		return token{}, &SyntaxError{Line: line, Col: col, Msg: fmt.Sprintf("unexpected character %q", rune(ch))}
	}
}

func isIdentStart(ch byte) bool {
	return ch == '_' || unicode.IsLetter(rune(ch))
}

func isIdentPart(ch byte) bool {
	return ch == '_' || ch == '$' || unicode.IsLetter(rune(ch)) || isDigit(ch)
}

func isDigit(ch byte) bool { return ch >= '0' && ch <= '9' }

// lexAll tokenizes the whole input, for the parser's token buffer.
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokEOF {
			return out, nil
		}
	}
}
