package sqlparse

import "testing"

// FuzzParseRoundTrip throws arbitrary text at the parser: it must error or
// produce an AST, never panic or loop — and any statement it accepts must
// render to a fixed point (Parse(stmt.String()).String() == stmt.String()),
// the property the planner's generated-SQL pipeline relies on.
func FuzzParseRoundTrip(f *testing.F) {
	f.Add("SELECT state, city, Vpct(salesAmt BY city) FROM sales GROUP BY state, city")
	f.Add("SELECT a, Hpct(amt BY b) FROM f GROUP BY a ORDER BY 1 DESC LIMIT 3")
	f.Add("SELECT d1, d2, sum(a), GROUPING(d1, d2) FROM f GROUP BY ROLLUP(d1, d2)")
	f.Add("SELECT d1, d2, Vpct(a BY d2) FROM f GROUP BY CUBE(d1, d2)")
	f.Add("SELECT d1, d3, sum(a) FROM f GROUP BY GROUPING SETS ((d1, d3), (d1), ())")
	f.Add("SELECT a FROM f GROUP BY GROUPING SETS ((), (), (a))")
	f.Add("SELECT a FROM f GROUP BY ROLLUP (a, ") // unterminated set list
	f.Add("SELECT GROUPING() FROM f GROUP BY CUBE(a)")
	f.Add("INSERT INTO f VALUES (1, NULL, 'it''s'), (2, -3, 'x')")
	f.Add("UPDATE f SET a = a + 1 WHERE b IN (1, 2) AND c BETWEEN 'a' AND 'z'")
	f.Add("EXPLAIN ANALYZE SELECT count(*) FROM f")
	f.Add("SELECT ,;;( FROM")
	f.Fuzz(func(t *testing.T, src string) {
		stmts, err := ParseAll(src)
		if err != nil {
			return
		}
		for _, s := range stmts {
			text1 := s.String()
			s2, err := Parse(text1)
			if err != nil {
				t.Fatalf("accepted %q but rendered form does not reparse: %v\nrendered: %s", src, err, text1)
			}
			if text2 := s2.String(); text2 != text1 {
				t.Fatalf("round trip not a fixed point:\n  in   %s\n  out1 %s\n  out2 %s", src, text1, text2)
			}
		}
	})
}
