package sqlparse

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/diag"
	"repro/internal/expr"
	"repro/internal/storage"
	"repro/internal/value"
)

// Parse parses a single SQL statement (a trailing semicolon is allowed).
func Parse(src string) (Statement, error) {
	stmts, err := ParseAll(src)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, &SyntaxError{Line: 1, Col: 1, Msg: fmt.Sprintf("expected one statement, got %d", len(stmts))}
	}
	return stmts[0], nil
}

// ParseAll parses a semicolon-separated script into statements.
func ParseAll(src string) ([]Statement, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	var out []Statement
	for {
		for p.peek().kind == tokSymbol && p.peek().text == ";" {
			p.advance()
		}
		if p.peek().kind == tokEOF {
			break
		}
		s, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		out = append(out, s)
		if t := p.peek(); t.kind != tokEOF && !(t.kind == tokSymbol && t.text == ";") {
			return nil, p.errorf("unexpected %s after statement", t)
		}
	}
	if len(out) == 0 {
		return nil, &SyntaxError{Line: 1, Col: 1, Msg: "empty input"}
	}
	return out, nil
}

// ParseExpr parses a standalone scalar expression (used by tests and tools).
func ParseExpr(src string) (expr.Expr, error) {
	toks, err := lexAll(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, p.errorf("unexpected %s after expression", p.peek())
	}
	return e, nil
}

type parser struct {
	toks []token
	pos  int
	last token // most recently consumed token, for span ends
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) peekAt(off int) token {
	if p.pos+off >= len(p.toks) {
		return p.toks[len(p.toks)-1]
	}
	return p.toks[p.pos+off]
}

func (p *parser) advance() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
		p.last = t
	}
	return t
}

func (p *parser) errorf(format string, args ...any) error {
	t := p.peek()
	return &SyntaxError{Line: t.line, Col: t.col, Msg: fmt.Sprintf(format, args...)}
}

// spanFrom covers from the start token through the last consumed token.
func (p *parser) spanFrom(start token) diag.Span {
	return diag.Span{
		Start: diag.Pos{Offset: start.pos, Line: start.line, Col: start.col},
		End:   diag.Pos{Offset: p.last.end, Line: p.last.endLine, Col: p.last.endCol},
	}
}

// matchKeyword consumes the keyword if present.
func (p *parser) matchKeyword(kw string) bool {
	if t := p.peek(); t.kind == tokKeyword && t.text == kw {
		p.advance()
		return true
	}
	return false
}

// expectKeyword consumes the keyword or errors.
func (p *parser) expectKeyword(kw string) error {
	if !p.matchKeyword(kw) {
		return p.errorf("expected %s, found %s", kw, p.peek())
	}
	return nil
}

// matchSymbol consumes the symbol if present.
func (p *parser) matchSymbol(sym string) bool {
	if t := p.peek(); t.kind == tokSymbol && t.text == sym {
		p.advance()
		return true
	}
	return false
}

// expectSymbol consumes the symbol or errors.
func (p *parser) expectSymbol(sym string) error {
	if !p.matchSymbol(sym) {
		return p.errorf("expected %q, found %s", sym, p.peek())
	}
	return nil
}

// identifier consumes an identifier (plain or quoted) or errors. Unreserved
// keywords are not accepted as identifiers; quoted form always works.
func (p *parser) identifier(what string) (string, error) {
	t := p.peek()
	if t.kind == tokIdent || t.kind == tokQuotedIdent {
		p.advance()
		return t.text, nil
	}
	return "", p.errorf("expected %s, found %s", what, t)
}

func (p *parser) parseStatement() (Statement, error) {
	t := p.peek()
	if t.kind != tokKeyword {
		return nil, p.errorf("expected statement, found %s", t)
	}
	switch t.text {
	case "SELECT":
		return p.parseSelect()
	case "EXPLAIN":
		p.advance()
		analyze := p.matchKeyword("ANALYZE")
		if kw := p.peek(); kw.kind != tokKeyword || kw.text != "SELECT" {
			if analyze {
				return nil, p.errorf("EXPLAIN ANALYZE supports SELECT statements")
			}
			return nil, p.errorf("EXPLAIN supports SELECT statements")
		}
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		return &Explain{Query: sel.(*Select), Analyze: analyze}, nil
	case "CREATE":
		if p.peekAt(1).kind == tokKeyword && p.peekAt(1).text == "INDEX" {
			return p.parseCreateIndex()
		}
		return p.parseCreateTable()
	case "DROP":
		return p.parseDropTable()
	case "INSERT":
		return p.parseInsert()
	case "UPDATE":
		return p.parseUpdate()
	case "DELETE":
		p.advance()
		if err := p.expectKeyword("FROM"); err != nil {
			return nil, err
		}
		name, err := p.identifier("table name")
		if err != nil {
			return nil, err
		}
		d := &Delete{Table: name}
		if p.matchKeyword("WHERE") {
			w, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			d.Where = w
		}
		return d, nil
	default:
		return nil, p.errorf("unsupported statement %s", t)
	}
}

func (p *parser) parseCreateTable() (Statement, error) {
	p.advance() // CREATE
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	name, err := p.identifier("table name")
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	ct := &CreateTable{Name: name}
	for {
		if p.matchKeyword("PRIMARY") {
			if err := p.expectKeyword("KEY"); err != nil {
				return nil, err
			}
			if err := p.expectSymbol("("); err != nil {
				return nil, err
			}
			cols, err := p.identList()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			ct.PrimaryKey = cols
		} else {
			col, err := p.identifier("column name")
			if err != nil {
				return nil, err
			}
			typ, err := p.columnType()
			if err != nil {
				return nil, err
			}
			ct.Schema = append(ct.Schema, storage.ColumnDef{Name: col, Type: typ})
		}
		if p.matchSymbol(",") {
			continue
		}
		break
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	// A trailing PRIMARY KEY(...) clause outside the parens (Teradata-ish,
	// used in the companion paper's CREATE TABLE FH … PRIMARY KEY(…)).
	if p.matchKeyword("PRIMARY") {
		if err := p.expectKeyword("KEY"); err != nil {
			return nil, err
		}
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		cols, err := p.identList()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		ct.PrimaryKey = cols
	}
	if len(ct.Schema) == 0 {
		return nil, p.errorf("CREATE TABLE %s has no columns", name)
	}
	return ct, nil
}

func (p *parser) columnType() (storage.ColumnType, error) {
	t := p.peek()
	if t.kind != tokKeyword {
		return 0, p.errorf("expected column type, found %s", t)
	}
	var typ storage.ColumnType
	switch t.text {
	case "INTEGER", "INT":
		typ = storage.TypeInt
	case "REAL", "FLOAT":
		typ = storage.TypeFloat
	case "VARCHAR":
		typ = storage.TypeString
	case "BOOLEAN":
		typ = storage.TypeBool
	default:
		return 0, p.errorf("unsupported column type %s", t)
	}
	p.advance()
	// Optional length, e.g. VARCHAR(20): parsed and ignored.
	if p.matchSymbol("(") {
		if p.peek().kind != tokNumber {
			return 0, p.errorf("expected type length, found %s", p.peek())
		}
		p.advance()
		if err := p.expectSymbol(")"); err != nil {
			return 0, err
		}
	}
	return typ, nil
}

func (p *parser) parseCreateIndex() (Statement, error) {
	p.advance() // CREATE
	p.advance() // INDEX
	name, err := p.identifier("index name")
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("ON"); err != nil {
		return nil, err
	}
	table, err := p.identifier("table name")
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	cols, err := p.identList()
	if err != nil {
		return nil, err
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	return &CreateIndex{Name: name, Table: table, Columns: cols}, nil
}

func (p *parser) parseDropTable() (Statement, error) {
	p.advance() // DROP
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	d := &DropTable{}
	if p.matchKeyword("IF") {
		if err := p.expectKeyword("EXISTS"); err != nil {
			return nil, err
		}
		d.IfExists = true
	}
	name, err := p.identifier("table name")
	if err != nil {
		return nil, err
	}
	d.Name = name
	return d, nil
}

func (p *parser) parseInsert() (Statement, error) {
	p.advance() // INSERT
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	table, err := p.identifier("table name")
	if err != nil {
		return nil, err
	}
	ins := &Insert{Table: table}
	if p.matchSymbol("(") {
		cols, err := p.identList()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		ins.Columns = cols
	}
	switch {
	case p.matchKeyword("VALUES"):
		for {
			if err := p.expectSymbol("("); err != nil {
				return nil, err
			}
			var row []expr.Expr
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				row = append(row, e)
				if !p.matchSymbol(",") {
					break
				}
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			ins.Rows = append(ins.Rows, row)
			if !p.matchSymbol(",") {
				break
			}
		}
	case p.peek().kind == tokKeyword && p.peek().text == "SELECT":
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		ins.Query = sel.(*Select)
	default:
		return nil, p.errorf("expected VALUES or SELECT, found %s", p.peek())
	}
	return ins, nil
}

func (p *parser) parseUpdate() (Statement, error) {
	p.advance() // UPDATE
	table, err := p.identifier("table name")
	if err != nil {
		return nil, err
	}
	u := &Update{Table: table}
	// Optional alias before FROM/SET.
	if t := p.peek(); t.kind == tokIdent {
		u.Alias = t.text
		p.advance()
	}
	if p.matchKeyword("FROM") {
		for {
			ref, err := p.tableRef()
			if err != nil {
				return nil, err
			}
			u.From = append(u.From, ref)
			if !p.matchSymbol(",") {
				break
			}
		}
	}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	for {
		col, err := p.identifier("column name")
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol("="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		u.Set = append(u.Set, Assignment{Column: col, Value: e})
		if !p.matchSymbol(",") {
			break
		}
	}
	if p.matchKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		u.Where = w
	}
	return u, nil
}

func (p *parser) parseSelect() (Statement, error) {
	p.advance() // SELECT
	sel := &Select{}
	if p.matchKeyword("DISTINCT") {
		sel.Distinct = true
		sel.DistinctSpan = p.last.span()
	} else {
		p.matchKeyword("ALL")
	}
	for {
		start := p.peek()
		if p.matchSymbol("*") {
			sel.Items = append(sel.Items, SelectItem{Star: true, Span: p.spanFrom(start)})
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := SelectItem{Expr: e}
			if p.matchKeyword("AS") {
				alias, err := p.identifier("alias")
				if err != nil {
					return nil, err
				}
				item.Alias = alias
			} else if t := p.peek(); t.kind == tokIdent || t.kind == tokQuotedIdent {
				item.Alias = t.text
				p.advance()
			}
			item.Span = p.spanFrom(start)
			sel.Items = append(sel.Items, item)
		}
		if !p.matchSymbol(",") {
			break
		}
	}
	if p.matchKeyword("FROM") {
		first, err := p.tableRef()
		if err != nil {
			return nil, err
		}
		sel.From = append(sel.From, FromElem{Table: first})
		for {
			switch {
			case p.matchSymbol(","):
				ref, err := p.tableRef()
				if err != nil {
					return nil, err
				}
				sel.From = append(sel.From, FromElem{Table: ref, Join: JoinCross})
			case p.peek().kind == tokKeyword && (p.peek().text == "LEFT" || p.peek().text == "INNER" || p.peek().text == "JOIN"):
				jt := JoinInner
				if p.matchKeyword("LEFT") {
					p.matchKeyword("OUTER")
					jt = JoinLeftOuter
				} else {
					p.matchKeyword("INNER")
				}
				if err := p.expectKeyword("JOIN"); err != nil {
					return nil, err
				}
				ref, err := p.tableRef()
				if err != nil {
					return nil, err
				}
				if err := p.expectKeyword("ON"); err != nil {
					return nil, err
				}
				on, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				sel.From = append(sel.From, FromElem{Table: ref, Join: jt, On: on})
			default:
				goto fromDone
			}
		}
	}
fromDone:
	if p.matchKeyword("WHERE") {
		w, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Where = w
	}
	if p.matchKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		if t := p.peek(); t.kind == tokKeyword && (t.text == "ROLLUP" || t.text == "CUBE" || t.text == "GROUPING") {
			spec, err := p.groupingSpec()
			if err != nil {
				return nil, err
			}
			sel.GroupSets = spec
			if p.matchSymbol(",") {
				return nil, p.errorf("%s cannot be combined with additional GROUP BY terms", spec.Kind.Keyword())
			}
		} else {
			for {
				k, err := p.groupKey()
				if err != nil {
					return nil, err
				}
				sel.GroupBy = append(sel.GroupBy, k)
				if !p.matchSymbol(",") {
					break
				}
				if t := p.peek(); t.kind == tokKeyword && (t.text == "ROLLUP" || t.text == "CUBE" || t.text == "GROUPING") {
					return nil, p.errorf("%s cannot be combined with plain GROUP BY keys", t.text)
				}
			}
		}
	}
	if p.matchKeyword("HAVING") {
		havingTok := p.last
		h, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		sel.Having = h
		sel.HavingSpan = p.spanFrom(havingTok)
	}
	if p.matchKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			k, err := p.groupKey()
			if err != nil {
				return nil, err
			}
			ok := OrderKey{Qualifier: k.Qualifier, Column: k.Column, Position: k.Position}
			if p.matchKeyword("DESC") {
				ok.Desc = true
			} else {
				p.matchKeyword("ASC")
			}
			sel.OrderBy = append(sel.OrderBy, ok)
			if !p.matchSymbol(",") {
				break
			}
		}
	}
	if p.matchKeyword("LIMIT") {
		t := p.peek()
		if t.kind != tokNumber {
			return nil, p.errorf("expected LIMIT count, found %s", t)
		}
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 0 {
			return nil, p.errorf("bad LIMIT count %q", t.text)
		}
		p.advance()
		sel.Limit = n
	}
	return sel, nil
}

// groupingSpec parses ROLLUP(…), CUBE(…), or GROUPING SETS (…). Empty
// dimension lists and an empty sets list parse cleanly so the analyzer can
// report them as positioned PCT111 diagnostics instead of a bare syntax
// error.
func (p *parser) groupingSpec() (*GroupingSpec, error) {
	start := p.advance() // ROLLUP | CUBE | GROUPING
	spec := &GroupingSpec{}
	switch start.text {
	case "ROLLUP":
		spec.Kind = GroupRollup
	case "CUBE":
		spec.Kind = GroupCube
	default:
		spec.Kind = GroupSetsList
		if err := p.expectKeyword("SETS"); err != nil {
			return nil, err
		}
	}
	if err := p.expectSymbol("("); err != nil {
		return nil, err
	}
	if spec.Kind != GroupSetsList {
		if !p.matchSymbol(")") {
			for {
				k, err := p.groupKey()
				if err != nil {
					return nil, err
				}
				spec.Dims = append(spec.Dims, k)
				if !p.matchSymbol(",") {
					break
				}
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
		}
		spec.Span = p.spanFrom(start)
		return spec, nil
	}
	if !p.matchSymbol(")") {
		for {
			set, err := p.groupingSet()
			if err != nil {
				return nil, err
			}
			spec.Sets = append(spec.Sets, set)
			if !p.matchSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
	}
	spec.Span = p.spanFrom(start)
	return spec, nil
}

// groupingSet parses one element of a GROUPING SETS list: (col, …), the
// grand-total set (), or a bare key as shorthand for a one-column set.
func (p *parser) groupingSet() ([]GroupKey, error) {
	if p.matchSymbol("(") {
		var set []GroupKey
		if p.matchSymbol(")") {
			return set, nil
		}
		for {
			k, err := p.groupKey()
			if err != nil {
				return nil, err
			}
			set = append(set, k)
			if !p.matchSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return set, nil
	}
	k, err := p.groupKey()
	if err != nil {
		return nil, err
	}
	return []GroupKey{k}, nil
}

func (p *parser) groupKey() (GroupKey, error) {
	t := p.peek()
	if t.kind == tokNumber {
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 1 {
			return GroupKey{}, p.errorf("bad position %q", t.text)
		}
		p.advance()
		return GroupKey{Position: n, Span: t.span()}, nil
	}
	name, err := p.identifier("column name or position")
	if err != nil {
		return GroupKey{}, err
	}
	if p.matchSymbol(".") {
		col, err := p.identifier("column name")
		if err != nil {
			return GroupKey{}, err
		}
		return GroupKey{Qualifier: name, Column: col, Span: p.spanFrom(t)}, nil
	}
	return GroupKey{Column: name, Span: p.spanFrom(t)}, nil
}

func (p *parser) tableRef() (TableRef, error) {
	start := p.peek()
	name, err := p.identifier("table name")
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Name: name}
	if p.matchKeyword("AS") {
		alias, err := p.identifier("alias")
		if err != nil {
			return TableRef{}, err
		}
		ref.Alias = alias
	} else if t := p.peek(); t.kind == tokIdent {
		ref.Alias = t.text
		p.advance()
	}
	ref.Span = p.spanFrom(start)
	return ref, nil
}

func (p *parser) identList() ([]string, error) {
	out, _, err := p.identListSpans()
	return out, err
}

// identListSpans parses a comma list of identifiers, also returning the
// source span of each.
func (p *parser) identListSpans() ([]string, []diag.Span, error) {
	var out []string
	var spans []diag.Span
	for {
		t := p.peek()
		id, err := p.identifier("column name")
		if err != nil {
			return nil, nil, err
		}
		out = append(out, id)
		spans = append(spans, t.span())
		if !p.matchSymbol(",") {
			return out, spans, nil
		}
	}
}

// ----- expressions -----

// parseExpr parses with precedence: OR < AND < NOT < comparison/IS <
// additive < multiplicative < unary < primary.
func (p *parser) parseExpr() (expr.Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (expr.Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.matchKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = &expr.BinaryOp{Op: "OR", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (expr.Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.matchKeyword("AND") {
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = &expr.BinaryOp{Op: "AND", Left: left, Right: right}
	}
	return left, nil
}

func (p *parser) parseNot() (expr.Expr, error) {
	if p.matchKeyword("NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &expr.UnaryOp{Op: "NOT", Operand: x}, nil
	}
	return p.parseComparison()
}

func (p *parser) parseComparison() (expr.Expr, error) {
	left, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if t := p.peek(); t.kind == tokSymbol {
		switch t.text {
		case "=", "<>", "!=", "<", "<=", ">", ">=":
			p.advance()
			right, err := p.parseAdditive()
			if err != nil {
				return nil, err
			}
			return &expr.BinaryOp{Op: t.text, Left: left, Right: right}, nil
		}
	}
	if p.matchKeyword("IS") {
		negate := p.matchKeyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return &expr.IsNull{Operand: left, Negate: negate}, nil
	}
	// x [NOT] IN (…) / BETWEEN a AND b / LIKE 'pat'.
	negate := false
	if t := p.peek(); t.kind == tokKeyword && t.text == "NOT" {
		nt := p.peekAt(1)
		if nt.kind == tokKeyword && (nt.text == "IN" || nt.text == "BETWEEN" || nt.text == "LIKE") {
			p.advance()
			negate = true
		}
	}
	switch {
	case p.matchKeyword("IN"):
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		in := &expr.InList{Operand: left, Negate: negate}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			in.List = append(in.List, e)
			if !p.matchSymbol(",") {
				break
			}
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return in, nil
	case p.matchKeyword("BETWEEN"):
		lo, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &expr.Between{Operand: left, Lo: lo, Hi: hi, Negate: negate}, nil
	case p.matchKeyword("LIKE"):
		pat, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &expr.Like{Operand: left, Pattern: pat, Negate: negate}, nil
	}
	if negate {
		return nil, p.errorf("expected IN, BETWEEN, or LIKE after NOT")
	}
	return left, nil
}

func (p *parser) parseAdditive() (expr.Expr, error) {
	left, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokSymbol && (t.text == "+" || t.text == "-") {
			p.advance()
			right, err := p.parseMultiplicative()
			if err != nil {
				return nil, err
			}
			left = &expr.BinaryOp{Op: t.text, Left: left, Right: right}
			continue
		}
		return left, nil
	}
}

func (p *parser) parseMultiplicative() (expr.Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		if t.kind == tokSymbol && (t.text == "*" || t.text == "/") {
			p.advance()
			right, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			left = &expr.BinaryOp{Op: t.text, Left: left, Right: right}
			continue
		}
		return left, nil
	}
}

func (p *parser) parseUnary() (expr.Expr, error) {
	if t := p.peek(); t.kind == tokSymbol && t.text == "-" {
		p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &expr.UnaryOp{Op: "-", Operand: x}, nil
	}
	return p.parsePrimary()
}

// aggFuncs maps lower-case function names to aggregate identities.
var aggFuncs = map[string]expr.AggFn{
	"sum": expr.AggSum, "count": expr.AggCount, "avg": expr.AggAvg,
	"average": expr.AggAvg, "min": expr.AggMin, "max": expr.AggMax,
	"vpct": expr.AggVpct, "hpct": expr.AggHpct,
}

func (p *parser) parsePrimary() (expr.Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokNumber:
		p.advance()
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errorf("bad number %q", t.text)
			}
			return expr.NewLiteral(value.NewFloat(f)), nil
		}
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad number %q", t.text)
		}
		return expr.NewLiteral(value.NewInt(i)), nil

	case tokString:
		p.advance()
		return expr.NewLiteral(value.NewString(t.text)), nil

	case tokKeyword:
		switch t.text {
		case "NULL":
			p.advance()
			return expr.NewLiteral(value.Null), nil
		case "TRUE":
			p.advance()
			return expr.NewLiteral(value.NewBool(true)), nil
		case "FALSE":
			p.advance()
			return expr.NewLiteral(value.NewBool(false)), nil
		case "CASE":
			return p.parseCase()
		case "NOT":
			return p.parseNot()
		case "GROUPING":
			// GROUPING(d1[, d2 …]) — the lattice-node marker. Parsed as a
			// plain function call; the planner replaces it with a literal
			// per lattice node, so the engine never evaluates it.
			if p.peekAt(1).kind == tokSymbol && p.peekAt(1).text == "(" {
				p.advance() // GROUPING
				p.advance() // (
				call := &expr.FuncCall{Name: "GROUPING"}
				if !p.matchSymbol(")") {
					for {
						a, err := p.parseExpr()
						if err != nil {
							return nil, err
						}
						call.Args = append(call.Args, a)
						if !p.matchSymbol(",") {
							break
						}
					}
					if err := p.expectSymbol(")"); err != nil {
						return nil, err
					}
				}
				return call, nil
			}
		}
		return nil, p.errorf("unexpected %s in expression", t)

	case tokSymbol:
		if t.text == "(" {
			p.advance()
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
		return nil, p.errorf("unexpected %s in expression", t)

	case tokIdent, tokQuotedIdent:
		// Function call?
		if t.kind == tokIdent && p.peekAt(1).kind == tokSymbol && p.peekAt(1).text == "(" {
			return p.parseCall()
		}
		p.advance()
		// Qualified column t.c ?
		if p.peek().kind == tokSymbol && p.peek().text == "." {
			p.advance()
			col, err := p.identifier("column name")
			if err != nil {
				return nil, err
			}
			ref := expr.QCol(t.text, col)
			ref.Span = p.spanFrom(t)
			return ref, nil
		}
		ref := expr.Col(t.text)
		ref.Span = t.span()
		return ref, nil
	}
	return nil, p.errorf("unexpected %s in expression", t)
}

func (p *parser) parseCase() (expr.Expr, error) {
	p.advance() // CASE
	c := &expr.Case{}
	for p.matchKeyword("WHEN") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("THEN"); err != nil {
			return nil, err
		}
		res, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, expr.When{Cond: cond, Result: res})
	}
	if len(c.Whens) == 0 {
		return nil, p.errorf("CASE needs at least one WHEN")
	}
	if p.matchKeyword("ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expectKeyword("END"); err != nil {
		return nil, err
	}
	return c, nil
}

// parseCall parses fn(...) — an aggregate (possibly with DISTINCT, *, BY
// list, DEFAULT, and a trailing OVER clause) or a scalar function.
func (p *parser) parseCall() (expr.Expr, error) {
	nameTok := p.advance()
	name := nameTok.text
	p.advance() // (
	fn, isAgg := aggFuncs[strings.ToLower(name)]
	if !isAgg {
		// Scalar function.
		call := &expr.FuncCall{Name: name}
		if !p.matchSymbol(")") {
			for {
				a, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				call.Args = append(call.Args, a)
				if !p.matchSymbol(",") {
					break
				}
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
		}
		return call, nil
	}

	agg := &expr.AggCall{Fn: fn}
	if p.matchKeyword("DISTINCT") {
		agg.Distinct = true
	}
	if p.matchSymbol("*") {
		agg.Star = true
	} else if t := p.peek(); !(t.kind == tokKeyword && t.text == "BY") {
		// A missing argument directly before BY parses as Arg == nil so
		// the analyzer can report it (PCT016/PCT023) alongside the
		// query's other problems instead of dying here.
		a, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		agg.Arg = a
	}
	if p.matchKeyword("BY") {
		cols, spans, err := p.identListSpans()
		if err != nil {
			return nil, err
		}
		agg.By = cols
		agg.BySpans = spans
	}
	if p.matchKeyword("DEFAULT") {
		d, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		lit, ok := d.(*expr.Literal)
		if !ok {
			return nil, p.errorf("DEFAULT must be a literal")
		}
		agg.Default = lit
	}
	if err := p.expectSymbol(")"); err != nil {
		return nil, err
	}
	if p.matchKeyword("OVER") {
		if len(agg.By) > 0 {
			return nil, p.errorf("%s: BY and OVER are mutually exclusive", name)
		}
		if err := p.expectSymbol("("); err != nil {
			return nil, err
		}
		over := &expr.OverSpec{}
		if p.matchKeyword("PARTITION") {
			if err := p.expectKeyword("BY"); err != nil {
				return nil, err
			}
			cols, err := p.identList()
			if err != nil {
				return nil, err
			}
			over.PartitionBy = cols
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		agg.Over = over
	}
	// Percentage-function rule checks that do not need schema knowledge.
	if (fn == expr.AggVpct || fn == expr.AggHpct) && agg.Star {
		return nil, p.errorf("%s requires an expression argument", name)
	}
	agg.Span = p.spanFrom(nameTok)
	return agg, nil
}
