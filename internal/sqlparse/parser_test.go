package sqlparse

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/storage"
)

func mustSelect(t *testing.T, src string) *Select {
	t.Helper()
	s, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	sel, ok := s.(*Select)
	if !ok {
		t.Fatalf("Parse(%q) = %T, want *Select", src, s)
	}
	return sel
}

func TestParseSimpleSelect(t *testing.T) {
	sel := mustSelect(t, "SELECT state, city, salesAmt FROM sales WHERE salesAmt > 10;")
	if len(sel.Items) != 3 || sel.Items[0].Expr.String() != "state" {
		t.Errorf("items = %v", sel.Items)
	}
	if len(sel.From) != 1 || sel.From[0].Table.Name != "sales" {
		t.Errorf("from = %v", sel.From)
	}
	if sel.Where == nil || sel.Where.String() != "(salesAmt > 10)" {
		t.Errorf("where = %v", sel.Where)
	}
}

func TestParseSelectStarDistinctOrderLimit(t *testing.T) {
	sel := mustSelect(t, "SELECT DISTINCT * FROM F ORDER BY 2 DESC, a ASC LIMIT 10")
	if !sel.Distinct || !sel.Items[0].Star {
		t.Error("DISTINCT * not parsed")
	}
	if len(sel.OrderBy) != 2 || sel.OrderBy[0].Position != 2 || !sel.OrderBy[0].Desc {
		t.Errorf("order by = %v", sel.OrderBy)
	}
	if sel.OrderBy[1].Column != "a" || sel.OrderBy[1].Desc {
		t.Errorf("order by = %v", sel.OrderBy)
	}
	if sel.Limit != 10 {
		t.Errorf("limit = %d", sel.Limit)
	}
}

func TestParseVpctQuery(t *testing.T) {
	// The paper's flagship example.
	sel := mustSelect(t, "SELECT state, city, Vpct(salesAmt BY city) FROM sales GROUP BY state, city")
	if len(sel.GroupBy) != 2 || sel.GroupBy[0].Column != "state" {
		t.Errorf("group by = %v", sel.GroupBy)
	}
	agg, ok := sel.Items[2].Expr.(*expr.AggCall)
	if !ok {
		t.Fatalf("item 2 = %T", sel.Items[2].Expr)
	}
	if agg.Fn != expr.AggVpct || len(agg.By) != 1 || agg.By[0] != "city" {
		t.Errorf("agg = %v", agg)
	}
}

func TestParseHpctWithOtherAggregates(t *testing.T) {
	sel := mustSelect(t, "SELECT store, Hpct(salesAmt BY dweek), sum(salesAmt) FROM sales GROUP BY store")
	agg := sel.Items[1].Expr.(*expr.AggCall)
	if agg.Fn != expr.AggHpct || agg.By[0] != "dweek" {
		t.Errorf("hpct = %v", agg)
	}
	s := sel.Items[2].Expr.(*expr.AggCall)
	if s.Fn != expr.AggSum || s.IsHorizontal() {
		t.Errorf("sum = %v", s)
	}
}

func TestParseHorizontalAggVariants(t *testing.T) {
	// The companion paper's forms.
	sel := mustSelect(t, `SELECT storeId,
		sum(salesAmt BY dayofweekName),
		count(distinct transactionid BY dayofweekNo),
		max(1 BY deptId DEFAULT 0),
		sum(salesAmt)
	FROM transactionLine GROUP BY storeId`)
	a1 := sel.Items[1].Expr.(*expr.AggCall)
	if a1.Fn != expr.AggSum || a1.By[0] != "dayofweekName" {
		t.Errorf("a1 = %v", a1)
	}
	a2 := sel.Items[2].Expr.(*expr.AggCall)
	if a2.Fn != expr.AggCount || !a2.Distinct || a2.By[0] != "dayofweekNo" {
		t.Errorf("a2 = %v", a2)
	}
	a3 := sel.Items[3].Expr.(*expr.AggCall)
	if a3.Fn != expr.AggMax || a3.Default == nil || a3.Default.String() != "0" {
		t.Errorf("a3 = %v", a3)
	}
}

func TestParseGroupByPositions(t *testing.T) {
	sel := mustSelect(t, "SELECT departmentId, gender, count(*) FROM employee GROUP BY 1, 2")
	if len(sel.GroupBy) != 2 || sel.GroupBy[0].Position != 1 || sel.GroupBy[1].Position != 2 {
		t.Errorf("group by = %v", sel.GroupBy)
	}
	c := sel.Items[2].Expr.(*expr.AggCall)
	if !c.Star {
		t.Error("count(*) not parsed")
	}
}

func TestParseWindowAggregate(t *testing.T) {
	sel := mustSelect(t, "SELECT state, city, sum(salesAmt) OVER (PARTITION BY state, city) FROM sales")
	a := sel.Items[2].Expr.(*expr.AggCall)
	if a.Over == nil || len(a.Over.PartitionBy) != 2 || a.Over.PartitionBy[1] != "city" {
		t.Errorf("over = %+v", a.Over)
	}
}

func TestParseWindowWithEmptyPartition(t *testing.T) {
	sel := mustSelect(t, "SELECT sum(a) OVER () FROM F")
	a := sel.Items[0].Expr.(*expr.AggCall)
	if a.Over == nil || len(a.Over.PartitionBy) != 0 {
		t.Errorf("over = %+v", a.Over)
	}
}

func TestParseJoins(t *testing.T) {
	sel := mustSelect(t, `SELECT F0.D1, F1.A FROM F0
		LEFT OUTER JOIN F1 ON F0.D1 = F1.D1
		LEFT JOIN F2 ON F1.D1 = F2.D1
		JOIN F3 ON F2.D1 = F3.D1`)
	if len(sel.From) != 4 {
		t.Fatalf("from elems = %d", len(sel.From))
	}
	if sel.From[1].Join != JoinLeftOuter || sel.From[2].Join != JoinLeftOuter {
		t.Error("LEFT [OUTER] JOIN forms must both be left outer")
	}
	if sel.From[3].Join != JoinInner {
		t.Error("bare JOIN must be inner")
	}
	if sel.From[1].On == nil || sel.From[1].On.String() != "(F0.D1 = F1.D1)" {
		t.Errorf("on = %v", sel.From[1].On)
	}
}

func TestParseCommaJoinWithAliases(t *testing.T) {
	sel := mustSelect(t, "SELECT a.x, b.y FROM Fj a, Fk AS b WHERE a.x = b.x")
	if len(sel.From) != 2 || sel.From[0].Table.Alias != "a" || sel.From[1].Table.Alias != "b" {
		t.Errorf("from = %v", sel.From)
	}
	if sel.From[1].Join != JoinCross {
		t.Error("comma join must be cross")
	}
}

func TestParseCaseExpression(t *testing.T) {
	sel := mustSelect(t, `SELECT CASE WHEN a <> 0 THEN b / a ELSE NULL END FROM F`)
	c, ok := sel.Items[0].Expr.(*expr.Case)
	if !ok {
		t.Fatalf("item = %T", sel.Items[0].Expr)
	}
	if len(c.Whens) != 1 || c.Else == nil {
		t.Errorf("case = %v", c)
	}
}

func TestParseAggOverCase(t *testing.T) {
	// The Hpct-direct generated form: sum(CASE…)/sum(A).
	sel := mustSelect(t, `SELECT D1,
		sum(CASE WHEN d = 'Mo' THEN A ELSE 0 END) / sum(A)
	FROM F GROUP BY D1`)
	div, ok := sel.Items[1].Expr.(*expr.BinaryOp)
	if !ok || div.Op != "/" {
		t.Fatalf("item = %v", sel.Items[1].Expr)
	}
	if _, ok := div.Left.(*expr.AggCall); !ok {
		t.Error("left of / must be an aggregate")
	}
}

func TestParseInsertValues(t *testing.T) {
	s, err := Parse("INSERT INTO F (a, b) VALUES (1, 'x'), (2, NULL)")
	if err != nil {
		t.Fatal(err)
	}
	ins := s.(*Insert)
	if ins.Table != "F" || len(ins.Columns) != 2 || len(ins.Rows) != 2 {
		t.Errorf("insert = %+v", ins)
	}
	if ins.Rows[1][1].String() != "NULL" {
		t.Errorf("row value = %v", ins.Rows[1][1])
	}
}

func TestParseInsertSelect(t *testing.T) {
	s, err := Parse("INSERT INTO Fk SELECT D1, D2, sum(A) FROM F GROUP BY D1, D2")
	if err != nil {
		t.Fatal(err)
	}
	ins := s.(*Insert)
	if ins.Query == nil || len(ins.Query.GroupBy) != 2 {
		t.Errorf("insert-select = %+v", ins)
	}
}

func TestParseUpdateCrossTable(t *testing.T) {
	// The paper's UPDATE strategy statement.
	s, err := Parse(`UPDATE Fk FROM Fj SET A = CASE WHEN Fj.A <> 0 THEN Fk.A / Fj.A ELSE NULL END
		WHERE Fk.D1 = Fj.D1 AND Fk.D2 = Fj.D2`)
	if err != nil {
		t.Fatal(err)
	}
	u := s.(*Update)
	if u.Table != "Fk" || len(u.From) != 1 || u.From[0].Name != "Fj" {
		t.Errorf("update = %+v", u)
	}
	if len(u.Set) != 1 || u.Set[0].Column != "A" {
		t.Errorf("set = %v", u.Set)
	}
	if u.Where == nil {
		t.Error("where missing")
	}
}

func TestParseSimpleUpdate(t *testing.T) {
	s, err := Parse("UPDATE F SET a = 1, b = b + 1 WHERE b IS NOT NULL")
	if err != nil {
		t.Fatal(err)
	}
	u := s.(*Update)
	if len(u.Set) != 2 || u.Set[1].Value.String() != "(b + 1)" {
		t.Errorf("set = %v", u.Set)
	}
}

func TestParseCreateTable(t *testing.T) {
	s, err := Parse(`CREATE TABLE FH (store INTEGER, "Mo" REAL, "Tu" REAL, name VARCHAR(20), ok BOOLEAN, PRIMARY KEY(store))`)
	if err != nil {
		t.Fatal(err)
	}
	ct := s.(*CreateTable)
	if len(ct.Schema) != 5 {
		t.Fatalf("schema = %v", ct.Schema)
	}
	if ct.Schema[1].Name != "Mo" || ct.Schema[1].Type != storage.TypeFloat {
		t.Errorf("quoted column = %+v", ct.Schema[1])
	}
	if ct.Schema[3].Type != storage.TypeString || ct.Schema[4].Type != storage.TypeBool {
		t.Errorf("types = %+v", ct.Schema)
	}
	if len(ct.PrimaryKey) != 1 || ct.PrimaryKey[0] != "store" {
		t.Errorf("pk = %v", ct.PrimaryKey)
	}
}

func TestParseCreateTableTrailingPK(t *testing.T) {
	s, err := Parse("CREATE TABLE FH (D1 INTEGER, v REAL) PRIMARY KEY(D1)")
	if err != nil {
		t.Fatal(err)
	}
	if pk := s.(*CreateTable).PrimaryKey; len(pk) != 1 || pk[0] != "D1" {
		t.Errorf("pk = %v", pk)
	}
}

func TestParseCreateIndexAndDrop(t *testing.T) {
	s, err := Parse("CREATE INDEX ix ON Fk (D1, D2)")
	if err != nil {
		t.Fatal(err)
	}
	ci := s.(*CreateIndex)
	if ci.Name != "ix" || ci.Table != "Fk" || len(ci.Columns) != 2 {
		t.Errorf("create index = %+v", ci)
	}
	s, err = Parse("DROP TABLE IF EXISTS Fk")
	if err != nil {
		t.Fatal(err)
	}
	if d := s.(*DropTable); !d.IfExists || d.Name != "Fk" {
		t.Errorf("drop = %+v", d)
	}
}

func TestParseAllScript(t *testing.T) {
	stmts, err := ParseAll(`
		-- build the fine aggregate
		CREATE TABLE Fk (D1 INTEGER, A REAL);
		INSERT INTO Fk SELECT D1, sum(A) FROM F GROUP BY D1;
		SELECT * FROM Fk;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("stmts = %d", len(stmts))
	}
}

func TestParseComments(t *testing.T) {
	sel := mustSelect(t, "SELECT a /* FV = Fk */ FROM F -- trailing\n")
	if len(sel.Items) != 1 {
		t.Errorf("items = %v", sel.Items)
	}
}

func TestParseNumberLiterals(t *testing.T) {
	e, err := ParseExpr("1.5e2 + 2 - .5")
	if err != nil {
		t.Fatal(err)
	}
	v, err := e.Eval(nil)
	if err != nil || v.Float() != 151.5 { // floateq:ok exact expected value
		t.Errorf("eval = %v %v", v, err)
	}
}

func TestParseStringEscapes(t *testing.T) {
	e, err := ParseExpr("'it''s'")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := e.Eval(nil); v.Str() != "it's" {
		t.Errorf("string = %q", v.Str())
	}
}

func TestParsePrecedence(t *testing.T) {
	e, err := ParseExpr("1 + 2 * 3 = 7 AND NOT 1 > 2")
	if err != nil {
		t.Fatal(err)
	}
	v, err := e.Eval(nil)
	if err != nil || !v.Bool() {
		t.Errorf("eval = %v %v", v, err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELEKT 1",
		"SELECT",
		"SELECT a FROM",
		"SELECT a FROM F GROUP",
		"SELECT a FROM F WHERE",
		"SELECT Vpct(*) FROM F GROUP BY a",
		"SELECT Hpct(* BY d) FROM F",
		"SELECT sum(a BY d) OVER (PARTITION BY x) FROM F",
		"SELECT sum(a DEFAULT b) FROM F",
		"INSERT INTO F",
		"UPDATE F",
		"CREATE TABLE F ()",
		"CREATE TABLE F (a WIBBLE)",
		"DROP F",
		"SELECT a FROM F LIMIT x",
		"SELECT 'unterminated FROM F",
		`SELECT "unterminated FROM F`,
		"SELECT a FROM F /* unterminated",
		"SELECT CASE END FROM F",
		"SELECT a b c FROM F",
		"SELECT a FROM F ORDER BY 0",
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseErrorPositions(t *testing.T) {
	_, err := Parse("SELECT a\nFROM F WHERE ~")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "at line 2, col 14") {
		t.Errorf("error %q lacks position info", err)
	}
	var se *SyntaxError
	if !errors.As(err, &se) {
		t.Fatalf("error %T is not a *SyntaxError", err)
	}
	if se.Line != 2 || se.Col != 14 {
		t.Errorf("SyntaxError position = %d:%d, want 2:14", se.Line, se.Col)
	}

	// Parser (not lexer) errors carry positions too.
	_, err = Parse("SELECT a FROM F GROUP BY\nORDER BY a")
	if !errors.As(err, &se) {
		t.Fatalf("error %T is not a *SyntaxError", err)
	}
	if se.Line != 2 {
		t.Errorf("parser error position = %d:%d, want line 2", se.Line, se.Col)
	}
}

func TestParsedSpans(t *testing.T) {
	sel := mustSelect(t, "SELECT state, Vpct(salesAmt BY city)\nFROM sales GROUP BY state, city")
	if got := sel.Items[0].Span.Start; got.Line != 1 || got.Col != 8 {
		t.Errorf("item 0 span = %v", sel.Items[0].Span)
	}
	agg, ok := sel.Items[1].Expr.(*expr.AggCall)
	if !ok {
		t.Fatalf("item 1 = %T", sel.Items[1].Expr)
	}
	if agg.Span.Start.Line != 1 || agg.Span.Start.Col != 15 {
		t.Errorf("agg span = %v", agg.Span)
	}
	if len(agg.BySpans) != 1 || agg.BySpans[0].Start.Col != 32 {
		t.Errorf("BY spans = %v", agg.BySpans)
	}
	if len(sel.GroupBy) != 2 || sel.GroupBy[1].Span.Start.Line != 2 {
		t.Errorf("group key spans = %v, %v", sel.GroupBy[0].Span, sel.GroupBy[1].Span)
	}
	if sel.From[0].Table.Span.Start.Line != 2 || sel.From[0].Table.Span.Start.Col != 6 {
		t.Errorf("table span = %v", sel.From[0].Table.Span)
	}
}

func TestStatementStringRoundTrip(t *testing.T) {
	// String() output must re-parse to the same String(). This keeps the
	// code generator's emitted SQL genuinely parseable.
	srcs := []string{
		"SELECT state, city, vpct(salesAmt BY city) FROM sales GROUP BY state, city",
		"SELECT store, hpct(salesAmt BY dweek), sum(salesAmt) FROM sales GROUP BY store ORDER BY store LIMIT 5",
		"SELECT DISTINCT Dh, Dk FROM FV",
		"INSERT INTO Fj SELECT D1, sum(A) FROM Fk GROUP BY D1",
		"INSERT INTO F (a, b) VALUES (1, 'x''y')",
		"UPDATE Fk FROM Fj SET A = CASE WHEN (Fj.A <> 0) THEN (Fk.A / Fj.A) ELSE NULL END WHERE (Fk.D1 = Fj.D1)",
		`CREATE TABLE FH (D1 INTEGER, "Mo" REAL, PRIMARY KEY(D1))`,
		"DROP TABLE IF EXISTS FV",
		"CREATE INDEX ix ON Fk (D1, D2)",
		"SELECT F0.D1, F1.A FROM F0 LEFT OUTER JOIN F1 ON (F0.D1 = F1.D1)",
		"SELECT sum(salesAmt) OVER (PARTITION BY state) FROM sales",
		"SELECT max(1 BY deptId DEFAULT 0) FROM t GROUP BY tid",
		"SELECT a FROM F WHERE a IS NOT NULL HAVING (sum(a) > 0)",
	}
	for _, src := range srcs {
		s1, err := Parse(src)
		if err != nil {
			t.Errorf("Parse(%q): %v", src, err)
			continue
		}
		text := s1.String()
		s2, err := Parse(text)
		if err != nil {
			t.Errorf("re-Parse(%q): %v", text, err)
			continue
		}
		if s2.String() != text {
			t.Errorf("round trip unstable:\n  first  %q\n  second %q", text, s2.String())
		}
	}
}

func TestParseInBetweenLike(t *testing.T) {
	sel := mustSelect(t, `SELECT a FROM F WHERE a IN (1, 2, 3) AND b NOT IN ('x')
		AND c BETWEEN 1 AND 10 AND d NOT BETWEEN 0 AND 1
		AND e LIKE 'San%' AND f NOT LIKE '%x%'`)
	if sel.Where == nil {
		t.Fatal("where missing")
	}
	text := sel.Where.String()
	for _, frag := range []string{"IN (1, 2, 3)", "NOT IN ('x')", "BETWEEN 1 AND 10",
		"NOT BETWEEN 0 AND 1", "LIKE 'San%'", "NOT LIKE '%x%'"} {
		if !strings.Contains(text, frag) {
			t.Errorf("where %q lacks %q", text, frag)
		}
	}
	// Round trip.
	re, err := Parse(sel.String())
	if err != nil {
		t.Fatalf("re-parse: %v", err)
	}
	if re.String() != sel.String() {
		t.Errorf("round trip unstable:\n%s\n%s", sel.String(), re.String())
	}
}

func TestParseNotInErrors(t *testing.T) {
	// Prefix NOT still works as plain negation.
	e, err := ParseExpr("NOT 1 = 2")
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := e.Eval(nil); !v.Bool() {
		t.Error("NOT 1=2 must be true")
	}
	if _, err := Parse("SELECT a FROM F WHERE a IN ()"); err == nil {
		t.Error("empty IN list must fail")
	}
	if _, err := Parse("SELECT a FROM F WHERE a BETWEEN 1"); err == nil {
		t.Error("BETWEEN without AND must fail")
	}
}

func TestParseExplainAnalyze(t *testing.T) {
	stmt, err := Parse("EXPLAIN SELECT a FROM f")
	if err != nil {
		t.Fatal(err)
	}
	ex, ok := stmt.(*Explain)
	if !ok || ex.Analyze {
		t.Fatalf("EXPLAIN parsed as %T analyze=%v", stmt, ex.Analyze)
	}
	if got := ex.String(); got != "EXPLAIN SELECT a FROM f" {
		t.Errorf("String() = %q", got)
	}

	stmt, err = Parse("EXPLAIN ANALYZE SELECT a, sum(b) FROM f GROUP BY a")
	if err != nil {
		t.Fatal(err)
	}
	ex = stmt.(*Explain)
	if !ex.Analyze {
		t.Error("ANALYZE flag not set")
	}
	// The rendered form must re-parse to the same statement.
	re, err := Parse(ex.String())
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if re.(*Explain).String() != ex.String() {
		t.Errorf("round trip unstable: %q vs %q", re.(*Explain).String(), ex.String())
	}

	if _, err := Parse("EXPLAIN ANALYZE INSERT INTO f VALUES (1)"); err == nil {
		t.Error("EXPLAIN ANALYZE of non-SELECT must fail")
	}
	// ANALYZE stays usable as a quoted identifier.
	if _, err := Parse(`SELECT "ANALYZE" FROM f`); err != nil {
		t.Errorf("quoted ANALYZE identifier: %v", err)
	}
}
