package sqlparse

import (
	"strings"

	"repro/internal/diag"
	"repro/internal/expr"
	"repro/internal/storage"
)

// Statement is any parsed SQL statement.
type Statement interface {
	stmt()
	// String renders the statement back to SQL text.
	String() string
}

// CreateTable is CREATE TABLE name (cols…[, PRIMARY KEY(cols)]).
type CreateTable struct {
	Name       string
	Schema     storage.Schema
	PrimaryKey []string
}

func (*CreateTable) stmt() {}

// String renders the statement.
func (c *CreateTable) String() string {
	var sb strings.Builder
	sb.WriteString("CREATE TABLE ")
	sb.WriteString(c.Name)
	sb.WriteString(" (")
	for i, col := range c.Schema {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(quoteIdent(col.Name))
		sb.WriteString(" ")
		sb.WriteString(col.Type.String())
	}
	if len(c.PrimaryKey) > 0 {
		sb.WriteString(", PRIMARY KEY(")
		sb.WriteString(strings.Join(c.PrimaryKey, ", "))
		sb.WriteString(")")
	}
	sb.WriteString(")")
	return sb.String()
}

// DropTable is DROP TABLE [IF EXISTS] name.
type DropTable struct {
	Name     string
	IfExists bool
}

func (*DropTable) stmt() {}

// String renders the statement.
func (d *DropTable) String() string {
	if d.IfExists {
		return "DROP TABLE IF EXISTS " + d.Name
	}
	return "DROP TABLE " + d.Name
}

// CreateIndex is CREATE INDEX name ON table (cols).
type CreateIndex struct {
	Name    string
	Table   string
	Columns []string
}

func (*CreateIndex) stmt() {}

// String renders the statement.
func (c *CreateIndex) String() string {
	return "CREATE INDEX " + c.Name + " ON " + c.Table + " (" + strings.Join(c.Columns, ", ") + ")"
}

// Insert is INSERT INTO table [(cols)] VALUES (…), … or INSERT INTO table
// [(cols)] SELECT ….
type Insert struct {
	Table   string
	Columns []string      // optional explicit column list
	Rows    [][]expr.Expr // VALUES form
	Query   *Select       // INSERT … SELECT form
}

func (*Insert) stmt() {}

// String renders the statement.
func (i *Insert) String() string {
	var sb strings.Builder
	sb.WriteString("INSERT INTO ")
	sb.WriteString(i.Table)
	if len(i.Columns) > 0 {
		sb.WriteString(" (")
		sb.WriteString(strings.Join(i.Columns, ", "))
		sb.WriteString(")")
	}
	if i.Query != nil {
		sb.WriteString(" ")
		sb.WriteString(i.Query.String())
		return sb.String()
	}
	sb.WriteString(" VALUES ")
	for r, row := range i.Rows {
		if r > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString("(")
		for c, e := range row {
			if c > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(e.String())
		}
		sb.WriteString(")")
	}
	return sb.String()
}

// Assignment is one SET column = expr clause of an UPDATE.
type Assignment struct {
	Column string
	Value  expr.Expr
}

// Update is UPDATE target [FROM tables] SET assignments [WHERE cond]. The
// FROM clause names the extra tables a cross-table update joins with — the
// form the paper's UPDATE-based Vpct strategy generates (UPDATE Fk FROM Fj
// SET A = Fk.A/Fj.A WHERE Fk.D1 = Fj.D1 …).
type Update struct {
	Table string
	Alias string
	From  []TableRef
	Set   []Assignment
	Where expr.Expr
}

func (*Update) stmt() {}

// String renders the statement.
func (u *Update) String() string {
	var sb strings.Builder
	sb.WriteString("UPDATE ")
	sb.WriteString(u.Table)
	if u.Alias != "" {
		sb.WriteString(" ")
		sb.WriteString(u.Alias)
	}
	if len(u.From) > 0 {
		sb.WriteString(" FROM ")
		for i, t := range u.From {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(t.String())
		}
	}
	sb.WriteString(" SET ")
	for i, a := range u.Set {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(a.Column)
		sb.WriteString(" = ")
		sb.WriteString(a.Value.String())
	}
	if u.Where != nil {
		sb.WriteString(" WHERE ")
		sb.WriteString(u.Where.String())
	}
	return sb.String()
}

// Delete is DELETE FROM table [WHERE cond].
type Delete struct {
	Table string
	Where expr.Expr
}

func (*Delete) stmt() {}

// String renders the statement.
func (d *Delete) String() string {
	s := "DELETE FROM " + d.Table
	if d.Where != nil {
		s += " WHERE " + d.Where.String()
	}
	return s
}

// Explain is EXPLAIN [ANALYZE] SELECT …: show the physical plan. Plain
// EXPLAIN renders the plan without running the query; EXPLAIN ANALYZE
// executes it and annotates each operator with actual row counts and
// durations.
type Explain struct {
	Query   *Select
	Analyze bool
}

func (*Explain) stmt() {}

// String renders the statement.
func (e *Explain) String() string {
	if e.Analyze {
		return "EXPLAIN ANALYZE " + e.Query.String()
	}
	return "EXPLAIN " + e.Query.String()
}

// JoinType distinguishes the FROM-list join forms.
type JoinType uint8

// Join forms: the comma list (cross product, filtered by WHERE), INNER JOIN
// … ON, and LEFT OUTER JOIN … ON (the SPJ strategy's assembly joins).
const (
	JoinCross JoinType = iota
	JoinInner
	JoinLeftOuter
)

// TableRef names a table with an optional alias.
type TableRef struct {
	Name  string
	Alias string
	// Span locates the reference in the statement source.
	Span diag.Span
}

// RefName returns the name the table is referenced by (alias if present).
func (t TableRef) RefName() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

// String renders the reference.
func (t TableRef) String() string {
	if t.Alias != "" {
		return t.Name + " " + t.Alias
	}
	return t.Name
}

// FromElem is one element of a FROM list: a table and how it joins the
// tables before it. The first element's Join/On are ignored.
type FromElem struct {
	Table TableRef
	Join  JoinType
	On    expr.Expr // nil for comma joins
}

// SelectItem is one term of a select list: either * (Star) or an expression
// with an optional alias. Aggregate calls — including Vpct/Hpct/horizontal
// BY aggregates and windowed OVER aggregates — appear inside Expr.
type SelectItem struct {
	Star  bool
	Expr  expr.Expr
	Alias string
	// Span locates the whole item (expression plus alias) in the source.
	Span diag.Span
}

// String renders the item.
func (s SelectItem) String() string {
	if s.Star {
		return "*"
	}
	if s.Alias != "" {
		return s.Expr.String() + " AS " + quoteIdent(s.Alias)
	}
	return s.Expr.String()
}

// GroupKey is one GROUP BY term: a (possibly qualified) column name or a
// 1-based select-list position (the companion paper writes GROUP BY 1,2).
type GroupKey struct {
	Qualifier string
	Column    string
	Position  int // 1-based; 0 when Column is set
	// Span locates the key in the statement source.
	Span diag.Span
}

// String renders the key.
func (g GroupKey) String() string {
	if g.Position > 0 {
		return itoa(g.Position)
	}
	if g.Qualifier != "" {
		return g.Qualifier + "." + g.Column
	}
	return g.Column
}

// GroupingKind distinguishes the grouping-set constructs of a GROUP BY
// clause: ROLLUP, CUBE, or an explicit GROUPING SETS list.
type GroupingKind uint8

// Grouping-set construct kinds.
const (
	GroupRollup GroupingKind = iota
	GroupCube
	GroupSetsList
)

// Keyword returns the construct's SQL keyword for error messages.
func (k GroupingKind) Keyword() string {
	switch k {
	case GroupRollup:
		return "ROLLUP"
	case GroupCube:
		return "CUBE"
	default:
		return "GROUPING SETS"
	}
}

// GroupingSpec is a GROUP BY ROLLUP(…), CUBE(…), or GROUPING SETS (…)
// clause. ROLLUP/CUBE carry their dimension list in Dims; GROUPING SETS
// carries the explicit sets in Sets (an empty inner slice is the () grand-
// total set). A Select carries at most one construct: mixing plain keys
// with a construct is rejected at parse time.
type GroupingSpec struct {
	Kind GroupingKind
	Dims []GroupKey   // ROLLUP/CUBE dimension list, finest first
	Sets [][]GroupKey // GROUPING SETS explicit sets, in source order
	// Span locates the whole construct in the statement source.
	Span diag.Span
}

// String renders the construct.
func (g *GroupingSpec) String() string {
	var sb strings.Builder
	if g.Kind == GroupSetsList {
		sb.WriteString("GROUPING SETS (")
		for i, set := range g.Sets {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString("(")
			for j, d := range set {
				if j > 0 {
					sb.WriteString(", ")
				}
				sb.WriteString(d.String())
			}
			sb.WriteString(")")
		}
		sb.WriteString(")")
		return sb.String()
	}
	sb.WriteString(g.Kind.Keyword())
	sb.WriteString("(")
	for i, d := range g.Dims {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(d.String())
	}
	sb.WriteString(")")
	return sb.String()
}

// OrderKey is one ORDER BY term.
type OrderKey struct {
	Qualifier string
	Column    string
	Position  int // 1-based; 0 when Column is set
	Desc      bool
}

// String renders the key.
func (o OrderKey) String() string {
	s := o.Column
	if o.Qualifier != "" {
		s = o.Qualifier + "." + o.Column
	}
	if o.Position > 0 {
		s = itoa(o.Position)
	}
	if o.Desc {
		s += " DESC"
	}
	return s
}

// Select is a SELECT statement.
type Select struct {
	Distinct bool
	Items    []SelectItem
	From     []FromElem
	Where    expr.Expr
	GroupBy  []GroupKey
	// GroupSets holds a ROLLUP/CUBE/GROUPING SETS construct when the GROUP
	// BY clause uses one; GroupBy stays empty then, so code that only
	// understands plain grouping cannot silently mis-execute the query.
	GroupSets *GroupingSpec
	Having    expr.Expr
	OrderBy  []OrderKey
	Limit    int // 0 = no limit

	// DistinctSpan and HavingSpan locate the DISTINCT keyword and the
	// HAVING clause, for positioned diagnostics; zero when absent.
	DistinctSpan diag.Span
	HavingSpan   diag.Span
}

func (*Select) stmt() {}

// String renders the statement.
func (s *Select) String() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	if s.Distinct {
		sb.WriteString("DISTINCT ")
	}
	for i, it := range s.Items {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(it.String())
	}
	if len(s.From) > 0 {
		sb.WriteString(" FROM ")
		for i, f := range s.From {
			if i == 0 {
				sb.WriteString(f.Table.String())
				continue
			}
			switch f.Join {
			case JoinCross:
				sb.WriteString(", ")
				sb.WriteString(f.Table.String())
			case JoinInner:
				sb.WriteString(" JOIN ")
				sb.WriteString(f.Table.String())
				sb.WriteString(" ON ")
				sb.WriteString(f.On.String())
			case JoinLeftOuter:
				sb.WriteString(" LEFT OUTER JOIN ")
				sb.WriteString(f.Table.String())
				sb.WriteString(" ON ")
				sb.WriteString(f.On.String())
			}
		}
	}
	if s.Where != nil {
		sb.WriteString(" WHERE ")
		sb.WriteString(s.Where.String())
	}
	if s.GroupSets != nil {
		sb.WriteString(" GROUP BY ")
		sb.WriteString(s.GroupSets.String())
	} else if len(s.GroupBy) > 0 {
		sb.WriteString(" GROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(g.String())
		}
	}
	if s.Having != nil {
		sb.WriteString(" HAVING ")
		sb.WriteString(s.Having.String())
	}
	if len(s.OrderBy) > 0 {
		sb.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(o.String())
		}
	}
	if s.Limit > 0 {
		sb.WriteString(" LIMIT ")
		sb.WriteString(itoa(s.Limit))
	}
	return sb.String()
}

// IsKeyword reports whether s (case-insensitively) is a reserved SQL
// keyword; such names must be quoted when used as identifiers.
func IsKeyword(s string) bool { return keywords[strings.ToUpper(s)] }

// quoteIdent quotes an identifier when it needs quoting (non-simple chars),
// mirroring how the code generator emits derived column names like "Mo" or
// "dweek=1,month=2".
func quoteIdent(s string) string {
	simple := s != ""
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || i > 0 && c >= '0' && c <= '9') {
			simple = false
			break
		}
	}
	if simple && !keywords[strings.ToUpper(s)] {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	neg := i < 0
	if neg {
		i = -i
	}
	var buf [20]byte
	p := len(buf)
	for i > 0 {
		p--
		buf[p] = byte('0' + i%10)
		i /= 10
	}
	if neg {
		p--
		buf[p] = '-'
	}
	return string(buf[p:])
}
