package sqlparse

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// TestRandomQueryRoundTrip generates random queries from a grammar covering
// the full SQL surface and checks that Parse(stmt.String()).String() is a
// fixed point — the property the code generator relies on, since every
// generated statement is rendered, reparsed, and executed.
func TestRandomQueryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(12345))
	cols := []string{"d1", "d2", "d3", "a", "b"}
	col := func() string { return cols[rng.Intn(len(cols))] }

	var randExpr func(depth int) string
	randExpr = func(depth int) string {
		if depth <= 0 {
			switch rng.Intn(4) {
			case 0:
				return col()
			case 1:
				return fmt.Sprintf("%d", rng.Intn(100))
			case 2:
				return fmt.Sprintf("%.2f", rng.Float64()*10)
			default:
				return "'s" + fmt.Sprint(rng.Intn(5)) + "'"
			}
		}
		switch rng.Intn(9) {
		case 0:
			return "(" + randExpr(depth-1) + " + " + randExpr(depth-1) + ")"
		case 1:
			return "(" + randExpr(depth-1) + " * " + randExpr(depth-1) + ")"
		case 2:
			return "(" + randExpr(depth-1) + " = " + randExpr(depth-1) + ")"
		case 3:
			return "(" + col() + " IS NULL)"
		case 4:
			return "CASE WHEN " + randExpr(depth-1) + " THEN " + randExpr(depth-1) + " ELSE " + randExpr(depth-1) + " END"
		case 5:
			return "coalesce(" + randExpr(depth-1) + ", " + randExpr(depth-1) + ")"
		case 6:
			return "(" + col() + " IN (1, 2, 3))"
		case 7:
			return "(" + col() + " BETWEEN 1 AND 9)"
		default:
			return "(" + col() + " LIKE 'x%')"
		}
	}

	randAgg := func() string {
		switch rng.Intn(6) {
		case 0:
			return "sum(" + randExpr(1) + ")"
		case 1:
			return "count(*)"
		case 2:
			return "count(DISTINCT " + col() + ")"
		case 3:
			return "vpct(" + col() + " BY " + col() + ")"
		case 4:
			return "hpct(" + col() + " BY " + col() + ")"
		default:
			return "max(1 BY " + col() + " DEFAULT 0)"
		}
	}

	for trial := 0; trial < 300; trial++ {
		var sb strings.Builder
		sb.WriteString("SELECT ")
		nItems := 1 + rng.Intn(3)
		for i := 0; i < nItems; i++ {
			if i > 0 {
				sb.WriteString(", ")
			}
			if rng.Intn(2) == 0 {
				sb.WriteString(randAgg())
			} else {
				sb.WriteString(randExpr(2))
			}
			if rng.Intn(4) == 0 {
				sb.WriteString(fmt.Sprintf(" AS alias%d", i))
			}
		}
		sb.WriteString(" FROM f")
		if rng.Intn(2) == 0 {
			sb.WriteString(" WHERE " + randExpr(2))
		}
		if rng.Intn(2) == 0 {
			sb.WriteString(" GROUP BY " + col() + ", " + col())
		}
		if rng.Intn(3) == 0 {
			sb.WriteString(" ORDER BY 1")
			if rng.Intn(2) == 0 {
				sb.WriteString(" DESC")
			}
		}
		if rng.Intn(4) == 0 {
			sb.WriteString(fmt.Sprintf(" LIMIT %d", 1+rng.Intn(50)))
		}
		src := sb.String()

		s1, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		text1 := s1.String()
		s2, err := Parse(text1)
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", text1, err)
		}
		if text2 := s2.String(); text2 != text1 {
			t.Fatalf("round trip not a fixed point:\n  in   %s\n  out1 %s\n  out2 %s", src, text1, text2)
		}
	}
}

// TestLexerRobustness throws byte noise at the lexer: it must error or
// tokenize, never panic or loop.
func TestLexerRobustness(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	alphabet := []byte("SELECT sum vpct BY ,()'\"%_;.*/-<>=! \n\tabc019")
	for trial := 0; trial < 2000; trial++ {
		n := rng.Intn(60)
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = alphabet[rng.Intn(len(alphabet))]
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on input %q: %v", buf, r)
				}
			}()
			_, _ = ParseAll(string(buf))
		}()
	}
}
