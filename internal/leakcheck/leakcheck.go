// Package leakcheck fails a test that leaks goroutines. The engine's
// parallel paths spawn short-lived workers per statement; any execution
// outcome — success, limit error, cancellation, injected panic — must leave
// the goroutine count where it started, or repeated queries against a
// long-lived process pile up stuck workers.
//
// Usage, first line of a test (or TestMain for a whole suite):
//
//	defer leakcheck.Check(t)()
//
// The returned func compares the goroutine count against the snapshot taken
// at the call, polling briefly to let finished goroutines be reaped before
// declaring a leak.
package leakcheck

import (
	"runtime"
	"testing"
	"time"
)

// Check snapshots the current goroutine count and returns a func that fails
// t if the count has not returned to (at most) the snapshot within a grace
// period. Poll-with-retries absorbs the scheduler lag between a worker's
// last line and its exit.
func Check(t testing.TB) func() {
	t.Helper()
	before := runtime.NumGoroutine()
	return func() {
		t.Helper()
		var after int
		deadline := time.Now().Add(2 * time.Second)
		for {
			after = runtime.NumGoroutine()
			if after <= before || time.Now().After(deadline) {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		if after > before {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Errorf("leaked %d goroutine(s): %d before, %d after\n%s",
				after-before, before, after, buf[:n])
		}
	}
}
