package engine

import (
	"fmt"
	"strings"

	"repro/internal/expr"
	"repro/internal/sqlparse"
	"repro/internal/value"
)

// execExplain renders the physical plan of a SELECT without producing its
// rows. The FROM pipeline is actually constructed — join sides are hashed
// or index-bound exactly as execution would — so the output reflects real
// decisions (index reuse, nested-loop fallbacks), at the cost of doing the
// build work.
func (e *Engine) execExplain(ex *sqlparse.Explain) (*Result, error) {
	sel := ex.Query
	in, residualWhere, err := e.buildFrom(sel)
	if err != nil {
		return nil, err
	}

	var lines []string
	emit := func(depth int, s string) {
		lines = append(lines, strings.Repeat("  ", depth)+s)
	}

	items, err := expandStars(sel.Items, in.schema())
	if err != nil {
		return nil, err
	}

	depth := 0
	if sel.Limit > 0 {
		emit(depth, fmt.Sprintf("Limit %d", sel.Limit))
		depth++
	}
	if len(sel.OrderBy) > 0 {
		keys := make([]string, len(sel.OrderBy))
		for i, k := range sel.OrderBy {
			keys[i] = k.String()
		}
		emit(depth, "Sort ["+strings.Join(keys, ", ")+"]")
		depth++
	}
	if sel.Distinct {
		emit(depth, "Distinct")
		depth++
	}

	switch {
	case hasWindow(items):
		var specs []string
		for _, it := range items {
			_ = expr.Walk(it.Expr, func(n expr.Expr) error {
				if a, ok := n.(*expr.AggCall); ok && a.Over != nil {
					specs = append(specs, a.String())
				}
				return nil
			})
		}
		emit(depth, "WindowAggregate (sort-based, one pass per window) ["+strings.Join(specs, "; ")+"]")
		depth++
	case len(sel.GroupBy) > 0 || sel.Having != nil || anyAggregate(items):
		var keys []string
		for _, g := range sel.GroupBy {
			keys = append(keys, g.String())
		}
		var aggs []string
		for _, it := range items {
			_ = expr.Walk(it.Expr, func(n expr.Expr) error {
				if a, ok := n.(*expr.AggCall); ok {
					aggs = append(aggs, a.String())
				}
				return nil
			})
		}
		line := "HashAggregate keys=[" + strings.Join(keys, ", ") + "] aggs=[" + strings.Join(aggs, ", ") + "]"
		if sel.Having != nil {
			line += " having=" + sel.Having.String()
		}
		emit(depth, line)
		depth++
	default:
		names := outputNames(items)
		emit(depth, "Project ["+strings.Join(names, ", ")+"]")
		depth++
	}

	if residualWhere != nil {
		emit(depth, "Filter "+residualWhere.String())
		depth++
	}
	describeIter(in, depth, emit)

	res := &Result{Columns: []string{"plan"}}
	for _, l := range lines {
		res.Rows = append(res.Rows, []value.Value{value.NewString(l)})
	}
	return res, nil
}

// describeIter renders the FROM pipeline bottom of the plan tree.
func describeIter(it iterator, depth int, emit func(int, string)) {
	switch n := it.(type) {
	case *tableScan:
		emit(depth, fmt.Sprintf("Scan %s (%d rows)", n.tab.Name(), n.tab.NumRows()))
	case *filterIter:
		emit(depth, "Filter "+n.pred.String())
		describeIter(n.child, depth+1, emit)
	case *hashJoin:
		leftW := len(n.sch) - n.rightW
		var conds []string
		for _, p := range n.pairs {
			c := n.sch[p.leftIdx].Qualifier + "." + n.sch[p.leftIdx].Name + " = " +
				n.sch[leftW+p.rightIdx].Qualifier + "." + n.sch[leftW+p.rightIdx].Name
			if p.nullSafe {
				c += " (null-safe)"
			}
			conds = append(conds, c)
		}
		kind := "HashJoin"
		if n.outer {
			kind = "HashLeftOuterJoin"
		}
		build := "hash table"
		if n.build.useIndex {
			build = "existing index"
		}
		buildName := ""
		if n.build.tab != nil {
			buildName = " " + n.build.tab.Name()
		}
		emit(depth, fmt.Sprintf("%s on [%s] (build%s via %s)", kind, strings.Join(conds, " AND "), buildName, build))
		describeIter(n.left, depth+1, emit)
	case *nestedLoopJoin:
		kind := "NestedLoopJoin"
		if n.outer {
			kind = "NestedLoopLeftOuterJoin"
		}
		pred := "true (cross product)"
		if n.pred != nil {
			pred = n.pred.String()
		}
		emit(depth, fmt.Sprintf("%s on %s (%d materialized right rows)", kind, pred, len(n.right.rows)))
		describeIter(n.left, depth+1, emit)
	case *memRelation:
		emit(depth, fmt.Sprintf("Values (%d rows)", len(n.rows)))
	default:
		emit(depth, fmt.Sprintf("%T", it))
	}
}
