package engine

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/expr"
	"repro/internal/obs"
	"repro/internal/sqlparse"
	"repro/internal/value"
)

// execExplain renders the physical plan of a SELECT. The FROM pipeline is
// actually constructed — index decisions are made exactly as execution would
// make them — but join hash tables and nested-loop right sides build lazily
// on first probe, so plain EXPLAIN never pays the build cost even on large
// inputs. EXPLAIN ANALYZE executes the query and annotates each operator
// with its actual row count and cumulative time.
func (e *Engine) execExplain(ex *sqlparse.Explain, ec execCtx) (*Result, error) {
	if ex.Analyze {
		return e.execExplainAnalyze(ex, ec)
	}
	sel := ex.Query
	in, residualWhere, err := e.buildFrom(sel)
	if err != nil {
		return nil, err
	}
	items, err := expandStars(sel.Items, in.schema())
	if err != nil {
		return nil, err
	}

	var lines []string
	emit := func(depth int, s string) {
		lines = append(lines, strings.Repeat("  ", depth)+s)
	}
	depth := explainHeader(sel, items, emit, nil)
	if residualWhere != nil {
		emit(depth, "Filter "+residualWhere.String())
		depth++
	}
	describeIter(in, depth, emit)
	return planResult(lines), nil
}

// execExplainAnalyze runs the SELECT with full instrumentation and renders
// the same plan tree annotated with actual rows and times, plus the parallel
// fold's per-worker breakdown and a trailing execution summary.
func (e *Engine) execExplainAnalyze(ex *sqlparse.Explain, ec execCtx) (*Result, error) {
	sel := ex.Query
	root := ec.span
	if root == nil {
		root = obs.NewSpan("statement")
		root.Attr("sql", sel.String())
	}
	insp := &selInspect{}
	t0 := time.Now()
	_, err := e.execSelect(sel, execCtx{par: ec.par, span: root, inspect: insp, batch: ec.batch})
	total := time.Since(t0)
	if err != nil {
		return nil, err
	}
	if ec.span == nil {
		root.SetDuration(total)
	}

	items, err := expandStars(sel.Items, insp.in.schema())
	if err != nil {
		return nil, err
	}
	var lines []string
	emit := func(depth int, s string) {
		lines = append(lines, strings.Repeat("  ", depth)+s)
	}
	depth := explainHeader(sel, items, emit, root)
	// The residual WHERE filter is the pipeline root itself when present, so
	// describeIter renders it (with actuals) — no separate header line here,
	// unlike plain EXPLAIN which works from the unwrapped pipeline.
	describeIter(insp.in, depth, emit)
	emit(0, fmt.Sprintf("Execution: rows=%d time=%s", insp.rows, total))
	return planResult(lines), nil
}

func planResult(lines []string) *Result {
	res := &Result{Columns: []string{"plan"}}
	for _, l := range lines {
		res.Rows = append(res.Rows, []value.Value{value.NewString(l)})
	}
	return res
}

// spanActual renders the "(actual …)" annotation for a stage span, or "".
func spanActual(sp *obs.Span) string {
	if sp == nil {
		return ""
	}
	if sp.RowsOut >= 0 {
		return fmt.Sprintf(" (actual rows=%d time=%s)", sp.RowsOut, sp.Duration)
	}
	return fmt.Sprintf(" (actual time=%s)", sp.Duration)
}

// explainHeader emits the plan lines above the FROM pipeline — Limit, Sort,
// Distinct, and the consumer stage (window / hash aggregate / project) — and
// returns the depth the pipeline starts at. When root is non-nil (EXPLAIN
// ANALYZE) each line is annotated from the corresponding stage span, and the
// parallel fold's worker and merge spans render under the HashAggregate.
func explainHeader(sel *sqlparse.Select, items []sqlparse.SelectItem,
	emit func(int, string), root *obs.Span) int {

	depth := 0
	if sel.Limit > 0 {
		emit(depth, fmt.Sprintf("Limit %d", sel.Limit))
		depth++
	}
	if len(sel.OrderBy) > 0 {
		keys := make([]string, len(sel.OrderBy))
		for i, k := range sel.OrderBy {
			keys[i] = k.String()
		}
		emit(depth, "Sort ["+strings.Join(keys, ", ")+"]"+spanActual(root.Find("sort")))
		depth++
	}
	if sel.Distinct {
		emit(depth, "Distinct"+spanActual(root.Find("distinct")))
		depth++
	}

	switch {
	case hasWindow(items):
		var specs []string
		for _, it := range items {
			_ = expr.Walk(it.Expr, func(n expr.Expr) error {
				if a, ok := n.(*expr.AggCall); ok && a.Over != nil {
					specs = append(specs, a.String())
				}
				return nil
			})
		}
		emit(depth, "WindowAggregate (sort-based, one pass per window) ["+
			strings.Join(specs, "; ")+"]"+spanActual(root.Find("window")))
		depth++
	case len(sel.GroupBy) > 0 || sel.Having != nil || anyAggregate(items):
		var keys []string
		for _, g := range sel.GroupBy {
			keys = append(keys, g.String())
		}
		var aggs []string
		for _, it := range items {
			_ = expr.Walk(it.Expr, func(n expr.Expr) error {
				if a, ok := n.(*expr.AggCall); ok {
					aggs = append(aggs, a.String())
				}
				return nil
			})
		}
		line := "HashAggregate keys=[" + strings.Join(keys, ", ") + "] aggs=[" + strings.Join(aggs, ", ") + "]"
		if sel.Having != nil {
			line += " having=" + sel.Having.String()
		}
		agg := root.Find("aggregate")
		emit(depth, line+spanActual(agg))
		depth++
		if fan := agg.Find("partition fan-out"); fan != nil {
			emit(depth, fmt.Sprintf("Parallel fold (%d workers)", len(fan.Children)))
			for _, w := range fan.Children {
				emit(depth+1, fmt.Sprintf("%s: rows=%d groups=%d time=%s", w.Name, w.RowsIn, w.RowsOut, w.Duration))
			}
			if m := agg.Find("merge"); m != nil {
				emit(depth+1, fmt.Sprintf("merge: groups=%d time=%s", m.RowsOut, m.Duration))
			}
		}
	default:
		names := outputNames(items)
		emit(depth, "Project ["+strings.Join(names, ", ")+"]"+spanActual(root.Find("project")))
		depth++
	}
	return depth
}

// describeIter renders the FROM pipeline bottom of the plan tree. Operators
// carrying opStats (EXPLAIN ANALYZE) are annotated with actual rows and
// cumulative times.
func describeIter(it iterator, depth int, emit func(int, string)) {
	switch n := it.(type) {
	case *tableScan:
		emit(depth, fmt.Sprintf("Scan %s (%d rows)%s", n.tab.Name(), n.tab.NumRows(), n.stats.actualSuffix()))
	case *filterIter:
		emit(depth, "Filter "+n.pred.String()+n.stats.actualSuffix())
		describeIter(n.child, depth+1, emit)
	case *hashJoin:
		leftW := len(n.sch) - n.rightW
		var conds []string
		for _, p := range n.pairs {
			c := n.sch[p.leftIdx].Qualifier + "." + n.sch[p.leftIdx].Name + " = " +
				n.sch[leftW+p.rightIdx].Qualifier + "." + n.sch[leftW+p.rightIdx].Name
			if p.nullSafe {
				c += " (null-safe)"
			}
			conds = append(conds, c)
		}
		kind := "HashJoin"
		if n.outer {
			kind = "HashLeftOuterJoin"
		}
		build := "hash table"
		if n.build.useIndex {
			build = "existing index"
		}
		buildName := ""
		if n.build.tab != nil {
			buildName = " " + n.build.tab.Name()
		}
		extra := ""
		if n.stats != nil && n.build.built && !n.build.useIndex {
			extra = fmt.Sprintf(" build time=%s", time.Duration(n.build.buildNs))
		}
		emit(depth, fmt.Sprintf("%s on [%s] (build%s via %s)%s%s",
			kind, strings.Join(conds, " AND "), buildName, build, extra, n.stats.actualSuffix()))
		describeIter(n.left, depth+1, emit)
	case *nestedLoopJoin:
		kind := "NestedLoopJoin"
		if n.outer {
			kind = "NestedLoopLeftOuterJoin"
		}
		pred := "true (cross product)"
		if n.pred != nil {
			pred = n.pred.String()
		}
		emit(depth, fmt.Sprintf("%s on %s%s", kind, pred, n.stats.actualSuffix()))
		describeIter(n.left, depth+1, emit)
		mat := "Materialize (right side, deferred to first probe)"
		if n.right != nil {
			mat = fmt.Sprintf("Materialize (right side, %d rows, time=%s)", len(n.right.rows), time.Duration(n.matNs))
		}
		emit(depth+1, mat)
		describeIter(n.rightSrc, depth+2, emit)
	case *memRelation:
		emit(depth, fmt.Sprintf("Values (%d rows)%s", len(n.rows), n.stats.actualSuffix()))
	default:
		emit(depth, fmt.Sprintf("%T", it))
	}
}
