package engine

import (
	"fmt"

	"repro/internal/expr"
	"repro/internal/value"
)

// accumulator folds one aggregate function over the rows of a group.
// merge folds another accumulator of the same concrete type — built over a
// disjoint row partition — into the receiver, so that add(r1…rn) ≡
// add(r1…rk).merge(add(rk+1…rn)) for every split point k. The parallel
// aggregation path relies on this to combine per-worker partial states.
type accumulator interface {
	add(v value.Value) error
	merge(o accumulator) error
	result() value.Value
}

// mergeTypeError reports an accumulator-kind mismatch during a parallel
// merge. It can only fire on an engine bug (workers build their accumulators
// from the same specs), so it is defensive rather than reachable from SQL.
func mergeTypeError(dst, src accumulator) error {
	return fmt.Errorf("engine: cannot merge %T into %T", src, dst)
}

// newAccumulator builds the accumulator for an aggregate call. BY-carrying
// calls never reach here (the rewriter eliminates them).
func newAccumulator(call *expr.AggCall) (accumulator, error) {
	if call.Distinct {
		if call.Fn != expr.AggCount {
			return nil, fmt.Errorf("engine: DISTINCT is only supported with count()")
		}
		return &countDistinctAcc{seen: make(map[string]struct{})}, nil
	}
	switch call.Fn {
	case expr.AggSum:
		return &sumAcc{}, nil
	case expr.AggCount:
		return &countAcc{star: call.Star}, nil
	case expr.AggAvg:
		return &avgAcc{}, nil
	case expr.AggMin:
		return &minMaxAcc{min: true}, nil
	case expr.AggMax:
		return &minMaxAcc{}, nil
	default:
		return nil, fmt.Errorf("engine: aggregate %s must be rewritten before execution", call.Fn)
	}
}

// sumAcc sums skipping NULLs; an all-NULL (or empty) group yields NULL,
// matching SQL sum() — the semantics Vpct inherits.
type sumAcc struct {
	seen  bool
	isInt bool
	isum  int64
	fsum  float64
}

func (a *sumAcc) add(v value.Value) error {
	if v.IsNull() {
		return nil
	}
	switch v.Kind() {
	case value.KindInt:
		if !a.seen {
			a.seen, a.isInt = true, true
			a.isum = v.Int()
			return nil
		}
		if a.isInt {
			a.isum += v.Int()
		} else {
			a.fsum += float64(v.Int())
		}
	case value.KindFloat:
		if !a.seen {
			a.seen, a.isInt = true, false
			a.fsum = v.Float()
			return nil
		}
		if a.isInt {
			a.fsum = float64(a.isum) + v.Float()
			a.isInt = false
		} else {
			a.fsum += v.Float()
		}
	default:
		return fmt.Errorf("engine: sum() on %s", v.Kind())
	}
	return nil
}

// floatTotal reads the running sum as a float regardless of representation.
func (a *sumAcc) floatTotal() float64 {
	if a.isInt {
		return float64(a.isum)
	}
	return a.fsum
}

func (a *sumAcc) merge(o accumulator) error {
	b, ok := o.(*sumAcc)
	if !ok {
		return mergeTypeError(a, o)
	}
	if !b.seen {
		return nil
	}
	if !a.seen {
		*a = *b
		return nil
	}
	if a.isInt && b.isInt {
		a.isum += b.isum
		return nil
	}
	// Any float on either side demotes the whole sum to float, exactly as a
	// sequential scan over the concatenated partitions would.
	a.fsum = a.floatTotal() + b.floatTotal()
	a.isInt = false
	return nil
}

func (a *sumAcc) result() value.Value {
	if !a.seen {
		return value.Null
	}
	if a.isInt {
		return value.NewInt(a.isum)
	}
	return value.NewFloat(a.fsum)
}

// countAcc counts rows (star) or non-NULL values.
type countAcc struct {
	star bool
	n    int64
}

func (a *countAcc) add(v value.Value) error {
	if a.star || !v.IsNull() {
		a.n++
	}
	return nil
}

func (a *countAcc) merge(o accumulator) error {
	b, ok := o.(*countAcc)
	if !ok {
		return mergeTypeError(a, o)
	}
	a.n += b.n
	return nil
}

func (a *countAcc) result() value.Value { return value.NewInt(a.n) }

// countDistinctAcc counts distinct non-NULL values.
type countDistinctAcc struct {
	seen map[string]struct{}
	buf  []byte
}

func (a *countDistinctAcc) add(v value.Value) error {
	if v.IsNull() {
		return nil
	}
	a.buf = value.AppendKey(a.buf[:0], v)
	if _, ok := a.seen[string(a.buf)]; !ok {
		a.seen[string(a.buf)] = struct{}{}
	}
	return nil
}

// merge takes the set union of the two partitions' value sets: count
// distinct is not distributive over partial counts (both partitions may have
// seen the same value), so the full set must travel with the partial state.
func (a *countDistinctAcc) merge(o accumulator) error {
	b, ok := o.(*countDistinctAcc)
	if !ok {
		return mergeTypeError(a, o)
	}
	for k := range b.seen {
		a.seen[k] = struct{}{}
	}
	return nil
}

func (a *countDistinctAcc) result() value.Value { return value.NewInt(int64(len(a.seen))) }

// avgAcc averages non-NULL values; empty → NULL.
type avgAcc struct {
	sum sumAcc
	n   int64
}

func (a *avgAcc) add(v value.Value) error {
	if v.IsNull() {
		return nil
	}
	a.n++
	return a.sum.add(v)
}

func (a *avgAcc) merge(o accumulator) error {
	b, ok := o.(*avgAcc)
	if !ok {
		return mergeTypeError(a, o)
	}
	if err := a.sum.merge(&b.sum); err != nil {
		return err
	}
	a.n += b.n
	return nil
}

func (a *avgAcc) result() value.Value {
	if a.n == 0 {
		return value.Null
	}
	s := a.sum.result()
	f, _ := s.AsFloat()
	return value.NewFloat(f / float64(a.n))
}

// minMaxAcc tracks the extreme non-NULL value; empty → NULL.
type minMaxAcc struct {
	min  bool
	seen bool
	best value.Value
}

func (a *minMaxAcc) add(v value.Value) error {
	if v.IsNull() {
		return nil
	}
	if !a.seen {
		a.seen, a.best = true, v
		return nil
	}
	c := value.Compare(v, a.best)
	if (a.min && c < 0) || (!a.min && c > 0) {
		a.best = v
	}
	return nil
}

func (a *minMaxAcc) merge(o accumulator) error {
	b, ok := o.(*minMaxAcc)
	if !ok || a.min != b.min {
		return mergeTypeError(a, o)
	}
	if !b.seen {
		return nil
	}
	return a.add(b.best)
}

func (a *minMaxAcc) result() value.Value {
	if !a.seen {
		return value.Null
	}
	return a.best
}

// aggSpec pairs an aggregate call with its bound argument expression.
type aggSpec struct {
	call *expr.AggCall
	arg  expr.Expr // bound; nil for count(*)
}

// groupState accumulates one group.
type groupState struct {
	keyVals []value.Value
	accs    []accumulator
}

// hashAggregateSeq is the sequential aggregation fold: it consumes the input
// and produces one output row per group — the group-key values followed by
// one aggregate result per spec. keyExprs are bound against the input
// schema. With no keys, a single global group is produced even for empty
// input (SQL semantics for aggregates without GROUP BY). Output rows follow
// the first-appearance order of their groups in the input; the parallel path
// (parallel.go) reproduces exactly this order.
// gov, when non-nil, charges group creation against MaxGroups and checks
// cancellation every govStride input rows (base-table inputs also check in
// the scan; this covers materialized inputs).
func hashAggregateSeq(in iterator, keyExprs []expr.Expr, specs []aggSpec, gov *governor) ([][]value.Value, error) {
	groups := make(map[string]*groupState)
	var order []string // first-appearance order, deterministic output
	keyBuf := make([]byte, 0, 64)
	keyVals := make([]value.Value, len(keyExprs))

	newGroup := func() (*groupState, error) {
		gs := &groupState{
			keyVals: append([]value.Value(nil), keyVals...),
			accs:    make([]accumulator, len(specs)),
		}
		for i, s := range specs {
			acc, err := newAccumulator(s.call)
			if err != nil {
				return nil, err
			}
			gs.accs[i] = acc
		}
		return gs, nil
	}

	var box rowBox
	var seen int
	for {
		row, ok, err := in.next()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		seen++
		if gov != nil && seen%govStride == 0 {
			if err := gov.check(); err != nil {
				return nil, err
			}
		}
		box.vals = row
		rv := &box
		keyBuf = keyBuf[:0]
		for i, ke := range keyExprs {
			v, err := ke.Eval(rv)
			if err != nil {
				return nil, err
			}
			keyVals[i] = v
			keyBuf = value.AppendKey(keyBuf, v)
		}
		gs, ok := groups[string(keyBuf)]
		if !ok {
			if gov != nil {
				if err := gov.addGroups(1); err != nil {
					return nil, err
				}
			}
			gs, err = newGroup()
			if err != nil {
				return nil, err
			}
			k := string(keyBuf)
			groups[k] = gs
			order = append(order, k)
		}
		for i, s := range specs {
			var v value.Value
			if s.arg != nil {
				v, err = s.arg.Eval(rv)
				if err != nil {
					return nil, err
				}
			}
			if err := gs.accs[i].add(v); err != nil {
				return nil, err
			}
		}
	}

	if len(keyExprs) == 0 && len(groups) == 0 {
		gs, err := newGroup()
		if err != nil {
			return nil, err
		}
		groups[""] = gs
		order = append(order, "")
	}

	out := make([][]value.Value, 0, len(groups))
	for _, k := range order {
		gs := groups[k]
		row := make([]value.Value, 0, len(gs.keyVals)+len(specs))
		row = append(row, gs.keyVals...)
		for _, acc := range gs.accs {
			row = append(row, acc.result())
		}
		out = append(out, row)
	}
	return out, nil
}
