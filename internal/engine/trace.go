package engine

import (
	"fmt"
	"io"
	"sync"
	"time"

	"repro/internal/obs"
)

// Observability plumbing for statement execution. An execCtx carries the
// per-statement parallelism together with the statement's trace span; when no
// trace sink or slow-query log is configured the span is nil and every
// instrumentation point degrades to a single pointer test (obs.Span methods
// are nil-receiver safe, and iterator opStats are only allocated for traced
// statements), so the sequential hot loop records metrics with atomic adds
// and zero allocations.

// execCtx threads per-statement execution state through the engine: the
// parallelism setting (see parallel.go for its semantics) and the statement
// span child stages attach to (nil when tracing is off).
type execCtx struct {
	par  int
	span *obs.Span
	// gov is the statement's lifecycle governor (lifecycle.go): context,
	// resource budgets, shared progress counters. Nil for ungoverned
	// statements (background context, no limits); every governed loop
	// tolerates nil.
	gov *governor
	// inspect, when non-nil, asks execSelect to expose its pipeline for
	// EXPLAIN ANALYZE rendering.
	inspect *selInspect
	// rec is the statement's introspection record (nil when introspection is
	// off or the statement is excluded by the self-observation guard); the
	// parallel aggregation path marks it (see parallel.go).
	rec *stmtRec
	// batch enables the vectorized aggregation fast path (batch.go);
	// snapshotted from Engine.batch by runStatement so one statement never
	// mixes paths.
	batch bool
}

// liteSpan reports whether the statement span exists only so the flight
// recorder gets its stage totals (introspection on, but no trace sink and no
// EXPLAIN ANALYZE). Per-operator instrumentation is skipped for such spans:
// opStats cost two clock reads per row per operator, the wrong price for
// always-on recording. Flight-record stages then carry the phase-level
// breakdown (aggregate, fold, sort, project, …), which costs one timestamp
// per phase.
func (ec execCtx) liteSpan() bool { return ec.rec != nil && ec.rec.ownSpan }

// selInspect captures the executed SELECT pipeline so EXPLAIN ANALYZE can
// render the plan tree with actual row counts and timings after the run.
type selInspect struct {
	in       iterator // FROM pipeline root, residual filter included
	rows     int      // final result row count
	analyzed bool     // set once execSelect ran to completion
}

// Engine-level metrics, registered once on the process-wide registry.
// Handles are package variables so recording is a single atomic add.
var (
	mStatements     = obs.Default.Counter("engine.statements")
	mStatementNs    = obs.Default.Histogram("engine.statement.ns")
	mErrors         = obs.Default.Counter("engine.errors")
	mRowsScanned    = obs.Default.Counter("engine.rows.scanned")
	mGroupsEmitted  = obs.Default.Counter("engine.groups.emitted")
	mAggParallel    = obs.Default.Counter("engine.agg.parallel")
	mAggSeqFallback = obs.Default.Counter("engine.agg.seq_fallback")
	mJoinBuilds     = obs.Default.Counter("engine.join.builds")
	mJoinIndexReuse = obs.Default.Counter("engine.join.index_reuse")
	// Lifecycle metrics (lifecycle.go): statements stopped by their context,
	// statements over a resource limit, panics contained into errors, and
	// parallel aggregations degraded to sequential under byte-budget
	// pressure.
	mCancelled         = obs.Default.Counter("engine.cancelled")
	mLimitsExceeded    = obs.Default.Counter("engine.limits.exceeded")
	mPanics            = obs.Default.Counter("engine.panics")
	mAggBudgetFallback = obs.Default.Counter("engine.agg.budget_fallback")
)

// slowLog is the slow-query log configuration: statements slower than the
// threshold are written to w, one line each. The mutex serializes writers
// when concurrent statements are slow at once.
type slowLog struct {
	mu        sync.Mutex
	w         io.Writer
	threshold time.Duration
}

func (l *slowLog) record(d time.Duration, sql string) {
	if l == nil || d < l.threshold {
		return
	}
	l.mu.Lock()
	fmt.Fprintf(l.w, "slow query (%s): %s\n", d, sql)
	l.mu.Unlock()
}

// traceSink wraps the sink callback so it can live in an atomic.Pointer.
type traceSink struct {
	fn func(*obs.Span)
}

// SetTraceSink installs a callback that receives the finished span tree of
// every statement the engine executes. Pass nil to disable tracing. The
// callback may run from any goroutine that submits statements.
func (e *Engine) SetTraceSink(fn func(*obs.Span)) {
	if fn == nil {
		e.sink.Store(nil)
		return
	}
	e.sink.Store(&traceSink{fn: fn})
}

// SetSlowQueryLog logs statements slower than threshold to w, one line per
// statement ("slow query (<dur>): <sql>"). Pass a nil writer to disable.
func (e *Engine) SetSlowQueryLog(w io.Writer, threshold time.Duration) {
	if w == nil {
		e.slow.Store(nil)
		return
	}
	e.slow.Store(&slowLog{w: w, threshold: threshold})
}

// tracing reports whether statements should build span trees even without an
// explicit parent: a sink wants the tree, and the slow-query log includes it
// implicitly through the statement duration.
func (e *Engine) tracing() bool { return e.sink.Load() != nil }

// opStats is per-operator instrumentation for EXPLAIN ANALYZE and traces:
// cumulative time spent inside next() (inclusive of children, the way
// EXPLAIN ANALYZE actual times read everywhere) and rows produced. Allocated
// only for traced statements; a nil *opStats keeps next() on the fast path.
type opStats struct {
	ns   int64
	rows int64
}

// instrumentIter allocates opStats down an iterator tree so every operator
// records its actual rows and cumulative time.
func instrumentIter(it iterator) {
	switch n := it.(type) {
	case *tableScan:
		n.stats = &opStats{}
	case *filterIter:
		n.stats = &opStats{}
		instrumentIter(n.child)
	case *hashJoin:
		n.stats = &opStats{}
		instrumentIter(n.left)
	case *nestedLoopJoin:
		n.stats = &opStats{}
		instrumentIter(n.left)
		instrumentIter(n.rightSrc)
	case *memRelation:
		n.stats = &opStats{}
	}
}

// operatorSpans converts an instrumented iterator tree into a span subtree
// mirroring the physical plan, with durations taken from the accumulated
// per-operator stats. Because actual times are inclusive of children, each
// child's duration is bounded by its parent's, preserving the trace
// invariant that sequential children never out-sum their parent.
func operatorSpans(it iterator) *obs.Span {
	var sp *obs.Span
	switch n := it.(type) {
	case *tableScan:
		sp = obs.NewSpan("scan " + n.tab.Name())
		applyStats(sp, n.stats)
	case *filterIter:
		sp = obs.NewSpan("filter")
		applyStats(sp, n.stats)
		sp.AddChild(operatorSpans(n.child))
	case *hashJoin:
		name := "hash join probe"
		if n.outer {
			name = "hash left outer join probe"
		}
		sp = obs.NewSpan(name)
		applyStats(sp, n.stats)
		if b := n.build; b != nil && b.built {
			bs := obs.NewSpan("join build")
			// Floor to 1ns: index reuse and failed builds have buildNs==0,
			// and Duration==0 is the trace invariant for "unclosed".
			d := time.Duration(b.buildNs)
			if d <= 0 {
				d = 1
			}
			bs.SetDuration(d)
			bs.SetRows(b.buildRows, -1)
			if b.useIndex {
				bs.Attr("via", "existing index")
			} else {
				bs.Attr("via", "hash table")
			}
			sp.AddChild(bs)
		}
		sp.AddChild(operatorSpans(n.left))
	case *nestedLoopJoin:
		sp = obs.NewSpan("nested-loop join")
		applyStats(sp, n.stats)
		if n.right != nil {
			ms := obs.NewSpan("materialize right")
			ms.SetDuration(time.Duration(n.matNs))
			ms.SetRows(-1, int64(len(n.right.rows)))
			sp.AddChild(ms)
		}
		sp.AddChild(operatorSpans(n.left))
	case *memRelation:
		sp = obs.NewSpan("values")
		applyStats(sp, n.stats)
	default:
		sp = obs.NewSpan(fmt.Sprintf("%T", it))
	}
	return sp
}

func applyStats(sp *obs.Span, st *opStats) {
	if st == nil {
		return
	}
	// Floor to 1ns: an operator that was never pulled (early error upstream)
	// has ns==0, and Duration==0 is the trace invariant for "unclosed".
	d := time.Duration(st.ns)
	if d <= 0 {
		d = 1
	}
	sp.SetDuration(d)
	sp.SetRows(-1, st.rows)
}

// actualSuffix renders the "(actual rows=… time=…)" annotation EXPLAIN
// ANALYZE appends to operator lines.
func (st *opStats) actualSuffix() string {
	if st == nil {
		return ""
	}
	return fmt.Sprintf(" (actual rows=%d time=%s)", st.rows, time.Duration(st.ns))
}

// finishStatement records statement-level metrics, feeds the slow-query log,
// and hands the finished span to the sink. sql is rendered lazily — only
// when a consumer needs the text.
func (e *Engine) finishStatement(stmt interface{ String() string }, root *obs.Span, d time.Duration, err error) {
	mStatements.Inc()
	mStatementNs.Observe(int64(d))
	if err != nil {
		mErrors.Inc()
	}
	if l := e.slow.Load(); l != nil {
		l.record(d, stmt.String())
	}
	if root == nil {
		return
	}
	root.SetDuration(d)
	if err != nil {
		root.Attr("error", err.Error())
	}
	if s := e.sink.Load(); s != nil {
		s.fn(root)
	}
}
