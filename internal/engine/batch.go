package engine

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/batch"
	"repro/internal/chaos"
	"repro/internal/expr"
	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/value"
)

// Vectorized batch aggregation. When a GROUP BY pipeline is a plain
// scan→filter*→fold over one stored table, the row-at-a-time iterator walk
// (which boxes every column of every row into value.Values and crosses an
// interface call per operator per row) is replaced by kernels that read
// the table's raw column vectors directly, batch.Size (= govStride = 1024)
// rows at a time:
//
//   - selection: error-free specialized predicates (eqConstFast,
//     isNullFast, andFast — see specialize.go) refine a pooled selection
//     vector per batch; typed fast paths compare raw int/string/bool
//     vectors and fall back to per-row SQLEqual for cross-kind compares
//     (still error-free). A predicate that can error disables
//     vectorization of the filter only: rows are then filtered and folded
//     one at a time in input order, preserving the scalar path's error
//     ordering exactly, but still without boxing whole rows.
//   - fold: group keys come straight from the key columns. When every key
//     column is INTEGER (≤ 4 of them) the group table is keyed by a fixed
//     [4]int64+null-mask struct — no encoding, no string allocation;
//     otherwise keys use the same order-preserving value.AppendKey
//     encoding as the scalar fold, so grouping is bit-identical. The
//     accumulators are the scalar path's own (aggregate.go), fed from
//     typed column getters — results are byte-identical by construction.
//
// Everything else mirrors the scalar path contract for contract: the
// governor is charged per batch (same stride), group creation is charged
// via addGroups, parallel execution partitions the table into contiguous
// row ranges folded by workers under the same span names, chaos points,
// cancel-context plumbing, panic containment, and deterministic merge
// order as hashAggregateParallel. Shapes the kernels do not cover (joins,
// computed keys or arguments, sum/avg over non-numeric columns) and
// injected core.batch faults fall back to the scalar path silently.

// Batch-execution metrics: folds that ran vectorized, rows they consumed,
// and aggregates that fell back to the scalar path (unsupported shape or
// an injected core.batch fault).
var (
	mBatchFolds     = obs.Default.Counter("batch.folds")
	mBatchFoldRows  = obs.Default.Counter("batch.fold.rows")
	mBatchFallbacks = obs.Default.Counter("batch.fallbacks")
)

// colGetter boxes one cell of a column. The boxing here is a struct
// construction, not a heap allocation — the saving over the scalar path is
// touching only the columns the query uses.
type colGetter func(r int) value.Value

// batchExec is a validated batch-aggregation plan over one stored table.
type batchExec struct {
	in      iterator
	scan    *tableScan
	tab     *storage.Table
	filters []*filterIter // innermost first
	preds   []expr.Expr   // innermost first, matching filters
	vector  bool          // all preds error-free → vectorized selection
	keyGet  []colGetter
	argGet  []colGetter // per spec; nil = count(*)
	specs   []aggSpec
	// intKeys selects the [4]int64 group-key fast path.
	intKeys bool
	keyInts [][]int64
	keyNull []func(int) bool
}

// bGroup is one group's partial state (the batch twin of partGroup).
type bGroup struct {
	keyVals []value.Value
	accs    []accumulator
}

// bPart is one worker's fold output, generic over the group-key type.
type bPart[K comparable] struct {
	groups map[K]*bGroup
	order  []K // local first-appearance order
	err    error
	// passed counts rows surviving each predicate (for operator stats);
	// folded is the number of rows that reached the accumulators.
	passed []int64
	folded int64
}

// intKey is the fixed-width group key for ≤ 4 INTEGER key columns. Two
// rows map to the same intKey exactly when their AppendKey encodings are
// equal, so grouping matches the scalar fold.
type intKey struct {
	v    [4]int64
	mask uint8 // bit i set = key column i is NULL (v[i] is then 0)
}

// batchAggregate tries the vectorized fold. handled is false when the
// pipeline shape is not covered (or a core.batch fault is injected); the
// caller then runs the scalar path.
func batchAggregate(in iterator, keyExprs []expr.Expr, specs []aggSpec, ec execCtx) (out [][]value.Value, handled bool, err error) {
	bx, ok := planBatch(in, keyExprs, specs)
	if !ok {
		mBatchFallbacks.Inc()
		return nil, false, nil
	}
	if cerr := chaos.Hit(chaos.CoreBatch); cerr != nil {
		// An injected kernel error means "batch unavailable", not "query
		// failed": report the shape as unhandled and let the scalar path
		// produce the result.
		mBatchFallbacks.Inc()
		return nil, false, nil
	}
	if bx.intKeys {
		out, err = batchRun(bx, bx.runInt, keyExprs, specs, ec)
	} else {
		out, err = batchRun(bx, bx.runStr, keyExprs, specs, ec)
	}
	if err == nil {
		n := int64(bx.tab.NumRows())
		mBatchFolds.Inc()
		mBatchFoldRows.Add(n)
		// The scalar scan counts its rows at exhaustion; mirror that on
		// kernel success only.
		mRowsScanned.Add(n)
	}
	return out, true, err
}

// planBatch validates the pipeline shape and builds the kernel plan.
func planBatch(in iterator, keyExprs []expr.Expr, specs []aggSpec) (*batchExec, bool) {
	bx := &batchExec{in: in, specs: specs}
	cur := in
unwrap:
	for {
		switch n := cur.(type) {
		case *filterIter:
			bx.filters = append(bx.filters, n)
			bx.preds = append(bx.preds, n.pred)
			cur = n.child
		case *tableScan:
			if n.pos != 0 {
				return nil, false
			}
			bx.scan = n
			bx.tab = n.tab
			break unwrap
		default:
			return nil, false
		}
	}
	// Collected outermost-first; reverse to application (innermost-first)
	// order so interleaved filtering reproduces the scalar error order.
	for i, j := 0, len(bx.preds)-1; i < j; i, j = i+1, j-1 {
		bx.preds[i], bx.preds[j] = bx.preds[j], bx.preds[i]
		bx.filters[i], bx.filters[j] = bx.filters[j], bx.filters[i]
	}
	bx.vector = true
	for _, p := range bx.preds {
		if !predErrFree(p) {
			bx.vector = false
			break
		}
	}
	ncols := bx.tab.NumCols()
	bx.intKeys = len(keyExprs) > 0 && len(keyExprs) <= 4
	for _, ke := range keyExprs {
		cr, ok := ke.(*expr.ColumnRef)
		if !ok || cr.Index < 0 || cr.Index >= ncols {
			return nil, false
		}
		bx.keyGet = append(bx.keyGet, columnGetter(bx.tab, cr.Index))
		if ints, isNull, isInt := bx.tab.IntColumn(cr.Index); isInt {
			bx.keyInts = append(bx.keyInts, ints)
			bx.keyNull = append(bx.keyNull, isNull)
		} else {
			bx.intKeys = false
		}
	}
	for _, s := range specs {
		if s.arg == nil {
			bx.argGet = append(bx.argGet, nil)
			continue
		}
		cr, ok := s.arg.(*expr.ColumnRef)
		if !ok || cr.Index < 0 || cr.Index >= ncols {
			return nil, false
		}
		if s.call.Fn == expr.AggSum || s.call.Fn == expr.AggAvg {
			// sum()/avg() over a non-numeric column errors per row on the
			// scalar path; keep that path authoritative for the error.
			if t := bx.tab.Schema()[cr.Index].Type; t == storage.TypeString || t == storage.TypeBool {
				return nil, false
			}
		}
		bx.argGet = append(bx.argGet, columnGetter(bx.tab, cr.Index))
	}
	return bx, true
}

// predErrFree reports whether a specialized predicate tree cannot return
// an error from Eval — the condition for vectorizing its filter.
func predErrFree(e expr.Expr) bool {
	switch n := e.(type) {
	case *eqConstFast, *isNullFast:
		return true
	case *andFast:
		return predErrFree(n.left) && predErrFree(n.right)
	}
	return false
}

// columnGetter builds a typed boxing getter for one column of tab; the
// batched join probe shares it.
func columnGetter(tab *storage.Table, idx int) colGetter {
	if ints, isNull, ok := tab.IntColumn(idx); ok {
		return func(r int) value.Value {
			if isNull(r) {
				return value.Null
			}
			return value.NewInt(ints[r])
		}
	}
	if flts, isNull, ok := tab.FloatColumn(idx); ok {
		return func(r int) value.Value {
			if isNull(r) {
				return value.Null
			}
			return value.NewFloat(flts[r])
		}
	}
	if strs, isNull, ok := tab.StringColumn(idx); ok {
		return func(r int) value.Value {
			if isNull(r) {
				return value.Null
			}
			return value.NewString(strs[r])
		}
	}
	if bools, isNull, ok := tab.BoolColumn(idx); ok {
		return func(r int) value.Value {
			if isNull(r) {
				return value.Null
			}
			return value.NewBool(bools[r])
		}
	}
	return func(r int) value.Value { return tab.Get(r, idx) }
}

// lazyRow adapts one stored row to expr.Row without boxing every column:
// only the cells the expression touches are materialized.
type lazyRow struct {
	tab *storage.Table
	r   int
}

func (l *lazyRow) ColumnValue(i int) value.Value { return l.tab.Get(l.r, i) }

// applySel refines a selection vector through one error-free predicate.
func (bx *batchExec) applySel(p expr.Expr, sel []int32) []int32 {
	switch n := p.(type) {
	case *andFast:
		// Truthy(AND) is both-truthy under 3VL, so successive refinement
		// is exact.
		sel = bx.applySel(n.left, sel)
		if len(sel) == 0 {
			return sel
		}
		return bx.applySel(n.right, sel)
	case *isNullFast:
		isNull := bx.tab.ColumnNulls(n.idx)
		out := sel[:0]
		for _, r := range sel {
			if isNull(int(r)) != n.negate {
				out = append(out, r)
			}
		}
		return out
	case *eqConstFast:
		return bx.eqSel(n, sel)
	}
	return sel // unreachable: predErrFree admits only the cases above
}

// eqSel is the column = constant kernel. Typed fast paths cover same-kind
// int/string/bool compares; everything else (floats, cross-kind) goes
// through per-row SQLEqual, which is still error-free and bit-identical to
// eqConstFast.Eval.
func (bx *batchExec) eqSel(e *eqConstFast, sel []int32) []int32 {
	out := sel[:0]
	if e.val.IsNull() {
		return out // NULL compares to nothing; never truthy
	}
	if ints, isNull, ok := bx.tab.IntColumn(e.idx); ok && e.val.Kind() == value.KindInt {
		c := e.val.Int()
		for _, r := range sel {
			if !isNull(int(r)) && ints[r] == c {
				out = append(out, r)
			}
		}
		return out
	}
	if strs, isNull, ok := bx.tab.StringColumn(e.idx); ok && e.val.Kind() == value.KindString {
		c := e.val.Str()
		for _, r := range sel {
			if !isNull(int(r)) && strs[r] == c {
				out = append(out, r)
			}
		}
		return out
	}
	if bools, isNull, ok := bx.tab.BoolColumn(e.idx); ok && e.val.Kind() == value.KindBool {
		c := e.val.Bool()
		for _, r := range sel {
			if !isNull(int(r)) && bools[r] == c {
				out = append(out, r)
			}
		}
		return out
	}
	get := columnGetter(bx.tab, e.idx)
	for _, r := range sel {
		if value.SQLEqual(get(int(r)), e.val).Truthy() {
			out = append(out, r)
		}
	}
	return out
}

// selectBatch fills sel with the row ids in [base, base+bn) passing every
// predicate, recording per-predicate survivor counts. Vector mode only.
func (bx *batchExec) selectBatch(base, bn int, sel []int32, passed []int64) []int32 {
	sel = sel[:0]
	for i := 0; i < bn; i++ {
		sel = append(sel, int32(base+i))
	}
	for i, p := range bx.preds {
		if len(sel) > 0 {
			sel = bx.applySel(p, sel)
		}
		passed[i] += int64(len(sel))
	}
	return sel
}

// newGroup allocates one group's key values and accumulators for row r.
func (bx *batchExec) newGroup(r int) (*bGroup, error) {
	g := &bGroup{accs: make([]accumulator, len(bx.specs))}
	for i, s := range bx.specs {
		acc, err := newAccumulator(s.call)
		if err != nil {
			return nil, err
		}
		g.accs[i] = acc
	}
	if len(bx.keyGet) > 0 {
		g.keyVals = make([]value.Value, len(bx.keyGet))
		for i, get := range bx.keyGet {
			g.keyVals[i] = get(r)
		}
	}
	return g, nil
}

// foldInto feeds row r into a group's accumulators.
func (bx *batchExec) foldInto(g *bGroup, r int) error {
	for i := range bx.specs {
		var v value.Value
		if get := bx.argGet[i]; get != nil {
			v = get(r)
		}
		if err := g.accs[i].add(v); err != nil {
			return err
		}
	}
	return nil
}

// runStr folds rows [lo, hi) with AppendKey-encoded string group keys —
// the general path, grouping-compatible with the scalar fold by sharing
// its key encoding.
func (bx *batchExec) runStr(lo, hi int, gov *governor) bPart[string] {
	part := bPart[string]{groups: make(map[string]*bGroup), passed: make([]int64, len(bx.preds))}
	pool := batch.Default
	sel := pool.GetSel(batch.Size)
	defer func() { pool.PutSel(sel) }()
	keyBuf := pool.GetBytes(64)
	defer func() { pool.PutBytes(keyBuf) }()

	foldRow := func(r int) error {
		keyBuf = keyBuf[:0]
		for _, get := range bx.keyGet {
			keyBuf = value.AppendKey(keyBuf, get(r))
		}
		g, ok := part.groups[string(keyBuf)]
		if !ok {
			if err := gov.addGroups(1); err != nil {
				return err
			}
			var err error
			if g, err = bx.newGroup(r); err != nil {
				return err
			}
			k := string(keyBuf)
			part.groups[k] = g
			part.order = append(part.order, k)
		}
		part.folded++
		return bx.foldInto(g, r)
	}

	lr := lazyRow{tab: bx.tab}
	for base := lo; base < hi; base += batch.Size {
		bn := hi - base
		if bn > batch.Size {
			bn = batch.Size
		}
		if bx.vector {
			sel = bx.selectBatch(base, bn, sel, part.passed)
			for _, r := range sel {
				if part.err = foldRow(int(r)); part.err != nil {
					return part
				}
			}
		} else {
			// Interleaved mode: a predicate that can error forces per-row
			// pred-then-fold order, so the first error is the scalar one.
			for r := base; r < base+bn; r++ {
				lr.r = r
				pass := true
				for pi, p := range bx.preds {
					v, err := p.Eval(&lr)
					if err != nil {
						part.err = err
						return part
					}
					if !v.Truthy() {
						pass = false
						break
					}
					part.passed[pi]++
				}
				if !pass {
					continue
				}
				if part.err = foldRow(r); part.err != nil {
					return part
				}
			}
		}
		// One governor charge per batch: same stride, totals, and typed
		// errors as the scalar scan.
		if part.err = gov.addScanned(int64(bn)); part.err != nil {
			return part
		}
	}
	return part
}

// runInt folds rows [lo, hi) with the fixed-width integer group key — no
// key encoding or string allocation on the hot path.
func (bx *batchExec) runInt(lo, hi int, gov *governor) bPart[intKey] {
	part := bPart[intKey]{groups: make(map[intKey]*bGroup), passed: make([]int64, len(bx.preds))}
	pool := batch.Default
	sel := pool.GetSel(batch.Size)
	defer func() { pool.PutSel(sel) }()

	foldRow := func(r int) error {
		var k intKey
		for i, ints := range bx.keyInts {
			if bx.keyNull[i](r) {
				k.mask |= 1 << i
			} else {
				k.v[i] = ints[r]
			}
		}
		g, ok := part.groups[k]
		if !ok {
			if err := gov.addGroups(1); err != nil {
				return err
			}
			var err error
			if g, err = bx.newGroup(r); err != nil {
				return err
			}
			part.groups[k] = g
			part.order = append(part.order, k)
		}
		part.folded++
		return bx.foldInto(g, r)
	}

	lr := lazyRow{tab: bx.tab}
	for base := lo; base < hi; base += batch.Size {
		bn := hi - base
		if bn > batch.Size {
			bn = batch.Size
		}
		if bx.vector {
			sel = bx.selectBatch(base, bn, sel, part.passed)
			for _, r := range sel {
				if part.err = foldRow(int(r)); part.err != nil {
					return part
				}
			}
		} else {
			for r := base; r < base+bn; r++ {
				lr.r = r
				pass := true
				for pi, p := range bx.preds {
					v, err := p.Eval(&lr)
					if err != nil {
						part.err = err
						return part
					}
					if !v.Truthy() {
						pass = false
						break
					}
					part.passed[pi]++
				}
				if !pass {
					continue
				}
				if part.err = foldRow(r); part.err != nil {
					return part
				}
			}
		}
		if part.err = gov.addScanned(int64(bn)); part.err != nil {
			return part
		}
	}
	return part
}

// batchRun orchestrates one fold: sequential or partitioned-parallel, with
// the same spans, chaos points, governor plumbing, panic containment, and
// deterministic merge order as the scalar paths in parallel.go.
func batchRun[K comparable](bx *batchExec, run func(lo, hi int, gov *governor) bPart[K], keyExprs []expr.Expr, specs []aggSpec, ec execCtx) ([][]value.Value, error) {
	nRows := bx.tab.NumRows()
	workers := resolveWorkers(ec.par)
	if ec.par <= 0 && nRows < autoParallelMinRows {
		workers = 1
	}
	if workers > nRows {
		workers = nRows
	}
	if workers < 1 {
		workers = 1
	}

	if workers <= 1 {
		sp := ec.span.NewChild("fold")
		sp.Attr("kernel", "batch")
		t0 := time.Now()
		part := run(0, nRows, ec.gov)
		kernelNs := time.Since(t0).Nanoseconds()
		sp.End()
		if part.err == nil {
			bx.fillStats(int64(nRows), part.passed, kernelNs)
		}
		if sp != nil {
			sp.AddChild(operatorSpans(bx.in))
		}
		if part.err != nil {
			sp.SetRows(-1, 0)
			return nil, part.err
		}
		out, err := emitParts(bx, []bPart[K]{part}, keyExprs, specs)
		sp.SetRows(-1, int64(len(out)))
		return out, err
	}

	mAggParallel.Inc()
	if ec.rec != nil {
		ec.rec.parallel = true
	}
	// Unlike the scalar parallel path there is no materialized copy — the
	// workers read disjoint row ranges of the immutable column vectors —
	// so the operator subtree's time is spent inside the workers and the
	// standalone operator spans carry rows only.
	if ec.span != nil {
		ec.span.AddChild(operatorSpans(bx.in))
	}
	fan := ec.span.NewChild("partition fan-out")
	if fan != nil {
		fan.Concurrent = true
		fan.AttrInt("workers", int64(workers))
		fan.Attr("kernel", "batch")
	}
	cancel := func() {}
	wgov := ec.gov
	if ec.gov != nil && ec.gov.ctx != nil {
		var wctx context.Context
		wctx, cancel = context.WithCancel(ec.gov.ctx)
		defer cancel()
		wgov = ec.gov.withCtx(wctx)
	}
	parts := make([]bPart[K], workers)
	chunk := (nRows + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if lo > nRows {
			lo = nRows
		}
		if hi > nRows {
			hi = nRows
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			var ws *obs.Span
			if fan != nil {
				ws = fan.NewChild(fmt.Sprintf("worker %d/%d", w+1, workers))
			}
			defer func() {
				if r := recover(); r != nil {
					parts[w].err = NewPanicError(fmt.Sprintf("batch worker %d/%d", w+1, workers), r)
				}
				if parts[w].err != nil {
					ws.Attr("error", parts[w].err.Error())
					cancel()
				}
				ws.End()
				ws.SetRows(int64(hi-lo), int64(len(parts[w].order)))
			}()
			if err := chaos.HitN(chaos.AggWorker, w+1); err != nil {
				parts[w].err = err
				return
			}
			parts[w] = run(lo, hi, wgov)
		}(w, lo, hi)
	}
	wg.Wait()
	fan.End()

	ms := ec.span.NewChild("merge")
	defer ms.End()
	if err := batchWorkerError(parts); err != nil {
		return nil, err
	}
	if err := chaos.Hit(chaos.AggMerge); err != nil {
		return nil, err
	}
	passed := make([]int64, len(bx.preds))
	for pi := range parts {
		for i, n := range parts[pi].passed {
			passed[i] += n
		}
	}
	bx.fillStats(int64(nRows), passed, 0)
	out, err := emitParts(bx, parts, keyExprs, specs)
	if err != nil {
		return nil, err
	}
	ms.SetRows(int64(nRows), int64(len(out)))
	return out, nil
}

// emitParts merges partition partials in ascending partition order (which
// reproduces the sequential first-appearance order — see parallel.go) and
// renders the output rows.
func emitParts[K comparable](bx *batchExec, parts []bPart[K], keyExprs []expr.Expr, specs []aggSpec) ([][]value.Value, error) {
	var merged map[K]*bGroup
	var order []K
	if len(parts) == 1 {
		merged, order = parts[0].groups, parts[0].order
	} else {
		merged = make(map[K]*bGroup)
		for pi := range parts {
			p := &parts[pi]
			for _, k := range p.order {
				g := p.groups[k]
				tgt, ok := merged[k]
				if !ok {
					merged[k] = g
					order = append(order, k)
					continue
				}
				for i := range tgt.accs {
					if err := tgt.accs[i].merge(g.accs[i]); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	if len(keyExprs) == 0 && len(order) == 0 {
		// A global aggregate over zero input rows still yields one row,
		// exactly as the scalar fold's empty-input group.
		g := &bGroup{accs: make([]accumulator, len(specs))}
		for i, s := range specs {
			acc, err := newAccumulator(s.call)
			if err != nil {
				return nil, err
			}
			g.accs[i] = acc
		}
		var zero K
		merged[zero] = g
		order = append(order, zero)
	}
	out := make([][]value.Value, 0, len(order))
	for _, k := range order {
		g := merged[k]
		row := make([]value.Value, 0, len(g.keyVals)+len(g.accs))
		row = append(row, g.keyVals...)
		for _, acc := range g.accs {
			row = append(row, acc.result())
		}
		out = append(out, row)
	}
	return out, nil
}

// batchWorkerError mirrors workerError for the generic partials: the
// lowest-numbered partition's real error wins; sibling cancellations are
// reported only when nothing else failed.
func batchWorkerError[K comparable](parts []bPart[K]) error {
	var firstCancel error
	for pi := range parts {
		err := parts[pi].err
		if err == nil {
			continue
		}
		var c *CancelledError
		if errors.As(err, &c) {
			if firstCancel == nil {
				firstCancel = err
			}
			continue
		}
		return err
	}
	return firstCancel
}

// fillStats backfills the per-operator instrumentation (allocated by
// instrumentIter when the statement is traced) that the kernels bypassed:
// the scan's row count and each filter's survivor count. ns is the kernel
// wall charged inclusively down the chain in sequential mode; the parallel
// path passes 0 (its time lives in the worker spans).
func (bx *batchExec) fillStats(nRows int64, passed []int64, ns int64) {
	if bx.scan.stats != nil {
		bx.scan.stats.rows = nRows
		bx.scan.stats.ns = ns
	}
	for i, f := range bx.filters {
		if f.stats != nil && i < len(passed) {
			f.stats.rows = passed[i]
			f.stats.ns = ns
		}
	}
}
