package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/diag"
	"repro/internal/expr"
	"repro/internal/leakcheck"
	"repro/internal/storage"
	"repro/internal/value"
)

// countdownCtx is a deterministic cancellation source: Err returns nil for
// the first `after` calls, context.Canceled afterwards. It makes
// cancellation latency measurable in governor strides instead of wall time.
type countdownCtx struct {
	context.Context
	mu    sync.Mutex
	calls int
	after int
}

func (c *countdownCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.calls++
	if c.calls > c.after {
		return context.Canceled
	}
	return nil
}

// bigGroupTable builds an n-row table with a small group column.
func bigGroupTable(t *testing.T, n int) *storage.Table {
	t.Helper()
	tab, err := storage.NewTable("big", storage.Schema{
		{Name: "g", Type: storage.TypeInt},
		{Name: "v", Type: storage.TypeInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	row := make([]value.Value, 2)
	for i := 0; i < n; i++ {
		row[0] = value.NewInt(int64(i % 8))
		row[1] = value.NewInt(int64(i))
		if _, err := tab.AppendRow(row); err != nil {
			t.Fatal(err)
		}
	}
	return tab
}

// TestCancelBoundedRows is the cancellation-latency contract: a cancelled
// 1M-row aggregation must stop within a bounded number of rows after the
// cancel, not fold to completion. The countdown context cancels after a
// fixed number of governor checks; the scanned counter then bounds how far
// the scan ran past it in units of govStride.
func TestCancelBoundedRows(t *testing.T) {
	const nRows = 1_000_000
	const after = 20
	tab := bigGroupTable(t, nRows)

	ctx := &countdownCtx{Context: context.Background(), after: after}
	gov := newGovernor(ctx, Limits{})
	scan := newTableScan(tab, "big")
	scan.gov = gov

	keyExpr, err := expr.Bind(expr.QCol("", "g"), expr.SchemaResolver([]string{"g", "v"}))
	if err != nil {
		t.Fatal(err)
	}
	argExpr, err := expr.Bind(expr.QCol("", "v"), expr.SchemaResolver([]string{"g", "v"}))
	if err != nil {
		t.Fatal(err)
	}
	specs := []aggSpec{{call: &expr.AggCall{Fn: expr.AggSum, Arg: expr.QCol("", "v")}, arg: argExpr}}

	_, err = hashAggregateSeq(scan, []expr.Expr{keyExpr}, specs, gov)
	var ce *CancelledError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want CancelledError", err)
	}
	if ce.Code() != diag.CodeCancelled {
		t.Errorf("code = %s, want %s", ce.Code(), diag.CodeCancelled)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("errors.Is(err, context.Canceled) = false; cause must be preserved")
	}
	// Every check consumes one countdown call, and checks happen at least
	// once per govStride scanned rows — so the scan cannot have run more
	// than (after+1) strides before seeing the cancellation.
	scanned := gov.scanned()
	if scanned == 0 {
		t.Fatal("scan never charged the governor")
	}
	if max := int64(after+1) * govStride; scanned > max {
		t.Errorf("scanned %d rows after cancel budget, want <= %d (bounded latency)", scanned, max)
	}
	if scanned >= nRows {
		t.Errorf("scan ran to completion (%d rows) despite cancellation", scanned)
	}
}

// TestDeadlineStopsLargeAggregation exercises the public path: a
// per-statement deadline from Limits stops a 1M-row parallel aggregation
// with the typed PCT201 error, well before the statement could finish.
func TestDeadlineStopsLargeAggregation(t *testing.T) {
	defer leakcheck.Check(t)()
	e := New(storage.NewCatalog())
	mustExec(t, e, `CREATE TABLE big (g INTEGER, v INTEGER)`)
	tab, err := e.Catalog().Get("big")
	if err != nil {
		t.Fatal(err)
	}
	row := make([]value.Value, 2)
	for i := 0; i < 1_000_000; i++ {
		row[0] = value.NewInt(int64(i % 64))
		row[1] = value.NewInt(int64(i))
		if _, err := tab.AppendRow(row); err != nil {
			t.Fatal(err)
		}
	}
	ctx := WithLimits(context.Background(), Limits{Timeout: time.Millisecond})
	_, err = e.ExecSQLCtxP(ctx, "SELECT g, sum(v) FROM big GROUP BY g", 4)
	var ce *CancelledError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want CancelledError", err)
	}
	if ce.Code() != diag.CodeDeadline {
		t.Errorf("code = %s, want %s (deadline)", ce.Code(), diag.CodeDeadline)
	}
}

// TestLimitErrorsCarryCodes drives each budget to its typed error.
func TestLimitErrorsCarryCodes(t *testing.T) {
	cases := []struct {
		name string
		lim  Limits
		sql  string
		code string
	}{
		{"rows", Limits{MaxRows: 5}, "SELECT * FROM sales", diag.CodeRowLimit},
		{"groups", Limits{MaxGroups: 2}, "SELECT state, city, sum(salesAmt) FROM sales GROUP BY state, city", diag.CodeGroupLimit},
		{"bytes", Limits{MaxBytes: 16}, "SELECT * FROM sales", diag.CodeByteBudget},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e := newTestEngine(t)
			e.SetLimits(tc.lim)
			_, err := e.ExecSQL(tc.sql)
			var le *LimitError
			if !errors.As(err, &le) {
				t.Fatalf("err = %v, want LimitError", err)
			}
			if le.Code() != tc.code {
				t.Errorf("code = %s, want %s", le.Code(), tc.code)
			}
		})
	}
}

// TestContextLimitsOverrideEngineDefaults: WithLimits beats SetLimits.
func TestContextLimitsOverrideEngineDefaults(t *testing.T) {
	e := newTestEngine(t)
	e.SetLimits(Limits{MaxRows: 1})
	ctx := WithLimits(context.Background(), Limits{}) // unlimited for this call
	if _, err := e.ExecSQLCtx(ctx, "SELECT * FROM sales"); err != nil {
		t.Fatalf("context override did not lift the engine default: %v", err)
	}
	if _, err := e.ExecSQL("SELECT * FROM sales"); err == nil {
		t.Fatal("engine default limit not enforced without an override")
	}
}

// TestPreCancelledContext: a context dead before dispatch still yields the
// typed error and runs nothing.
func TestPreCancelledContext(t *testing.T) {
	e := newTestEngine(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := e.ExecSQLCtx(ctx, "SELECT * FROM sales")
	var ce *CancelledError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v, want CancelledError", err)
	}
}

// TestCancelledDMLLeavesTableUntouched: cancellation mid-INSERT…SELECT must
// roll the target back to its pre-statement row count (statement atomicity).
func TestCancelledDMLLeavesTableUntouched(t *testing.T) {
	e := newTestEngine(t)
	mustExec(t, e, `CREATE TABLE dst (state VARCHAR, total INTEGER)`)
	mustExec(t, e, `INSERT INTO dst VALUES ('seed', 0)`)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := e.ExecSQLCtx(ctx, "INSERT INTO dst SELECT state, sum(salesAmt) FROM sales GROUP BY state")
	if err == nil {
		t.Fatal("cancelled INSERT succeeded")
	}
	tab, err := e.Catalog().Get("dst")
	if err != nil {
		t.Fatal(err)
	}
	if tab.NumRows() != 1 {
		t.Errorf("dst has %d rows after cancelled INSERT, want 1 (atomic rollback)", tab.NumRows())
	}
}

// TestWorkerErrorDeterministic: with a governor installed, the parallel
// fan-out reports the lowest partition's real error even though siblings are
// cancelled racing it.
func TestWorkerErrorDeterministic(t *testing.T) {
	parts := []partResult{
		{err: &CancelledError{cause: context.Canceled}},
		{err: fmt.Errorf("boom in partition 2")},
		{err: &CancelledError{cause: context.Canceled}},
	}
	if err := workerError(parts); err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("workerError = %v, want the real error", err)
	}
	parts = []partResult{
		{err: &CancelledError{cause: context.Canceled}},
		{},
	}
	var ce *CancelledError
	if err := workerError(parts); !errors.As(err, &ce) {
		t.Errorf("workerError = %v, want the cancellation when nothing else failed", err)
	}
}
