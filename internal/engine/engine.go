package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/sqlparse"
	"repro/internal/storage"
	"repro/internal/value"
)

// Engine executes SQL statements against a catalog.
type Engine struct {
	cat *storage.Catalog
	// par is the default parallelism for Execute/ExecSQL: 0 = one worker
	// per CPU (gated by an input-size threshold), 1 = sequential, n > 1 =
	// exactly n workers. Atomic because concurrent submitters share one
	// engine (see TestConcurrentPercentageQueries).
	par atomic.Int32
	// sink receives the finished span tree of every statement; slow is the
	// slow-query log. Both are atomic so concurrent submitters can race
	// reconfiguration safely (see trace.go).
	sink atomic.Pointer[traceSink]
	slow atomic.Pointer[slowLog]
	// limits is the engine-wide default resource budget applied to every
	// statement that does not carry its own via WithLimits (see
	// lifecycle.go). Atomic for the same reason as par.
	limits atomic.Pointer[Limits]
	// dml is the installed DMLHook (nil = none). Atomic so installing or
	// removing the hook races safely with statements in flight; the hook
	// itself is invoked synchronously on the writer's goroutine.
	dml atomic.Pointer[dmlHookBox]
	// intro is the introspection state (nil = off); see introspect.go.
	// Atomic so enabling/disabling races safely with statements in flight.
	intro atomic.Pointer[introState]
	// batchOff disables the vectorized aggregation fast path (batch.go).
	// Stored inverted so the zero value is "batch on"; atomic for the same
	// concurrent-submitter reason as par.
	batchOff atomic.Bool
	// virt maps lowercased names to registered read-only virtual relations
	// (the pct_stat_* catalog). Guarded by virtMu; registration is rare and
	// the per-statement lookup is a short read-locked map probe.
	virtMu sync.RWMutex
	virt   map[string]*virtualDef
}

// DMLHook observes committed data mutations, the raw signal a derived-state
// cache (the planner's summary cache) needs to invalidate or incrementally
// maintain itself. Hooks fire after the statement commits — a rolled-back
// statement is invisible — and on the statement's own goroutine, so an
// implementation must be cheap and must not call back into the engine's
// write path.
type DMLHook interface {
	// OnInsert reports a committed append of rows [from, to) to table: the
	// appended range is the statement's delta, addressable by row id until
	// the next mutation. preEpoch is the table's modification epoch before
	// the first appended row and postEpoch the epoch after commit, so an
	// incremental consumer can prove the delta extends exactly the state it
	// last observed — any unhooked write in between (a direct storage
	// mutation, an in-place update) moves preEpoch past what the consumer
	// covered and must force a rebuild instead of a merge.
	OnInsert(table string, from, to int, preEpoch, postEpoch int64)
	// OnMutate reports a committed mutation that is not a pure append:
	// op is "update", "delete", or "drop". No delta is available; derived
	// state over the table must rebuild.
	OnMutate(table string, op string)
}

// dmlHookBox wraps the interface so a nil hook can be stored atomically.
type dmlHookBox struct{ h DMLHook }

// SetDMLHook installs (or, with nil, removes) the engine's DML hook.
// At most one hook is active at a time; the last call wins.
func (e *Engine) SetDMLHook(h DMLHook) {
	if h == nil {
		e.dml.Store(nil)
		return
	}
	e.dml.Store(&dmlHookBox{h: h})
}

// notifyInsert fires the hook for a committed append of rows [from, to).
// Empty appends are suppressed: they change nothing a cache could observe.
func (e *Engine) notifyInsert(table string, from, to int, preEpoch, postEpoch int64) {
	if b := e.dml.Load(); b != nil && to > from {
		b.h.OnInsert(table, from, to, preEpoch, postEpoch)
	}
}

// notifyMutate fires the hook for a committed non-append mutation.
func (e *Engine) notifyMutate(table, op string) {
	if b := e.dml.Load(); b != nil {
		b.h.OnMutate(table, op)
	}
}

// New returns an engine over the catalog. The default parallelism is 1
// (sequential); callers opt in via SetParallelism or the per-statement
// ExecuteP/ExecSQLP entry points.
func New(cat *storage.Catalog) *Engine {
	e := &Engine{cat: cat}
	e.par.Store(1)
	return e
}

// SetParallelism sets the default parallelism used by Execute and ExecSQL:
// 0 = one worker per CPU, 1 = sequential, n > 1 = exactly n workers.
func (e *Engine) SetParallelism(p int) { e.par.Store(int32(p)) }

// Parallelism returns the engine's default parallelism.
func (e *Engine) Parallelism() int { return int(e.par.Load()) }

// SetBatch toggles the vectorized batch-execution fast path (on by
// default). Off forces every statement down the row-at-a-time scalar path
// — the reference the differential suite and pctbench compare against.
func (e *Engine) SetBatch(on bool) { e.batchOff.Store(!on) }

// BatchEnabled reports whether the vectorized fast path is enabled.
func (e *Engine) BatchEnabled() bool { return !e.batchOff.Load() }

// Catalog returns the engine's catalog.
func (e *Engine) Catalog() *storage.Catalog { return e.cat }

// Result is the outcome of a statement: rows and column names for SELECT,
// the affected-row count for DML.
type Result struct {
	Columns  []string
	Rows     [][]value.Value
	Affected int
}

// Execute runs one parsed statement with the engine's default parallelism.
func (e *Engine) Execute(stmt sqlparse.Statement) (*Result, error) {
	return e.ExecuteP(stmt, e.Parallelism())
}

// ExecuteCtx is Execute under a context: cancelling ctx stops the statement
// cooperatively with a typed CancelledError, and any Limits carried by ctx
// (WithLimits) or installed engine-wide (SetLimits) are enforced.
func (e *Engine) ExecuteCtx(ctx context.Context, stmt sqlparse.Statement) (*Result, error) {
	return e.ExecuteCtxP(ctx, stmt, e.Parallelism())
}

// ExecuteP runs one parsed statement with an explicit parallelism that
// overrides the engine default for this statement only (0 = one worker per
// CPU, 1 = sequential, n > 1 = n workers). Only aggregation consumes the
// setting; other operators run as before.
func (e *Engine) ExecuteP(stmt sqlparse.Statement, parallelism int) (*Result, error) {
	return e.ExecuteCtxP(context.Background(), stmt, parallelism)
}

// ExecuteCtxP is ExecuteP under a context (see ExecuteCtx).
func (e *Engine) ExecuteCtxP(ctx context.Context, stmt sqlparse.Statement, parallelism int) (*Result, error) {
	var root *obs.Span
	if e.tracing() {
		root = obs.NewSpan("statement")
		root.Attr("sql", stmt.String())
	}
	t0 := time.Now()
	res, err := e.runStatement(ctx, stmt, execCtx{par: parallelism, span: root})
	e.finishStatement(stmt, root, time.Since(t0), err)
	return res, err
}

// runStatement executes one statement under full lifecycle governance: it
// resolves the effective limits, applies the per-statement deadline, builds
// the governor the long loops check, contains panics from the dispatch
// itself, and classifies the outcome in metrics. ec.span/ec.par come from
// the caller; ec.gov is installed here.
func (e *Engine) runStatement(ctx context.Context, stmt sqlparse.Statement, ec execCtx) (res *Result, err error) {
	ec.batch = !e.batchOff.Load()
	lim := e.effectiveLimits(ctx)
	if lim.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, lim.Timeout)
		defer cancel()
	}
	// Introspection opens a statement record before the governor is built so
	// the record can observe the governor's live counters. A nil rec means
	// recording is off or the statement reads a virtual relation (the
	// self-observation guard in beginIntro).
	var rec *stmtRec
	if in := e.intro.Load(); in != nil && !introSkipped(ctx) {
		rec = e.beginIntro(in, stmt)
	}
	if ctx.Done() != nil || !lim.zero() || rec != nil {
		ec.gov = newGovernor(ctx, lim)
	}
	if rec != nil {
		rec.attach(ec.gov)
		if ec.span == nil {
			// No sink: build a private span tree so flight records still get
			// their per-stage breakdown.
			ec.span = obs.NewSpan("statement")
			rec.ownSpan = true
		}
		ec.rec = rec
		// Registered before the recovery defer below, so it runs after it
		// (LIFO) and records the post-recovery result and error.
		defer func() { rec.finish(ec.span, res, err) }()
	}
	defer func() {
		if r := recover(); r != nil {
			res, err = nil, NewPanicError("statement dispatch", r)
			// Unwinding skipped the orderly End calls between the panic site
			// and here; close what it left open so the trace stays well-formed.
			ec.span.EndAll("panic-unwind")
		}
		classifyOutcome(err)
	}()
	// A context that died before we started still gets the typed error.
	if err := ec.gov.check(); err != nil {
		return nil, err
	}
	return e.exec(stmt, ec)
}

// classifyOutcome bumps the lifecycle metrics for a finished statement.
// Panics are counted at recovery (the panic may have been contained in a
// worker, not here).
func classifyOutcome(err error) {
	if err == nil {
		return
	}
	var c *CancelledError
	if errors.As(err, &c) {
		mCancelled.Inc()
		return
	}
	var l *LimitError
	if errors.As(err, &l) {
		mLimitsExceeded.Inc()
	}
}

// ExecuteIn runs one parsed statement as a child stage of parent: the
// statement's span tree attaches under parent instead of going to the trace
// sink, so multi-statement plans (the core package's generated SQL) nest
// their statements inside one plan trace. A nil parent disables tracing for
// the statement; metrics and the slow-query log still apply.
func (e *Engine) ExecuteIn(stmt sqlparse.Statement, parallelism int, parent *obs.Span) (*Result, error) {
	return e.ExecuteCtxIn(context.Background(), stmt, parallelism, parent)
}

// ExecuteCtxIn is ExecuteIn under a context (see ExecuteCtx).
func (e *Engine) ExecuteCtxIn(ctx context.Context, stmt sqlparse.Statement, parallelism int, parent *obs.Span) (*Result, error) {
	sp := parent.NewChild("statement")
	sp.Attr("sql", stmt.String())
	t0 := time.Now()
	res, err := e.runStatement(ctx, stmt, execCtx{par: parallelism, span: sp})
	d := time.Since(t0)
	sp.SetDuration(d)
	if res != nil {
		sp.SetRows(-1, int64(max(len(res.Rows), res.Affected)))
	}
	mStatements.Inc()
	mStatementNs.Observe(int64(d))
	if err != nil {
		mErrors.Inc()
		sp.Attr("error", err.Error())
	}
	if l := e.slow.Load(); l != nil {
		l.record(d, stmt.String())
	}
	return res, err
}

// exec dispatches one statement under an execution context.
func (e *Engine) exec(stmt sqlparse.Statement, ec execCtx) (*Result, error) {
	switch s := stmt.(type) {
	case *sqlparse.Select:
		return e.execSelect(s, ec)
	case *sqlparse.Insert:
		return e.execInsert(s, ec)
	case *sqlparse.Update:
		return e.execUpdate(s, ec)
	case *sqlparse.CreateTable:
		return e.execCreateTable(s)
	case *sqlparse.CreateIndex:
		return e.execCreateIndex(s)
	case *sqlparse.DropTable:
		return e.execDropTable(s)
	case *sqlparse.Delete:
		return e.execDelete(s, ec)
	case *sqlparse.Explain:
		return e.execExplain(s, ec)
	default:
		return nil, fmt.Errorf("engine: unsupported statement %T", stmt)
	}
}

// ExecSQL parses and runs a script (one or more statements separated by
// semicolons) with the engine's default parallelism and returns the last
// statement's result.
func (e *Engine) ExecSQL(src string) (*Result, error) {
	return e.ExecSQLP(src, e.Parallelism())
}

// ExecSQLCtx is ExecSQL under a context (see ExecuteCtx).
func (e *Engine) ExecSQLCtx(ctx context.Context, src string) (*Result, error) {
	return e.ExecSQLCtxP(ctx, src, e.Parallelism())
}

// ExecSQLP is ExecSQL with an explicit per-script parallelism override.
func (e *Engine) ExecSQLP(src string, parallelism int) (*Result, error) {
	return e.ExecSQLCtxP(context.Background(), src, parallelism)
}

// ExecSQLCtxP is ExecSQLP under a context (see ExecuteCtx).
func (e *Engine) ExecSQLCtxP(ctx context.Context, src string, parallelism int) (*Result, error) {
	stmts, err := sqlparse.ParseAll(src)
	if err != nil {
		return nil, err
	}
	var last *Result
	for _, s := range stmts {
		last, err = e.ExecuteCtxP(ctx, s, parallelism)
		if err != nil {
			return nil, fmt.Errorf("%w\n  in: %s", err, s)
		}
	}
	return last, nil
}

// ExecSQLIn parses and runs a script with every statement traced as a child
// of parent: a "parse" span covers lexing and parsing, then one statement
// span per statement (see ExecuteIn). It returns the last statement's
// result, like ExecSQLP.
func (e *Engine) ExecSQLIn(src string, parallelism int, parent *obs.Span) (*Result, error) {
	return e.ExecSQLCtxIn(context.Background(), src, parallelism, parent)
}

// ExecSQLCtxIn is ExecSQLIn under a context (see ExecuteCtx).
func (e *Engine) ExecSQLCtxIn(ctx context.Context, src string, parallelism int, parent *obs.Span) (*Result, error) {
	ps := parent.NewChild("parse")
	stmts, err := sqlparse.ParseAll(src)
	ps.SetRows(-1, int64(len(stmts)))
	ps.End()
	if err != nil {
		return nil, err
	}
	var last *Result
	for _, s := range stmts {
		last, err = e.ExecuteCtxIn(ctx, s, parallelism, parent)
		if err != nil {
			return nil, fmt.Errorf("%w\n  in: %s", err, s)
		}
	}
	return last, nil
}

// Format renders the result as an aligned text table for CLI output.
func (r *Result) Format() string {
	if len(r.Columns) == 0 {
		return fmt.Sprintf("(%d rows affected)\n", r.Affected)
	}
	widths := make([]int, len(r.Columns))
	for i, c := range r.Columns {
		widths[i] = len(c)
	}
	cells := make([][]string, len(r.Rows))
	// pctvet:ok pure formatting of a result the statement already governed; no governor in scope
	for ri, row := range r.Rows {
		cells[ri] = make([]string, len(row))
		for ci, v := range row {
			s := v.String()
			cells[ri][ci] = s
			if ci < len(widths) && len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(vals []string) {
		for i, s := range vals {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(s)
			for p := len(s); p < widths[i]; p++ {
				sb.WriteByte(' ')
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(r.Columns)
	sep := make([]string, len(r.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range cells {
		writeRow(row)
	}
	sb.WriteString(fmt.Sprintf("(%d rows)\n", len(r.Rows)))
	return sb.String()
}
