package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/expr"
	"repro/internal/leakcheck"
	"repro/internal/storage"
	"repro/internal/value"
)

// sameResult asserts two results are identical: same columns, same rows in
// the same order, values compared exactly (the parallel path's pinned merge
// order promises byte-identical output, so no tolerance is used; test data
// keeps sums exact by using integers).
func sameResult(t *testing.T, label string, a, b *Result) {
	t.Helper()
	if len(a.Columns) != len(b.Columns) {
		t.Fatalf("%s: column count %d vs %d", label, len(a.Columns), len(b.Columns))
	}
	if len(a.Rows) != len(b.Rows) {
		t.Fatalf("%s: row count %d vs %d", label, len(a.Rows), len(b.Rows))
	}
	for ri := range a.Rows {
		for ci := range a.Rows[ri] {
			av, bv := a.Rows[ri][ci], b.Rows[ri][ci]
			if av.IsNull() != bv.IsNull() || (!av.IsNull() && value.Compare(av, bv) != 0) {
				t.Fatalf("%s: row %d col %d: %v vs %v", label, ri, ci, av, bv)
			}
		}
	}
}

// randAggEngine builds a table with enough groups and NULLs to exercise
// every merge path, including groups confined to single partitions.
func randAggEngine(t *testing.T, n int, seed int64) *Engine {
	t.Helper()
	e := New(storage.NewCatalog())
	mustExec(t, e, "CREATE TABLE f (g1 INTEGER, g2 VARCHAR, a INTEGER, b INTEGER)")
	tab, _ := e.Catalog().Get("f")
	rng := rand.New(rand.NewSource(seed))
	strs := []string{"x", "y", "z", "w", "v"}
	for i := 0; i < n; i++ {
		row := []value.Value{
			value.NewInt(int64(rng.Intn(17))),
			value.NewString(strs[rng.Intn(len(strs))]),
			value.NewInt(int64(rng.Intn(200) - 50)),
			value.NewInt(int64(rng.Intn(7))),
		}
		if rng.Intn(9) == 0 {
			row[2] = value.Null
		}
		if rng.Intn(23) == 0 {
			row[0] = value.Null
		}
		if _, err := tab.AppendRow(row); err != nil {
			t.Fatal(err)
		}
	}
	return e
}

func TestParallelAggregationMatchesSequential(t *testing.T) {
	defer leakcheck.Check(t)()
	queries := []string{
		"SELECT g1, g2, sum(a), count(*), count(a), min(a), max(a), avg(a) FROM f GROUP BY g1, g2",
		"SELECT g1, sum(a), count(DISTINCT b) FROM f GROUP BY g1",
		"SELECT sum(a), count(*), avg(a) FROM f",
		"SELECT g2, sum(a) FROM f WHERE a > 0 GROUP BY g2",
		"SELECT g1, count(*) FROM f GROUP BY g1 HAVING count(*) > 10",
	}
	for _, n := range []int{0, 1, 3, 500} {
		e := randAggEngine(t, n, int64(n)+1)
		for _, q := range queries {
			seq, err := e.ExecSQLP(q, 1)
			if err != nil {
				t.Fatalf("n=%d seq %s: %v", n, q, err)
			}
			for _, p := range []int{0, 2, 3, 8} {
				par, err := e.ExecSQLP(q, p)
				if err != nil {
					t.Fatalf("n=%d P=%d %s: %v", n, p, q, err)
				}
				sameResult(t, fmt.Sprintf("n=%d P=%d %s", n, p, q), seq, par)
			}
		}
	}
}

func TestParallelPreservesFirstAppearanceOrder(t *testing.T) {
	// Groups that first appear late in the input must stay late in the
	// output regardless of which partition folds them first.
	e := New(storage.NewCatalog())
	mustExec(t, e, "CREATE TABLE f (g INTEGER, a INTEGER)")
	tab, _ := e.Catalog().Get("f")
	// 100 groups, introduced in descending order: 99, 98, ..., 0, then a
	// tail revisiting them all ascending.
	for g := 99; g >= 0; g-- {
		for r := 0; r < 3; r++ {
			if _, err := tab.AppendRow([]value.Value{value.NewInt(int64(g)), value.NewInt(int64(r))}); err != nil {
				t.Fatal(err)
			}
		}
	}
	for g := 0; g < 100; g++ {
		if _, err := tab.AppendRow([]value.Value{value.NewInt(int64(g)), value.NewInt(10)}); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range []int{2, 7, 8, 64} {
		res, err := e.ExecSQLP("SELECT g, sum(a) FROM f GROUP BY g", p)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 100 {
			t.Fatalf("P=%d: got %d groups", p, len(res.Rows))
		}
		for i, row := range res.Rows {
			if got := row[0].Int(); got != int64(99-i) {
				t.Fatalf("P=%d: output position %d holds group %d, want %d", p, i, got, 99-i)
			}
			if got := row[1].Int(); got != 13 { // head rows 0+1+2, plus one tail row of 10
				t.Fatalf("P=%d: group %d sum = %d, want 13", p, 99-i, got)
			}
		}
	}
}

func TestParallelForcedOnTinyInput(t *testing.T) {
	// Explicit parallelism > 1 must take the partitioned path even below
	// the auto threshold; worker count is capped by the row count.
	e := newTestEngine(t)
	seq, err := e.ExecSQLP("SELECT state, sum(salesAmt), count(*) FROM sales GROUP BY state", 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{2, 8, 1000} {
		par, err := e.ExecSQLP("SELECT state, sum(salesAmt), count(*) FROM sales GROUP BY state", p)
		if err != nil {
			t.Fatal(err)
		}
		sameResult(t, fmt.Sprintf("P=%d", p), seq, par)
	}
}

func TestParallelEmptyInputGlobalGroup(t *testing.T) {
	e := New(storage.NewCatalog())
	mustExec(t, e, "CREATE TABLE empty (a INTEGER)")
	for _, p := range []int{1, 2, 8} {
		res, err := e.ExecSQLP("SELECT sum(a), count(*), count(a), min(a), avg(a) FROM empty", p)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Rows) != 1 {
			t.Fatalf("P=%d: want the global group row, got %d rows", p, len(res.Rows))
		}
		r := res.Rows[0]
		if !r[0].IsNull() || r[1].Int() != 0 || r[2].Int() != 0 || !r[3].IsNull() || !r[4].IsNull() {
			t.Fatalf("P=%d: global group = %v", p, r)
		}
	}
}

func TestParallelErrorPropagation(t *testing.T) {
	// A type error deep in one partition must surface as the same error the
	// sequential path reports — and the failed fan-out must reap its workers.
	defer leakcheck.Check(t)()
	e := New(storage.NewCatalog())
	mustExec(t, e, "CREATE TABLE f (s VARCHAR)")
	tab, _ := e.Catalog().Get("f")
	for i := 0; i < 100; i++ {
		if _, err := tab.AppendRow([]value.Value{value.NewString("oops")}); err != nil {
			t.Fatal(err)
		}
	}
	_, seqErr := e.ExecSQLP("SELECT sum(s) FROM f", 1)
	if seqErr == nil {
		t.Fatal("sequential sum over strings should fail")
	}
	for _, p := range []int{2, 8} {
		_, parErr := e.ExecSQLP("SELECT sum(s) FROM f", p)
		if parErr == nil {
			t.Fatalf("P=%d: expected the sequential path's error, got success", p)
		}
		if parErr.Error() != seqErr.Error() {
			t.Fatalf("P=%d: error %q differs from sequential %q", p, parErr, seqErr)
		}
	}
}

func TestEngineParallelismDefaultAndOverride(t *testing.T) {
	e := New(storage.NewCatalog())
	if got := e.Parallelism(); got != 1 {
		t.Fatalf("default engine parallelism = %d, want 1 (sequential)", got)
	}
	e.SetParallelism(4)
	if got := e.Parallelism(); got != 4 {
		t.Fatalf("SetParallelism(4) then Parallelism() = %d", got)
	}
	mustExec(t, e, "CREATE TABLE f (a INTEGER); INSERT INTO f VALUES (1), (2), (3)")
	res := mustExec(t, e, "SELECT sum(a) FROM f")
	if res.Rows[0][0].Int() != 6 {
		t.Fatalf("sum under default parallelism 4 = %v", res.Rows[0][0])
	}
}

func TestResolveWorkers(t *testing.T) {
	if w := resolveWorkers(1); w != 1 {
		t.Fatalf("resolveWorkers(1) = %d", w)
	}
	if w := resolveWorkers(6); w != 6 {
		t.Fatalf("resolveWorkers(6) = %d", w)
	}
	if w := resolveWorkers(0); w < 1 {
		t.Fatalf("resolveWorkers(0) = %d", w)
	}
	if w := resolveWorkers(-3); w < 1 {
		t.Fatalf("resolveWorkers(-3) = %d", w)
	}
}

// TestAccumulatorMergeSemantics exercises each accumulator's merge directly,
// including the states the SQL surface cannot reach in isolation.
func TestAccumulatorMergeSemantics(t *testing.T) {
	mk := func(fn expr.AggFn, distinct, star bool) accumulator {
		acc, err := newAccumulator(&expr.AggCall{Fn: fn, Distinct: distinct, Star: star})
		if err != nil {
			t.Fatal(err)
		}
		return acc
	}
	addAll := func(acc accumulator, vs ...value.Value) {
		t.Helper()
		for _, v := range vs {
			if err := acc.add(v); err != nil {
				t.Fatal(err)
			}
		}
	}

	t.Run("sum int+int stays int", func(t *testing.T) {
		a, b := mk(expr.AggSum, false, false), mk(expr.AggSum, false, false)
		addAll(a, value.NewInt(3), value.NewInt(4))
		addAll(b, value.NewInt(10))
		if err := a.merge(b); err != nil {
			t.Fatal(err)
		}
		if got := a.result(); got.Kind() != value.KindInt || got.Int() != 17 {
			t.Fatalf("merged sum = %v", got)
		}
	})
	t.Run("sum int+float demotes", func(t *testing.T) {
		a, b := mk(expr.AggSum, false, false), mk(expr.AggSum, false, false)
		addAll(a, value.NewInt(3))
		addAll(b, value.NewFloat(0.5))
		if err := a.merge(b); err != nil {
			t.Fatal(err)
		}
		got := a.result()
		if got.Kind() != value.KindFloat {
			t.Fatalf("merged sum kind = %v", got.Kind())
		}
		if f, _ := got.AsFloat(); f != 3.5 { // floateq:ok dyadic values sum exactly
			t.Fatalf("merged sum = %v", got)
		}
	})
	t.Run("sum unseen sides", func(t *testing.T) {
		a, b := mk(expr.AggSum, false, false), mk(expr.AggSum, false, false)
		addAll(b, value.NewInt(7))
		if err := a.merge(b); err != nil {
			t.Fatal(err)
		}
		if got := a.result(); got.Int() != 7 {
			t.Fatalf("empty ← seen merge = %v", got)
		}
		c := mk(expr.AggSum, false, false)
		if err := a.merge(c); err != nil {
			t.Fatal(err)
		}
		if got := a.result(); got.Int() != 7 {
			t.Fatalf("seen ← empty merge = %v", got)
		}
	})
	t.Run("count distinct unions", func(t *testing.T) {
		a, b := mk(expr.AggCount, true, false), mk(expr.AggCount, true, false)
		addAll(a, value.NewInt(1), value.NewInt(2), value.Null)
		addAll(b, value.NewInt(2), value.NewInt(3))
		if err := a.merge(b); err != nil {
			t.Fatal(err)
		}
		if got := a.result(); got.Int() != 3 {
			t.Fatalf("distinct union = %v, want 3", got)
		}
	})
	t.Run("avg merges sum and count", func(t *testing.T) {
		a, b := mk(expr.AggAvg, false, false), mk(expr.AggAvg, false, false)
		addAll(a, value.NewInt(1), value.NewInt(2))
		addAll(b, value.NewInt(9))
		if err := a.merge(b); err != nil {
			t.Fatal(err)
		}
		if f, _ := a.result().AsFloat(); f != 4 { // floateq:ok 12/3 is exact
			t.Fatalf("merged avg = %v", a.result())
		}
	})
	t.Run("min and max adopt the extreme", func(t *testing.T) {
		lo, hi := mk(expr.AggMin, false, false), mk(expr.AggMin, false, false)
		addAll(lo, value.NewInt(5))
		addAll(hi, value.NewInt(-2))
		if err := lo.merge(hi); err != nil {
			t.Fatal(err)
		}
		if got := lo.result(); got.Int() != -2 {
			t.Fatalf("merged min = %v", got)
		}
		a, b := mk(expr.AggMax, false, false), mk(expr.AggMax, false, false)
		addAll(a, value.NewInt(5))
		addAll(b, value.NewInt(40))
		if err := a.merge(b); err != nil {
			t.Fatal(err)
		}
		if got := a.result(); got.Int() != 40 {
			t.Fatalf("merged max = %v", got)
		}
	})
	t.Run("kind mismatch is rejected", func(t *testing.T) {
		a, b := mk(expr.AggSum, false, false), mk(expr.AggCount, false, true)
		if err := a.merge(b); err == nil {
			t.Fatal("sum ← count merge should fail")
		}
		lo, hi := mk(expr.AggMin, false, false), mk(expr.AggMax, false, false)
		if err := lo.merge(hi); err == nil {
			t.Fatal("min ← max merge should fail")
		}
	})
}
