package engine

import (
	"fmt"
	"testing"

	"repro/internal/expr"
	"repro/internal/value"
)

// FuzzParallelMergeEquivalence is the merge-law fuzzer behind the parallel
// aggregation path: a fuzz input encodes one aggregate function, a value
// stream, and arbitrary partition split points. Folding the whole stream
// into one accumulator must agree exactly with folding each partition into
// its own accumulator and merging the partials in partition order — the
// invariant hashAggregateParallel relies on for every group.
//
// Value construction keeps sums exact so equality can be asserted without
// tolerance: integers are small, and floats are eighths (k/8) of bounded
// magnitude, so every partial sum is exactly representable and no addition
// order can round differently.
func FuzzParallelMergeEquivalence(f *testing.F) {
	f.Add([]byte{0x00, 0x01, 0x8a, 0x01, 0x94, 0x81, 0x9e})          // sum: ints with a split
	f.Add([]byte{0x03, 0x04, 0x41, 0x84, 0x41, 0x02, 0x42})          // count distinct: dup across split
	f.Add([]byte{0x04, 0x03, 0x88, 0x83, 0x90, 0x00, 0x00, 0x01, 0x7f}) // avg: floats, a NULL, an int
	f.Add([]byte{0x05, 0x04, 0x5a, 0x81, 0x05, 0x84, 0x41})          // min: strings vs ints across splits
	f.Add([]byte{0x01, 0x00, 0x00, 0x80, 0x00, 0x80, 0x00})          // count(*): NULLs still count
	f.Add([]byte{0x02, 0x03, 0x10})                                  // count(x): single float
	f.Add([]byte{0x06})                                              // max: empty stream
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		call := fuzzAggCall(data[0])

		vals, splits := fuzzValueStream(data[1:])

		// Reference: one accumulator over the whole stream.
		single, err := newAccumulator(call)
		if err != nil {
			t.Fatal(err)
		}
		var singleErr error
		for _, v := range vals {
			if singleErr = single.add(v); singleErr != nil {
				break
			}
		}

		// Partitioned: one accumulator per split, merged in order.
		merged, err := newAccumulator(call)
		if err != nil {
			t.Fatal(err)
		}
		var partErr error
	parts:
		for pi := 0; pi < len(splits); pi++ {
			lo := 0
			if pi > 0 {
				lo = splits[pi-1]
			}
			hi := len(vals)
			if pi < len(splits) {
				hi = splits[pi]
			}
			part, err := newAccumulator(call)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range vals[lo:hi] {
				if partErr = part.add(v); partErr != nil {
					break parts
				}
			}
			if partErr = merged.merge(part); partErr != nil {
				break
			}
		}
		// The loop above covers [0, splits...); fold the tail partition.
		if partErr == nil {
			lo := 0
			if len(splits) > 0 {
				lo = splits[len(splits)-1]
			}
			part, err := newAccumulator(call)
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range vals[lo:] {
				if partErr = part.add(v); partErr != nil {
					break
				}
			}
			if partErr == nil {
				partErr = merged.merge(part)
			}
		}

		if (singleErr == nil) != (partErr == nil) {
			t.Fatalf("%s over %v: single-pass err=%v, partitioned err=%v (splits %v)",
				call, vals, singleErr, partErr, splits)
		}
		if singleErr != nil {
			return // both paths rejected the stream; nothing to compare
		}
		want, got := single.result(), merged.result()
		if want.IsNull() != got.IsNull() ||
			(!want.IsNull() && (want.Kind() != got.Kind() || value.Compare(want, got) != 0)) {
			t.Fatalf("%s over %v split at %v: single-pass %v, merged %v",
				call, vals, splits, want, got)
		}
	})
}

// fuzzAggCall maps a selector byte to one of the seven accumulator kinds.
func fuzzAggCall(b byte) *expr.AggCall {
	switch b % 7 {
	case 0:
		return &expr.AggCall{Fn: expr.AggSum}
	case 1:
		return &expr.AggCall{Fn: expr.AggCount, Star: true}
	case 2:
		return &expr.AggCall{Fn: expr.AggCount}
	case 3:
		return &expr.AggCall{Fn: expr.AggCount, Distinct: true}
	case 4:
		return &expr.AggCall{Fn: expr.AggAvg}
	case 5:
		return &expr.AggCall{Fn: expr.AggMin}
	default:
		return &expr.AggCall{Fn: expr.AggMax}
	}
}

// fuzzValueStream decodes (tag, payload) byte pairs into a value stream and
// partition split indexes. Tag bit 0x80 starts a new partition before the
// value; tag%5 picks the kind. Floats are exact eighths so any summation
// order is rounding-free.
func fuzzValueStream(data []byte) ([]value.Value, []int) {
	var vals []value.Value
	var splits []int
	for i := 0; i+1 < len(data); i += 2 {
		tag, payload := data[i], data[i+1]
		if tag&0x80 != 0 && len(vals) > 0 {
			splits = append(splits, len(vals))
		}
		switch tag % 5 {
		case 0:
			vals = append(vals, value.Null)
		case 1:
			vals = append(vals, value.NewInt(int64(payload)-128))
		case 2:
			vals = append(vals, value.NewInt((int64(payload)-128)*1000))
		case 3:
			vals = append(vals, value.NewFloat(float64(int64(payload)-128)/8))
		default:
			vals = append(vals, value.NewString(fmt.Sprintf("s%d", payload%16)))
		}
	}
	return vals, splits
}
