package engine

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/expr"
	"repro/internal/obs"
	"repro/internal/sqlparse"
	"repro/internal/value"
)

// execSelect plans and runs a SELECT statement. ec.par governs the
// aggregation path only (see parallel.go); scans, joins, windows, and sorts
// are unchanged by it. When ec.span is set the whole pipeline is
// instrumented: operators record actual rows and cumulative times, and the
// consumer stage (project / aggregate / window) attaches its operator
// subtree plus any worker fan-out spans to the statement span.
func (e *Engine) execSelect(sel *sqlparse.Select, ec execCtx) (*Result, error) {
	if sel.GroupSets != nil {
		return nil, fmt.Errorf("engine: GROUP BY %s must be rewritten first (see the core package)", sel.GroupSets.Kind.Keyword())
	}
	in, residualWhere, err := e.buildFrom(sel)
	if err != nil {
		return nil, err
	}
	if residualWhere != nil {
		pred, err := bindExpr(residualWhere, in.schema())
		if err != nil {
			return nil, err
		}
		if expr.HasAggregate(pred) {
			return nil, fmt.Errorf("engine: aggregates are not allowed in WHERE")
		}
		in = &filterIter{child: in, pred: pred}
	}
	if ec.span != nil && !ec.liteSpan() {
		instrumentIter(in)
	}
	markJoinBatch(in, ec.batch)
	governIter(in, ec.gov)
	if ec.inspect != nil {
		ec.inspect.in = in
	}

	items, err := expandStars(sel.Items, in.schema())
	if err != nil {
		return nil, err
	}
	for _, it := range items {
		bad := false
		_ = expr.Walk(it.Expr, func(n expr.Expr) error {
			if a, ok := n.(*expr.AggCall); ok && a.IsHorizontal() {
				bad = true
			}
			return nil
		})
		if bad {
			return nil, fmt.Errorf("engine: %s carries a BY list; percentage/horizontal aggregations must be rewritten first (see the core package)", it.Expr)
		}
	}

	names := outputNames(items)

	// ORDER BY may reference input columns outside the select list. For
	// plain, non-DISTINCT selects, carry them as hidden trailing columns
	// and strip them after sorting.
	hidden := 0
	isPlain := !hasWindow(items) && len(sel.GroupBy) == 0 && sel.Having == nil && !anyAggregate(items)
	if isPlain && !sel.Distinct {
		for _, k := range sel.OrderBy {
			if k.Position > 0 || orderColumnIndex(names, k.Column) >= 0 {
				continue
			}
			items = append(items, sqlparse.SelectItem{
				Expr:  expr.QCol(k.Qualifier, k.Column),
				Alias: k.Column,
			})
			names = append(names, k.Column)
			hidden++
		}
	}

	var rows [][]value.Value
	var consumer *obs.Span
	attachOps := true // aggregate paths attach the operator subtree themselves
	switch {
	case hasWindow(items):
		consumer = ec.span.NewChild("window")
		rows, err = e.execWindowSelect(sel, items, in, ec.gov)
	case len(sel.GroupBy) > 0 || sel.Having != nil || anyAggregate(items):
		consumer = ec.span.NewChild("aggregate")
		attachOps = false
		rows, err = e.execGroupSelect(sel, items, in, execCtx{par: ec.par, span: consumer, gov: ec.gov, rec: ec.rec, batch: ec.batch})
	default:
		consumer = ec.span.NewChild("project")
		rows, err = e.execPlainSelect(sel, items, in, ec.gov)
	}
	if consumer != nil {
		consumer.End()
		consumer.SetRows(-1, int64(len(rows)))
		if attachOps {
			consumer.AddChild(operatorSpans(in))
		}
	}
	if err != nil {
		return nil, err
	}

	if sel.Distinct {
		sp := ec.span.NewChild("distinct")
		before := len(rows)
		rows, err = distinctRows(rows, ec.gov)
		if err != nil {
			sp.End()
			return nil, err
		}
		sp.SetRows(int64(before), int64(len(rows)))
		sp.End()
	}
	if len(sel.OrderBy) > 0 {
		sp := ec.span.NewChild("sort")
		if err := orderRows(rows, sel.OrderBy, names); err != nil {
			sp.Attr("error", err.Error())
			sp.End()
			return nil, err
		}
		sp.SetRows(int64(len(rows)), int64(len(rows)))
		sp.End()
	}
	if hidden > 0 {
		names = names[:len(names)-hidden]
		// pctvet:ok O(1) reslice per row of an already-governed result
		for i := range rows {
			rows[i] = rows[i][:len(names)]
		}
	}
	if sel.Limit > 0 && len(rows) > sel.Limit {
		rows = rows[:sel.Limit]
	}
	if ec.inspect != nil {
		ec.inspect.rows = len(rows)
		ec.inspect.analyzed = true
	}
	return &Result{Columns: names, Rows: rows}, nil
}

// orderColumnIndex finds a named column in the output list, or -1.
func orderColumnIndex(names []string, col string) int {
	for j, n := range names {
		if strings.EqualFold(n, col) {
			return j
		}
	}
	return -1
}

// buildFrom assembles the FROM pipeline and returns the input iterator plus
// the WHERE conjuncts not consumed as join conditions.
func (e *Engine) buildFrom(sel *sqlparse.Select) (iterator, expr.Expr, error) {
	if len(sel.From) == 0 {
		// SELECT without FROM: one empty row.
		return &memRelation{rows: [][]value.Value{{}}}, sel.Where, nil
	}
	first := sel.From[0]
	t, err := e.tableFor(first.Table.Name)
	if err != nil {
		return nil, nil, err
	}
	var cur iterator = newTableScan(t, first.Table.RefName())

	var whereConjuncts []expr.Expr
	if sel.Where != nil {
		whereConjuncts = splitConjuncts(sel.Where)
	}

	for _, fe := range sel.From[1:] {
		rt, err := e.tableFor(fe.Table.Name)
		if err != nil {
			return nil, nil, err
		}
		alias := fe.Table.RefName()
		rightSch := schemaOf(rt, alias)

		switch fe.Join {
		case sqlparse.JoinCross:
			// Pull equijoin conditions out of WHERE.
			pairs, residual := extractEquiPairs(whereConjuncts, cur.schema(), rightSch)
			whereConjuncts = residual
			if len(pairs) == 0 {
				// The right side materializes lazily on first probe, so
				// EXPLAIN pays nothing for it.
				cur = newNestedLoopJoin(cur, newTableScan(rt, alias), nil, false)
				continue
			}
			j, err := newHashJoinFromTable(cur, rt, alias, pairs, false, true)
			if err != nil {
				return nil, nil, err
			}
			cur = j

		case sqlparse.JoinInner, sqlparse.JoinLeftOuter:
			outer := fe.Join == sqlparse.JoinLeftOuter
			onConjuncts := splitConjuncts(fe.On)
			pairs, residual := extractEquiPairs(onConjuncts, cur.schema(), rightSch)
			if len(pairs) == 0 || (outer && len(residual) > 0) {
				// Fallback: evaluate the full ON predicate row by row.
				combined := append(append(relSchema{}, cur.schema()...), rightSch...)
				pred, err := bindExpr(fe.On, combined)
				if err != nil {
					return nil, nil, err
				}
				cur = newNestedLoopJoin(cur, newTableScan(rt, alias), pred, outer)
				continue
			}
			j, err := newHashJoinFromTable(cur, rt, alias, pairs, outer, true)
			if err != nil {
				return nil, nil, err
			}
			cur = j
			if len(residual) > 0 {
				pred, err := bindExpr(andAll(residual), cur.schema())
				if err != nil {
					return nil, nil, err
				}
				cur = &filterIter{child: cur, pred: pred}
			}
		}
	}
	return cur, andAll(whereConjuncts), nil
}

// expandStars replaces * items with one reference per input column.
func expandStars(items []sqlparse.SelectItem, sch relSchema) ([]sqlparse.SelectItem, error) {
	var out []sqlparse.SelectItem
	for _, it := range items {
		if !it.Star {
			out = append(out, it)
			continue
		}
		for _, c := range sch {
			out = append(out, sqlparse.SelectItem{
				Expr:  expr.QCol(c.Qualifier, c.Name),
				Alias: c.Name,
			})
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("engine: empty select list")
	}
	return out, nil
}

// outputNames derives result column names: alias, bare column name, or the
// expression text.
func outputNames(items []sqlparse.SelectItem) []string {
	names := make([]string, len(items))
	for i, it := range items {
		switch {
		case it.Alias != "":
			names[i] = it.Alias
		default:
			if c, ok := it.Expr.(*expr.ColumnRef); ok {
				names[i] = c.Name
			} else {
				names[i] = it.Expr.String()
			}
		}
	}
	return names
}

func anyAggregate(items []sqlparse.SelectItem) bool {
	for _, it := range items {
		if expr.HasAggregate(it.Expr) {
			return true
		}
	}
	return false
}

func hasWindow(items []sqlparse.SelectItem) bool {
	found := false
	for _, it := range items {
		_ = expr.Walk(it.Expr, func(n expr.Expr) error {
			if a, ok := n.(*expr.AggCall); ok && a.Over != nil {
				found = true
			}
			return nil
		})
	}
	return found
}

// execPlainSelect projects items per input row. The result buffer is
// materialized state, so a non-nil governor charges it against MaxRows and
// MaxBytes in govStride batches.
func (e *Engine) execPlainSelect(sel *sqlparse.Select, items []sqlparse.SelectItem, in iterator, gov *governor) ([][]value.Value, error) {
	bound := make([]expr.Expr, len(items))
	for i, it := range items {
		b, err := bindExpr(it.Expr, in.schema())
		if err != nil {
			return nil, err
		}
		bound[i] = b
	}
	var rows [][]value.Value
	var box rowBox
	var pendingBytes int64
	for {
		row, ok, err := in.next()
		if err != nil {
			return nil, err
		}
		if !ok {
			if gov != nil {
				if err := gov.addRows(int64(len(rows) % govStride)); err != nil {
					return nil, err
				}
				if err := gov.addBytes(pendingBytes); err != nil {
					return nil, err
				}
			}
			return rows, nil
		}
		out := make([]value.Value, len(bound))
		box.vals = row
		rv := &box
		for i, b := range bound {
			v, err := b.Eval(rv)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		rows = append(rows, out)
		if gov != nil {
			pendingBytes += estimateRowBytes(out)
			if len(rows)%govStride == 0 {
				if err := gov.addRows(govStride); err != nil {
					return nil, err
				}
				if err := gov.addBytes(pendingBytes); err != nil {
					return nil, err
				}
				pendingBytes = 0
			}
		}
	}
}

// execGroupSelect runs hash aggregation and projects items over group rows.
// ec.span is the aggregate stage span; the parallel path attaches its worker
// fan-out and merge spans to it.
func (e *Engine) execGroupSelect(sel *sqlparse.Select, items []sqlparse.SelectItem, in iterator, ec execCtx) ([][]value.Value, error) {
	inSch := in.schema()

	// Resolve group keys to bound expressions over the input schema.
	keyExprs := make([]expr.Expr, len(sel.GroupBy))
	for i, g := range sel.GroupBy {
		var raw expr.Expr
		if g.Position > 0 {
			if g.Position > len(items) {
				return nil, fmt.Errorf("engine: GROUP BY position %d out of range", g.Position)
			}
			raw = items[g.Position-1].Expr
			if expr.HasAggregate(raw) {
				return nil, fmt.Errorf("engine: GROUP BY position %d refers to an aggregate", g.Position)
			}
		} else {
			raw = expr.QCol(g.Qualifier, g.Column)
		}
		b, err := bindExpr(raw, inSch)
		if err != nil {
			return nil, err
		}
		keyExprs[i] = b
	}

	// Collect aggregate calls from items and HAVING, bind their arguments.
	// Textually identical calls share one accumulator slot — percentage
	// plans repeat sum(A) in every CASE column and would otherwise fold it
	// N times per row.
	var specs []aggSpec
	slotOf := make(map[*expr.AggCall]int)
	slotByText := make(map[string]int)
	collect := func(root expr.Expr) error {
		return expr.Walk(root, func(n expr.Expr) error {
			call, ok := n.(*expr.AggCall)
			if !ok {
				return nil
			}
			if _, dup := slotOf[call]; dup {
				return nil
			}
			text := call.String()
			if slot, dup := slotByText[text]; dup {
				slotOf[call] = slot
				return nil
			}
			spec := aggSpec{call: call}
			if call.Arg != nil {
				b, err := bindExpr(call.Arg, inSch)
				if err != nil {
					return err
				}
				if expr.HasAggregate(b) {
					return fmt.Errorf("engine: nested aggregate in %s", call)
				}
				spec.arg = b
			}
			slotOf[call] = len(specs)
			slotByText[text] = len(specs)
			specs = append(specs, spec)
			return nil
		})
	}
	for _, it := range items {
		if err := collect(it.Expr); err != nil {
			return nil, err
		}
	}
	if sel.Having != nil {
		if err := collect(sel.Having); err != nil {
			return nil, err
		}
	}

	groupRows, err := hashAggregate(in, keyExprs, specs, ec)
	if err != nil {
		return nil, err
	}

	// Rebind item expressions over the group-row layout:
	// [key0..keyK-1, agg0..aggM-1].
	rebind := func(root expr.Expr) (expr.Expr, error) {
		return expr.Transform(root, func(n expr.Expr) (expr.Expr, error) {
			if call, ok := n.(*expr.AggCall); ok {
				return &expr.SlotRef{Index: len(keyExprs) + slotOf[call], Label: call.String()}, nil
			}
			cr, ok := n.(*expr.ColumnRef)
			if !ok {
				return n, nil
			}
			idx, err := inSch.resolve(cr.Qualifier, cr.Name)
			if err != nil {
				return nil, err
			}
			for k, ke := range keyExprs {
				if kc, ok := ke.(*expr.ColumnRef); ok && kc.Index == idx {
					return &expr.SlotRef{Index: k, Label: cr.Name}, nil
				}
			}
			// Expression keys: match by rendered text.
			bc, err := bindExpr(cr, inSch)
			if err != nil {
				return nil, err
			}
			for k, ke := range keyExprs {
				if ke.String() == bc.String() {
					return &expr.SlotRef{Index: k, Label: cr.Name}, nil
				}
			}
			return nil, fmt.Errorf("engine: column %s must appear in GROUP BY or inside an aggregate", cr)
		})
	}

	projected := make([]expr.Expr, len(items))
	for i, it := range items {
		p, err := rebind(it.Expr)
		if err != nil {
			return nil, err
		}
		projected[i] = p
	}
	var having expr.Expr
	if sel.Having != nil {
		having, err = rebind(sel.Having)
		if err != nil {
			return nil, err
		}
	}

	var rows [][]value.Value
	var box rowBox
	for gi, g := range groupRows {
		if gi%govStride == 0 {
			if err := ec.gov.check(); err != nil {
				return nil, err
			}
		}
		box.vals = g
		rv := &box
		if having != nil {
			hv, err := having.Eval(rv)
			if err != nil {
				return nil, err
			}
			if !hv.Truthy() {
				continue
			}
		}
		out := make([]value.Value, len(projected))
		for i, p := range projected {
			v, err := p.Eval(rv)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		rows = append(rows, out)
	}
	return rows, nil
}

// execWindowSelect evaluates ANSI OLAP window aggregates: each windowed call
// is computed per partition over the whole input, then every input row is
// emitted extended with its partition's results. This mirrors how the
// paper's OLAP-extension baseline evaluates percentage queries — and why it
// is expensive: the full detail relation flows through, and DISTINCT
// collapses it afterwards.
func (e *Engine) execWindowSelect(sel *sqlparse.Select, items []sqlparse.SelectItem, in iterator, gov *governor) ([][]value.Value, error) {
	if len(sel.GroupBy) > 0 || sel.Having != nil {
		return nil, fmt.Errorf("engine: window aggregates cannot be combined with GROUP BY")
	}
	inSch := in.schema()

	type winSpec struct {
		call    *expr.AggCall
		arg     expr.Expr
		partIdx []int
		results []value.Value // per input row, filled by the sort pass
	}
	var specs []*winSpec
	slotOf := make(map[*expr.AggCall]int)
	slotByText := make(map[string]int)
	for _, it := range items {
		err := expr.Walk(it.Expr, func(n expr.Expr) error {
			call, ok := n.(*expr.AggCall)
			if !ok {
				return nil
			}
			if call.Over == nil {
				return fmt.Errorf("engine: plain aggregate %s mixed with window aggregates", call)
			}
			if _, dup := slotOf[call]; dup {
				return nil
			}
			if slot, dup := slotByText[call.String()]; dup {
				slotOf[call] = slot
				return nil
			}
			ws := &winSpec{call: call}
			if call.Arg != nil {
				b, err := bindExpr(call.Arg, inSch)
				if err != nil {
					return err
				}
				ws.arg = b
			}
			for _, c := range call.Over.PartitionBy {
				idx, err := inSch.resolve("", c)
				if err != nil {
					return err
				}
				ws.partIdx = append(ws.partIdx, idx)
			}
			slotOf[call] = len(specs)
			slotByText[call.String()] = len(specs)
			specs = append(specs, ws)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	input, err := materialize(in, gov)
	if err != nil {
		return nil, err
	}

	// Pass 1: evaluate each window spec the way SQL engines of the
	// paper's era did — spool the detail rows, sort them by the partition
	// columns, and sweep each partition run folding the aggregate. This is
	// the cost profile the paper's OLAP-extension baseline pays: one sort
	// of the full input per distinct window.
	for _, ws := range specs {
		if err := evalWindowSorted(ws.call, ws.arg, ws.partIdx, input.rows, gov, &ws.results); err != nil {
			return nil, err
		}
	}

	// Rebind items over [input row .. window slots].
	w := len(inSch)
	projected := make([]expr.Expr, len(items))
	for i, it := range items {
		p, err := expr.Transform(it.Expr, func(n expr.Expr) (expr.Expr, error) {
			if call, ok := n.(*expr.AggCall); ok {
				return &expr.SlotRef{Index: w + slotOf[call], Label: call.String()}, nil
			}
			return n, nil
		})
		if err != nil {
			return nil, err
		}
		b, err := expr.Bind(p, func(q, name string) (int, error) { return inSch.resolve(q, name) })
		if err != nil {
			return nil, err
		}
		projected[i] = b
	}

	// Pass 2: emit each row extended with its windows' results.
	rows := make([][]value.Value, 0, len(input.rows))
	ext := make([]value.Value, 0, w+len(specs))
	var box rowBox
	for ri, row := range input.rows {
		if ri%govStride == 0 {
			if err := gov.check(); err != nil {
				return nil, err
			}
		}
		ext = ext[:0]
		ext = append(ext, row...)
		for _, ws := range specs {
			ext = append(ext, ws.results[ri])
		}
		box.vals = ext
		rv := &box
		out := make([]value.Value, len(projected))
		for i, p := range projected {
			v, err := p.Eval(rv)
			if err != nil {
				return nil, err
			}
			out[i] = v
		}
		rows = append(rows, out)
	}
	return rows, nil
}

// evalWindowSorted computes one window aggregate over all rows: it sorts
// row indexes by the encoded partition key, folds each equal-key run with
// a fresh accumulator, and writes the run's result to every row in it.
func evalWindowSorted(call *expr.AggCall, arg expr.Expr, partIdx []int,
	rows [][]value.Value, gov *governor, out *[]value.Value) error {

	n := len(rows)
	keys := make([]string, n)
	buf := make([]byte, 0, 64)
	for i, row := range rows {
		if i%govStride == 0 {
			if err := gov.check(); err != nil {
				return err
			}
		}
		buf = buf[:0]
		for _, pi := range partIdx {
			buf = value.AppendKey(buf, row[pi])
		}
		keys[i] = string(buf)
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return keys[order[a]] < keys[order[b]] })

	results := make([]value.Value, n)
	var box rowBox
	for lo := 0; lo < n; {
		hi := lo
		for hi < n && keys[order[hi]] == keys[order[lo]] {
			hi++
		}
		acc, err := newAccumulator(call)
		if err != nil {
			return err
		}
		for p := lo; p < hi; p++ {
			var v value.Value
			if arg != nil {
				box.vals = rows[order[p]]
				v, err = arg.Eval(&box)
				if err != nil {
					return err
				}
			}
			if err := acc.add(v); err != nil {
				return err
			}
		}
		res := acc.result()
		for p := lo; p < hi; p++ {
			results[order[p]] = res
		}
		lo = hi
	}
	*out = results
	return nil
}

// distinctRows deduplicates rows preserving first-appearance order,
// polling the governor every govStride rows so DISTINCT over a large
// result stays cancellable.
func distinctRows(rows [][]value.Value, gov *governor) ([][]value.Value, error) {
	seen := make(map[string]struct{}, len(rows))
	out := rows[:0]
	buf := make([]byte, 0, 64)
	for i, r := range rows {
		if i%govStride == 0 {
			if err := gov.check(); err != nil {
				return nil, err
			}
		}
		buf = buf[:0]
		for _, v := range r {
			buf = value.AppendKey(buf, v)
		}
		if _, dup := seen[string(buf)]; dup {
			continue
		}
		seen[string(buf)] = struct{}{}
		out = append(out, r)
	}
	return out, nil
}

// orderRows sorts rows by the ORDER BY keys, resolving names against the
// output column list.
func orderRows(rows [][]value.Value, keys []sqlparse.OrderKey, names []string) error {
	type sk struct {
		idx  int
		desc bool
	}
	sks := make([]sk, len(keys))
	for i, k := range keys {
		if k.Position > 0 {
			if k.Position > len(names) {
				return fmt.Errorf("engine: ORDER BY position %d out of range", k.Position)
			}
			sks[i] = sk{idx: k.Position - 1, desc: k.Desc}
			continue
		}
		found := orderColumnIndex(names, k.Column)
		if found < 0 {
			return fmt.Errorf("engine: ORDER BY column %q not in select list", k.Column)
		}
		sks[i] = sk{idx: found, desc: k.Desc}
	}
	sort.SliceStable(rows, func(a, b int) bool {
		for _, k := range sks {
			c := value.Compare(rows[a][k.idx], rows[b][k.idx])
			if c == 0 {
				continue
			}
			if k.desc {
				return c > 0
			}
			return c < 0
		}
		return false
	})
	return nil
}
