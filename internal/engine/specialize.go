package engine

import (
	"repro/internal/expr"
	"repro/internal/value"
)

// Expression specialization: after binding, common sub-patterns are
// replaced with direct evaluators that skip the generic tree-walk dispatch.
// The horizontal strategies evaluate N CASE terms per input row, each a
// conjunction of column=constant tests; on the generic evaluator every test
// pays operand boxing and a string-keyed operator switch. Real engines
// compile these; this pass is the interpreter's equivalent.
//
// Specialization preserves semantics exactly (including three-valued logic
// and the NULL-on-zero division rule) and leaves any node it does not
// recognize untouched. Plain column references are never rewritten, so
// structural inspection of bound trees (group-key matching) still works.

// specialize rewrites a bound expression tree bottom-up.
func specialize(e expr.Expr) expr.Expr {
	switch n := e.(type) {
	case *expr.BinaryOp:
		l := specialize(n.Left)
		r := specialize(n.Right)
		if n.Op == "=" {
			if eq := tryEqConst(l, r); eq != nil {
				return eq
			}
		}
		if n.Op == "AND" {
			return &andFast{left: l, right: r, text: n.String()}
		}
		if l != n.Left || r != n.Right {
			return &expr.BinaryOp{Op: n.Op, Left: l, Right: r}
		}
		return n
	case *expr.UnaryOp:
		x := specialize(n.Operand)
		if x != n.Operand {
			return &expr.UnaryOp{Op: n.Op, Operand: x}
		}
		return n
	case *expr.IsNull:
		if c, ok := n.Operand.(*expr.ColumnRef); ok && c.Bound() {
			return &isNullFast{idx: c.Index, negate: n.Negate, text: n.String()}
		}
		x := specialize(n.Operand)
		if x != n.Operand {
			return &expr.IsNull{Operand: x, Negate: n.Negate}
		}
		return n
	case *expr.Case:
		out := &expr.Case{}
		for _, w := range n.Whens {
			out.Whens = append(out.Whens, expr.When{
				Cond:   specialize(w.Cond),
				Result: specialize(w.Result),
			})
		}
		if n.Else != nil {
			out.Else = specialize(n.Else)
		}
		return out
	case *expr.FuncCall:
		out := &expr.FuncCall{Name: n.Name}
		for _, a := range n.Args {
			out.Args = append(out.Args, specialize(a))
		}
		return out
	case *expr.InList:
		out := &expr.InList{Operand: specialize(n.Operand), Negate: n.Negate}
		for _, e2 := range n.List {
			out.List = append(out.List, specialize(e2))
		}
		return out
	case *expr.Between:
		return &expr.Between{Operand: specialize(n.Operand),
			Lo: specialize(n.Lo), Hi: specialize(n.Hi), Negate: n.Negate}
	case *expr.Like:
		return &expr.Like{Operand: specialize(n.Operand),
			Pattern: specialize(n.Pattern), Negate: n.Negate}
	default:
		return e
	}
}

// tryEqConst recognizes bound-column = literal (either side) and returns a
// direct evaluator, or nil.
func tryEqConst(l, r expr.Expr) expr.Expr {
	text := "(" + l.String() + " = " + r.String() + ")"
	if c, ok := l.(*expr.ColumnRef); ok && c.Bound() {
		if lit, ok := r.(*expr.Literal); ok {
			return &eqConstFast{idx: c.Index, val: lit.Val, text: text}
		}
	}
	if c, ok := r.(*expr.ColumnRef); ok && c.Bound() {
		if lit, ok := l.(*expr.Literal); ok {
			return &eqConstFast{idx: c.Index, val: lit.Val, text: text}
		}
	}
	return nil
}

// eqConstFast evaluates column = constant with SQL NULL semantics.
type eqConstFast struct {
	idx  int
	val  value.Value
	text string
}

// Eval compares the column against the constant under SQL equality.
func (e *eqConstFast) Eval(row expr.Row) (value.Value, error) {
	return value.SQLEqual(row.ColumnValue(e.idx), e.val), nil
}

// String renders the original SQL text.
func (e *eqConstFast) String() string { return e.text }

// andFast is AND with three-valued logic and an early exit on definite
// false from the left operand.
type andFast struct {
	left, right expr.Expr
	text        string
}

// Eval applies 3VL AND, short-circuiting a definitely-false left side
// (legal because expression evaluation is side-effect free and error-free
// evaluation of the right side cannot change a FALSE outcome).
func (a *andFast) Eval(row expr.Row) (value.Value, error) {
	l, err := a.left.Eval(row)
	if err != nil {
		return value.Null, err
	}
	if !l.IsNull() && !l.Truthy() {
		return value.NewBool(false), nil
	}
	r, err := a.right.Eval(row)
	if err != nil {
		return value.Null, err
	}
	return value.And(l, r), nil
}

// String renders the original SQL text.
func (a *andFast) String() string { return a.text }

// isNullFast evaluates column IS [NOT] NULL.
type isNullFast struct {
	idx    int
	negate bool
	text   string
}

// Eval tests nullness directly.
func (i *isNullFast) Eval(row expr.Row) (value.Value, error) {
	return value.NewBool(row.ColumnValue(i.idx).IsNull() != i.negate), nil
}

// String renders the original SQL text.
func (i *isNullFast) String() string { return i.text }
