package engine

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/sqlparse"
	"repro/internal/storage"
	"repro/internal/value"
)

// The introspection catalog makes the engine observable through its own SQL
// dialect: read-only virtual relations (pct_stat_statements,
// pct_stat_activity, pct_metrics, pct_trace_recent — plus pct_cache_entries
// registered by the core planner) are materialized as snapshots at scan
// time, so the full dialect — WHERE, GROUP BY, Vpct/Hpct, ORDER BY —
// composes over the engine's own statistics. Behind the tables sit three
// recorders (internal/obs): per-fingerprint cumulative statement stats, the
// live-statement activity registry fed by governor counters, and a bounded
// flight recorder of recently completed statements.
//
// Self-observation guard: a statement that reads any virtual relation is
// served a snapshot but is itself excluded from fingerprint stats, activity,
// and the flight recorder — querying pct_stat_statements twice must return
// identical rows for untouched fingerprints and must never grow a row for
// itself (counted in introspect.self_skipped).

// Introspection metrics.
var (
	mIntroRecorded    = obs.Default.Counter("introspect.recorded")
	mIntroSelfSkipped = obs.Default.Counter("introspect.self_skipped")
	mIntroSnapshots   = obs.Default.Counter("introspect.snapshots")
)

// IntrospectionConfig sizes the introspection state.
type IntrospectionConfig struct {
	// MaxStatements bounds the fingerprint table (<= 0: obs default).
	MaxStatements int
	// FlightRecords bounds the flight-recorder ring (<= 0: obs default).
	FlightRecords int
}

// introState is the engine's introspection state, swapped atomically so
// enabling and disabling race safely with statements in flight.
type introState struct {
	stats    *obs.StmtStats
	activity *obs.Activity
	flight   *obs.FlightRecorder
	seq      atomic.Int64
}

// stmtRec threads one recorded statement's identity from begin to finish.
type stmtRec struct {
	in      *introState
	id      int64
	norm    string
	hash    uint64
	start   time.Time
	gov     *governor
	ownSpan bool // the span was created for introspection, not a sink
	// parallel is set by the aggregation dispatch when the statement takes
	// the partitioned path. Written before worker fan-out and read after
	// join, both on the statement's goroutine.
	parallel bool
}

// EnableIntrospection switches statement recording on with cfg and registers
// the engine-owned virtual relations. Already-enabled engines keep their
// accumulated statistics (re-enabling is idempotent); use
// DisableIntrospection first for a fresh slate.
func (e *Engine) EnableIntrospection(cfg IntrospectionConfig) {
	if e.intro.Load() != nil {
		return
	}
	in := &introState{
		stats:    obs.NewStmtStats(cfg.MaxStatements),
		activity: obs.NewActivity(),
		flight:   obs.NewFlightRecorder(cfg.FlightRecords),
	}
	e.registerIntroTables(in)
	e.intro.Store(in)
}

// DisableIntrospection switches recording off and drops the engine-owned
// virtual relations plus their accumulated state. Relations registered by
// other layers (pct_cache_entries) stay.
func (e *Engine) DisableIntrospection() {
	e.intro.Store(nil)
	e.UnregisterVirtual("pct_stat_statements")
	e.UnregisterVirtual("pct_stat_activity")
	e.UnregisterVirtual("pct_metrics")
	e.UnregisterVirtual("pct_trace_recent")
}

// IntrospectionEnabled reports whether statement recording is on.
func (e *Engine) IntrospectionEnabled() bool { return e.intro.Load() != nil }

// StatementStats exposes the fingerprint table (nil when introspection is
// off) so the public API layer can record its own top-level entries.
func (e *Engine) StatementStats() *obs.StmtStats {
	if in := e.intro.Load(); in != nil {
		return in.stats
	}
	return nil
}

// FlightRecords returns the retained flight-recorder records, oldest first
// (nil when introspection is off).
func (e *Engine) FlightRecords() []obs.FlightRecord {
	if in := e.intro.Load(); in != nil {
		return in.flight.Snapshot()
	}
	return nil
}

// ActiveStatements returns a snapshot of currently executing recorded
// statements (nil when introspection is off).
func (e *Engine) ActiveStatements() []obs.ActivitySnapshot {
	if in := e.intro.Load(); in != nil {
		return in.activity.Snapshot()
	}
	return nil
}

// introSkipKey marks a context whose statements must not be recorded.
type introSkipKey struct{}

// WithoutIntrospection returns a context under which statements are never
// recorded in the introspection state. Outer layers use it to extend the
// self-observation guard across a whole generated plan: when a percentage
// query reads a virtual relation, every temp-table statement the plan emits
// runs under this context, so the plan leaves no trace of itself either.
func WithoutIntrospection(ctx context.Context) context.Context {
	return context.WithValue(ctx, introSkipKey{}, true)
}

// introSkipped reports whether ctx carries the skip mark.
func introSkipped(ctx context.Context) bool {
	v, _ := ctx.Value(introSkipKey{}).(bool)
	return v
}

// beginIntro opens a statement record, or returns nil when the statement
// must not observe itself (it reads a virtual relation) — the guard that
// keeps pct_stat_statements from growing a row for its own scans.
func (e *Engine) beginIntro(in *introState, stmt sqlparse.Statement) *stmtRec {
	if e.stmtTouchesVirtual(stmt) {
		mIntroSelfSkipped.Inc()
		return nil
	}
	norm, hash := obs.Fingerprint(stmt.String())
	return &stmtRec{in: in, id: in.seq.Add(1), norm: norm, hash: hash, start: time.Now()}
}

// attach binds the statement's governor to the record and publishes it in
// the activity registry; the progress closure reads the governor's shared
// atomic counters, so activity snapshots never touch statement-local state.
func (rec *stmtRec) attach(gov *governor) {
	rec.gov = gov
	var progress func() (int64, int64, int64)
	if gov != nil {
		c := gov.c
		progress = func() (int64, int64, int64) {
			return atomic.LoadInt64(&c.scanned), atomic.LoadInt64(&c.rows), atomic.LoadInt64(&c.bytes)
		}
	}
	rec.in.activity.Begin(rec.id, rec.norm, rec.hash, rec.start, progress)
}

// finish closes the record: deregister from activity, fold into the
// fingerprint stats, and append to the flight recorder.
func (rec *stmtRec) finish(span *obs.Span, res *Result, err error) {
	in := rec.in
	in.activity.End(rec.id)
	d := time.Since(rec.start)
	var rows int64
	if res != nil {
		rows = int64(max(len(res.Rows), res.Affected))
	}
	scanned := rec.gov.scanned()
	code := introErrCode(err)
	in.stats.Observe(obs.StmtObservation{
		Hash: rec.hash, Query: rec.norm, Top: false,
		DurNs: d.Nanoseconds(), Rows: rows, Scanned: scanned,
		ErrCode: code, Parallel: rec.parallel,
	})
	var stages string
	if span != nil {
		if rec.ownSpan {
			span.SetDuration(d)
		}
		stages = renderStages(span)
	}
	in.flight.Record(obs.FlightRecord{
		Fingerprint: rec.hash, Query: rec.norm, Start: rec.start,
		DurNs: d.Nanoseconds(), Rows: rows, Scanned: scanned,
		ErrCode: code, Stages: stages,
	})
	mIntroRecorded.Inc()
}

// introErrCode maps an execution error to its stable code: the PCTxxx code
// when the error carries one, "error" otherwise, "" for success.
func introErrCode(err error) string {
	if err == nil {
		return ""
	}
	var coded interface{ Code() string }
	if asCoded(err, &coded) {
		return coded.Code()
	}
	return "error"
}

// asCoded is errors.As specialized for the Code interface without forcing
// the interface variable allocation on the success path.
func asCoded(err error, target *interface{ Code() string }) bool {
	for err != nil {
		if c, ok := err.(interface{ Code() string }); ok {
			*target = c
			return true
		}
		u, ok := err.(interface{ Unwrap() error })
		if !ok {
			return false
		}
		err = u.Unwrap()
	}
	return false
}

// renderStages flattens a statement span tree into "stage=duration" pairs,
// skipping the root statement span itself (its wall time is the record's
// DurNs) — the flight recorder's one-line trace.
func renderStages(root *obs.Span) string {
	names, totals := root.StageTotals()
	var sb strings.Builder
	for _, n := range names {
		if n == root.Name {
			continue
		}
		if sb.Len() > 0 {
			sb.WriteByte(' ')
		}
		sb.WriteString(n)
		sb.WriteByte('=')
		sb.WriteString(totals[n].String())
	}
	return sb.String()
}

// ----- virtual relation provider -----

// virtualDef is one registered read-only relation: a fixed schema and a
// build function producing a point-in-time snapshot table at scan time.
type virtualDef struct {
	name   string
	schema storage.Schema
	build  func() (*storage.Table, error)
}

// RegisterVirtual registers (or replaces) a read-only virtual relation.
// The name must not collide with a stored table, and the relation rejects
// every DML/DDL statement targeting it.
func (e *Engine) RegisterVirtual(name string, schema storage.Schema, build func() (*storage.Table, error)) error {
	if e.cat.Has(name) {
		return fmt.Errorf("engine: cannot register virtual relation %q: a stored table with that name exists", name)
	}
	e.virtMu.Lock()
	if e.virt == nil {
		e.virt = make(map[string]*virtualDef)
	}
	e.virt[strings.ToLower(name)] = &virtualDef{name: name, schema: schema, build: build}
	e.virtMu.Unlock()
	return nil
}

// UnregisterVirtual removes a virtual relation; unknown names are a no-op.
func (e *Engine) UnregisterVirtual(name string) {
	e.virtMu.Lock()
	delete(e.virt, strings.ToLower(name))
	e.virtMu.Unlock()
}

// IsVirtualTable reports whether name is a registered virtual relation
// (case-insensitive, like the catalog).
func (e *Engine) IsVirtualTable(name string) bool {
	e.virtMu.RLock()
	_, ok := e.virt[strings.ToLower(name)]
	e.virtMu.RUnlock()
	return ok
}

// VirtualTables lists the registered virtual relations, sorted.
func (e *Engine) VirtualTables() []string {
	e.virtMu.RLock()
	out := make([]string, 0, len(e.virt))
	for _, d := range e.virt {
		out = append(out, d.name)
	}
	e.virtMu.RUnlock()
	sort.Strings(out)
	return out
}

// lookupVirtual returns the definition for name, or nil.
func (e *Engine) lookupVirtual(name string) *virtualDef {
	e.virtMu.RLock()
	d := e.virt[strings.ToLower(name)]
	e.virtMu.RUnlock()
	return d
}

// tableFor resolves a FROM name: virtual relations materialize a snapshot,
// everything else reads the catalog. The snapshot is taken once per scan —
// a self-join of pct_stat_statements sees two independent snapshots, each
// internally consistent.
func (e *Engine) tableFor(name string) (*storage.Table, error) {
	if d := e.lookupVirtual(name); d != nil {
		mIntroSnapshots.Inc()
		return d.build()
	}
	return e.cat.Get(name)
}

// ResolveTable resolves a stored table or materializes a virtual relation's
// snapshot — the read-side resolution outer layers (the planner's advisor)
// use when a statistic requires actual rows.
func (e *Engine) ResolveTable(name string) (*storage.Table, error) {
	return e.tableFor(name)
}

// ResolveSchema returns the schema of a stored or virtual relation without
// materializing a snapshot — what plan-time analysis needs.
func (e *Engine) ResolveSchema(name string) (storage.Schema, error) {
	if d := e.lookupVirtual(name); d != nil {
		return d.schema, nil
	}
	t, err := e.cat.Get(name)
	if err != nil {
		return nil, err
	}
	return t.Schema(), nil
}

// errVirtualReadOnly is the uniform rejection for DML/DDL against a virtual
// relation.
func errVirtualReadOnly(op, name string) error {
	return fmt.Errorf("engine: %s: %q is a read-only system relation", op, name)
}

// stmtTouchesVirtual reports whether the statement reads or targets any
// virtual relation — the self-observation predicate.
func (e *Engine) stmtTouchesVirtual(stmt sqlparse.Statement) bool {
	e.virtMu.RLock()
	n := len(e.virt)
	e.virtMu.RUnlock()
	if n == 0 {
		return false
	}
	switch s := stmt.(type) {
	case *sqlparse.Select:
		return e.selectTouchesVirtual(s)
	case *sqlparse.Insert:
		if e.IsVirtualTable(s.Table) {
			return true
		}
		return s.Query != nil && e.selectTouchesVirtual(s.Query)
	case *sqlparse.Update:
		if e.IsVirtualTable(s.Table) {
			return true
		}
		for _, f := range s.From {
			if e.IsVirtualTable(f.Name) {
				return true
			}
		}
	case *sqlparse.Delete:
		return e.IsVirtualTable(s.Table)
	case *sqlparse.CreateTable:
		return e.IsVirtualTable(s.Name)
	case *sqlparse.CreateIndex:
		return e.IsVirtualTable(s.Table)
	case *sqlparse.DropTable:
		return e.IsVirtualTable(s.Name)
	case *sqlparse.Explain:
		return s.Query != nil && e.selectTouchesVirtual(s.Query)
	}
	return false
}

func (e *Engine) selectTouchesVirtual(sel *sqlparse.Select) bool {
	for _, f := range sel.From {
		if e.IsVirtualTable(f.Table.Name) {
			return true
		}
	}
	return false
}

// ----- engine-owned snapshot builders -----

// registerIntroTables registers the four engine-owned relations over in.
// Builders capture in (not the engine's atomic), so snapshots stay coherent
// even if introspection is disabled mid-scan.
func (e *Engine) registerIntroTables(in *introState) {
	must := func(err error) {
		if err != nil {
			panic(err) // name collision with a stored table; programming error
		}
	}
	must(e.RegisterVirtual("pct_stat_statements", statStatementsSchema, func() (*storage.Table, error) {
		return buildStatStatements(in.stats)
	}))
	must(e.RegisterVirtual("pct_stat_activity", statActivitySchema, func() (*storage.Table, error) {
		return buildStatActivity(in.activity)
	}))
	must(e.RegisterVirtual("pct_metrics", metricsSchema, func() (*storage.Table, error) {
		return buildMetrics(obs.Default)
	}))
	must(e.RegisterVirtual("pct_trace_recent", traceRecentSchema, func() (*storage.Table, error) {
		return buildTraceRecent(in.flight)
	}))
}

var statStatementsSchema = storage.Schema{
	{Name: "fingerprint", Type: storage.TypeString},
	{Name: "query", Type: storage.TypeString},
	{Name: "top", Type: storage.TypeInt},
	{Name: "calls", Type: storage.TypeInt},
	{Name: "errors", Type: storage.TypeInt},
	{Name: "error_codes", Type: storage.TypeString},
	{Name: "total_ms", Type: storage.TypeFloat},
	{Name: "min_ms", Type: storage.TypeFloat},
	{Name: "max_ms", Type: storage.TypeFloat},
	{Name: "mean_ms", Type: storage.TypeFloat},
	{Name: "p50_ms", Type: storage.TypeFloat},
	{Name: "p99_ms", Type: storage.TypeFloat},
	{Name: "rows_out", Type: storage.TypeInt},
	{Name: "rows_scanned", Type: storage.TypeInt},
	{Name: "cache_hits", Type: storage.TypeInt},
	{Name: "cache_misses", Type: storage.TypeInt},
	{Name: "parallel", Type: storage.TypeInt},
}

func buildStatStatements(stats *obs.StmtStats) (*storage.Table, error) {
	t, err := storage.NewTable("pct_stat_statements", statStatementsSchema)
	if err != nil {
		return nil, err
	}
	for _, s := range stats.Snapshot() {
		top := int64(0)
		if s.Top {
			top = 1
		}
		mean := 0.0
		if s.Calls > 0 {
			mean = ms(s.TotalNs) / float64(s.Calls)
		}
		if _, err := t.AppendRow([]value.Value{
			value.NewString(fmt.Sprintf("%016x", s.Fingerprint)),
			value.NewString(s.Query),
			value.NewInt(top),
			value.NewInt(s.Calls),
			value.NewInt(s.Errors),
			value.NewString(renderErrCodes(s.ErrCodes)),
			value.NewFloat(ms(s.TotalNs)),
			value.NewFloat(ms(s.MinNs)),
			value.NewFloat(ms(s.MaxNs)),
			value.NewFloat(mean),
			value.NewFloat(ms(s.P50Ns)),
			value.NewFloat(ms(s.P99Ns)),
			value.NewInt(s.Rows),
			value.NewInt(s.RowsScanned),
			value.NewInt(s.CacheHits),
			value.NewInt(s.CacheMisses),
			value.NewInt(s.Parallel),
		}); err != nil {
			return nil, err
		}
	}
	return t, nil
}

var statActivitySchema = storage.Schema{
	{Name: "sid", Type: storage.TypeInt},
	{Name: "query", Type: storage.TypeString},
	{Name: "state", Type: storage.TypeString},
	{Name: "elapsed_ms", Type: storage.TypeFloat},
	{Name: "rows_scanned", Type: storage.TypeInt},
	{Name: "rows_out", Type: storage.TypeInt},
	{Name: "bytes", Type: storage.TypeInt},
}

func buildStatActivity(a *obs.Activity) (*storage.Table, error) {
	t, err := storage.NewTable("pct_stat_activity", statActivitySchema)
	if err != nil {
		return nil, err
	}
	for _, s := range a.Snapshot() {
		if _, err := t.AppendRow([]value.Value{
			value.NewInt(s.ID),
			value.NewString(s.Query),
			value.NewString(s.State),
			value.NewFloat(ms(s.ElapsedNs)),
			value.NewInt(s.Scanned),
			value.NewInt(s.Rows),
			value.NewInt(s.Bytes),
		}); err != nil {
			return nil, err
		}
	}
	return t, nil
}

var metricsSchema = storage.Schema{
	{Name: "name", Type: storage.TypeString},
	{Name: "kind", Type: storage.TypeString},
	{Name: "value", Type: storage.TypeInt},
	{Name: "count", Type: storage.TypeInt},
	{Name: "sum_ns", Type: storage.TypeInt},
	{Name: "p50_ns", Type: storage.TypeInt},
	{Name: "p99_ns", Type: storage.TypeInt},
}

func buildMetrics(r *obs.Registry) (*storage.Table, error) {
	t, err := storage.NewTable("pct_metrics", metricsSchema)
	if err != nil {
		return nil, err
	}
	for _, m := range r.Snapshot() {
		row := []value.Value{
			value.NewString(m.Name),
			value.NewString(m.Kind),
			value.NewInt(m.Value),
			value.NewInt(m.Count),
			value.NewInt(m.SumNs),
			value.NewInt(m.P50Ns),
			value.NewInt(m.P99Ns),
		}
		if m.Kind == "histogram" {
			row[2] = value.Null // value is meaningless for histograms
		} else {
			row[3], row[4], row[5], row[6] = value.Null, value.Null, value.Null, value.Null
		}
		if _, err := t.AppendRow(row); err != nil {
			return nil, err
		}
	}
	return t, nil
}

var traceRecentSchema = storage.Schema{
	{Name: "seq", Type: storage.TypeInt},
	{Name: "fingerprint", Type: storage.TypeString},
	{Name: "query", Type: storage.TypeString},
	{Name: "elapsed_ms", Type: storage.TypeFloat},
	{Name: "rows_out", Type: storage.TypeInt},
	{Name: "rows_scanned", Type: storage.TypeInt},
	{Name: "error_code", Type: storage.TypeString},
	{Name: "stages", Type: storage.TypeString},
	{Name: "ended_unix_ms", Type: storage.TypeInt},
}

func buildTraceRecent(f *obs.FlightRecorder) (*storage.Table, error) {
	t, err := storage.NewTable("pct_trace_recent", traceRecentSchema)
	if err != nil {
		return nil, err
	}
	for _, r := range f.Snapshot() {
		if _, err := t.AppendRow([]value.Value{
			value.NewInt(r.Seq),
			value.NewString(fmt.Sprintf("%016x", r.Fingerprint)),
			value.NewString(r.Query),
			value.NewFloat(ms(r.DurNs)),
			value.NewInt(r.Rows),
			value.NewInt(r.Scanned),
			value.NewString(r.ErrCode),
			value.NewString(r.Stages),
			value.NewInt(r.Start.Add(time.Duration(r.DurNs)).UnixMilli()),
		}); err != nil {
			return nil, err
		}
	}
	return t, nil
}

func ms(ns int64) float64 { return float64(ns) / 1e6 }

func renderErrCodes(codes map[string]int64) string {
	if len(codes) == 0 {
		return ""
	}
	keys := make([]string, 0, len(codes))
	for c := range codes {
		keys = append(keys, c)
	}
	sort.Strings(keys)
	var sb strings.Builder
	for i, c := range keys {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%s:%d", c, codes[c])
	}
	return sb.String()
}
