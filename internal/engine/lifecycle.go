package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"sync/atomic"
	"time"

	"repro/internal/diag"
	"repro/internal/value"
)

// Query-lifecycle governance: cooperative cancellation, resource budgets,
// and panic containment. Every statement executes under a governor — the
// statement's context plus its effective Limits plus shared progress
// counters — threaded through execCtx into every long loop (scans, join
// builds, folds, partition workers, merges, DML rewrites). Loops check the
// governor once per govStride rows, so the hot path pays one pointer test
// and an occasional atomic add; a cancelled or over-budget statement stops
// within a bounded number of rows (see TestCancelBoundedRows).
//
// All governance failures are typed errors carrying stable PCT2xx codes
// (see internal/diag), so callers and metrics can tell a user cancellation
// from a deadline from a limit hit from a contained panic without string
// matching.

// Limits bounds the resources one statement may consume. The zero value
// means unlimited. Limits are enforced with typed errors instead of
// exhausting memory: MaxRows and MaxBytes bound materialized state (row
// buffers, join build sides, staged DML), MaxGroups bounds aggregation hash
// state, MaxPivotColumns bounds horizontal result width, and Timeout is a
// per-statement deadline.
type Limits struct {
	// MaxRows caps rows materialized by one statement (result rows, join
	// build sides, window inputs, staged DML rows), cumulatively.
	MaxRows int64
	// MaxGroups caps distinct aggregation groups (GROUP BY and pivot).
	MaxGroups int64
	// MaxPivotColumns caps horizontal (Hpct/Hagg) result columns; the core
	// planner enforces it at plan time, before any evaluation runs.
	MaxPivotColumns int
	// MaxBytes caps the approximate bytes of materialized values. Parallel
	// aggregation degrades to the sequential fold when its partial states
	// would press the remaining budget (counted in engine.agg.budget_fallback)
	// before the cap fails the statement.
	MaxBytes int64
	// Timeout, when positive, is applied as a per-statement deadline.
	Timeout time.Duration
}

// zero reports whether no limit is set.
func (l Limits) zero() bool { return l == Limits{} }

// SetLimits installs engine-wide default limits applied to every statement
// that does not carry its own (see WithLimits). Safe for concurrent use.
func (e *Engine) SetLimits(l Limits) { e.limits.Store(&l) }

// Limits returns the engine-wide default limits.
func (e *Engine) Limits() Limits {
	if l := e.limits.Load(); l != nil {
		return *l
	}
	return Limits{}
}

// limitsKey carries per-call Limits in a context.
type limitsKey struct{}

// WithLimits returns a context carrying statement limits that override the
// engine-wide defaults for statements executed under it.
func WithLimits(ctx context.Context, l Limits) context.Context {
	return context.WithValue(ctx, limitsKey{}, l)
}

// effectiveLimits resolves the limits for one statement: context override
// first, engine default otherwise.
func (e *Engine) effectiveLimits(ctx context.Context) Limits {
	if l, ok := ctx.Value(limitsKey{}).(Limits); ok {
		return l
	}
	return e.Limits()
}

// LimitsFromContext returns the Limits carried by ctx via WithLimits.
// Exported for the core package's native plan steps, which enforce budgets
// in their own loops outside the engine's governor.
func LimitsFromContext(ctx context.Context) (Limits, bool) {
	l, ok := ctx.Value(limitsKey{}).(Limits)
	return l, ok
}

// CheckCtx returns the typed CancelledError when ctx is already cancelled or
// past its deadline, nil otherwise. Exported for the same reason as
// LimitsFromContext: native plan steps stride-check their scans with it so a
// cancelled plan carries the same PCT200/PCT201 codes as a cancelled
// statement.
func CheckCtx(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return &CancelledError{cause: err}
	}
	return nil
}

// ----- typed lifecycle errors -----

// CancelledError reports a statement stopped by its context: user
// cancellation (PCT200) or deadline expiry (PCT201). It wraps the context's
// error, so errors.Is(err, context.Canceled) keeps working.
type CancelledError struct {
	cause error
}

// Error renders the failure with its code.
func (e *CancelledError) Error() string {
	if errors.Is(e.cause, context.DeadlineExceeded) {
		return "engine: statement deadline exceeded"
	}
	return "engine: statement cancelled"
}

// Code returns PCT200 for cancellation, PCT201 for a deadline.
func (e *CancelledError) Code() string {
	if errors.Is(e.cause, context.DeadlineExceeded) {
		return diag.CodeDeadline
	}
	return diag.CodeCancelled
}

// Unwrap exposes the underlying context error.
func (e *CancelledError) Unwrap() error { return e.cause }

// LimitError reports a resource budget exceeded mid-statement.
type LimitError struct {
	// PCTCode is the limit's diagnostic code (PCT202..PCT205).
	PCTCode string
	// Resource names what overflowed ("rows", "groups", "pivot columns",
	// "bytes").
	Resource string
	// Limit is the configured bound.
	Limit int64
}

// Error renders the failure.
func (e *LimitError) Error() string {
	return fmt.Sprintf("engine: statement exceeded the %s limit (%d)", e.Resource, e.Limit)
}

// Code returns the PCT2xx diagnostic code.
func (e *LimitError) Code() string { return e.PCTCode }

// PanicError is a panic recovered inside statement execution — a worker
// goroutine, a native plan step, or the dispatch itself — contained into an
// error so one poisoned statement cannot kill concurrent submitters.
type PanicError struct {
	// Point says where the panic was recovered ("statement", "partition
	// worker 2/4", "pivot worker 1/8", "step ...").
	Point string
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
}

// Error renders the failure without the stack (attach via %+v or Stack).
func (e *PanicError) Error() string {
	return fmt.Sprintf("engine: panic in %s: %v", e.Point, e.Value)
}

// Code returns PCT206.
func (e *PanicError) Code() string { return diag.CodePanic }

// NewPanicError builds the contained form of a recovered panic value,
// capturing the current stack and counting it in engine.panics. Exported for
// the core package's native plan steps, which recover on their own
// goroutines. Construction is the single counting site, so every containment
// path — dispatch, partition worker, pivot worker, native step — bumps the
// metric exactly once.
func NewPanicError(point string, v any) *PanicError {
	mPanics.Inc()
	return &PanicError{Point: point, Value: v, Stack: debug.Stack()}
}

// ----- the governor -----

// govStride is how many rows a governed loop processes between governor
// checks. It bounds both the hot-path overhead (one atomic add and one
// ctx.Err read per stride) and the rows processed after cancellation
// (at most one stride per concurrent worker, asserted in
// TestCancelBoundedRows).
const govStride = 1024

// govCounters is the per-statement progress state shared by every governor
// derived for the statement (parallel workers share one budget).
type govCounters struct {
	scanned int64 // atomic: rows pulled out of base-table scans
	rows    int64 // atomic: rows materialized
	bytes   int64 // atomic: approximate bytes materialized
	groups  int64 // atomic: aggregation groups allocated
}

// governor carries one statement's context and budgets through execution.
// All methods are safe on a nil receiver (ungoverned execution, used by
// unit tests that drive operators directly), where every check passes.
type governor struct {
	ctx context.Context
	lim Limits
	c   *govCounters
}

// newGovernor starts governance for one statement.
func newGovernor(ctx context.Context, lim Limits) *governor {
	return &governor{ctx: ctx, lim: lim, c: &govCounters{}}
}

// withCtx derives a governor under a different context (the per-fan-out
// cancel context) that shares the statement's counters and limits.
func (g *governor) withCtx(ctx context.Context) *governor {
	if g == nil {
		return nil
	}
	return &governor{ctx: ctx, lim: g.lim, c: g.c}
}

// check returns the typed cancellation error if the statement's context is
// done.
func (g *governor) check() error {
	if g == nil || g.ctx == nil {
		return nil
	}
	if err := g.ctx.Err(); err != nil {
		return &CancelledError{cause: err}
	}
	return nil
}

// addScanned counts base-table rows scanned (not limited; the counter is
// what makes cancellation latency observable and testable) and checks the
// context.
func (g *governor) addScanned(n int64) error {
	if g == nil {
		return nil
	}
	atomic.AddInt64(&g.c.scanned, n)
	return g.check()
}

// addRows counts materialized rows against MaxRows and checks the context.
func (g *governor) addRows(n int64) error {
	if g == nil {
		return nil
	}
	total := atomic.AddInt64(&g.c.rows, n)
	if g.lim.MaxRows > 0 && total > g.lim.MaxRows {
		return &LimitError{PCTCode: diag.CodeRowLimit, Resource: "materialized-row", Limit: g.lim.MaxRows}
	}
	return g.check()
}

// addBytes counts approximate materialized bytes against MaxBytes.
func (g *governor) addBytes(n int64) error {
	if g == nil {
		return nil
	}
	total := atomic.AddInt64(&g.c.bytes, n)
	if g.lim.MaxBytes > 0 && total > g.lim.MaxBytes {
		return &LimitError{PCTCode: diag.CodeByteBudget, Resource: "byte-budget", Limit: g.lim.MaxBytes}
	}
	return nil
}

// addGroups counts aggregation groups against MaxGroups.
func (g *governor) addGroups(n int64) error {
	if g == nil {
		return nil
	}
	total := atomic.AddInt64(&g.c.groups, n)
	if g.lim.MaxGroups > 0 && total > g.lim.MaxGroups {
		return &LimitError{PCTCode: diag.CodeGroupLimit, Resource: "group", Limit: g.lim.MaxGroups}
	}
	return g.check()
}

// bytesRemaining reports the unused byte budget, or -1 when unlimited.
func (g *governor) bytesRemaining() int64 {
	if g == nil || g.lim.MaxBytes <= 0 {
		return -1
	}
	rem := g.lim.MaxBytes - atomic.LoadInt64(&g.c.bytes)
	if rem < 0 {
		rem = 0
	}
	return rem
}

// scanned reports the statement's scanned-row counter. The
// cancellation-latency test and benchmark read it to bound how many rows a
// cancelled statement kept processing.
func (g *governor) scanned() int64 {
	if g == nil {
		return 0
	}
	return atomic.LoadInt64(&g.c.scanned)
}

// estimateRowBytes approximates the resident size of one row: a fixed
// per-value overhead plus string payloads. Exactness is not the point —
// the budget guards order-of-magnitude blowups, not allocator accounting.
func estimateRowBytes(row []value.Value) int64 {
	n := int64(len(row)) * 24
	for _, v := range row {
		if v.Kind() == value.KindString {
			n += int64(len(v.Str()))
		}
	}
	return n
}

// governIter attaches the statement's governor down an iterator tree, the
// same walk instrumentIter does for tracing: base scans get stride-checked
// cancellation, join build sides get governed builds.
func governIter(it iterator, g *governor) {
	if g == nil {
		return
	}
	switch n := it.(type) {
	case *tableScan:
		n.gov = g
	case *filterIter:
		governIter(n.child, g)
	case *hashJoin:
		n.build.gov = g
		governIter(n.left, g)
	case *nestedLoopJoin:
		n.gov = g
		governIter(n.left, g)
		governIter(n.rightSrc, g)
	}
}

// recoverToError converts a recovered panic into a typed, contained error,
// counting it. Used via defer in statement dispatch and worker goroutines:
//
//	defer recoverToError(&err, "statement")
func recoverToError(err *error, point string) {
	if r := recover(); r != nil {
		*err = NewPanicError(point, r)
	}
}
