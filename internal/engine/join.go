package engine

import (
	"strings"
	"time"

	"repro/internal/chaos"
	"repro/internal/expr"
	"repro/internal/storage"
	"repro/internal/value"
)

// bindExpr resolves column references in e against a relation schema, then
// specializes hot sub-patterns (see specialize.go).
func bindExpr(e expr.Expr, sch relSchema) (expr.Expr, error) {
	b, err := expr.Bind(e, func(qualifier, name string) (int, error) {
		return sch.resolve(qualifier, name)
	})
	if err != nil {
		return nil, err
	}
	return specialize(b), nil
}

// splitConjuncts flattens an AND tree into its conjuncts.
func splitConjuncts(e expr.Expr) []expr.Expr {
	if b, ok := e.(*expr.BinaryOp); ok && b.Op == "AND" {
		return append(splitConjuncts(b.Left), splitConjuncts(b.Right)...)
	}
	return []expr.Expr{e}
}

// andAll rebuilds a conjunction; nil for an empty list.
func andAll(conjuncts []expr.Expr) expr.Expr {
	var out expr.Expr
	for _, c := range conjuncts {
		if out == nil {
			out = c
		} else {
			out = &expr.BinaryOp{Op: "AND", Left: out, Right: c}
		}
	}
	return out
}

// joinPair is one extracted equijoin condition: leftIdx in the left (probe)
// schema equals rightIdx in the right (build) schema. nullSafe pairs treat
// two NULLs as equal (extracted from the null-safe disjunction the
// percentage-query generator emits, "a = b OR (a IS NULL AND b IS NULL)").
type joinPair struct {
	leftIdx  int
	rightIdx int
	nullSafe bool
}

// extractEquiPairs partitions conjuncts into equijoin pairs connecting the
// two schemas and residual predicates over the combined schema. It accepts
// plain equalities and the null-safe disjunction form.
func extractEquiPairs(conjuncts []expr.Expr, left, right relSchema) (pairs []joinPair, residual []expr.Expr) {
	for _, c := range conjuncts {
		lc, rc, nullSafe := matchJoinCondition(c)
		if lc != nil {
			if li, err := left.resolve(lc.Qualifier, lc.Name); err == nil {
				if ri, err := right.resolve(rc.Qualifier, rc.Name); err == nil {
					pairs = append(pairs, joinPair{leftIdx: li, rightIdx: ri, nullSafe: nullSafe})
					continue
				}
			}
			if li, err := left.resolve(rc.Qualifier, rc.Name); err == nil {
				if ri, err := right.resolve(lc.Qualifier, lc.Name); err == nil {
					pairs = append(pairs, joinPair{leftIdx: li, rightIdx: ri, nullSafe: nullSafe})
					continue
				}
			}
		}
		residual = append(residual, c)
	}
	return pairs, residual
}

// matchJoinCondition recognizes "colA = colB" and the null-safe form
// "colA = colB OR (colA IS NULL AND colB IS NULL)", returning the two
// column references.
func matchJoinCondition(c expr.Expr) (l, r *expr.ColumnRef, nullSafe bool) {
	b, ok := c.(*expr.BinaryOp)
	if !ok {
		return nil, nil, false
	}
	if b.Op == "=" {
		lc, lok := b.Left.(*expr.ColumnRef)
		rc, rok := b.Right.(*expr.ColumnRef)
		if lok && rok {
			return lc, rc, false
		}
		return nil, nil, false
	}
	if b.Op != "OR" {
		return nil, nil, false
	}
	eq, ok := b.Left.(*expr.BinaryOp)
	if !ok || eq.Op != "=" {
		return nil, nil, false
	}
	lc, lok := eq.Left.(*expr.ColumnRef)
	rc, rok := eq.Right.(*expr.ColumnRef)
	if !lok || !rok {
		return nil, nil, false
	}
	and, ok := b.Right.(*expr.BinaryOp)
	if !ok || and.Op != "AND" {
		return nil, nil, false
	}
	n1, ok1 := and.Left.(*expr.IsNull)
	n2, ok2 := and.Right.(*expr.IsNull)
	if !ok1 || !ok2 || n1.Negate || n2.Negate {
		return nil, nil, false
	}
	c1, ok1 := n1.Operand.(*expr.ColumnRef)
	c2, ok2 := n2.Operand.(*expr.ColumnRef)
	if !ok1 || !ok2 {
		return nil, nil, false
	}
	if sameColRef(lc, c1) && sameColRef(rc, c2) || sameColRef(lc, c2) && sameColRef(rc, c1) {
		return lc, rc, true
	}
	return nil, nil, false
}

func sameColRef(a, b *expr.ColumnRef) bool {
	return strings.EqualFold(a.Qualifier, b.Qualifier) && strings.EqualFold(a.Name, b.Name)
}

// buildSide is the right side of a hash join: either an ad-hoc hash table or
// a pre-existing storage index (the paper's subkey-index optimization skips
// the build phase by reusing the index). The ad-hoc table is built lazily,
// on the first probe, so constructing the join — which EXPLAIN does to
// render real plan decisions — costs nothing; only the cheap index check
// runs eagerly because the plan text reports which build strategy applies.
type buildSide struct {
	tab       *storage.Table // set when rows come straight from a table
	rows      [][]value.Value
	pairs     []joinPair
	buckets   map[string][]int // key → positions in rows (or table row ids)
	useIndex  bool
	lookupFn  func(key string) []int
	built     bool
	buildNs   int64 // wall time of the ad-hoc build, for traces
	buildRows int64
	gov       *governor // statement governor; nil when ungoverned
}

// ensure performs the deferred build work on first probe and records the
// join-build metrics (EXPLAIN never probes, so it never counts here). The
// build loop is one of the statement's long loops: it checks the governor
// every govStride rows and charges the hash table against the row budget.
func (b *buildSide) ensure() error {
	if b.built {
		return nil
	}
	b.built = true
	if err := chaos.Hit(chaos.JoinBuild); err != nil {
		return err
	}
	if b.useIndex {
		mJoinIndexReuse.Inc()
		return nil
	}
	t0 := time.Now()
	key := make([]byte, 0, 32)
	if b.tab != nil {
		b.buckets = make(map[string][]int, b.tab.NumRows())
		for r := 0; r < b.tab.NumRows(); r++ {
			if b.gov != nil && r > 0 && r%govStride == 0 {
				if err := b.gov.addRows(govStride); err != nil {
					return err
				}
			}
			key = key[:0]
			for _, p := range b.pairs {
				key = value.AppendKey(key, b.tab.Get(r, p.rightIdx))
			}
			b.buckets[string(key)] = append(b.buckets[string(key)], r)
		}
		b.buildRows = int64(b.tab.NumRows())
	} else {
		b.buckets = make(map[string][]int, len(b.rows))
		for r, row := range b.rows {
			if b.gov != nil && r > 0 && r%govStride == 0 {
				if err := b.gov.addRows(govStride); err != nil {
					return err
				}
			}
			key = key[:0]
			for _, p := range b.pairs {
				key = value.AppendKey(key, row[p.rightIdx])
			}
			b.buckets[string(key)] = append(b.buckets[string(key)], r)
		}
		b.buildRows = int64(len(b.rows))
	}
	if b.gov != nil {
		if err := b.gov.addRows(b.buildRows % govStride); err != nil {
			return err
		}
	}
	b.lookupFn = func(k string) []int { return b.buckets[k] }
	b.buildNs = time.Since(t0).Nanoseconds()
	mJoinBuilds.Inc()
	return nil
}

// hashJoin streams the left (probe) side against a materialized right
// (build) side. outer selects LEFT OUTER semantics: probe rows without a
// match emit once with NULL-extended build columns.
type hashJoin struct {
	left    iterator
	build   *buildSide
	pairs   []joinPair
	outer   bool
	sch     relSchema
	rightW  int
	keyBuf  []byte
	pending []int         // remaining matches for the current probe row
	current []value.Value // current probe row (copy not needed within step)
	outBuf  []value.Value
	stats   *opStats
	// Batched probe fast path (see stepFast): enabled by markJoinBatch when
	// the statement runs with vectorized execution on. fastProbe is lazily
	// decided on the first step: 0 undecided, 1 on, -1 off.
	batchOK   bool
	fastProbe int8
	probeScan *tableScan
	probeGet  []colGetter
	curBuf    []value.Value
}

// markJoinBatch arms the batched probe fast path on every hash join in a
// pipeline. Called by execSelect once the statement's batch toggle is
// known; the per-join eligibility check happens at first probe.
func markJoinBatch(it iterator, on bool) {
	switch n := it.(type) {
	case *hashJoin:
		n.batchOK = on
		markJoinBatch(n.left, on)
	case *nestedLoopJoin:
		markJoinBatch(n.left, on)
	case *filterIter:
		markJoinBatch(n.child, on)
	}
}

// initFastProbe decides whether this join may probe straight off the left
// table's column vectors: inner join, bare table-scan left side, and no
// per-operator instrumentation (the scalar probe is the one that feeds
// operator stats and the governor through the scan iterator).
func (j *hashJoin) initFastProbe() {
	j.fastProbe = -1
	if !j.batchOK || j.outer || j.stats != nil {
		return
	}
	scan, ok := j.left.(*tableScan)
	if !ok || scan.stats != nil || scan.pos != 0 || scan.counted {
		return
	}
	for _, p := range j.pairs {
		j.probeGet = append(j.probeGet, columnGetter(scan.tab, p.leftIdx))
	}
	j.probeScan = scan
	j.fastProbe = 1
}

// stepFast is the batched probe: the join key is encoded from typed column
// getters and a probe row is boxed only when it has matches — misses cost
// no row materialization at all. Governor charging mirrors tableScan.step
// (same stride, same exhaustion remainder), so limits and cancellation
// behave identically to the scalar probe.
func (j *hashJoin) stepFast() ([]value.Value, bool, error) {
	scan := j.probeScan
	n := scan.tab.NumRows()
	// pctvet:ok each iteration dequeues a match or advances the scan cursor, governed every stride
	for {
		if len(j.pending) > 0 {
			r := j.pending[0]
			j.pending = j.pending[1:]
			return j.emit(r), true, nil
		}
		r := scan.pos
		if r >= n {
			if !scan.counted {
				scan.counted = true
				mRowsScanned.Add(int64(r))
				if err := scan.gov.addScanned(int64(r % govStride)); err != nil {
					return nil, false, err
				}
			}
			return nil, false, nil
		}
		if r > 0 && r%govStride == 0 {
			if err := scan.gov.addScanned(govStride); err != nil {
				return nil, false, err
			}
		}
		scan.pos++
		j.keyBuf = j.keyBuf[:0]
		nullKey := false
		for i, get := range j.probeGet {
			v := get(r)
			if v.IsNull() && !j.pairs[i].nullSafe {
				nullKey = true
			}
			j.keyBuf = value.AppendKey(j.keyBuf, v)
		}
		var matches []int
		if !nullKey { // plain SQL equality never matches on NULL keys
			matches = j.build.lookupFn(string(j.keyBuf))
		}
		if len(matches) == 0 {
			continue
		}
		j.curBuf = scan.tab.Row(r, j.curBuf)
		j.current = j.curBuf
		j.pending = matches
	}
}

// newHashJoinFromTable sets up the join against a base table right side. If
// useIndex is true and the table has an index exactly on the join columns,
// the index serves as the hash table; otherwise an ad-hoc table is built —
// lazily, on the first probe (see buildSide.ensure).
func newHashJoinFromTable(left iterator, right *storage.Table, rightAlias string,
	pairs []joinPair, outer bool, useIndex bool) (*hashJoin, error) {

	rightSch := schemaOf(right, rightAlias)
	b := &buildSide{tab: right, pairs: pairs}
	if useIndex {
		cols := make([]string, len(pairs))
		for i, p := range pairs {
			cols[i] = rightSch[p.rightIdx].Name
		}
		if ix := right.IndexOn(cols); ix != nil {
			b.useIndex = true
			b.lookupFn = ix.LookupKey
		}
	}
	return &hashJoin{
		left:   left,
		build:  b,
		pairs:  pairs,
		outer:  outer,
		sch:    append(append(relSchema{}, left.schema()...), rightSch...),
		rightW: len(rightSch),
	}, nil
}

// newHashJoinFromRows sets up the join against a materialized relation; the
// hash table is built on first probe.
func newHashJoinFromRows(left iterator, right *memRelation, pairs []joinPair, outer bool) *hashJoin {
	b := &buildSide{rows: right.rows, pairs: pairs}
	return &hashJoin{
		left:   left,
		build:  b,
		pairs:  pairs,
		outer:  outer,
		sch:    append(append(relSchema{}, left.schema()...), right.sch...),
		rightW: len(right.sch),
	}
}

func (j *hashJoin) schema() relSchema { return j.sch }

func (j *hashJoin) next() ([]value.Value, bool, error) {
	if j.stats != nil {
		t0 := time.Now()
		row, ok, err := j.step()
		j.stats.ns += time.Since(t0).Nanoseconds()
		if ok {
			j.stats.rows++
		}
		return row, ok, err
	}
	return j.step()
}

func (j *hashJoin) step() ([]value.Value, bool, error) {
	if err := j.build.ensure(); err != nil {
		return nil, false, err
	}
	if j.fastProbe == 0 {
		j.initFastProbe()
	}
	if j.fastProbe > 0 {
		return j.stepFast()
	}
	// pctvet:ok each iteration dequeues a match or pulls left.next(), governed at the scan leaf
	for {
		if len(j.pending) > 0 {
			r := j.pending[0]
			j.pending = j.pending[1:]
			return j.emit(r), true, nil
		}
		row, ok, err := j.left.next()
		if !ok || err != nil {
			return nil, false, err
		}
		j.keyBuf = j.keyBuf[:0]
		nullKey := false
		for _, p := range j.pairs {
			v := row[p.leftIdx]
			if v.IsNull() && !p.nullSafe {
				nullKey = true
			}
			j.keyBuf = value.AppendKey(j.keyBuf, v)
		}
		j.current = row
		var matches []int
		if !nullKey { // plain SQL equality never matches on NULL keys
			matches = j.build.lookupFn(string(j.keyBuf))
		}
		if len(matches) == 0 {
			if j.outer {
				return j.emitNull(), true, nil
			}
			continue
		}
		j.pending = matches
	}
}

// emit concatenates the probe row with build row r into the reusable output
// buffer.
func (j *hashJoin) emit(r int) []value.Value {
	j.outBuf = j.outBuf[:0]
	j.outBuf = append(j.outBuf, j.current...)
	if j.build.tab != nil {
		for c := 0; c < j.rightW; c++ {
			j.outBuf = append(j.outBuf, j.build.tab.Get(r, c))
		}
	} else {
		j.outBuf = append(j.outBuf, j.build.rows[r]...)
	}
	return j.outBuf
}

// emitNull extends the probe row with NULLs for a non-matching outer row.
func (j *hashJoin) emitNull() []value.Value {
	j.outBuf = j.outBuf[:0]
	j.outBuf = append(j.outBuf, j.current...)
	for c := 0; c < j.rightW; c++ {
		j.outBuf = append(j.outBuf, value.Null)
	}
	return j.outBuf
}

// nestedLoopJoin is the reference fallback for joins whose ON clause is not
// a conjunction of column equalities. The right side materializes lazily on
// the first probe (so EXPLAIN constructs the join for free); the predicate
// is evaluated over each row pair.
type nestedLoopJoin struct {
	left     iterator
	rightSrc iterator
	right    *memRelation // nil until the first probe materializes rightSrc
	matNs    int64        // wall time of the lazy materialization, for traces
	pred     expr.Expr    // bound over the combined schema; nil means cross product
	box      rowBox
	outer    bool
	sch      relSchema
	cur      []value.Value
	curSet   bool
	rpos     int
	seen     bool
	outBuf   []value.Value
	stats    *opStats
	gov      *governor // governs the lazy right-side materialization
}

func newNestedLoopJoin(left iterator, rightSrc iterator, pred expr.Expr, outer bool) *nestedLoopJoin {
	return &nestedLoopJoin{
		left:     left,
		rightSrc: rightSrc,
		pred:     pred,
		outer:    outer,
		sch:      append(append(relSchema{}, left.schema()...), rightSrc.schema()...),
	}
}

func (j *nestedLoopJoin) schema() relSchema { return j.sch }

func (j *nestedLoopJoin) next() ([]value.Value, bool, error) {
	if j.stats != nil {
		t0 := time.Now()
		row, ok, err := j.step()
		j.stats.ns += time.Since(t0).Nanoseconds()
		if ok {
			j.stats.rows++
		}
		return row, ok, err
	}
	return j.step()
}

func (j *nestedLoopJoin) step() ([]value.Value, bool, error) {
	if j.right == nil {
		t0 := time.Now()
		m, err := materialize(j.rightSrc, j.gov)
		if err != nil {
			return nil, false, err
		}
		j.right = m
		j.matNs = time.Since(t0).Nanoseconds()
	}
	for {
		if !j.curSet {
			row, ok, err := j.left.next()
			if !ok || err != nil {
				return nil, false, err
			}
			j.cur = append(j.cur[:0], row...)
			j.curSet = true
			j.rpos = 0
			j.seen = false
		}
		for j.rpos < len(j.right.rows) {
			// The probe side polls only per left row; with |R| inner
			// iterations per probe the product can dwarf the scan stride,
			// so poll here too.
			if j.rpos%govStride == 0 {
				if err := j.gov.check(); err != nil {
					return nil, false, err
				}
			}
			r := j.right.rows[j.rpos]
			j.rpos++
			j.outBuf = append(append(j.outBuf[:0], j.cur...), r...)
			if j.pred != nil {
				j.box.vals = j.outBuf
				v, err := j.pred.Eval(&j.box)
				if err != nil {
					return nil, false, err
				}
				if !v.Truthy() {
					continue
				}
			}
			j.seen = true
			return j.outBuf, true, nil
		}
		j.curSet = false
		if j.outer && !j.seen {
			j.outBuf = append(j.outBuf[:0], j.cur...)
			for range j.right.sch {
				j.outBuf = append(j.outBuf, value.Null)
			}
			return j.outBuf, true, nil
		}
	}
}

// Compile-time interface checks.
var (
	_ iterator = (*hashJoin)(nil)
	_ iterator = (*nestedLoopJoin)(nil)
	_ iterator = (*tableScan)(nil)
	_ iterator = (*filterIter)(nil)
	_ iterator = (*memRelation)(nil)
)
