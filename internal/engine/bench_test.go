package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/storage"
	"repro/internal/value"
)

// Micro-benchmarks for the engine's hot operators, at a size small enough
// for quick iteration. The repository-level bench_test.go holds the
// paper-table benchmarks.

func benchEngine(b *testing.B, rows int) *Engine {
	b.Helper()
	e := New(storage.NewCatalog())
	if _, err := e.ExecSQL("CREATE TABLE f (g1 INTEGER, g2 INTEGER, d INTEGER, a INTEGER)"); err != nil {
		b.Fatal(err)
	}
	tab, _ := e.Catalog().Get("f")
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < rows; i++ {
		tab.AppendRow([]value.Value{
			value.NewInt(int64(rng.Intn(100))),
			value.NewInt(int64(rng.Intn(10))),
			value.NewInt(int64(rng.Intn(7))),
			value.NewInt(int64(rng.Intn(1000))),
		})
	}
	return e
}

func benchQuery(b *testing.B, e *Engine, sql string) {
	b.Helper()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.ExecSQL(sql); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScanFilter(b *testing.B) {
	e := benchEngine(b, 100_000)
	benchQuery(b, e, "SELECT count(*) FROM f WHERE a BETWEEN 100 AND 200 AND d IN (1, 2)")
}

func BenchmarkHashAggregate(b *testing.B) {
	e := benchEngine(b, 100_000)
	benchQuery(b, e, "SELECT g1, g2, sum(a), count(*) FROM f GROUP BY g1, g2")
}

func BenchmarkHashAggregateWithCASEFanout(b *testing.B) {
	e := benchEngine(b, 100_000)
	// Seven CASE columns, the Hpct-direct shape.
	sql := "SELECT g1"
	for d := 0; d < 7; d++ {
		sql += fmt.Sprintf(", sum(CASE WHEN d = %d THEN a ELSE 0 END)", d)
	}
	sql += " FROM f GROUP BY g1"
	benchQuery(b, e, sql)
}

func BenchmarkHashJoin(b *testing.B) {
	e := benchEngine(b, 100_000)
	if _, err := e.ExecSQL("CREATE TABLE dim (g1 INTEGER, v INTEGER)"); err != nil {
		b.Fatal(err)
	}
	dim, _ := e.Catalog().Get("dim")
	for i := 0; i < 100; i++ {
		dim.AppendRow([]value.Value{value.NewInt(int64(i)), value.NewInt(int64(i * 10))})
	}
	benchQuery(b, e, "SELECT sum(dim.v) FROM f, dim WHERE f.g1 = dim.g1")
}

func BenchmarkWindowAggregate(b *testing.B) {
	e := benchEngine(b, 50_000)
	benchQuery(b, e, "SELECT DISTINCT g1, sum(a) OVER (PARTITION BY g1) FROM f")
}

func BenchmarkBulkUpdateJoined(b *testing.B) {
	e := benchEngine(b, 20_000)
	if _, err := e.ExecSQL(`CREATE TABLE tot (g1 INTEGER, s REAL);
		INSERT INTO tot SELECT g1, sum(a) FROM f GROUP BY g1;
		CREATE TABLE fk (g1 INTEGER, g2 INTEGER, s REAL);
		INSERT INTO fk SELECT g1, g2, sum(a) FROM f GROUP BY g1, g2`); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.ExecSQL("UPDATE fk FROM tot SET s = fk.s / tot.s WHERE fk.g1 = tot.g1"); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkInsertSelect(b *testing.B) {
	e := benchEngine(b, 50_000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sql := fmt.Sprintf(`CREATE TABLE out%d (g1 INTEGER, s INTEGER);
			INSERT INTO out%d SELECT g1, sum(a) FROM f GROUP BY g1;
			DROP TABLE out%d`, i, i, i)
		if _, err := e.ExecSQL(sql); err != nil {
			b.Fatal(err)
		}
	}
}
