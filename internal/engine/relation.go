// Package engine executes parsed SQL statements against the storage
// catalog. It provides the relational machinery the paper's strategies
// compile to: streaming table scans, filters, hash equijoins (inner and
// left-outer, index-aware), hash group-by aggregation, DISTINCT, ORDER BY,
// ANSI OLAP window aggregates (the paper's comparison baseline), INSERT …
// SELECT into temporary tables, and the cross-table UPDATE the paper's
// update-based Vpct strategy uses.
//
// Horizontal aggregate calls (any aggregate with a BY list, including Vpct
// and Hpct) are NOT executable here: the core package rewrites them into the
// standard SQL this engine runs, exactly as the paper's code generator does.
package engine

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/expr"
	"repro/internal/storage"
	"repro/internal/value"
)

// relCol is one column of an intermediate relation: its source qualifier
// (table alias), bare name, and declared type.
type relCol struct {
	Qualifier string
	Name      string
	Type      storage.ColumnType
}

// relSchema is the ordered column list of an intermediate relation.
type relSchema []relCol

// resolve maps a (qualifier, name) reference to a column position,
// reporting unknown and ambiguous references.
func (s relSchema) resolve(qualifier, name string) (int, error) {
	found := -1
	for i, c := range s {
		if !strings.EqualFold(c.Name, name) {
			continue
		}
		if qualifier != "" && !strings.EqualFold(c.Qualifier, qualifier) {
			continue
		}
		if found >= 0 {
			if qualifier == "" {
				return 0, fmt.Errorf("engine: ambiguous column %q", name)
			}
			return 0, fmt.Errorf("engine: ambiguous column %s.%s", qualifier, name)
		}
		found = i
	}
	if found < 0 {
		if qualifier != "" {
			return 0, fmt.Errorf("engine: unknown column %s.%s", qualifier, name)
		}
		return 0, fmt.Errorf("engine: unknown column %q", name)
	}
	return found, nil
}

// schemaOf builds the relation schema of a base table under an alias.
func schemaOf(t *storage.Table, alias string) relSchema {
	if alias == "" {
		alias = t.Name()
	}
	out := make(relSchema, 0, t.NumCols())
	for _, c := range t.Schema() {
		out = append(out, relCol{Qualifier: alias, Name: c.Name, Type: c.Type})
	}
	return out
}

// iterator is a streaming row source. Next returns a row valid only until
// the following Next call; sinks that retain rows must copy them.
type iterator interface {
	schema() relSchema
	next() ([]value.Value, bool, error)
}

// tableScan streams a base table, reusing one row buffer. stats is non-nil
// only for traced statements (see trace.go); the per-row cost of the
// disabled state is one pointer test. Rows scanned are added to the metric
// once, at exhaustion, so the hot loop stays allocation- and atomic-free.
type tableScan struct {
	tab     *storage.Table
	sch     relSchema
	pos     int
	buf     []value.Value
	counted bool
	stats   *opStats
	// gov, when non-nil, gets a cancellation check every govStride rows
	// (see lifecycle.go); one int test per row otherwise.
	gov *governor
}

func newTableScan(t *storage.Table, alias string) *tableScan {
	return &tableScan{tab: t, sch: schemaOf(t, alias)}
}

func (s *tableScan) schema() relSchema { return s.sch }

func (s *tableScan) next() ([]value.Value, bool, error) {
	if s.stats != nil {
		t0 := time.Now()
		row, ok, err := s.step()
		s.stats.ns += time.Since(t0).Nanoseconds()
		if ok {
			s.stats.rows++
		}
		return row, ok, err
	}
	return s.step()
}

func (s *tableScan) step() ([]value.Value, bool, error) {
	if s.pos >= s.tab.NumRows() {
		if !s.counted {
			s.counted = true
			mRowsScanned.Add(int64(s.pos))
			if s.gov != nil {
				s.gov.addScanned(int64(s.pos % govStride))
			}
		}
		return nil, false, nil
	}
	if s.gov != nil && s.pos > 0 && s.pos%govStride == 0 {
		if err := s.gov.addScanned(govStride); err != nil {
			return nil, false, err
		}
	}
	s.buf = s.tab.Row(s.pos, s.buf)
	s.pos++
	return s.buf, true, nil
}

// filterIter drops rows whose predicate is not truthy (false or NULL).
type filterIter struct {
	child iterator
	pred  expr.Expr // bound against the child schema
	box   rowBox
	stats *opStats
}

// rowView adapts a value slice to expr.Row.
type rowView []value.Value

// ColumnValue returns the i-th value.
func (r rowView) ColumnValue(i int) value.Value { return r[i] }

// rowBox adapts a reusable value slice to expr.Row. Unlike converting a
// rowView per call — which boxes a slice header on the heap every time —
// a *rowBox converts to the interface without allocating, so hot loops
// (aggregation, filters, window sweeps) retarget one box per batch.
type rowBox struct{ vals []value.Value }

// ColumnValue returns the i-th value.
func (b *rowBox) ColumnValue(i int) value.Value { return b.vals[i] }

func (f *filterIter) schema() relSchema { return f.child.schema() }

func (f *filterIter) next() ([]value.Value, bool, error) {
	if f.stats != nil {
		t0 := time.Now()
		row, ok, err := f.step()
		f.stats.ns += time.Since(t0).Nanoseconds()
		if ok {
			f.stats.rows++
		}
		return row, ok, err
	}
	return f.step()
}

func (f *filterIter) step() ([]value.Value, bool, error) {
	// pctvet:ok every iteration pulls child.next(), governed at the scan leaf by addScanned
	for {
		row, ok, err := f.child.next()
		if !ok || err != nil {
			return nil, false, err
		}
		f.box.vals = row
		v, err := f.pred.Eval(&f.box)
		if err != nil {
			return nil, false, err
		}
		if v.Truthy() {
			return row, true, nil
		}
	}
}

// memRelation is a materialized relation, used where streaming is not
// possible (window-function input, join build sides, reference operators in
// tests).
type memRelation struct {
	sch   relSchema
	rows  [][]value.Value
	pos   int
	stats *opStats
}

func (m *memRelation) schema() relSchema { return m.sch }

func (m *memRelation) next() ([]value.Value, bool, error) {
	if m.pos >= len(m.rows) {
		return nil, false, nil
	}
	r := m.rows[m.pos]
	m.pos++
	if m.stats != nil {
		m.stats.rows++
	}
	return r, true, nil
}

// materialize drains an iterator into a memRelation, copying rows. A
// non-nil governor charges every buffered row against the statement's
// row and byte budgets — materialization is where memory is actually
// committed, so this is where MaxRows/MaxBytes bite.
func materialize(it iterator, gov *governor) (*memRelation, error) {
	out := &memRelation{sch: it.schema()}
	var pendingBytes int64
	for {
		row, ok, err := it.next()
		if err != nil {
			return nil, err
		}
		if !ok {
			if gov != nil {
				if err := gov.addRows(int64(len(out.rows) % govStride)); err != nil {
					return nil, err
				}
				if err := gov.addBytes(pendingBytes); err != nil {
					return nil, err
				}
			}
			return out, nil
		}
		out.rows = append(out.rows, append([]value.Value(nil), row...))
		if gov != nil {
			pendingBytes += estimateRowBytes(row)
			if len(out.rows)%govStride == 0 {
				if err := gov.addRows(govStride); err != nil {
					return nil, err
				}
				if err := gov.addBytes(pendingBytes); err != nil {
					return nil, err
				}
				pendingBytes = 0
			}
		}
	}
}
