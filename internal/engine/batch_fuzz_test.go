package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/storage"
	"repro/internal/value"
)

// fuzzFoldSchema is the fuzz fact table: int and string group keys, an int
// and a float measure, a bool column — every type the fold kernels
// specialize on, all nullable.
var fuzzFoldSchema = storage.Schema{
	{Name: "d1", Type: storage.TypeInt},
	{Name: "d2", Type: storage.TypeInt},
	{Name: "d3", Type: storage.TypeString},
	{Name: "a", Type: storage.TypeInt},
	{Name: "b", Type: storage.TypeFloat},
	{Name: "c", Type: storage.TypeBool},
}

// fuzzFoldQueries sweep the five aggregates (sum, count, min, max, count
// DISTINCT, plus avg) over int, float, string, and bool columns, the
// int-key and string-key group paths, error-free and erroring WHERE
// clauses, and shapes the batch planner must refuse (sum over bool).
var fuzzFoldQueries = []string{
	"SELECT d1, sum(a), count(*) FROM f GROUP BY d1",
	"SELECT d1, d3, min(a), max(b), count(a) FROM f GROUP BY d1, d3",
	"SELECT d3, count(DISTINCT a), sum(b) FROM f GROUP BY d3",
	"SELECT d1, d2, sum(a), avg(b) FROM f WHERE d2 = 1 GROUP BY d1, d2",
	"SELECT sum(a), min(b), max(a), count(*) FROM f",
	"SELECT d1, count(*) FROM f WHERE 10 / d2 > 2 GROUP BY d1",
	"SELECT c, sum(a), min(d3) FROM f WHERE d1 IS NULL GROUP BY c",
	"SELECT d1, sum(c) FROM f GROUP BY d1",
}

func fuzzFoldRow(rng *rand.Rand) []value.Value {
	strs := []string{"x", "y", "z", "w"}
	row := []value.Value{
		value.NewInt(int64(rng.Intn(5))),
		value.NewInt(int64(rng.Intn(3))), // includes 0: 10/d2 errors
		value.NewString(strs[rng.Intn(len(strs))]),
		value.NewInt(int64(rng.Intn(41) - 20)),
		value.NewFloat(float64(rng.Intn(200)-100) / 4),
		value.NewBool(rng.Intn(2) == 0),
	}
	if rng.Intn(8) == 0 {
		row[3] = value.Null
	}
	if rng.Intn(8) == 0 {
		row[4] = value.Null
	}
	if rng.Intn(12) == 0 {
		row[rng.Intn(3)] = value.Null
	}
	return row
}

// fuzzResultDiff compares two results exactly — same columns, rows, order,
// value kinds — and returns "" when identical.
func fuzzResultDiff(a, b *Result) string {
	if len(a.Columns) != len(b.Columns) {
		return fmt.Sprintf("column count %d vs %d", len(a.Columns), len(b.Columns))
	}
	if len(a.Rows) != len(b.Rows) {
		return fmt.Sprintf("row count %d vs %d", len(a.Rows), len(b.Rows))
	}
	for ri := range a.Rows {
		for ci := range a.Rows[ri] {
			va, vb := a.Rows[ri][ci], b.Rows[ri][ci]
			switch {
			case va.IsNull() != vb.IsNull():
				return fmt.Sprintf("row %d col %d: %v vs %v", ri, ci, va, vb)
			case va.IsNull():
			case va.Kind() != vb.Kind() || value.Compare(va, vb) != 0:
				return fmt.Sprintf("row %d col %d: %v (%v) vs %v (%v)", ri, ci, va, va.Kind(), vb, vb.Kind())
			}
		}
	}
	return ""
}

// FuzzBatchFoldEquivalence proves batched folds ≡ scalar folds: a seeded
// random typed table (NULLs included) runs one aggregation query with the
// batch kernels off at P=1 (the reference) and on at a fuzzed parallelism;
// results must be byte-identical and errors must match exactly.
func FuzzBatchFoldEquivalence(f *testing.F) {
	for q := range fuzzFoldQueries {
		f.Add(int64(q)*7919+1, uint16(900+137*q), uint8(q), uint8(q%3))
	}
	f.Add(int64(-42), uint16(0), uint8(0), uint8(2))    // empty-ish table
	f.Add(int64(1234), uint16(3000), uint8(5), uint8(1)) // many batches, erroring pred
	f.Fuzz(func(t *testing.T, seed int64, n uint16, q uint8, par uint8) {
		rows := int(n) % 3000
		rng := rand.New(rand.NewSource(seed))
		cat := storage.NewCatalog()
		tab, err := cat.Create("f", fuzzFoldSchema)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < rows; i++ {
			if _, err := tab.AppendRow(fuzzFoldRow(rng)); err != nil {
				t.Fatal(err)
			}
		}
		sql := fuzzFoldQueries[int(q)%len(fuzzFoldQueries)]
		p := []int{1, 2, 8}[int(par)%3]

		e := New(cat)
		e.SetBatch(false)
		ref, refErr := e.ExecSQLP(sql, 1)
		e.SetBatch(true)
		got, gotErr := e.ExecSQLP(sql, p)

		if (refErr == nil) != (gotErr == nil) {
			t.Fatalf("%s: scalar err=%v, batch P=%d err=%v", sql, refErr, p, gotErr)
		}
		if refErr != nil {
			if refErr.Error() != gotErr.Error() {
				t.Fatalf("%s: scalar error %q, batch P=%d error %q", sql, refErr, p, gotErr)
			}
			return
		}
		if diff := fuzzResultDiff(ref, got); diff != "" {
			t.Fatalf("%s: batch P=%d diverges from scalar: %s", sql, p, diff)
		}
	})
}
