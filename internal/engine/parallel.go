package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/chaos"
	"repro/internal/expr"
	"repro/internal/obs"
	"repro/internal/value"
)

// Parallel partitioned aggregation. The input relation is materialized,
// split into P contiguous partitions, and each partition is folded into a
// private accumulator map by its own goroutine. The partial maps are merged
// in ascending partition order, appending each partition's locally-new
// groups in their local first-appearance order. Because a group's global
// first occurrence lies in its lowest-numbered partition, and rows within a
// partition keep the input order, this pinned merge order reproduces the
// sequential fold's first-appearance output order exactly — the result is
// row-for-row identical to hashAggregateSeq (see internal/difftest for the
// differential harness that proves it).
//
// The parallelism knob follows core.Options.Parallelism semantics
// throughout the repo: 0 → one worker per CPU (GOMAXPROCS), 1 → the
// sequential path, n > 1 → exactly n workers (forced even on tiny inputs,
// which is what lets the differential tests exercise the partitioned path
// on hand-sized fixtures).

// autoParallelMinRows gates the automatic mode (parallelism <= 0): below
// this many input rows the goroutine spawn and merge overhead outweighs the
// scan, so the sequential path runs instead. An explicit parallelism > 1
// bypasses the gate.
const autoParallelMinRows = 8192

// resolveWorkers maps a parallelism setting to a worker count.
func resolveWorkers(parallelism int) int {
	if parallelism == 1 {
		return 1
	}
	if parallelism <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return parallelism
}

// hashAggregate dispatches between the sequential fold and the partitioned
// parallel path according to the parallelism setting in ec (see the package
// comment above for its semantics). ec.span, when set, is the aggregate
// stage span: the sequential path adds a "fold" child, the parallel path a
// concurrent "partition fan-out" with one child per worker plus a "merge".
func hashAggregate(in iterator, keyExprs []expr.Expr, specs []aggSpec, ec execCtx) ([][]value.Value, error) {
	if ec.batch {
		// Vectorized fast path (batch.go): covers plain scan→filter→fold
		// pipelines over stored tables, byte-identical to the scalar fold.
		// Unsupported shapes and injected core.batch faults report
		// handled=false and fall through to the scalar paths below.
		if out, handled, err := batchAggregate(in, keyExprs, specs, ec); handled {
			mGroupsEmitted.Add(int64(len(out)))
			return out, err
		}
	}
	workers := resolveWorkers(ec.par)
	if workers <= 1 {
		// The fold drains the pipeline itself, so the operator subtree nests
		// under the fold span: its cumulative time is part of the fold wall.
		sp := ec.span.NewChild("fold")
		out, err := hashAggregateSeq(in, keyExprs, specs, ec.gov)
		sp.End()
		sp.SetRows(-1, int64(len(out)))
		if sp != nil {
			sp.AddChild(operatorSpans(in))
		}
		mGroupsEmitted.Add(int64(len(out)))
		return out, err
	}
	// Iterators reuse row buffers and are not safe to share across
	// goroutines, so the parallel path works on a materialized copy; the
	// single-threaded drain here is also what keeps concurrent readers off
	// the storage layer. The drain is where the operator subtree's time is
	// spent, so it attaches directly under the aggregate span here.
	input, err := materialize(in, ec.gov)
	if err != nil {
		return nil, err
	}
	if ec.span != nil {
		ec.span.AddChild(operatorSpans(in))
	}
	n := len(input.rows)
	if n == 0 || (ec.par <= 0 && n < autoParallelMinRows) {
		mAggSeqFallback.Inc()
		ec.span.Attr("fallback", "sequential (below parallel threshold)")
		sp := ec.span.NewChild("fold")
		out, err := hashAggregateSeq(input, keyExprs, specs, ec.gov)
		sp.End()
		sp.SetRows(int64(n), int64(len(out)))
		mGroupsEmitted.Add(int64(len(out)))
		return out, err
	}
	// Budget-pressure degradation: the parallel path duplicates per-worker
	// accumulator maps and, worst case, roughly doubles the materialized
	// footprint. If the remaining byte budget is smaller than the input we
	// just buffered, folding sequentially is the shape that still fits —
	// degrade instead of failing mid-fan-out.
	if rem := ec.gov.bytesRemaining(); rem >= 0 {
		est := int64(n) * estimateRowBytes(input.rows[0])
		if rem < est {
			mAggBudgetFallback.Inc()
			ec.span.Attr("fallback", "sequential (byte-budget pressure)")
			sp := ec.span.NewChild("fold")
			out, err := hashAggregateSeq(input, keyExprs, specs, ec.gov)
			sp.End()
			sp.SetRows(int64(n), int64(len(out)))
			mGroupsEmitted.Add(int64(len(out)))
			return out, err
		}
	}
	if workers > n {
		workers = n
	}
	mAggParallel.Inc()
	if ec.rec != nil {
		// Written before fan-out and read after the statement completes,
		// both on the statement goroutine — no synchronization needed.
		ec.rec.parallel = true
	}
	out, err := hashAggregateParallel(input.rows, keyExprs, specs, workers, ec.span, ec.gov)
	mGroupsEmitted.Add(int64(len(out)))
	return out, err
}

// partGroup is one group's partial state within a single partition.
type partGroup struct {
	keyVals []value.Value
	accs    []accumulator
}

// partResult is one worker's output: its accumulator map keyed by encoded
// group key, the local first-appearance order of those keys, and the first
// error hit while folding the partition.
type partResult struct {
	groups map[string]*partGroup
	order  []string
	err    error
}

// aggregatePartition folds one contiguous slice of materialized rows.
// keyExprs and the spec argument expressions are shared across workers; all
// bound expression trees in this engine are immutable and stateless under
// Eval, so concurrent evaluation is safe. gov is the worker's governor — it
// shares the statement's counters but watches the fan-out's cancel context,
// so a sibling's failure stops this fold within one stride.
func aggregatePartition(rows [][]value.Value, keyExprs []expr.Expr, specs []aggSpec, gov *governor) partResult {
	res := partResult{groups: make(map[string]*partGroup)}
	keyBuf := make([]byte, 0, 64)
	keyVals := make([]value.Value, len(keyExprs))
	var box rowBox
	for ri, row := range rows {
		if gov != nil && ri > 0 && ri%govStride == 0 {
			if err := gov.check(); err != nil {
				res.err = err
				return res
			}
		}
		box.vals = row
		rv := &box
		keyBuf = keyBuf[:0]
		for i, ke := range keyExprs {
			v, err := ke.Eval(rv)
			if err != nil {
				res.err = err
				return res
			}
			keyVals[i] = v
			keyBuf = value.AppendKey(keyBuf, v)
		}
		gs, ok := res.groups[string(keyBuf)]
		if !ok {
			// Group creation is the unbounded allocation; charge it. Groups
			// shared across partitions are counted once per partition, which
			// over-approximates — a budget, not an exact census.
			if gov != nil {
				if err := gov.addGroups(1); err != nil {
					res.err = err
					return res
				}
			}
			gs = &partGroup{
				keyVals: append([]value.Value(nil), keyVals...),
				accs:    make([]accumulator, len(specs)),
			}
			for i, s := range specs {
				acc, err := newAccumulator(s.call)
				if err != nil {
					res.err = err
					return res
				}
				gs.accs[i] = acc
			}
			k := string(keyBuf)
			res.groups[k] = gs
			res.order = append(res.order, k)
		}
		for i, s := range specs {
			var v value.Value
			if s.arg != nil {
				var err error
				v, err = s.arg.Eval(rv)
				if err != nil {
					res.err = err
					return res
				}
			}
			if err := gs.accs[i].add(v); err != nil {
				res.err = err
				return res
			}
		}
	}
	return res
}

// hashAggregateParallel runs the partitioned fold over non-empty rows with
// workers >= 2 goroutines and merges the partial states deterministically.
// span, when set, receives a concurrent "partition fan-out" child with one
// "worker i/N" span per goroutine (rows folded in, groups produced out) and
// a "merge" span covering the deterministic ascending-order merge.
//
// Lifecycle: each worker runs under a cancel context derived from the
// statement's governor, recovers its own panics into partResult.err, and
// cancels the siblings on any failure — the first error stops the fan-out
// within one governor stride instead of letting the other workers fold to
// completion. Error selection stays deterministic: the lowest-numbered
// partition's real error wins (so a failing query reports the same error no
// matter how many workers raced past the failing row), and a sibling's
// cancellation is reported only when no real error exists.
func hashAggregateParallel(rows [][]value.Value, keyExprs []expr.Expr, specs []aggSpec, workers int, span *obs.Span, gov *governor) ([][]value.Value, error) {
	fan := span.NewChild("partition fan-out")
	if fan != nil {
		fan.Concurrent = true
		fan.AttrInt("workers", int64(workers))
	}
	cancel := func() {}
	wgov := gov
	if gov != nil && gov.ctx != nil {
		var wctx context.Context
		wctx, cancel = context.WithCancel(gov.ctx)
		defer cancel()
		wgov = gov.withCtx(wctx)
	}
	parts := make([]partResult, workers)
	chunk := (len(rows) + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if lo > len(rows) {
			lo = len(rows)
		}
		if hi > len(rows) {
			hi = len(rows)
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			var ws *obs.Span
			if fan != nil {
				ws = fan.NewChild(fmt.Sprintf("worker %d/%d", w+1, workers))
			}
			defer func() {
				if r := recover(); r != nil {
					parts[w].err = NewPanicError(fmt.Sprintf("partition worker %d/%d", w+1, workers), r)
				}
				if parts[w].err != nil {
					ws.Attr("error", parts[w].err.Error())
					cancel()
				}
				ws.End()
				ws.SetRows(int64(hi-lo), int64(len(parts[w].order)))
			}()
			if err := chaos.HitN(chaos.AggWorker, w+1); err != nil {
				parts[w].err = err
				return
			}
			parts[w] = aggregatePartition(rows[lo:hi], keyExprs, specs, wgov)
		}(w, lo, hi)
	}
	wg.Wait()
	fan.End()

	ms := span.NewChild("merge")
	defer ms.End()
	if err := workerError(parts); err != nil {
		return nil, err
	}
	if err := chaos.Hit(chaos.AggMerge); err != nil {
		return nil, err
	}
	merged := make(map[string]*partGroup)
	var order []string
	for pi := range parts {
		p := &parts[pi]
		for _, k := range p.order {
			g := p.groups[k]
			tgt, ok := merged[k]
			if !ok {
				merged[k] = g
				order = append(order, k)
				continue
			}
			for i := range tgt.accs {
				if err := tgt.accs[i].merge(g.accs[i]); err != nil {
					return nil, err
				}
			}
		}
	}

	out := make([][]value.Value, 0, len(order))
	for _, k := range order {
		gs := merged[k]
		row := make([]value.Value, 0, len(gs.keyVals)+len(gs.accs))
		row = append(row, gs.keyVals...)
		for _, acc := range gs.accs {
			row = append(row, acc.result())
		}
		out = append(out, row)
	}
	ms.SetRows(int64(len(rows)), int64(len(out)))
	return out, nil
}

// workerError selects the error a failed fan-out reports: the
// lowest-numbered partition's non-cancellation error, falling back to the
// first cancellation when nothing but sibling-cancel noise remains.
func workerError(parts []partResult) error {
	var firstCancel error
	for pi := range parts {
		err := parts[pi].err
		if err == nil {
			continue
		}
		var c *CancelledError
		if errors.As(err, &c) {
			if firstCancel == nil {
				firstCancel = err
			}
			continue
		}
		return err
	}
	return firstCancel
}
