package engine

import (
	"math/rand"
	"testing"

	"repro/internal/expr"
	"repro/internal/value"
)

// TestSpecializeEquivalence checks that the specialized evaluator agrees
// with the generic tree-walk on randomly generated expressions over random
// rows, including NULLs and three-valued logic.
func TestSpecializeEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	names := []string{"a", "b", "c", "d"}

	randVal := func() value.Value {
		switch rng.Intn(5) {
		case 0:
			return value.Null
		case 1:
			return value.NewInt(int64(rng.Intn(3)))
		case 2:
			return value.NewFloat(float64(rng.Intn(3)))
		case 3:
			return value.NewString([]string{"x", "y", "z"}[rng.Intn(3)])
		default:
			return value.NewBool(rng.Intn(2) == 0)
		}
	}

	// randExpr builds an unbound expression of bounded depth using the
	// patterns specialization targets plus surrounding noise.
	var randExpr func(depth int) expr.Expr
	randExpr = func(depth int) expr.Expr {
		if depth <= 0 {
			if rng.Intn(2) == 0 {
				return expr.Col(names[rng.Intn(len(names))])
			}
			return expr.NewLiteral(randVal())
		}
		switch rng.Intn(6) {
		case 0:
			return &expr.BinaryOp{Op: "=", Left: expr.Col(names[rng.Intn(len(names))]),
				Right: expr.NewLiteral(randVal())}
		case 1:
			return &expr.BinaryOp{Op: "AND", Left: randExpr(depth - 1), Right: randExpr(depth - 1)}
		case 2:
			return &expr.BinaryOp{Op: "OR", Left: randExpr(depth - 1), Right: randExpr(depth - 1)}
		case 3:
			return &expr.IsNull{Operand: expr.Col(names[rng.Intn(len(names))]), Negate: rng.Intn(2) == 0}
		case 4:
			return &expr.Case{
				Whens: []expr.When{{Cond: randExpr(depth - 1), Result: randExpr(depth - 1)}},
				Else:  randExpr(depth - 1),
			}
		default:
			return &expr.UnaryOp{Op: "NOT", Operand: randExpr(depth - 1)}
		}
	}

	resolver := expr.SchemaResolver(names)
	for trial := 0; trial < 500; trial++ {
		raw := randExpr(3)
		generic, err := expr.Bind(raw, resolver)
		if err != nil {
			t.Fatal(err)
		}
		fast := specialize(generic)
		for r := 0; r < 8; r++ {
			row := make([]value.Value, len(names))
			for i := range row {
				row[i] = randVal()
			}
			rv := rowView(row)
			gv, gerr := generic.Eval(rv)
			fv, ferr := fast.Eval(rv)
			if (gerr == nil) != (ferr == nil) {
				t.Fatalf("expr %s row %v: errors differ: %v vs %v", raw, row, gerr, ferr)
			}
			if gerr != nil {
				continue
			}
			if gv.IsNull() != fv.IsNull() {
				t.Fatalf("expr %s row %v: %v vs %v", raw, row, gv, fv)
			}
			if !gv.IsNull() && (gv.Kind() != fv.Kind() || value.Compare(gv, fv) != 0) {
				t.Fatalf("expr %s row %v: %v (%v) vs %v (%v)", raw, row, gv, gv.Kind(), fv, fv.Kind())
			}
		}
	}
}

// TestSpecializePreservesText checks specialized nodes render the same SQL,
// which the planner's dedup-by-text relies on.
func TestSpecializePreservesText(t *testing.T) {
	names := []string{"d1", "d2"}
	resolver := expr.SchemaResolver(names)
	cases := []string{
		"(d1 = 5)",
		"((d1 = 5) AND (d2 = 'x'))",
		"(d1 IS NULL)",
		"(d2 IS NOT NULL)",
	}
	build := []expr.Expr{
		&expr.BinaryOp{Op: "=", Left: expr.Col("d1"), Right: expr.NewLiteral(value.NewInt(5))},
		&expr.BinaryOp{Op: "AND",
			Left:  &expr.BinaryOp{Op: "=", Left: expr.Col("d1"), Right: expr.NewLiteral(value.NewInt(5))},
			Right: &expr.BinaryOp{Op: "=", Left: expr.Col("d2"), Right: expr.NewLiteral(value.NewString("x"))}},
		&expr.IsNull{Operand: expr.Col("d1")},
		&expr.IsNull{Operand: expr.Col("d2"), Negate: true},
	}
	for i, e := range build {
		b, err := expr.Bind(e, resolver)
		if err != nil {
			t.Fatal(err)
		}
		s := specialize(b)
		if s.String() != cases[i] {
			t.Errorf("specialized text = %q, want %q", s.String(), cases[i])
		}
		// And the node really was specialized.
		switch s.(type) {
		case *eqConstFast, *andFast, *isNullFast:
		default:
			t.Errorf("case %d not specialized: %T", i, s)
		}
	}
}

// TestSpecializedEqConstReversed checks literal = column also specializes.
func TestSpecializedEqConstReversed(t *testing.T) {
	b, err := expr.Bind(&expr.BinaryOp{Op: "=",
		Left:  expr.NewLiteral(value.NewInt(3)),
		Right: expr.Col("a"),
	}, expr.SchemaResolver([]string{"a"}))
	if err != nil {
		t.Fatal(err)
	}
	s := specialize(b)
	if _, ok := s.(*eqConstFast); !ok {
		t.Fatalf("not specialized: %T", s)
	}
	v, err := s.Eval(rowView{value.NewInt(3)})
	if err != nil || !v.Bool() {
		t.Errorf("3 = a with a=3: %v %v", v, err)
	}
}

// TestAndFastShortCircuitStopsOnFalse verifies the early exit does not
// change 3VL results even when the right side would be NULL.
func TestAndFastShortCircuit(t *testing.T) {
	names := []string{"a", "b"}
	resolver := expr.SchemaResolver(names)
	e := &expr.BinaryOp{Op: "AND",
		Left:  &expr.BinaryOp{Op: "=", Left: expr.Col("a"), Right: expr.NewLiteral(value.NewInt(1))},
		Right: &expr.IsNull{Operand: expr.Col("b")},
	}
	b, _ := expr.Bind(e, resolver)
	s := specialize(b)
	// a=2 (false) AND b IS NULL → false regardless of b.
	v, err := s.Eval(rowView{value.NewInt(2), value.Null})
	if err != nil || v.IsNull() || v.Bool() {
		t.Errorf("false AND … = %v, %v", v, err)
	}
	// a=NULL (unknown) AND false → false.
	e2 := &expr.BinaryOp{Op: "AND",
		Left:  &expr.BinaryOp{Op: "=", Left: expr.Col("a"), Right: expr.NewLiteral(value.NewInt(1))},
		Right: expr.NewLiteral(value.NewBool(false)),
	}
	b2, _ := expr.Bind(e2, resolver)
	s2 := specialize(b2)
	v, err = s2.Eval(rowView{value.Null, value.Null})
	if err != nil || v.IsNull() || v.Bool() {
		t.Errorf("unknown AND false = %v, %v", v, err)
	}
	// a=NULL AND true → NULL.
	e3 := &expr.BinaryOp{Op: "AND",
		Left:  &expr.BinaryOp{Op: "=", Left: expr.Col("a"), Right: expr.NewLiteral(value.NewInt(1))},
		Right: expr.NewLiteral(value.NewBool(true)),
	}
	b3, _ := expr.Bind(e3, resolver)
	s3 := specialize(b3)
	v, err = s3.Eval(rowView{value.Null, value.Null})
	if err != nil || !v.IsNull() {
		t.Errorf("unknown AND true = %v, %v", v, err)
	}
}
