package engine

import (
	"fmt"

	"repro/internal/chaos"
	"repro/internal/expr"
	"repro/internal/sqlparse"
	"repro/internal/storage"
	"repro/internal/value"
)

// execCreateTable creates a table (and its primary-key index).
func (e *Engine) execCreateTable(ct *sqlparse.CreateTable) (*Result, error) {
	if e.IsVirtualTable(ct.Name) {
		return nil, errVirtualReadOnly("CREATE TABLE", ct.Name)
	}
	t, err := e.cat.Create(ct.Name, ct.Schema)
	if err != nil {
		return nil, err
	}
	if len(ct.PrimaryKey) > 0 {
		if err := t.SetPrimaryKey(ct.PrimaryKey); err != nil {
			e.cat.DropIfExists(ct.Name)
			return nil, err
		}
	}
	return &Result{}, nil
}

// execCreateIndex builds a secondary index.
func (e *Engine) execCreateIndex(ci *sqlparse.CreateIndex) (*Result, error) {
	if e.IsVirtualTable(ci.Table) {
		return nil, errVirtualReadOnly("CREATE INDEX", ci.Table)
	}
	t, err := e.cat.Get(ci.Table)
	if err != nil {
		return nil, err
	}
	if _, err := t.CreateIndex(ci.Name, ci.Columns); err != nil {
		return nil, err
	}
	return &Result{}, nil
}

// execDropTable removes a table.
func (e *Engine) execDropTable(dt *sqlparse.DropTable) (*Result, error) {
	if e.IsVirtualTable(dt.Name) {
		return nil, errVirtualReadOnly("DROP TABLE", dt.Name)
	}
	if dt.IfExists {
		existed := e.cat.Has(dt.Name)
		e.cat.DropIfExists(dt.Name)
		if existed {
			e.notifyMutate(dt.Name, "drop")
		}
		return &Result{}, nil
	}
	if err := e.cat.Drop(dt.Name); err != nil {
		return nil, err
	}
	e.notifyMutate(dt.Name, "drop")
	return &Result{}, nil
}

// execInsert appends VALUES rows or the result of INSERT … SELECT.
func (e *Engine) execInsert(ins *sqlparse.Insert, ec execCtx) (*Result, error) {
	if e.IsVirtualTable(ins.Table) {
		return nil, errVirtualReadOnly("INSERT", ins.Table)
	}
	t, err := e.cat.Get(ins.Table)
	if err != nil {
		return nil, err
	}
	sch := t.Schema()

	// colMap[i] is the target column position of source column i.
	var colMap []int
	if len(ins.Columns) > 0 {
		colMap = make([]int, len(ins.Columns))
		for i, c := range ins.Columns {
			j := sch.ColumnIndex(c)
			if j < 0 {
				return nil, fmt.Errorf("engine: table %q has no column %q", ins.Table, c)
			}
			colMap[i] = j
		}
	}

	appendMapped := func(src []value.Value) error {
		if colMap == nil {
			if len(src) != len(sch) {
				return fmt.Errorf("engine: INSERT into %q expects %d values, got %d", ins.Table, len(sch), len(src))
			}
			_, err := t.AppendRow(src)
			return err
		}
		if len(src) != len(colMap) {
			return fmt.Errorf("engine: INSERT into %q expects %d values, got %d", ins.Table, len(colMap), len(src))
		}
		full := make([]value.Value, len(sch))
		for i, j := range colMap {
			full[j] = src[i]
		}
		_, err := t.AppendRow(full)
		return err
	}

	// Statement atomicity: appends run under a savepoint — the pre-statement
	// row count — and any exit without commit (error, injected fault, panic
	// unwinding to the statement recovery) truncates back to it, so a
	// mid-statement failure leaves the table exactly as it was. This is the
	// append-shaped complement of the staging-then-swap rewrite DELETE and
	// UPDATE use: INSERT into a populated table must not copy the table.
	base := t.NumRows()
	preEp := t.Epoch()
	committed := false
	defer func() {
		if !committed {
			t.TruncateTo(base)
		}
	}()

	n := 0
	if ins.Query != nil {
		res, err := e.execSelect(ins.Query, ec)
		if err != nil {
			return nil, err
		}
		sp := ec.span.NewChild("insert " + ins.Table)
		defer sp.End()
		for _, row := range res.Rows {
			if err := chaos.Hit(chaos.InsertSink); err != nil {
				return nil, err
			}
			if err := appendMapped(row); err != nil {
				return nil, err
			}
			n++
			if ec.gov != nil && n%govStride == 0 {
				if err := ec.gov.addRows(govStride); err != nil {
					return nil, err
				}
			}
		}
		if ec.gov != nil {
			if err := ec.gov.addRows(int64(n % govStride)); err != nil {
				return nil, err
			}
		}
		committed = true
		sp.SetRows(int64(len(res.Rows)), int64(n))
		// Delta capture: the committed statement appended exactly rows
		// [base, base+n) — the range an incremental cache can re-aggregate
		// instead of rescanning the table.
		e.notifyInsert(ins.Table, base, base+n, preEp, t.Epoch())
		return &Result{Affected: n}, nil
	}

	for _, rowExprs := range ins.Rows {
		row := make([]value.Value, len(rowExprs))
		for i, ex := range rowExprs {
			// VALUES expressions are constant; bind against an empty scope.
			b, err := bindExpr(ex, nil)
			if err != nil {
				return nil, fmt.Errorf("engine: VALUES expressions must be constant: %w", err)
			}
			v, err := b.Eval(rowView(nil))
			if err != nil {
				return nil, err
			}
			row[i] = v
		}
		if err := chaos.Hit(chaos.InsertSink); err != nil {
			return nil, err
		}
		if err := appendMapped(row); err != nil {
			return nil, err
		}
		n++
	}
	committed = true
	e.notifyInsert(ins.Table, base, base+n, preEp, t.Epoch())
	return &Result{Affected: n}, nil
}

// execDelete removes qualifying rows by rewriting the table without them
// (the same block-rewrite model as bulk UPDATE). The rewrite targets a
// staging clone that is swapped into the catalog only on success, so a
// mid-statement failure leaves the live table unchanged.
func (e *Engine) execDelete(d *sqlparse.Delete, ec execCtx) (*Result, error) {
	if e.IsVirtualTable(d.Table) {
		return nil, errVirtualReadOnly("DELETE", d.Table)
	}
	t, err := e.cat.Get(d.Table)
	if err != nil {
		return nil, err
	}
	sch := schemaOf(t, d.Table)
	var where expr.Expr
	if d.Where != nil {
		where, err = bindExpr(d.Where, sch)
		if err != nil {
			return nil, err
		}
	}
	stage := t.EmptyClone()
	var buf []value.Value
	var box rowBox
	n := 0
	for r := 0; r < t.NumRows(); r++ {
		if ec.gov != nil && (r+1)%govStride == 0 {
			if err := ec.gov.addRows(govStride); err != nil {
				return nil, err
			}
		}
		buf = t.Row(r, buf)
		if where != nil {
			box.vals = buf
			v, err := where.Eval(&box)
			if err != nil {
				return nil, err
			}
			if !v.Truthy() {
				if _, err := stage.AppendRow(buf); err != nil {
					return nil, err
				}
				continue
			}
		}
		n++
	}
	if ec.gov != nil {
		if err := ec.gov.addRows(int64(t.NumRows() % govStride)); err != nil {
			return nil, err
		}
	}
	e.cat.Put(stage)
	e.notifyMutate(d.Table, "delete")
	return &Result{Affected: n}, nil
}

// execUpdate handles both the single-table form and the cross-table form
// (UPDATE target FROM other SET … WHERE join), which the paper's
// update-based Vpct strategy generates.
func (e *Engine) execUpdate(u *sqlparse.Update, ec execCtx) (*Result, error) {
	if e.IsVirtualTable(u.Table) {
		return nil, errVirtualReadOnly("UPDATE", u.Table)
	}
	t, err := e.cat.Get(u.Table)
	if err != nil {
		return nil, err
	}
	alias := u.Alias
	if alias == "" {
		alias = u.Table
	}
	targetSch := schemaOf(t, alias)

	if len(u.From) == 0 {
		return e.updateSingle(t, targetSch, u, ec)
	}
	if len(u.From) != 1 {
		return nil, fmt.Errorf("engine: UPDATE supports at most one FROM table, got %d", len(u.From))
	}
	return e.updateJoined(t, targetSch, u, ec)
}

func (e *Engine) updateSingle(t *storage.Table, sch relSchema, u *sqlparse.Update, ec execCtx) (*Result, error) {
	var where expr.Expr
	if u.Where != nil {
		b, err := bindExpr(u.Where, sch)
		if err != nil {
			return nil, err
		}
		where = b
	}
	type boundSet struct {
		col int
		ex  expr.Expr
	}
	sets := make([]boundSet, len(u.Set))
	for i, a := range u.Set {
		col, err := sch.resolve("", a.Column)
		if err != nil {
			return nil, err
		}
		b, err := bindExpr(a.Value, sch)
		if err != nil {
			return nil, err
		}
		sets[i] = boundSet{col: col, ex: b}
	}

	// Every row flows into a staging clone — matched rows with assignments
	// applied, others copied — published only on success, so a failing
	// assignment halfway through leaves the live table unchanged.
	stage := t.EmptyClone()
	n := 0
	var buf []value.Value
	var box rowBox
	newVals := make([]value.Value, len(sets))
	for r := 0; r < t.NumRows(); r++ {
		if ec.gov != nil && (r+1)%govStride == 0 {
			if err := ec.gov.addRows(govStride); err != nil {
				return nil, err
			}
		}
		buf = t.Row(r, buf)
		box.vals = buf
		rv := &box
		matched := true
		if where != nil {
			v, err := where.Eval(rv)
			if err != nil {
				return nil, err
			}
			matched = v.Truthy()
		}
		if matched {
			// Evaluate every assignment against the pre-update row, then
			// apply.
			for i, s := range sets {
				v, err := s.ex.Eval(rv)
				if err != nil {
					return nil, err
				}
				newVals[i] = v
			}
			for i, s := range sets {
				buf[s.col] = newVals[i]
			}
			n++
		}
		if _, err := stage.AppendRow(buf); err != nil {
			return nil, err
		}
	}
	if ec.gov != nil {
		if err := ec.gov.addRows(int64(t.NumRows() % govStride)); err != nil {
			return nil, err
		}
	}
	e.cat.Put(stage)
	e.notifyMutate(u.Table, "update")
	return &Result{Affected: n}, nil
}

func (e *Engine) updateJoined(t *storage.Table, targetSch relSchema, u *sqlparse.Update, ec execCtx) (*Result, error) {
	ft, err := e.tableFor(u.From[0].Name)
	if err != nil {
		return nil, err
	}
	fromSch := schemaOf(ft, u.From[0].RefName())
	combined := append(append(relSchema{}, targetSch...), fromSch...)

	// Extract equality join conditions from WHERE; a missing WHERE or one
	// without equalities degrades to a cartesian match (needed for the
	// global-totals case where Fj is a single-row table).
	var pairs []joinPair
	var residualConjuncts []expr.Expr
	if u.Where != nil {
		pairs, residualConjuncts = extractEquiPairs(splitConjuncts(u.Where), targetSch, fromSch)
	}
	var residual expr.Expr
	if len(residualConjuncts) > 0 {
		residual, err = bindExpr(andAll(residualConjuncts), combined)
		if err != nil {
			return nil, err
		}
	}

	type boundSet struct {
		col int
		ex  expr.Expr
	}
	sets := make([]boundSet, len(u.Set))
	for i, a := range u.Set {
		col, err := targetSch.resolve("", a.Column)
		if err != nil {
			return nil, err
		}
		b, err := bindExpr(a.Value, combined)
		if err != nil {
			return nil, err
		}
		sets[i] = boundSet{col: col, ex: b}
	}

	// Hash the FROM table on its join columns (reusing an index if one
	// matches, as the paper's subkey-index optimization intends).
	var lookup func(key string) []int
	cols := make([]string, len(pairs))
	for i, p := range pairs {
		cols[i] = fromSch[p.rightIdx].Name
	}
	if ix := ft.IndexOn(cols); ix != nil {
		lookup = ix.LookupKey
	} else {
		buckets := make(map[string][]int, ft.NumRows())
		key := make([]byte, 0, 32)
		for r := 0; r < ft.NumRows(); r++ {
			key = key[:0]
			for _, p := range pairs {
				key = value.AppendKey(key, ft.Get(r, p.rightIdx))
			}
			buckets[string(key)] = append(buckets[string(key)], r)
		}
		lookup = func(k string) []int { return buckets[k] }
	}

	// Bulk joined UPDATE is evaluated the way the paper's block-oriented
	// MPP system does it: every row of the target flows through a rewrite
	// — matched rows with their assignments applied, unmatched rows copied
	// unchanged — and the table is rebuilt (indexes included) from the
	// rewritten rows, with pre- and post-images of each changed row
	// retained in a transient journal until the statement completes (the
	// recovery log every ACID engine writes). This is what makes the
	// paper's UPDATE-based Vpct strategy pay when |FV| is large, and it is
	// why the paper recommends INSERT instead. The rewrite lands in a
	// staging clone swapped into the catalog on success, so the statement
	// is atomic: a mid-rewrite failure leaves the live table untouched.
	stage := t.EmptyClone()
	n := 0
	var buf []value.Value
	var box rowBox
	keyBuf := make([]byte, 0, 32)
	comb := make([]value.Value, 0, len(combined))
	newVals := make([]value.Value, len(sets))
	var journal [][]value.Value
	for r := 0; r < t.NumRows(); r++ {
		if ec.gov != nil && (r+1)%govStride == 0 {
			if err := ec.gov.addRows(govStride); err != nil {
				return nil, err
			}
		}
		buf = t.Row(r, buf)
		out := append([]value.Value(nil), buf...)
		keyBuf = keyBuf[:0]
		nullKey := false
		for _, p := range pairs {
			v := buf[p.leftIdx]
			if v.IsNull() && !p.nullSafe {
				nullKey = true
			}
			keyBuf = value.AppendKey(keyBuf, v)
		}
		if !nullKey {
			matches := lookup(string(keyBuf))
			for _, m := range matches {
				comb = comb[:0]
				comb = append(comb, buf...)
				for c := 0; c < ft.NumCols(); c++ {
					comb = append(comb, ft.Get(m, c))
				}
				box.vals = comb
				rv := &box
				if residual != nil {
					v, err := residual.Eval(rv)
					if err != nil {
						return nil, err
					}
					if !v.Truthy() {
						continue
					}
				}
				for i, s := range sets {
					v, err := s.ex.Eval(rv)
					if err != nil {
						return nil, err
					}
					newVals[i] = v
				}
				journal = append(journal, append([]value.Value(nil), buf...))
				for i, s := range sets {
					out[s.col] = newVals[i]
				}
				journal = append(journal, append([]value.Value(nil), out...))
				n++
				break // one qualifying match updates the row once
			}
		}
		if _, err := stage.AppendRow(out); err != nil {
			return nil, err
		}
	}
	if ec.gov != nil {
		if err := ec.gov.addRows(int64(t.NumRows() % govStride)); err != nil {
			return nil, err
		}
	}
	e.cat.Put(stage)
	e.notifyMutate(u.Table, "update")
	_ = journal // released at statement end, like a transient journal
	return &Result{Affected: n}, nil
}
