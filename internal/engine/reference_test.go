package engine

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"repro/internal/storage"
	"repro/internal/value"
)

// Reference-implementation equivalence: the engine's hash-based operators
// must agree with naive sort-based implementations on randomized inputs
// (DESIGN.md invariant 7).

// randTable builds a random table r(g1, g2, a) with NULLs sprinkled in.
func randTable(t *testing.T, e *Engine, rng *rand.Rand, n int) {
	t.Helper()
	mustExec(t, e, "CREATE TABLE r (g1 INTEGER, g2 VARCHAR, a INTEGER)")
	tab, _ := e.Catalog().Get("r")
	strs := []string{"x", "y", "z", "w"}
	for i := 0; i < n; i++ {
		row := []value.Value{
			value.NewInt(int64(rng.Intn(5))),
			value.NewString(strs[rng.Intn(len(strs))]),
			value.NewInt(int64(rng.Intn(100) - 20)),
		}
		if rng.Intn(12) == 0 {
			row[2] = value.Null
		}
		if rng.Intn(20) == 0 {
			row[0] = value.Null
		}
		if _, err := tab.AppendRow(row); err != nil {
			t.Fatal(err)
		}
	}
}

// refGroupBy computes SELECT g1, g2, sum(a), count(*), min(a), max(a),
// avg(a) GROUP BY g1, g2 with a sort-based reference.
func refGroupBy(t *testing.T, e *Engine) map[string][]float64 {
	t.Helper()
	tab, _ := e.Catalog().Get("r")
	type group struct {
		sum        float64
		sumSeen    bool
		count      int64
		minV, maxV value.Value
		avgN       int64
	}
	groups := map[string]*group{}
	for r := 0; r < tab.NumRows(); r++ {
		key := value.EncodeKeyString(tab.Get(r, 0), tab.Get(r, 1))
		g := groups[key]
		if g == nil {
			g = &group{}
			groups[key] = g
		}
		g.count++
		a := tab.Get(r, 2)
		if !a.IsNull() {
			g.sum += a.Float()
			g.sumSeen = true
			g.avgN++
			if g.minV.IsNull() || value.Compare(a, g.minV) < 0 {
				g.minV = a
			}
			if g.maxV.IsNull() || value.Compare(a, g.maxV) > 0 {
				g.maxV = a
			}
		}
	}
	out := map[string][]float64{}
	for k, g := range groups {
		row := make([]float64, 5)
		if g.sumSeen {
			row[0] = g.sum
		} else {
			row[0] = math.NaN()
		}
		row[1] = float64(g.count)
		if g.minV.IsNull() {
			row[2], row[3] = math.NaN(), math.NaN()
		} else {
			row[2], row[3] = g.minV.Float(), g.maxV.Float()
		}
		if g.avgN > 0 {
			row[4] = g.sum / float64(g.avgN)
		} else {
			row[4] = math.NaN()
		}
		out[k] = row
	}
	return out
}

func TestHashAggregateMatchesSortReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 5; trial++ {
		e := New(storage.NewCatalog())
		randTable(t, e, rng, 200+rng.Intn(600))
		want := refGroupBy(t, e)
		res := mustExec(t, e, "SELECT g1, g2, sum(a), count(*), min(a), max(a), avg(a) FROM r GROUP BY g1, g2")
		if len(res.Rows) != len(want) {
			t.Fatalf("trial %d: %d groups, want %d", trial, len(res.Rows), len(want))
		}
		for _, row := range res.Rows {
			key := value.EncodeKeyString(row[0], row[1])
			ref, ok := want[key]
			if !ok {
				t.Fatalf("trial %d: unexpected group %v", trial, row[:2])
			}
			check := func(idx int, got value.Value, refVal float64) {
				if math.IsNaN(refVal) {
					if !got.IsNull() {
						t.Errorf("trial %d group %v col %d = %v, want NULL", trial, row[:2], idx, got)
					}
					return
				}
				f, _ := got.AsFloat()
				if math.Abs(f-refVal) > 1e-9 {
					t.Errorf("trial %d group %v col %d = %v, want %v", trial, row[:2], idx, got, refVal)
				}
			}
			for i := 0; i < 5; i++ {
				check(i, row[2+i], ref[i])
			}
		}
	}
}

func TestHashJoinMatchesSortMergeReference(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 5; trial++ {
		e := New(storage.NewCatalog())
		mustExec(t, e, "CREATE TABLE l (k INTEGER, v INTEGER)")
		mustExec(t, e, "CREATE TABLE rr (k INTEGER, w INTEGER)")
		lt, _ := e.Catalog().Get("l")
		rt, _ := e.Catalog().Get("rr")
		nl, nr := 50+rng.Intn(100), 30+rng.Intn(80)
		for i := 0; i < nl; i++ {
			k := value.NewInt(int64(rng.Intn(12)))
			if rng.Intn(15) == 0 {
				k = value.Null
			}
			lt.AppendRow([]value.Value{k, value.NewInt(int64(i))})
		}
		for i := 0; i < nr; i++ {
			k := value.NewInt(int64(rng.Intn(12)))
			if rng.Intn(15) == 0 {
				k = value.Null
			}
			rt.AppendRow([]value.Value{k, value.NewInt(int64(i))})
		}

		// Reference: sort both sides, merge (inner and left-outer).
		type pair struct{ v, w int64 }
		var refInner []pair
		refOuter := map[int64][]int64{} // l.v → matched w list (empty = null row)
		for a := 0; a < lt.NumRows(); a++ {
			lk := lt.Get(a, 0)
			lv := lt.Get(a, 1).Int()
			refOuter[lv] = nil
			if lk.IsNull() {
				continue
			}
			for b := 0; b < rt.NumRows(); b++ {
				rk := rt.Get(b, 0)
				if rk.IsNull() || value.Compare(lk, rk) != 0 {
					continue
				}
				w := rt.Get(b, 1).Int()
				refInner = append(refInner, pair{lv, w})
				refOuter[lv] = append(refOuter[lv], w)
			}
		}
		sort.Slice(refInner, func(i, j int) bool {
			if refInner[i].v != refInner[j].v {
				return refInner[i].v < refInner[j].v
			}
			return refInner[i].w < refInner[j].w
		})

		inner := mustExec(t, e, "SELECT l.v, rr.w FROM l, rr WHERE l.k = rr.k ORDER BY 1, 2")
		if len(inner.Rows) != len(refInner) {
			t.Fatalf("trial %d inner rows = %d, want %d", trial, len(inner.Rows), len(refInner))
		}
		for i, row := range inner.Rows {
			if row[0].Int() != refInner[i].v || row[1].Int() != refInner[i].w {
				t.Fatalf("trial %d inner row %d = %v, want %+v", trial, i, row, refInner[i])
			}
		}

		outer := mustExec(t, e, "SELECT l.v, rr.w FROM l LEFT OUTER JOIN rr ON l.k = rr.k ORDER BY 1, 2")
		wantRows := 0
		for _, ws := range refOuter {
			if len(ws) == 0 {
				wantRows++
			} else {
				wantRows += len(ws)
			}
		}
		if len(outer.Rows) != wantRows {
			t.Fatalf("trial %d outer rows = %d, want %d", trial, len(outer.Rows), wantRows)
		}
		for _, row := range outer.Rows {
			ws := refOuter[row[0].Int()]
			if len(ws) == 0 {
				if !row[1].IsNull() {
					t.Fatalf("trial %d: %v should be null-extended", trial, row)
				}
				continue
			}
			found := false
			for _, w := range ws {
				if !row[1].IsNull() && row[1].Int() == w {
					found = true
				}
			}
			if !found {
				t.Fatalf("trial %d: outer row %v not in reference %v", trial, row, ws)
			}
		}
	}
}

func TestDistinctMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	e := New(storage.NewCatalog())
	randTable(t, e, rng, 500)
	tab, _ := e.Catalog().Get("r")
	ref := map[string]bool{}
	for r := 0; r < tab.NumRows(); r++ {
		ref[value.EncodeKeyString(tab.Get(r, 0), tab.Get(r, 1))] = true
	}
	res := mustExec(t, e, "SELECT DISTINCT g1, g2 FROM r")
	if len(res.Rows) != len(ref) {
		t.Fatalf("distinct rows = %d, want %d", len(res.Rows), len(ref))
	}
	seen := map[string]bool{}
	for _, row := range res.Rows {
		k := value.EncodeKeyString(row[0], row[1])
		if !ref[k] || seen[k] {
			t.Fatalf("bad distinct row %v", row)
		}
		seen[k] = true
	}
}

func TestOrderByMatchesSortReference(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	e := New(storage.NewCatalog())
	randTable(t, e, rng, 300)
	res := mustExec(t, e, "SELECT g1, a FROM r ORDER BY a DESC, g1")
	for i := 1; i < len(res.Rows); i++ {
		prev, cur := res.Rows[i-1], res.Rows[i]
		c := value.Compare(prev[1], cur[1])
		if c < 0 {
			t.Fatalf("row %d out of order: %v before %v", i, prev, cur)
		}
		if c == 0 && value.Compare(prev[0], cur[0]) > 0 {
			t.Fatalf("row %d tiebreak out of order: %v before %v", i, prev, cur)
		}
	}
}

func TestIndexedAndUnindexedJoinsAgreeRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 3; trial++ {
		seed := rng.Int63()
		run := func(withIndex bool) []string {
			e := New(storage.NewCatalog())
			r2 := rand.New(rand.NewSource(seed))
			randTable(t, e, r2, 300)
			mustExec(t, e, "CREATE TABLE d (g1 INTEGER, label VARCHAR)")
			dt, _ := e.Catalog().Get("d")
			for i := 0; i < 5; i++ {
				dt.AppendRow([]value.Value{value.NewInt(int64(i)), value.NewString(fmt.Sprintf("L%d", i))})
			}
			if withIndex {
				mustExec(t, e, "CREATE INDEX dx ON d (g1)")
			}
			res := mustExec(t, e, "SELECT r.a, d.label FROM r, d WHERE r.g1 = d.g1 ORDER BY 1, 2")
			var out []string
			for _, row := range res.Rows {
				out = append(out, row[0].String()+"|"+row[1].String())
			}
			return out
		}
		a, b := run(false), run(true)
		if strings.Join(a, ";") != strings.Join(b, ";") {
			t.Fatalf("trial %d: indexed and unindexed joins differ", trial)
		}
	}
}
