package engine

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/leakcheck"
	"repro/internal/storage"
)

func newIntroEngine(t *testing.T) *Engine {
	t.Helper()
	e := newTestEngine(t)
	e.EnableIntrospection(IntrospectionConfig{})
	return e
}

func TestIntrospectStatStatements(t *testing.T) {
	e := newIntroEngine(t)
	// Three executions of the same statement shape, different literals.
	for _, amt := range []int{10, 20, 30} {
		mustExec(t, e, fmt.Sprintf("SELECT city FROM sales WHERE salesAmt > %d", amt))
	}
	mustExec(t, e, "SELECT state FROM sales GROUP BY state")

	r := mustExec(t, e, "SELECT query, calls, rows_scanned FROM pct_stat_statements WHERE query = 'SELECT city FROM sales WHERE (salesAmt > ?)'")
	if len(r.Rows) != 1 {
		t.Fatalf("fingerprint rows = %d, want 1 collapsed entry: %v", len(r.Rows), r.Rows)
	}
	if calls := r.Rows[0][1].Int(); calls != 3 {
		t.Errorf("calls = %d, want 3", calls)
	}
	// Each execution scanned the 10-row sales table in full.
	if scanned := r.Rows[0][2].Int(); scanned != 30 {
		t.Errorf("rows_scanned = %d, want 30", scanned)
	}

	// The full dialect composes over the virtual relation.
	r = mustExec(t, e, "SELECT query, calls FROM pct_stat_statements WHERE calls >= 1 ORDER BY calls DESC")
	if len(r.Rows) < 2 {
		t.Fatalf("expected at least 2 recorded statements, got %d", len(r.Rows))
	}
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i][1].Int() > r.Rows[i-1][1].Int() {
			t.Errorf("ORDER BY calls DESC violated at row %d", i)
		}
	}
}

func TestIntrospectSelfObservationGuard(t *testing.T) {
	e := newIntroEngine(t)
	mustExec(t, e, "SELECT * FROM sales")

	r1 := mustExec(t, e, "SELECT fingerprint, query, calls FROM pct_stat_statements")
	r2 := mustExec(t, e, "SELECT fingerprint, query, calls FROM pct_stat_statements")
	if len(r1.Rows) != len(r2.Rows) {
		t.Fatalf("introspection query grew the stats table: %d then %d rows", len(r1.Rows), len(r2.Rows))
	}
	for i := range r1.Rows {
		for j := range r1.Rows[i] {
			if r1.Rows[i][j].String() != r2.Rows[i][j].String() {
				t.Errorf("row %d col %d changed between identical introspection queries: %v vs %v",
					i, j, r1.Rows[i][j], r2.Rows[i][j])
			}
		}
	}
	for _, row := range r1.Rows {
		if strings.Contains(row[1].Str(), "pct_stat_statements") {
			t.Errorf("introspection query observed itself: %v", row)
		}
	}
	// Joins that touch a virtual relation are excluded too.
	mustExec(t, e, "SELECT s.query FROM pct_stat_statements s, sales t WHERE s.calls > 0 AND t.RID = 1")
	r3 := mustExec(t, e, "SELECT query FROM pct_stat_statements")
	for _, row := range r3.Rows {
		if strings.Contains(row[0].Str(), "pct_stat_statements") {
			t.Errorf("join through virtual relation observed itself: %v", row)
		}
	}
}

func TestIntrospectVirtualReadOnly(t *testing.T) {
	e := newIntroEngine(t)
	for _, sql := range []string{
		"INSERT INTO pct_stat_statements VALUES ('x')",
		"UPDATE pct_stat_statements SET calls = 0",
		"DELETE FROM pct_stat_statements",
		"DROP TABLE pct_stat_statements",
		"DROP TABLE IF EXISTS pct_metrics",
		"CREATE TABLE pct_trace_recent (a INTEGER)",
		"CREATE INDEX ix ON pct_stat_activity (sid)",
	} {
		wantErr(t, e, sql, "read-only system relation")
	}
	// The relations are still there and scannable afterwards.
	mustExec(t, e, "SELECT * FROM pct_stat_statements")
	mustExec(t, e, "SELECT * FROM pct_metrics")
}

func TestIntrospectErrorCodes(t *testing.T) {
	e := newIntroEngine(t)
	if _, err := e.ExecSQL("SELECT * FROM no_such_table"); err == nil {
		t.Fatal("expected unknown-table error")
	}
	r := mustExec(t, e, "SELECT errors, error_codes FROM pct_stat_statements WHERE query = 'SELECT * FROM no_such_table'")
	if len(r.Rows) != 1 {
		t.Fatalf("error statement not recorded: %v", r.Rows)
	}
	if r.Rows[0][0].Int() != 1 {
		t.Errorf("errors = %d, want 1", r.Rows[0][0].Int())
	}
	if codes := r.Rows[0][1].Str(); codes == "" {
		t.Errorf("error_codes empty, want a code tally")
	}
}

func TestIntrospectTraceRecent(t *testing.T) {
	e := newIntroEngine(t)
	mustExec(t, e, "SELECT state, SUM(salesAmt) FROM sales GROUP BY state")
	r := mustExec(t, e, "SELECT seq, query, stages, rows_out FROM pct_trace_recent ORDER BY seq DESC")
	if len(r.Rows) == 0 {
		t.Fatal("flight recorder empty")
	}
	top := r.Rows[0]
	if !strings.Contains(top[1].Str(), "GROUP BY state") {
		t.Errorf("latest flight record query = %q, want the GROUP BY", top[1].Str())
	}
	// Stage totals render even without a trace sink attached.
	if stages := top[2].Str(); !strings.Contains(stages, "aggregate=") {
		t.Errorf("stages = %q, want an aggregate stage", stages)
	}
	if top[3].Int() != 2 {
		t.Errorf("rows_out = %d, want 2 groups", top[3].Int())
	}
}

func TestIntrospectMetricsTable(t *testing.T) {
	e := newIntroEngine(t)
	mustExec(t, e, "SELECT * FROM sales")
	r := mustExec(t, e, "SELECT name, kind, value FROM pct_metrics WHERE name = 'engine.statements'")
	if len(r.Rows) != 1 {
		t.Fatalf("pct_metrics lacks engine.statements: %v", r.Rows)
	}
	if r.Rows[0][1].Str() != "counter" || r.Rows[0][2].Int() <= 0 {
		t.Errorf("engine.statements = %v/%v, want counter > 0", r.Rows[0][1], r.Rows[0][2])
	}
	r = mustExec(t, e, "SELECT count, p50_ns, p99_ns FROM pct_metrics WHERE name = 'engine.statement.ns'")
	if len(r.Rows) != 1 || r.Rows[0][0].Int() <= 0 {
		t.Fatalf("histogram row missing or empty: %v", r.Rows)
	}
	if r.Rows[0][1].Int() > r.Rows[0][2].Int() {
		t.Errorf("p50 %d > p99 %d", r.Rows[0][1].Int(), r.Rows[0][2].Int())
	}
}

func TestIntrospectActivityTable(t *testing.T) {
	e := newIntroEngine(t)
	in := e.intro.Load()
	in.activity.Begin(99, "SELECT pending", 7, time.Now().Add(-time.Second), func() (int64, int64, int64) {
		return 1000, 10, 4096
	})
	defer in.activity.End(99)
	r := mustExec(t, e, "SELECT sid, query, state, rows_scanned, bytes FROM pct_stat_activity WHERE sid = 99")
	if len(r.Rows) != 1 {
		t.Fatalf("activity row missing: %v", r.Rows)
	}
	row := r.Rows[0]
	if row[1].Str() != "SELECT pending" || row[2].Str() != "running" {
		t.Errorf("activity row = %v", row)
	}
	if row[3].Int() != 1000 || row[4].Int() != 4096 {
		t.Errorf("progress = %d/%d, want 1000/4096", row[3].Int(), row[4].Int())
	}
}

func TestIntrospectLiveActivity(t *testing.T) {
	e := New(storage.NewCatalog())
	mustExec(t, e, "CREATE TABLE big (k INTEGER, v INTEGER)")
	var sb strings.Builder
	sb.WriteString("INSERT INTO big VALUES ")
	for i := 0; i < 20000; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "(%d, %d)", i%997, i)
	}
	mustExec(t, e, sb.String())
	e.EnableIntrospection(IntrospectionConfig{})

	done := make(chan struct{})
	go func() {
		defer close(done)
		// Self-join keeps the statement busy long enough to observe.
		_, _ = e.ExecSQL("SELECT COUNT(*) FROM big a, big b WHERE a.k = b.k AND a.v < 50")
	}()
	var seen bool
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if acts := e.ActiveStatements(); len(acts) > 0 {
			seen = true
			if acts[0].Query == "" {
				t.Errorf("active statement lacks query text: %+v", acts[0])
			}
			break
		}
		time.Sleep(200 * time.Microsecond)
	}
	<-done
	if !seen {
		t.Skip("statement finished before activity was observable (machine too fast)")
	}
	if n := len(e.ActiveStatements()); n != 0 {
		t.Errorf("activity not drained after completion: %d", n)
	}
}

func TestIntrospectParallelFlag(t *testing.T) {
	e := New(storage.NewCatalog())
	mustExec(t, e, "CREATE TABLE big (k INTEGER, v INTEGER)")
	var sb strings.Builder
	sb.WriteString("INSERT INTO big VALUES ")
	for i := 0; i < 20000; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "(%d, %d)", i%13, i)
	}
	mustExec(t, e, sb.String())
	e.EnableIntrospection(IntrospectionConfig{})
	if _, err := e.ExecSQLP("SELECT k, SUM(v) FROM big GROUP BY k", 4); err != nil {
		t.Fatal(err)
	}
	r := mustExec(t, e, "SELECT parallel FROM pct_stat_statements WHERE query = 'SELECT k, sum(v) FROM big GROUP BY k'")
	if len(r.Rows) != 1 || r.Rows[0][0].Int() != 1 {
		t.Errorf("parallel executions = %v, want 1", r.Rows)
	}
}

func TestIntrospectDisableReenable(t *testing.T) {
	e := newIntroEngine(t)
	mustExec(t, e, "SELECT * FROM sales")
	if !e.IntrospectionEnabled() {
		t.Fatal("introspection should be on")
	}
	e.DisableIntrospection()
	if e.IntrospectionEnabled() {
		t.Fatal("introspection should be off")
	}
	wantErr(t, e, "SELECT * FROM pct_stat_statements", "")
	// Statements run fine with recording off.
	mustExec(t, e, "SELECT * FROM sales")
	// Re-enabling starts a fresh slate.
	e.EnableIntrospection(IntrospectionConfig{})
	r := mustExec(t, e, "SELECT * FROM pct_stat_statements")
	if len(r.Rows) != 0 {
		t.Errorf("fresh introspection state has %d rows, want 0", len(r.Rows))
	}
}

func TestIntrospectRegisterVirtualCollision(t *testing.T) {
	e := newTestEngine(t)
	err := e.RegisterVirtual("sales", storage.Schema{{Name: "a", Type: storage.TypeInt}},
		func() (*storage.Table, error) { return nil, nil })
	if err == nil {
		t.Fatal("registering a virtual relation over a stored table must fail")
	}
}

func TestIntrospectSnapshotStability(t *testing.T) {
	// A scan sees one coherent snapshot even while new statements land.
	e := newIntroEngine(t)
	defer leakcheck.Check(t)()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_, _ = e.ExecSQL("SELECT COUNT(*) FROM sales")
				}
			}
		}()
	}
	for i := 0; i < 50; i++ {
		r := mustExec(t, e, "SELECT calls, errors FROM pct_stat_statements")
		for _, row := range r.Rows {
			if row[0].Int() < row[1].Int() {
				t.Errorf("snapshot incoherent: errors %d > calls %d", row[1].Int(), row[0].Int())
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestIntrospectAggregateOverStats(t *testing.T) {
	// Aggregation composes over the introspection catalog: total calls by
	// statement shape.
	e := newIntroEngine(t)
	for i := 0; i < 3; i++ {
		mustExec(t, e, "SELECT city FROM sales")
	}
	mustExec(t, e, "SELECT state FROM sales")
	r := mustExec(t, e, "SELECT SUM(calls), COUNT(*) FROM pct_stat_statements")
	if len(r.Rows) != 1 {
		t.Fatalf("aggregate rows = %d: %v", len(r.Rows), r.Rows)
	}
	if sum := r.Rows[0][0].Int(); sum != 4 {
		t.Errorf("SUM(calls) = %d, want 4", sum)
	}
	if n := r.Rows[0][1].Int(); n != 2 {
		t.Errorf("COUNT(*) = %d, want 2 fingerprints", n)
	}
}
