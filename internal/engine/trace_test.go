package engine

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/sqlparse"
)

func parseOne(t *testing.T, sql string) sqlparse.Statement {
	t.Helper()
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	return stmt
}

func traceText(t *testing.T, e *Engine, sql string) string {
	t.Helper()
	r := mustExec(t, e, sql)
	var sb strings.Builder
	for _, row := range r.Rows {
		sb.WriteString(row[0].Str())
		sb.WriteByte('\n')
	}
	return sb.String()
}

func TestExplainAnalyzeAnnotations(t *testing.T) {
	e := newTestEngine(t)
	mustExec(t, e, "CREATE TABLE totals (state VARCHAR, total INTEGER)")
	mustExec(t, e, "INSERT INTO totals VALUES ('CA', 106), ('TX', 149)")
	text := traceText(t, e, `EXPLAIN ANALYZE SELECT s.state, sum(s.salesAmt) FROM sales s, totals t
		WHERE s.state = t.state GROUP BY s.state ORDER BY s.state`)
	for _, frag := range []string{
		"HashAggregate", "(actual rows=2", "HashJoin", "Scan sales (10 rows) (actual rows=10",
		"Execution: rows=2", "Sort", "build time=",
	} {
		if !strings.Contains(text, frag) {
			t.Errorf("EXPLAIN ANALYZE lacks %q:\n%s", frag, text)
		}
	}

	// Plain selects annotate the Project stage and the scan.
	text = traceText(t, e, "EXPLAIN ANALYZE SELECT state FROM sales WHERE salesAmt > 10")
	for _, frag := range []string{"Project [state] (actual rows=", "Filter", "Scan sales"} {
		if !strings.Contains(text, frag) {
			t.Errorf("plain EXPLAIN ANALYZE lacks %q:\n%s", frag, text)
		}
	}
}

func TestExplainAnalyzeParallelWorkers(t *testing.T) {
	e := newTestEngine(t)
	stmt := parseOne(t, "EXPLAIN ANALYZE SELECT state, sum(salesAmt) FROM sales GROUP BY state")
	r, err := e.ExecuteP(stmt, 2)
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	for _, row := range r.Rows {
		sb.WriteString(row[0].Str())
		sb.WriteByte('\n')
	}
	text := sb.String()
	for _, frag := range []string{"Parallel fold (2 workers)", "worker 1/2", "worker 2/2", "merge: groups=2"} {
		if !strings.Contains(text, frag) {
			t.Errorf("parallel EXPLAIN ANALYZE lacks %q:\n%s", frag, text)
		}
	}
}

// TestTraceSinkSpans covers the acceptance invariants: a parallel run traces
// one span per worker plus a merge span, and sequential children never
// out-sum their parent anywhere in the tree.
func TestTraceSinkSpans(t *testing.T) {
	e := newTestEngine(t)
	var spans []*obs.Span
	e.SetTraceSink(func(s *obs.Span) { spans = append(spans, s) })
	stmt := parseOne(t, "SELECT state, sum(salesAmt) FROM sales GROUP BY state")
	if _, err := e.ExecuteP(stmt, 3); err != nil {
		t.Fatal(err)
	}
	e.SetTraceSink(nil)
	if len(spans) != 1 {
		t.Fatalf("sink received %d spans, want 1", len(spans))
	}
	root := spans[0]
	if root.Name != "statement" || root.Duration <= 0 {
		t.Fatalf("root span = %s (%v)", root.Name, root.Duration)
	}
	fan := root.Find("partition fan-out")
	if fan == nil || !fan.Concurrent {
		t.Fatalf("no concurrent fan-out span:\n%s", root.Format())
	}
	if len(fan.Children) != 3 {
		t.Errorf("worker spans = %d, want 3", len(fan.Children))
	}
	for _, w := range fan.Children {
		if !strings.HasPrefix(w.Name, "worker ") || w.Duration <= 0 {
			t.Errorf("bad worker span %q (%v)", w.Name, w.Duration)
		}
	}
	if root.Find("merge") == nil {
		t.Errorf("no merge span:\n%s", root.Format())
	}
	if root.Find("scan sales") == nil {
		t.Errorf("no scan operator span:\n%s", root.Format())
	}

	// Sequential children must never out-sum their parent (concurrent
	// fan-outs are exempt: workers overlap in wall time). The microsecond
	// grace absorbs clock granularity on near-zero spans.
	root.Walk(func(s *obs.Span) {
		if s.Concurrent || len(s.Children) == 0 {
			return
		}
		var sum time.Duration
		for _, c := range s.Children {
			sum += c.Duration
		}
		if sum > s.Duration+time.Microsecond {
			t.Errorf("children of %q sum to %v, parent is %v:\n%s", s.Name, sum, s.Duration, root.Format())
		}
	})
}

// TestExplainSkipsJoinBuild is the lazy-build regression test: EXPLAIN on a
// join must not build the hash table, executing the same query must.
func TestExplainSkipsJoinBuild(t *testing.T) {
	e := newTestEngine(t)
	mustExec(t, e, "CREATE TABLE totals (state VARCHAR, total INTEGER)")
	mustExec(t, e, "INSERT INTO totals VALUES ('CA', 106), ('TX', 149)")
	q := "SELECT s.state, t.total FROM sales s, totals t WHERE s.state = t.state"

	before := mJoinBuilds.Value()
	mustExec(t, e, "EXPLAIN "+q)
	if got := mJoinBuilds.Value(); got != before {
		t.Errorf("EXPLAIN built %d join hash tables, want 0", got-before)
	}
	mustExec(t, e, q)
	if got := mJoinBuilds.Value(); got != before+1 {
		t.Errorf("SELECT builds = %d, want 1", got-before)
	}

	// Nested-loop right sides stay unmaterialized under EXPLAIN too.
	nl := "SELECT s.state FROM sales s LEFT OUTER JOIN totals t ON s.state = t.state AND s.salesAmt > t.total"
	text := traceText(t, e, "EXPLAIN "+nl)
	if !strings.Contains(text, "deferred to first probe") {
		t.Errorf("nested-loop EXPLAIN did not defer materialization:\n%s", text)
	}
}

func TestSlowQueryLog(t *testing.T) {
	e := newTestEngine(t)
	var buf bytes.Buffer
	e.SetSlowQueryLog(&buf, 0) // threshold 0: everything is slow
	mustExec(t, e, "SELECT count(*) FROM sales")
	e.SetSlowQueryLog(nil, 0)
	out := buf.String()
	if !strings.Contains(out, "slow query (") || !strings.Contains(out, "SELECT count(*) FROM sales") {
		t.Errorf("slow log = %q", out)
	}
	mustExec(t, e, "SELECT count(*) FROM sales")
	if buf.String() != out {
		t.Errorf("disabled slow log still written to")
	}
}

func TestStatementMetrics(t *testing.T) {
	e := newTestEngine(t)
	stmts := mStatements.Value()
	errs := mErrors.Value()
	hist := mStatementNs.Count()
	mustExec(t, e, "SELECT count(*) FROM sales")
	if _, err := e.ExecSQL("SELECT nope FROM sales"); err == nil {
		t.Fatal("expected error")
	}
	if got := mStatements.Value() - stmts; got != 2 {
		t.Errorf("statements delta = %d, want 2", got)
	}
	if got := mErrors.Value() - errs; got != 1 {
		t.Errorf("errors delta = %d, want 1", got)
	}
	if got := mStatementNs.Count() - hist; got != 2 {
		t.Errorf("histogram delta = %d, want 2", got)
	}
}

// BenchmarkSequentialFoldNoSink is the zero-overhead acceptance benchmark:
// with no trace sink attached the sequential hot loop allocates exactly what
// it did before observability existed — metric recording is atomic adds at
// statement granularity, and span plumbing is nil-pointer tests. Run with
// -benchmem and compare allocs/op against BenchmarkHashAggregate history.
func BenchmarkSequentialFoldNoSink(b *testing.B) {
	e := benchEngine(b, 10_000)
	b.ReportAllocs()
	benchQuery(b, e, "SELECT g2, sum(a) FROM f GROUP BY g2")
}
