package engine

import (
	"testing"

	"repro/internal/storage"
)

// TestBatchPathFires pins that the demo-shaped GROUP BY actually takes the
// vectorized path (guarding against silent eligibility regressions) and
// that SetBatch(false) routes around it.
func TestBatchPathFires(t *testing.T) {
	cat := storage.NewCatalog()
	e := New(cat)
	mustExec := func(sql string) {
		t.Helper()
		if _, err := e.ExecSQL(sql); err != nil {
			t.Fatal(err)
		}
	}
	mustExec(`CREATE TABLE s (k INTEGER, g VARCHAR, v INTEGER);
		INSERT INTO s VALUES (1,'a',10),(2,'b',20),(3,'a',30)`)
	before := mBatchFolds.Value()
	mustExec(`SELECT g, sum(v) FROM s GROUP BY g`)
	if after := mBatchFolds.Value(); after != before+1 {
		t.Fatalf("batch.folds went %d -> %d, want one vectorized fold", before, after)
	}
	e.SetBatch(false)
	fallBefore := mBatchFolds.Value()
	mustExec(`SELECT g, sum(v) FROM s GROUP BY g`)
	if after := mBatchFolds.Value(); after != fallBefore {
		t.Fatalf("SetBatch(false) still ran the batch kernel")
	}
	if !e.BatchEnabled() {
		e.SetBatch(true)
	}
	if !e.BatchEnabled() {
		t.Fatal("SetBatch(true) did not re-enable the batch path")
	}
}
