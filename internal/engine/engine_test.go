package engine

import (
	"math"
	"strconv"
	"strings"
	"testing"

	"repro/internal/storage"
	"repro/internal/value"
)

// newTestEngine loads the paper's Table 1 fact table.
func newTestEngine(t *testing.T) *Engine {
	t.Helper()
	e := New(storage.NewCatalog())
	mustExec(t, e, `CREATE TABLE sales (RID INTEGER, state VARCHAR, city VARCHAR, salesAmt INTEGER)`)
	mustExec(t, e, `INSERT INTO sales VALUES
		(1, 'CA', 'San Francisco', 13),
		(2, 'CA', 'San Francisco', 3),
		(3, 'CA', 'San Francisco', 67),
		(4, 'CA', 'Los Angeles', 23),
		(5, 'TX', 'Houston', 5),
		(6, 'TX', 'Houston', 35),
		(7, 'TX', 'Houston', 10),
		(8, 'TX', 'Houston', 14),
		(9, 'TX', 'Dallas', 53),
		(10, 'TX', 'Dallas', 32)`)
	return e
}

func mustExec(t *testing.T, e *Engine, sql string) *Result {
	t.Helper()
	r, err := e.ExecSQL(sql)
	if err != nil {
		t.Fatalf("ExecSQL(%s): %v", sql, err)
	}
	return r
}

func wantErr(t *testing.T, e *Engine, sql string, frag string) {
	t.Helper()
	_, err := e.ExecSQL(sql)
	if err == nil {
		t.Fatalf("ExecSQL(%s): expected error containing %q", sql, frag)
	}
	if frag != "" && !strings.Contains(err.Error(), frag) {
		t.Fatalf("ExecSQL(%s): error %q does not contain %q", sql, err, frag)
	}
}

func TestPlainSelectAndWhere(t *testing.T) {
	e := newTestEngine(t)
	r := mustExec(t, e, "SELECT city, salesAmt FROM sales WHERE state = 'TX' AND salesAmt >= 14")
	if len(r.Rows) != 4 { // Houston 35, Houston 14, Dallas 53, Dallas 32
		t.Fatalf("rows = %d: %v", len(r.Rows), r.Rows)
	}
	if r.Columns[0] != "city" || r.Columns[1] != "salesAmt" {
		t.Errorf("columns = %v", r.Columns)
	}
}

func TestSelectExpressionAndAlias(t *testing.T) {
	e := newTestEngine(t)
	r := mustExec(t, e, "SELECT salesAmt * 2 AS double, RID FROM sales WHERE RID = 1")
	if r.Columns[0] != "double" {
		t.Errorf("alias = %v", r.Columns)
	}
	if r.Rows[0][0].Int() != 26 {
		t.Errorf("value = %v", r.Rows[0][0])
	}
}

func TestSelectStar(t *testing.T) {
	e := newTestEngine(t)
	r := mustExec(t, e, "SELECT * FROM sales WHERE RID = 5")
	if len(r.Columns) != 4 || r.Columns[3] != "salesAmt" {
		t.Errorf("columns = %v", r.Columns)
	}
	if r.Rows[0][2].Str() != "Houston" {
		t.Errorf("row = %v", r.Rows[0])
	}
}

func TestSelectWithoutFrom(t *testing.T) {
	e := newTestEngine(t)
	r := mustExec(t, e, "SELECT 1 + 2, 'x'")
	if len(r.Rows) != 1 || r.Rows[0][0].Int() != 3 || r.Rows[0][1].Str() != "x" {
		t.Errorf("rows = %v", r.Rows)
	}
}

func TestGroupBySum(t *testing.T) {
	e := newTestEngine(t)
	r := mustExec(t, e, "SELECT state, sum(salesAmt) FROM sales GROUP BY state ORDER BY state")
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %v", r.Rows)
	}
	if r.Rows[0][0].Str() != "CA" || r.Rows[0][1].Int() != 106 {
		t.Errorf("CA = %v", r.Rows[0])
	}
	if r.Rows[1][0].Str() != "TX" || r.Rows[1][1].Int() != 149 {
		t.Errorf("TX = %v", r.Rows[1])
	}
}

func TestGroupByTwoLevels(t *testing.T) {
	e := newTestEngine(t)
	r := mustExec(t, e, "SELECT state, city, sum(salesAmt) FROM sales GROUP BY state, city ORDER BY state, city")
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %v", r.Rows)
	}
	// CA/LA=23, CA/SF=83, TX/Dallas=85, TX/Houston=64
	wants := []int64{23, 83, 85, 64}
	for i, w := range wants {
		if r.Rows[i][2].Int() != w {
			t.Errorf("row %d = %v, want sum %d", i, r.Rows[i], w)
		}
	}
}

func TestGroupByPosition(t *testing.T) {
	e := newTestEngine(t)
	r := mustExec(t, e, "SELECT state, count(*) FROM sales GROUP BY 1 ORDER BY 1")
	if len(r.Rows) != 2 || r.Rows[0][1].Int() != 4 || r.Rows[1][1].Int() != 6 {
		t.Errorf("rows = %v", r.Rows)
	}
}

func TestAggregateFunctions(t *testing.T) {
	e := newTestEngine(t)
	r := mustExec(t, e, `SELECT count(*), count(salesAmt), sum(salesAmt), avg(salesAmt),
		min(salesAmt), max(salesAmt), count(DISTINCT state) FROM sales`)
	row := r.Rows[0]
	if row[0].Int() != 10 || row[1].Int() != 10 || row[2].Int() != 255 {
		t.Errorf("counts/sum = %v", row)
	}
	if math.Abs(row[3].Float()-25.5) > 1e-9 {
		t.Errorf("avg = %v", row[3])
	}
	if row[4].Int() != 3 || row[5].Int() != 67 || row[6].Int() != 2 {
		t.Errorf("min/max/distinct = %v", row)
	}
}

func TestAggregateNullSemantics(t *testing.T) {
	e := New(storage.NewCatalog())
	mustExec(t, e, "CREATE TABLE t (g INTEGER, a INTEGER)")
	mustExec(t, e, "INSERT INTO t VALUES (1, 5), (1, NULL), (2, NULL)")
	r := mustExec(t, e, "SELECT g, sum(a), count(a), count(*), avg(a), min(a) FROM t GROUP BY g ORDER BY g")
	g1, g2 := r.Rows[0], r.Rows[1]
	if g1[1].Int() != 5 || g1[2].Int() != 1 || g1[3].Int() != 2 {
		t.Errorf("group 1 = %v", g1)
	}
	// All-NULL group: sum/avg/min are NULL, count(a)=0, count(*)=1.
	if !g2[1].IsNull() || g2[2].Int() != 0 || g2[3].Int() != 1 || !g2[4].IsNull() || !g2[5].IsNull() {
		t.Errorf("group 2 = %v", g2)
	}
}

func TestGlobalAggregateOnEmptyTable(t *testing.T) {
	e := New(storage.NewCatalog())
	mustExec(t, e, "CREATE TABLE t (a INTEGER)")
	r := mustExec(t, e, "SELECT count(*), sum(a) FROM t")
	if len(r.Rows) != 1 || r.Rows[0][0].Int() != 0 || !r.Rows[0][1].IsNull() {
		t.Errorf("rows = %v", r.Rows)
	}
	// But a grouped aggregate over empty input yields no rows.
	r = mustExec(t, e, "SELECT a, count(*) FROM t GROUP BY a")
	if len(r.Rows) != 0 {
		t.Errorf("grouped rows = %v", r.Rows)
	}
}

func TestExpressionOverAggregates(t *testing.T) {
	e := newTestEngine(t)
	// The Hpct-direct shape: sum(CASE)/sum(A).
	r := mustExec(t, e, `SELECT state,
		sum(CASE WHEN city = 'Houston' THEN salesAmt ELSE 0 END) / sum(salesAmt)
		FROM sales GROUP BY state ORDER BY state`)
	if !r.Rows[0][1].IsNull() && r.Rows[0][1].Float() != 0 { // floateq:ok exact expected value
		t.Errorf("CA Houston share = %v", r.Rows[0][1])
	}
	got := r.Rows[1][1].Float()
	if math.Abs(got-64.0/149.0) > 1e-9 {
		t.Errorf("TX Houston share = %v", got)
	}
}

func TestGroupColumnNotInGroupBy(t *testing.T) {
	e := newTestEngine(t)
	wantErr(t, e, "SELECT city, sum(salesAmt) FROM sales GROUP BY state", "GROUP BY")
}

func TestHaving(t *testing.T) {
	e := newTestEngine(t)
	r := mustExec(t, e, "SELECT city, sum(salesAmt) FROM sales GROUP BY city HAVING sum(salesAmt) > 64 ORDER BY city")
	if len(r.Rows) != 2 { // SF=83, Dallas=85
		t.Fatalf("rows = %v", r.Rows)
	}
}

func TestDistinct(t *testing.T) {
	e := newTestEngine(t)
	r := mustExec(t, e, "SELECT DISTINCT state FROM sales ORDER BY state")
	if len(r.Rows) != 2 || r.Rows[0][0].Str() != "CA" {
		t.Errorf("rows = %v", r.Rows)
	}
	r = mustExec(t, e, "SELECT DISTINCT state, city FROM sales")
	if len(r.Rows) != 4 {
		t.Errorf("rows = %v", r.Rows)
	}
}

func TestOrderByDescAndLimit(t *testing.T) {
	e := newTestEngine(t)
	r := mustExec(t, e, "SELECT RID, salesAmt FROM sales ORDER BY salesAmt DESC, RID LIMIT 3")
	if len(r.Rows) != 3 || r.Rows[0][1].Int() != 67 || r.Rows[1][1].Int() != 53 {
		t.Errorf("rows = %v", r.Rows)
	}
}

func TestOrderByAlias(t *testing.T) {
	e := newTestEngine(t)
	r := mustExec(t, e, "SELECT salesAmt AS amt FROM sales ORDER BY amt LIMIT 1")
	if r.Rows[0][0].Int() != 3 {
		t.Errorf("rows = %v", r.Rows)
	}
}

func TestCommaJoinBecomesHashJoin(t *testing.T) {
	e := newTestEngine(t)
	mustExec(t, e, "CREATE TABLE totals (state VARCHAR, total INTEGER)")
	mustExec(t, e, "INSERT INTO totals VALUES ('CA', 106), ('TX', 149)")
	r := mustExec(t, e, `SELECT s.city, s.salesAmt, t.total
		FROM sales s, totals t WHERE s.state = t.state AND s.RID = 1`)
	if len(r.Rows) != 1 || r.Rows[0][2].Int() != 106 {
		t.Errorf("rows = %v", r.Rows)
	}
}

func TestJoinPreservesResidualWhere(t *testing.T) {
	e := newTestEngine(t)
	mustExec(t, e, "CREATE TABLE totals (state VARCHAR, total INTEGER)")
	mustExec(t, e, "INSERT INTO totals VALUES ('CA', 106), ('TX', 149)")
	r := mustExec(t, e, `SELECT s.RID FROM sales s, totals t
		WHERE s.state = t.state AND t.total > 140`)
	if len(r.Rows) != 6 { // only TX rows
		t.Errorf("rows = %v", r.Rows)
	}
}

func TestLeftOuterJoin(t *testing.T) {
	e := New(storage.NewCatalog())
	mustExec(t, e, "CREATE TABLE F0 (d INTEGER)")
	mustExec(t, e, "INSERT INTO F0 VALUES (1), (2), (3)")
	mustExec(t, e, "CREATE TABLE F1 (d INTEGER, a INTEGER)")
	mustExec(t, e, "INSERT INTO F1 VALUES (1, 10), (3, 30)")
	r := mustExec(t, e, `SELECT F0.d, F1.a FROM F0 LEFT OUTER JOIN F1 ON F0.d = F1.d ORDER BY 1`)
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %v", r.Rows)
	}
	if !r.Rows[1][1].IsNull() {
		t.Errorf("missing combination must be NULL: %v", r.Rows[1])
	}
	if r.Rows[0][1].Int() != 10 || r.Rows[2][1].Int() != 30 {
		t.Errorf("rows = %v", r.Rows)
	}
}

func TestChainedLeftOuterJoins(t *testing.T) {
	// The SPJ strategy's assembly shape: F0 LEFT JOIN F1 LEFT JOIN F2.
	e := New(storage.NewCatalog())
	mustExec(t, e, "CREATE TABLE F0 (d INTEGER); INSERT INTO F0 VALUES (1), (2)")
	mustExec(t, e, "CREATE TABLE F1 (d INTEGER, a INTEGER); INSERT INTO F1 VALUES (1, 10)")
	mustExec(t, e, "CREATE TABLE F2 (d INTEGER, a INTEGER); INSERT INTO F2 VALUES (2, 20)")
	r := mustExec(t, e, `SELECT F0.d, F1.a, F2.a FROM F0
		LEFT OUTER JOIN F1 ON F0.d = F1.d
		LEFT OUTER JOIN F2 ON F0.d = F2.d ORDER BY 1`)
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %v", r.Rows)
	}
	if r.Rows[0][1].Int() != 10 || !r.Rows[0][2].IsNull() {
		t.Errorf("row 0 = %v", r.Rows[0])
	}
	if !r.Rows[1][1].IsNull() || r.Rows[1][2].Int() != 20 {
		t.Errorf("row 1 = %v", r.Rows[1])
	}
}

func TestInnerJoinOn(t *testing.T) {
	e := New(storage.NewCatalog())
	mustExec(t, e, "CREATE TABLE a (x INTEGER); INSERT INTO a VALUES (1), (2)")
	mustExec(t, e, "CREATE TABLE b (x INTEGER, y INTEGER); INSERT INTO b VALUES (2, 20), (3, 30)")
	r := mustExec(t, e, "SELECT a.x, b.y FROM a JOIN b ON a.x = b.x")
	if len(r.Rows) != 1 || r.Rows[0][1].Int() != 20 {
		t.Errorf("rows = %v", r.Rows)
	}
}

func TestJoinOnNullNeverMatches(t *testing.T) {
	e := New(storage.NewCatalog())
	mustExec(t, e, "CREATE TABLE a (x INTEGER); INSERT INTO a VALUES (NULL), (1)")
	mustExec(t, e, "CREATE TABLE b (x INTEGER); INSERT INTO b VALUES (NULL), (1)")
	r := mustExec(t, e, "SELECT a.x, b.x FROM a JOIN b ON a.x = b.x")
	if len(r.Rows) != 1 || r.Rows[0][0].Int() != 1 {
		t.Errorf("NULL keys joined: %v", r.Rows)
	}
	// Outer join keeps the NULL-keyed probe row, unmatched.
	r = mustExec(t, e, "SELECT a.x, b.x FROM a LEFT OUTER JOIN b ON a.x = b.x ORDER BY 1")
	if len(r.Rows) != 2 || !r.Rows[0][1].IsNull() {
		t.Errorf("outer join rows = %v", r.Rows)
	}
}

func TestNonEquiJoinFallsBackToNestedLoop(t *testing.T) {
	e := New(storage.NewCatalog())
	mustExec(t, e, "CREATE TABLE a (x INTEGER); INSERT INTO a VALUES (1), (5)")
	mustExec(t, e, "CREATE TABLE b (y INTEGER); INSERT INTO b VALUES (2), (4)")
	r := mustExec(t, e, "SELECT a.x, b.y FROM a JOIN b ON a.x < b.y ORDER BY 1, 2")
	if len(r.Rows) != 2 || r.Rows[0][1].Int() != 2 || r.Rows[1][1].Int() != 4 {
		t.Errorf("rows = %v", r.Rows)
	}
}

func TestCrossJoinWithoutCondition(t *testing.T) {
	e := New(storage.NewCatalog())
	mustExec(t, e, "CREATE TABLE a (x INTEGER); INSERT INTO a VALUES (1), (2)")
	mustExec(t, e, "CREATE TABLE b (y INTEGER); INSERT INTO b VALUES (10), (20)")
	r := mustExec(t, e, "SELECT x, y FROM a, b")
	if len(r.Rows) != 4 {
		t.Errorf("cross product rows = %v", r.Rows)
	}
}

func TestJoinUsesIndexEquivalence(t *testing.T) {
	// Results must be identical with and without an index on the build side.
	run := func(withIndex bool) [][]value.Value {
		e := newTestEngine(t)
		mustExec(t, e, "CREATE TABLE totals (state VARCHAR, total INTEGER)")
		mustExec(t, e, "INSERT INTO totals VALUES ('CA', 106), ('TX', 149)")
		if withIndex {
			mustExec(t, e, "CREATE INDEX ix ON totals (state)")
		}
		r := mustExec(t, e, `SELECT s.RID, t.total FROM sales s, totals t
			WHERE s.state = t.state ORDER BY s.RID`)
		return r.Rows
	}
	a, b := run(false), run(true)
	if len(a) != len(b) || len(a) != 10 {
		t.Fatalf("row counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		for j := range a[i] {
			if value.Compare(a[i][j], b[i][j]) != 0 {
				t.Fatalf("row %d differs: %v vs %v", i, a[i], b[i])
			}
		}
	}
}

func TestWindowAggregate(t *testing.T) {
	e := newTestEngine(t)
	r := mustExec(t, e, `SELECT DISTINCT state, city,
		sum(salesAmt) OVER (PARTITION BY state, city) /
		sum(salesAmt) OVER (PARTITION BY state)
		FROM sales ORDER BY state, city`)
	if len(r.Rows) != 4 {
		t.Fatalf("rows = %v", r.Rows)
	}
	// CA/Los Angeles = 23/106, CA/San Francisco = 83/106.
	if math.Abs(r.Rows[0][2].Float()-23.0/106.0) > 1e-9 {
		t.Errorf("LA pct = %v", r.Rows[0][2])
	}
	if math.Abs(r.Rows[1][2].Float()-83.0/106.0) > 1e-9 {
		t.Errorf("SF pct = %v", r.Rows[1][2])
	}
}

func TestWindowEmptyPartitionIsGlobal(t *testing.T) {
	e := newTestEngine(t)
	r := mustExec(t, e, "SELECT DISTINCT sum(salesAmt) OVER () FROM sales")
	if len(r.Rows) != 1 || r.Rows[0][0].Int() != 255 {
		t.Errorf("rows = %v", r.Rows)
	}
}

func TestWindowMixedWithGroupByRejected(t *testing.T) {
	e := newTestEngine(t)
	wantErr(t, e, "SELECT state, sum(salesAmt) OVER (PARTITION BY state) FROM sales GROUP BY state", "GROUP BY")
}

func TestHorizontalAggregateRejected(t *testing.T) {
	e := newTestEngine(t)
	wantErr(t, e, "SELECT state, vpct(salesAmt BY city) FROM sales GROUP BY state, city", "rewritten")
	wantErr(t, e, "SELECT state, hpct(salesAmt BY city) FROM sales GROUP BY state", "rewritten")
	wantErr(t, e, "SELECT state, sum(salesAmt BY city) FROM sales GROUP BY state", "rewritten")
}

func TestInsertSelect(t *testing.T) {
	e := newTestEngine(t)
	mustExec(t, e, "CREATE TABLE Fk (state VARCHAR, city VARCHAR, A REAL)")
	r := mustExec(t, e, "INSERT INTO Fk SELECT state, city, sum(salesAmt) FROM sales GROUP BY state, city")
	if r.Affected != 4 {
		t.Errorf("affected = %d", r.Affected)
	}
	r2 := mustExec(t, e, "SELECT A FROM Fk WHERE city = 'Houston'")
	if len(r2.Rows) != 1 || r2.Rows[0][0].Float() != 64 { // floateq:ok exact expected value
		t.Errorf("rows = %v", r2.Rows)
	}
}

func TestInsertColumnListAndDefaults(t *testing.T) {
	e := New(storage.NewCatalog())
	mustExec(t, e, "CREATE TABLE t (a INTEGER, b VARCHAR, c REAL)")
	mustExec(t, e, "INSERT INTO t (c, a) VALUES (1.5, 7)")
	r := mustExec(t, e, "SELECT a, b, c FROM t")
	if r.Rows[0][0].Int() != 7 || !r.Rows[0][1].IsNull() || r.Rows[0][2].Float() != 1.5 { // floateq:ok exact expected value
		t.Errorf("row = %v", r.Rows[0])
	}
}

func TestInsertErrors(t *testing.T) {
	e := New(storage.NewCatalog())
	mustExec(t, e, "CREATE TABLE t (a INTEGER)")
	wantErr(t, e, "INSERT INTO t VALUES (1, 2)", "expects 1 values")
	wantErr(t, e, "INSERT INTO t (bogus) VALUES (1)", "no column")
	wantErr(t, e, "INSERT INTO nosuch VALUES (1)", "no table")
	wantErr(t, e, "INSERT INTO t VALUES ('x')", "VARCHAR")
}

func TestUpdateSingleTable(t *testing.T) {
	e := newTestEngine(t)
	r := mustExec(t, e, "UPDATE sales SET salesAmt = salesAmt * 10 WHERE state = 'CA'")
	if r.Affected != 4 {
		t.Errorf("affected = %d", r.Affected)
	}
	r2 := mustExec(t, e, "SELECT sum(salesAmt) FROM sales")
	if r2.Rows[0][0].Int() != 106*10+149 {
		t.Errorf("sum = %v", r2.Rows[0][0])
	}
}

func TestUpdateUsesPreUpdateValues(t *testing.T) {
	e := New(storage.NewCatalog())
	mustExec(t, e, "CREATE TABLE t (a INTEGER, b INTEGER); INSERT INTO t VALUES (1, 10)")
	mustExec(t, e, "UPDATE t SET a = b, b = a")
	r := mustExec(t, e, "SELECT a, b FROM t")
	if r.Rows[0][0].Int() != 10 || r.Rows[0][1].Int() != 1 {
		t.Errorf("swap failed: %v", r.Rows[0])
	}
}

func TestUpdateCrossTable(t *testing.T) {
	// The paper's UPDATE-based division: Fk.A := Fk.A / Fj.A.
	e := New(storage.NewCatalog())
	mustExec(t, e, "CREATE TABLE Fk (state VARCHAR, city VARCHAR, A REAL)")
	mustExec(t, e, `INSERT INTO Fk VALUES ('CA','SF',83),('CA','LA',23),('TX','H',64),('TX','D',85)`)
	mustExec(t, e, "CREATE TABLE Fj (state VARCHAR, A REAL)")
	mustExec(t, e, "INSERT INTO Fj VALUES ('CA',106),('TX',149)")
	r := mustExec(t, e, `UPDATE Fk FROM Fj
		SET A = CASE WHEN Fj.A <> 0 THEN Fk.A / Fj.A ELSE NULL END
		WHERE Fk.state = Fj.state`)
	if r.Affected != 4 {
		t.Errorf("affected = %d", r.Affected)
	}
	r2 := mustExec(t, e, "SELECT A FROM Fk WHERE city = 'SF'")
	if math.Abs(r2.Rows[0][0].Float()-83.0/106.0) > 1e-9 {
		t.Errorf("SF pct = %v", r2.Rows[0][0])
	}
}

func TestUpdateCrossTableZeroDivisorYieldsNull(t *testing.T) {
	e := New(storage.NewCatalog())
	mustExec(t, e, "CREATE TABLE Fk (d INTEGER, A REAL); INSERT INTO Fk VALUES (1, 5)")
	mustExec(t, e, "CREATE TABLE Fj (d INTEGER, A REAL); INSERT INTO Fj VALUES (1, 0)")
	mustExec(t, e, `UPDATE Fk FROM Fj SET A = CASE WHEN Fj.A <> 0 THEN Fk.A / Fj.A ELSE NULL END
		WHERE Fk.d = Fj.d`)
	r := mustExec(t, e, "SELECT A FROM Fk")
	if !r.Rows[0][0].IsNull() {
		t.Errorf("division by zero = %v, want NULL", r.Rows[0][0])
	}
}

func TestUpdateCrossTableErrors(t *testing.T) {
	e := New(storage.NewCatalog())
	mustExec(t, e, "CREATE TABLE a (x INTEGER); CREATE TABLE b (y INTEGER); CREATE TABLE c (z INTEGER)")
	wantErr(t, e, "UPDATE a FROM b, c SET x = 1 WHERE a.x = b.y", "at most one")
}

func TestUpdateCrossTableGlobalTotal(t *testing.T) {
	// The j=0 Vpct case: Fj is one global-total row joined cartesian-style.
	e := New(storage.NewCatalog())
	mustExec(t, e, "CREATE TABLE Fk (g INTEGER, A REAL); INSERT INTO Fk VALUES (1, 25), (2, 75)")
	mustExec(t, e, "CREATE TABLE Fj (A REAL); INSERT INTO Fj VALUES (100)")
	r := mustExec(t, e, "UPDATE Fk FROM Fj SET A = Fk.A / Fj.A")
	if r.Affected != 2 {
		t.Errorf("affected = %d", r.Affected)
	}
	res := mustExec(t, e, "SELECT A FROM Fk ORDER BY g")
	if res.Rows[0][0].Float() != 0.25 || res.Rows[1][0].Float() != 0.75 { // floateq:ok exact expected value
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestCreateDropTable(t *testing.T) {
	e := New(storage.NewCatalog())
	mustExec(t, e, "CREATE TABLE t (a INTEGER, PRIMARY KEY(a))")
	wantErr(t, e, "CREATE TABLE t (a INTEGER)", "already exists")
	mustExec(t, e, "DROP TABLE t")
	wantErr(t, e, "DROP TABLE t", "no table")
	mustExec(t, e, "DROP TABLE IF EXISTS t") // no error
	wantErr(t, e, "CREATE TABLE bad (a INTEGER, PRIMARY KEY(zz))", "primary key")
}

func TestCreateIndexStatement(t *testing.T) {
	e := newTestEngine(t)
	mustExec(t, e, "CREATE INDEX ix_state ON sales (state)")
	tab, _ := e.Catalog().Get("sales")
	if tab.IndexOn([]string{"state"}) == nil {
		t.Error("index not created")
	}
	wantErr(t, e, "CREATE INDEX ix2 ON nosuch (a)", "no table")
	wantErr(t, e, "CREATE INDEX ix_state ON sales (city)", "already exists")
}

func TestAmbiguousColumn(t *testing.T) {
	e := New(storage.NewCatalog())
	mustExec(t, e, "CREATE TABLE a (x INTEGER); CREATE TABLE b (x INTEGER)")
	mustExec(t, e, "INSERT INTO a VALUES (1); INSERT INTO b VALUES (1)")
	wantErr(t, e, "SELECT x FROM a, b WHERE a.x = b.x", "ambiguous")
}

func TestSelfJoinWithAliases(t *testing.T) {
	e := New(storage.NewCatalog())
	mustExec(t, e, "CREATE TABLE t (x INTEGER, y INTEGER); INSERT INTO t VALUES (1, 2), (2, 3)")
	r := mustExec(t, e, "SELECT p.x, q.y FROM t p, t q WHERE p.y = q.x")
	if len(r.Rows) != 1 || r.Rows[0][0].Int() != 1 || r.Rows[0][1].Int() != 3 {
		t.Errorf("rows = %v", r.Rows)
	}
}

func TestAggregateInWhereRejected(t *testing.T) {
	e := newTestEngine(t)
	wantErr(t, e, "SELECT state FROM sales WHERE sum(salesAmt) > 10 GROUP BY state", "WHERE")
}

func TestDistinctOnAggregateArgOnlyForCount(t *testing.T) {
	e := newTestEngine(t)
	wantErr(t, e, "SELECT sum(DISTINCT salesAmt) FROM sales", "DISTINCT")
}

func TestExecSQLReturnsLastResult(t *testing.T) {
	e := New(storage.NewCatalog())
	r := mustExec(t, e, "CREATE TABLE t (a INTEGER); INSERT INTO t VALUES (1); SELECT a FROM t")
	if len(r.Rows) != 1 || r.Rows[0][0].Int() != 1 {
		t.Errorf("last result = %+v", r)
	}
}

func TestExecSQLErrorNamesStatement(t *testing.T) {
	e := New(storage.NewCatalog())
	_, err := e.ExecSQL("CREATE TABLE t (a INTEGER); SELECT bogus FROM t")
	if err == nil || !strings.Contains(err.Error(), "SELECT bogus") {
		t.Errorf("error = %v", err)
	}
}

func TestResultFormat(t *testing.T) {
	e := newTestEngine(t)
	r := mustExec(t, e, "SELECT state, sum(salesAmt) AS total FROM sales GROUP BY state ORDER BY state")
	s := r.Format()
	if !strings.Contains(s, "state") || !strings.Contains(s, "total") ||
		!strings.Contains(s, "106") || !strings.Contains(s, "(2 rows)") {
		t.Errorf("format = %q", s)
	}
	dml := (&Result{Affected: 3}).Format()
	if !strings.Contains(dml, "3 rows affected") {
		t.Errorf("dml format = %q", dml)
	}
}

func TestHashJoinMatchesNestedLoopReference(t *testing.T) {
	// Property: for random-ish data, the hash equijoin and a nested-loop
	// join with the same predicate agree (as multisets, here compared
	// after sorting).
	e := New(storage.NewCatalog())
	mustExec(t, e, "CREATE TABLE l (k INTEGER, v INTEGER)")
	mustExec(t, e, "CREATE TABLE r (k INTEGER, w INTEGER)")
	for i := 0; i < 50; i++ {
		k := (i * 7) % 11
		mustExec(t, e, "INSERT INTO l VALUES ("+itoa(k)+", "+itoa(i)+")")
	}
	for i := 0; i < 30; i++ {
		k := (i * 5) % 13
		mustExec(t, e, "INSERT INTO r VALUES ("+itoa(k)+", "+itoa(i)+")")
	}
	hash := mustExec(t, e, "SELECT l.v, r.w FROM l, r WHERE l.k = r.k ORDER BY 1, 2")
	// Force the nested-loop path with an equivalent non-extractable
	// predicate: (l.k = r.k OR FALSE) defeats equi-extraction.
	nested := mustExec(t, e, "SELECT l.v, r.w FROM l JOIN r ON l.k = r.k OR 1 = 2 ORDER BY 1, 2")
	if len(hash.Rows) != len(nested.Rows) {
		t.Fatalf("row counts: hash %d, nested %d", len(hash.Rows), len(nested.Rows))
	}
	for i := range hash.Rows {
		for j := range hash.Rows[i] {
			if value.Compare(hash.Rows[i][j], nested.Rows[i][j]) != 0 {
				t.Fatalf("row %d differs: %v vs %v", i, hash.Rows[i], nested.Rows[i])
			}
		}
	}
}

func itoa(i int) string { return strconv.Itoa(i) }

func TestWherePredicates(t *testing.T) {
	e := newTestEngine(t)
	r := mustExec(t, e, "SELECT RID FROM sales WHERE city IN ('Dallas', 'Houston') AND salesAmt BETWEEN 10 AND 40")
	if len(r.Rows) != 4 { // Houston 35, 10, 14; Dallas 32 (BETWEEN is inclusive)
		t.Errorf("rows = %v", r.Rows)
	}
	r = mustExec(t, e, "SELECT DISTINCT city FROM sales WHERE city LIKE 'San%'")
	if len(r.Rows) != 1 || r.Rows[0][0].Str() != "San Francisco" {
		t.Errorf("rows = %v", r.Rows)
	}
	r = mustExec(t, e, "SELECT count(*) FROM sales WHERE state NOT IN ('CA')")
	if r.Rows[0][0].Int() != 6 {
		t.Errorf("count = %v", r.Rows[0][0])
	}
	// Percentage-style use: predicates inside aggregated CASE terms.
	r = mustExec(t, e, `SELECT state, sum(CASE WHEN city LIKE '%o%' THEN salesAmt ELSE 0 END)
		FROM sales GROUP BY state ORDER BY state`)
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %v", r.Rows)
	}
}

func TestExplainSelect(t *testing.T) {
	e := newTestEngine(t)
	mustExec(t, e, "CREATE TABLE totals (state VARCHAR, total INTEGER)")
	mustExec(t, e, "INSERT INTO totals VALUES ('CA', 106), ('TX', 149)")
	mustExec(t, e, "CREATE INDEX ix_t ON totals (state)")
	r := mustExec(t, e, `EXPLAIN SELECT s.state, sum(s.salesAmt) FROM sales s, totals t
		WHERE s.state = t.state AND t.total > 100 GROUP BY s.state ORDER BY s.state LIMIT 5`)
	text := ""
	for _, row := range r.Rows {
		text += row[0].Str() + "\n"
	}
	for _, frag := range []string{"Limit 5", "Sort", "HashAggregate", "HashJoin",
		"existing index", "Scan sales (10 rows)", "Filter"} {
		if !strings.Contains(text, frag) {
			t.Errorf("plan lacks %q:\n%s", frag, text)
		}
	}
	// Window and outer-join plans render too.
	r = mustExec(t, e, "EXPLAIN SELECT DISTINCT sum(salesAmt) OVER (PARTITION BY state) FROM sales")
	text = ""
	for _, row := range r.Rows {
		text += row[0].Str() + "\n"
	}
	if !strings.Contains(text, "WindowAggregate") || !strings.Contains(text, "Distinct") {
		t.Errorf("window plan:\n%s", text)
	}
	r = mustExec(t, e, "EXPLAIN SELECT s.RID FROM sales s LEFT OUTER JOIN totals t ON s.state = t.state")
	text = ""
	for _, row := range r.Rows {
		text += row[0].Str() + "\n"
	}
	if !strings.Contains(text, "HashLeftOuterJoin") || !strings.Contains(text, "Project") {
		t.Errorf("outer join plan:\n%s", text)
	}
	wantErr(t, e, "EXPLAIN CREATE TABLE x (a INTEGER)", "EXPLAIN supports SELECT")
}

func TestDeleteStatement(t *testing.T) {
	e := newTestEngine(t)
	r := mustExec(t, e, "DELETE FROM sales WHERE state = 'CA'")
	if r.Affected != 4 {
		t.Errorf("affected = %d", r.Affected)
	}
	res := mustExec(t, e, "SELECT count(*), sum(salesAmt) FROM sales")
	if res.Rows[0][0].Int() != 6 || res.Rows[0][1].Int() != 149 {
		t.Errorf("after delete: %v", res.Rows[0])
	}
	// Indexes stay consistent after the rewrite.
	mustExec(t, e, "CREATE INDEX sx ON sales (state)")
	mustExec(t, e, "DELETE FROM sales WHERE salesAmt < 20")
	res = mustExec(t, e, "SELECT count(*) FROM sales WHERE state = 'TX'")
	if res.Rows[0][0].Int() != 3 { // 35, 53, 32 remain
		t.Errorf("after second delete: %v", res.Rows[0])
	}
	// DELETE without WHERE empties the table.
	mustExec(t, e, "DELETE FROM sales")
	res = mustExec(t, e, "SELECT count(*) FROM sales")
	if res.Rows[0][0].Int() != 0 {
		t.Errorf("after delete all: %v", res.Rows[0])
	}
	wantErr(t, e, "DELETE FROM nosuch", "no table")
}
