package value

import (
	"math"
	"strings"
	"testing"
)

func TestZeroValueIsNull(t *testing.T) {
	var v Value
	if !v.IsNull() {
		t.Fatal("zero Value must be NULL")
	}
	if v.Kind() != KindNull {
		t.Fatalf("zero Value kind = %v, want KindNull", v.Kind())
	}
	if v.String() != "NULL" {
		t.Fatalf("NULL renders as %q", v.String())
	}
}

func TestConstructorsAndAccessors(t *testing.T) {
	if got := NewInt(42).Int(); got != 42 {
		t.Errorf("NewInt(42).Int() = %d", got)
	}
	if got := NewFloat(2.5).Float(); got != 2.5 { // floateq:ok exact expected value
		t.Errorf("NewFloat(2.5).Float() = %v", got)
	}
	if got := NewString("abc").Str(); got != "abc" {
		t.Errorf("NewString(abc).Str() = %q", got)
	}
	if !NewBool(true).Bool() || NewBool(false).Bool() {
		t.Error("NewBool round trip failed")
	}
	if NewInt(7).Float() != 7.0 { // floateq:ok exact expected value
		t.Error("Float() must widen ints")
	}
}

func TestAccessorPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"Int on string", func() { NewString("x").Int() }},
		{"Float on string", func() { NewString("x").Float() }},
		{"Str on int", func() { NewInt(1).Str() }},
		{"Bool on int", func() { NewInt(1).Bool() }},
		{"Float on null", func() { Null.Float() }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			c.fn()
		})
	}
}

func TestStringRendering(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{NewInt(-5), "-5"},
		{NewFloat(0.5), "0.5"},
		{NewString("hi"), "hi"},
		{NewBool(true), "true"},
		{NewBool(false), "false"},
		{Null, "NULL"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%v) = %q, want %q", c.v.Kind(), got, c.want)
		}
	}
}

func TestAsFloatAsInt(t *testing.T) {
	if f, ok := NewInt(3).AsFloat(); !ok || f != 3 { // floateq:ok exact expected value
		t.Error("AsFloat on int failed")
	}
	if f, ok := NewFloat(3.5).AsFloat(); !ok || f != 3.5 { // floateq:ok exact expected value
		t.Error("AsFloat on float failed")
	}
	if _, ok := Null.AsFloat(); ok {
		t.Error("AsFloat on NULL must fail")
	}
	if _, ok := NewString("3").AsFloat(); ok {
		t.Error("AsFloat must not parse strings")
	}
	if i, ok := NewFloat(3.9).AsInt(); !ok || i != 3 {
		t.Error("AsInt must truncate floats")
	}
}

func TestTruthy(t *testing.T) {
	truthy := []Value{NewBool(true), NewInt(1), NewInt(-2), NewFloat(0.1)}
	falsy := []Value{NewBool(false), NewInt(0), NewFloat(0), Null, NewString("t")}
	for _, v := range truthy {
		if !v.Truthy() {
			t.Errorf("%v should be truthy", v)
		}
	}
	for _, v := range falsy {
		if v.Truthy() {
			t.Errorf("%v should not be truthy", v)
		}
	}
}

func TestCoerce(t *testing.T) {
	if v, err := Coerce(NewInt(3), KindFloat); err != nil || v.Float() != 3 { // floateq:ok exact expected value
		t.Errorf("int→float: %v %v", v, err)
	}
	if v, err := Coerce(NewFloat(4), KindInt); err != nil || v.Int() != 4 {
		t.Errorf("float→int exact: %v %v", v, err)
	}
	if _, err := Coerce(NewFloat(4.5), KindInt); err == nil {
		t.Error("lossy float→int must error")
	}
	if _, err := Coerce(NewFloat(math.NaN()), KindInt); err == nil {
		t.Error("NaN→int must error")
	}
	if v, err := Coerce(NewString("12"), KindInt); err != nil || v.Int() != 12 {
		t.Errorf("string→int: %v %v", v, err)
	}
	if v, err := Coerce(NewString("1.5"), KindFloat); err != nil || v.Float() != 1.5 { // floateq:ok exact expected value
		t.Errorf("string→float: %v %v", v, err)
	}
	if _, err := Coerce(NewString("xyz"), KindFloat); err == nil {
		t.Error("bad string→float must error")
	}
	if v, err := Coerce(Null, KindInt); err != nil || !v.IsNull() {
		t.Error("NULL must coerce to NULL")
	}
	if v, err := Coerce(NewInt(7), KindString); err != nil || v.Str() != "7" {
		t.Errorf("int→string: %v %v", v, err)
	}
	if _, err := Coerce(NewBool(true), KindInt); err == nil {
		t.Error("bool→int has no standard cast here")
	}
}

func TestKindString(t *testing.T) {
	for _, k := range []Kind{KindNull, KindInt, KindFloat, KindString, KindBool} {
		if s := k.String(); s == "" || strings.HasPrefix(s, "Kind(") {
			t.Errorf("Kind %d has no name", k)
		}
	}
	if !strings.HasPrefix(Kind(99).String(), "Kind(") {
		t.Error("unknown kind should render as Kind(n)")
	}
}
