package value

import (
	"encoding/binary"
	"math"
)

// Key encoding: values are serialized to a byte string so that tuples can be
// used directly as Go map keys by hash aggregation, hash joins and indexes.
// The encoding is injective (two distinct tuples never encode to the same
// bytes): every value is prefixed with a kind tag, variable-length payloads
// carry their length, and integers and floats are encoded distinctly even
// when numerically equal. Callers that want ints and floats to group
// together normalize values first (the engine's group-by does not: SQL GROUP
// BY distinguishes columns by declared type, and a column never mixes kinds).

// encTag mirrors Kind but is independent so that the encoding stays stable
// if kinds are renumbered.
const (
	encNull   byte = 0
	encInt    byte = 1
	encFloat  byte = 2
	encString byte = 3
	encBool   byte = 4
)

// AppendKey appends the key encoding of v to dst and returns the extended
// slice.
func AppendKey(dst []byte, v Value) []byte {
	switch v.kind {
	case KindNull:
		return append(dst, encNull)
	case KindInt:
		dst = append(dst, encInt)
		return binary.BigEndian.AppendUint64(dst, uint64(v.i))
	case KindFloat:
		dst = append(dst, encFloat)
		return binary.BigEndian.AppendUint64(dst, math.Float64bits(v.f))
	case KindString:
		dst = append(dst, encString)
		dst = binary.BigEndian.AppendUint32(dst, uint32(len(v.s)))
		return append(dst, v.s...)
	case KindBool:
		dst = append(dst, encBool, byte(v.i))
		return dst
	default:
		panic("value: AppendKey on unknown kind")
	}
}

// EncodeKey encodes a tuple of values into a fresh byte slice. The result is
// suitable for use as a map key after conversion to string.
func EncodeKey(vals ...Value) []byte {
	dst := make([]byte, 0, 16*len(vals))
	for _, v := range vals {
		dst = AppendKey(dst, v)
	}
	return dst
}

// EncodeKeyString is EncodeKey returning a string, the form used as a Go map
// key.
func EncodeKeyString(vals ...Value) string { return string(EncodeKey(vals...)) }

// DecodeKey decodes a key encoding produced by EncodeKey back into values.
// It is used by operators that need to recover group keys from map keys
// without retaining per-group value slices.
func DecodeKey(key []byte) ([]Value, error) {
	var out []Value
	for len(key) > 0 {
		tag := key[0]
		key = key[1:]
		switch tag {
		case encNull:
			out = append(out, Null)
		case encInt:
			if len(key) < 8 {
				return nil, errTruncatedKey
			}
			out = append(out, NewInt(int64(binary.BigEndian.Uint64(key))))
			key = key[8:]
		case encFloat:
			if len(key) < 8 {
				return nil, errTruncatedKey
			}
			out = append(out, NewFloat(math.Float64frombits(binary.BigEndian.Uint64(key))))
			key = key[8:]
		case encString:
			if len(key) < 4 {
				return nil, errTruncatedKey
			}
			n := int(binary.BigEndian.Uint32(key))
			key = key[4:]
			if len(key) < n {
				return nil, errTruncatedKey
			}
			out = append(out, NewString(string(key[:n])))
			key = key[n:]
		case encBool:
			if len(key) < 1 {
				return nil, errTruncatedKey
			}
			out = append(out, NewBool(key[0] != 0))
			key = key[1:]
		default:
			return nil, errTruncatedKey
		}
	}
	return out, nil
}

type keyError string

func (e keyError) Error() string { return string(e) }

const errTruncatedKey = keyError("value: truncated or corrupt key encoding")
