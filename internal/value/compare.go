package value

import "fmt"

// Compare defines a total order over values, used by ORDER BY and by the
// reference (sort-based) operators in tests. NULL sorts before every non-null
// value. Numeric kinds compare numerically across int/float. Distinct
// non-comparable kinds order by kind number so that sorting never panics.
func Compare(a, b Value) int {
	an, bn := a.IsNull(), b.IsNull()
	switch {
	case an && bn:
		return 0
	case an:
		return -1
	case bn:
		return 1
	}
	if a.IsNumeric() && b.IsNumeric() {
		if a.kind == KindInt && b.kind == KindInt {
			switch {
			case a.i < b.i:
				return -1
			case a.i > b.i:
				return 1
			default:
				return 0
			}
		}
		af, bf := a.Float(), b.Float()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	}
	if a.kind != b.kind {
		if a.kind < b.kind {
			return -1
		}
		return 1
	}
	switch a.kind {
	case KindString:
		switch {
		case a.s < b.s:
			return -1
		case a.s > b.s:
			return 1
		default:
			return 0
		}
	case KindBool:
		switch {
		case a.i < b.i:
			return -1
		case a.i > b.i:
			return 1
		default:
			return 0
		}
	}
	return 0
}

// SQLEqual implements the SQL `=` operator under three-valued logic: if
// either operand is NULL the result is NULL, otherwise a boolean.
func SQLEqual(a, b Value) Value {
	if a.IsNull() || b.IsNull() {
		return Null
	}
	return NewBool(Compare(a, b) == 0)
}

// SQLCompare implements the SQL ordering operators. op is one of
// "<", "<=", ">", ">=", "=", "<>". NULL operands yield NULL.
func SQLCompare(op string, a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	c := Compare(a, b)
	switch op {
	case "=":
		return NewBool(c == 0), nil
	case "<>", "!=":
		return NewBool(c != 0), nil
	case "<":
		return NewBool(c < 0), nil
	case "<=":
		return NewBool(c <= 0), nil
	case ">":
		return NewBool(c > 0), nil
	case ">=":
		return NewBool(c >= 0), nil
	default:
		return Null, fmt.Errorf("value: unknown comparison operator %q", op)
	}
}

// And implements SQL three-valued AND.
func And(a, b Value) Value {
	af, at := boolState(a)
	bf, bt := boolState(b)
	switch {
	case af || bf:
		return NewBool(false)
	case at && bt:
		return NewBool(true)
	default:
		return Null
	}
}

// Or implements SQL three-valued OR.
func Or(a, b Value) Value {
	af, at := boolState(a)
	bf, bt := boolState(b)
	switch {
	case at || bt:
		return NewBool(true)
	case af && bf:
		return NewBool(false)
	default:
		return Null
	}
}

// Not implements SQL three-valued NOT.
func Not(a Value) Value {
	if a.IsNull() {
		return Null
	}
	return NewBool(!a.Truthy())
}

// boolState classifies a value for three-valued logic: definitelyFalse,
// definitelyTrue. NULL is neither.
func boolState(v Value) (definitelyFalse, definitelyTrue bool) {
	if v.IsNull() {
		return false, false
	}
	if v.Truthy() {
		return false, true
	}
	return true, false
}
