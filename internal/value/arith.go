package value

import "fmt"

// Add returns a+b with SQL semantics: NULL if either operand is NULL,
// integer addition when both operands are integers, float otherwise.
func Add(a, b Value) (Value, error) { return arith("+", a, b) }

// Sub returns a-b with SQL semantics.
func Sub(a, b Value) (Value, error) { return arith("-", a, b) }

// Mul returns a*b with SQL semantics.
func Mul(a, b Value) (Value, error) { return arith("*", a, b) }

// Div returns a/b. Division always produces a REAL result (percentage
// queries divide integer sums and must not truncate). Division by zero
// yields NULL, matching the paper's rule that Vpct/Hpct return NULL rather
// than raising an error when a group total is zero.
func Div(a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	af, aok := a.AsFloat()
	bf, bok := b.AsFloat()
	if !aok || !bok {
		return Null, fmt.Errorf("value: cannot divide %s by %s", a.kind, b.kind)
	}
	if bf == 0 { // floateq:ok SQL division-by-zero guard: exact zero yields NULL
		return Null, nil
	}
	return NewFloat(af / bf), nil
}

// Neg returns -a with SQL semantics.
func Neg(a Value) (Value, error) {
	switch a.kind {
	case KindNull:
		return Null, nil
	case KindInt:
		return NewInt(-a.i), nil
	case KindFloat:
		return NewFloat(-a.f), nil
	default:
		return Null, fmt.Errorf("value: cannot negate %s", a.kind)
	}
}

func arith(op string, a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	if a.kind == KindInt && b.kind == KindInt {
		switch op {
		case "+":
			return NewInt(a.i + b.i), nil
		case "-":
			return NewInt(a.i - b.i), nil
		case "*":
			return NewInt(a.i * b.i), nil
		}
	}
	af, aok := a.AsFloat()
	bf, bok := b.AsFloat()
	if !aok || !bok {
		if op == "+" && a.kind == KindString && b.kind == KindString {
			return NewString(a.s + b.s), nil
		}
		return Null, fmt.Errorf("value: cannot apply %q to %s and %s", op, a.kind, b.kind)
	}
	switch op {
	case "+":
		return NewFloat(af + bf), nil
	case "-":
		return NewFloat(af - bf), nil
	case "*":
		return NewFloat(af * bf), nil
	default:
		return Null, fmt.Errorf("value: unknown arithmetic operator %q", op)
	}
}
