package value

import (
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	tuples := [][]Value{
		{},
		{Null},
		{NewInt(0)},
		{NewInt(-1), NewInt(1)},
		{NewFloat(3.25), NewString("abc"), NewBool(true)},
		{NewString(""), NewString("x"), Null, NewBool(false)},
		{NewString("a\x00b"), NewInt(42)},
	}
	for _, tu := range tuples {
		enc := EncodeKey(tu...)
		dec, err := DecodeKey(enc)
		if err != nil {
			t.Fatalf("DecodeKey(%v): %v", tu, err)
		}
		if len(dec) != len(tu) {
			t.Fatalf("round trip length %d != %d", len(dec), len(tu))
		}
		for i := range tu {
			if Compare(dec[i], tu[i]) != 0 || dec[i].Kind() != tu[i].Kind() {
				t.Errorf("round trip [%d]: %v != %v", i, dec[i], tu[i])
			}
		}
	}
}

func TestEncodeInjective(t *testing.T) {
	// Pairs of distinct tuples that must encode differently, including
	// classic ambiguity traps.
	pairs := [][2][]Value{
		{{NewString("ab"), NewString("c")}, {NewString("a"), NewString("bc")}},
		{{NewInt(1)}, {NewFloat(1)}},
		{{Null}, {NewString("")}},
		{{NewBool(false)}, {NewInt(0)}},
		{{NewString("")}, {}},
		{{Null, Null}, {Null}},
	}
	for _, p := range pairs {
		a, b := EncodeKeyString(p[0]...), EncodeKeyString(p[1]...)
		if a == b {
			t.Errorf("tuples %v and %v encode identically", p[0], p[1])
		}
	}
}

func TestEncodeInjectiveProperty(t *testing.T) {
	mk := func(sel uint8, i int64, f float64, s string) Value {
		switch sel % 5 {
		case 0:
			return Null
		case 1:
			return NewInt(i)
		case 2:
			return NewFloat(f)
		case 3:
			return NewString(s)
		default:
			return NewBool(i%2 == 0)
		}
	}
	f := func(s1, s2 uint8, i1, i2 int64, f1, f2 float64, str1, str2 string) bool {
		a := mk(s1, i1, f1, str1)
		b := mk(s2, i2, f2, str2)
		sameEnc := EncodeKeyString(a) == EncodeKeyString(b)
		sameVal := a.Kind() == b.Kind() && Compare(a, b) == 0
		return sameEnc == sameVal
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestDecodeCorruptKeys(t *testing.T) {
	bad := [][]byte{
		{encInt},                     // truncated int payload
		{encFloat, 0, 0},             // truncated float payload
		{encString, 0, 0, 0, 5, 'a'}, // length 5 but 1 byte
		{encString, 0, 0},            // truncated length
		{encBool},                    // missing bool byte
		{99},                         // unknown tag
	}
	for _, b := range bad {
		if _, err := DecodeKey(b); err == nil {
			t.Errorf("DecodeKey(%v) should fail", b)
		}
	}
}

func TestAppendKeyReusesBuffer(t *testing.T) {
	buf := make([]byte, 0, 64)
	buf = AppendKey(buf, NewInt(1))
	n := len(buf)
	buf = AppendKey(buf, NewString("xy"))
	if len(buf) <= n {
		t.Fatal("AppendKey must extend the buffer")
	}
	dec, err := DecodeKey(buf)
	if err != nil || len(dec) != 2 {
		t.Fatalf("decode appended buffer: %v %v", dec, err)
	}
}
