// Package value implements the SQL value model used throughout the engine:
// dynamically typed scalar values (64-bit integers, 64-bit floats, strings
// and booleans) with a first-class NULL, three-valued comparison logic,
// arithmetic with SQL null-propagation semantics, and an order-preserving
// binary key encoding used by hash aggregation, hash joins and indexes.
package value

import (
	"fmt"
	"math"
	"strconv"
)

// Kind identifies the runtime type of a Value.
type Kind uint8

// The supported value kinds. KindNull is the zero value so that the zero
// Value is SQL NULL.
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
)

// String returns the SQL-ish name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INTEGER"
	case KindFloat:
		return "REAL"
	case KindString:
		return "VARCHAR"
	case KindBool:
		return "BOOLEAN"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Value is a single SQL scalar. The zero Value is NULL. Values are small
// (one word of header plus the string header) and are passed by value.
type Value struct {
	kind Kind
	i    int64 // integer payload; booleans use 0/1
	f    float64
	s    string
}

// Null is the SQL NULL value.
var Null = Value{}

// NewInt returns an integer value.
func NewInt(i int64) Value { return Value{kind: KindInt, i: i} }

// NewFloat returns a floating-point value.
func NewFloat(f float64) Value { return Value{kind: KindFloat, f: f} }

// NewString returns a string value.
func NewString(s string) Value { return Value{kind: KindString, s: s} }

// NewBool returns a boolean value.
func NewBool(b bool) Value {
	v := Value{kind: KindBool}
	if b {
		v.i = 1
	}
	return v
}

// Kind reports the value's runtime kind.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is SQL NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// IsNumeric reports whether the value is an integer or a float.
func (v Value) IsNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// Int returns the integer payload. It panics unless Kind is KindInt or
// KindBool.
func (v Value) Int() int64 {
	if v.kind != KindInt && v.kind != KindBool {
		panic(fmt.Sprintf("value: Int() on %s", v.kind))
	}
	return v.i
}

// Float returns the numeric payload widened to float64. It panics unless the
// value is numeric.
func (v Value) Float() float64 {
	switch v.kind {
	case KindInt:
		return float64(v.i)
	case KindFloat:
		return v.f
	default:
		panic(fmt.Sprintf("value: Float() on %s", v.kind))
	}
}

// Str returns the string payload. It panics unless Kind is KindString.
func (v Value) Str() string {
	if v.kind != KindString {
		panic(fmt.Sprintf("value: Str() on %s", v.kind))
	}
	return v.s
}

// Bool returns the boolean payload. It panics unless Kind is KindBool.
func (v Value) Bool() bool {
	if v.kind != KindBool {
		panic(fmt.Sprintf("value: Bool() on %s", v.kind))
	}
	return v.i != 0
}

// String renders the value the way a result printer would: NULL for null,
// bare literals otherwise.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindString:
		return v.s
	case KindBool:
		if v.i != 0 {
			return "true"
		}
		return "false"
	default:
		return fmt.Sprintf("Value(kind=%d)", uint8(v.kind))
	}
}

// AsFloat converts any numeric value to float64, reporting ok=false for
// NULL and non-numeric kinds.
func (v Value) AsFloat() (f float64, ok bool) {
	switch v.kind {
	case KindInt:
		return float64(v.i), true
	case KindFloat:
		return v.f, true
	default:
		return 0, false
	}
}

// AsInt converts a numeric value to int64 (floats are truncated), reporting
// ok=false for NULL and non-numeric kinds.
func (v Value) AsInt() (i int64, ok bool) {
	switch v.kind {
	case KindInt:
		return v.i, true
	case KindFloat:
		return int64(v.f), true
	default:
		return 0, false
	}
}

// Truthy reports whether the value acts as boolean true in a WHERE clause.
// NULL is not truthy (SQL three-valued logic collapses UNKNOWN to false at
// the filter boundary); nonzero numbers are truthy for convenience.
func (v Value) Truthy() bool {
	switch v.kind {
	case KindBool, KindInt:
		return v.i != 0
	case KindFloat:
		return v.f != 0 // floateq:ok SQL truthiness is exact
	default:
		return false
	}
}

// Coerce converts v to the given kind where a lossless or standard SQL cast
// exists. NULL coerces to every kind (staying NULL).
func Coerce(v Value, k Kind) (Value, error) {
	if v.kind == k || v.kind == KindNull {
		return v, nil
	}
	switch k {
	case KindFloat:
		if v.kind == KindInt {
			return NewFloat(float64(v.i)), nil
		}
		if v.kind == KindString {
			f, err := strconv.ParseFloat(v.s, 64)
			if err != nil {
				return Null, fmt.Errorf("value: cannot cast %q to REAL", v.s)
			}
			return NewFloat(f), nil
		}
	case KindInt:
		if v.kind == KindFloat {
			if v.f != math.Trunc(v.f) || math.IsInf(v.f, 0) || math.IsNaN(v.f) { // floateq:ok lossless-cast check is exact by design
				return Null, fmt.Errorf("value: cannot cast %v to INTEGER without loss", v.f)
			}
			return NewInt(int64(v.f)), nil
		}
		if v.kind == KindString {
			i, err := strconv.ParseInt(v.s, 10, 64)
			if err != nil {
				return Null, fmt.Errorf("value: cannot cast %q to INTEGER", v.s)
			}
			return NewInt(i), nil
		}
	case KindString:
		return NewString(v.String()), nil
	}
	return Null, fmt.Errorf("value: cannot cast %s to %s", v.kind, k)
}
