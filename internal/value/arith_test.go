package value

import (
	"testing"
	"testing/quick"
)

func mustArith(t *testing.T, f func(a, b Value) (Value, error), a, b Value) Value {
	t.Helper()
	v, err := f(a, b)
	if err != nil {
		t.Fatalf("arith error: %v", err)
	}
	return v
}

func TestAddSubMul(t *testing.T) {
	if v := mustArith(t, Add, NewInt(2), NewInt(3)); v.Kind() != KindInt || v.Int() != 5 {
		t.Errorf("2+3 = %v", v)
	}
	if v := mustArith(t, Sub, NewInt(2), NewInt(3)); v.Int() != -1 {
		t.Errorf("2-3 = %v", v)
	}
	if v := mustArith(t, Mul, NewInt(4), NewInt(3)); v.Int() != 12 {
		t.Errorf("4*3 = %v", v)
	}
	if v := mustArith(t, Add, NewInt(2), NewFloat(0.5)); v.Kind() != KindFloat || v.Float() != 2.5 { // floateq:ok exact expected value
		t.Errorf("2+0.5 = %v", v)
	}
	if v := mustArith(t, Add, NewString("ab"), NewString("cd")); v.Str() != "abcd" {
		t.Errorf("string concat = %v", v)
	}
}

func TestNullPropagation(t *testing.T) {
	fns := []func(a, b Value) (Value, error){Add, Sub, Mul, Div}
	for i, f := range fns {
		if v := mustArith(t, f, Null, NewInt(1)); !v.IsNull() {
			t.Errorf("fn %d: NULL op 1 must be NULL", i)
		}
		if v := mustArith(t, f, NewInt(1), Null); !v.IsNull() {
			t.Errorf("fn %d: 1 op NULL must be NULL", i)
		}
	}
	if v, err := Neg(Null); err != nil || !v.IsNull() {
		t.Error("-NULL must be NULL")
	}
}

func TestDivSemantics(t *testing.T) {
	// Division always yields REAL: 1/2 = 0.5, not 0.
	if v := mustArith(t, Div, NewInt(1), NewInt(2)); v.Kind() != KindFloat || v.Float() != 0.5 { // floateq:ok exact expected value
		t.Errorf("1/2 = %v, want 0.5 REAL", v)
	}
	// Division by zero yields NULL (the paper's Vpct rule), not an error.
	if v := mustArith(t, Div, NewInt(1), NewInt(0)); !v.IsNull() {
		t.Errorf("1/0 = %v, want NULL", v)
	}
	if v := mustArith(t, Div, NewFloat(1), NewFloat(0)); !v.IsNull() {
		t.Errorf("1.0/0.0 = %v, want NULL", v)
	}
	if _, err := Div(NewString("a"), NewInt(1)); err == nil {
		t.Error("dividing a string must error")
	}
}

func TestNeg(t *testing.T) {
	if v, _ := Neg(NewInt(5)); v.Int() != -5 {
		t.Errorf("-5 = %v", v)
	}
	if v, _ := Neg(NewFloat(2.5)); v.Float() != -2.5 { // floateq:ok exact expected value
		t.Errorf("-2.5 = %v", v)
	}
	if _, err := Neg(NewString("x")); err == nil {
		t.Error("negating a string must error")
	}
}

func TestArithTypeErrors(t *testing.T) {
	if _, err := Add(NewInt(1), NewString("x")); err == nil {
		t.Error("int + string must error")
	}
	if _, err := Mul(NewBool(true), NewInt(2)); err == nil {
		t.Error("bool * int must error")
	}
}

func TestIntAdditionCommutativeProperty(t *testing.T) {
	f := func(a, b int64) bool {
		x := mustQuick(Add(NewInt(a), NewInt(b)))
		y := mustQuick(Add(NewInt(b), NewInt(a)))
		return x.Int() == y.Int()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDivMulRoundTripProperty(t *testing.T) {
	f := func(a int64, b int64) bool {
		if b == 0 {
			return true
		}
		q := mustQuick(Div(NewInt(a), NewInt(b)))
		back := mustQuick(Mul(q, NewInt(b)))
		diff := back.Float() - float64(a)
		if diff < 0 {
			diff = -diff
		}
		scale := float64(a)
		if scale < 0 {
			scale = -scale
		}
		if scale < 1 {
			scale = 1
		}
		return diff/scale < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func mustQuick(v Value, err error) Value {
	if err != nil {
		panic(err)
	}
	return v
}
