package value

import (
	"testing"
	"testing/quick"
)

func TestCompareBasics(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{NewInt(1), NewInt(2), -1},
		{NewInt(2), NewInt(2), 0},
		{NewInt(3), NewInt(2), 1},
		{NewInt(1), NewFloat(1.5), -1},
		{NewFloat(2.0), NewInt(2), 0},
		{NewString("a"), NewString("b"), -1},
		{NewString("b"), NewString("b"), 0},
		{NewBool(false), NewBool(true), -1},
		{Null, Null, 0},
		{Null, NewInt(-1000), -1},
		{NewString(""), Null, 1},
	}
	for _, c := range cases {
		if got := Compare(c.a, c.b); got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareCrossKind(t *testing.T) {
	// Non-numeric cross-kind comparisons order by kind, deterministically.
	a, b := NewInt(5), NewString("5")
	if Compare(a, b) == 0 {
		t.Error("int 5 must not equal string 5")
	}
	if Compare(a, b) != -Compare(b, a) {
		t.Error("Compare must be antisymmetric across kinds")
	}
}

func TestCompareAntisymmetricProperty(t *testing.T) {
	f := func(ai, bi int64, af, bf float64, as, bs string, pick uint8) bool {
		mk := func(sel uint8, i int64, fl float64, s string) Value {
			switch sel % 5 {
			case 0:
				return Null
			case 1:
				return NewInt(i)
			case 2:
				return NewFloat(fl)
			case 3:
				return NewString(s)
			default:
				return NewBool(i%2 == 0)
			}
		}
		a := mk(pick, ai, af, as)
		b := mk(pick/5, bi, bf, bs)
		return Compare(a, b) == -Compare(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSQLEqual(t *testing.T) {
	if v := SQLEqual(NewInt(1), NewInt(1)); !v.Bool() {
		t.Error("1 = 1 must be true")
	}
	if v := SQLEqual(NewInt(1), NewInt(2)); v.Bool() {
		t.Error("1 = 2 must be false")
	}
	if v := SQLEqual(Null, NewInt(1)); !v.IsNull() {
		t.Error("NULL = 1 must be NULL")
	}
	if v := SQLEqual(Null, Null); !v.IsNull() {
		t.Error("NULL = NULL must be NULL")
	}
}

func TestSQLCompareOperators(t *testing.T) {
	ops := map[string][3]bool{ // results for (1 op 2), (2 op 2), (3 op 2)
		"=":  {false, true, false},
		"<>": {true, false, true},
		"!=": {true, false, true},
		"<":  {true, false, false},
		"<=": {true, true, false},
		">":  {false, false, true},
		">=": {false, true, true},
	}
	args := []Value{NewInt(1), NewInt(2), NewInt(3)}
	for op, want := range ops {
		for i, a := range args {
			got, err := SQLCompare(op, a, NewInt(2))
			if err != nil {
				t.Fatalf("SQLCompare(%q): %v", op, err)
			}
			if got.Bool() != want[i] {
				t.Errorf("%v %s 2 = %v, want %v", a, op, got, want[i])
			}
		}
		if v, err := SQLCompare(op, Null, NewInt(2)); err != nil || !v.IsNull() {
			t.Errorf("NULL %s 2 must be NULL", op)
		}
	}
	if _, err := SQLCompare("~", NewInt(1), NewInt(2)); err == nil {
		t.Error("unknown operator must error")
	}
}

func TestThreeValuedLogic(t *testing.T) {
	T, F, N := NewBool(true), NewBool(false), Null
	andTable := []struct{ a, b, want Value }{
		{T, T, T}, {T, F, F}, {F, T, F}, {F, F, F},
		{T, N, N}, {N, T, N}, {F, N, F}, {N, F, F}, {N, N, N},
	}
	for _, c := range andTable {
		if got := And(c.a, c.b); got.String() != c.want.String() {
			t.Errorf("And(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
	orTable := []struct{ a, b, want Value }{
		{T, T, T}, {T, F, T}, {F, T, T}, {F, F, F},
		{T, N, T}, {N, T, T}, {F, N, N}, {N, F, N}, {N, N, N},
	}
	for _, c := range orTable {
		if got := Or(c.a, c.b); got.String() != c.want.String() {
			t.Errorf("Or(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
	if got := Not(T); got.Bool() {
		t.Error("NOT true = false")
	}
	if got := Not(F); !got.Bool() {
		t.Error("NOT false = true")
	}
	if got := Not(N); !got.IsNull() {
		t.Error("NOT NULL = NULL")
	}
}

func TestDeMorganProperty(t *testing.T) {
	vals := []Value{NewBool(true), NewBool(false), Null}
	for _, a := range vals {
		for _, b := range vals {
			left := Not(And(a, b))
			right := Or(Not(a), Not(b))
			if left.String() != right.String() {
				t.Errorf("De Morgan violated for (%v,%v): %v vs %v", a, b, left, right)
			}
		}
	}
}
