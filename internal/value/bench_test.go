package value

import "testing"

func BenchmarkAppendKey(b *testing.B) {
	vals := []Value{NewInt(42), NewString("San Francisco"), NewFloat(3.25), Null}
	buf := make([]byte, 0, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = buf[:0]
		for _, v := range vals {
			buf = AppendKey(buf, v)
		}
	}
}

func BenchmarkCompareInts(b *testing.B) {
	a, c := NewInt(41), NewInt(42)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if Compare(a, c) >= 0 {
			b.Fatal("order")
		}
	}
}

func BenchmarkSQLEqualStrings(b *testing.B) {
	a, c := NewString("Houston"), NewString("Houston")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !SQLEqual(a, c).Bool() {
			b.Fatal("eq")
		}
	}
}

func BenchmarkAddMixed(b *testing.B) {
	a, c := NewInt(7), NewFloat(2.5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Add(a, c); err != nil {
			b.Fatal(err)
		}
	}
}
