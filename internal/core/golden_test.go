package core

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden generated-SQL file")

// TestGeneratedSQLGolden pins the exact SQL text the code generator emits
// for the flagship query shapes. Codegen regressions — wrong join
// conditions, lost CASE guards, reordered steps — show up as a readable
// text diff. Regenerate after intentional changes with:
//
//	go test ./internal/core/ -run Golden -update
func TestGeneratedSQLGolden(t *testing.T) {
	cases := []struct {
		name string
		sql  string
		opts Options
	}{
		{"vpct_best", vpctSales, DefaultOptions()},
		{"vpct_update", vpctSales,
			Options{Vpct: VpctOptions{UseUpdate: true, SubkeyIndexes: true}}},
		{"vpct_fj_from_f", vpctSales,
			Options{Vpct: VpctOptions{FjFromF: true}}},
		{"vpct_missing_post", "SELECT store, dweek, Vpct(salesAmt BY dweek) FROM daily GROUP BY store, dweek",
			Options{Vpct: VpctOptions{SubkeyIndexes: true, MissingRows: MissingPost}}},
		{"hpct_direct", hpctDaily, DefaultOptions()},
		{"hpct_from_fv", hpctDaily,
			Options{Hpct: HpctOptions{FromFV: true, Vpct: VpctOptions{SubkeyIndexes: true}}}},
		{"hagg_case", "SELECT store, sum(salesAmt BY dweek) FROM daily GROUP BY store", DefaultOptions()},
		{"hagg_spj", "SELECT store, sum(salesAmt BY dweek) FROM daily GROUP BY store",
			Options{Hagg: HaggOptions{Method: HaggSPJ}}},
	}

	var sb strings.Builder
	for _, c := range cases {
		// A fresh planner per case keeps temp numbering deterministic.
		p := newSalesPlanner(t)
		plan, err := p.PlanSQL(c.sql, c.opts)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		sb.WriteString("===== " + c.name + " =====\n")
		sb.WriteString("-- query: " + c.sql + "\n")
		sb.WriteString(plan.SQL())
		sb.WriteString("\n")
		p.CleanupPlan(plan)
	}
	got := sb.String()

	path := filepath.Join("testdata", "generated_sql.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden file rewritten (%d bytes)", len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create it): %v", err)
	}
	if got != string(want) {
		gl, wl := strings.Split(got, "\n"), strings.Split(string(want), "\n")
		for i := 0; i < len(gl) || i < len(wl); i++ {
			var g, w string
			if i < len(gl) {
				g = gl[i]
			}
			if i < len(wl) {
				w = wl[i]
			}
			if g != w {
				t.Fatalf("generated SQL diverges from golden at line %d:\n  got:  %s\n  want: %s\n(run with -update if intentional)", i+1, g, w)
			}
		}
		t.Fatal("generated SQL diverges from golden (length mismatch)")
	}
}
