// Package core implements the paper's contribution: percentage queries.
//
// A percentage query is a SELECT statement using the Vpct() or Hpct()
// aggregate functions (or, via the companion paper's generalization, any
// standard aggregate with a BY subgrouping list). The Planner analyzes such
// a query, validates it against the paper's usage rules, and generates a
// multi-statement standard-SQL plan that the engine executes — exactly the
// role of the paper's Java SQL code generator. Every optimization the
// paper's evaluation studies is a strategy knob:
//
//   - Vpct: compute the coarse totals Fj from the fine aggregate Fk or from
//     F; produce FV by INSERT into a third table or by UPDATE of Fk in
//     place; create identical indexes on the common subkey of Fj and Fk.
//   - Hpct: compute FH directly from F in one scan of sum(CASE…)/sum(A)
//     terms, or from the vertical percentage table FV.
//   - Hagg: SPJ (N filtered aggregates assembled with left outer joins) or
//     CASE, each directly from F or from the vertical pre-aggregate FV.
//
// The planner also generates the ANSI OLAP window-function formulation the
// paper benchmarks against, and implements the two correctness treatments
// the paper identifies for vertical percentages: missing rows (pre- or
// post-processing) and division by zero (NULL results).
//
// Validation is a collecting static analysis: analyzeDiags walks the query
// once and records every independent violation of the paper's usage rules
// as a positioned diag.Diagnostic. The planner's analyze keeps the
// fail-fast contract (first error wins); internal/lint surfaces the full
// list plus its own warning/advisory checks.
package core

import (
	"fmt"
	"strings"

	"repro/internal/diag"
	"repro/internal/expr"
	"repro/internal/sqlparse"
	"repro/internal/storage"
)

// QueryClass classifies a SELECT for planning purposes.
type QueryClass int

// Query classes.
const (
	// ClassStandard has no BY-carrying aggregates; the engine runs it
	// directly.
	ClassStandard QueryClass = iota
	// ClassVertical uses Vpct().
	ClassVertical
	// ClassHorizontalPct uses Hpct().
	ClassHorizontalPct
	// ClassHorizontalAgg uses a standard aggregate with a BY list (the
	// companion paper's horizontal aggregations).
	ClassHorizontalAgg
)

// String names the class.
func (c QueryClass) String() string {
	switch c {
	case ClassStandard:
		return "standard"
	case ClassVertical:
		return "vertical-percentage"
	case ClassHorizontalPct:
		return "horizontal-percentage"
	case ClassHorizontalAgg:
		return "horizontal-aggregation"
	default:
		return fmt.Sprintf("QueryClass(%d)", int(c))
	}
}

// itemKind tags analyzed select items.
type itemKind int

const (
	itemGroupCol itemKind = iota // a bare grouping column
	itemVertAgg                  // a standard aggregate without BY
	itemPct                      // Vpct or Hpct
	itemHoriz                    // standard aggregate with BY (Hagg)
	itemGrouping                 // GROUPING(d1, …): the lattice-node marker
)

// item is one analyzed select-list term.
type item struct {
	kind  itemKind
	alias string        // user alias, may be empty
	col   string        // itemGroupCol: column name
	agg   *expr.AggCall // aggregate items
	gcols []string      // itemGrouping: the marker's dimension arguments
	span  diag.Span     // source span of the select item
}

// analysis is the normalized form of a percentage/horizontal query.
type analysis struct {
	class     QueryClass
	table     string // F
	where     expr.Expr
	groupCols []string // GROUP BY column names, in declared order
	items     []item   // in select-list order
	orderBy   []sqlparse.OrderKey
	limit     int
	schema    storage.Schema // schema of F

	// Grouping-set lattice, when the query uses ROLLUP/CUBE/GROUPING SETS.
	// groupCols then holds the finest dimension list (the union of all
	// sets, first-appearance order) and sets the resolved lattice nodes,
	// each a subset of groupCols in groupCols order, finest first.
	hasSets  bool
	setsKind sqlparse.GroupingKind
	sets     [][]string
}

// classCounts tallies the BY-carrying aggregate kinds in a select list and
// remembers a representative span for each.
type classCounts struct {
	vpct, hpct, hagg bool
	vpctSpan         diag.Span
	hpctSpan         diag.Span
	haggSpan         diag.Span
}

func countClasses(sel *sqlparse.Select) classCounts {
	var c classCounts
	for _, it := range sel.Items {
		if it.Star {
			continue
		}
		_ = expr.Walk(it.Expr, func(n expr.Expr) error {
			a, ok := n.(*expr.AggCall)
			if !ok {
				return nil
			}
			span := a.Span
			if span.IsZero() {
				span = it.Span
			}
			switch {
			case a.Fn == expr.AggVpct:
				if !c.vpct {
					c.vpctSpan = span
				}
				c.vpct = true
			case a.Fn == expr.AggHpct:
				if !c.hpct {
					c.hpctSpan = span
				}
				c.hpct = true
			case a.IsHorizontal():
				if !c.hagg {
					c.haggSpan = span
				}
				c.hagg = true
			}
			return nil
		})
	}
	return c
}

// Classify inspects a parsed SELECT and reports its query class. It errors
// on the combinations the paper rules out (e.g. mixing vertical and
// horizontal percentage aggregations in one statement).
func Classify(sel *sqlparse.Select) (QueryClass, error) {
	c := countClasses(sel)
	switch {
	case c.vpct && (c.hpct || c.hagg):
		return ClassStandard, fmt.Errorf("core: combining vertical and horizontal percentage aggregations in one query is not supported (listed as future work in the paper)")
	case c.hpct && c.hagg:
		return ClassStandard, fmt.Errorf("core: combining Hpct with other horizontal aggregations in one query is not supported")
	case c.vpct:
		return ClassVertical, nil
	case c.hpct:
		return ClassHorizontalPct, nil
	case c.hagg:
		return ClassHorizontalAgg, nil
	default:
		return ClassStandard, nil
	}
}

// classifyDiags is Classify in collecting form: mixing violations become
// diagnostics and the dominant class is still reported so later checks can
// proceed where they make sense.
func classifyDiags(sel *sqlparse.Select, l *diag.List) QueryClass {
	c := countClasses(sel)
	if c.vpct && (c.hpct || c.hagg) {
		span := c.hpctSpan
		if !c.hpct {
			span = c.haggSpan
		}
		l.Addf(diag.CodeMixedClasses, diag.Error, span,
			"combining vertical and horizontal percentage aggregations in one query is not supported (listed as future work in the paper)")
	} else if c.hpct && c.hagg {
		l.Addf(diag.CodeHpctWithHagg, diag.Error, c.haggSpan,
			"combining Hpct with other horizontal aggregations in one query is not supported")
	}
	switch {
	case c.vpct:
		return ClassVertical
	case c.hpct:
		return ClassHorizontalPct
	case c.hagg:
		return ClassHorizontalAgg
	default:
		return ClassStandard
	}
}

// analyze validates the query against the paper's usage rules and produces
// the normalized analysis the generators consume. It keeps the historical
// fail-fast contract: the first error-severity diagnostic becomes the
// returned error.
func (p *Planner) analyze(sel *sqlparse.Select) (*analysis, error) {
	a, l := p.analyzeDiags(sel)
	if d := l.FirstError(); d != nil {
		return nil, diagError(d)
	}
	return a, nil
}

// CodedError is a planner error that carries the stable PCTxxx code of the
// violated rule (see internal/diag), so callers can aggregate rejections by
// diagnostic class without string matching.
type CodedError struct {
	// PCTCode is the diagnostic code, e.g. "PCT017".
	PCTCode string
	// Msg is the human-readable message, including the package prefix.
	Msg string
}

// Error returns the message.
func (e *CodedError) Error() string { return e.Msg }

// Code returns the PCTxxx diagnostic code.
func (e *CodedError) Code() string { return e.PCTCode }

// diagError converts a diagnostic back into the planner's error form.
// Catalog-lookup messages already carry their package prefix; rule
// violations get the historical "core:" prefix.
func diagError(d *diag.Diagnostic) error {
	if d.Code == diag.CodeUnknownTable {
		return &CodedError{PCTCode: d.Code, Msg: d.Message}
	}
	return &CodedError{PCTCode: d.Code, Msg: "core: " + d.Message}
}

// analyzeDiags validates the query, collecting every independent violation
// instead of failing on the first. The returned analysis is complete when
// the list has no errors; with errors it is best-effort (and nil when a
// structural problem — wrong class mix, no usable table — prevents
// analysis).
func (p *Planner) analyzeDiags(sel *sqlparse.Select) (*analysis, *diag.List) {
	l := &diag.List{}
	class := classifyDiags(sel, l)
	if l.HasErrors() {
		return nil, l
	}
	if class == ClassStandard && sel.GroupSets == nil {
		// GROUPING() only means something over a grouping-set lattice.
		for _, sit := range sel.Items {
			if sit.Star {
				continue
			}
			found := false
			_ = expr.Walk(sit.Expr, func(n expr.Expr) error {
				if fc, ok := n.(*expr.FuncCall); ok && strings.EqualFold(fc.Name, "GROUPING") {
					found = true
				}
				return nil
			})
			if found {
				l.Addf(diag.CodeGroupingMisuse, diag.Error, sit.Span,
					"GROUPING() requires GROUP BY ROLLUP, CUBE, or GROUPING SETS")
			}
		}
		return &analysis{class: ClassStandard}, l
	}

	// The structural constraints below apply to everything the planner
	// rewrites: percentage queries and grouping-set (lattice) queries.
	construct := "percentage aggregations"
	if class == ClassStandard && sel.GroupSets != nil {
		construct = sel.GroupSets.Kind.Keyword()
	}
	if len(sel.From) != 1 || sel.From[0].Join != sqlparse.JoinCross {
		span := diag.Span{}
		if len(sel.From) > 1 {
			span = sel.From[1].Table.Span
		} else if len(sel.From) == 1 {
			span = sel.From[0].Table.Span
		}
		what := "percentage"
		if class == ClassStandard {
			what = "grouping-set"
		}
		l.Addf(diag.CodeMultiTable, diag.Error, span,
			"%s queries read from a single table or view F; pre-join into a temporary table first", what)
	}
	if sel.Having != nil {
		l.Addf(diag.CodeHaving, diag.Error, sel.HavingSpan,
			"HAVING is not supported with %s", construct)
	}
	if sel.Distinct {
		l.Addf(diag.CodeDistinct, diag.Error, sel.DistinctSpan,
			"DISTINCT is not supported with %s", construct)
	}
	if len(sel.From) == 0 {
		return nil, l
	}
	tableName := sel.From[0].Table.Name
	schema, err := p.Eng.ResolveSchema(tableName)
	if err != nil {
		l.Add(diag.Diagnostic{Code: diag.CodeUnknownTable, Severity: diag.Error,
			Span: sel.From[0].Table.Span, Message: err.Error()})
		return nil, l
	}

	a := &analysis{
		class:   class,
		table:   tableName,
		where:   sel.Where,
		orderBy: sel.OrderBy,
		limit:   sel.Limit,
		schema:  schema,
	}

	// Resolve GROUP BY keys to column names (positions point at bare
	// column items). A bad key is skipped so the remaining keys still
	// resolve and later checks stay meaningful.
	if sel.GroupSets != nil {
		resolveGroupingSets(sel, a, l)
	}
	for _, g := range sel.GroupBy {
		name, ok := resolveGroupKey(sel, a, g, l)
		if !ok {
			continue
		}
		if containsFold(a.groupCols, name) {
			l.Addf(diag.CodeGroupByDuplicate, diag.Error, g.Span,
				"duplicate GROUP BY column %q", name)
			continue
		}
		a.groupCols = append(a.groupCols, name)
	}

	for _, sit := range sel.Items {
		if sit.Star {
			l.Addf(diag.CodeSelectStar, diag.Error, sit.Span,
				"SELECT * cannot be combined with %s", construct)
			continue
		}
		if fc, ok := sit.Expr.(*expr.FuncCall); ok && strings.EqualFold(fc.Name, "GROUPING") {
			it := item{kind: itemGrouping, alias: sit.Alias, span: sit.Span}
			if !a.hasSets {
				l.Addf(diag.CodeGroupingMisuse, diag.Error, sit.Span,
					"GROUPING() requires GROUP BY ROLLUP, CUBE, or GROUPING SETS")
			}
			if len(fc.Args) == 0 {
				l.Addf(diag.CodeGroupingMisuse, diag.Error, sit.Span,
					"GROUPING() needs at least one dimension argument")
			}
			for _, arg := range fc.Args {
				ref, ok := arg.(*expr.ColumnRef)
				if !ok {
					l.Addf(diag.CodeGroupingMisuse, diag.Error, sit.Span,
						"GROUPING() arguments must be dimension columns, not %s", arg)
					continue
				}
				if a.hasSets && !containsFold(a.groupCols, ref.Name) {
					span := ref.Span
					if span.IsZero() {
						span = sit.Span
					}
					l.Addf(diag.CodeGroupingMisuse, diag.Error, span,
						"GROUPING() argument %q is not a lattice dimension", ref.Name)
					continue
				}
				it.gcols = append(it.gcols, ref.Name)
			}
			a.items = append(a.items, it)
			continue
		}
		switch e := sit.Expr.(type) {
		case *expr.ColumnRef:
			if !containsFold(a.groupCols, e.Name) {
				span := e.Span
				if span.IsZero() {
					span = sit.Span
				}
				l.Addf(diag.CodeNotGrouped, diag.Error, span,
					"column %s must appear in GROUP BY", e)
			}
			a.items = append(a.items, item{kind: itemGroupCol, alias: sit.Alias, col: e.Name, span: sit.Span})
		case *expr.AggCall:
			if e.Over != nil {
				l.Addf(diag.CodeWindowMix, diag.Error, sit.Span,
					"window aggregates cannot be combined with percentage aggregations")
				continue
			}
			it := item{alias: sit.Alias, agg: e, span: sit.Span}
			switch {
			case e.Fn == expr.AggVpct || e.Fn == expr.AggHpct:
				it.kind = itemPct
			case e.IsHorizontal():
				it.kind = itemHoriz
			default:
				it.kind = itemVertAgg
			}
			a.items = append(a.items, it)
		default:
			if expr.HasAggregate(sit.Expr) {
				l.Addf(diag.CodeNestedAgg, diag.Error, sit.Span,
					"percentage aggregations must be top-level select items, not nested in %s", sit.Expr)
			} else {
				l.Addf(diag.CodeBadSelectItem, diag.Error, sit.Span,
					"select item %s must be a grouping column or an aggregate", sit.Expr)
			}
		}
	}

	a.validateRules(l)
	return a, l
}

// resolveGroupKey resolves one GROUP BY key (name or position) against the
// select list and schema, reporting resolution failures.
func resolveGroupKey(sel *sqlparse.Select, a *analysis, g sqlparse.GroupKey, l *diag.List) (string, bool) {
	name := g.Column
	if g.Position > 0 {
		if g.Position > len(sel.Items) {
			l.Addf(diag.CodeGroupByPosition, diag.Error, g.Span,
				"GROUP BY position %d out of range", g.Position)
			return "", false
		}
		ref, ok := sel.Items[g.Position-1].Expr.(*expr.ColumnRef)
		if !ok {
			l.Addf(diag.CodeGroupByPosition, diag.Error, g.Span,
				"GROUP BY position %d must reference a column item", g.Position)
			return "", false
		}
		name = ref.Name
	}
	if a.schema.ColumnIndex(name) < 0 {
		l.Addf(diag.CodeGroupByUnknown, diag.Error, g.Span,
			"GROUP BY column %q is not a column of %s", name, a.table)
		return "", false
	}
	return name, true
}

// resolveGroupingSets resolves a ROLLUP/CUBE/GROUPING SETS construct into
// the finest dimension list (a.groupCols) and the lattice's grouping sets
// (a.sets), finest node first. Duplicate explicit sets are deduplicated
// with a PCT112 warning: each distinct set is evaluated once.
func resolveGroupingSets(sel *sqlparse.Select, a *analysis, l *diag.List) {
	spec := sel.GroupSets
	a.hasSets = true
	a.setsKind = spec.Kind

	switch spec.Kind {
	case sqlparse.GroupRollup, sqlparse.GroupCube:
		if len(spec.Dims) == 0 {
			l.Addf(diag.CodeEmptyGroupingSets, diag.Error, spec.Span,
				"%s() needs at least one dimension", spec.Kind.Keyword())
			return
		}
		var dims []string
		for _, g := range spec.Dims {
			name, ok := resolveGroupKey(sel, a, g, l)
			if !ok {
				continue
			}
			if containsFold(dims, name) {
				l.Addf(diag.CodeGroupByDuplicate, diag.Error, g.Span,
					"duplicate %s dimension %q", spec.Kind.Keyword(), name)
				continue
			}
			dims = append(dims, name)
		}
		a.groupCols = dims
		k := len(dims)
		if spec.Kind == sqlparse.GroupRollup {
			// k+1 prefixes, finest to the grand total.
			for j := k; j >= 0; j-- {
				a.sets = append(a.sets, append([]string{}, dims[:j]...))
			}
		} else {
			// All 2^k subsets, finest first, preserving dimension order
			// within each subset.
			for mask := (1 << k) - 1; mask >= 0; mask-- {
				set := []string{}
				for i := 0; i < k; i++ {
					if mask&(1<<(k-1-i)) != 0 {
						set = append(set, dims[i])
					}
				}
				a.sets = append(a.sets, set)
			}
		}
	case sqlparse.GroupSetsList:
		if len(spec.Sets) == 0 {
			l.Addf(diag.CodeEmptyGroupingSets, diag.Error, spec.Span,
				"GROUPING SETS needs at least one set")
			return
		}
		for _, rawSet := range spec.Sets {
			set := []string{}
			for _, g := range rawSet {
				name, ok := resolveGroupKey(sel, a, g, l)
				if !ok {
					continue
				}
				if containsFold(set, name) {
					l.Addf(diag.CodeGroupByDuplicate, diag.Error, g.Span,
						"duplicate column %q in grouping set", name)
					continue
				}
				set = append(set, name)
				if !containsFold(a.groupCols, name) {
					a.groupCols = append(a.groupCols, name)
				}
			}
			dup := false
			for _, prev := range a.sets {
				if sameColumnSet(prev, set) {
					span := spec.Span
					if len(rawSet) > 0 {
						span = rawSet[0].Span
					}
					l.Addf(diag.CodeDuplicateGroupingSet, diag.Warning, span,
						"duplicate grouping set (%s); each distinct set is evaluated once",
						strings.Join(set, ", "))
					dup = true
					break
				}
			}
			if !dup {
				a.sets = append(a.sets, set)
			}
		}
		// Canonicalize each set to finest-dimension order so generated
		// plans and output layout do not depend on within-set spelling.
		for i, s := range a.sets {
			a.sets[i] = orderedSubset(a.groupCols, s)
		}
	}
}

// sameColumnSet reports whether two grouping sets name the same columns,
// ignoring order and case — (a, b) and (b, a) are the same lattice node.
func sameColumnSet(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for _, x := range a {
		if !containsFold(b, x) {
			return false
		}
	}
	return true
}

// orderedSubset returns the members of sub reordered to ordering's order.
func orderedSubset(ordering, sub []string) []string {
	out := []string{}
	for _, c := range ordering {
		if containsFold(sub, c) {
			out = append(out, c)
		}
	}
	return out
}

// aggSpan returns the best span for an aggregate item: the call's own span
// when the parser recorded one, else the whole select item.
func (it item) aggSpan() diag.Span {
	if it.agg != nil && !it.agg.Span.IsZero() {
		return it.agg.Span
	}
	return it.span
}

// bySpan returns the span of the i'th BY column of the item's call, falling
// back to the call span.
func (it item) bySpan(i int) diag.Span {
	if it.agg != nil && i < len(it.agg.BySpans) {
		return it.agg.BySpans[i]
	}
	return it.aggSpan()
}

// validateRules enforces the per-function usage rules from Sections 3.1,
// 3.2 and the companion paper's Section 3.1, collecting every violation.
func (a *analysis) validateRules(l *diag.List) {
	switch a.class {
	case ClassVertical:
		for _, it := range a.items {
			if it.kind != itemPct {
				continue
			}
			call := it.agg
			// Rule V1: GROUP BY is required (two-level aggregation).
			if len(a.groupCols) == 0 {
				l.Addf(diag.CodeVpctNoGroupBy, diag.Error, it.aggSpan(),
					"Vpct requires a GROUP BY clause")
			}
			if call.Arg == nil {
				l.Addf(diag.CodeVpctNoArg, diag.Error, it.aggSpan(),
					"Vpct requires an expression argument")
			}
			// Rule V2: BY columns must be a proper subset of GROUP BY
			// ("the BY clause can have as many as k-1 columns"). An absent
			// BY list means totals over all rows (j = 0).
			if len(a.groupCols) > 0 && len(call.By) > 0 && len(call.By) >= len(a.groupCols) {
				l.Addf(diag.CodeVpctBySubset, diag.Error, it.aggSpan(),
					"Vpct BY list must be a proper subset of the GROUP BY columns (at most %d of %d)",
					len(a.groupCols)-1, len(a.groupCols))
			}
			for i, b := range call.By {
				if !containsFold(a.groupCols, b) {
					l.Addf(diag.CodeVpctByUnknown, diag.Error, it.bySpan(i),
						"Vpct BY column %q must be one of the GROUP BY columns", b)
				}
			}
			if call.Arg != nil {
				checkMeasure(call.Arg, a.schema, it.aggSpan(), l)
			}
		}
	case ClassHorizontalPct, ClassHorizontalAgg:
		for _, it := range a.items {
			if it.kind != itemPct && it.kind != itemHoriz {
				continue
			}
			call := it.agg
			// Rule H2: BY is required and disjoint from GROUP BY.
			if len(call.By) == 0 {
				l.Addf(diag.CodeByRequired, diag.Error, it.aggSpan(),
					"%s requires a BY subgrouping list", call.Fn)
			}
			for i, b := range call.By {
				if containsFold(a.groupCols, b) {
					l.Addf(diag.CodeByNotDisjoint, diag.Error, it.bySpan(i),
						"%s BY column %q must be disjoint from the GROUP BY columns", call.Fn, b)
				}
				if a.schema.ColumnIndex(b) < 0 {
					l.Addf(diag.CodeByUnknown, diag.Error, it.bySpan(i),
						"%s BY column %q is not a column of %s", call.Fn, b, a.table)
				}
			}
			seen := map[string]bool{}
			for i, b := range call.By {
				lo := strings.ToLower(b)
				if seen[lo] {
					l.Addf(diag.CodeByDuplicate, diag.Error, it.bySpan(i),
						"duplicate BY column %q", b)
					continue
				}
				seen[lo] = true
			}
			if call.Arg == nil && !call.Star {
				l.Addf(diag.CodeAggNoArg, diag.Error, it.aggSpan(),
					"%s requires an argument", call.Fn)
			}
			if call.Arg != nil {
				checkMeasure(call.Arg, a.schema, it.aggSpan(), l)
			}
		}
	}
	// Vertical aggregate terms may accompany either class; their arguments
	// must also resolve against F.
	for _, it := range a.items {
		if it.kind == itemVertAgg && it.agg.Arg != nil {
			checkMeasure(it.agg.Arg, a.schema, it.aggSpan(), l)
		}
	}
}

// checkMeasure verifies every column in a measure expression exists in F,
// pinning each violation to the column reference when the parser recorded
// its position.
func checkMeasure(e expr.Expr, schema storage.Schema, fallback diag.Span, l *diag.List) {
	_ = expr.Walk(e, func(n expr.Expr) error {
		ref, ok := n.(*expr.ColumnRef)
		if !ok {
			return nil
		}
		if schema.ColumnIndex(ref.Name) < 0 {
			span := ref.Span
			if span.IsZero() {
				span = fallback
			}
			l.Addf(diag.CodeUnknownMeasure, diag.Error, span,
				"measure references unknown column %q", ref.Name)
		}
		return nil
	})
}

// byColsOf returns the totals grouping D1..Dj for a vertical term: the
// GROUP BY columns minus the BY columns, in GROUP BY order. An empty BY
// list means totals over all rows (j = 0).
func (a *analysis) totalsColsOf(call *expr.AggCall) []string {
	if len(call.By) == 0 {
		return nil
	}
	var out []string
	for _, g := range a.groupCols {
		if !containsFold(call.By, g) {
			out = append(out, g)
		}
	}
	return out
}

func containsFold(list []string, s string) bool {
	for _, x := range list {
		if strings.EqualFold(x, s) {
			return true
		}
	}
	return false
}
