// Package core implements the paper's contribution: percentage queries.
//
// A percentage query is a SELECT statement using the Vpct() or Hpct()
// aggregate functions (or, via the companion paper's generalization, any
// standard aggregate with a BY subgrouping list). The Planner analyzes such
// a query, validates it against the paper's usage rules, and generates a
// multi-statement standard-SQL plan that the engine executes — exactly the
// role of the paper's Java SQL code generator. Every optimization the
// paper's evaluation studies is a strategy knob:
//
//   - Vpct: compute the coarse totals Fj from the fine aggregate Fk or from
//     F; produce FV by INSERT into a third table or by UPDATE of Fk in
//     place; create identical indexes on the common subkey of Fj and Fk.
//   - Hpct: compute FH directly from F in one scan of sum(CASE…)/sum(A)
//     terms, or from the vertical percentage table FV.
//   - Hagg: SPJ (N filtered aggregates assembled with left outer joins) or
//     CASE, each directly from F or from the vertical pre-aggregate FV.
//
// The planner also generates the ANSI OLAP window-function formulation the
// paper benchmarks against, and implements the two correctness treatments
// the paper identifies for vertical percentages: missing rows (pre- or
// post-processing) and division by zero (NULL results).
package core

import (
	"fmt"
	"strings"

	"repro/internal/expr"
	"repro/internal/sqlparse"
	"repro/internal/storage"
)

// QueryClass classifies a SELECT for planning purposes.
type QueryClass int

// Query classes.
const (
	// ClassStandard has no BY-carrying aggregates; the engine runs it
	// directly.
	ClassStandard QueryClass = iota
	// ClassVertical uses Vpct().
	ClassVertical
	// ClassHorizontalPct uses Hpct().
	ClassHorizontalPct
	// ClassHorizontalAgg uses a standard aggregate with a BY list (the
	// companion paper's horizontal aggregations).
	ClassHorizontalAgg
)

// String names the class.
func (c QueryClass) String() string {
	switch c {
	case ClassStandard:
		return "standard"
	case ClassVertical:
		return "vertical-percentage"
	case ClassHorizontalPct:
		return "horizontal-percentage"
	case ClassHorizontalAgg:
		return "horizontal-aggregation"
	default:
		return fmt.Sprintf("QueryClass(%d)", int(c))
	}
}

// itemKind tags analyzed select items.
type itemKind int

const (
	itemGroupCol itemKind = iota // a bare grouping column
	itemVertAgg                  // a standard aggregate without BY
	itemPct                      // Vpct or Hpct
	itemHoriz                    // standard aggregate with BY (Hagg)
)

// item is one analyzed select-list term.
type item struct {
	kind  itemKind
	alias string        // user alias, may be empty
	col   string        // itemGroupCol: column name
	agg   *expr.AggCall // aggregate items
}

// analysis is the normalized form of a percentage/horizontal query.
type analysis struct {
	class     QueryClass
	table     string // F
	where     expr.Expr
	groupCols []string // GROUP BY column names, in declared order
	items     []item   // in select-list order
	orderBy   []sqlparse.OrderKey
	limit     int
	schema    storage.Schema // schema of F
}

// Classify inspects a parsed SELECT and reports its query class. It errors
// on the combinations the paper rules out (e.g. mixing vertical and
// horizontal percentage aggregations in one statement).
func Classify(sel *sqlparse.Select) (QueryClass, error) {
	var hasVpct, hasHpct, hasHagg bool
	for _, it := range sel.Items {
		if it.Star {
			continue
		}
		err := expr.Walk(it.Expr, func(n expr.Expr) error {
			a, ok := n.(*expr.AggCall)
			if !ok {
				return nil
			}
			switch {
			case a.Fn == expr.AggVpct:
				hasVpct = true
			case a.Fn == expr.AggHpct:
				hasHpct = true
			case a.IsHorizontal():
				hasHagg = true
			}
			return nil
		})
		if err != nil {
			return ClassStandard, err
		}
	}
	switch {
	case hasVpct && (hasHpct || hasHagg):
		return ClassStandard, fmt.Errorf("core: combining vertical and horizontal percentage aggregations in one query is not supported (listed as future work in the paper)")
	case hasHpct && hasHagg:
		return ClassStandard, fmt.Errorf("core: combining Hpct with other horizontal aggregations in one query is not supported")
	case hasVpct:
		return ClassVertical, nil
	case hasHpct:
		return ClassHorizontalPct, nil
	case hasHagg:
		return ClassHorizontalAgg, nil
	default:
		return ClassStandard, nil
	}
}

// analyze validates the query against the paper's usage rules and produces
// the normalized analysis the generators consume.
func (p *Planner) analyze(sel *sqlparse.Select) (*analysis, error) {
	class, err := Classify(sel)
	if err != nil {
		return nil, err
	}
	if class == ClassStandard {
		return &analysis{class: ClassStandard}, nil
	}
	if len(sel.From) != 1 || sel.From[0].Join != sqlparse.JoinCross {
		return nil, fmt.Errorf("core: percentage queries read from a single table or view F; pre-join into a temporary table first")
	}
	if sel.Having != nil {
		return nil, fmt.Errorf("core: HAVING is not supported with percentage aggregations")
	}
	if sel.Distinct {
		return nil, fmt.Errorf("core: DISTINCT is not supported with percentage aggregations")
	}
	tableName := sel.From[0].Table.Name
	tab, err := p.Eng.Catalog().Get(tableName)
	if err != nil {
		return nil, err
	}
	schema := tab.Schema()

	a := &analysis{
		class:   class,
		table:   tableName,
		where:   sel.Where,
		orderBy: sel.OrderBy,
		limit:   sel.Limit,
		schema:  schema,
	}

	// Resolve GROUP BY keys to column names (positions point at bare
	// column items).
	for _, g := range sel.GroupBy {
		name := g.Column
		if g.Position > 0 {
			if g.Position > len(sel.Items) {
				return nil, fmt.Errorf("core: GROUP BY position %d out of range", g.Position)
			}
			ref, ok := sel.Items[g.Position-1].Expr.(*expr.ColumnRef)
			if !ok {
				return nil, fmt.Errorf("core: GROUP BY position %d must reference a column item", g.Position)
			}
			name = ref.Name
		}
		if schema.ColumnIndex(name) < 0 {
			return nil, fmt.Errorf("core: GROUP BY column %q is not a column of %s", name, tableName)
		}
		for _, prev := range a.groupCols {
			if strings.EqualFold(prev, name) {
				return nil, fmt.Errorf("core: duplicate GROUP BY column %q", name)
			}
		}
		a.groupCols = append(a.groupCols, name)
	}

	for _, sit := range sel.Items {
		if sit.Star {
			return nil, fmt.Errorf("core: SELECT * cannot be combined with percentage aggregations")
		}
		switch e := sit.Expr.(type) {
		case *expr.ColumnRef:
			if !containsFold(a.groupCols, e.Name) {
				return nil, fmt.Errorf("core: column %s must appear in GROUP BY", e)
			}
			a.items = append(a.items, item{kind: itemGroupCol, alias: sit.Alias, col: e.Name})
		case *expr.AggCall:
			if e.Over != nil {
				return nil, fmt.Errorf("core: window aggregates cannot be combined with percentage aggregations")
			}
			it := item{alias: sit.Alias, agg: e}
			switch {
			case e.Fn == expr.AggVpct || e.Fn == expr.AggHpct:
				it.kind = itemPct
			case e.IsHorizontal():
				it.kind = itemHoriz
			default:
				it.kind = itemVertAgg
			}
			a.items = append(a.items, it)
		default:
			if expr.HasAggregate(sit.Expr) {
				return nil, fmt.Errorf("core: percentage aggregations must be top-level select items, not nested in %s", sit.Expr)
			}
			return nil, fmt.Errorf("core: select item %s must be a grouping column or an aggregate", sit.Expr)
		}
	}

	if err := a.validateRules(); err != nil {
		return nil, err
	}
	return a, nil
}

// validateRules enforces the per-function usage rules from Sections 3.1,
// 3.2 and the companion paper's Section 3.1.
func (a *analysis) validateRules() error {
	switch a.class {
	case ClassVertical:
		// Rule V1: GROUP BY is required (two-level aggregation).
		if len(a.groupCols) == 0 {
			return fmt.Errorf("core: Vpct requires a GROUP BY clause")
		}
		for _, it := range a.items {
			if it.kind != itemPct {
				continue
			}
			call := it.agg
			if call.Arg == nil {
				return fmt.Errorf("core: Vpct requires an expression argument")
			}
			// Rule V2: BY columns must be a proper subset of GROUP BY
			// ("the BY clause can have as many as k-1 columns"). An absent
			// BY list means totals over all rows (j = 0).
			if len(call.By) > 0 && len(call.By) >= len(a.groupCols) {
				return fmt.Errorf("core: Vpct BY list must be a proper subset of the GROUP BY columns (at most %d of %d)", len(a.groupCols)-1, len(a.groupCols))
			}
			for _, b := range call.By {
				if !containsFold(a.groupCols, b) {
					return fmt.Errorf("core: Vpct BY column %q must be one of the GROUP BY columns", b)
				}
			}
			if err := checkMeasure(call.Arg, a.schema); err != nil {
				return err
			}
		}
	case ClassHorizontalPct, ClassHorizontalAgg:
		for _, it := range a.items {
			if it.kind != itemPct && it.kind != itemHoriz {
				continue
			}
			call := it.agg
			// Rule H2: BY is required and disjoint from GROUP BY.
			if len(call.By) == 0 {
				return fmt.Errorf("core: %s requires a BY subgrouping list", call.Fn)
			}
			for _, b := range call.By {
				if containsFold(a.groupCols, b) {
					return fmt.Errorf("core: %s BY column %q must be disjoint from the GROUP BY columns", call.Fn, b)
				}
				if a.schema.ColumnIndex(b) < 0 {
					return fmt.Errorf("core: %s BY column %q is not a column of %s", call.Fn, b, a.table)
				}
			}
			seen := map[string]bool{}
			for _, b := range call.By {
				l := strings.ToLower(b)
				if seen[l] {
					return fmt.Errorf("core: duplicate BY column %q", b)
				}
				seen[l] = true
			}
			if call.Arg == nil && !call.Star {
				return fmt.Errorf("core: %s requires an argument", call.Fn)
			}
			if call.Arg != nil {
				if err := checkMeasure(call.Arg, a.schema); err != nil {
					return err
				}
			}
		}
	}
	// Vertical aggregate terms may accompany either class; their arguments
	// must also resolve against F.
	for _, it := range a.items {
		if it.kind == itemVertAgg && it.agg.Arg != nil {
			if err := checkMeasure(it.agg.Arg, a.schema); err != nil {
				return err
			}
		}
	}
	return nil
}

// checkMeasure verifies every column in a measure expression exists in F.
func checkMeasure(e expr.Expr, schema storage.Schema) error {
	for _, c := range expr.Columns(e) {
		if schema.ColumnIndex(c) < 0 {
			return fmt.Errorf("core: measure references unknown column %q", c)
		}
	}
	return nil
}

// byColsOf returns the totals grouping D1..Dj for a vertical term: the
// GROUP BY columns minus the BY columns, in GROUP BY order. An empty BY
// list means totals over all rows (j = 0).
func (a *analysis) totalsColsOf(call *expr.AggCall) []string {
	if len(call.By) == 0 {
		return nil
	}
	var out []string
	for _, g := range a.groupCols {
		if !containsFold(call.By, g) {
			out = append(out, g)
		}
	}
	return out
}

func containsFold(list []string, s string) bool {
	for _, x := range list {
		if strings.EqualFold(x, s) {
			return true
		}
	}
	return false
}
