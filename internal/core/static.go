// Static (dataflow-aware) lint checks: interval analysis over the WHERE
// clause. Unlike the linter's data-aware PCT101–PCT103 probes, which
// measure live cardinalities, these checks prove properties of the query
// text alone:
//
//	PCT106  the WHERE predicate set is contradictory — no row can satisfy
//	        it, so the query provably returns nothing
//	PCT107  a WHERE predicate is tautological — it constrains nothing
//	        (or nothing beyond filtering NULLs)
//	PCT108  the WHERE clause pins a Vpct/Hpct measure to 0, so the
//	        percentage denominator is provably zero and every percentage
//	        comes out NULL — the static sharpening of PCT101
//	PCT109  a comparison mixes incompatible types; the engine orders
//	        mixed-kind values by type tag, so the predicate never matches
//	        on value
//	PCT110  a Vpct BY list names the same dimension twice (PCT022 covers
//	        horizontal BY lists as an error; the vertical rule-checker
//	        accepts duplicates silently)
//
// The abstract domain is one interval set per column (interval.go) plus a
// three-valued "value when the column is NULL", so SQL three-valued logic
// is tracked soundly: per-column sets over-approximate the rows a
// predicate can accept (AND intersects, OR unions, NOT complements exact
// single-column predicates), which makes emptiness proofs — the
// contradiction and zero-denominator checks — sound, while tautology
// claims additionally require the predicate to be exactly characterized.
package core

import (
	"fmt"
	"strings"

	"sort"

	"repro/internal/diag"
	"repro/internal/expr"
	"repro/internal/sqlparse"
	"repro/internal/storage"
	"repro/internal/value"
)

// Three-valued result of a predicate when its column is NULL.
const (
	nvFalse = iota
	nvTrue
	nvNull
)

func not3(v int) int {
	switch v {
	case nvTrue:
		return nvFalse
	case nvFalse:
		return nvTrue
	}
	return nvNull
}

func and3(a, b int) int {
	switch {
	case a == nvFalse || b == nvFalse:
		return nvFalse
	case a == nvTrue && b == nvTrue:
		return nvTrue
	}
	return nvNull
}

func or3(a, b int) int {
	switch {
	case a == nvTrue || b == nvTrue:
		return nvTrue
	case a == nvFalse && b == nvFalse:
		return nvFalse
	}
	return nvNull
}

// colCon constrains one column: the set of non-NULL values on which the
// predicate can be true, plus the predicate's value when the column is
// NULL.
type colCon struct {
	set     *intset
	nullVal int
}

// neverTrue reports the predicate accepts no value of this column at all.
func (c colCon) neverTrue() bool { return c.set.isEmpty() && c.nullVal != nvTrue }

// alwaysTrue reports the predicate accepts every value including NULL.
func (c colCon) alwaysTrue() bool { return c.set.isFull() && c.nullVal == nvTrue }

// Constant truth values for column-free predicates.
const (
	tFalse = iota // always FALSE
	tTrue         // always TRUE
	tNull         // always NULL (never true, never false-definite)
	tRow          // depends on the row
)

// absPred is the abstract value of a predicate.
//
// When known, cols maps each mentioned column to an over-approximation of
// the rows the predicate accepts, projected on that column — sound for
// emptiness proofs. When exact additionally holds, the predicate mentions
// at most one column (exactCol) and satisfies the standard atom shape:
// TRUE exactly on cols[exactCol].set, FALSE on every other non-NULL
// value, nullVal when the column is NULL — the invariant NOT needs to
// complement precisely.
type absPred struct {
	known    bool
	truth    int
	cols     map[string]colCon
	exact    bool
	exactCol string
}

func unknownPred() absPred { return absPred{truth: tRow} }

func constPred(truth int) absPred {
	return absPred{known: true, truth: truth, exact: true}
}

func colPred(col string, con colCon) absPred {
	return absPred{known: true, truth: tRow,
		cols: map[string]colCon{col: con}, exact: true, exactCol: col}
}

// neverTrue reports the predicate provably accepts no row.
func (p absPred) neverTrue() bool {
	if !p.known {
		return false
	}
	if p.truth == tFalse || p.truth == tNull {
		return true
	}
	for _, c := range p.cols {
		if c.neverTrue() {
			return true
		}
	}
	return false
}

// alwaysTrue reports the predicate provably accepts every row.
func (p absPred) alwaysTrue() bool {
	if !p.known {
		return false
	}
	if p.truth == tTrue {
		return true
	}
	return p.exact && p.exactCol != "" && p.cols[p.exactCol].alwaysTrue()
}

func andPred(a, b absPred) absPred {
	switch {
	case a.neverTrue():
		return a
	case b.neverTrue():
		return b
	case a.alwaysTrue():
		return b
	case b.alwaysTrue():
		return a
	case !a.known && !b.known:
		return unknownPred()
	case !b.known:
		a.exact = false
		return a
	case !a.known:
		b.exact = false
		return b
	}
	out := absPred{known: true, truth: tRow, cols: map[string]colCon{}}
	for col, c := range a.cols {
		out.cols[col] = c
	}
	for col, c := range b.cols {
		if prev, ok := out.cols[col]; ok {
			out.cols[col] = colCon{set: prev.set.intersect(c.set), nullVal: and3(prev.nullVal, c.nullVal)}
		} else {
			out.cols[col] = c
		}
	}
	if a.exact && b.exact && a.exactCol != "" && a.exactCol == b.exactCol {
		out.exact, out.exactCol = true, a.exactCol
	}
	return out
}

func orPred(a, b absPred) absPred {
	switch {
	case a.alwaysTrue():
		return a
	case b.alwaysTrue():
		return b
	case a.neverTrue():
		return b
	case b.neverTrue():
		return a
	case !a.known || !b.known:
		return unknownPred()
	}
	out := absPred{known: true, truth: tRow, cols: map[string]colCon{}}
	// Only columns constrained on both sides stay constrained: a row
	// satisfying one side may carry any value in the other side's columns.
	for col, ca := range a.cols {
		if cb, ok := b.cols[col]; ok {
			out.cols[col] = colCon{set: ca.set.union(cb.set), nullVal: or3(ca.nullVal, cb.nullVal)}
		}
	}
	if a.exact && b.exact && a.exactCol != "" && a.exactCol == b.exactCol {
		out.exact, out.exactCol = true, a.exactCol
	}
	return out
}

func notPred(a absPred) absPred {
	if !a.known || !a.exact {
		return unknownPred()
	}
	switch a.truth {
	case tTrue:
		return constPred(tFalse)
	case tFalse:
		return constPred(tTrue)
	case tNull:
		return constPred(tNull)
	}
	c := a.cols[a.exactCol]
	return colPred(a.exactCol, colCon{set: c.set.complement(), nullVal: not3(c.nullVal)})
}

// staticAnalyzer carries the per-query state of Analyze.
type staticAnalyzer struct {
	schema   storage.Schema
	list     *diag.List
	colClass map[string]ivClass // inferred class of schema-less columns
	poisoned map[string]bool    // schema-less columns compared against conflicting classes
	combined map[string]colCon  // per-column intersection across all conjuncts
}

// litClass classifies a literal for comparison-compatibility; ok is false
// for NULL and BOOLEAN literals, which the interval domain does not model.
func litClass(v *expr.Literal) (ivClass, bool) {
	switch {
	case v.Val.IsNumeric():
		return clsNum, true
	case v.Val.Kind() == value.KindString:
		return clsStr, true
	}
	return 0, false
}

// colType resolves a column's declared class. typed is false when there
// is no schema or the column is unknown to it; modeled is false for
// BOOLEAN columns, whose domain the analysis does not track.
func (sa *staticAnalyzer) colType(name string) (class ivClass, discrete, typed, modeled bool) {
	idx := -1
	if sa.schema != nil {
		idx = sa.schema.ColumnIndex(name)
	}
	if idx < 0 {
		return 0, false, false, true
	}
	switch sa.schema[idx].Type {
	case storage.TypeInt:
		return clsNum, true, true, true
	case storage.TypeFloat:
		return clsNum, false, true, true
	case storage.TypeString:
		return clsStr, false, true, true
	}
	return 0, false, true, false
}

// classFor resolves the interval class to analyze column name under, given
// a literal it is compared against. ok=false means the atom cannot be
// modeled; mismatch=true additionally reports a type clash worth a PCT109.
func (sa *staticAnalyzer) classFor(name string, lc ivClass) (class ivClass, discrete, ok, mismatch bool) {
	class, discrete, typed, modeled := sa.colType(name)
	if typed {
		if !modeled {
			// BOOLEAN column: a numeric or string literal can never match.
			return 0, false, false, true
		}
		if class != lc {
			return 0, false, false, true
		}
		return class, discrete, true, false
	}
	if sa.poisoned[name] {
		return 0, false, false, false
	}
	if prev, seen := sa.colClass[name]; seen && prev != lc {
		sa.poisoned[name] = true
		return 0, false, false, false
	}
	sa.colClass[name] = lc
	return lc, false, true, false
}

// typeMismatch reports a PCT109 at the column reference.
func (sa *staticAnalyzer) typeMismatch(ref *expr.ColumnRef, lit *expr.Literal) {
	colName := ref.Name
	colType := "untyped"
	if class, _, typed, modeled := sa.colType(strings.ToLower(ref.Name)); typed {
		switch {
		case !modeled:
			colType = storage.TypeBool.String()
		case class == clsNum:
			colType = "numeric"
		default:
			colType = storage.TypeString.String()
		}
	}
	sa.list.Add(diag.Diagnostic{
		Code: diag.CodeCmpTypeMismatch, Severity: diag.Warning,
		Span: ref.Span,
		Message: fmt.Sprintf("comparison of %s column %q with %s literal %s never matches on value: mixed-kind values order by type tag, not content",
			colType, colName, lit.Val.Kind(), lit),
		Fix: fmt.Sprintf("rewrite the literal as a %s value, or compare a different column", colType),
	})
}

// eval computes the abstract value of a predicate expression.
func (sa *staticAnalyzer) eval(e expr.Expr) absPred {
	switch n := e.(type) {
	case *expr.Literal:
		switch {
		case n.Val.IsNull():
			return constPred(tNull)
		case n.Val.Truthy():
			return constPred(tTrue)
		}
		return constPred(tFalse)
	case *expr.BinaryOp:
		switch n.Op {
		case "AND":
			return andPred(sa.eval(n.Left), sa.eval(n.Right))
		case "OR":
			return orPred(sa.eval(n.Left), sa.eval(n.Right))
		case "=", "<>", "!=", "<", "<=", ">", ">=":
			return sa.evalCmp(n)
		}
		return unknownPred()
	case *expr.UnaryOp:
		if n.Op == "NOT" {
			return notPred(sa.eval(n.Operand))
		}
		return unknownPred()
	case *expr.IsNull:
		return sa.evalIsNull(n)
	case *expr.Between:
		return sa.evalBetween(n)
	case *expr.InList:
		return sa.evalIn(n)
	}
	return unknownPred()
}

// flipOp mirrors a comparison operator for swapped operands.
func flipOp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	}
	return op // = and <> are symmetric
}

func (sa *staticAnalyzer) evalCmp(n *expr.BinaryOp) absPred {
	op := n.Op
	left, right := n.Left, n.Right
	if _, ok := left.(*expr.Literal); ok {
		left, right = right, left
		op = flipOp(op)
	}
	lit, ok := right.(*expr.Literal)
	if !ok {
		return unknownPred()
	}
	if ref, ok := left.(*expr.ColumnRef); ok {
		if lit.Val.IsNull() {
			return constPred(tNull) // col <op> NULL is NULL for every row
		}
		lc, lok := litClass(lit)
		if !lok {
			return unknownPred() // BOOLEAN literals are not modeled
		}
		class, discrete, cok, mismatch := sa.classFor(strings.ToLower(ref.Name), lc)
		if mismatch {
			sa.typeMismatch(ref, lit)
		}
		if !cok {
			return unknownPred()
		}
		set := rangeSet(class, discrete, op, lit.Val)
		if set == nil {
			return unknownPred()
		}
		return colPred(strings.ToLower(ref.Name), colCon{set: set, nullVal: nvNull})
	}
	if llit, ok := left.(*expr.Literal); ok {
		res, err := value.SQLCompare(op, llit.Val, lit.Val)
		if err != nil {
			return unknownPred()
		}
		switch {
		case res.IsNull():
			return constPred(tNull)
		case res.Truthy():
			return constPred(tTrue)
		}
		return constPred(tFalse)
	}
	return unknownPred()
}

func (sa *staticAnalyzer) evalIsNull(n *expr.IsNull) absPred {
	if lit, ok := n.Operand.(*expr.Literal); ok {
		if lit.Val.IsNull() != n.Negate {
			return constPred(tTrue)
		}
		return constPred(tFalse)
	}
	ref, ok := n.Operand.(*expr.ColumnRef)
	if !ok {
		return unknownPred()
	}
	name := strings.ToLower(ref.Name)
	class, discrete, _, _ := sa.colType(name)
	if c, seen := sa.colClass[name]; seen && !sa.poisoned[name] {
		class = c
	}
	if n.Negate {
		return colPred(name, colCon{set: fullSet(class, discrete), nullVal: nvFalse})
	}
	return colPred(name, colCon{set: emptySet(class, discrete), nullVal: nvTrue})
}

func (sa *staticAnalyzer) evalBetween(n *expr.Between) absPred {
	ref, ok := n.Operand.(*expr.ColumnRef)
	if !ok {
		return unknownPred()
	}
	lo, lok := n.Lo.(*expr.Literal)
	hi, hok := n.Hi.(*expr.Literal)
	if !lok || !hok {
		return unknownPred()
	}
	if lo.Val.IsNull() || hi.Val.IsNull() {
		if n.Negate {
			return unknownPred() // x NOT BETWEEN NULL AND h can still be true
		}
		// x BETWEEN NULL AND h is never true, but it is FALSE (not NULL)
		// beyond the non-NULL bound, so the atom is known yet not exact.
		name := strings.ToLower(ref.Name)
		class, discrete, _, _ := sa.colType(name)
		return absPred{known: true, truth: tRow,
			cols: map[string]colCon{name: {set: emptySet(class, discrete), nullVal: nvNull}}}
	}
	mk := func(op string, lit *expr.Literal) absPred {
		lc, lok := litClass(lit)
		if !lok {
			return unknownPred()
		}
		class, discrete, cok, mismatch := sa.classFor(strings.ToLower(ref.Name), lc)
		if mismatch {
			sa.typeMismatch(ref, lit)
		}
		if !cok {
			return unknownPred()
		}
		set := rangeSet(class, discrete, op, lit.Val)
		if set == nil {
			return unknownPred()
		}
		return colPred(strings.ToLower(ref.Name), colCon{set: set, nullVal: nvNull})
	}
	p := andPred(mk(">=", lo), mk("<=", hi))
	if n.Negate {
		return notPred(p)
	}
	return p
}

func (sa *staticAnalyzer) evalIn(n *expr.InList) absPred {
	ref, ok := n.Operand.(*expr.ColumnRef)
	if !ok {
		return unknownPred()
	}
	name := strings.ToLower(ref.Name)
	var set *intset
	sawNullElem := false
	for _, e := range n.List {
		lit, ok := e.(*expr.Literal)
		if !ok {
			return unknownPred()
		}
		if lit.Val.IsNull() {
			sawNullElem = true
			continue
		}
		lc, lok := litClass(lit)
		if !lok {
			return unknownPred()
		}
		class, discrete, cok, mismatch := sa.classFor(name, lc)
		if mismatch {
			sa.typeMismatch(ref, lit)
			continue // a mismatched element can never match; drop it
		}
		if !cok {
			return unknownPred()
		}
		p := pointSet(class, discrete, lit.Val)
		if set == nil {
			set = p
		} else {
			set = set.union(p)
		}
	}
	if set == nil {
		// Only NULL or mismatched elements: IN never matches on value.
		class, discrete, _, _ := sa.colType(name)
		set = emptySet(class, discrete)
	}
	if n.Negate {
		if sawNullElem {
			// x NOT IN (.., NULL) is never TRUE (it is NULL unless a
			// non-null element matches, in which case it is FALSE).
			return absPred{known: true, truth: tRow,
				cols: map[string]colCon{name: {set: emptySet(set.class, set.discrete), nullVal: nvNull}}}
		}
		return colPred(name, colCon{set: set.complement(), nullVal: nvNull})
	}
	p := colPred(name, colCon{set: set, nullVal: nvNull})
	if sawNullElem {
		// Values outside the set yield NULL, not FALSE: sound but not the
		// exact atom shape NOT relies on.
		p.exact = false
	}
	return p
}

// conjuncts flattens the top-level AND tree of a WHERE clause.
func conjuncts(e expr.Expr) []expr.Expr {
	if b, ok := e.(*expr.BinaryOp); ok && b.Op == "AND" {
		return append(conjuncts(b.Left), conjuncts(b.Right)...)
	}
	return []expr.Expr{e}
}

// firstRefSpan returns the span of the first positioned column reference
// in e, optionally restricted to one (lower-cased) column name.
func firstRefSpan(e expr.Expr, col string) diag.Span {
	var span diag.Span
	_ = expr.Walk(e, func(n expr.Expr) error {
		if !span.IsZero() {
			return nil
		}
		if ref, ok := n.(*expr.ColumnRef); ok && !ref.Span.IsZero() {
			if col == "" || strings.ToLower(ref.Name) == col {
				span = ref.Span
			}
		}
		return nil
	})
	return span
}

// Analyze runs the static, dataflow-aware lint checks (PCT106–PCT110)
// over one SELECT. It needs no live data: schema (the schema of F, nil
// when unknown) only sharpens the analysis with declared column types —
// INTEGER columns get a discrete interval domain and mixed-type
// comparisons become PCT109 findings. The result is not sorted; callers
// merge it into their own diagnostic list.
func Analyze(sel *sqlparse.Select, schema storage.Schema) []diag.Diagnostic {
	sa := &staticAnalyzer{
		schema:   schema,
		list:     &diag.List{},
		colClass: map[string]ivClass{},
		poisoned: map[string]bool{},
	}
	contradiction := sa.checkWhere(sel.Where)
	if !contradiction {
		sa.checkZeroDenominator(sel)
	}
	sa.checkVpctByDuplicates(sel)
	return sa.list.All()
}

// checkWhere runs the interval analysis over the WHERE clause, reporting
// PCT106/PCT107 (and PCT109 as a side effect of atom evaluation). It
// returns whether a contradiction was found and leaves the combined
// per-column constraints in sa.combined for the denominator check.
func (sa *staticAnalyzer) checkWhere(where expr.Expr) bool {
	sa.combined = map[string]colCon{}
	if where == nil {
		return false
	}
	contradiction := false
	for _, conj := range conjuncts(where) {
		p := sa.eval(conj)
		// A conjunct with no column reference (e.g. "1 = 1") has no span of
		// its own; anchor the finding at the first reference in the WHERE.
		span := firstRefSpan(conj, "")
		if span.IsZero() {
			span = firstRefSpan(where, "")
		}
		switch {
		case p.neverTrue():
			contradiction = true
			sa.list.Add(diag.Diagnostic{
				Code: diag.CodeContradiction, Severity: diag.Warning,
				Span: span,
				Message: fmt.Sprintf("predicate %s can never be true; the query provably returns no rows",
					conj),
				Fix: "remove or correct the contradictory predicate",
			})
		case p.alwaysTrue():
			sa.list.Add(diag.Diagnostic{
				Code: diag.CodeTautology, Severity: diag.Advisory,
				Span: span,
				Message: fmt.Sprintf("predicate %s is always true; it filters nothing",
					conj),
				Fix: "drop the predicate",
			})
		case sa.tautologyModuloNull(conj, p):
			col := p.exactCol
			sa.list.Add(diag.Diagnostic{
				Code: diag.CodeTautology, Severity: diag.Advisory,
				Span: firstRefSpan(conj, col),
				Message: fmt.Sprintf("predicate %s is satisfied by every non-NULL value of %q; it only filters rows where %q IS NULL",
					conj, col, col),
				Fix: fmt.Sprintf("state %s IS NOT NULL directly, or drop the predicate", col),
			})
		}
		if !p.known || p.neverTrue() {
			continue
		}
		for col, c := range p.cols {
			if sa.poisoned[col] {
				continue
			}
			if prev, ok := sa.combined[col]; ok {
				sa.combined[col] = colCon{set: prev.set.intersect(c.set), nullVal: and3(prev.nullVal, c.nullVal)}
			} else {
				sa.combined[col] = c
			}
		}
	}
	if contradiction {
		return true
	}
	// Cross-conjunct contradiction: each conjunct is satisfiable alone but
	// no value of some column satisfies all of them.
	cols := make([]string, 0, len(sa.combined))
	for col := range sa.combined {
		cols = append(cols, col)
	}
	sort.Strings(cols)
	for _, col := range cols {
		if sa.poisoned[col] || !sa.combined[col].neverTrue() {
			continue
		}
		contradiction = true
		sa.list.Add(diag.Diagnostic{
			Code: diag.CodeContradiction, Severity: diag.Warning,
			Span: firstRefSpan(where, col),
			Message: fmt.Sprintf("the WHERE predicates on %q are contradictory: no value satisfies all of them, so the query provably returns no rows",
				col),
			Fix: "correct the bounds so the ranges overlap",
		})
	}
	return contradiction
}

// tautologyModuloNull reports an exact single-column predicate that every
// non-NULL value satisfies — equivalent to IS NOT NULL, which is worth
// flagging unless the author literally wrote IS [NOT] NULL.
func (sa *staticAnalyzer) tautologyModuloNull(conj expr.Expr, p absPred) bool {
	if _, isNull := conj.(*expr.IsNull); isNull {
		return false
	}
	if !p.known || !p.exact || p.exactCol == "" {
		return false
	}
	c := p.cols[p.exactCol]
	return c.set.isFull() && c.nullVal != nvTrue
}

// checkZeroDenominator reports PCT108 for percentage calls whose measure
// the WHERE clause pins to zero (or that sum a constant zero/NULL): the
// per-group total — the percentage denominator — is then provably zero or
// NULL, and every percentage comes out NULL.
func (sa *staticAnalyzer) checkZeroDenominator(sel *sqlparse.Select) {
	for _, it := range sel.Items {
		if it.Star {
			continue
		}
		span := it.Span
		_ = expr.Walk(it.Expr, func(n expr.Expr) error {
			call, ok := n.(*expr.AggCall)
			if !ok || (call.Fn != expr.AggVpct && call.Fn != expr.AggHpct) {
				return nil
			}
			cs := span
			if !call.Span.IsZero() {
				cs = call.Span
			}
			switch arg := call.Arg.(type) {
			case *expr.Literal:
				if f, ok := arg.Val.AsFloat(); ok && f == 0 { // floateq:ok a literal 0 denominator is exact by design
					sa.list.Add(diag.Diagnostic{
						Code: diag.CodeZeroDenominator, Severity: diag.Warning, Span: cs,
						Message: fmt.Sprintf("%s sums the constant %s, so its denominator total is identically zero and every percentage is NULL",
							call.Fn, arg),
						Fix: "sum a measure column instead of a constant zero",
					})
				} else if arg.Val.IsNull() {
					sa.list.Add(diag.Diagnostic{
						Code: diag.CodeZeroDenominator, Severity: diag.Warning, Span: cs,
						Message: fmt.Sprintf("%s sums the constant NULL, so its denominator total is identically NULL and every percentage is NULL",
							call.Fn),
						Fix: "sum a measure column instead of a NULL literal",
					})
				}
			case *expr.ColumnRef:
				col := strings.ToLower(arg.Name)
				con, ok := sa.combined[col]
				if !ok || sa.poisoned[col] || con.set.isEmpty() || con.set.class != clsNum {
					return nil
				}
				zero := pointSet(con.set.class, con.set.discrete, value.NewInt(0))
				if con.set.subsetOf(zero) {
					sa.list.Add(diag.Diagnostic{
						Code: diag.CodeZeroDenominator, Severity: diag.Warning, Span: cs,
						Message: fmt.Sprintf("the WHERE clause restricts %q to 0 on every qualifying row, so the %s denominator (the per-group total of %q) is provably zero and every percentage is NULL",
							arg.Name, call.Fn, arg.Name),
						Fix: "widen the WHERE range on the measure, or choose a different measure",
					})
				}
			}
			return nil
		})
	}
}

// checkVpctByDuplicates reports PCT110 for duplicate dimensions in a Vpct
// BY list. The rule-checker rejects duplicates in horizontal BY lists
// (PCT022) but accepts them for Vpct, where they change nothing — which
// almost always means a different column was intended.
//
// Under GROUP BY ROLLUP/CUBE/GROUPING SETS the check runs per lattice node:
// the duplicate is a no-op only in the grouping sets that actually contain
// the dimension, so one finding fires per such set, naming it. A duplicate
// dimension belonging to no set draws no finding at all — every node ignores
// it entirely, grouped or not.
func (sa *staticAnalyzer) checkVpctByDuplicates(sel *sqlparse.Select) {
	sets := staticGroupingSets(sel)
	for _, it := range sel.Items {
		if it.Star {
			continue
		}
		span := it.Span
		_ = expr.Walk(it.Expr, func(n expr.Expr) error {
			call, ok := n.(*expr.AggCall)
			if !ok || call.Fn != expr.AggVpct {
				return nil
			}
			seen := map[string]bool{}
			for i, b := range call.By {
				lo := strings.ToLower(b)
				if !seen[lo] {
					seen[lo] = true
					continue
				}
				bs := span
				if i < len(call.BySpans) && !call.BySpans[i].IsZero() {
					bs = call.BySpans[i]
				} else if !call.Span.IsZero() {
					bs = call.Span
				}
				if sel.GroupSets == nil || sets == nil {
					sa.list.Add(diag.Diagnostic{
						Code: diag.CodeVpctByDuplicate, Severity: diag.Warning, Span: bs,
						Message: fmt.Sprintf("duplicate Vpct BY dimension %q; the duplicate does not change the subgrouping and usually means a different column was intended",
							b),
						Fix: "drop the duplicate or name the intended column",
					})
					continue
				}
				for _, s := range sets {
					if !containsFold(s, b) {
						continue
					}
					sa.list.Add(diag.Diagnostic{
						Code: diag.CodeVpctByDuplicate, Severity: diag.Warning, Span: bs,
						Message: fmt.Sprintf("duplicate Vpct BY dimension %q in grouping set (%s); the duplicate does not change that node's subgrouping and usually means a different column was intended",
							b, strings.Join(s, ", ")),
						Fix: "drop the duplicate or name the intended column",
					})
				}
			}
			return nil
		})
	}
}

// staticGroupingSets resolves a ROLLUP/CUBE/GROUPING SETS clause textually —
// no schema, no diagnostics — so static checks can report per lattice node.
// It mirrors resolveGroupingSets' expansion. Unresolvable keys are skipped,
// and an over-sized lattice returns nil, in which case callers fall back to
// the statement-level finding.
func staticGroupingSets(sel *sqlparse.Select) [][]string {
	spec := sel.GroupSets
	if spec == nil {
		return nil
	}
	keyName := func(g sqlparse.GroupKey) string {
		if g.Position > 0 {
			if g.Position > len(sel.Items) {
				return ""
			}
			ref, ok := sel.Items[g.Position-1].Expr.(*expr.ColumnRef)
			if !ok {
				return ""
			}
			return ref.Name
		}
		return g.Column
	}
	var sets [][]string
	switch spec.Kind {
	case sqlparse.GroupRollup, sqlparse.GroupCube:
		var dims []string
		for _, g := range spec.Dims {
			if name := keyName(g); name != "" && !containsFold(dims, name) {
				dims = append(dims, name)
			}
		}
		k := len(dims)
		if spec.Kind == sqlparse.GroupRollup {
			for j := k; j >= 0; j-- {
				sets = append(sets, append([]string{}, dims[:j]...))
			}
		} else {
			if k > 8 { // 2^k would exceed maxLatticeNodes
				return nil
			}
			for mask := (1 << k) - 1; mask >= 0; mask-- {
				set := []string{}
				for i := 0; i < k; i++ {
					if mask&(1<<(k-1-i)) != 0 {
						set = append(set, dims[i])
					}
				}
				sets = append(sets, set)
			}
		}
	case sqlparse.GroupSetsList:
		for _, rawSet := range spec.Sets {
			set := []string{}
			for _, g := range rawSet {
				if name := keyName(g); name != "" && !containsFold(set, name) {
					set = append(set, name)
				}
			}
			dup := false
			for _, prev := range sets {
				if sameColumnSet(prev, set) {
					dup = true
					break
				}
			}
			if !dup {
				sets = append(sets, set)
			}
		}
	}
	if len(sets) > maxLatticeNodes {
		return nil
	}
	return sets
}
