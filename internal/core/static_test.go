package core

import (
	"strings"
	"testing"

	"repro/internal/diag"
	"repro/internal/sqlparse"
	"repro/internal/storage"
	"repro/internal/value"
)

// iv is a test helper building one interval from closed numeric bounds.
func numSet(t *testing.T, discrete bool, op string, v float64) *intset {
	t.Helper()
	s := rangeSet(clsNum, discrete, op, value.NewFloat(v))
	if s == nil {
		t.Fatalf("rangeSet(%s, %v) not modelable", op, v)
	}
	return s
}

func TestIntsetAlgebra(t *testing.T) {
	// (x > 10) ∩ (x < 5) = ∅ for reals.
	if s := numSet(t, false, ">", 10).intersect(numSet(t, false, "<", 5)); !s.isEmpty() {
		t.Errorf("x>10 ∩ x<5 = %+v, want empty", s.ivls)
	}
	// (x > 1) ∩ (x < 2) is nonempty for reals but empty for integers.
	if s := numSet(t, false, ">", 1).intersect(numSet(t, false, "<", 2)); s.isEmpty() {
		t.Error("real (1,2) came out empty")
	}
	if s := numSet(t, true, ">", 1).intersect(numSet(t, true, "<", 2)); !s.isEmpty() {
		t.Errorf("integer (1,2) = %+v, want empty", s.ivls)
	}
	// (x <= 0) ∪ (x > 0) covers the reals; with integers, (x <= 0) ∪ (x >= 1)
	// merges by adjacency.
	if s := numSet(t, false, "<=", 0).union(numSet(t, false, ">", 0)); !s.isFull() {
		t.Errorf("x<=0 ∪ x>0 = %+v, want full", s.ivls)
	}
	if s := numSet(t, true, "<=", 0).union(numSet(t, true, ">=", 1)); !s.isFull() {
		t.Errorf("int x<=0 ∪ x>=1 = %+v, want full", s.ivls)
	}
	// Complement round-trips: ¬¬S = S on a point set.
	p := pointSet(clsNum, false, value.NewInt(7))
	if got := p.complement().complement(); got.isEmpty() || !got.subsetOf(p) || !p.subsetOf(got) {
		t.Errorf("¬¬{7} = %+v, want {7}", got.ivls)
	}
	// x <> 7 is the complement of the point.
	ne := rangeSet(clsNum, false, "<>", value.NewInt(7))
	if ne.subsetOf(p) || !p.complement().subsetOf(ne) || !ne.subsetOf(p.complement()) {
		t.Errorf("x<>7 = %+v, want complement of {7}", ne.ivls)
	}
	// Discrete equality against a fractional literal is empty.
	if s := numSet(t, true, "=", 2.5); !s.isEmpty() {
		t.Errorf("int x=2.5 = %+v, want empty", s.ivls)
	}
	// Subset: [0,0] ⊆ {0} and [0,1] ⊄ {0}.
	zero := pointSet(clsNum, true, value.NewInt(0))
	if !numSet(t, true, "=", 0).subsetOf(zero) {
		t.Error("{0} ⊄ {0}")
	}
	if numSet(t, true, ">=", 0).intersect(numSet(t, true, "<=", 1)).subsetOf(zero) {
		t.Error("[0,1] ⊆ {0}")
	}
	// String sets: 'a' < x < 'b' is nonempty, x < 'a' AND x > 'b' is empty.
	lo := rangeSet(clsStr, false, ">", value.NewString("a"))
	hi := rangeSet(clsStr, false, "<", value.NewString("b"))
	if lo.intersect(hi).isEmpty() {
		t.Error("('a','b') came out empty")
	}
	if rangeSet(clsStr, false, "<", value.NewString("a")).intersect(
		rangeSet(clsStr, false, ">", value.NewString("b"))).isEmpty() == false {
		t.Error("x<'a' ∩ x>'b' not empty")
	}
}

// analyzeOne parses a single SELECT and runs the static checks under the
// given schema.
func analyzeOne(t *testing.T, src string, schema storage.Schema) []diag.Diagnostic {
	t.Helper()
	stmts, err := sqlparse.ParseAll(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	sel, ok := stmts[0].(*sqlparse.Select)
	if !ok {
		t.Fatalf("%q is not a SELECT", src)
	}
	return Analyze(sel, schema)
}

func codesOf(ds []diag.Diagnostic) []string {
	out := make([]string, len(ds))
	for i, d := range ds {
		out[i] = d.Code
	}
	return out
}

func hasCode(ds []diag.Diagnostic, code string) bool {
	for _, d := range ds {
		if d.Code == code {
			return true
		}
	}
	return false
}

func TestAnalyzeStatic(t *testing.T) {
	schema := storage.Schema{
		{Name: "g", Type: storage.TypeInt},
		{Name: "d", Type: storage.TypeString},
		{Name: "m", Type: storage.TypeInt},
		{Name: "r", Type: storage.TypeFloat},
	}
	cases := []struct {
		name string
		sql  string
		want []string // codes that must appear
		ban  []string // codes that must not appear
	}{
		{"range contradiction", "SELECT count(*) FROM f WHERE m > 100 AND m < 50",
			[]string{"PCT106"}, nil},
		{"integer gap contradiction", "SELECT count(*) FROM f WHERE m > 1 AND m < 2",
			[]string{"PCT106"}, nil},
		{"real gap satisfiable", "SELECT count(*) FROM f WHERE r > 1 AND r < 2",
			nil, []string{"PCT106"}},
		{"null comparison never true", "SELECT count(*) FROM f WHERE m = NULL",
			[]string{"PCT106"}, nil},
		{"is-null vs equality", "SELECT count(*) FROM f WHERE m IS NULL AND m = 5",
			[]string{"PCT106"}, nil},
		{"empty between", "SELECT count(*) FROM f WHERE m BETWEEN 5 AND 1",
			[]string{"PCT106"}, nil},
		{"not-in with null element", "SELECT count(*) FROM f WHERE m NOT IN (1, NULL)",
			[]string{"PCT106"}, nil},
		{"in vs disjoint range", "SELECT count(*) FROM f WHERE d IN ('a', 'b') AND d > 'c'",
			[]string{"PCT106"}, nil},
		{"tautology full range", "SELECT count(*) FROM f WHERE (m <= 0 OR m > 0) AND g = 1",
			[]string{"PCT107"}, []string{"PCT106"}},
		{"tautology constant", "SELECT count(*) FROM f WHERE 1 = 1 AND g = 1",
			[]string{"PCT107"}, nil},
		{"is not null is intentional", "SELECT count(*) FROM f WHERE m IS NOT NULL",
			nil, []string{"PCT107"}},
		{"real constraint no tautology", "SELECT count(*) FROM f WHERE m <= 0 OR m > 10",
			nil, []string{"PCT106", "PCT107"}},
		{"zero denominator", "SELECT g, Vpct(m BY d) FROM f WHERE m = 0 GROUP BY g, d",
			[]string{"PCT108"}, nil},
		{"zero range denominator", "SELECT g, Vpct(m BY d) FROM f WHERE m >= 0 AND m <= 0 GROUP BY g, d",
			[]string{"PCT108"}, nil},
		{"constant zero denominator", "SELECT g, Vpct(0 BY d) FROM f GROUP BY g, d",
			[]string{"PCT108"}, nil},
		{"nonzero denominator", "SELECT g, Vpct(m BY d) FROM f WHERE m >= 0 GROUP BY g, d",
			nil, []string{"PCT108"}},
		{"type mismatch string col", "SELECT count(*) FROM f WHERE d > 7",
			[]string{"PCT109"}, nil},
		{"type mismatch int col", "SELECT count(*) FROM f WHERE m = 'oops'",
			[]string{"PCT109"}, nil},
		{"matched types", "SELECT count(*) FROM f WHERE d > '7' AND m = 3",
			nil, []string{"PCT109"}},
		{"vpct by duplicate", "SELECT g, d, Vpct(m BY d, d) FROM f GROUP BY g, d",
			[]string{"PCT110"}, nil},
		{"vpct by distinct", "SELECT g, d, Vpct(m BY d) FROM f GROUP BY g, d",
			nil, []string{"PCT110"}},
		{"not of range", "SELECT count(*) FROM f WHERE NOT (m < 10) AND m < 5",
			[]string{"PCT106"}, nil},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			ds := analyzeOne(t, tc.sql, schema)
			for _, w := range tc.want {
				if !hasCode(ds, w) {
					t.Errorf("missing %s in %v", w, codesOf(ds))
				}
			}
			for _, b := range tc.ban {
				if hasCode(ds, b) {
					t.Errorf("unexpected %s in %v", b, codesOf(ds))
				}
			}
		})
	}
}

// TestAnalyzeWithoutSchema exercises the schema-less degradation: classes
// are inferred from literals, conflicting classes poison the column, and
// PCT109 stays silent (no declared types to contradict).
func TestAnalyzeWithoutSchema(t *testing.T) {
	ds := analyzeOne(t, "SELECT count(*) FROM f WHERE x > 100 AND x < 50", nil)
	if !hasCode(ds, "PCT106") {
		t.Errorf("schema-less contradiction missed: %v", codesOf(ds))
	}
	ds = analyzeOne(t, "SELECT count(*) FROM f WHERE x > 100 AND x < 'a'", nil)
	if hasCode(ds, "PCT106") || hasCode(ds, "PCT109") {
		t.Errorf("poisoned column produced findings: %v", codesOf(ds))
	}
}

// TestAnalyzeDeterministic pins the output order of a query producing
// several findings.
func TestAnalyzeDeterministic(t *testing.T) {
	schema := storage.Schema{{Name: "a", Type: storage.TypeInt}, {Name: "b", Type: storage.TypeInt}}
	sql := "SELECT count(*) FROM f WHERE a > 5 AND a < 2 AND b > 9 AND b < 3"
	first := strings.Join(codesOf(analyzeOne(t, sql, schema)), ",")
	for i := 0; i < 5; i++ {
		if got := strings.Join(codesOf(analyzeOne(t, sql, schema)), ","); got != first {
			t.Fatalf("run %d: %s != %s", i, got, first)
		}
	}
	if first != "PCT106,PCT106" {
		t.Errorf("codes = %s, want PCT106,PCT106 (both columns flagged)", first)
	}
}
