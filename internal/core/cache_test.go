package core

import (
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/value"
)

// Summary-cache consistency suite: the cache must never serve a percentage
// computed before DML changed the base table. Freshness is proven by
// comparing every cached answer against a cold planner sharing the same
// engine (separate temp prefix, sharing off), cell by cell.

// newCachePlanners returns a sharing planner and a cold reference planner
// over the same sales fixture.
func newCachePlanners(t *testing.T) (*Planner, *Planner) {
	t.Helper()
	p := newSalesPlanner(t)
	p.ShareSummaries(true)
	cold := NewPlanner(p.Eng)
	cold.TempPrefix = "cold"
	return p, cold
}

// exactResults asserts byte-identical results: same kinds, same raw values,
// no float tolerance — the incremental merge must reproduce the cold fold's
// bits, not approximate them.
func exactResults(t *testing.T, label string, got, want *engine.Result) {
	t.Helper()
	if len(got.Rows) != len(want.Rows) {
		t.Fatalf("%s: row counts differ: %d vs %d\n%v\nvs\n%v", label, len(got.Rows), len(want.Rows), got.Rows, want.Rows)
	}
	for i := range got.Rows {
		if len(got.Rows[i]) != len(want.Rows[i]) {
			t.Fatalf("%s: row %d widths differ: %v vs %v", label, i, got.Rows[i], want.Rows[i])
		}
		for j := range got.Rows[i] {
			a, b := got.Rows[i][j], want.Rows[i][j]
			if a.Kind() != b.Kind() || a.String() != b.String() {
				t.Fatalf("%s: row %d col %d: %v (%v) vs %v (%v)", label, i, j, a, a.Kind(), b, b.Kind())
			}
		}
	}
}

// TestShareSummariesStalenessRegression is the regression for the original
// bug this cache replaces: with sharing on, a query after an INSERT used to
// silently serve the pre-insert summary. It must now reflect the new rows.
func TestShareSummariesStalenessRegression(t *testing.T) {
	p, cold := newCachePlanners(t)
	r1 := runQuery(t, p, vpctSales, DefaultOptions())
	mustExec(t, p.Eng, "INSERT INTO sales VALUES (11,'WA','Seattle',50),(12,'WA','Spokane',25),(13,'CA','San Francisco',17)")
	r2 := runQuery(t, p, vpctSales, DefaultOptions())
	want := runQuery(t, cold, vpctSales, DefaultOptions())
	exactResults(t, "post-insert", r2, want)
	if len(r2.Rows) <= len(r1.Rows) {
		t.Fatalf("stale summary: %d rows before insert, %d after — the WA groups are missing", len(r1.Rows), len(r2.Rows))
	}
	p.FlushSummaries()
	for _, n := range p.Eng.Catalog().Names() {
		if strings.HasPrefix(n, "pct_") {
			t.Errorf("flush left cache table %s behind", n)
		}
	}
}

// TestCacheDeltaApplied pins the mechanism, not just the answer: the
// post-insert query must be served by incremental maintenance (delta
// rollup + merge), not a silent full rebuild.
func TestCacheDeltaApplied(t *testing.T) {
	p, cold := newCachePlanners(t)
	runQuery(t, p, vpctSales, DefaultOptions())
	s0 := p.CacheStats()
	if s0.Misses == 0 {
		t.Fatalf("first query registered no cache entries: %+v", s0)
	}
	mustExec(t, p.Eng, "INSERT INTO sales VALUES (11,'WA','Seattle',50)")
	r := runQuery(t, p, vpctSales, DefaultOptions())
	exactResults(t, "delta", r, runQuery(t, cold, vpctSales, DefaultOptions()))
	s1 := p.CacheStats()
	if s1.DeltaApplied < s0.DeltaApplied+2 { // Fk and Fj both refresh incrementally
		t.Errorf("DeltaApplied = %d → %d, want both Fk and Fj maintained incrementally", s0.DeltaApplied, s1.DeltaApplied)
	}
	if s1.Hits <= s0.Hits {
		t.Errorf("Hits = %d → %d, want the post-insert query counted as a (delta) hit", s0.Hits, s1.Hits)
	}
	// A third query with no DML in between is a clean hit: no delta work.
	runQuery(t, p, vpctSales, DefaultOptions())
	s2 := p.CacheStats()
	if s2.DeltaApplied != s1.DeltaApplied {
		t.Errorf("clean hit ran delta maintenance: %d → %d", s1.DeltaApplied, s2.DeltaApplied)
	}
	if s2.Hits <= s1.Hits {
		t.Errorf("Hits = %d → %d, want a clean hit", s1.Hits, s2.Hits)
	}
}

// TestCacheDeltaChain interleaves several inserts and queries; every answer
// must be byte-identical to the cold path, including inserts that extend
// existing groups, create new ones, and arrive back to back between queries.
func TestCacheDeltaChain(t *testing.T) {
	p, cold := newCachePlanners(t)
	inserts := []string{
		"INSERT INTO sales VALUES (11,'CA','San Francisco',8)",           // existing group grows
		"INSERT INTO sales VALUES (12,'WA','Seattle',50)",                // new state and city
		"INSERT INTO sales VALUES (13,'TX','Austin',21),(14,'TX','Austin',9)", // new city, two rows
		"INSERT INTO sales VALUES (15,'WA','Seattle',1)",
	}
	runQuery(t, p, vpctSales, DefaultOptions())
	for i, ins := range inserts {
		mustExec(t, p.Eng, ins)
		if i == 2 { // two pending deltas folded by one refresh
			mustExec(t, p.Eng, "INSERT INTO sales VALUES (99,'CA','Los Angeles',4)")
		}
		got := runQuery(t, p, vpctSales, DefaultOptions())
		want := runQuery(t, cold, vpctSales, DefaultOptions())
		exactResults(t, ins, got, want)
	}
}

// TestCacheUpdateAndDeleteInvalidate: mutations the delta path cannot cover
// must invalidate the entry and rebuild — never serve the old summary.
func TestCacheUpdateAndDeleteInvalidate(t *testing.T) {
	for _, dml := range []string{
		"UPDATE sales SET salesAmt = 999 WHERE RID = 1",
		"DELETE FROM sales WHERE state = 'TX'",
	} {
		p, cold := newCachePlanners(t)
		runQuery(t, p, vpctSales, DefaultOptions())
		s0 := p.CacheStats()
		mustExec(t, p.Eng, dml)
		got := runQuery(t, p, vpctSales, DefaultOptions())
		exactResults(t, dml, got, runQuery(t, cold, vpctSales, DefaultOptions()))
		s1 := p.CacheStats()
		if s1.Invalidations <= s0.Invalidations {
			t.Errorf("%s: Invalidations = %d → %d, want the entries invalidated", dml, s0.Invalidations, s1.Invalidations)
		}
	}
}

// TestCacheNonDistributiveRebuilds: a summary carrying avg cannot be
// merged across row partitions; DML must invalidate it, and the rebuilt
// answer must match cold.
func TestCacheNonDistributiveRebuilds(t *testing.T) {
	const q = "SELECT state, city, Vpct(salesAmt BY city), avg(salesAmt) FROM sales GROUP BY state, city"
	p, cold := newCachePlanners(t)
	runQuery(t, p, q, DefaultOptions())
	s0 := p.CacheStats()
	mustExec(t, p.Eng, "INSERT INTO sales VALUES (11,'CA','San Francisco',8)")
	got := runQuery(t, p, q, DefaultOptions())
	exactResults(t, "avg rebuild", got, runQuery(t, cold, q, DefaultOptions()))
	s1 := p.CacheStats()
	if s1.DeltaApplied > s0.DeltaApplied+1 {
		// Fj (pure sum) may still delta; the avg-carrying Fk must not.
		t.Errorf("DeltaApplied = %d → %d: the non-distributive Fk was merged incrementally", s0.DeltaApplied, s1.DeltaApplied)
	}
	if s1.Invalidations <= s0.Invalidations {
		t.Errorf("Invalidations = %d → %d, want the avg Fk invalidated on insert", s0.Invalidations, s1.Invalidations)
	}
}

// TestCacheDistributiveExtremesDelta: min/max are distributive and must
// ride the delta path, including a delta that moves the max.
func TestCacheDistributiveExtremesDelta(t *testing.T) {
	const q = "SELECT state, city, Vpct(salesAmt BY city), min(salesAmt), max(salesAmt) FROM sales GROUP BY state, city"
	p, cold := newCachePlanners(t)
	runQuery(t, p, q, DefaultOptions())
	s0 := p.CacheStats()
	mustExec(t, p.Eng, "INSERT INTO sales VALUES (11,'CA','San Francisco',500),(12,'CA','San Francisco',1)")
	got := runQuery(t, p, q, DefaultOptions())
	exactResults(t, "min/max delta", got, runQuery(t, cold, q, DefaultOptions()))
	if s1 := p.CacheStats(); s1.DeltaApplied <= s0.DeltaApplied {
		t.Errorf("DeltaApplied = %d → %d, want min/max maintained incrementally", s0.DeltaApplied, s1.DeltaApplied)
	}
}

// TestCacheFjRollupFromCachedFk: a second query whose coarse totals differ
// but whose fine aggregate matches must roll its Fj up from the cached Fk
// (the paper's Fj-from-Fk derivation, across statements) instead of
// rescanning F.
func TestCacheFjRollupFromCachedFk(t *testing.T) {
	const q2 = "SELECT state, city, Vpct(salesAmt BY state) FROM sales GROUP BY state, city"
	p, cold := newCachePlanners(t)
	runQuery(t, p, vpctSales, DefaultOptions())
	s0 := p.CacheStats()
	plan, err := p.PlanSQL(q2, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range plan.Steps {
		if strings.Contains(s.Purpose, "fine aggregate Fk") {
			t.Errorf("q2 rebuilt Fk instead of reusing the cached one: %q", s.Purpose)
		}
	}
	got, err := p.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	exactResults(t, "fj rollup", got, runQuery(t, cold, q2, DefaultOptions()))
	if s1 := p.CacheStats(); s1.FjRollups <= s0.FjRollups {
		t.Errorf("FjRollups = %d → %d, want the new Fj derived from the cached Fk", s0.FjRollups, s1.FjRollups)
	}
}

// TestCachePlanWithoutExecuteDoesNotPoison: an EXPLAINed (planned, cleaned
// up, never executed) query must not leave a phantom entry a later plan
// would trust — the later query has to build and answer correctly.
func TestCachePlanWithoutExecuteDoesNotPoison(t *testing.T) {
	p, cold := newCachePlanners(t)
	plan, err := p.PlanSQL(vpctSales, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	p.CleanupPlan(plan) // the EXPLAIN path: never executed
	got := runQuery(t, p, vpctSales, DefaultOptions())
	exactResults(t, "after abandoned plan", got, runQuery(t, cold, vpctSales, DefaultOptions()))
	p.FlushSummaries()
	for _, n := range p.Eng.Catalog().Names() {
		if strings.HasPrefix(n, "pct_") {
			t.Errorf("abandoned plan left table %s behind", n)
		}
	}
}

// TestCacheDirectAppendInvalidates: rows appended behind the engine's back
// (no DML hook, epoch still ticks) must not be delta-merged — the epoch
// mismatch forces a rebuild and the answer stays correct.
func TestCacheDirectAppendInvalidates(t *testing.T) {
	p, cold := newCachePlanners(t)
	runQuery(t, p, vpctSales, DefaultOptions())
	tab, err := p.Eng.Catalog().Get("sales")
	if err != nil {
		t.Fatal(err)
	}
	row := []value.Value{value.NewInt(11), value.NewString("WA"), value.NewString("Seattle"), value.NewInt(50)}
	if _, err := tab.AppendRow(row); err != nil {
		t.Fatal(err)
	}
	got := runQuery(t, p, vpctSales, DefaultOptions())
	exactResults(t, "direct append", got, runQuery(t, cold, vpctSales, DefaultOptions()))
}

// TestCacheKeyIncludesColumnLayout is the regression for the key-collision
// bug the 5-part key fixes: two queries can render the identical Fk select
// list yet assign different column names — here "sum(salesAmt)" is stored
// as x1 (an extra aggregate alongside Vpct(RID)) in the first query and as
// m2 (a second Vpct measure) in the second. Under the old 4-part key the
// second plan was handed the first plan's cached table and failed to
// resolve its columns; the layouts must key separate entries.
func TestCacheKeyIncludesColumnLayout(t *testing.T) {
	p, cold := newCachePlanners(t)
	const qA = "SELECT state, city, Vpct(RID BY city), sum(salesAmt) FROM sales GROUP BY state, city"
	const qB = "SELECT state, city, Vpct(RID BY city), Vpct(salesAmt BY city) FROM sales GROUP BY state, city"
	runQuery(t, p, qA, DefaultOptions())
	got := runQuery(t, p, qB, DefaultOptions())
	exactResults(t, "layout collision", got, runQuery(t, cold, qB, DefaultOptions()))
	// And in the opposite order, against fresh entries.
	p.FlushSummaries()
	runQuery(t, p, qB, DefaultOptions())
	got = runQuery(t, p, qA, DefaultOptions())
	exactResults(t, "layout collision (reversed)", got, runQuery(t, cold, qA, DefaultOptions()))
	p.FlushSummaries()
}
