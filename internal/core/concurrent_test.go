package core

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/leakcheck"
)

// TestConcurrentPercentageQueries exercises the paper's future-work
// scenario: users concurrently submitting percentage queries against the
// same fact table. Each worker plans and executes its own mix of vertical,
// horizontal and Hagg queries — several with Parallelism > 1, so each
// submitter additionally fans out partitioned-aggregation goroutines inside
// its statements (the -race CI shard runs exactly this test); temp-table
// naming, catalog access, and per-statement worker pools must not collide,
// and every worker must see correct results.
func TestConcurrentPercentageQueries(t *testing.T) {
	defer leakcheck.Check(t)()
	p := newSalesPlanner(t)
	par := func(o Options, workers int) Options {
		o.Parallelism = workers
		return o
	}
	queries := []struct {
		sql  string
		opts Options
		rows int
	}{
		{vpctSales, DefaultOptions(), 4},
		{vpctSales, Options{Vpct: VpctOptions{UseUpdate: true}}, 4},
		{vpctSales, par(DefaultOptions(), 4), 4},
		{hpctDaily, DefaultOptions(), 2},
		{hpctDaily, Options{Hpct: HpctOptions{FromFV: true}}, 2},
		{hpctDaily, par(Options{Hpct: HpctOptions{HashPivot: true}}, 3), 2},
		{"SELECT store, sum(salesAmt BY dweek) FROM daily GROUP BY store",
			Options{Hagg: HaggOptions{Method: HaggSPJ}}, 2},
		{"SELECT store, sum(salesAmt BY dweek) FROM daily GROUP BY store",
			par(Options{Hagg: HaggOptions{Method: HaggCASE}}, 8), 2},
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				q := queries[(w+i)%len(queries)]
				plan, err := p.PlanSQL(q.sql, q.opts)
				if err != nil {
					errs <- fmt.Errorf("worker %d: %w", w, err)
					return
				}
				res, err := p.Execute(plan)
				if err != nil {
					errs <- fmt.Errorf("worker %d: %w", w, err)
					return
				}
				if len(res.Rows) != q.rows {
					errs <- fmt.Errorf("worker %d: %s: %d rows, want %d", w, q.sql, len(res.Rows), q.rows)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// No temporary tables left behind.
	for _, name := range p.Eng.Catalog().Names() {
		if name != "sales" && name != "daily" {
			t.Errorf("leftover temporary %q", name)
		}
	}
}
