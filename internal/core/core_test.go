package core

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/storage"
	"repro/internal/value"
)

// newSalesPlanner loads the paper's Table 1 sales fact table plus a
// store/day table for horizontal examples.
func newSalesPlanner(t *testing.T) *Planner {
	t.Helper()
	eng := engine.New(storage.NewCatalog())
	mustExec(t, eng, `CREATE TABLE sales (RID INTEGER, state VARCHAR, city VARCHAR, salesAmt INTEGER)`)
	mustExec(t, eng, `INSERT INTO sales VALUES
		(1, 'CA', 'San Francisco', 13),
		(2, 'CA', 'San Francisco', 3),
		(3, 'CA', 'San Francisco', 67),
		(4, 'CA', 'Los Angeles', 23),
		(5, 'TX', 'Houston', 5),
		(6, 'TX', 'Houston', 35),
		(7, 'TX', 'Houston', 10),
		(8, 'TX', 'Houston', 14),
		(9, 'TX', 'Dallas', 53),
		(10, 'TX', 'Dallas', 32)`)
	mustExec(t, eng, `CREATE TABLE daily (store INTEGER, dweek VARCHAR, salesAmt INTEGER)`)
	// Store 2 trades all seven days; store 4 is closed on Monday (a missing
	// combination, like the paper's Table 3 example).
	mustExec(t, eng, `INSERT INTO daily VALUES
		(2,'Mo',7),(2,'Tu',6),(2,'We',8),(2,'Th',9),(2,'Fr',16),(2,'Sa',24),(2,'Su',30),
		(4,'Tu',9),(4,'We',9),(4,'Th',9),(4,'Fr',18),(4,'Sa',20),(4,'Su',35)`)
	return NewPlanner(eng)
}

func mustExec(t *testing.T, e *engine.Engine, sql string) *engine.Result {
	t.Helper()
	r, err := e.ExecSQL(sql)
	if err != nil {
		t.Fatalf("ExecSQL(%s): %v", sql, err)
	}
	return r
}

// runQuery plans and executes a query under opts.
func runQuery(t *testing.T, p *Planner, sql string, opts Options) *engine.Result {
	t.Helper()
	plan, err := p.PlanSQL(sql, opts)
	if err != nil {
		t.Fatalf("PlanSQL(%s): %v", sql, err)
	}
	res, err := p.Execute(plan)
	if err != nil {
		t.Fatalf("Execute(%s):\n%s\n%v", sql, plan.SQL(), err)
	}
	return res
}

// sameResults compares two results cell by cell with a float tolerance.
func sameResults(t *testing.T, label string, a, b *engine.Result) {
	t.Helper()
	if len(a.Rows) != len(b.Rows) {
		t.Fatalf("%s: row counts differ: %d vs %d\n%v\nvs\n%v", label, len(a.Rows), len(b.Rows), a.Rows, b.Rows)
	}
	for i := range a.Rows {
		if len(a.Rows[i]) != len(b.Rows[i]) {
			t.Fatalf("%s: row %d widths differ: %v vs %v", label, i, a.Rows[i], b.Rows[i])
		}
		for j := range a.Rows[i] {
			va, vb := a.Rows[i][j], b.Rows[i][j]
			if va.IsNull() != vb.IsNull() {
				t.Fatalf("%s: row %d col %d: %v vs %v", label, i, j, va, vb)
			}
			if va.IsNull() {
				continue
			}
			fa, aok := va.AsFloat()
			fb, bok := vb.AsFloat()
			if aok && bok {
				if math.Abs(fa-fb) > 1e-9 {
					t.Fatalf("%s: row %d col %d: %v vs %v", label, i, j, va, vb)
				}
				continue
			}
			if value.Compare(va, vb) != 0 {
				t.Fatalf("%s: row %d col %d: %v vs %v", label, i, j, va, vb)
			}
		}
	}
}

const vpctSales = "SELECT state, city, Vpct(salesAmt BY city) FROM sales GROUP BY state, city"

func TestVpctPaperExample(t *testing.T) {
	p := newSalesPlanner(t)
	res := runQuery(t, p, vpctSales, DefaultOptions())
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// Table 2 of the paper (values before rounding to whole percent):
	want := []struct {
		state, city string
		pct         float64
	}{
		{"CA", "Los Angeles", 23.0 / 106},
		{"CA", "San Francisco", 83.0 / 106},
		{"TX", "Dallas", 85.0 / 149},
		{"TX", "Houston", 64.0 / 149},
	}
	for i, w := range want {
		r := res.Rows[i]
		if r[0].Str() != w.state || r[1].Str() != w.city {
			t.Errorf("row %d keys = %v", i, r)
		}
		if math.Abs(r[2].Float()-w.pct) > 1e-9 {
			t.Errorf("row %d pct = %v, want %v", i, r[2], w.pct)
		}
	}
	// The column is named after the measure, as in the paper's Table 2.
	if res.Columns[2] != "salesAmt" {
		t.Errorf("pct column name = %q", res.Columns[2])
	}
}

func TestVpctGroupSumsToOne(t *testing.T) {
	p := newSalesPlanner(t)
	res := runQuery(t, p, vpctSales, DefaultOptions())
	sums := map[string]float64{}
	for _, r := range res.Rows {
		sums[r[0].Str()] += r[2].Float()
	}
	for state, s := range sums {
		if math.Abs(s-1) > 1e-9 {
			t.Errorf("state %s percentages sum to %v", state, s)
		}
	}
}

func TestVpctAllStrategiesAgree(t *testing.T) {
	queries := []string{
		vpctSales,
		"SELECT state, Vpct(salesAmt) FROM sales GROUP BY state", // j = 0: global totals
		"SELECT state, city, Vpct(salesAmt BY city), sum(salesAmt), count(*) FROM sales GROUP BY state, city",
		"SELECT state, city, Vpct(salesAmt BY city), Vpct(salesAmt) FROM sales GROUP BY state, city",
	}
	for _, q := range queries {
		var base *engine.Result
		for _, fjFromF := range []bool{false, true} {
			for _, useUpdate := range []bool{false, true} {
				for _, idx := range []bool{false, true} {
					p := newSalesPlanner(t)
					opts := Options{Vpct: VpctOptions{FjFromF: fjFromF, UseUpdate: useUpdate, SubkeyIndexes: idx}}
					res := runQuery(t, p, q, opts)
					if base == nil {
						base = res
						continue
					}
					label := q
					sameResults(t, label, base, res)
				}
			}
		}
	}
}

func TestVpctGlobalTotals(t *testing.T) {
	p := newSalesPlanner(t)
	res := runQuery(t, p, "SELECT state, Vpct(salesAmt) FROM sales GROUP BY state", DefaultOptions())
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if math.Abs(res.Rows[0][1].Float()-106.0/255) > 1e-9 {
		t.Errorf("CA share = %v", res.Rows[0][1])
	}
	if math.Abs(res.Rows[0][1].Float()+res.Rows[1][1].Float()-1) > 1e-9 {
		t.Error("global shares must sum to 1")
	}
}

func TestVpctDivisionByZero(t *testing.T) {
	p := newSalesPlanner(t)
	mustExec(t, p.Eng, "INSERT INTO sales VALUES (11, 'NV', 'Reno', 5), (12, 'NV', 'Elko', -5)")
	res := runQuery(t, p, vpctSales, DefaultOptions())
	nulls := 0
	for _, r := range res.Rows {
		if r[0].Str() == "NV" {
			if !r[2].IsNull() {
				t.Errorf("NV pct = %v, want NULL (state total is zero)", r[2])
			}
			nulls++
		}
	}
	if nulls != 2 {
		t.Errorf("NV rows = %d", nulls)
	}
}

func TestVpctNullMeasureSkipped(t *testing.T) {
	// Vpct preserves sum() semantics: NULL measures are skipped.
	p := newSalesPlanner(t)
	mustExec(t, p.Eng, "INSERT INTO sales VALUES (13, 'CA', 'San Francisco', NULL)")
	res := runQuery(t, p, vpctSales, DefaultOptions())
	for _, r := range res.Rows {
		if r[0].Str() == "CA" && r[1].Str() == "San Francisco" {
			if math.Abs(r[2].Float()-83.0/106) > 1e-9 {
				t.Errorf("SF pct with NULL row = %v", r[2])
			}
		}
	}
}

func TestVpctWithWhere(t *testing.T) {
	p := newSalesPlanner(t)
	res := runQuery(t, p, "SELECT state, city, Vpct(salesAmt BY city) FROM sales WHERE state = 'TX' GROUP BY state, city", DefaultOptions())
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if math.Abs(res.Rows[0][2].Float()-85.0/149) > 1e-9 {
		t.Errorf("Dallas pct = %v", res.Rows[0][2])
	}
}

func TestVpctMissingRowsPost(t *testing.T) {
	p := newSalesPlanner(t)
	for _, useUpdate := range []bool{false, true} {
		opts := Options{Vpct: VpctOptions{MissingRows: MissingPost, UseUpdate: useUpdate, SubkeyIndexes: true}}
		res := runQuery(t, p, "SELECT store, dweek, Vpct(salesAmt BY dweek) FROM daily GROUP BY store, dweek", opts)
		// 2 stores × 7 days = 14 rows, including the missing (4, Mo) at 0%.
		if len(res.Rows) != 14 {
			t.Fatalf("useUpdate=%v rows = %d: %v", useUpdate, len(res.Rows), res.Rows)
		}
		found := false
		for _, r := range res.Rows {
			if r[0].Int() == 4 && r[1].Str() == "Mo" {
				found = true
				if r[2].IsNull() || r[2].Float() != 0 { // floateq:ok exact expected value
					t.Errorf("missing combination pct = %v, want 0", r[2])
				}
			}
		}
		if !found {
			t.Error("zero-filled row for (4, Mo) not present")
		}
	}
}

func TestVpctMissingRowsPre(t *testing.T) {
	p := newSalesPlanner(t)
	opts := Options{Vpct: VpctOptions{MissingRows: MissingPre, SubkeyIndexes: true}}
	res := runQuery(t, p, "SELECT store, dweek, Vpct(salesAmt BY dweek) FROM daily GROUP BY store, dweek", opts)
	if len(res.Rows) != 14 {
		t.Fatalf("rows = %d: %v", len(res.Rows), res.Rows)
	}
	// Pre-processing mutates F: the zero-measure row persists.
	cnt := mustExec(t, p.Eng, "SELECT count(*) FROM daily")
	if cnt.Rows[0][0].Int() != 14 {
		t.Errorf("daily rows after pre-processing = %v", cnt.Rows[0][0])
	}
}

const hpctDaily = "SELECT store, Hpct(salesAmt BY dweek) FROM daily GROUP BY store"

func TestHpctPaperShape(t *testing.T) {
	p := newSalesPlanner(t)
	res := runQuery(t, p, hpctDaily, DefaultOptions())
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// Columns: store + 7 day columns (ordered by value: Fr Mo Sa Su Th Tu We).
	if len(res.Columns) != 8 {
		t.Fatalf("columns = %v", res.Columns)
	}
	// Each row's percentages sum to 1.
	for _, r := range res.Rows {
		s := 0.0
		for _, v := range r[1:] {
			if !v.IsNull() {
				s += v.Float()
			}
		}
		if math.Abs(s-1) > 1e-9 {
			t.Errorf("store %v percentages sum to %v", r[0], s)
		}
	}
	// Store 4's Monday column is 0% — "observe the 0% for store 4 on
	// Monday" (the paper's Table 3).
	moIdx := -1
	for i, c := range res.Columns {
		if c == "Mo" {
			moIdx = i
		}
	}
	if moIdx < 0 {
		t.Fatalf("no Mo column in %v", res.Columns)
	}
	for _, r := range res.Rows {
		if r[0].Int() == 4 && r[moIdx].Float() != 0 { // floateq:ok exact expected value
			t.Errorf("store 4 Monday = %v, want 0", r[moIdx])
		}
	}
}

func TestHpctStrategiesAgree(t *testing.T) {
	queries := []string{
		hpctDaily,
		"SELECT store, Hpct(salesAmt BY dweek), sum(salesAmt) FROM daily GROUP BY store",
		"SELECT Hpct(salesAmt BY dweek) FROM daily", // no GROUP BY: one row
	}
	for _, q := range queries {
		var base *engine.Result
		for _, opt := range []HpctOptions{
			{},
			{FromFV: true, Vpct: VpctOptions{SubkeyIndexes: true}},
			{FromFV: true, Vpct: VpctOptions{FjFromF: true}},
		} {
			p := newSalesPlanner(t)
			res := runQuery(t, p, q, Options{Hpct: opt})
			if base == nil {
				base = res
				continue
			}
			sameResults(t, q, base, res)
		}
	}
}

func TestHpctHashPivotAgrees(t *testing.T) {
	p := newSalesPlanner(t)
	base := runQuery(t, p, hpctDaily, DefaultOptions())
	p2 := newSalesPlanner(t)
	piv := runQuery(t, p2, hpctDaily, Options{Hpct: HpctOptions{HashPivot: true}})
	sameResults(t, "hash pivot", base, piv)
}

func TestHpctWithTotalColumn(t *testing.T) {
	p := newSalesPlanner(t)
	res := runQuery(t, p, "SELECT store, Hpct(salesAmt BY dweek), sum(salesAmt) FROM daily GROUP BY store", DefaultOptions())
	for _, r := range res.Rows {
		total := r[len(r)-1]
		switch r[0].Int() {
		case 2:
			if total.Int() != 100 {
				t.Errorf("store 2 total = %v", total)
			}
		case 4:
			if total.Int() != 100 {
				t.Errorf("store 4 total = %v", total)
			}
		}
	}
}

func TestHpctZeroTotalGroup(t *testing.T) {
	p := newSalesPlanner(t)
	mustExec(t, p.Eng, "INSERT INTO daily VALUES (9, 'Mo', 5), (9, 'Tu', -5)")
	res := runQuery(t, p, hpctDaily, DefaultOptions())
	for _, r := range res.Rows {
		if r[0].Int() == 9 {
			for _, v := range r[1:] {
				if !v.IsNull() {
					t.Errorf("zero-total group value = %v, want NULL", v)
				}
			}
		}
	}
}

func TestHpctPartitioning(t *testing.T) {
	p := newSalesPlanner(t)
	p.MaxColumns = 4 // store + 3 value columns per partition
	plan, err := p.PlanSQL(hpctDaily, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.ResultTables) < 2 {
		t.Fatalf("expected partitions, got %v", plan.ResultTables)
	}
	res, err := p.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	p2 := newSalesPlanner(t)
	base := runQuery(t, p2, hpctDaily, DefaultOptions())
	sameResults(t, "partitioned", base, res)
}

func TestHaggFourStrategiesAgree(t *testing.T) {
	queries := []string{
		"SELECT store, sum(salesAmt BY dweek) FROM daily GROUP BY store",
		"SELECT store, count(salesAmt BY dweek) FROM daily GROUP BY store",
		"SELECT store, max(salesAmt BY dweek), sum(salesAmt) FROM daily GROUP BY store",
		"SELECT store, min(salesAmt BY dweek) FROM daily GROUP BY store",
		"SELECT store, avg(salesAmt BY dweek) FROM daily GROUP BY store",
		"SELECT sum(salesAmt BY dweek) FROM daily", // j = 0
	}
	for _, q := range queries {
		var base *engine.Result
		for _, opt := range []HaggOptions{
			{Method: HaggCASE},
			{Method: HaggCASE, FromFV: true},
			{Method: HaggSPJ},
			{Method: HaggSPJ, FromFV: true},
		} {
			p := newSalesPlanner(t)
			res := runQuery(t, p, q, Options{Hagg: opt})
			if base == nil {
				base = res
				continue
			}
			sameResults(t, q, base, res)
		}
	}
}

func TestHaggMissingCombinationIsNull(t *testing.T) {
	p := newSalesPlanner(t)
	res := runQuery(t, p, "SELECT store, sum(salesAmt BY dweek) FROM daily GROUP BY store", DefaultOptions())
	moIdx := -1
	for i, c := range res.Columns {
		if c == "Mo" {
			moIdx = i
		}
	}
	for _, r := range res.Rows {
		if r[0].Int() == 4 && !r[moIdx].IsNull() {
			t.Errorf("store 4 Monday sum = %v, want NULL", r[moIdx])
		}
	}
}

func TestHaggDefaultZero(t *testing.T) {
	// The companion paper's binary-coding idiom: max(1 BY d DEFAULT 0).
	p := newSalesPlanner(t)
	res := runQuery(t, p, "SELECT store, max(1 BY dweek DEFAULT 0) FROM daily GROUP BY store", DefaultOptions())
	for _, r := range res.Rows {
		for i, v := range r[1:] {
			if v.IsNull() {
				t.Errorf("store %v col %d NULL despite DEFAULT 0", r[0], i)
			}
			if n := v.Int(); n != 0 && n != 1 {
				t.Errorf("binary flag = %v", v)
			}
		}
		if r[0].Int() == 4 {
			// Monday flag must be exactly 0.
			moIdx := -1
			for i, c := range res.Columns {
				if c == "Mo" {
					moIdx = i
				}
			}
			if r[moIdx].Int() != 0 {
				t.Errorf("store 4 Monday flag = %v", r[moIdx])
			}
		}
	}
}

func TestHaggCountDistinctDirect(t *testing.T) {
	p := newSalesPlanner(t)
	res := runQuery(t, p, "SELECT store, count(DISTINCT salesAmt BY dweek) FROM daily GROUP BY store", DefaultOptions())
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	// And the from-FV strategy must refuse.
	p2 := newSalesPlanner(t)
	_, err := p2.PlanSQL("SELECT store, count(DISTINCT salesAmt BY dweek) FROM daily GROUP BY store",
		Options{Hagg: HaggOptions{Method: HaggCASE, FromFV: true}})
	if err == nil || !strings.Contains(err.Error(), "DISTINCT") {
		t.Errorf("err = %v", err)
	}
}

func TestHaggHashPivotAgrees(t *testing.T) {
	for _, q := range []string{
		"SELECT store, sum(salesAmt BY dweek) FROM daily GROUP BY store",
		"SELECT store, max(1 BY dweek DEFAULT 0) FROM daily GROUP BY store",
	} {
		p := newSalesPlanner(t)
		base := runQuery(t, p, q, DefaultOptions())
		p2 := newSalesPlanner(t)
		piv := runQuery(t, p2, q, Options{Hagg: HaggOptions{Method: HaggCASE, HashPivot: true}})
		sameResults(t, q, base, piv)
	}
}

func TestHaggMultipleTerms(t *testing.T) {
	// The companion paper's flagship query shape: several horizontal terms
	// plus a plain total.
	p := newSalesPlanner(t)
	q := "SELECT store, sum(salesAmt BY dweek), count(salesAmt BY dweek), sum(salesAmt) FROM daily GROUP BY store"
	res := runQuery(t, p, q, DefaultOptions())
	if len(res.Columns) != 1+7+7+1 {
		t.Fatalf("columns = %v", res.Columns)
	}
	p2 := newSalesPlanner(t)
	spj := runQuery(t, p2, q, Options{Hagg: HaggOptions{Method: HaggSPJ}})
	sameResults(t, q, res, spj)
}

func TestOLAPEquivalentMatchesVpct(t *testing.T) {
	p := newSalesPlanner(t)
	base := runQuery(t, p, vpctSales, DefaultOptions())
	sql, err := p.PlanSQL(vpctSales, DefaultOptions())
	_ = sql
	olap, err2 := func() (string, error) {
		stmt, err := parseSelect(vpctSales)
		if err != nil {
			return "", err
		}
		return p.OLAPEquivalent(stmt)
	}()
	if err != nil || err2 != nil {
		t.Fatal(err, err2)
	}
	res := mustExec(t, p.Eng, olap)
	sameResults(t, "olap", base, res)
}

func TestOLAPEquivalentMatchesHpctNumbers(t *testing.T) {
	p := newSalesPlanner(t)
	stmt, err := parseSelect(hpctDaily)
	if err != nil {
		t.Fatal(err)
	}
	olap, err := p.OLAPEquivalent(stmt)
	if err != nil {
		t.Fatal(err)
	}
	res := mustExec(t, p.Eng, olap)
	// Vertical form: 13 rows (store 4 has no Monday row).
	if len(res.Rows) != 13 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	// Row sums per store reach 1.
	sums := map[int64]float64{}
	for _, r := range res.Rows {
		sums[r[0].Int()] += r[2].Float()
	}
	for store, s := range sums {
		if math.Abs(s-1) > 1e-9 {
			t.Errorf("store %d OLAP percentages sum to %v", store, s)
		}
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		sql  string
		want QueryClass
	}{
		{"SELECT a, sum(b) FROM t GROUP BY a", ClassStandard},
		{vpctSales, ClassVertical},
		{hpctDaily, ClassHorizontalPct},
		{"SELECT store, sum(salesAmt BY dweek) FROM daily GROUP BY store", ClassHorizontalAgg},
	}
	for _, c := range cases {
		stmt, err := parseSelect(c.sql)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Classify(stmt)
		if err != nil || got != c.want {
			t.Errorf("Classify(%s) = %v, %v; want %v", c.sql, got, err, c.want)
		}
	}
	// Mixing is rejected.
	stmt, _ := parseSelect("SELECT state, Vpct(a BY city), Hpct(a BY city) FROM t GROUP BY state, city")
	if _, err := Classify(stmt); err == nil {
		t.Error("mixed Vpct/Hpct must be rejected")
	}
	if ClassVertical.String() == "" || ClassStandard.String() == "" {
		t.Error("class names empty")
	}
}

func TestValidationErrors(t *testing.T) {
	p := newSalesPlanner(t)
	cases := []struct {
		sql, frag string
	}{
		{"SELECT Vpct(salesAmt BY city) FROM sales", "GROUP BY"},
		{"SELECT state, Vpct(salesAmt BY city) FROM sales GROUP BY state", "GROUP BY columns"},
		{"SELECT state, city, Vpct(salesAmt BY city, state) FROM sales GROUP BY state, city", "proper subset"},
		{"SELECT store, Hpct(salesAmt BY store) FROM daily GROUP BY store", "disjoint"},
		{"SELECT store, Hpct(salesAmt BY bogus) FROM daily GROUP BY store", "not a column"},
		{"SELECT store, sum(salesAmt BY dweek, dweek) FROM daily GROUP BY store", "duplicate BY"},
		{"SELECT bogus, Vpct(salesAmt BY city) FROM sales GROUP BY state, city", "GROUP BY"},
		{"SELECT state, city, Vpct(bogus BY city) FROM sales GROUP BY state, city", "unknown column"},
		{"SELECT state, city, Vpct(salesAmt BY city) + 1 FROM sales GROUP BY state, city", "top-level"},
		{"SELECT state, city, Vpct(salesAmt BY city) FROM sales GROUP BY state, city HAVING sum(salesAmt) > 0", "HAVING"},
		{"SELECT DISTINCT state, city, Vpct(salesAmt BY city) FROM sales GROUP BY state, city", "DISTINCT"},
		{"SELECT s.state, Vpct(s.salesAmt BY city) FROM sales s, daily d GROUP BY state, city", "single table"},
	}
	for _, c := range cases {
		_, err := p.PlanSQL(c.sql, DefaultOptions())
		if err == nil {
			t.Errorf("PlanSQL(%s): expected error containing %q", c.sql, c.frag)
			continue
		}
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("PlanSQL(%s): error %q lacks %q", c.sql, err, c.frag)
		}
	}
}

func TestPlanSQLRendering(t *testing.T) {
	p := newSalesPlanner(t)
	plan, err := p.PlanSQL(vpctSales, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	text := plan.SQL()
	for _, frag := range []string{"CREATE TABLE", "GROUP BY", "CASE WHEN", "INSERT INTO", "CREATE INDEX"} {
		if !strings.Contains(text, frag) {
			t.Errorf("plan SQL lacks %q:\n%s", frag, text)
		}
	}
	if plan.Class != ClassVertical {
		t.Errorf("class = %v", plan.Class)
	}
	// The UPDATE variant emits an UPDATE, not a third INSERT.
	plan2, err := p.PlanSQL(vpctSales, Options{Vpct: VpctOptions{UseUpdate: true}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(plan2.SQL(), "UPDATE") {
		t.Errorf("update-variant plan lacks UPDATE:\n%s", plan2.SQL())
	}
}

func TestExecuteCleansUpTemporaries(t *testing.T) {
	p := newSalesPlanner(t)
	before := len(p.Eng.Catalog().Names())
	plan, err := p.PlanSQL(vpctSales, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Execute(plan); err != nil {
		t.Fatal(err)
	}
	after := len(p.Eng.Catalog().Names())
	if after != before {
		t.Errorf("temporary tables leaked: %v", p.Eng.Catalog().Names())
	}
}

func TestStandardQueryPassThrough(t *testing.T) {
	p := newSalesPlanner(t)
	res := runQuery(t, p, "SELECT state, sum(salesAmt) FROM sales GROUP BY state ORDER BY state", DefaultOptions())
	if len(res.Rows) != 2 || res.Rows[0][1].Int() != 106 {
		t.Errorf("rows = %v", res.Rows)
	}
}

func TestPlanRespectsOrderByAndLimit(t *testing.T) {
	p := newSalesPlanner(t)
	res := runQuery(t, p, "SELECT state, city, Vpct(salesAmt BY city) FROM sales GROUP BY state, city ORDER BY 3 DESC LIMIT 2", DefaultOptions())
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %v", res.Rows)
	}
	if res.Rows[0][2].Float() < res.Rows[1][2].Float() {
		t.Error("ORDER BY 3 DESC not applied")
	}
}

func TestVpctRowCountPercentages(t *testing.T) {
	// The paper's Vpct(1) idiom: row-count percentages.
	p := newSalesPlanner(t)
	res := runQuery(t, p, "SELECT state, city, Vpct(1 BY city) FROM sales GROUP BY state, city", DefaultOptions())
	want := map[string]float64{
		"CA|Los Angeles": 1.0 / 4, "CA|San Francisco": 3.0 / 4,
		"TX|Dallas": 2.0 / 6, "TX|Houston": 4.0 / 6,
	}
	for _, r := range res.Rows {
		key := r[0].Str() + "|" + r[1].Str()
		if math.Abs(r[2].Float()-want[key]) > 1e-9 {
			t.Errorf("%s = %v, want %v", key, r[2], want[key])
		}
	}
}

func TestHorizontalStrategiesAgreeWithWhere(t *testing.T) {
	// A WHERE clause must flow into the feedback query, the aggregation
	// scans, and the pre-aggregates alike — under every strategy.
	queries := []struct {
		sql  string
		opts []Options
	}{
		{"SELECT store, Hpct(salesAmt BY dweek) FROM daily WHERE salesAmt > 7 GROUP BY store",
			[]Options{{}, {Hpct: HpctOptions{FromFV: true}}, {Hpct: HpctOptions{HashPivot: true}}}},
		{"SELECT store, sum(salesAmt BY dweek) FROM daily WHERE salesAmt > 7 GROUP BY store",
			[]Options{
				{Hagg: HaggOptions{Method: HaggCASE}},
				{Hagg: HaggOptions{Method: HaggCASE, FromFV: true}},
				{Hagg: HaggOptions{Method: HaggSPJ}},
				{Hagg: HaggOptions{Method: HaggSPJ, FromFV: true}},
			}},
	}
	for _, q := range queries {
		var base *engine.Result
		for si, opts := range q.opts {
			p := newSalesPlanner(t)
			res := runQuery(t, p, q.sql, opts)
			if base == nil {
				base = res
				continue
			}
			sameResults(t, fmt.Sprintf("%s strategy %d", q.sql, si), base, res)
		}
		// The filter genuinely restricts the result: columns for days whose
		// only sales are ≤ 7 must be absent from the layout.
		for _, c := range base.Columns {
			if c == "Tu" && strings.Contains(q.sql, "Hpct") {
				// store 2 Tu=6, store 4 Tu=9: Tu survives via store 4.
				break
			}
		}
	}
}

func TestVpctStrategiesAgreeWithWhere(t *testing.T) {
	q := "SELECT store, dweek, Vpct(salesAmt BY dweek) FROM daily WHERE dweek <> 'Su' GROUP BY store, dweek"
	var base *engine.Result
	for mask := 0; mask < 4; mask++ {
		p := newSalesPlanner(t)
		opts := Options{Vpct: VpctOptions{FjFromF: mask&1 != 0, UseUpdate: mask&2 != 0, SubkeyIndexes: true}}
		res := runQuery(t, p, q, opts)
		if base == nil {
			base = res
			continue
		}
		sameResults(t, q, base, res)
	}
	// Six days per store, percentages re-normalized over the filtered rows.
	if len(base.Rows) != 11 { // store 2: 6 days, store 4: 5 days
		t.Fatalf("rows = %d", len(base.Rows))
	}
	sums := map[int64]float64{}
	for _, r := range base.Rows {
		sums[r[0].Int()] += r[2].Float()
	}
	for s, v := range sums {
		if math.Abs(v-1) > 1e-9 {
			t.Errorf("store %d filtered percentages sum to %v", s, v)
		}
	}
}
