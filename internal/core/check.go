package core

import (
	"repro/internal/diag"
	"repro/internal/expr"
	"repro/internal/sqlparse"
	"repro/internal/storage"
)

// AggTerm is one aggregate select item of a checked query, in the form the
// linter's data-aware checks consume.
type AggTerm struct {
	// Call is the parsed aggregate call (function, argument, BY list).
	Call *expr.AggCall
	// Alias is the user-supplied AS name, if any.
	Alias string
	// Pct reports a Vpct/Hpct call; Horizontal reports a transposing call
	// (Hpct or a BY-carrying standard aggregate).
	Pct, Horizontal bool
	// Span locates the call in the statement source.
	Span diag.Span
}

// QueryShape is the analyzed skeleton of a percentage query, exported for
// internal/lint. It is only populated when Check finds no structural
// errors; data-aware checks need the table, grouping and aggregate layout
// to phrase their feedback queries.
type QueryShape struct {
	Class QueryClass
	// Table is F, the single source table.
	Table string
	// GroupCols are the resolved GROUP BY column names in declared order.
	GroupCols []string
	// WhereSQL is the user WHERE clause rendered as a " WHERE …" suffix
	// (empty when absent), ready to append to a feedback query.
	WhereSQL string
	// HasOrderBy reports whether the query fixes its row order.
	HasOrderBy bool
	// Aggs lists the aggregate select items in select-list order.
	Aggs []AggTerm
	// Schema is the schema of F.
	Schema storage.Schema
}

// Check validates a SELECT against the paper's usage rules and returns
// every violation as a positioned diagnostic, sorted by source position.
// Unlike the planner's fail-fast path it does not stop at the first
// problem. The returned shape is nil when errors prevent analysis (wrong
// class mix, unknown table) and best-effort otherwise.
func (p *Planner) Check(sel *sqlparse.Select) (*QueryShape, []diag.Diagnostic) {
	a, l := p.analyzeDiags(sel)
	ds := l.All()
	diag.Sort(ds)
	if a == nil {
		return nil, ds
	}
	shape := &QueryShape{
		Class:      a.class,
		Table:      a.table,
		GroupCols:  a.groupCols,
		WhereSQL:   a.whereSQL(),
		HasOrderBy: len(a.orderBy) > 0,
		Schema:     a.schema,
	}
	for _, it := range a.items {
		if it.agg == nil {
			continue
		}
		shape.Aggs = append(shape.Aggs, AggTerm{
			Call:       it.agg,
			Alias:      it.alias,
			Pct:        it.kind == itemPct,
			Horizontal: it.kind == itemHoriz || (it.kind == itemPct && it.agg.Fn == expr.AggHpct),
			Span:       it.aggSpan(),
		})
	}
	return shape, ds
}

// CountDistinct measures the number of distinct combinations of cols in
// table, under an optional " WHERE …" suffix — the paper's feedback query,
// exported for the linter's cardinality checks. Zero columns count as one
// combination (the global total).
func (p *Planner) CountDistinct(table string, cols []string, whereSQL string) (int, error) {
	if len(cols) == 0 {
		return 1, nil
	}
	combos, err := p.feedbackCombos(table, cols, whereSQL)
	if err != nil {
		return 0, err
	}
	return len(combos), nil
}
