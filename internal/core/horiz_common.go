package core

import (
	"fmt"
	"strings"

	"repro/internal/value"
)

// combo is one distinct combination of BY-column values, defining one
// result column of a horizontal aggregation.
type combo struct {
	vals  []value.Value
	label string
}

// feedbackCombos runs the feedback query the paper requires to lay out FH:
// SELECT DISTINCT Dj+1..Dk FROM F, ordered for deterministic column order.
func (p *Planner) feedbackCombos(table string, byCols []string, whereSQL string) ([]combo, error) {
	sql := fmt.Sprintf("SELECT DISTINCT %s FROM %s%s ORDER BY %s",
		joinIdents(byCols), table, whereSQL, joinIdents(byCols))
	res, err := p.Eng.ExecSQL(sql)
	if err != nil {
		return nil, fmt.Errorf("core: feedback query failed: %w", err)
	}
	out := make([]combo, 0, len(res.Rows))
	// pctvet:ok O(1) copy per row of a result the feedback statement already governed
	for _, row := range res.Rows {
		out = append(out, combo{vals: row, label: comboLabel(byCols, row)})
	}
	return out, nil
}

// comboLabel names a result column after its combination of values: bare
// values for a single BY column ("Mon"), col=value pairs otherwise
// ("dweek=1,month=2"). NULLs render as the word NULL.
func comboLabel(byCols []string, vals []value.Value) string {
	if len(byCols) == 1 {
		return vals[0].String()
	}
	parts := make([]string, len(vals))
	for i, v := range vals {
		parts[i] = byCols[i] + "=" + v.String()
	}
	return strings.Join(parts, ",")
}

// comboCond renders the boolean conjunction matching one combination:
// "Dh = vh AND … AND Dk = vk", with IS NULL for NULL values. qualifier, if
// nonempty, prefixes column references.
func comboCond(qualifier string, byCols []string, vals []value.Value) string {
	parts := make([]string, len(byCols))
	for i, c := range byCols {
		ref := quoteIdent(c)
		if qualifier != "" {
			ref = qualifier + "." + ref
		}
		if vals[i].IsNull() {
			parts[i] = ref + " IS NULL"
		} else {
			parts[i] = ref + " = " + literalSQL(vals[i])
		}
	}
	return strings.Join(parts, " AND ")
}

// whereSQLOf renders the analysis WHERE clause as a SQL suffix.
func (a *analysis) whereSQL() string { return whereSuffix(a.where) }

// andWhere combines a combo condition with the user WHERE clause into one
// WHERE clause.
func andWhere(cond string, a *analysis) string {
	if a.where == nil {
		return " WHERE " + cond
	}
	return " WHERE " + cond + " AND (" + a.where.String() + ")"
}

// groupByClause renders " GROUP BY cols" or "" for j = 0.
func groupByClause(cols []string) string {
	if len(cols) == 0 {
		return ""
	}
	return " GROUP BY " + joinIdents(cols)
}
