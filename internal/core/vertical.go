package core

import (
	"fmt"
	"strings"

	"repro/internal/expr"
	"repro/internal/storage"
)

// vterm is one analyzed Vpct select item.
type vterm struct {
	itemIdx    int
	call       *expr.AggCall
	measure    expr.Expr // the A expression
	totalsCols []string  // D1..Dj (GROUP BY minus BY); empty = all rows
	measureCol string    // Fk column holding sum(A) for this term
	fjTable    string
	outName    string
}

// planVertical generates the Vpct evaluation plan of Section 3.1:
//
//	Fk:  INSERT INTO Fk SELECT D1..Dk, sum(A)… FROM F GROUP BY D1..Dk
//	Fj:  INSERT INTO Fj SELECT D1..Dj, sum(A) FROM {Fk|F} GROUP BY D1..Dj
//	FV:  INSERT … divide Fk by Fj joined on the common subkey,
//	     or UPDATE Fk in place.
//
// With m Vpct terms, m+1 aggregations are computed (one Fk, one Fj per
// term), as the paper prescribes.
func (p *Planner) planVertical(a *analysis, opts VpctOptions) (*Plan, error) {
	plan := &Plan{Class: ClassVertical}

	// Gather terms. Fk measure columns are shared across terms with the
	// same expression — except under the UPDATE variant, where each term
	// overwrites its column with its own percentages and so needs its own.
	type mcol struct{ sql, col string }
	var terms []*vterm
	measureCols := map[string]string{} // measure SQL → Fk column
	var measureOrder []mcol
	var extraAggs []int // item indexes of plain vertical aggregates
	for idx, it := range a.items {
		switch it.kind {
		case itemPct:
			if it.agg.Fn != expr.AggVpct {
				return nil, fmt.Errorf("core: internal: %s in vertical plan", it.agg.Fn)
			}
			mSQL := it.agg.Arg.String()
			col, ok := measureCols[mSQL]
			if !ok || opts.UseUpdate {
				col = fmt.Sprintf("m%d", len(measureOrder)+1)
				measureCols[mSQL] = col
				measureOrder = append(measureOrder, mcol{sql: mSQL, col: col})
			}
			terms = append(terms, &vterm{
				itemIdx:    idx,
				call:       it.agg,
				measure:    it.agg.Arg,
				totalsCols: a.totalsColsOf(it.agg),
				measureCol: col,
			})
		case itemVertAgg:
			extraAggs = append(extraAggs, idx)
		}
	}
	if len(terms) == 0 {
		return nil, fmt.Errorf("core: vertical plan without Vpct terms")
	}
	if opts.MissingRows != MissingNone {
		if len(terms) != 1 {
			return nil, fmt.Errorf("core: missing-row handling supports a single Vpct term")
		}
		if len(extraAggs) > 0 {
			return nil, fmt.Errorf("core: missing-row handling cannot be combined with other aggregate terms")
		}
		if len(terms[0].totalsCols) == 0 {
			return nil, fmt.Errorf("core: missing-row handling requires a BY clause (totals grouping)")
		}
	}

	// Optional pre-processing: insert zero-measure rows into F for missing
	// (D1..Dj) × (Dj+1..Dk) combinations before aggregating.
	if opts.MissingRows == MissingPre {
		if err := p.addMissingPreSteps(plan, a, terms[0]); err != nil {
			return nil, err
		}
	}

	// ---- Fk: the fine aggregate over D1..Dk ----
	fk := p.temp("fk")
	// Shared summaries never cover the UPDATE variant (it mutates Fk), nor
	// virtual relations (their contents change between any two scans, and
	// the DML hook that maintains cached summaries never fires for them).
	shareable := p.shareSummaries && !opts.UseUpdate && !p.Eng.IsVirtualTable(a.table)

	measureType := func(mSQL string) storage.ColumnType {
		for _, t := range terms {
			if t.measure.String() == mSQL {
				if opts.UseUpdate {
					// Percentages overwrite these columns in place.
					return storage.TypeFloat
				}
				return exprType(t.measure, a.schema)
			}
		}
		return storage.TypeFloat
	}

	var fkCols, fkSelect []string
	for _, g := range a.groupCols {
		fkCols = append(fkCols, colDef(g, a.schema[a.schema.ColumnIndex(g)].Type))
		fkSelect = append(fkSelect, quoteIdent(g))
	}
	for _, m := range measureOrder {
		fkCols = append(fkCols, colDef(m.col, measureType(m.sql)))
		fkSelect = append(fkSelect, "sum("+m.sql+")")
	}
	extraCol := map[int]string{}
	for n, idx := range extraAggs {
		call := a.items[idx].agg
		col := fmt.Sprintf("x%d", n+1)
		extraCol[idx] = col
		fkCols = append(fkCols, colDef(col, aggResultType(call, a.schema)))
		fkSelect = append(fkSelect, call.String())
	}
	// The column layout is part of the key: two queries can share the select
	// list yet assign different column names (a measure reused as m1 in one
	// and stored as x1 in the other), and a layout mismatch would make the
	// cached table's columns unresolvable for the second plan. Including the
	// definitions also lets lattice plans (planLattice) share FS with Fk.
	fkKey := fmt.Sprintf("fk|%s|%s|%s|%s|%s", a.table, whereSuffix(a.where),
		joinIdents(a.groupCols), strings.Join(fkSelect, ","), strings.Join(fkCols, ","))
	// Delta metadata makes the cached Fk incrementally maintainable: every
	// aggregate column must be distributive (the measure sums always are;
	// extra terms may not be — avg or DISTINCT keep meta nil, so DML
	// rebuilds instead).
	var fkMeta *deltaMeta
	if shareable {
		merges := make([]mergeOp, 0, len(measureOrder)+len(extraAggs))
		for range measureOrder {
			merges = append(merges, mergeAdd)
		}
		deltable := true
		for _, idx := range extraAggs {
			op, ok := mergeOpFor(a.items[idx].agg)
			if !ok {
				deltable = false
				break
			}
			merges = append(merges, op)
		}
		if deltable {
			fkMeta = &deltaMeta{
				base:    a.table,
				where:   whereSuffix(a.where),
				groupBy: " GROUP BY " + joinIdents(a.groupCols),
				selects: strings.Join(fkSelect, ", "),
				colDefs: strings.Join(fkCols, ", "),
				nGroup:  len(a.groupCols),
				merges:  merges,
			}
		}
	}
	fkMode := cacheOff
	var fkReg *summaryEntry
	if shareable {
		fk, fkMode, fkReg = p.cacheLookup(fkKey, fk, a.table, fkMeta)
	} else {
		plan.Cleanup = append(plan.Cleanup, Step{Purpose: "drop Fk", SQL: "DROP TABLE IF EXISTS " + fk})
	}
	switch fkMode {
	case cacheHitClean:
		plan.cacheHits++
		plan.Steps = append(plan.Steps, cacheHitStep("Fk", fk))
	case cacheHitDelta:
		plan.cacheHits++
		plan.Steps = append(plan.Steps, p.cacheDeltaStep(fkReg, fk, "Fk"))
	default:
		if fkMode == cacheMiss {
			plan.cacheRegs = append(plan.cacheRegs, fkReg)
			plan.Steps = append(plan.Steps, p.cacheCaptureStep(fkReg, a.table))
		}
		plan.Steps = append(plan.Steps,
			Step{Purpose: "create Fk", SQL: fmt.Sprintf("CREATE TABLE %s (%s)", fk, strings.Join(fkCols, ", "))},
			Step{Purpose: "compute fine aggregate Fk from F",
				SQL: fmt.Sprintf("INSERT INTO %s SELECT %s FROM %s%s GROUP BY %s",
					fk, strings.Join(fkSelect, ", "), a.table, whereSuffix(a.where), joinIdents(a.groupCols))},
		)
		if fkMode == cacheMiss {
			plan.Steps = append(plan.Steps, p.cachePublishStep(fkReg, "Fk"))
		}
	}
	fkFromCache := fkMode == cacheHitClean || fkMode == cacheHitDelta

	// ---- Fj per term: the coarse totals over D1..Dj ----
	// With several terms the Fj aggregates form a lattice: a term whose
	// totals grouping is a subset of an earlier term's (same measure) can
	// aggregate that term's Fj instead of the larger Fk — the bottom-up
	// partial-aggregation the paper's future work likens to association
	// mining.
	type fjDone struct {
		table      string
		totalsCols []string
		measureSQL string
	}
	var done []fjDone
	for ti, t := range terms {
		t.fjTable = p.temp("fj")
		var fjCols, fjSelect []string
		for _, g := range t.totalsCols {
			fjCols = append(fjCols, colDef(g, a.schema[a.schema.ColumnIndex(g)].Type))
			fjSelect = append(fjSelect, quoteIdent(g))
		}
		fjCols = append(fjCols, colDef("A", storage.TypeFloat))
		groupClause := ""
		if len(t.totalsCols) > 0 {
			groupClause = " GROUP BY " + joinIdents(t.totalsCols)
		}

		// Pick the smallest available source: a finished Fj whose grouping
		// covers this term's, else Fk, else F (per strategy).
		source := fk
		sourceMeasure := "sum(" + quoteIdent(t.measureCol) + ")"
		purpose := fmt.Sprintf("compute coarse totals Fj from partial aggregate Fk (term %d)", ti+1)
		if opts.FjFromF {
			source = a.table
			sourceMeasure = "sum(" + t.measure.String() + ")"
			purpose = fmt.Sprintf("compute coarse totals Fj from F (term %d)", ti+1)
		} else {
			best := -1
			for di, d := range done {
				if d.measureSQL != t.measure.String() {
					continue
				}
				covers := true
				for _, c := range t.totalsCols {
					if !containsFold(d.totalsCols, c) {
						covers = false
						break
					}
				}
				if covers && (best < 0 || len(d.totalsCols) < len(done[best].totalsCols)) {
					best = di
				}
			}
			if best >= 0 {
				source = done[best].table
				sourceMeasure = "sum(A)"
				purpose = fmt.Sprintf("compute coarse totals Fj from the finer Fj of term %d (lattice reuse)", best+1)
			}
		}
		fjSelect = append(fjSelect, sourceMeasure)

		fjKey := fmt.Sprintf("fj|%s|%s|%s|%s|%v", fkKey, joinIdents(t.totalsCols), t.measure.String(), sourceMeasure, opts.FjFromF)
		// Fj's delta always re-aggregates the base rows directly (sum is
		// distributive over any partition of F), whatever source the build
		// itself reads from.
		var fjMeta *deltaMeta
		if shareable {
			var fjDeltaSel []string
			for _, g := range t.totalsCols {
				fjDeltaSel = append(fjDeltaSel, quoteIdent(g))
			}
			fjDeltaSel = append(fjDeltaSel, "sum("+t.measure.String()+")")
			fjMeta = &deltaMeta{
				base:    a.table,
				where:   whereSuffix(a.where),
				groupBy: groupClause,
				selects: strings.Join(fjDeltaSel, ", "),
				colDefs: strings.Join(fjCols, ", "),
				nGroup:  len(t.totalsCols),
				merges:  []mergeOp{mergeAdd},
			}
		}
		fjMode := cacheOff
		var fjReg *summaryEntry
		if shareable {
			t.fjTable, fjMode, fjReg = p.cacheLookup(fjKey, t.fjTable, a.table, fjMeta)
		} else {
			plan.Cleanup = append(plan.Cleanup, Step{Purpose: "drop Fj", SQL: "DROP TABLE IF EXISTS " + t.fjTable})
		}
		whereClause := ""
		if source == a.table {
			whereClause = whereSuffix(a.where)
		}
		switch fjMode {
		case cacheHitClean:
			plan.cacheHits++
			plan.Steps = append(plan.Steps, cacheHitStep("Fj", t.fjTable))
		case cacheHitDelta:
			plan.cacheHits++
			plan.Steps = append(plan.Steps, p.cacheDeltaStep(fjReg, t.fjTable, "Fj"))
		default:
			if fjMode == cacheMiss {
				plan.cacheRegs = append(plan.cacheRegs, fjReg)
				plan.Steps = append(plan.Steps, p.cacheCaptureStep(fjReg, a.table))
				if fkFromCache && source == fk {
					// The paper's Fj-from-Fk derivation applied across
					// statements: a fresh Fj rolled up from a cached Fk.
					p.mu.Lock()
					p.cstats.FjRollups++
					p.mu.Unlock()
					mCacheFjRollups.Inc()
				}
			}
			plan.Steps = append(plan.Steps,
				Step{Purpose: fmt.Sprintf("create Fj for term %d", ti+1),
					SQL: fmt.Sprintf("CREATE TABLE %s (%s)", t.fjTable, strings.Join(fjCols, ", "))},
				Step{Purpose: purpose,
					SQL: fmt.Sprintf("INSERT INTO %s SELECT %s FROM %s%s%s",
						t.fjTable, strings.Join(fjSelect, ", "), source, whereClause, groupClause)},
			)
			if fjMode == cacheMiss {
				plan.Steps = append(plan.Steps, p.cachePublishStep(fjReg, "Fj"))
			}
			if opts.SubkeyIndexes && len(t.totalsCols) > 0 {
				// A clean-hit Fk already carries its subkey index from the
				// plan that built it; re-indexing it every query would pile
				// up duplicates.
				if fkMode != cacheHitClean {
					plan.Steps = append(plan.Steps,
						Step{Purpose: "index Fk on the common subkey",
							SQL: fmt.Sprintf("CREATE INDEX %s ON %s (%s)", p.temp("ixk"), fk, joinIdents(t.totalsCols))},
					)
				}
				plan.Steps = append(plan.Steps,
					Step{Purpose: "index Fj on the common subkey",
						SQL: fmt.Sprintf("CREATE INDEX %s ON %s (%s)", p.temp("ixj"), t.fjTable, joinIdents(t.totalsCols))},
				)
			}
		}
		done = append(done, fjDone{table: t.fjTable, totalsCols: t.totalsCols, measureSQL: t.measure.String()})
	}

	// Output column names, in select-list order.
	outNames := make([]string, len(a.items))
	for idx, it := range a.items {
		switch {
		case it.alias != "":
			outNames[idx] = it.alias
		case it.kind == itemGroupCol:
			outNames[idx] = it.col
		case it.kind == itemPct:
			// The paper's result tables title the percentage column with
			// the measure name (Table 2 heads it "salesAmt").
			if cr, ok := it.agg.Arg.(*expr.ColumnRef); ok {
				outNames[idx] = cr.Name
			} else {
				outNames[idx] = "pct"
			}
		default:
			outNames[idx] = it.agg.String()
		}
	}
	outNames = uniqueNames(outNames)
	for _, t := range terms {
		t.outName = outNames[t.itemIdx]
	}

	// ---- FV: divide the two aggregation levels ----
	var fv string
	if opts.UseUpdate {
		// FV = Fk, updated in place; one cross-table UPDATE per term.
		fv = fk
		for ti, t := range terms {
			where := ""
			if len(t.totalsCols) > 0 {
				where = " WHERE " + equalityChainNullSafe(fk, t.fjTable, t.totalsCols)
			}
			m := fk + "." + quoteIdent(t.measureCol)
			plan.Steps = append(plan.Steps, Step{
				Purpose: fmt.Sprintf("divide in place: UPDATE Fk with Fj totals (term %d)", ti+1),
				SQL: fmt.Sprintf("UPDATE %s FROM %s SET %s = CASE WHEN %s.A <> 0 THEN %s / %s.A ELSE NULL END%s",
					fk, t.fjTable, quoteIdent(t.measureCol), t.fjTable, m, t.fjTable, where),
			})
		}
	} else {
		fv = p.temp("fv")
		plan.Cleanup = append(plan.Cleanup, Step{Purpose: "drop FV", SQL: "DROP TABLE IF EXISTS " + fv})
		var fvCols, fvSelect []string
		for idx, it := range a.items {
			name := outNames[idx]
			switch it.kind {
			case itemGroupCol:
				fvCols = append(fvCols, colDef(name, a.schema[a.schema.ColumnIndex(it.col)].Type))
				fvSelect = append(fvSelect, fk+"."+quoteIdent(it.col))
			case itemPct:
				fvCols = append(fvCols, colDef(name, storage.TypeFloat))
				var t *vterm
				for _, tt := range terms {
					if tt.itemIdx == idx {
						t = tt
					}
				}
				m := fk + "." + quoteIdent(t.measureCol)
				fvSelect = append(fvSelect, fmt.Sprintf(
					"CASE WHEN %s.A <> 0 THEN %s / %s.A ELSE NULL END", t.fjTable, m, t.fjTable))
			case itemVertAgg:
				fvCols = append(fvCols, colDef(name, aggResultType(it.agg, a.schema)))
				fvSelect = append(fvSelect, fk+"."+quoteIdent(extraCol[idx]))
			}
		}
		from := []string{fk}
		var conds []string
		for _, t := range terms {
			from = append(from, t.fjTable)
			if len(t.totalsCols) > 0 {
				conds = append(conds, equalityChainNullSafe(fk, t.fjTable, t.totalsCols))
			}
		}
		where := ""
		if len(conds) > 0 {
			where = " WHERE " + strings.Join(conds, " AND ")
		}
		plan.Steps = append(plan.Steps,
			Step{Purpose: "create FV", SQL: fmt.Sprintf("CREATE TABLE %s (%s)", fv, strings.Join(fvCols, ", "))},
			Step{Purpose: "compute FV: join Fk with Fj on the common subkey and divide",
				SQL: fmt.Sprintf("INSERT INTO %s SELECT %s FROM %s%s",
					fv, strings.Join(fvSelect, ", "), strings.Join(from, ", "), where)},
		)
	}
	plan.ResultTable = fv
	plan.ResultTables = []string{fv}

	// Optional post-processing: zero-fill missing combinations in FV.
	if opts.MissingRows == MissingPost {
		full, err := p.addMissingPostSteps(plan, a, terms[0], fv, outNames, opts.UseUpdate, extraCol)
		if err != nil {
			return nil, err
		}
		plan.ResultTable = full
		plan.ResultTables = []string{full}
		fv = full
	}

	// ---- final projection ----
	var finalCols []string
	if opts.UseUpdate && opts.MissingRows == MissingNone {
		// Result table is Fk: project its columns into select-list order
		// under the output names.
		for idx, it := range a.items {
			var src string
			switch it.kind {
			case itemGroupCol:
				src = quoteIdent(it.col)
			case itemPct:
				for _, t := range terms {
					if t.itemIdx == idx {
						src = quoteIdent(t.measureCol)
					}
				}
			case itemVertAgg:
				src = quoteIdent(extraCol[idx])
			}
			finalCols = append(finalCols, src+" AS "+quoteIdent(outNames[idx]))
		}
	} else {
		for _, n := range outNames {
			finalCols = append(finalCols, quoteIdent(n))
		}
	}
	plan.FinalSelect = fmt.Sprintf("SELECT %s FROM %s%s%s",
		strings.Join(finalCols, ", "), fv, orderClause(a, outNames), limitClause(a))
	return plan, nil
}

// orderClause renders the query's ORDER BY, defaulting to the GROUP BY
// order the paper prescribes for displaying rows that add up to 100%
// together.
func orderClause(a *analysis, outNames []string) string {
	if len(a.orderBy) > 0 {
		parts := make([]string, len(a.orderBy))
		for i, k := range a.orderBy {
			parts[i] = k.String()
		}
		return " ORDER BY " + strings.Join(parts, ", ")
	}
	var parts []string
	for idx, it := range a.items {
		if it.kind == itemGroupCol {
			parts = append(parts, quoteIdent(outNames[idx]))
		}
	}
	if len(parts) == 0 {
		return ""
	}
	return " ORDER BY " + strings.Join(parts, ", ")
}

func limitClause(a *analysis) string {
	if a.limit > 0 {
		return fmt.Sprintf(" LIMIT %d", a.limit)
	}
	return ""
}

// addMissingPreSteps implements pre-processing: insert one zero-measure row
// into F per missing (D1..Dj) × (Dj+1..Dk) combination. The measure must be
// a plain column so the inserted rows carry measure 0; every other column
// of F stays NULL. As the paper notes, this fixes measure percentages but
// skews Vpct(1) row counts, and can be expensive with high-dimensional
// cubes.
func (p *Planner) addMissingPreSteps(plan *Plan, a *analysis, t *vterm) error {
	mcol, ok := t.measure.(*expr.ColumnRef)
	if !ok {
		return fmt.Errorf("core: pre-processing of missing rows requires the measure to be a plain column, not %s", t.measure)
	}
	byCols := t.call.By
	sup := p.temp("sup")
	comb := p.temp("comb")
	exist := p.temp("exist")
	for _, tmp := range []string{sup, comb, exist} {
		plan.Cleanup = append(plan.Cleanup, Step{Purpose: "drop missing-rows temp", SQL: "DROP TABLE IF EXISTS " + tmp})
	}
	defCols := func(cols []string) string {
		parts := make([]string, len(cols))
		for i, c := range cols {
			parts[i] = colDef(c, a.schema[a.schema.ColumnIndex(c)].Type)
		}
		return strings.Join(parts, ", ")
	}
	plan.Steps = append(plan.Steps,
		Step{Purpose: "missing rows: distinct super-groups D1..Dj",
			SQL: fmt.Sprintf("CREATE TABLE %s (%s); INSERT INTO %s SELECT DISTINCT %s FROM %s%s",
				sup, defCols(t.totalsCols), sup, joinIdents(t.totalsCols), a.table, whereSuffix(a.where))},
		Step{Purpose: "missing rows: distinct BY combinations Dj+1..Dk",
			SQL: fmt.Sprintf("CREATE TABLE %s (%s); INSERT INTO %s SELECT DISTINCT %s FROM %s%s",
				comb, defCols(byCols), comb, joinIdents(byCols), a.table, whereSuffix(a.where))},
		Step{Purpose: "missing rows: existing D1..Dk combinations",
			SQL: fmt.Sprintf("CREATE TABLE %s (%s); INSERT INTO %s SELECT DISTINCT %s FROM %s%s",
				exist, defCols(a.groupCols), exist, joinIdents(a.groupCols), a.table, whereSuffix(a.where))},
	)
	// Insert a zero-measure row for each (sup × comb) absent from exist.
	selectCols := make([]string, 0, len(a.groupCols)+1)
	insertCols := make([]string, 0, len(a.groupCols)+1)
	for _, g := range a.groupCols {
		insertCols = append(insertCols, quoteIdent(g))
		if containsFold(t.totalsCols, g) {
			selectCols = append(selectCols, sup+"."+quoteIdent(g))
		} else {
			selectCols = append(selectCols, comb+"."+quoteIdent(g))
		}
	}
	insertCols = append(insertCols, quoteIdent(mcol.Name))
	selectCols = append(selectCols, "0")
	onParts := make([]string, 0, len(a.groupCols))
	for _, g := range t.totalsCols {
		onParts = append(onParts, equalityChainNullSafe(exist, sup, []string{g}))
	}
	for _, g := range byCols {
		onParts = append(onParts, equalityChainNullSafe(exist, comb, []string{g}))
	}
	plan.Steps = append(plan.Steps, Step{
		Purpose: "missing rows: insert zero-measure rows into F",
		SQL: fmt.Sprintf("INSERT INTO %s (%s) SELECT %s FROM %s, %s LEFT OUTER JOIN %s ON %s WHERE %s.%s IS NULL",
			a.table, strings.Join(insertCols, ", "), strings.Join(selectCols, ", "),
			sup, comb, exist, strings.Join(onParts, " AND "),
			exist, quoteIdent(a.groupCols[0])),
	})
	return nil
}

// addMissingPostSteps implements post-processing: build FVfull with one row
// per (D1..Dj) × (Dj+1..Dk) combination, zero-filling percentages for
// combinations absent from FV. Returns the full result table name.
func (p *Planner) addMissingPostSteps(plan *Plan, a *analysis, t *vterm, fv string,
	outNames []string, updateVariant bool, extraCol map[int]string) (string, error) {

	byCols := t.call.By
	sup := p.temp("sup")
	comb := p.temp("comb")
	full := p.temp("fvfull")
	for _, tmp := range []string{sup, comb, full} {
		plan.Cleanup = append(plan.Cleanup, Step{Purpose: "drop missing-rows temp", SQL: "DROP TABLE IF EXISTS " + tmp})
	}
	defCols := func(cols []string) string {
		parts := make([]string, len(cols))
		for i, c := range cols {
			parts[i] = colDef(c, a.schema[a.schema.ColumnIndex(c)].Type)
		}
		return strings.Join(parts, ", ")
	}
	plan.Steps = append(plan.Steps,
		Step{Purpose: "missing rows: distinct super-groups D1..Dj",
			SQL: fmt.Sprintf("CREATE TABLE %s (%s); INSERT INTO %s SELECT DISTINCT %s FROM %s%s",
				sup, defCols(t.totalsCols), sup, joinIdents(t.totalsCols), a.table, whereSuffix(a.where))},
		Step{Purpose: "missing rows: distinct BY combinations Dj+1..Dk",
			SQL: fmt.Sprintf("CREATE TABLE %s (%s); INSERT INTO %s SELECT DISTINCT %s FROM %s%s",
				comb, defCols(byCols), comb, joinIdents(byCols), a.table, whereSuffix(a.where))},
	)

	// FVfull mirrors the user-facing result: group columns + percentage.
	var fullCols, selectCols []string
	for idx, it := range a.items {
		name := outNames[idx]
		switch it.kind {
		case itemGroupCol:
			fullCols = append(fullCols, colDef(name, a.schema[a.schema.ColumnIndex(it.col)].Type))
			if containsFold(t.totalsCols, it.col) {
				selectCols = append(selectCols, sup+"."+quoteIdent(it.col))
			} else {
				selectCols = append(selectCols, comb+"."+quoteIdent(it.col))
			}
		case itemPct:
			fullCols = append(fullCols, colDef(name, storage.TypeFloat))
			src := "v." + quoteIdent(name)
			if updateVariant {
				src = "v." + quoteIdent(t.measureCol)
			}
			selectCols = append(selectCols, "coalesce("+src+", 0)")
		}
	}
	// Join FV on every group column: group cols that are totals columns
	// come from sup, BY columns from comb.
	// FV columns carry output names under the INSERT variant and original
	// names under the UPDATE variant.
	nameOf := func(col string) string {
		if updateVariant {
			return col
		}
		for idx, it := range a.items {
			if it.kind == itemGroupCol && strings.EqualFold(it.col, col) {
				return outNames[idx]
			}
		}
		return col
	}
	nullSafePair := func(left, lcol, right, rcol string) string {
		l := left + "." + quoteIdent(lcol)
		r := right + "." + quoteIdent(rcol)
		return fmt.Sprintf("(%s = %s OR (%s IS NULL AND %s IS NULL))", l, r, l, r)
	}
	var onParts []string
	for _, g := range t.totalsCols {
		onParts = append(onParts, nullSafePair("v", nameOf(g), sup, g))
	}
	for _, g := range byCols {
		onParts = append(onParts, nullSafePair("v", nameOf(g), comb, g))
	}
	plan.Steps = append(plan.Steps,
		Step{Purpose: "create FVfull", SQL: fmt.Sprintf("CREATE TABLE %s (%s)", full, strings.Join(fullCols, ", "))},
		Step{Purpose: "missing rows: zero-fill absent combinations into FVfull",
			SQL: fmt.Sprintf("INSERT INTO %s SELECT %s FROM %s, %s LEFT OUTER JOIN %s v ON %s",
				full, strings.Join(selectCols, ", "), sup, comb, fv, strings.Join(onParts, " AND "))},
	)
	_ = extraCol
	return full, nil
}
