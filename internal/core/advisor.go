package core

import (
	"fmt"

	"repro/internal/sqlparse"
)

// Advise picks evaluation strategies for a percentage query following the
// recommendations of the paper's Section 4:
//
//   - Vpct: create identical indexes on the common subkey of Fj and Fk, use
//     INSERT instead of UPDATE "specially when |FV| ≈ |F|", and compute Fj
//     from Fk (sum is distributive).
//   - Hpct: compute FH directly from F "when there are no more than two
//     columns in the list Dj+1..Dk and each of them has low selectivity",
//     and from FV "when there are three or more grouping columns or when
//     the grouping columns have high selectivity".
//   - Hagg: always CASE over SPJ, choosing the indirect (from FV) variant
//     when the fine grouping is much smaller than F.
//
// Cardinalities come from live statistics: the number of distinct BY
// combinations (N) is measured with the feedback query, and the fine
// grouping size relative to |F| decides the pre-aggregation questions.
func (p *Planner) Advise(sel *sqlparse.Select) (Options, error) {
	a, err := p.analyze(sel)
	if err != nil {
		return Options{}, err
	}
	opts := DefaultOptions()
	if a.class == ClassStandard {
		return opts, nil
	}

	tab, err := p.Eng.ResolveTable(a.table)
	if err != nil {
		return Options{}, err
	}
	nRows := tab.NumRows()

	// distinctCount measures |distinct cols| with the same feedback query
	// horizontal planning runs.
	distinctCount := func(cols []string) (int, error) {
		if len(cols) == 0 {
			return 1, nil
		}
		combos, err := p.feedbackCombos(a.table, cols, a.whereSQL())
		if err != nil {
			return 0, err
		}
		return len(combos), nil
	}

	switch a.class {
	case ClassVertical:
		// |Fk| ≈ |F| means the partial-aggregate reuse buys little but
		// still never hurts; keep the defaults. The UPDATE variant is only
		// attractive when disk for a third table is the constraint, which
		// an advisor cannot see — the paper recommends INSERT, so we do.
		return opts, nil

	case ClassHorizontalPct, ClassHorizontalAgg:
		var byCols []string
		for _, it := range a.items {
			if it.kind == itemPct || it.kind == itemHoriz {
				byCols = it.agg.By
				break
			}
		}
		n, err := distinctCount(byCols)
		if err != nil {
			return Options{}, err
		}
		fineCols := append(append([]string{}, a.groupCols...), byCols...)
		fine, err := distinctCount(fineCols)
		if err != nil {
			return Options{}, err
		}
		// From FV pays when the pre-aggregate is much smaller than F (the
		// transposition then reads |Fk| rows instead of |F|), or when the
		// subgrouping is wide/selective, matching the paper's rule of
		// thumb.
		fromFV := len(byCols) >= 3 || n >= 50 || (nRows > 0 && fine*4 <= nRows)
		if a.class == ClassHorizontalPct {
			opts.Hpct.FromFV = fromFV
			opts.Hpct.Vpct = VpctOptions{SubkeyIndexes: true}
		} else {
			opts.Hagg.Method = HaggCASE
			opts.Hagg.FromFV = fromFV
		}
		return opts, nil
	}
	return opts, fmt.Errorf("core: unadvisable class %v", a.class)
}
