package core

import (
	"strings"
	"testing"
)

func TestLatticeFjReuse(t *testing.T) {
	p := newSalesPlanner(t)
	// Two terms: BY city (totals = state) and BY city,state (illegal; use
	// a global term). The global term's Fj can be computed from the
	// state-level Fj instead of Fk.
	q := "SELECT state, city, Vpct(salesAmt BY city), Vpct(salesAmt) FROM sales GROUP BY state, city"
	plan, err := p.PlanSQL(q, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	text := plan.SQL()
	if !strings.Contains(text, "lattice reuse") {
		t.Errorf("expected lattice reuse in plan:\n%s", text)
	}
	res, err := p.Execute(plan)
	if err != nil {
		t.Fatal(err)
	}
	// Results must match the non-lattice FjFromF formulation.
	p2 := newSalesPlanner(t)
	base := runQuery(t, p2, q, Options{Vpct: VpctOptions{FjFromF: true}})
	sameResults(t, "lattice", base, res)
}

func TestLatticeRespectsMeasureMismatch(t *testing.T) {
	p := newSalesPlanner(t)
	// Different measures must not share Fj tables.
	q := "SELECT state, city, Vpct(salesAmt BY city), Vpct(RID BY city) FROM sales GROUP BY state, city"
	plan, err := p.PlanSQL(q, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(plan.SQL(), "lattice reuse") {
		t.Errorf("different measures must not reuse Fj:\n%s", plan.SQL())
	}
	if _, err := p.Execute(plan); err != nil {
		t.Fatal(err)
	}
}

func TestSharedSummariesReuseFk(t *testing.T) {
	p := newSalesPlanner(t)
	p.ShareSummaries(true)
	defer p.FlushSummaries()

	q1 := "SELECT state, city, Vpct(salesAmt BY city) FROM sales GROUP BY state, city"
	q2 := "SELECT state, city, Vpct(salesAmt BY state) FROM sales GROUP BY state, city"

	plan1, err := p.PlanSQL(q1, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res1, err := p.Execute(plan1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res1.Rows) != 4 {
		t.Fatalf("q1 rows = %v", res1.Rows)
	}

	plan2, err := p.PlanSQL(q2, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// The second plan must not rebuild Fk.
	for _, s := range plan2.Steps {
		if strings.Contains(s.Purpose, "fine aggregate Fk") {
			t.Errorf("second plan rebuilds Fk:\n%s", plan2.SQL())
		}
	}
	res2, err := p.Execute(plan2)
	if err != nil {
		t.Fatal(err)
	}

	// Same results as an unshared planner.
	p2 := newSalesPlanner(t)
	base2 := runQuery(t, p2, q2, DefaultOptions())
	sameResults(t, "shared q2", base2, res2)

	// Flush drops the cached summaries.
	p.FlushSummaries()
	for _, name := range p.Eng.Catalog().Names() {
		if strings.HasPrefix(name, "pct_") {
			t.Errorf("leftover shared summary %q", name)
		}
	}
}

func TestSharedSummariesSkipUpdateVariant(t *testing.T) {
	p := newSalesPlanner(t)
	p.ShareSummaries(true)
	defer p.FlushSummaries()
	q := "SELECT state, city, Vpct(salesAmt BY city) FROM sales GROUP BY state, city"
	// UPDATE mutates Fk, so it must never enter the cache.
	plan1, err := p.PlanSQL(q, Options{Vpct: VpctOptions{UseUpdate: true}})
	if err != nil {
		t.Fatal(err)
	}
	res1, err := p.Execute(plan1)
	if err != nil {
		t.Fatal(err)
	}
	// A second INSERT-variant run still computes correct (undivided) Fk.
	plan2, err := p.PlanSQL(q, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res2, err := p.Execute(plan2)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "update-then-insert", res1, res2)
}

func TestSharedSummariesIdenticalQueriesAgree(t *testing.T) {
	p := newSalesPlanner(t)
	p.ShareSummaries(true)
	defer p.FlushSummaries()
	q := "SELECT state, city, Vpct(salesAmt BY city) FROM sales GROUP BY state, city"
	var prev [][]string
	for i := 0; i < 3; i++ {
		plan, err := p.PlanSQL(q, DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Execute(plan)
		if err != nil {
			t.Fatal(err)
		}
		var cur [][]string
		for _, r := range res.Rows {
			row := make([]string, len(r))
			for j, v := range r {
				row[j] = v.String()
			}
			cur = append(cur, row)
		}
		if prev != nil {
			if len(cur) != len(prev) {
				t.Fatalf("run %d row count changed", i)
			}
			for ri := range cur {
				for ci := range cur[ri] {
					if cur[ri][ci] != prev[ri][ci] {
						t.Fatalf("run %d cell (%d,%d) changed: %s vs %s", i, ri, ci, cur[ri][ci], prev[ri][ci])
					}
				}
			}
		}
		prev = cur
	}
}
