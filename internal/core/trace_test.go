package core

import (
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
)

// TestExecuteTracedVertical checks the plan-level trace of a Vpct query: one
// step span per build step, the division join findable by name, statement
// spans nested under their step, and the sum-of-children invariant holding
// everywhere outside concurrent fan-outs.
func TestExecuteTracedVertical(t *testing.T) {
	p := newSalesPlanner(t)
	sel, err := parseSelect(`SELECT state, city, Vpct(salesAmt BY city) FROM sales GROUP BY state, city`)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := p.Plan(sel, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	res, root, err := p.ExecuteTraced(plan)
	if err != nil {
		t.Fatalf("ExecuteTraced: %v", err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("empty result")
	}
	if root == nil || !strings.HasPrefix(root.Name, "plan vertical") {
		t.Fatalf("root span = %v", root)
	}
	steps := 0
	for _, c := range root.Children {
		if strings.HasPrefix(c.Name, "step: ") {
			steps++
		}
	}
	if steps != len(plan.Steps) {
		t.Errorf("step spans = %d, want %d\n%s", steps, len(plan.Steps), root.Format())
	}
	div := root.Find("divide")
	if div == nil {
		t.Fatalf("no division-join step span:\n%s", root.Format())
	}
	if div.Find("statement") == nil {
		t.Errorf("division step has no nested statement span:\n%s", div.Format())
	}
	if root.Find("final select") == nil || root.Find("cleanup") == nil {
		t.Errorf("missing final select / cleanup spans:\n%s", root.Format())
	}

	root.Walk(func(s *obs.Span) {
		if s.Concurrent || len(s.Children) == 0 {
			return
		}
		var sum time.Duration
		for _, c := range s.Children {
			sum += c.Duration
		}
		if sum > s.Duration+time.Microsecond {
			t.Errorf("children of %q sum to %v, parent is %v", s.Name, sum, s.Duration)
		}
	})
}

// TestTracedHashPivotWorkers checks the native pivot step's span breakdown
// under forced parallelism: a concurrent fan-out with one span per worker,
// then merge and emit spans.
func TestTracedHashPivotWorkers(t *testing.T) {
	p := newSalesPlanner(t)
	sel, err := parseSelect(`SELECT state, Hpct(salesAmt BY city) FROM sales GROUP BY state`)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Hpct.HashPivot = true
	opts.Parallelism = 2
	plan, err := p.Plan(sel, opts)
	if err != nil {
		t.Fatal(err)
	}
	_, root, err := p.ExecuteTraced(plan)
	if err != nil {
		t.Fatalf("ExecuteTraced: %v", err)
	}
	pivot := root.Find("hash-pivot")
	if pivot == nil {
		t.Fatalf("no hash-pivot step span:\n%s", root.Format())
	}
	fan := pivot.Find("partition fan-out")
	if fan == nil || !fan.Concurrent {
		t.Fatalf("no concurrent fan-out under pivot step:\n%s", pivot.Format())
	}
	if len(fan.Children) != 2 {
		t.Errorf("pivot worker spans = %d, want 2:\n%s", len(fan.Children), pivot.Format())
	}
	if pivot.Find("merge") == nil {
		t.Errorf("no merge span under pivot step:\n%s", pivot.Format())
	}
	if pivot.Find("emit ") == nil {
		t.Errorf("no emit span under pivot step:\n%s", pivot.Format())
	}
}

// TestPlanMetrics checks the plan/step counters advance per execution.
func TestPlanMetrics(t *testing.T) {
	p := newSalesPlanner(t)
	plans, steps := mPlanExecutions.Value(), mPlanSteps.Value()
	plan, err := p.PlanSQL(`SELECT state, city, Vpct(salesAmt BY city) FROM sales GROUP BY state, city`, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Execute(plan); err != nil {
		t.Fatal(err)
	}
	if got := mPlanExecutions.Value() - plans; got != 1 {
		t.Errorf("plan executions delta = %d, want 1", got)
	}
	if got := mPlanSteps.Value() - steps; got != int64(len(plan.Steps)) {
		t.Errorf("step delta = %d, want %d", got, len(plan.Steps))
	}
}
