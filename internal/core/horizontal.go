package core

import (
	"fmt"
	"strings"

	"repro/internal/expr"
	"repro/internal/storage"
)

// hvalue is one value column of a horizontal result: its output name, type,
// and the SELECT expression that fills it.
type hvalue struct {
	name string
	typ  storage.ColumnType
	sel  string
}

// planHorizontalPct generates the Hpct evaluation plan of Section 3.2. The
// two strategies of Table 5 are: computing FH directly from F with one scan
// of sum(CASE…)/sum(A) terms, or computing the vertical percentage table FV
// first and transposing it. Either way the plan starts with the feedback
// process the paper describes: reading the distinct BY combinations to
// define FH's columns.
func (p *Planner) planHorizontalPct(a *analysis, opts HpctOptions) (*Plan, error) {
	plan := &Plan{Class: ClassHorizontalPct}

	type hterm struct {
		itemIdx int
		call    *expr.AggCall
		combos  []combo
	}
	var terms []*hterm
	var extras []int
	for idx, it := range a.items {
		switch it.kind {
		case itemPct:
			if it.agg.Fn != expr.AggHpct {
				return nil, fmt.Errorf("core: internal: %s in horizontal plan", it.agg.Fn)
			}
			combos, err := p.feedbackCombos(a.table, it.agg.By, a.whereSQL())
			if err != nil {
				return nil, err
			}
			if len(combos) == 0 {
				return nil, fmt.Errorf("core: Hpct over empty input: no BY combinations in %s", a.table)
			}
			terms = append(terms, &hterm{itemIdx: idx, call: it.agg, combos: combos})
		case itemVertAgg:
			extras = append(extras, idx)
		}
	}
	if len(terms) == 0 {
		return nil, fmt.Errorf("core: horizontal plan without Hpct terms")
	}

	// Name every output column, then uniquify.
	var names []string
	for _, g := range a.groupCols {
		names = append(names, g)
	}
	multi := len(terms) > 1
	for _, t := range terms {
		prefix := ""
		if multi {
			if al := a.items[t.itemIdx].alias; al != "" {
				prefix = al + ":"
			} else if cr, ok := t.call.Arg.(*expr.ColumnRef); ok {
				prefix = cr.Name + ":"
			} else {
				prefix = fmt.Sprintf("pct%d:", t.itemIdx)
			}
		}
		for _, c := range t.combos {
			names = append(names, prefix+c.label)
		}
	}
	for _, idx := range extras {
		if al := a.items[idx].alias; al != "" {
			names = append(names, al)
		} else {
			names = append(names, a.items[idx].agg.String())
		}
	}
	names = uniqueNames(names)
	groupNames := names[:len(a.groupCols)]
	valueNames := names[len(a.groupCols) : len(names)-len(extras)]
	extraNames := names[len(names)-len(extras):]

	totalWidth := len(names)
	if p.MaxColumns > 0 && totalWidth > p.MaxColumns && len(a.groupCols)+1+len(extras) > p.MaxColumns {
		return nil, fmt.Errorf("core: result needs %d columns but MaxColumns is %d and partitions cannot fit the %d key/extra columns",
			totalWidth, p.MaxColumns, len(a.groupCols)+len(extras))
	}

	if opts.FromFV {
		if opts.HashPivot {
			return nil, fmt.Errorf("core: HashPivot applies to the direct (from F) strategy")
		}
		if len(terms) != 1 {
			return nil, fmt.Errorf("core: the from-FV strategy supports a single Hpct term; use the direct strategy for %d terms", len(terms))
		}
		return p.planHpctFromFV(plan, a, terms[0].call, terms[0].combos, groupNames, valueNames, extras, extraNames, opts)
	}

	// ---- direct strategy: one scan of F ----
	var vals []hvalue
	vi := 0
	for _, t := range terms {
		mSQL := t.call.Arg.String()
		for _, c := range t.combos {
			cond := comboCond("", t.call.By, c.vals)
			vals = append(vals, hvalue{
				name: valueNames[vi],
				typ:  storage.TypeFloat,
				sel: fmt.Sprintf("CASE WHEN sum(%s) <> 0 THEN sum(CASE WHEN %s THEN %s ELSE 0 END) / sum(%s) ELSE NULL END",
					mSQL, cond, mSQL, mSQL),
			})
			vi++
		}
	}
	var extraVals []hvalue
	for n, idx := range extras {
		call := a.items[idx].agg
		extraVals = append(extraVals, hvalue{
			name: extraNames[n],
			typ:  aggResultType(call, a.schema),
			sel:  call.String(),
		})
	}

	if opts.HashPivot {
		if len(terms) != 1 {
			return nil, fmt.Errorf("core: HashPivot supports a single Hpct term")
		}
		return p.planHpctHashPivot(plan, a, terms[0].call, terms[0].combos, groupNames, valueNames, extras, extraNames)
	}

	holder := p.emitHorizontalInserts(plan, a, a.table, groupNames, vals, extraVals,
		"compute FH directly from F in one scan", a.groupCols, a.whereSQL())
	p.finishHorizontalPlan(plan, a, groupNames, valueNames, extraNames, holder)
	return plan, nil
}

// planHpctFromFV generates the indirect strategy: run the full vertical
// percentage process into FV, then transpose FV by summing CASE terms.
func (p *Planner) planHpctFromFV(plan *Plan, a *analysis, call *expr.AggCall, combos []combo,
	groupNames, valueNames []string, extras []int, extraNames []string, opts HpctOptions) (*Plan, error) {

	pctAlias := p.temp("pv")
	// Embedded vertical query: group by D1..Dj plus the BY columns, with
	// the BY columns as the Vpct subgrouping.
	var sb strings.Builder
	sb.WriteString("SELECT ")
	var sel []string
	fineGroup := append(append([]string{}, a.groupCols...), call.By...)
	for _, g := range fineGroup {
		sel = append(sel, quoteIdent(g))
	}
	if len(a.groupCols) == 0 {
		// j = 0: totals over all rows, expressed by omitting the BY clause.
		sel = append(sel, fmt.Sprintf("vpct(%s) AS %s", call.Arg.String(), pctAlias))
	} else {
		sel = append(sel, fmt.Sprintf("vpct(%s BY %s) AS %s", call.Arg.String(), joinIdents(call.By), pctAlias))
	}
	// Extra aggregates ride along as distributive partials at the fine
	// level and are re-aggregated during transposition.
	type partial struct {
		cols  []string // partial column aliases in FV
		reagg string   // SELECT expression over FV
		typ   storage.ColumnType
	}
	var partials []partial
	for _, idx := range extras {
		x := a.items[idx].agg
		if x.Distinct {
			return nil, fmt.Errorf("core: count(DISTINCT …) terms are not distributive; use the direct (from F) strategy")
		}
		switch x.Fn {
		case expr.AggSum:
			c := p.temp("xp")
			sel = append(sel, fmt.Sprintf("sum(%s) AS %s", x.Arg.String(), c))
			partials = append(partials, partial{cols: []string{c}, reagg: "sum(" + quoteIdent(c) + ")", typ: aggResultType(x, a.schema)})
		case expr.AggCount:
			c := p.temp("xp")
			arg := "*"
			if x.Arg != nil {
				arg = x.Arg.String()
			}
			sel = append(sel, fmt.Sprintf("count(%s) AS %s", arg, c))
			partials = append(partials, partial{cols: []string{c}, reagg: "sum(" + quoteIdent(c) + ")", typ: storage.TypeInt})
		case expr.AggMin, expr.AggMax:
			c := p.temp("xp")
			sel = append(sel, fmt.Sprintf("%s(%s) AS %s", x.Fn, x.Arg.String(), c))
			partials = append(partials, partial{cols: []string{c}, reagg: string(x.Fn) + "(" + quoteIdent(c) + ")", typ: aggResultType(x, a.schema)})
		case expr.AggAvg:
			s, c := p.temp("xp"), p.temp("xp")
			sel = append(sel, fmt.Sprintf("sum(%s) AS %s", x.Arg.String(), s),
				fmt.Sprintf("count(%s) AS %s", x.Arg.String(), c))
			partials = append(partials, partial{cols: []string{s, c},
				reagg: fmt.Sprintf("sum(%s) / sum(%s)", quoteIdent(s), quoteIdent(c)), typ: storage.TypeFloat})
		default:
			return nil, fmt.Errorf("core: unsupported extra aggregate %s with the from-FV strategy", x.Fn)
		}
	}
	sb.WriteString(strings.Join(sel, ", "))
	sb.WriteString(" FROM ")
	sb.WriteString(a.table)
	sb.WriteString(a.whereSQL())
	sb.WriteString(" GROUP BY ")
	sb.WriteString(joinIdents(fineGroup))

	vopts := opts.Vpct
	vopts.UseUpdate = false // the transpose step reads FV columns by name
	vopts.MissingRows = MissingNone
	sub, err := p.PlanSQL(sb.String(), Options{Vpct: vopts})
	if err != nil {
		return nil, fmt.Errorf("core: embedded vertical plan: %w", err)
	}
	plan.Steps = append(plan.Steps, sub.Steps...)
	plan.Cleanup = append(plan.Cleanup, sub.Cleanup...)
	fv := sub.ResultTable

	// Transpose FV: one CASE term per combination picks that row's
	// percentage; missing combinations contribute 0%.
	var vals []hvalue
	for i, c := range combos {
		cond := comboCond("", call.By, c.vals)
		vals = append(vals, hvalue{
			name: valueNames[i],
			typ:  storage.TypeFloat,
			sel:  fmt.Sprintf("sum(CASE WHEN %s THEN %s ELSE 0 END)", cond, quoteIdent(pctAlias)),
		})
	}
	var extraVals []hvalue
	for n := range extras {
		extraVals = append(extraVals, hvalue{name: extraNames[n], typ: partials[n].typ, sel: partials[n].reagg})
	}
	holder := p.emitHorizontalInserts(plan, a, fv, groupNames, vals, extraVals,
		"transpose FV into FH", a.groupCols, "")
	p.finishHorizontalPlan(plan, a, groupNames, valueNames, extraNames, holder)
	return plan, nil
}

// emitHorizontalInserts creates the FH table(s) and their INSERT … SELECT
// statements, vertically partitioning when the column count would exceed
// MaxColumns. Every partition repeats the grouping columns as its key;
// extras land in the first partition. It returns which table holds each
// value/extra column, for partition reassembly.
func (p *Planner) emitHorizontalInserts(plan *Plan, a *analysis, fromTable string,
	groupNames []string, vals []hvalue, extraVals []hvalue, purpose string,
	groupCols []string, whereSQL string) map[string]string {

	keyWidth := len(groupNames)
	budget := p.MaxColumns - keyWidth
	if p.MaxColumns <= 0 {
		budget = len(vals) + len(extraVals)
	}
	var chunks [][]hvalue
	first := append(append([]hvalue{}, extraVals...), vals...)
	if len(first) <= budget {
		chunks = [][]hvalue{first}
	} else {
		// Extras plus as many value columns as fit, then remaining values.
		chunk := append([]hvalue{}, extraVals...)
		for _, v := range vals {
			if len(chunk) == budget {
				chunks = append(chunks, chunk)
				chunk = nil
			}
			chunk = append(chunk, v)
		}
		if len(chunk) > 0 {
			chunks = append(chunks, chunk)
		}
	}

	holder := make(map[string]string)
	for ci, chunk := range chunks {
		fh := p.temp("fh")
		plan.Cleanup = append(plan.Cleanup, Step{Purpose: "drop FH", SQL: "DROP TABLE IF EXISTS " + fh})
		plan.ResultTables = append(plan.ResultTables, fh)
		for _, v := range chunk {
			holder[v.name] = fh
		}
		var defs, sels []string
		for gi, g := range groupCols {
			defs = append(defs, colDef(groupNames[gi], a.schema[a.schema.ColumnIndex(g)].Type))
			sels = append(sels, quoteIdent(g))
		}
		for _, v := range chunk {
			defs = append(defs, colDef(v.name, v.typ))
			sels = append(sels, v.sel)
		}
		pkey := ""
		if len(groupCols) > 0 {
			pkey = ", PRIMARY KEY(" + joinIdents(groupNames) + ")"
		}
		label := purpose
		if len(chunks) > 1 {
			label = fmt.Sprintf("%s (partition %d/%d)", purpose, ci+1, len(chunks))
		}
		plan.Steps = append(plan.Steps,
			Step{Purpose: "create FH", SQL: fmt.Sprintf("CREATE TABLE %s (%s%s)", fh, strings.Join(defs, ", "), pkey)},
			Step{Purpose: label, SQL: fmt.Sprintf("INSERT INTO %s SELECT %s FROM %s%s%s",
				fh, strings.Join(sels, ", "), fromTable, whereSQL, groupByClause(groupCols))},
		)
	}
	plan.ResultTable = plan.ResultTables[0]
	plan.N = len(vals)
	return holder
}

// finishHorizontalPlan builds the final projection, reassembling partitions
// by joining them on the grouping columns. holder maps each value/extra
// column to the partition table that stores it.
func (p *Planner) finishHorizontalPlan(plan *Plan, a *analysis, groupNames, valueNames, extraNames []string, holder map[string]string) {
	order := ""
	if len(a.orderBy) > 0 {
		parts := make([]string, len(a.orderBy))
		for i, k := range a.orderBy {
			parts[i] = k.String()
		}
		order = " ORDER BY " + strings.Join(parts, ", ")
	} else if len(groupNames) > 0 {
		order = " ORDER BY " + joinIdents(groupNames)
	}

	if len(plan.ResultTables) == 1 {
		cols := make([]string, 0, len(groupNames)+len(valueNames)+len(extraNames))
		for _, g := range groupNames {
			cols = append(cols, quoteIdent(g))
		}
		for _, v := range valueNames {
			cols = append(cols, quoteIdent(v))
		}
		for _, x := range extraNames {
			cols = append(cols, quoteIdent(x))
		}
		plan.FinalSelect = fmt.Sprintf("SELECT %s FROM %s%s%s",
			strings.Join(cols, ", "), plan.ResultTable, order, limitClause(a))
		return
	}

	// Reassemble partitions: join every partition on the key columns.
	t0 := plan.ResultTables[0]
	var cols []string
	for _, g := range groupNames {
		cols = append(cols, t0+"."+quoteIdent(g))
	}
	for _, vn := range valueNames {
		cols = append(cols, holder[vn]+"."+quoteIdent(vn))
	}
	for _, xn := range extraNames {
		cols = append(cols, holder[xn]+"."+quoteIdent(xn))
	}
	from := t0
	var conds []string
	for _, tn := range plan.ResultTables[1:] {
		from += ", " + tn
		if len(groupNames) > 0 {
			conds = append(conds, equalityChainNullSafe(t0, tn, groupNames))
		}
	}
	where := ""
	if len(conds) > 0 {
		where = " WHERE " + strings.Join(conds, " AND ")
	}
	plan.FinalSelect = fmt.Sprintf("SELECT %s FROM %s%s%s%s",
		strings.Join(cols, ", "), from, where, order, limitClause(a))
}
