package core

import (
	"fmt"

	"repro/internal/sqlparse"
)

// parseSelect parses one SELECT statement for tests.
func parseSelect(sql string) (*sqlparse.Select, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*sqlparse.Select)
	if !ok {
		return nil, fmt.Errorf("not a SELECT: %T", stmt)
	}
	return sel, nil
}
