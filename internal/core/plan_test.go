package core

import (
	"strings"
	"testing"

	"repro/internal/expr"
	"repro/internal/storage"
	"repro/internal/value"
)

func TestUniqueNames(t *testing.T) {
	cases := []struct {
		in, want []string
	}{
		{[]string{"a", "b"}, []string{"a", "b"}},
		{[]string{"a", "a"}, []string{"a", "a_1"}},
		{[]string{"a", "A"}, []string{"a", "A_1"}}, // case-insensitive collision
		{[]string{"a", "a", "a_1"}, []string{"a", "a_1", "a_1_1"}},
		{[]string{"a", "a", "a"}, []string{"a", "a_1", "a_2"}},
	}
	for _, c := range cases {
		got := uniqueNames(append([]string{}, c.in...))
		if strings.Join(got, ",") != strings.Join(c.want, ",") {
			t.Errorf("uniqueNames(%v) = %v, want %v", c.in, got, c.want)
		}
		// Output must be collision-free.
		seen := map[string]bool{}
		for _, n := range got {
			l := strings.ToLower(n)
			if seen[l] {
				t.Errorf("uniqueNames(%v) still collides: %v", c.in, got)
			}
			seen[l] = true
		}
	}
}

func TestQuoteIdentCore(t *testing.T) {
	cases := map[string]string{
		"simple":   "simple",
		"With_0":   "With_0",
		"Mo":       "Mo",
		"NULL":     `"NULL"`,   // keyword
		"select":   `"select"`, // keyword, any case
		"0leading": `"0leading"`,
		"a b":      `"a b"`,
		`qu"ote`:   `"qu""ote"`,
		"d=1,m=2":  `"d=1,m=2"`,
	}
	for in, want := range cases {
		if got := quoteIdent(in); got != want {
			t.Errorf("quoteIdent(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestEqualityChains(t *testing.T) {
	plain := equalityChain("a", "b", []string{"x", "y"})
	if plain != "a.x = b.x AND a.y = b.y" {
		t.Errorf("equalityChain = %q", plain)
	}
	safe := equalityChainNullSafe("a", "b", []string{"x"})
	if safe != "(a.x = b.x OR (a.x IS NULL AND b.x IS NULL))" {
		t.Errorf("null-safe chain = %q", safe)
	}
}

func TestComboLabelAndCond(t *testing.T) {
	one := combo{vals: []value.Value{value.NewString("Mo")}}
	if got := comboLabel([]string{"dweek"}, one.vals); got != "Mo" {
		t.Errorf("single label = %q", got)
	}
	two := []value.Value{value.NewInt(1), value.NewString("x")}
	if got := comboLabel([]string{"d", "m"}, two); got != "d=1,m=x" {
		t.Errorf("multi label = %q", got)
	}
	if got := comboLabel([]string{"d"}, []value.Value{value.Null}); got != "NULL" {
		t.Errorf("null label = %q", got)
	}
	cond := comboCond("", []string{"d", "m"}, []value.Value{value.NewInt(1), value.Null})
	if cond != "d = 1 AND m IS NULL" {
		t.Errorf("cond = %q", cond)
	}
	cond = comboCond("t", []string{"d"}, []value.Value{value.NewString("o'x")})
	if cond != "t.d = 'o''x'" {
		t.Errorf("qualified cond = %q", cond)
	}
}

func TestExprTypeInference(t *testing.T) {
	schema := storage.Schema{
		{Name: "i", Type: storage.TypeInt},
		{Name: "f", Type: storage.TypeFloat},
		{Name: "s", Type: storage.TypeString},
	}
	cases := []struct {
		e    expr.Expr
		want storage.ColumnType
	}{
		{expr.Col("i"), storage.TypeInt},
		{expr.Col("f"), storage.TypeFloat},
		{expr.Col("s"), storage.TypeString},
		{expr.Col("unknown"), storage.TypeFloat},
		{expr.NewLiteral(value.NewInt(1)), storage.TypeInt},
		{expr.NewLiteral(value.NewString("x")), storage.TypeString},
		{expr.NewLiteral(value.NewBool(true)), storage.TypeBool},
		{&expr.BinaryOp{Op: "+", Left: expr.Col("i"), Right: expr.Col("i")}, storage.TypeInt},
		{&expr.BinaryOp{Op: "+", Left: expr.Col("i"), Right: expr.Col("f")}, storage.TypeFloat},
		{&expr.BinaryOp{Op: "/", Left: expr.Col("i"), Right: expr.Col("i")}, storage.TypeFloat},
		{&expr.UnaryOp{Op: "-", Operand: expr.Col("i")}, storage.TypeInt},
		{&expr.Case{Whens: []expr.When{{Cond: expr.Col("i"), Result: expr.Col("f")}}}, storage.TypeFloat},
	}
	for _, c := range cases {
		if got := exprType(c.e, schema); got != c.want {
			t.Errorf("exprType(%s) = %v, want %v", c.e, got, c.want)
		}
	}
}

func TestAggResultTypeInference(t *testing.T) {
	schema := storage.Schema{{Name: "i", Type: storage.TypeInt}}
	cases := []struct {
		call *expr.AggCall
		want storage.ColumnType
	}{
		{&expr.AggCall{Fn: expr.AggCount, Star: true}, storage.TypeInt},
		{&expr.AggCall{Fn: expr.AggAvg, Arg: expr.Col("i")}, storage.TypeFloat},
		{&expr.AggCall{Fn: expr.AggSum, Arg: expr.Col("i")}, storage.TypeInt},
		{&expr.AggCall{Fn: expr.AggMin, Arg: expr.Col("i")}, storage.TypeInt},
		{&expr.AggCall{Fn: expr.AggVpct, Arg: expr.Col("i")}, storage.TypeFloat},
	}
	for _, c := range cases {
		if got := aggResultType(c.call, schema); got != c.want {
			t.Errorf("aggResultType(%s) = %v, want %v", c.call, got, c.want)
		}
	}
}

func TestLiteralSQL(t *testing.T) {
	if got := literalSQL(value.NewString("o'x")); got != "'o''x'" {
		t.Errorf("literalSQL string = %q", got)
	}
	if got := literalSQL(value.NewInt(5)); got != "5" {
		t.Errorf("literalSQL int = %q", got)
	}
	if got := literalSQL(value.Null); got != "NULL" {
		t.Errorf("literalSQL null = %q", got)
	}
}

func TestPlanSQLOnNonSelect(t *testing.T) {
	p := newSalesPlanner(t)
	if _, err := p.PlanSQL("UPDATE sales SET salesAmt = 0", DefaultOptions()); err == nil {
		t.Error("PlanSQL on UPDATE must fail")
	}
	if _, err := p.PlanSQL("not sql", DefaultOptions()); err == nil {
		t.Error("PlanSQL on garbage must fail")
	}
}
