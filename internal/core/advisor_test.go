package core

import (
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/storage"
	"repro/internal/value"
)

func TestAdviseVerticalDefaults(t *testing.T) {
	p := newSalesPlanner(t)
	sel, err := parseSelect(vpctSales)
	if err != nil {
		t.Fatal(err)
	}
	opts, err := p.Advise(sel)
	if err != nil {
		t.Fatal(err)
	}
	if opts.Vpct.UseUpdate || opts.Vpct.FjFromF || !opts.Vpct.SubkeyIndexes {
		t.Errorf("vertical advice = %+v", opts.Vpct)
	}
}

func TestAdviseHorizontalSelectivity(t *testing.T) {
	// Low-cardinality BY over a large table → direct from F; wide BY →
	// from FV.
	cat := storage.NewCatalog()
	tab, err := cat.Create("f", storage.Schema{
		{Name: "g", Type: storage.TypeInt},
		{Name: "narrow", Type: storage.TypeInt},
		{Name: "wide", Type: storage.TypeInt},
		{Name: "a", Type: storage.TypeInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 4000; i++ {
		tab.AppendRow([]value.Value{
			value.NewInt(int64(rng.Intn(500))),
			value.NewInt(int64(rng.Intn(3))),
			value.NewInt(int64(rng.Intn(120))),
			value.NewInt(int64(rng.Intn(10))),
		})
	}
	p := NewPlanner(engine.New(cat))

	sel, _ := parseSelect("SELECT g, Hpct(a BY narrow) FROM f GROUP BY g")
	opts, err := p.Advise(sel)
	if err != nil {
		t.Fatal(err)
	}
	// g(500) × narrow(3) ≈ 1500 fine groups of 4000 rows → fine*4 > n and
	// N=3 < 50 → direct.
	if opts.Hpct.FromFV {
		t.Errorf("narrow BY should advise direct from F: %+v", opts.Hpct)
	}

	sel, _ = parseSelect("SELECT g, Hpct(a BY wide) FROM f GROUP BY g")
	opts, err = p.Advise(sel)
	if err != nil {
		t.Fatal(err)
	}
	if !opts.Hpct.FromFV {
		t.Errorf("wide BY should advise from FV: %+v", opts.Hpct)
	}

	sel, _ = parseSelect("SELECT g, sum(a BY wide) FROM f GROUP BY g")
	opts, err = p.Advise(sel)
	if err != nil {
		t.Fatal(err)
	}
	if opts.Hagg.Method != HaggCASE || !opts.Hagg.FromFV {
		t.Errorf("hagg advice = %+v", opts.Hagg)
	}
}

func TestAdviseSmallFineGroupingPrefersFV(t *testing.T) {
	// Tiny fine grouping over many rows → pre-aggregation wins even for a
	// narrow BY list.
	cat := storage.NewCatalog()
	tab, _ := cat.Create("f", storage.Schema{
		{Name: "g", Type: storage.TypeInt},
		{Name: "d", Type: storage.TypeInt},
		{Name: "a", Type: storage.TypeInt},
	})
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 5000; i++ {
		tab.AppendRow([]value.Value{
			value.NewInt(int64(rng.Intn(2))),
			value.NewInt(int64(rng.Intn(3))),
			value.NewInt(int64(rng.Intn(10))),
		})
	}
	p := NewPlanner(engine.New(cat))
	sel, _ := parseSelect("SELECT g, Hpct(a BY d) FROM f GROUP BY g")
	opts, err := p.Advise(sel)
	if err != nil {
		t.Fatal(err)
	}
	if !opts.Hpct.FromFV {
		t.Errorf("6 fine groups over 5000 rows should advise from FV: %+v", opts.Hpct)
	}
}

func TestAdviseStandardQuery(t *testing.T) {
	p := newSalesPlanner(t)
	sel, _ := parseSelect("SELECT state, sum(salesAmt) FROM sales GROUP BY state")
	if _, err := p.Advise(sel); err != nil {
		t.Fatal(err)
	}
}
