package core

import (
	"sort"

	"repro/internal/storage"
	"repro/internal/value"
)

// pct_cache_entries exposes the planner's summary cache through the
// introspection catalog: one row per cached summary with its lifecycle
// state, so "why did this query miss the cache" is answerable with a SELECT
// instead of a debugger. Registered alongside the engine-owned pct_stat_*
// tables (the engine cannot build this one itself — the cache lives here).

var cacheEntriesSchema = storage.Schema{
	{Name: "cache_key", Type: storage.TypeString},
	{Name: "table_name", Type: storage.TypeString},
	{Name: "base_table", Type: storage.TypeString},
	{Name: "state", Type: storage.TypeString},
	{Name: "epoch", Type: storage.TypeInt},
	{Name: "base_rows", Type: storage.TypeInt},
	{Name: "pending_rows", Type: storage.TypeInt},
	{Name: "deltable", Type: storage.TypeInt},
}

// RegisterCacheIntrospection registers the pct_cache_entries virtual
// relation over this planner's summary cache.
func (p *Planner) RegisterCacheIntrospection() error {
	return p.Eng.RegisterVirtual("pct_cache_entries", cacheEntriesSchema, p.buildCacheEntries)
}

// UnregisterCacheIntrospection removes the relation.
func (p *Planner) UnregisterCacheIntrospection() {
	p.Eng.UnregisterVirtual("pct_cache_entries")
}

// cacheEntryState classifies an entry for display. Mirrors the lookup
// decision in cacheLookup: building → not yet usable, invalid → will be
// discarded, pending → next hit takes the delta path, clean → hit as is.
func cacheEntryState(e *summaryEntry) string {
	switch {
	case !e.built:
		return "building"
	case e.invalid:
		return "invalid"
	case e.pendTo > e.pendFrom:
		return "pending"
	default:
		return "clean"
	}
}

func (p *Planner) buildCacheEntries() (*storage.Table, error) {
	t, err := storage.NewTable("pct_cache_entries", cacheEntriesSchema)
	if err != nil {
		return nil, err
	}
	p.mu.Lock()
	entries := make([]*summaryEntry, 0, len(p.summaries))
	for _, e := range p.summaries {
		entries = append(entries, e)
	}
	// Rows are rendered under the planner lock: entry fields are mu-guarded
	// and the snapshot must be coherent per entry.
	sort.Slice(entries, func(i, j int) bool { return entries[i].key < entries[j].key })
	for _, e := range entries {
		deltable := int64(0)
		if e.delta != nil {
			deltable = 1
		}
		if _, err := t.AppendRow([]value.Value{
			value.NewString(e.key),
			value.NewString(e.table),
			value.NewString(e.baseTable),
			value.NewString(cacheEntryState(e)),
			value.NewInt(e.epoch),
			value.NewInt(int64(e.baseRows)),
			value.NewInt(int64(e.pendTo - e.pendFrom)),
			value.NewInt(deltable),
		}); err != nil {
			p.mu.Unlock()
			return nil, err
		}
	}
	p.mu.Unlock()
	return t, nil
}
