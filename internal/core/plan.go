package core

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"repro/internal/diag"
	"repro/internal/engine"
	"repro/internal/expr"
	"repro/internal/obs"
	"repro/internal/sqlparse"
	"repro/internal/storage"
	"repro/internal/value"
)

// Plan-level metrics (see internal/obs). Steps count both SQL and native
// steps; the per-statement engine metrics accumulate underneath.
var (
	mPlanExecutions = obs.Default.Counter("core.plans")
	mPlanSteps      = obs.Default.Counter("core.steps")
)

// Step is one statement of a generated plan. Most steps are SQL text; a few
// optional optimizations (the hash-pivot evaluation of CASE-style
// transposition, which the paper describes as a query-optimizer change) run
// as native steps because they cannot be expressed in standard SQL.
type Step struct {
	// Purpose says what the step does, for EXPLAIN-style display.
	Purpose string
	// SQL is the statement text; empty for native steps.
	SQL string
	// native, when set, runs instead of SQL. It receives the execution
	// context (cancellation and Limits flow through it exactly as they do
	// for SQL statements), the plan's parallelism so native steps can
	// partition their scans the same way the engine's aggregation path does,
	// and the step's trace span (nil when the plan runs untraced) to hang
	// stage spans from.
	native func(ctx context.Context, eng *engine.Engine, parallelism int, span *obs.Span) error
}

// Plan is a generated evaluation plan for a percentage/horizontal query.
type Plan struct {
	// Class is the query class the plan evaluates.
	Class QueryClass
	// Steps build the result table(s), in order.
	Steps []Step
	// FinalSelect projects the user-facing result from ResultTable
	// (ordering, aliases). It is separate from Steps so benchmarks can time
	// plan execution the way the paper does, without the final cursor.
	FinalSelect string
	// ResultTable holds the computed result (FV or FH).
	ResultTable string
	// ResultTables lists every partition when a horizontal result exceeded
	// MaxColumns and was vertically partitioned; ResultTable is the first.
	ResultTables []string
	// Cleanup drops the plan's temporary tables, including the result
	// table(s).
	Cleanup []Step
	// N is the number of horizontal result columns (0 for vertical plans).
	N int
	// Parallelism is the worker count the plan's steps execute with,
	// stamped from Options.Parallelism (0 = one worker per CPU, 1 =
	// sequential, n > 1 = n workers). It never changes the generated SQL —
	// only how the engine folds each aggregation.
	Parallelism int
	// Limits is the resource budget every step executes under, stamped from
	// Options.Limits. The zero value defers to the engine-wide defaults
	// (engine.SetLimits); a non-zero value overrides them for this plan.
	Limits engine.Limits
	// cacheRegs are summary-cache entries this plan registered
	// provisionally at plan time; cleanup abandons any it never published
	// (see cacheAbandon).
	cacheRegs []*summaryEntry
	// cacheHits counts summary-cache entries this plan reused (clean or
	// delta-maintained) instead of recomputing — the per-statement signal
	// the introspection catalog surfaces in pct_stat_statements.
	cacheHits int
}

// CacheHits reports how many summaries the plan reused from the cache.
func (p *Plan) CacheHits() int { return p.cacheHits }

// CacheMisses reports how many summaries the plan had to compute and
// register (shareable aggregates that were not cached yet).
func (p *Plan) CacheMisses() int { return len(p.cacheRegs) }

// SQL renders every build step as a script.
func (p *Plan) SQL() string {
	var sb strings.Builder
	for _, s := range p.Steps {
		sb.WriteString("-- ")
		sb.WriteString(s.Purpose)
		sb.WriteString("\n")
		if s.SQL == "" {
			sb.WriteString("-- (native step)\n")
			continue
		}
		sb.WriteString(s.SQL)
		sb.WriteString(";\n")
	}
	if p.FinalSelect != "" {
		sb.WriteString("-- final result\n")
		sb.WriteString(p.FinalSelect)
		sb.WriteString(";\n")
	}
	return sb.String()
}

// Planner analyzes percentage queries and generates evaluation plans. It
// needs an engine: horizontal plans require the feedback process the paper
// describes (reading the distinct BY-column combinations to lay out result
// columns), and Execute runs plans.
type Planner struct {
	// Eng is the engine plans are generated for and executed on.
	Eng *engine.Engine
	// MaxColumns is the DBMS column limit per table; horizontal results
	// wider than this are vertically partitioned. Defaults to 2048.
	MaxColumns int
	// TempPrefix prefixes generated temporary table names. Defaults to
	// "pct".
	TempPrefix string

	mu  sync.Mutex // guards seq and the summary cache
	seq int

	// Shared summaries (the paper's future-work item "a set of percentage
	// queries on the same table may be efficiently evaluated using shared
	// summaries"): when enabled, structurally identical Fk/Fj aggregates
	// are computed once and reused across plans. Entries are stamped with
	// the base table's modification epoch and maintained through the
	// engine's DML hook — appends refresh distributive summaries
	// incrementally, everything else invalidates (see cache.go). Cache
	// tables are dropped by FlushSummaries, not by per-plan cleanup.
	shareSummaries bool
	summaries      map[string]*summaryEntry // structural key → entry
	summaryDrops   []string
	cstats         CacheStats
}

// NewPlanner returns a planner over the engine with default limits.
func NewPlanner(eng *engine.Engine) *Planner {
	return &Planner{Eng: eng, MaxColumns: 2048, TempPrefix: "pct"}
}

// ShareSummaries toggles the materialized summary cache. While enabled,
// plans reference cached Fk/Fj tables where a structurally identical one
// was already built by an earlier executed plan, and a DML hook installed
// on the engine keeps entries honest: appended rows are folded in
// incrementally (distributive aggregates only), any other mutation forces
// a rebuild — a cached summary is never served stale. Call FlushSummaries
// when the query batch is done. A plan's cache hit is bound at plan time:
// only one planner's cache may be live per engine.
func (p *Planner) ShareSummaries(on bool) {
	p.mu.Lock()
	p.shareSummaries = on
	if on && p.summaries == nil {
		p.summaries = make(map[string]*summaryEntry)
	}
	p.mu.Unlock()
	if p.Eng != nil {
		if on {
			p.Eng.SetDMLHook(&cacheDMLHook{p: p})
		} else {
			p.Eng.SetDMLHook(nil)
		}
	}
}

// FlushSummaries drops every table the summary cache ever registered —
// live entries and the retired copies incremental refreshes replaced.
func (p *Planner) FlushSummaries() {
	p.mu.Lock()
	drops := p.summaryDrops
	p.summaryDrops = nil
	p.summaries = map[string]*summaryEntry{}
	p.mu.Unlock()
	for _, t := range drops {
		_, _ = p.Eng.ExecSQL("DROP TABLE IF EXISTS " + t)
	}
}

// temp returns a fresh temporary table name. Safe for concurrent planning
// (the paper's intensive-database future-work scenario: users concurrently
// submitting percentage queries).
func (p *Planner) temp(kind string) string {
	p.mu.Lock()
	p.seq++
	n := p.seq
	p.mu.Unlock()
	return fmt.Sprintf("%s_%s_%d", p.TempPrefix, kind, n)
}

// Options selects evaluation strategies per query class.
type Options struct {
	Vpct VpctOptions
	Hpct HpctOptions
	Hagg HaggOptions
	// Parallelism is the aggregation worker count for the plan's execution:
	// 0 = one worker per CPU (the automatic mode falls back to the
	// sequential fold below a small input threshold), 1 = the sequential
	// path, n > 1 = exactly n workers, forced even on tiny inputs. Results
	// are identical across settings — the partitioned fold merges
	// per-worker accumulators in pinned partition order, reproducing the
	// sequential group order exactly (see internal/difftest).
	Parallelism int
	// Limits bounds what the plan's execution may consume (see
	// engine.Limits). MaxPivotColumns is additionally enforced at plan time,
	// before any step runs: a horizontal layout wider than the cap fails
	// planning with PCT204 instead of building an oversized CREATE TABLE.
	Limits engine.Limits
}

// DefaultOptions returns the strategies the paper's evaluation found best
// overall: Fj from Fk, INSERT-based FV, subkey indexes on Fj/Fk, FH direct
// from F, CASE-based horizontal aggregation direct from F.
func DefaultOptions() Options {
	return Options{
		Vpct: VpctOptions{SubkeyIndexes: true},
		Hpct: HpctOptions{},
		Hagg: HaggOptions{},
	}
}

// VpctOptions are the vertical-percentage strategy knobs of Table 4.
type VpctOptions struct {
	// FjFromF computes the coarse totals Fj from F instead of from the
	// partial aggregate Fk (Table 4 column 4 turns the partial-aggregate
	// optimization off by setting this).
	FjFromF bool
	// UseUpdate produces FV by updating Fk in place instead of inserting
	// into a third table (Table 4 column 3). Saves the third temporary
	// table when disk is tight, at a large time cost when |FV| ≈ |F|.
	UseUpdate bool
	// SubkeyIndexes creates identical indexes on the common subkey of Fj
	// and Fk before the division join (Table 4 column 2 drops them).
	SubkeyIndexes bool
	// MissingRows selects the optional missing-row treatment.
	MissingRows MissingRowsMode
}

// MissingRowsMode selects the paper's optional missing-row treatments for
// vertical percentages.
type MissingRowsMode int

// Missing-row treatments.
const (
	// MissingNone leaves missing (Dj+1..Dk) combinations absent, the
	// default.
	MissingNone MissingRowsMode = iota
	// MissingPost inserts zero-percentage rows into the result table for
	// absent combinations (post-processing).
	MissingPost
	// MissingPre inserts zero-measure rows into F before aggregating
	// (pre-processing). It mutates F and, as the paper warns, skews
	// Vpct(1) row-count percentages.
	MissingPre
)

// HpctOptions are the horizontal-percentage strategy knobs of Table 5.
type HpctOptions struct {
	// FromFV computes FH from the vertical percentage table FV instead of
	// directly from F.
	FromFV bool
	// Vpct configures the embedded vertical plan when FromFV is set.
	Vpct VpctOptions
	// HashPivot replaces the N-CASE-per-row evaluation with the O(1)
	// hash-based search the paper proposes as a query-optimizer
	// improvement. Runs as a native step.
	HashPivot bool
}

// HaggMethod selects the companion paper's evaluation strategy.
type HaggMethod int

// Horizontal-aggregation methods.
const (
	// HaggCASE evaluates with N CASE terms in one aggregation (the
	// efficient strategy).
	HaggCASE HaggMethod = iota
	// HaggSPJ evaluates with N filtered aggregate tables assembled by left
	// outer joins (the relational-only strategy).
	HaggSPJ
)

// HaggOptions are the companion paper's strategy knobs (its Table 3).
type HaggOptions struct {
	Method HaggMethod
	// FromFV aggregates from the vertical pre-aggregate FV instead of F
	// (the indirect sub-strategy).
	FromFV bool
	// HashPivot applies the hash-based CASE shortcut (CASE method only).
	HashPivot bool
}

// Plan analyzes the query and generates a plan using the given options.
// Standard queries yield a single-step plan that runs the query as is.
func (p *Planner) Plan(sel *sqlparse.Select, opts Options) (*Plan, error) {
	a, err := p.analyze(sel)
	if err != nil {
		return nil, err
	}
	var plan *Plan
	switch {
	case a.hasSets:
		// ROLLUP/CUBE/GROUPING SETS plan the whole lattice from one finest
		// summary, whatever the aggregate class.
		plan, err = p.planLattice(a, opts)
	case a.class == ClassStandard:
		plan = &Plan{Class: ClassStandard, FinalSelect: sel.String()}
	case a.class == ClassVertical:
		plan, err = p.planVertical(a, opts.Vpct)
	case a.class == ClassHorizontalPct:
		plan, err = p.planHorizontalPct(a, opts.Hpct)
	case a.class == ClassHorizontalAgg:
		plan, err = p.planHorizontalAgg(a, opts.Hagg)
	default:
		return nil, fmt.Errorf("core: unplannable class %v", a.class)
	}
	if err != nil {
		return nil, err
	}
	// Parallelism and Limits are stamped centrally: they apply to every
	// class and never alter the generated SQL, only how the plan executes.
	plan.Parallelism = opts.Parallelism
	plan.Limits = opts.Limits
	// The pivot-width cap is the one limit checkable before execution: the
	// feedback pass has already counted the result columns, so an oversized
	// layout fails here instead of mid-evaluation.
	if lim := opts.Limits; lim.MaxPivotColumns > 0 && plan.N > lim.MaxPivotColumns {
		return nil, &engine.LimitError{
			PCTCode:  diag.CodePivotLimit,
			Resource: "pivot-column",
			Limit:    int64(lim.MaxPivotColumns),
		}
	}
	return plan, nil
}

// PlanSQL parses one SELECT and plans it.
func (p *Planner) PlanSQL(sql string, opts Options) (*Plan, error) {
	stmt, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, err
	}
	sel, ok := stmt.(*sqlparse.Select)
	if !ok {
		return nil, fmt.Errorf("core: expected a SELECT, got %T", stmt)
	}
	return p.Plan(sel, opts)
}

// Execute runs the plan's build steps and final select, then drops the
// plan's temporary tables. The returned result is the user-facing relation.
func (p *Planner) Execute(plan *Plan) (*engine.Result, error) {
	return p.executeIn(context.Background(), plan, nil)
}

// ExecuteCtx is Execute under a context: cancelling ctx stops the running
// step cooperatively with a typed CancelledError, and the plan's Limits (or
// the engine-wide defaults) are enforced on every step. Cleanup of the
// plan's temporary tables still runs after a cancelled step — a cancelled
// plan must not strand its temp tables.
func (p *Planner) ExecuteCtx(ctx context.Context, plan *Plan) (*engine.Result, error) {
	return p.executeIn(ctx, plan, nil)
}

// ExecuteTraced runs the plan like Execute while recording an execution
// trace: the returned root span holds one child per build step (named from
// the step's Purpose — the Vpct division join, for example, is
// root.Find("divide")), then the final select and cleanup, with engine
// statement spans and operator details nested underneath. The trace is
// returned even when execution fails, annotated with the error.
func (p *Planner) ExecuteTraced(plan *Plan) (*engine.Result, *obs.Span, error) {
	return p.ExecuteTracedCtx(context.Background(), plan)
}

// ExecuteTracedCtx is ExecuteTraced under a context (see ExecuteCtx).
func (p *Planner) ExecuteTracedCtx(ctx context.Context, plan *Plan) (*engine.Result, *obs.Span, error) {
	root := obs.NewSpan("plan " + plan.Class.String())
	root.AttrInt("parallelism", int64(plan.Parallelism))
	root.AttrInt("steps", int64(len(plan.Steps)))
	res, err := p.executeIn(ctx, plan, root)
	root.End()
	if err != nil {
		root.Attr("error", err.Error())
	}
	if res != nil {
		root.SetRows(-1, int64(len(res.Rows)))
	}
	return res, root, err
}

// planCtx attaches the plan's Limits to ctx when set, so every step — SQL
// and native — resolves the same effective budget the plan was stamped with.
func planCtx(ctx context.Context, plan *Plan) context.Context {
	if plan.Limits != (engine.Limits{}) {
		return engine.WithLimits(ctx, plan.Limits)
	}
	return ctx
}

func (p *Planner) executeIn(ctx context.Context, plan *Plan, root *obs.Span) (*engine.Result, error) {
	ctx = planCtx(ctx, plan)
	res, err := p.executeStepsIn(ctx, plan, root)
	if err != nil {
		p.cleanupIn(ctx, plan, root)
		return nil, err
	}
	if plan.FinalSelect != "" {
		sp := root.NewChild("final select")
		res, err = p.Eng.ExecSQLCtxIn(ctx, plan.FinalSelect, plan.Parallelism, sp)
		sp.End()
		if err != nil {
			sp.Attr("error", err.Error())
			p.cleanupIn(ctx, plan, root)
			return nil, err
		}
		sp.SetRows(-1, int64(len(res.Rows)))
	}
	p.cleanupIn(ctx, plan, root)
	return res, nil
}

// ExecuteSteps runs only the build steps (what the paper times) and leaves
// the temporary tables in place. Callers must CleanupPlan afterwards.
func (p *Planner) ExecuteSteps(plan *Plan) (*engine.Result, error) {
	return p.ExecuteStepsCtx(context.Background(), plan)
}

// ExecuteStepsCtx is ExecuteSteps under a context (see ExecuteCtx).
func (p *Planner) ExecuteStepsCtx(ctx context.Context, plan *Plan) (*engine.Result, error) {
	return p.executeStepsIn(planCtx(ctx, plan), plan, nil)
}

func (p *Planner) executeStepsIn(ctx context.Context, plan *Plan, root *obs.Span) (*engine.Result, error) {
	mPlanExecutions.Inc()
	var last *engine.Result
	for i := range plan.Steps {
		s := &plan.Steps[i]
		mPlanSteps.Inc()
		sp := root.NewChild("step: " + s.Purpose)
		if s.native != nil {
			err := runNative(ctx, s, p.Eng, plan.Parallelism, sp)
			sp.End()
			if err != nil {
				sp.Attr("error", err.Error())
				return nil, fmt.Errorf("core: step %q: %w", s.Purpose, err)
			}
			last = &engine.Result{}
			continue
		}
		res, err := p.Eng.ExecSQLCtxIn(ctx, s.SQL, plan.Parallelism, sp)
		sp.End()
		if err != nil {
			sp.Attr("error", err.Error())
			return nil, fmt.Errorf("core: step %q: %w", s.Purpose, err)
		}
		last = res
	}
	return last, nil
}

// runNative runs one native step under the same lifecycle a SQL statement
// gets from the engine: the per-statement deadline from the effective
// Limits, and panic containment into a typed PCT206 error so a poisoned
// native step cannot kill concurrent plan executions.
func runNative(ctx context.Context, s *Step, eng *engine.Engine, parallelism int, sp *obs.Span) (err error) {
	lim := eng.Limits()
	if l, ok := engine.LimitsFromContext(ctx); ok {
		lim = l
	}
	if lim.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, lim.Timeout)
		defer cancel()
	}
	defer func() {
		if r := recover(); r != nil {
			err = engine.NewPanicError("step "+s.Purpose, r)
			// Close the spans the unwind skipped past.
			sp.EndAll("panic-unwind")
		}
	}()
	return s.native(ctx, eng, parallelism, sp)
}

// CleanupPlan drops the plan's temporary tables. Errors are ignored: a
// failed plan may not have created all of them.
func (p *Planner) CleanupPlan(plan *Plan) {
	p.cleanupIn(context.Background(), plan, nil)
}

// cleanupIn drops the temporaries under the plan context's values — so a
// plan whose statements were excluded from introspection
// (WithoutIntrospection) does not record its own DROPs either — but not its
// cancellation: a cancelled or timed-out plan must still drop what it
// created.
func (p *Planner) cleanupIn(ctx context.Context, plan *Plan, root *obs.Span) {
	p.cacheAbandon(plan)
	if len(plan.Cleanup) == 0 {
		return
	}
	ctx = context.WithoutCancel(ctx)
	sp := root.NewChild("cleanup")
	n := 0
	for _, s := range plan.Cleanup {
		if s.SQL != "" {
			_, _ = p.Eng.ExecSQLCtx(ctx, s.SQL)
			n++
		}
	}
	sp.End()
	sp.SetRows(int64(n), -1)
}

// ----- shared generation helpers -----

// exprType infers the storage type of a scalar expression over F.
func exprType(e expr.Expr, schema storage.Schema) storage.ColumnType {
	switch n := e.(type) {
	case *expr.ColumnRef:
		if i := schema.ColumnIndex(n.Name); i >= 0 {
			return schema[i].Type
		}
		return storage.TypeFloat
	case *expr.Literal:
		switch n.Val.Kind() {
		case value.KindInt:
			return storage.TypeInt
		case value.KindString:
			return storage.TypeString
		case value.KindBool:
			return storage.TypeBool
		default:
			return storage.TypeFloat
		}
	case *expr.BinaryOp:
		if n.Op == "/" {
			return storage.TypeFloat
		}
		lt, rt := exprType(n.Left, schema), exprType(n.Right, schema)
		if lt == storage.TypeInt && rt == storage.TypeInt {
			return storage.TypeInt
		}
		return storage.TypeFloat
	case *expr.UnaryOp:
		return exprType(n.Operand, schema)
	case *expr.Case:
		for _, w := range n.Whens {
			return exprType(w.Result, schema)
		}
		return storage.TypeFloat
	default:
		return storage.TypeFloat
	}
}

// aggResultType infers the storage type of a standard aggregate over F.
func aggResultType(call *expr.AggCall, schema storage.Schema) storage.ColumnType {
	switch call.Fn {
	case expr.AggCount:
		return storage.TypeInt
	case expr.AggAvg, expr.AggVpct, expr.AggHpct:
		return storage.TypeFloat
	default: // sum, min, max follow the argument
		if call.Arg == nil {
			return storage.TypeFloat
		}
		return exprType(call.Arg, schema)
	}
}

// colDef renders one CREATE TABLE column.
func colDef(name string, t storage.ColumnType) string {
	return quoteIdent(name) + " " + t.String()
}

// quoteIdent quotes an identifier when needed: generated horizontal column
// names may contain arbitrary characters (a NULL dimension value labels its
// column "NULL") or collide with SQL keywords.
func quoteIdent(s string) string {
	simple := s != ""
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !(c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || i > 0 && c >= '0' && c <= '9') {
			simple = false
			break
		}
	}
	if simple && !sqlparse.IsKeyword(s) {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

// equalityChainNullSafe renders the NULL-safe join condition
// "(a.c = b.c OR (a.c IS NULL AND b.c IS NULL)) AND …". Plain SQL equality
// never matches NULL keys, so the paper's literal join statements silently
// drop groups whose dimension value is NULL; GROUP BY, however, treats NULL
// as one group, and Vpct/Hpct inherit GROUP BY semantics. The engine
// recognizes this disjunction and evaluates it as a null-safe hash-join
// key.
func equalityChainNullSafe(a, b string, cols []string) string {
	parts := make([]string, len(cols))
	for i, c := range cols {
		ac := a + "." + quoteIdent(c)
		bc := b + "." + quoteIdent(c)
		parts[i] = fmt.Sprintf("(%s = %s OR (%s IS NULL AND %s IS NULL))", ac, bc, ac, bc)
	}
	return strings.Join(parts, " AND ")
}

// literalSQL renders a value as a SQL literal.
func literalSQL(v value.Value) string {
	if v.Kind() == value.KindString {
		return "'" + strings.ReplaceAll(v.Str(), "'", "''") + "'"
	}
	return v.String()
}

// whereSuffix renders " WHERE <cond>" or "".
func whereSuffix(w expr.Expr) string {
	if w == nil {
		return ""
	}
	return " WHERE " + w.String()
}

// joinIdents renders a comma list of identifiers.
func joinIdents(cols []string) string {
	out := make([]string, len(cols))
	for i, c := range cols {
		out[i] = quoteIdent(c)
	}
	return strings.Join(out, ", ")
}

// qualified renders t.c identifiers as a comma list.
func qualifiedList(table string, cols []string) string {
	out := make([]string, len(cols))
	for i, c := range cols {
		out[i] = table + "." + quoteIdent(c)
	}
	return strings.Join(out, ", ")
}

// equalityChain renders "a.c1 = b.c1 AND a.c2 = b.c2 …".
func equalityChain(a, b string, cols []string) string {
	parts := make([]string, len(cols))
	for i, c := range cols {
		parts[i] = a + "." + quoteIdent(c) + " = " + b + "." + quoteIdent(c)
	}
	return strings.Join(parts, " AND ")
}

// uniqueNames disambiguates proposed column names, preserving order.
func uniqueNames(names []string) []string {
	seen := make(map[string]int, len(names))
	out := make([]string, len(names))
	for i, n := range names {
		key := strings.ToLower(n)
		if c, dup := seen[key]; dup {
			for {
				c++
				cand := fmt.Sprintf("%s_%d", n, c)
				if _, taken := seen[strings.ToLower(cand)]; !taken {
					seen[key] = c
					seen[strings.ToLower(cand)] = 0
					out[i] = cand
					break
				}
			}
			continue
		}
		seen[key] = 0
		out[i] = n
	}
	return out
}
