package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/engine"
	"repro/internal/storage"
	"repro/internal/value"
)

// randPlanner builds a planner over a randomly generated fact table
// F(d1, d2, d3, a) with small dimension cardinalities, occasional NULLs in
// both dimensions and measure, and signed measures (so zero totals occur).
func randPlanner(t *testing.T, rng *rand.Rand, n int) *Planner {
	t.Helper()
	cat := storage.NewCatalog()
	tab, err := cat.Create("f", storage.Schema{
		{Name: "d1", Type: storage.TypeInt},
		{Name: "d2", Type: storage.TypeInt},
		{Name: "d3", Type: storage.TypeString},
		{Name: "a", Type: storage.TypeInt},
	})
	if err != nil {
		t.Fatal(err)
	}
	strs := []string{"x", "y", "z"}
	for i := 0; i < n; i++ {
		row := []value.Value{
			value.NewInt(int64(rng.Intn(3))),
			value.NewInt(int64(rng.Intn(4))),
			value.NewString(strs[rng.Intn(3)]),
			value.NewInt(int64(rng.Intn(21) - 5)), // negatives → zero totals happen
		}
		if rng.Intn(20) == 0 {
			row[3] = value.Null
		}
		if rng.Intn(30) == 0 {
			row[rng.Intn(3)] = value.Null
		}
		if _, err := tab.AppendRow(row); err != nil {
			t.Fatal(err)
		}
	}
	return NewPlanner(engine.New(cat))
}

// cloneData copies the random table into a fresh planner so strategies
// with side effects (UPDATE rewrites temporaries only, but belt and
// braces) cannot interfere.
func runOn(t *testing.T, src *Planner, sql string, opts Options) *engine.Result {
	t.Helper()
	plan, err := src.PlanSQL(sql, opts)
	if err != nil {
		t.Fatalf("PlanSQL(%s): %v", sql, err)
	}
	res, err := src.Execute(plan)
	if err != nil {
		t.Fatalf("Execute(%s):\n%s\n%v", sql, plan.SQL(), err)
	}
	return res
}

func TestPropertyVpctStrategiesAgreeOnRandomData(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	queries := []string{
		"SELECT d1, d2, Vpct(a BY d2) FROM f GROUP BY d1, d2",
		"SELECT d1, d2, d3, Vpct(a BY d2, d3) FROM f GROUP BY d1, d2, d3",
		"SELECT d3, Vpct(a) FROM f GROUP BY d3",
		"SELECT d1, d2, Vpct(a BY d2), sum(a), count(*) FROM f GROUP BY d1, d2",
	}
	for trial := 0; trial < 5; trial++ {
		p := randPlanner(t, rng, 300+rng.Intn(500))
		for _, q := range queries {
			var base *engine.Result
			for mask := 0; mask < 8; mask++ {
				opts := Options{Vpct: VpctOptions{
					FjFromF:       mask&1 != 0,
					UseUpdate:     mask&2 != 0,
					SubkeyIndexes: mask&4 != 0,
				}}
				res := runOn(t, p, q, opts)
				if base == nil {
					base = res
					continue
				}
				sameResults(t, fmt.Sprintf("trial %d mask %d %s", trial, mask, q), base, res)
			}
		}
	}
}

func TestPropertyVpctGroupsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5; trial++ {
		p := randPlanner(t, rng, 400)
		res := runOn(t, p, "SELECT d1, d2, Vpct(a BY d2) FROM f GROUP BY d1, d2", DefaultOptions())
		sums := map[string]float64{}
		hasNull := map[string]bool{}
		for _, r := range res.Rows {
			key := r[0].String()
			if r[2].IsNull() {
				hasNull[key] = true
				continue
			}
			sums[key] += r[2].Float()
		}
		for key, s := range sums {
			if hasNull[key] {
				continue // zero/NULL totals void the invariant for the group
			}
			if math.Abs(s-1) > 1e-9 {
				t.Errorf("trial %d group %s sums to %v", trial, key, s)
			}
		}
	}
}

func TestPropertyHpctStrategiesAgreeOnRandomData(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	queries := []string{
		"SELECT d1, Hpct(a BY d2) FROM f GROUP BY d1",
		"SELECT d1, Hpct(a BY d2, d3) FROM f GROUP BY d1",
		"SELECT Hpct(a BY d3) FROM f",
		"SELECT d1, Hpct(a BY d2), sum(a), max(a) FROM f GROUP BY d1",
		"SELECT d1, Hpct(a BY d2), avg(a), count(a), min(a), count(*) FROM f GROUP BY d1",
	}
	for trial := 0; trial < 4; trial++ {
		p := randPlanner(t, rng, 300+rng.Intn(400))
		for _, q := range queries {
			base := runOn(t, p, q, Options{})
			fv := runOn(t, p, q, Options{Hpct: HpctOptions{FromFV: true, Vpct: VpctOptions{SubkeyIndexes: true}}})
			sameResults(t, "hpct direct vs fromFV: "+q, base, fv)
		}
		// Hash pivot only supports a single bare term.
		q := "SELECT d1, Hpct(a BY d2) FROM f GROUP BY d1"
		base := runOn(t, p, q, Options{})
		hp := runOn(t, p, q, Options{Hpct: HpctOptions{HashPivot: true}})
		sameResults(t, "hpct hash pivot", base, hp)
	}
}

func TestPropertyHaggStrategiesAgreeOnRandomData(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	queries := []string{
		"SELECT d1, sum(a BY d2) FROM f GROUP BY d1",
		"SELECT d1, count(a BY d2) FROM f GROUP BY d1",
		"SELECT d1, min(a BY d3), max(a BY d3) FROM f GROUP BY d1",
		"SELECT d1, avg(a BY d2) FROM f GROUP BY d1",
		"SELECT d1, sum(a BY d2, d3), count(*) FROM f GROUP BY d1",
		"SELECT sum(a BY d2) FROM f",
	}
	strategies := []Options{
		{Hagg: HaggOptions{Method: HaggCASE}},
		{Hagg: HaggOptions{Method: HaggCASE, FromFV: true}},
		{Hagg: HaggOptions{Method: HaggSPJ}},
		{Hagg: HaggOptions{Method: HaggSPJ, FromFV: true}},
	}
	for trial := 0; trial < 4; trial++ {
		p := randPlanner(t, rng, 250+rng.Intn(400))
		for _, q := range queries {
			var base *engine.Result
			for si, opts := range strategies {
				res := runOn(t, p, q, opts)
				if base == nil {
					base = res
					continue
				}
				sameResults(t, fmt.Sprintf("trial %d strategy %d %s", trial, si, q), base, res)
			}
		}
	}
}

func TestPropertyOLAPMatchesVpctOnRandomData(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 5; trial++ {
		p := randPlanner(t, rng, 300)
		q := "SELECT d1, d2, Vpct(a BY d2) FROM f GROUP BY d1, d2"
		base := runOn(t, p, q, DefaultOptions())
		sel, err := parseSelect(q)
		if err != nil {
			t.Fatal(err)
		}
		olap, err := p.OLAPEquivalent(sel)
		if err != nil {
			t.Fatal(err)
		}
		res, err := p.Eng.ExecSQL(olap)
		if err != nil {
			t.Fatalf("%s: %v", olap, err)
		}
		sameResults(t, "olap vs vpct", base, res)
	}
}

func TestPropertyHpctMatchesVpctNumbers(t *testing.T) {
	// FH[group][combo] must equal FV's (group, combo) percentage; absent
	// combinations read 0 in FH.
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 4; trial++ {
		p := randPlanner(t, rng, 400)
		v := runOn(t, p, "SELECT d1, d2, Vpct(a BY d2) FROM f GROUP BY d1, d2", DefaultOptions())
		h := runOn(t, p, "SELECT d1, Hpct(a BY d2) FROM f GROUP BY d1", DefaultOptions())
		vmap := map[string]value.Value{}
		zeroTotal := map[string]bool{}
		for _, r := range v.Rows {
			vmap[r[0].String()+"|"+r[1].String()] = r[2]
			if r[2].IsNull() {
				zeroTotal[r[0].String()] = true
			}
		}
		for _, r := range h.Rows {
			group := r[0].String()
			if zeroTotal[group] {
				continue // NULL layout differs legitimately for void groups
			}
			for ci, col := range h.Columns[1:] {
				got := r[ci+1]
				want, present := vmap[group+"|"+col]
				switch {
				case !present:
					if got.IsNull() || got.Float() != 0 { // floateq:ok exact expected value
						t.Errorf("trial %d FH[%s][%s] = %v, want 0 for absent combo", trial, group, col, got)
					}
				case want.IsNull():
					// zero-total group; skipped above
				default:
					if got.IsNull() || math.Abs(got.Float()-want.Float()) > 1e-9 {
						t.Errorf("trial %d FH[%s][%s] = %v, want %v", trial, group, col, got, want)
					}
				}
			}
		}
	}
}
