package core

import (
	"fmt"
	"strings"

	"repro/internal/expr"
	"repro/internal/sqlparse"
)

// OLAPEquivalent generates the ANSI SQL/OLAP formulation of a percentage
// query: sum() window functions with OVER (PARTITION BY …), as Section 4.2
// benchmarks against. The statement computes the same percentages in a
// single SELECT — and evaluates them the expensive way, flowing every
// detail row of F through the window computation and collapsing duplicates
// with DISTINCT afterwards.
//
// A vertical query maps directly. A horizontal (Hpct) query maps to the
// vertical form over the same parameters (GROUP BY D1..Dj ∪ BY, totals by
// D1..Dj): the answer set carries the same numbers, one per row, which is
// the comparison the paper's Table 6 makes.
func (p *Planner) OLAPEquivalent(sel *sqlparse.Select) (string, error) {
	a, err := p.analyze(sel)
	if err != nil {
		return "", err
	}
	if a.hasSets {
		// A window partition cannot vary per row the way a grouping set
		// does; there is no single-statement OVER() rewrite of a lattice.
		return "", fmt.Errorf("core: OLAP equivalents are not defined for GROUP BY %s queries", a.setsKind.Keyword())
	}
	switch a.class {
	case ClassVertical:
		return p.olapVertical(a, a.groupCols, nil)
	case ClassHorizontalPct:
		// Fine grouping = GROUP BY ∪ BY; totals = GROUP BY.
		var term *item
		for i := range a.items {
			if a.items[i].kind == itemPct {
				if term != nil {
					return "", fmt.Errorf("core: OLAP equivalent supports a single Hpct term")
				}
				term = &a.items[i]
			}
		}
		if term == nil {
			return "", fmt.Errorf("core: no Hpct term to translate")
		}
		fine := append(append([]string{}, a.groupCols...), term.agg.By...)
		return p.olapVertical(a, fine, term.agg)
	default:
		return "", fmt.Errorf("core: OLAP equivalents exist for percentage queries, not %v", a.class)
	}
}

// olapVertical renders the window-function statement for percentages over
// fineCols with per-term totals. When hterm is non-nil the query came from
// an Hpct and that single term is translated; otherwise every Vpct item is.
func (p *Planner) olapVertical(a *analysis, fineCols []string, hterm *expr.AggCall) (string, error) {
	var sel []string
	sel = append(sel, joinIdents(fineCols))

	renderTerm := func(measure string, totals []string) string {
		fineWin := fmt.Sprintf("sum(%s) OVER (PARTITION BY %s)", measure, joinIdents(fineCols))
		var totalWin string
		if len(totals) == 0 {
			totalWin = fmt.Sprintf("sum(%s) OVER ()", measure)
		} else {
			totalWin = fmt.Sprintf("sum(%s) OVER (PARTITION BY %s)", measure, joinIdents(totals))
		}
		return fmt.Sprintf("CASE WHEN %s <> 0 THEN %s / %s ELSE NULL END", totalWin, fineWin, totalWin)
	}

	if hterm != nil {
		sel = append(sel, renderTerm(hterm.Arg.String(), a.groupCols))
	} else {
		for _, it := range a.items {
			switch it.kind {
			case itemPct:
				sel = append(sel, renderTerm(it.agg.Arg.String(), a.totalsColsOf(it.agg)))
			case itemVertAgg:
				// Plain aggregates ride along as windows over the fine
				// partition; DISTINCT collapses the duplicates.
				call := *it.agg
				if call.Distinct {
					return "", fmt.Errorf("core: count(DISTINCT …) cannot be expressed as a window aggregate here")
				}
				arg := "*"
				if call.Arg != nil {
					arg = call.Arg.String()
				}
				if call.Star {
					arg = "*"
				}
				if call.Star || call.Fn == expr.AggCount {
					// count over a window: emulate with sum(1).
					sel = append(sel, fmt.Sprintf("sum(1) OVER (PARTITION BY %s)", joinIdents(fineCols)))
				} else {
					sel = append(sel, fmt.Sprintf("%s(%s) OVER (PARTITION BY %s)", call.Fn, arg, joinIdents(fineCols)))
				}
			}
		}
	}
	return fmt.Sprintf("SELECT DISTINCT %s FROM %s%s ORDER BY %s",
		strings.Join(sel, ", "), a.table, a.whereSQL(), joinIdents(fineCols)), nil
}
