package core

import (
	"fmt"
	"strings"

	"repro/internal/expr"
	"repro/internal/storage"
)

// haggTerm is one analyzed horizontal-aggregation select item.
type haggTerm struct {
	itemIdx int
	call    *expr.AggCall
	combos  []combo
}

// planHorizontalAgg generates plans for the companion paper's horizontal
// aggregations: any standard aggregate with a BY subgrouping list. Two
// strategies exist (its Table 3): CASE — one aggregation whose terms are
// CASE expressions — and SPJ — one filtered aggregate table per combination
// assembled with left outer joins. Each runs either directly from F or
// indirectly from the vertical pre-aggregate FV.
func (p *Planner) planHorizontalAgg(a *analysis, opts HaggOptions) (*Plan, error) {
	plan := &Plan{Class: ClassHorizontalAgg}

	var terms []*haggTerm
	var extras []int
	for idx, it := range a.items {
		switch it.kind {
		case itemHoriz:
			combos, err := p.feedbackCombos(a.table, it.agg.By, a.whereSQL())
			if err != nil {
				return nil, err
			}
			if len(combos) == 0 {
				return nil, fmt.Errorf("core: horizontal aggregation over empty input: no BY combinations in %s", a.table)
			}
			terms = append(terms, &haggTerm{itemIdx: idx, call: it.agg, combos: combos})
		case itemVertAgg:
			extras = append(extras, idx)
		}
	}
	if len(terms) == 0 {
		return nil, fmt.Errorf("core: horizontal-aggregation plan without BY terms")
	}
	if opts.FromFV {
		for _, t := range terms {
			if t.call.Distinct {
				return nil, fmt.Errorf("core: count(DISTINCT …) is not distributive; the from-FV strategy cannot evaluate it — use the direct strategy")
			}
		}
		for _, idx := range extras {
			if a.items[idx].agg.Distinct {
				return nil, fmt.Errorf("core: count(DISTINCT …) extra terms require the direct strategy")
			}
		}
	}

	// Output naming, exactly as for Hpct.
	var names []string
	names = append(names, a.groupCols...)
	multi := len(terms) > 1
	for _, t := range terms {
		prefix := ""
		if multi {
			if al := a.items[t.itemIdx].alias; al != "" {
				prefix = al + ":"
			} else if cr, ok := t.call.Arg.(*expr.ColumnRef); ok {
				prefix = string(t.call.Fn) + "_" + cr.Name + ":"
			} else {
				prefix = fmt.Sprintf("%s%d:", t.call.Fn, t.itemIdx)
			}
		}
		for _, c := range t.combos {
			names = append(names, prefix+c.label)
		}
	}
	for _, idx := range extras {
		if al := a.items[idx].alias; al != "" {
			names = append(names, al)
		} else {
			names = append(names, a.items[idx].agg.String())
		}
	}
	names = uniqueNames(names)
	groupNames := names[:len(a.groupCols)]
	valueNames := names[len(a.groupCols) : len(names)-len(extras)]
	extraNames := names[len(names)-len(extras):]

	// ---- source relation: F directly, or the vertical pre-aggregate FV ----
	source := a.table
	sourceWhere := a.whereSQL()
	// partialCols maps term index (or ^extraIdx for extras) to its FV
	// partial-aggregate columns.
	partialCols := map[int][]string{}
	if opts.FromFV {
		fv, err := p.emitHaggFV(plan, a, terms, extras, partialCols)
		if err != nil {
			return nil, err
		}
		source = fv
		sourceWhere = ""
	}

	switch opts.Method {
	case HaggCASE:
		if opts.HashPivot {
			if opts.FromFV || len(terms) != 1 || len(extras) != 0 {
				return nil, fmt.Errorf("core: HashPivot supports a single BY term evaluated directly from F")
			}
			return p.planHaggHashPivot(plan, a, terms[0].call, terms[0].combos, groupNames, valueNames)
		}
		var vals []hvalue
		vi := 0
		for ti, t := range terms {
			for _, c := range t.combos {
				vals = append(vals, hvalue{
					name: valueNames[vi],
					typ:  aggResultType(t.call, a.schema),
					sel:  p.haggCaseTerm(ti, t, comboCond("", t.call.By, c.vals), opts.FromFV, partialCols),
				})
				vi++
			}
		}
		var extraVals []hvalue
		for xi, idx := range extras {
			extraVals = append(extraVals, hvalue{
				name: extraNames[xi],
				typ:  aggResultType(a.items[idx].agg, a.schema),
				sel:  p.haggExtraSQL(xi, a.items[idx].agg, opts.FromFV, partialCols),
			})
		}
		purpose := "compute FH with CASE terms directly from F"
		if opts.FromFV {
			purpose = "compute FH with CASE terms from FV"
		}
		holder := p.emitHorizontalInserts(plan, a, source, groupNames, vals, extraVals,
			purpose, a.groupCols, sourceWhere)
		p.finishHorizontalPlan(plan, a, groupNames, valueNames, extraNames, holder)
		return plan, nil

	case HaggSPJ:
		return p.planHaggSPJ(plan, a, terms, extras, groupNames, valueNames, extraNames,
			source, sourceWhere, opts, partialCols)
	default:
		return nil, fmt.Errorf("core: unknown horizontal-aggregation method %v", opts.Method)
	}
}

// emitHaggFV builds the vertical pre-aggregate FV grouped by D1..Dj plus
// the union of every BY column, carrying distributive partials for each
// term and extra.
func (p *Planner) emitHaggFV(plan *Plan, a *analysis, terms []*haggTerm, extras []int,
	partialCols map[int][]string) (string, error) {

	fv := p.temp("fvagg")
	plan.Cleanup = append(plan.Cleanup, Step{Purpose: "drop FV", SQL: "DROP TABLE IF EXISTS " + fv})
	fineGroup := append([]string{}, a.groupCols...)
	for _, t := range terms {
		for _, b := range t.call.By {
			if !containsFold(fineGroup, b) {
				fineGroup = append(fineGroup, b)
			}
		}
	}
	var defs, sels []string
	for _, g := range fineGroup {
		defs = append(defs, colDef(g, a.schema[a.schema.ColumnIndex(g)].Type))
		sels = append(sels, quoteIdent(g))
	}
	addPartial := func(key int, call *expr.AggCall) error {
		switch call.Fn {
		case expr.AggSum, expr.AggMin, expr.AggMax:
			c := p.temp("pc")
			defs = append(defs, colDef(c, aggResultType(call, a.schema)))
			sels = append(sels, fmt.Sprintf("%s(%s) AS %s", call.Fn, call.Arg.String(), c))
			partialCols[key] = []string{c}
		case expr.AggCount:
			c := p.temp("pc")
			arg := "*"
			if call.Arg != nil {
				arg = call.Arg.String()
			}
			defs = append(defs, colDef(c, storage.TypeInt))
			sels = append(sels, fmt.Sprintf("count(%s) AS %s", arg, c))
			partialCols[key] = []string{c}
		case expr.AggAvg:
			s, c := p.temp("pc"), p.temp("pc")
			defs = append(defs, colDef(s, storage.TypeFloat), colDef(c, storage.TypeInt))
			sels = append(sels,
				fmt.Sprintf("sum(%s) AS %s", call.Arg.String(), s),
				fmt.Sprintf("count(%s) AS %s", call.Arg.String(), c))
			partialCols[key] = []string{s, c}
		default:
			return fmt.Errorf("core: unsupported horizontal aggregate %s", call.Fn)
		}
		return nil
	}
	for ti, t := range terms {
		if err := addPartial(ti, t.call); err != nil {
			return "", err
		}
	}
	for xi, idx := range extras {
		if err := addPartial(^xi, a.items[idx].agg); err != nil {
			return "", err
		}
	}
	plan.Steps = append(plan.Steps,
		Step{Purpose: "create FV", SQL: fmt.Sprintf("CREATE TABLE %s (%s)", fv, strings.Join(defs, ", "))},
		Step{Purpose: "compute the vertical pre-aggregate FV from F",
			SQL: fmt.Sprintf("INSERT INTO %s SELECT %s FROM %s%s GROUP BY %s",
				fv, strings.Join(sels, ", "), a.table, a.whereSQL(), joinIdents(fineGroup))},
	)
	return fv, nil
}

// haggCaseTerm renders one CASE-strategy aggregation term. Missing
// combinations yield NULL (matching the SPJ outer joins), unless the call
// carries a DEFAULT literal.
func (p *Planner) haggCaseTerm(ti int, t *haggTerm, cond string, fromFV bool,
	partialCols map[int][]string) string {

	call := t.call
	var s string
	if fromFV {
		pc := partialCols[ti]
		switch call.Fn {
		case expr.AggSum, expr.AggCount:
			// count re-aggregates as a sum of partial counts.
			s = fmt.Sprintf("sum(CASE WHEN %s THEN %s ELSE NULL END)", cond, quoteIdent(pc[0]))
		case expr.AggMin, expr.AggMax:
			s = fmt.Sprintf("%s(CASE WHEN %s THEN %s ELSE NULL END)", call.Fn, cond, quoteIdent(pc[0]))
		case expr.AggAvg:
			s = fmt.Sprintf("sum(CASE WHEN %s THEN %s ELSE NULL END) / sum(CASE WHEN %s THEN %s ELSE NULL END)",
				cond, quoteIdent(pc[0]), cond, quoteIdent(pc[1]))
		}
	} else {
		switch {
		case call.Distinct:
			// Presence guard: a combination with no rows at all is NULL
			// (matching the SPJ outer join); one whose rows exist but whose
			// values are all NULL counts 0 (matching count()).
			s = fmt.Sprintf("CASE WHEN count(CASE WHEN %s THEN 1 END) = 0 THEN NULL ELSE count(DISTINCT CASE WHEN %s THEN %s END) END",
				cond, cond, call.Arg.String())
		case call.Fn == expr.AggCount && call.Star:
			// sum of 1s instead of count, so a missing combination is NULL
			// (matching the SPJ outer join), not 0.
			s = fmt.Sprintf("sum(CASE WHEN %s THEN 1 ELSE NULL END)", cond)
		case call.Fn == expr.AggCount:
			s = fmt.Sprintf("CASE WHEN count(CASE WHEN %s THEN 1 END) = 0 THEN NULL ELSE count(CASE WHEN %s THEN %s END) END",
				cond, cond, call.Arg.String())
		default:
			s = fmt.Sprintf("%s(CASE WHEN %s THEN %s ELSE NULL END)", call.Fn, cond, call.Arg.String())
		}
	}
	if call.Default != nil {
		s = "coalesce(" + s + ", " + call.Default.String() + ")"
	}
	return s
}

// haggExtraSQL renders a plain vertical aggregate term over the source.
func (p *Planner) haggExtraSQL(xi int, call *expr.AggCall, fromFV bool,
	partialCols map[int][]string) string {

	if !fromFV {
		return call.String()
	}
	pc := partialCols[^xi]
	switch call.Fn {
	case expr.AggSum, expr.AggCount:
		return "sum(" + quoteIdent(pc[0]) + ")"
	case expr.AggMin, expr.AggMax:
		return string(call.Fn) + "(" + quoteIdent(pc[0]) + ")"
	case expr.AggAvg:
		return fmt.Sprintf("sum(%s) / sum(%s)", quoteIdent(pc[0]), quoteIdent(pc[1]))
	}
	return call.String()
}

// planHaggSPJ generates the relational-operators-only strategy: a key table
// F0 holding every D1..Dj combination, one filtered aggregate table FI per
// (term, combination), and left outer joins assembling FH. An empty GROUP
// BY uses a constant grouping key, as the companion paper suggests.
func (p *Planner) planHaggSPJ(plan *Plan, a *analysis, terms []*haggTerm, extras []int,
	groupNames, valueNames, extraNames []string, source, sourceWhere string,
	opts HaggOptions, partialCols map[int][]string) (*Plan, error) {

	totalWidth := len(groupNames) + len(valueNames) + len(extraNames)
	if p.MaxColumns > 0 && totalWidth > p.MaxColumns {
		return nil, fmt.Errorf("core: SPJ result needs %d columns, above MaxColumns=%d; use the CASE strategy, which partitions vertically", totalWidth, p.MaxColumns)
	}

	keyCols := a.groupCols
	keyNames := groupNames
	constKey := len(keyCols) == 0
	if constKey {
		keyNames = []string{"_g"}
	}

	// F0: the key table defining the result rows.
	f0 := p.temp("f0")
	plan.Cleanup = append(plan.Cleanup, Step{Purpose: "drop F0", SQL: "DROP TABLE IF EXISTS " + f0})
	var keyDefs []string
	if constKey {
		keyDefs = []string{colDef("_g", storage.TypeInt)}
		plan.Steps = append(plan.Steps,
			Step{Purpose: "create F0", SQL: fmt.Sprintf("CREATE TABLE %s (%s)", f0, strings.Join(keyDefs, ", "))},
			Step{Purpose: "populate F0 with the constant group", SQL: "INSERT INTO " + f0 + " VALUES (0)"},
		)
	} else {
		for gi, g := range keyCols {
			keyDefs = append(keyDefs, colDef(keyNames[gi], a.schema[a.schema.ColumnIndex(g)].Type))
		}
		plan.Steps = append(plan.Steps,
			Step{Purpose: "create F0", SQL: fmt.Sprintf("CREATE TABLE %s (%s, PRIMARY KEY(%s))",
				f0, strings.Join(keyDefs, ", "), joinIdents(keyNames))},
			Step{Purpose: "populate F0 with every D1..Dj combination",
				SQL: fmt.Sprintf("INSERT INTO %s SELECT DISTINCT %s FROM %s%s",
					f0, joinIdents(keyCols), source, sourceWhere)},
		)
	}

	// FI: one filtered aggregate per (term, combination).
	type fiTable struct {
		name    string
		valName string
		typ     storage.ColumnType
		deflt   *expr.Literal
	}
	var fis []fiTable
	vi := 0
	for ti, t := range terms {
		for _, c := range t.combos {
			fi := p.temp("fi")
			plan.Cleanup = append(plan.Cleanup, Step{Purpose: "drop FI", SQL: "DROP TABLE IF EXISTS " + fi})
			cond := comboCond("", t.call.By, c.vals)
			where := " WHERE " + cond
			if sourceWhere != "" {
				where = andWhere(cond, a)
			}
			var defs []string
			defs = append(defs, keyDefs...)
			defs = append(defs, colDef("A", aggResultType(t.call, a.schema)))
			keySel := joinIdents(keyCols)
			if constKey {
				keySel = "0"
			}
			aggSel := p.haggSPJAggSQL(ti, t.call, opts.FromFV, partialCols)
			pkey := ""
			if !constKey {
				pkey = ", PRIMARY KEY(" + joinIdents(keyNames) + ")"
			}
			plan.Steps = append(plan.Steps,
				Step{Purpose: fmt.Sprintf("create F%d", len(fis)+1),
					SQL: fmt.Sprintf("CREATE TABLE %s (%s%s)", fi, strings.Join(defs, ", "), pkey)},
				Step{Purpose: fmt.Sprintf("aggregate combination %q into F%d", c.label, len(fis)+1),
					SQL: fmt.Sprintf("INSERT INTO %s SELECT %s, %s FROM %s%s%s",
						fi, keySel, aggSel, source, where, groupByClause(keyCols))},
			)
			fis = append(fis, fiTable{name: fi, valName: valueNames[vi],
				typ: aggResultType(t.call, a.schema), deflt: t.call.Default})
			vi++
		}
	}

	// Extras: one aggregate table over all rows per group.
	var extraTable string
	if len(extras) > 0 {
		extraTable = p.temp("fx")
		plan.Cleanup = append(plan.Cleanup, Step{Purpose: "drop extras table", SQL: "DROP TABLE IF EXISTS " + extraTable})
		var defs, sels []string
		defs = append(defs, keyDefs...)
		if constKey {
			sels = append(sels, "0")
		} else {
			sels = append(sels, joinIdents(keyCols))
		}
		for xi, idx := range extras {
			call := a.items[idx].agg
			defs = append(defs, colDef(fmt.Sprintf("x%d", xi+1), aggResultType(call, a.schema)))
			sels = append(sels, p.haggExtraSQL(xi, call, opts.FromFV, partialCols))
		}
		plan.Steps = append(plan.Steps,
			Step{Purpose: "create extras table", SQL: fmt.Sprintf("CREATE TABLE %s (%s)", extraTable, strings.Join(defs, ", "))},
			Step{Purpose: "aggregate the plain vertical terms",
				SQL: fmt.Sprintf("INSERT INTO %s SELECT %s FROM %s%s%s",
					extraTable, strings.Join(sels, ", "), source, sourceWhere, groupByClause(keyCols))},
		)
	}

	// FH: assemble with left outer joins on the key.
	fh := p.temp("fh")
	plan.Cleanup = append(plan.Cleanup, Step{Purpose: "drop FH", SQL: "DROP TABLE IF EXISTS " + fh})
	plan.ResultTable = fh
	plan.ResultTables = []string{fh}
	plan.N = len(fis)

	var fhDefs []string
	if !constKey {
		fhDefs = append(fhDefs, keyDefs...)
	}
	for _, fi := range fis {
		fhDefs = append(fhDefs, colDef(fi.valName, fi.typ))
	}
	for xi, idx := range extras {
		fhDefs = append(fhDefs, colDef(extraNames[xi], aggResultType(a.items[idx].agg, a.schema)))
	}

	var sel []string
	if !constKey {
		sel = append(sel, qualifiedList(f0, keyNames))
	}
	for _, fi := range fis {
		col := fi.name + ".A"
		if fi.deflt != nil {
			col = "coalesce(" + col + ", " + fi.deflt.String() + ")"
		}
		sel = append(sel, col)
	}
	from := f0
	for _, fi := range fis {
		from += fmt.Sprintf(" LEFT OUTER JOIN %s ON %s", fi.name, equalityChainNullSafe(f0, fi.name, keyNames))
	}
	if extraTable != "" {
		for xi := range extras {
			sel = append(sel, fmt.Sprintf("%s.x%d", extraTable, xi+1))
		}
		from += fmt.Sprintf(" LEFT OUTER JOIN %s ON %s", extraTable, equalityChainNullSafe(f0, extraTable, keyNames))
	}
	pkey := ""
	if !constKey {
		pkey = ", PRIMARY KEY(" + joinIdents(keyNames) + ")"
	}
	plan.Steps = append(plan.Steps,
		Step{Purpose: "create FH", SQL: fmt.Sprintf("CREATE TABLE %s (%s%s)", fh, strings.Join(fhDefs, ", "), pkey)},
		Step{Purpose: fmt.Sprintf("assemble FH with %d left outer joins", len(fis)+btoi(extraTable != "")),
			SQL: fmt.Sprintf("INSERT INTO %s SELECT %s FROM %s", fh, strings.Join(sel, ", "), from)},
	)

	holder := make(map[string]string)
	for _, fi := range fis {
		holder[fi.valName] = fh
	}
	for _, xn := range extraNames {
		holder[xn] = fh
	}
	p.finishHorizontalPlan(plan, a, groupNames, valueNames, extraNames, holder)
	return plan, nil
}

// haggSPJAggSQL renders the aggregate expression of one FI table.
func (p *Planner) haggSPJAggSQL(ti int, call *expr.AggCall, fromFV bool,
	partialCols map[int][]string) string {

	if fromFV {
		pc := partialCols[ti]
		switch call.Fn {
		case expr.AggSum, expr.AggCount:
			return "sum(" + quoteIdent(pc[0]) + ")"
		case expr.AggMin, expr.AggMax:
			return string(call.Fn) + "(" + quoteIdent(pc[0]) + ")"
		case expr.AggAvg:
			return fmt.Sprintf("sum(%s) / sum(%s)", quoteIdent(pc[0]), quoteIdent(pc[1]))
		}
	}
	switch {
	case call.Distinct:
		return "count(DISTINCT " + call.Arg.String() + ")"
	case call.Fn == expr.AggCount && call.Star:
		return "count(*)"
	default:
		return fmt.Sprintf("%s(%s)", call.Fn, call.Arg.String())
	}
}

func btoi(b bool) int {
	if b {
		return 1
	}
	return 0
}
