package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/chaos"
	"repro/internal/diag"
	"repro/internal/engine"
	"repro/internal/expr"
	"repro/internal/obs"
	"repro/internal/storage"
	"repro/internal/value"
)

// The CASE strategies evaluate N boolean conjunctions per input row even
// though the conjunctions are disjoint — one row falls in exactly one result
// column. The paper observes the optimizer could map a row to its column in
// O(1) with a hash table. These native steps implement that proposal: a
// single scan of F hashing (D1..Dj) to a group and (Dj+1..Dk) to a column
// index. They exist as an ablation of the CASE evaluation cost; results are
// identical to the SQL plans.

// planHpctHashPivot finishes a direct Hpct plan with a native pivot step.
func (p *Planner) planHpctHashPivot(plan *Plan, a *analysis, call *expr.AggCall,
	combos []combo, groupNames, valueNames []string, extras []int, extraNames []string) (*Plan, error) {

	if len(extras) > 0 {
		return nil, fmt.Errorf("core: HashPivot does not support extra aggregate terms")
	}
	fh, err := p.emitPivotTable(plan, a, groupNames, valueNames, storage.TypeFloat)
	if err != nil {
		return nil, err
	}
	groupCols := append([]string{}, a.groupCols...)
	where := a.where
	plan.Steps = append(plan.Steps, Step{
		Purpose: "hash-pivot F into FH (one O(1) column lookup per row)",
		native: func(ctx context.Context, eng *engine.Engine, parallelism int, span *obs.Span) error {
			return runPivot(ctx, eng, a.table, fh, groupCols, call, combos, where, true, nil, parallelism, span)
		},
	})
	p.finishHorizontalPlan(plan, a, groupNames, valueNames, nil, singleHolder(fh, valueNames, nil))
	return plan, nil
}

// planHaggHashPivot finishes a direct Hagg plan with a native pivot step.
func (p *Planner) planHaggHashPivot(plan *Plan, a *analysis, call *expr.AggCall,
	combos []combo, groupNames, valueNames []string) (*Plan, error) {

	if call.Distinct {
		return nil, fmt.Errorf("core: HashPivot does not support count(DISTINCT …)")
	}
	fh, err := p.emitPivotTable(plan, a, groupNames, valueNames, aggResultType(call, a.schema))
	if err != nil {
		return nil, err
	}
	groupCols := append([]string{}, a.groupCols...)
	where := a.where
	var deflt *value.Value
	if call.Default != nil {
		v := call.Default.Val
		deflt = &v
	}
	plan.Steps = append(plan.Steps, Step{
		Purpose: "hash-pivot F into FH (one O(1) column lookup per row)",
		native: func(ctx context.Context, eng *engine.Engine, parallelism int, span *obs.Span) error {
			return runPivot(ctx, eng, a.table, fh, groupCols, call, combos, where, false, deflt, parallelism, span)
		},
	})
	p.finishHorizontalPlan(plan, a, groupNames, valueNames, nil, singleHolder(fh, valueNames, nil))
	return plan, nil
}

func singleHolder(table string, valueNames, extraNames []string) map[string]string {
	m := make(map[string]string, len(valueNames)+len(extraNames))
	for _, n := range valueNames {
		m[n] = table
	}
	for _, n := range extraNames {
		m[n] = table
	}
	return m
}

// emitPivotTable creates the FH table for a native pivot.
func (p *Planner) emitPivotTable(plan *Plan, a *analysis, groupNames, valueNames []string,
	valType storage.ColumnType) (string, error) {

	fh := p.temp("fh")
	plan.Cleanup = append(plan.Cleanup, Step{Purpose: "drop FH", SQL: "DROP TABLE IF EXISTS " + fh})
	plan.ResultTable = fh
	plan.ResultTables = []string{fh}
	plan.N = len(valueNames)
	var defs []string
	for gi, g := range a.groupCols {
		defs = append(defs, colDef(groupNames[gi], a.schema[a.schema.ColumnIndex(g)].Type))
	}
	for _, v := range valueNames {
		defs = append(defs, colDef(v, valType))
	}
	pkey := ""
	if len(groupNames) > 0 {
		pkey = ", PRIMARY KEY(" + joinIdents(groupNames) + ")"
	}
	plan.Steps = append(plan.Steps, Step{Purpose: "create FH",
		SQL: fmt.Sprintf("CREATE TABLE %s (%s%s)", fh, strings.Join(defs, ", "), pkey)})
	return fh, nil
}

// pivotRowBox adapts a reusable row buffer to expr.Row without per-call
// interface boxing.
type pivotRowBox struct{ vals []value.Value }

// ColumnValue returns the i-th value.
func (b *pivotRowBox) ColumnValue(i int) value.Value { return b.vals[i] }

// lazyPivotRow adapts one stored row to expr.Row, materializing only the
// cells the expression touches — the batched scan's view for WHERE and the
// measure, mirroring engine/batch.go's lazyRow.
type lazyPivotRow struct {
	tab *storage.Table
	r   int
}

func (l *lazyPivotRow) ColumnValue(i int) value.Value { return l.tab.Get(l.r, i) }

// cellGetter reads one column cell, boxing only that cell. Typed getters
// resolve the column vector once instead of per row.
type cellGetter func(r int) value.Value

// colGetter builds a typed cellGetter for one column of t.
func colGetter(t *storage.Table, idx int) cellGetter {
	if ints, isNull, ok := t.IntColumn(idx); ok {
		return func(r int) value.Value {
			if isNull(r) {
				return value.Null
			}
			return value.NewInt(ints[r])
		}
	}
	if flts, isNull, ok := t.FloatColumn(idx); ok {
		return func(r int) value.Value {
			if isNull(r) {
				return value.Null
			}
			return value.NewFloat(flts[r])
		}
	}
	if strs, isNull, ok := t.StringColumn(idx); ok {
		return func(r int) value.Value {
			if isNull(r) {
				return value.Null
			}
			return value.NewString(strs[r])
		}
	}
	if bools, isNull, ok := t.BoolColumn(idx); ok {
		return func(r int) value.Value {
			if isNull(r) {
				return value.Null
			}
			return value.NewBool(bools[r])
		}
	}
	return func(r int) value.Value { return t.Get(r, idx) }
}

// Pivot batch metrics: hash-pivot scans that ran with columnar row access
// vs. ones pinned to the boxed-row path by an injected core.batch fault.
var (
	mPivotBatch         = obs.Default.Counter("batch.pivot.folds")
	mPivotBatchFallback = obs.Default.Counter("batch.pivot.fallbacks")
)

// pivotAcc folds one (group, column) cell.
type pivotAcc struct {
	fn       expr.AggFn
	seen     bool
	sum      float64
	sumInt   int64
	isInt    bool
	count    int64
	best     value.Value
	nonNullC int64 // rows whose CASE output is non-null (for pct zero fill)
}

func (acc *pivotAcc) add(v value.Value) {
	if v.IsNull() {
		return
	}
	acc.nonNullC++
	switch acc.fn {
	case expr.AggSum, expr.AggAvg, expr.AggVpct, expr.AggHpct:
		f, _ := v.AsFloat()
		if !acc.seen {
			acc.isInt = v.Kind() == value.KindInt
		} else if v.Kind() != value.KindInt {
			acc.isInt = false
		}
		if i, ok := v.AsInt(); ok && v.Kind() == value.KindInt {
			acc.sumInt += i
		}
		acc.sum += f
		acc.count++
	case expr.AggCount:
		acc.count++
	case expr.AggMin:
		if !acc.seen || value.Compare(v, acc.best) < 0 {
			acc.best = v
		}
	case expr.AggMax:
		if !acc.seen || value.Compare(v, acc.best) > 0 {
			acc.best = v
		}
	}
	acc.seen = true
}

// merge folds a disjoint partition's cell state into the receiver (same
// semantics as the engine accumulators' merge: add(all rows) ≡ merged
// partials). Integer sums stay exact via sumInt; isInt holds only if every
// partition saw only integers.
func (acc *pivotAcc) merge(o *pivotAcc) {
	if !o.seen {
		return
	}
	if !acc.seen {
		*acc = *o
		return
	}
	acc.nonNullC += o.nonNullC
	switch acc.fn {
	case expr.AggSum, expr.AggAvg, expr.AggVpct, expr.AggHpct:
		acc.sum += o.sum
		acc.sumInt += o.sumInt
		acc.isInt = acc.isInt && o.isInt
		acc.count += o.count
	case expr.AggCount:
		acc.count += o.count
	case expr.AggMin:
		if value.Compare(o.best, acc.best) < 0 {
			acc.best = o.best
		}
	case expr.AggMax:
		if value.Compare(o.best, acc.best) > 0 {
			acc.best = o.best
		}
	}
}

func (acc *pivotAcc) result() value.Value {
	if !acc.seen {
		return value.Null
	}
	switch acc.fn {
	case expr.AggSum:
		if acc.isInt {
			return value.NewInt(acc.sumInt)
		}
		return value.NewFloat(acc.sum)
	case expr.AggCount:
		return value.NewInt(acc.count)
	case expr.AggAvg:
		return value.NewFloat(acc.sum / float64(acc.count))
	case expr.AggMin, expr.AggMax:
		return acc.best
	default:
		return value.NewFloat(acc.sum)
	}
}

// pivotWorkers mirrors the engine's parallelism semantics (see
// internal/engine/parallel.go): 0 → one worker per CPU gated by a
// small-input threshold, 1 → sequential, n > 1 → n workers, capped by the
// row count.
func pivotWorkers(parallelism, rows int) int {
	w := parallelism
	switch {
	case w == 1:
		return 1
	case w <= 0:
		if rows < 8192 {
			return 1
		}
		w = runtime.GOMAXPROCS(0)
	}
	if w > rows {
		w = rows
	}
	if w < 1 {
		w = 1
	}
	return w
}

// pivotStride mirrors the engine's governor stride: governed pivot loops
// check cancellation and budgets once per this many rows, bounding both the
// hot-path overhead and the rows processed after a cancel.
const pivotStride = 1024

// runPivot scans F, hashing each row to its group and result column. For
// percentage mode it also folds the per-group total and divides at emit
// time, NULLing zero or all-NULL totals like the SQL plans do. With
// parallelism != 1 the scan is partitioned into contiguous row ranges folded
// by worker goroutines and merged in partition order, preserving the
// sequential group order (same model as the engine's parallel aggregation).
// span, when non-nil, receives the pivot's stage breakdown: a sequential fold
// span or a concurrent partition fan-out with one child per worker plus a
// merge span, then the emit span that writes FH.
//
// Lifecycle mirrors the engine's governed aggregation: workers stride-check
// ctx, group allocations are charged against MaxGroups across all workers, a
// failing worker's panic is contained into a typed PCT206 error and cancels
// its siblings, and error selection is deterministic — the lowest-numbered
// partition's real error wins, sibling-cancel noise is reported only when
// nothing else failed.
func runPivot(ctx context.Context, eng *engine.Engine, table, fh string, groupCols []string,
	call *expr.AggCall, combos []combo, where expr.Expr, pct bool, deflt *value.Value,
	parallelism int, span *obs.Span) error {

	lim := eng.Limits()
	if l, ok := engine.LimitsFromContext(ctx); ok {
		lim = l
	}
	src, err := eng.Catalog().Get(table)
	if err != nil {
		return err
	}
	dst, err := eng.Catalog().Get(fh)
	if err != nil {
		return err
	}
	schema := src.Schema()
	names := schema.Names()
	resolver := expr.SchemaResolver(names)

	groupIdx := make([]int, len(groupCols))
	for i, g := range groupCols {
		groupIdx[i] = schema.ColumnIndex(g)
	}
	byIdx := make([]int, len(call.By))
	for i, b := range call.By {
		byIdx[i] = schema.ColumnIndex(b)
	}
	var measure expr.Expr
	if call.Arg != nil {
		measure, err = expr.Bind(call.Arg, resolver)
		if err != nil {
			return err
		}
	}
	var pred expr.Expr
	if where != nil {
		pred, err = expr.Bind(where, resolver)
		if err != nil {
			return err
		}
	}

	colOf := make(map[string]int, len(combos))
	for i, c := range combos {
		colOf[value.EncodeKeyString(c.vals...)] = i
	}

	// Row-access strategy. The boxed path materializes every column of the
	// row once per iteration; with vectorized execution enabled the scan
	// reads only the cells it touches — typed getters for the grouping and
	// BY columns, a lazy row view for WHERE and the measure. The values,
	// evaluation order, and errors are identical either way. An injected
	// core.batch fault pins the boxed path for this statement (the silent-
	// fallback contract of the fault point).
	batched := eng.BatchEnabled()
	if batched {
		if err := chaos.Hit(chaos.CoreBatch); err != nil {
			batched = false
		}
	}
	var groupGet, byGet []cellGetter
	if batched {
		mPivotBatch.Inc()
		for _, gi := range groupIdx {
			groupGet = append(groupGet, colGetter(src, gi))
		}
		for _, bi := range byIdx {
			byGet = append(byGet, colGetter(src, bi))
		}
	} else {
		mPivotBatchFallback.Inc()
	}

	type group struct {
		keyVals []value.Value
		cells   []pivotAcc
		total   pivotAcc
	}

	fn := call.Fn
	if pct {
		fn = expr.AggSum
	}
	if call.Star {
		fn = expr.AggCount
	}

	// totalGroups counts group allocations across every partition, charged
	// against MaxGroups. Groups shared across partitions are counted once per
	// partition — an over-approximation, same budget semantics as the
	// engine's parallel aggregation.
	var totalGroups int64

	// scanPart folds the contiguous row range [lo, hi) into a private group
	// map, returning the encoded keys in local first-appearance order. The
	// bound expressions (pred, measure) are stateless under Eval and shared
	// across workers; concurrent Table.Row reads are safe (the engine
	// serializes writes per statement). sctx is the worker's view of the
	// statement context — the fan-out's cancel context in the parallel case —
	// checked every pivotStride rows.
	scanPart := func(sctx context.Context, lo, hi int) (map[string]*group, []string, error) {
		groups := make(map[string]*group)
		var order []string
		var rowBuf []value.Value
		var box pivotRowBox
		lr := lazyPivotRow{tab: src}
		keyBuf := make([]byte, 0, 64)
		byBuf := make([]byte, 0, 64)
		for r := lo; r < hi; r++ {
			if (r-lo)%pivotStride == 0 && r > lo {
				if err := engine.CheckCtx(sctx); err != nil {
					return nil, nil, err
				}
			}
			var rv expr.Row
			if batched {
				lr.r = r
				rv = &lr
			} else {
				rowBuf = src.Row(r, rowBuf)
				box.vals = rowBuf
				rv = &box
			}
			if pred != nil {
				v, err := pred.Eval(rv)
				if err != nil {
					return nil, nil, err
				}
				if !v.Truthy() {
					continue
				}
			}
			keyBuf = keyBuf[:0]
			if batched {
				for _, get := range groupGet {
					keyBuf = value.AppendKey(keyBuf, get(r))
				}
			} else {
				for _, gi := range groupIdx {
					keyBuf = value.AppendKey(keyBuf, rowBuf[gi])
				}
			}
			g, ok := groups[string(keyBuf)]
			if !ok {
				if err := chaos.Hit(chaos.PivotAlloc); err != nil {
					return nil, nil, err
				}
				if n := atomic.AddInt64(&totalGroups, 1); lim.MaxGroups > 0 && n > lim.MaxGroups {
					return nil, nil, &engine.LimitError{
						PCTCode:  diag.CodeGroupLimit,
						Resource: "group",
						Limit:    lim.MaxGroups,
					}
				}
				g = &group{cells: make([]pivotAcc, len(combos))}
				for i := range g.cells {
					g.cells[i].fn = fn
				}
				g.total.fn = expr.AggSum
				if batched {
					for _, get := range groupGet {
						g.keyVals = append(g.keyVals, get(r))
					}
				} else {
					for _, gi := range groupIdx {
						g.keyVals = append(g.keyVals, rowBuf[gi])
					}
				}
				k := string(keyBuf)
				groups[k] = g
				order = append(order, k)
			}
			byBuf = byBuf[:0]
			if batched {
				for _, get := range byGet {
					byBuf = value.AppendKey(byBuf, get(r))
				}
			} else {
				for _, bi := range byIdx {
					byBuf = value.AppendKey(byBuf, rowBuf[bi])
				}
			}
			ci, ok := colOf[string(byBuf)]
			if !ok {
				// A combination outside the feedback snapshot (possible only if
				// F changed between planning and execution).
				return nil, nil, fmt.Errorf("core: row %d has a BY combination absent from the planned column layout", r)
			}
			var mv value.Value
			switch {
			case call.Star:
				mv = value.NewInt(1)
			case measure != nil:
				var err error
				mv, err = measure.Eval(rv)
				if err != nil {
					return nil, nil, err
				}
			}
			if fn == expr.AggCount && !call.Star {
				if !mv.IsNull() {
					g.cells[ci].add(value.NewInt(1))
				}
			} else {
				g.cells[ci].add(mv)
			}
			if pct {
				g.total.add(mv)
			}
		}
		return groups, order, nil
	}

	nRows := src.NumRows()
	workers := pivotWorkers(parallelism, nRows)
	groups := make(map[string]*group)
	var order []string
	if workers <= 1 {
		sp := span.NewChild("pivot fold")
		groups, order, err = scanPart(ctx, 0, nRows)
		sp.End()
		if err != nil {
			sp.Attr("error", err.Error())
			return err
		}
		sp.SetRows(int64(nRows), int64(len(order)))
	} else {
		type part struct {
			groups map[string]*group
			order  []string
			err    error
		}
		parts := make([]part, workers)
		chunk := (nRows + workers - 1) / workers
		fan := span.NewChild("partition fan-out")
		if fan != nil {
			fan.Concurrent = true
			fan.AttrInt("workers", int64(workers))
		}
		// Workers run under a shared cancel context: the first failure —
		// error, contained panic, or limit hit — stops the siblings within
		// one stride instead of letting them fold to completion.
		wctx, cancel := context.WithCancel(ctx)
		defer cancel()
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo, hi := w*chunk, (w+1)*chunk
			if lo > nRows {
				lo = nRows
			}
			if hi > nRows {
				hi = nRows
			}
			wg.Add(1)
			go func(w, lo, hi int) {
				defer wg.Done()
				var ws *obs.Span
				if fan != nil {
					ws = fan.NewChild(fmt.Sprintf("worker %d/%d", w+1, workers))
				}
				defer func() {
					if r := recover(); r != nil {
						parts[w].err = engine.NewPanicError(fmt.Sprintf("pivot worker %d/%d", w+1, workers), r)
					}
					if parts[w].err != nil {
						ws.Attr("error", parts[w].err.Error())
						cancel()
					}
					ws.End()
					ws.SetRows(int64(hi-lo), int64(len(parts[w].order)))
				}()
				parts[w].groups, parts[w].order, parts[w].err = scanPart(wctx, lo, hi)
			}(w, lo, hi)
		}
		wg.Wait()
		fan.End()
		// Error selection is deterministic despite the cancel race: the
		// lowest-numbered partition's real error wins; a sibling's
		// cancellation is reported only when no real error exists.
		var firstCancel, realErr error
		for pi := range parts {
			err := parts[pi].err
			if err == nil {
				continue
			}
			if isCancelled(err) {
				if firstCancel == nil {
					firstCancel = err
				}
				continue
			}
			realErr = err
			break
		}
		if realErr == nil {
			realErr = firstCancel
		}
		// Merge in ascending partition order: group order reproduces the
		// sequential first-appearance order.
		ms := span.NewChild("merge")
		if realErr != nil {
			ms.Attr("error", realErr.Error())
			ms.End()
			return realErr
		}
		partials := 0
		for pi := range parts {
			p := &parts[pi]
			partials += len(p.order)
			for _, k := range p.order {
				g := p.groups[k]
				tgt, ok := groups[k]
				if !ok {
					groups[k] = g
					order = append(order, k)
					continue
				}
				for i := range tgt.cells {
					tgt.cells[i].merge(&g.cells[i])
				}
				tgt.total.merge(&g.total)
			}
		}
		ms.End()
		ms.SetRows(int64(partials), int64(len(order)))
	}

	es := span.NewChild("emit " + fh)
	out := make([]value.Value, 0, len(groupCols)+len(combos))
	for ki, k := range order {
		if ki > 0 && ki%pivotStride == 0 {
			if err := engine.CheckCtx(ctx); err != nil {
				es.Attr("error", err.Error())
				es.End()
				return err
			}
		}
		g := groups[k]
		out = out[:0]
		out = append(out, g.keyVals...)
		total := g.total.result()
		for i := range g.cells {
			cell := &g.cells[i]
			var v value.Value
			if pct {
				switch {
				case total.IsNull():
					v = value.Null
				default:
					tf, _ := total.AsFloat()
					if tf == 0 { // floateq:ok SQL division-by-zero guard: exact zero yields NULL
						v = value.Null
					} else {
						// sum(CASE … ELSE 0) semantics: absent combinations
						// contribute an explicit zero.
						cf := 0.0
						if cell.seen {
							r := cell.result()
							cf, _ = r.AsFloat()
						}
						v = value.NewFloat(cf / tf)
					}
				}
			} else {
				v = cell.result()
				if v.IsNull() && deflt != nil {
					v = *deflt
				}
			}
			out = append(out, v)
		}
		if _, err := dst.AppendRow(out); err != nil {
			es.Attr("error", err.Error())
			es.End()
			return err
		}
	}
	es.End()
	es.SetRows(int64(len(order)), int64(len(order)))
	return nil
}

// isCancelled reports whether err is the engine's typed cancellation error —
// the shape sibling workers fail with after a fan-out cancel.
func isCancelled(err error) bool {
	var c *engine.CancelledError
	return errors.As(err, &c)
}
