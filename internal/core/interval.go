// Interval sets: the abstract domain of the linter's dataflow-aware WHERE
// analysis (see static.go). An intset is a normalized union of disjoint
// intervals over one column's value domain — numbers or strings, compared
// with the engine's own value.Compare so the analysis agrees with what the
// executor would do. INTEGER columns use a discrete domain: endpoints are
// tightened to closed integral bounds at construction (x > 1 becomes
// x >= 2), so "x > 1 AND x < 2" is provably empty.
package core

import (
	"math"
	"sort"

	"repro/internal/value"
)

// ivClass is the value class an interval set ranges over. Sets of
// different classes never mix; the analysis keeps one class per column.
type ivClass uint8

const (
	clsNum ivClass = iota // INTEGER / REAL, compared numerically
	clsStr                // VARCHAR, compared lexicographically
)

// ivl is one interval. Endpoints are finite values unless loInf/hiInf;
// loOpen/hiOpen exclude the endpoint. Discrete sets only carry closed
// integral endpoints.
type ivl struct {
	lo, hi         value.Value
	loInf, hiInf   bool
	loOpen, hiOpen bool
}

// intset is a normalized (sorted, disjoint, maximally merged) union of
// intervals.
type intset struct {
	class    ivClass
	discrete bool
	ivls     []ivl
}

func fullSet(class ivClass, discrete bool) *intset {
	return &intset{class: class, discrete: discrete, ivls: []ivl{{loInf: true, hiInf: true}}}
}

func emptySet(class ivClass, discrete bool) *intset {
	return &intset{class: class, discrete: discrete}
}

func pointSet(class ivClass, discrete bool, v value.Value) *intset {
	s := &intset{class: class, discrete: discrete, ivls: []ivl{{lo: v, hi: v}}}
	return s.norm()
}

// rangeSet builds the set of column values satisfying "col op v" for a
// comparison operator. It returns nil when the pair cannot be modeled
// (discrete tightening would overflow int64).
func rangeSet(class ivClass, discrete bool, op string, v value.Value) *intset {
	if discrete {
		return discreteRange(op, v)
	}
	var iv ivl
	switch op {
	case "=":
		iv = ivl{lo: v, hi: v}
	case "<":
		iv = ivl{loInf: true, hi: v, hiOpen: true}
	case "<=":
		iv = ivl{loInf: true, hi: v}
	case ">":
		iv = ivl{lo: v, loOpen: true, hiInf: true}
	case ">=":
		iv = ivl{lo: v, hiInf: true}
	case "<>", "!=":
		return pointSet(class, discrete, v).complement()
	default:
		return nil
	}
	s := &intset{class: class, discrete: discrete, ivls: []ivl{iv}}
	return s.norm()
}

// discreteRange tightens "col op v" to closed integral bounds for an
// INTEGER column; v may be an integer or a float literal.
func discreteRange(op string, v value.Value) *intset {
	f, ok := v.AsFloat()
	if !ok || math.Abs(f) >= 1<<62 {
		return nil // unmodelable: not numeric, or tightening could overflow
	}
	integral := f == math.Trunc(f) // floateq:ok integrality test is exact by design
	s := &intset{class: clsNum, discrete: true}
	switch op {
	case "=":
		if !integral {
			return s // an INTEGER column never equals a fractional literal
		}
		s.ivls = []ivl{{lo: value.NewInt(int64(f)), hi: value.NewInt(int64(f))}}
	case "<>", "!=":
		if !integral {
			return fullSet(clsNum, true)
		}
		return pointSet(clsNum, true, value.NewInt(int64(f))).complement()
	case "<":
		s.ivls = []ivl{{loInf: true, hi: value.NewInt(int64(math.Ceil(f)) - 1)}}
	case "<=":
		s.ivls = []ivl{{loInf: true, hi: value.NewInt(int64(math.Floor(f)))}}
	case ">":
		s.ivls = []ivl{{lo: value.NewInt(int64(math.Floor(f)) + 1), hiInf: true}}
	case ">=":
		s.ivls = []ivl{{lo: value.NewInt(int64(math.Ceil(f))), hiInf: true}}
	default:
		return nil
	}
	return s.norm()
}

func (s *intset) isEmpty() bool { return len(s.ivls) == 0 }

func (s *intset) isFull() bool {
	return len(s.ivls) == 1 && s.ivls[0].loInf && s.ivls[0].hiInf
}

// emptyIvl reports whether the interval contains no values.
func emptyIvl(iv ivl) bool {
	if iv.loInf || iv.hiInf {
		return false
	}
	c := value.Compare(iv.lo, iv.hi)
	return c > 0 || (c == 0 && (iv.loOpen || iv.hiOpen))
}

// loBefore reports whether a's lower endpoint starts before b's (a closed
// endpoint starts before an open one at the same value).
func loBefore(a, b ivl) bool {
	switch {
	case a.loInf:
		return !b.loInf
	case b.loInf:
		return false
	}
	c := value.Compare(a.lo, b.lo)
	if c != 0 {
		return c < 0
	}
	return !a.loOpen && b.loOpen
}

// hiBefore reports whether a's upper endpoint ends before b's (an open
// endpoint ends before a closed one at the same value).
func hiBefore(a, b ivl) bool {
	switch {
	case a.hiInf:
		return false
	case b.hiInf:
		return true
	}
	c := value.Compare(a.hi, b.hi)
	if c != 0 {
		return c < 0
	}
	return a.hiOpen && !b.hiOpen
}

// connected reports whether b (which starts at or after a) overlaps or is
// adjacent to a, so the two merge into one interval.
func (s *intset) connected(a, b ivl) bool {
	if a.hiInf || b.loInf {
		return true
	}
	c := value.Compare(a.hi, b.lo)
	switch {
	case c > 0:
		return true
	case c == 0:
		return !(a.hiOpen && b.loOpen)
	}
	// Discrete adjacency: [.., n] and [n+1, ..] cover every integer.
	if s.discrete && !a.hiOpen && !b.loOpen && a.hi.Int() != math.MaxInt64 {
		return b.lo.Int() == a.hi.Int()+1
	}
	return false
}

// norm sorts, drops empty intervals, and merges connected ones.
func (s *intset) norm() *intset {
	kept := s.ivls[:0:0]
	for _, iv := range s.ivls {
		if !emptyIvl(iv) {
			kept = append(kept, iv)
		}
	}
	sort.SliceStable(kept, func(i, j int) bool { return loBefore(kept[i], kept[j]) })
	out := &intset{class: s.class, discrete: s.discrete}
	for _, iv := range kept {
		if n := len(out.ivls); n > 0 && out.connected(out.ivls[n-1], iv) {
			if hiBefore(out.ivls[n-1], iv) {
				out.ivls[n-1].hi, out.ivls[n-1].hiInf, out.ivls[n-1].hiOpen = iv.hi, iv.hiInf, iv.hiOpen
			}
			continue
		}
		out.ivls = append(out.ivls, iv)
	}
	return out
}

// union returns s ∪ o.
func (s *intset) union(o *intset) *intset {
	merged := &intset{class: s.class, discrete: s.discrete,
		ivls: append(append([]ivl{}, s.ivls...), o.ivls...)}
	return merged.norm()
}

// intersect returns s ∩ o by pairwise interval intersection.
func (s *intset) intersect(o *intset) *intset {
	out := &intset{class: s.class, discrete: s.discrete}
	for _, a := range s.ivls {
		for _, b := range o.ivls {
			iv := a
			if loBefore(iv, b) {
				iv.lo, iv.loInf, iv.loOpen = b.lo, b.loInf, b.loOpen
			}
			if hiBefore(b, iv) {
				iv.hi, iv.hiInf, iv.hiOpen = b.hi, b.hiInf, b.hiOpen
			}
			out.ivls = append(out.ivls, iv)
		}
	}
	return out.norm()
}

// complement returns the set of values not in s.
func (s *intset) complement() *intset {
	out := &intset{class: s.class, discrete: s.discrete}
	cur := ivl{loInf: true} // the gap being built, starting at -inf
	closed := false         // set reaches +inf: no trailing gap
	for _, iv := range s.ivls {
		if !iv.loInf && !(s.discrete && iv.lo.Int() == math.MinInt64) {
			g := cur
			if s.discrete {
				g.hi = value.NewInt(iv.lo.Int() - 1)
			} else {
				g.hi, g.hiOpen = iv.lo, !iv.loOpen
			}
			out.ivls = append(out.ivls, g)
		}
		if iv.hiInf {
			closed = true
			break
		}
		if s.discrete {
			if iv.hi.Int() == math.MaxInt64 {
				closed = true
				break
			}
			cur = ivl{lo: value.NewInt(iv.hi.Int() + 1)}
		} else {
			cur = ivl{lo: iv.hi, loOpen: !iv.hiOpen}
		}
	}
	if !closed {
		cur.hiInf = true
		out.ivls = append(out.ivls, cur)
	}
	return out.norm()
}

// subsetOf reports s ⊆ o.
func (s *intset) subsetOf(o *intset) bool {
	return s.intersect(o.complement()).isEmpty()
}
