package core

import (
	"context"
	"errors"
	"fmt"
	"strings"

	"repro/internal/chaos"
	"repro/internal/engine"
	"repro/internal/expr"
	"repro/internal/obs"
	"repro/internal/value"
)

// The summary cache turns the paper's batch-evaluation idea (shared Fk/Fj
// summaries across percentage queries) into a DML-aware materialized cache:
// entries are stamped with the base table's modification epoch (see
// internal/storage), an engine DML hook tracks appended row ranges, and
// distributive aggregates (sum, count, min, max — the classes Gray et al.
// identify as cheap to maintain) are refreshed by aggregating only the new
// rows and merging, exactly the way the parallel fold merges per-partition
// accumulators. Non-distributive summaries (avg, DISTINCT) and in-place
// mutations (UPDATE/DELETE) invalidate the entry, degrading to a rebuild —
// the cache may redo work but never serves a stale percentage.

// Cache metrics (see internal/obs). Hits count plans served from a cached
// summary (clean or via delta); invalidations count entries discarded after
// DML the delta path cannot cover; delta_fallback counts incremental
// refreshes that degraded to a rebuild after a fault.
var (
	mCacheHits          = obs.Default.Counter("cache.hits")
	mCacheMisses        = obs.Default.Counter("cache.misses")
	mCacheInvalidations = obs.Default.Counter("cache.invalidations")
	mCacheDeltaApplied  = obs.Default.Counter("cache.delta_applied")
	mCacheDeltaFallback = obs.Default.Counter("cache.delta_fallback")
	mCacheFjRollups     = obs.Default.Counter("cache.fj_rollup")
	mCacheLatticePlans  = obs.Default.Counter("cache.lattice_plans")
	mCacheLatticeNodes  = obs.Default.Counter("cache.lattice_nodes")
	mCacheLatticeReused = obs.Default.Counter("cache.lattice_finest_reused")
)

// CacheStats is a snapshot of the planner's summary-cache counters.
type CacheStats struct {
	// Hits counts plans that reused a cached summary, including ones
	// refreshed incrementally on the way.
	Hits int64
	// Misses counts summaries built (and registered) from scratch.
	Misses int64
	// Invalidations counts entries discarded because DML outran the delta
	// path (UPDATE/DELETE/DROP, non-distributive aggregates, or writes that
	// bypassed the engine).
	Invalidations int64
	// DeltaApplied counts incremental refreshes: aggregate only the
	// appended rows, merge into the cached summary.
	DeltaApplied int64
	// DeltaFallback counts incremental refreshes that degraded to a full
	// rebuild after a fault mid-delta.
	DeltaFallback int64
	// FjRollups counts coarse Fj summaries derived from a cached fine Fk —
	// the paper's Fj-from-Fk derivation applied across statements.
	FjRollups int64
	// LatticePlans counts ROLLUP/CUBE/GROUPING SETS plans generated.
	LatticePlans int64
	// LatticeNodes counts lattice nodes across those plans (every node
	// derives from the finest summary, so nodes-per-plan measures the fan-out
	// a single FS scan answered).
	LatticeNodes int64
	// LatticeFinestReused counts lattice plans whose finest summary FS came
	// from the cache (clean or via delta) — the whole lattice answered
	// without touching the base table.
	LatticeFinestReused int64
}

// CacheStats returns a snapshot of the summary-cache counters.
func (p *Planner) CacheStats() CacheStats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.cstats
}

// mergeOp says how a summary column combines across disjoint row partitions.
type mergeOp int

const (
	mergeAdd mergeOp = iota // sum, count
	mergeMin
	mergeMax
)

// mergeOpFor classifies an aggregate call for incremental maintenance.
// DISTINCT and avg are not distributive over row partitions, so summaries
// containing them rebuild on DML instead.
func mergeOpFor(call *expr.AggCall) (mergeOp, bool) {
	if call.Distinct {
		return 0, false
	}
	switch call.Fn {
	case expr.AggSum, expr.AggCount:
		return mergeAdd, true
	case expr.AggMin:
		return mergeMin, true
	case expr.AggMax:
		return mergeMax, true
	default:
		return 0, false
	}
}

// deltaMeta is everything needed to refresh a summary without replanning:
// the statement shape of its build (re-aggregated over just the delta rows,
// or over the full base table on rebuild) and the per-column merge ops.
type deltaMeta struct {
	base    string // base table F
	where   string // " WHERE …" or ""
	groupBy string // " GROUP BY …" or ""
	selects string // rendered select list of the build INSERT
	colDefs string // rendered column list of the summary's CREATE TABLE
	nGroup  int    // leading group-key columns; the rest are aggregates
	merges  []mergeOp
}

// summaryEntry is one cached summary. All fields are guarded by the
// planner's mu; epochs and row counts refer to the base table.
type summaryEntry struct {
	key       string
	table     string
	baseTable string // lowercased
	delta     *deltaMeta

	built   bool // the table exists and holds the summary
	invalid bool // DML outran the delta path; discard on next lookup

	epoch    int64 // base epoch the summary reflects
	baseRows int   // base row count the summary reflects

	// Pending appended rows [pendFrom, pendTo) not yet folded in;
	// pendEpoch is the base epoch after the last tracked append.
	pendFrom, pendTo int
	pendEpoch        int64

	// gen counts every DML-hook touch of this entry. Build paths that scan
	// the live base table snapshot it before reading the epoch and refuse
	// to publish as valid if it moved — a write landing mid-scan may or may
	// not be in the result, so the entry must not claim to cover it.
	gen int64

	// capGen/capEpoch/capRows are the snapshot taken by the capture step
	// before a from-scratch build scans the base table.
	capGen, capEpoch int64
	capRows          int
}

// cacheMode classifies a plan-time cache lookup.
type cacheMode int

const (
	cacheOff      cacheMode = iota // sharing disabled: plain temp table
	cacheMiss                      // build from scratch, then publish
	cacheHitClean                  // cached table is current: use it as is
	cacheHitDelta                  // refresh incrementally into a new table
)

// cacheDMLHook feeds committed DML into the planner's summary cache. It is
// installed on the engine by ShareSummaries(true).
type cacheDMLHook struct{ p *Planner }

func (h *cacheDMLHook) OnInsert(table string, from, to int, preEp, postEp int64) {
	h.p.cacheOnInsert(table, from, to, preEp, postEp)
}
func (h *cacheDMLHook) OnMutate(table, op string) { h.p.cacheOnMutate(table, op) }

// cacheOnInsert records a committed append [from, to) against every summary
// over the table: deltable entries extend their pending range, the rest are
// invalidated. Runs on the writer's goroutine, post-commit.
func (p *Planner) cacheOnInsert(table string, from, to int, preEp, postEp int64) {
	lower := strings.ToLower(table)
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, e := range p.summaries {
		if e.baseTable != lower {
			continue
		}
		e.gen++
		if !e.built || e.invalid {
			continue
		}
		if e.delta == nil {
			p.invalidateLocked(e)
			continue
		}
		// The append is only mergeable if it extends exactly the state the
		// entry covers: the summary plus any pending range, at the epoch
		// observed when that coverage was established. A row-count match
		// alone is not enough — an unhooked write (a direct storage Set, an
		// in-place rewrite) can leave the count intact while changing rows
		// the summary already folded, and only the epoch betrays it.
		covEpoch, covRows := e.epoch, e.baseRows
		if e.pendTo > e.pendFrom {
			covEpoch, covRows = e.pendEpoch, e.pendTo
		}
		if preEp != covEpoch || from != covRows {
			p.invalidateLocked(e)
			continue
		}
		if e.pendTo == e.pendFrom {
			e.pendFrom = from
		}
		e.pendTo = to
		e.pendEpoch = postEp
	}
}

// cacheOnMutate invalidates every summary over a table that was updated,
// deleted from, or dropped — mutations the delta path cannot cover.
func (p *Planner) cacheOnMutate(table, op string) {
	_ = op
	lower := strings.ToLower(table)
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, e := range p.summaries {
		if e.baseTable != lower {
			continue
		}
		e.gen++
		if e.built && !e.invalid {
			p.invalidateLocked(e)
		}
	}
}

func (p *Planner) invalidateLocked(e *summaryEntry) {
	e.invalid = true
	p.cstats.Invalidations++
	mCacheInvalidations.Inc()
}

// cacheLookup consults the cache at plan time. fresh is the temp-table name
// the plan would use if it has to build; base is the summary's base table.
// On cacheMiss the returned entry is provisionally registered — the plan
// must run a capture step before and a publish step after the build, and
// cleanup abandons unpublished registrations (an EXPLAINed or failed plan
// must not poison the cache). On cacheHitDelta the returned entry is the
// live one; the plan refreshes it into fresh via cacheDeltaStep.
func (p *Planner) cacheLookup(key, fresh, base string, meta *deltaMeta) (string, cacheMode, *summaryEntry) {
	// Read the base epoch before taking p.mu: the DML hook takes p.mu while
	// never holding the catalog lock, and this ordering keeps it that way.
	var cur int64
	haveEpoch := false
	if t, err := p.Eng.Catalog().Get(base); err == nil {
		cur, haveEpoch = t.Epoch(), true
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.shareSummaries {
		return fresh, cacheOff, nil
	}
	if e, ok := p.summaries[key]; ok {
		if e.built && !e.invalid && haveEpoch {
			if cur == e.epoch {
				p.cstats.Hits++
				mCacheHits.Inc()
				return e.table, cacheHitClean, e
			}
			if e.delta != nil && e.pendTo > e.pendFrom && cur == e.pendEpoch {
				p.cstats.Hits++
				mCacheHits.Inc()
				return fresh, cacheHitDelta, e
			}
			// Stale beyond what the delta covers (a write bypassed the
			// engine, or raced the lookup).
			p.invalidateLocked(e)
		}
		// Discard: unbuilt leftovers from a plan that never executed, or
		// invalidated entries. Their tables stay on the flush list.
		delete(p.summaries, key)
	}
	p.cstats.Misses++
	mCacheMisses.Inc()
	ne := &summaryEntry{key: key, table: fresh, baseTable: strings.ToLower(base), delta: meta}
	p.summaries[key] = ne
	p.summaryDrops = append(p.summaryDrops, fresh)
	return fresh, cacheMiss, ne
}

// cacheAbandon forgets every provisional registration the plan never
// published: EXPLAIN plans and failed builds must not leave entries that a
// later plan would trust. Runs from plan cleanup.
func (p *Planner) cacheAbandon(plan *Plan) {
	if len(plan.cacheRegs) == 0 {
		return
	}
	regs := plan.cacheRegs
	plan.cacheRegs = nil
	var drops []string
	p.mu.Lock()
	for _, e := range regs {
		if e.built {
			continue
		}
		if cur, ok := p.summaries[e.key]; ok && cur == e {
			delete(p.summaries, e.key)
		}
		drops = append(drops, e.table)
	}
	p.mu.Unlock()
	for _, t := range drops {
		_, _ = p.Eng.ExecSQL("DROP TABLE IF EXISTS " + t)
	}
}

// cacheCaptureStep snapshots the base table's epoch, row count, and the
// entry's hook generation before a from-scratch build scans it. The publish
// step compares generations: if DML touched the entry mid-build, the result
// may or may not contain those rows, so it publishes as invalid.
func (p *Planner) cacheCaptureStep(e *summaryEntry, base string) Step {
	return Step{
		Purpose: "cache: snapshot base-table epoch",
		native: func(_ context.Context, eng *engine.Engine, _ int, _ *obs.Span) error {
			p.mu.Lock()
			gen := e.gen
			p.mu.Unlock()
			t, err := eng.Catalog().Get(base)
			if err != nil {
				return err
			}
			ep, rows := t.Epoch(), t.NumRows()
			p.mu.Lock()
			e.capGen, e.capEpoch, e.capRows = gen, ep, rows
			p.mu.Unlock()
			return nil
		},
	}
}

// cachePublishStep marks a freshly built summary live.
func (p *Planner) cachePublishStep(e *summaryEntry, what string) Step {
	return Step{
		Purpose: "cache: publish " + what + " summary",
		native: func(_ context.Context, _ *engine.Engine, _ int, _ *obs.Span) error {
			p.mu.Lock()
			defer p.mu.Unlock()
			e.built = true
			e.epoch = e.capEpoch
			e.baseRows = e.capRows
			if e.gen != e.capGen {
				// DML raced the build scan; don't trust the snapshot.
				p.invalidateLocked(e)
			}
			return nil
		},
	}
}

// cacheHitStep is the no-op marker step a clean cache hit leaves in the
// plan, so EXPLAIN and traces show where a summary was reused.
func cacheHitStep(what, table string) Step {
	return Step{
		Purpose: "cache: reuse shared " + what + " summary " + table,
		native: func(context.Context, *engine.Engine, int, *obs.Span) error {
			return nil
		},
	}
}

// cacheDeltaStep refreshes a cached summary into newT: incrementally when
// the pending delta still applies at execution time, by copy when another
// plan already refreshed it, by rebuild otherwise. Either way the step ends
// with newT holding a correct summary for this plan's later steps, and the
// entry republished to point at it.
func (p *Planner) cacheDeltaStep(e *summaryEntry, newT, what string) Step {
	return Step{
		Purpose: "cache: refresh " + what + " summary incrementally",
		native: func(ctx context.Context, eng *engine.Engine, parallelism int, sp *obs.Span) error {
			return p.applyCacheDelta(ctx, eng, parallelism, sp, e, newT)
		},
	}
}

// cacheStride mirrors the engine's governor stride: native cache loops
// check cancellation once per this many rows.
const cacheStride = 1024

// publish modes for cachePublishReplace.
const (
	pubPreserve = iota // keep the entry's invalid flag as is
	pubValid           // mark valid (rebuild that saw no racing DML)
	pubInvalid         // mark invalid (rebuild raced DML)
)

// cachePublishReplace points the entry at newT, which reflects the base
// table at (epoch, rows), trimming any pending delta the refresh consumed.
// The replaced table is not dropped here — concurrently executing plans may
// still reference it; FlushSummaries drops everything it ever registered.
func (p *Planner) cachePublishReplace(e *summaryEntry, newT string, epoch int64, rows int, mode int, applied bool) {
	p.mu.Lock()
	if p.summaries[e.key] == e {
		e.built = true
		e.table = newT
		e.epoch = epoch
		e.baseRows = rows
		switch mode {
		case pubValid:
			e.invalid = false
		case pubInvalid:
			if !e.invalid {
				p.invalidateLocked(e)
			}
		}
		if e.pendTo <= rows {
			e.pendFrom, e.pendTo, e.pendEpoch = 0, 0, 0
		} else if e.pendFrom < rows {
			e.pendFrom = rows
		}
	}
	p.summaryDrops = append(p.summaryDrops, newT)
	if applied {
		p.cstats.DeltaApplied++
	}
	p.mu.Unlock()
	if applied {
		mCacheDeltaApplied.Inc()
	}
}

// cacheSnap is an immutable view of an entry taken under p.mu.
type cacheSnap struct {
	table     string
	epoch     int64
	baseRows  int
	from, to  int
	pendEpoch int64
	live      bool
}

func (p *Planner) applyCacheDelta(ctx context.Context, eng *engine.Engine, parallelism int, sp *obs.Span, e *summaryEntry, newT string) error {
	p.mu.Lock()
	meta := e.delta
	st := cacheSnap{
		table: e.table, epoch: e.epoch, baseRows: e.baseRows,
		from: e.pendFrom, to: e.pendTo, pendEpoch: e.pendEpoch,
		live: e.built && !e.invalid,
	}
	p.mu.Unlock()
	if meta == nil {
		return fmt.Errorf("core: cache entry %q has no delta metadata", e.key)
	}
	base, err := eng.Catalog().Get(meta.base)
	if err != nil {
		return err
	}
	cur, curRows := base.Epoch(), base.NumRows()

	if st.live && cur == st.epoch {
		// Another plan already refreshed the entry; copy its table.
		return p.cacheCopy(ctx, eng, parallelism, sp, e, meta, st, newT)
	}
	if st.live && st.to > st.from && st.from == st.baseRows && cur == st.pendEpoch && st.to <= curRows {
		err := p.cacheDeltaMerge(ctx, eng, parallelism, sp, e, meta, st, newT)
		if err == nil {
			return nil
		}
		if isLifecycleErr(err) {
			return err
		}
		// Injected or internal fault mid-delta: degrade to a rebuild. The
		// entry is untouched (the delta publishes last), so this can never
		// leave a stale or half-merged summary behind.
		p.mu.Lock()
		p.cstats.DeltaFallback++
		p.mu.Unlock()
		mCacheDeltaFallback.Inc()
		if sp != nil {
			sp.Attr("cache.fallback", err.Error())
		}
	}
	return p.cacheRebuild(ctx, eng, parallelism, sp, e, meta, newT)
}

// cacheCopy materializes newT as a row-order copy of the current cache
// table. Row order is preserved, so results are identical to reusing the
// table directly.
func (p *Planner) cacheCopy(ctx context.Context, eng *engine.Engine, parallelism int, sp *obs.Span, e *summaryEntry, meta *deltaMeta, st cacheSnap, newT string) error {
	ok := false
	defer func() {
		if !ok {
			_, _ = eng.ExecSQL("DROP TABLE IF EXISTS " + newT)
		}
	}()
	if _, err := eng.ExecSQLCtxIn(ctx, fmt.Sprintf("CREATE TABLE %s (%s)", newT, meta.colDefs), 1, sp); err != nil {
		return err
	}
	if _, err := eng.ExecSQLCtxIn(ctx, fmt.Sprintf("INSERT INTO %s SELECT * FROM %s", newT, st.table), parallelism, sp); err != nil {
		return err
	}
	p.cachePublishReplace(e, newT, st.epoch, st.baseRows, pubPreserve, false)
	ok = true
	return nil
}

// cacheDeltaMerge refreshes the summary incrementally: copy the appended
// base rows [st.from, st.to) into a scratch table, re-aggregate them with
// the summary's own build statement (the scratch table aliased as the base
// so WHERE and select references resolve), and merge the rollup into a new
// copy of the cached table with the same distributive merge the parallel
// fold uses. Existing groups keep their positions and brand-new groups
// append in first-appearance order, so the result is byte-identical to a
// cold aggregation over the full table.
func (p *Planner) cacheDeltaMerge(ctx context.Context, eng *engine.Engine, parallelism int, sp *obs.Span, e *summaryEntry, meta *deltaMeta, st cacheSnap, newT string) error {
	deltaT := p.temp("cdelta")
	rollT := p.temp("croll")
	ok := false
	defer func() {
		_, _ = eng.ExecSQL("DROP TABLE IF EXISTS " + deltaT)
		_, _ = eng.ExecSQL("DROP TABLE IF EXISTS " + rollT)
		if !ok {
			_, _ = eng.ExecSQL("DROP TABLE IF EXISTS " + newT)
		}
	}()

	// 1. Snapshot the delta rows. The base table only ever grows under the
	// hook's watch (anything else invalidates), so [from, to) is stable.
	base, err := eng.Catalog().Get(meta.base)
	if err != nil {
		return err
	}
	bsch := base.Schema()
	defs := make([]string, len(bsch))
	for i, c := range bsch {
		defs[i] = colDef(c.Name, c.Type)
	}
	if _, err := eng.ExecSQLCtxIn(ctx, fmt.Sprintf("CREATE TABLE %s (%s)", deltaT, strings.Join(defs, ", ")), 1, sp); err != nil {
		return err
	}
	dst, err := eng.Catalog().Get(deltaT)
	if err != nil {
		return err
	}
	var rowBuf []value.Value
	for r := st.from; r < st.to; r++ {
		if (r-st.from)%cacheStride == 0 {
			if err := engine.CheckCtx(ctx); err != nil {
				return err
			}
		}
		if err := chaos.HitN(chaos.CacheDelta, r-st.from+1); err != nil {
			return err
		}
		rowBuf = base.Row(r, rowBuf)
		if _, err := dst.AppendRow(rowBuf); err != nil {
			return err
		}
	}

	// 2. Re-aggregate just the delta, governed like any statement.
	if _, err := eng.ExecSQLCtxIn(ctx, fmt.Sprintf("CREATE TABLE %s (%s)", rollT, meta.colDefs), 1, sp); err != nil {
		return err
	}
	rollSQL := fmt.Sprintf("INSERT INTO %s SELECT %s FROM %s %s%s%s",
		rollT, meta.selects, deltaT, quoteIdent(meta.base), meta.where, meta.groupBy)
	if _, err := eng.ExecSQLCtxIn(ctx, rollSQL, parallelism, sp); err != nil {
		return err
	}

	// 3. Merge into a new copy. Copy-on-write keeps concurrent plans that
	// hold the old table name safe; the old table is dropped at flush.
	old, err := eng.Catalog().Get(st.table)
	if err != nil {
		return err
	}
	roll, err := eng.Catalog().Get(rollT)
	if err != nil {
		return err
	}
	n := meta.nGroup
	merged := make([][]value.Value, 0, old.NumRows()+roll.NumRows())
	pos := make(map[string]int, old.NumRows())
	for r := 0; r < old.NumRows(); r++ {
		if r%cacheStride == 0 {
			if err := engine.CheckCtx(ctx); err != nil {
				return err
			}
		}
		row := old.Row(r, nil)
		pos[value.EncodeKeyString(row[:n]...)] = len(merged)
		merged = append(merged, row)
	}
	for r := 0; r < roll.NumRows(); r++ {
		if err := chaos.HitN(chaos.CacheMerge, r+1); err != nil {
			return err
		}
		row := roll.Row(r, nil)
		key := value.EncodeKeyString(row[:n]...)
		if i, exists := pos[key]; exists {
			at := merged[i]
			for c := n; c < len(row); c++ {
				at[c] = mergeValues(meta.merges[c-n], at[c], row[c])
			}
			continue
		}
		pos[key] = len(merged)
		merged = append(merged, row)
	}
	if _, err := eng.ExecSQLCtxIn(ctx, fmt.Sprintf("CREATE TABLE %s (%s)", newT, meta.colDefs), 1, sp); err != nil {
		return err
	}
	out, err := eng.Catalog().Get(newT)
	if err != nil {
		return err
	}
	for i, row := range merged {
		if i%cacheStride == 0 {
			if err := engine.CheckCtx(ctx); err != nil {
				return err
			}
		}
		if _, err := out.AppendRow(row); err != nil {
			return err
		}
	}

	// 4. Publish. newT reflects the base at the captured pending epoch;
	// appends that landed during the merge stay pending and chain off it.
	p.cachePublishReplace(e, newT, st.pendEpoch, st.to, pubPreserve, true)
	ok = true
	if sp != nil {
		sp.AttrInt("cache.delta_rows", int64(st.to-st.from))
		sp.AttrInt("cache.merged_groups", int64(roll.NumRows()))
	}
	return nil
}

// cacheRebuild recomputes the summary from the live base table — the
// degradation path for non-distributive summaries, UPDATE/DELETE, writes
// that bypassed the hook, and faults mid-delta.
func (p *Planner) cacheRebuild(ctx context.Context, eng *engine.Engine, parallelism int, sp *obs.Span, e *summaryEntry, meta *deltaMeta, newT string) error {
	ok := false
	defer func() {
		if !ok {
			_, _ = eng.ExecSQL("DROP TABLE IF EXISTS " + newT)
		}
	}()
	p.mu.Lock()
	gen0 := e.gen
	p.mu.Unlock()
	base, err := eng.Catalog().Get(meta.base)
	if err != nil {
		return err
	}
	preEpoch, preRows := base.Epoch(), base.NumRows()
	if _, err := eng.ExecSQLCtxIn(ctx, fmt.Sprintf("CREATE TABLE %s (%s)", newT, meta.colDefs), 1, sp); err != nil {
		return err
	}
	buildSQL := fmt.Sprintf("INSERT INTO %s SELECT %s FROM %s%s%s",
		newT, meta.selects, meta.base, meta.where, meta.groupBy)
	if _, err := eng.ExecSQLCtxIn(ctx, buildSQL, parallelism, sp); err != nil {
		return err
	}
	mode := pubValid
	p.mu.Lock()
	raced := e.gen != gen0
	p.mu.Unlock()
	if raced {
		// DML landed while the rebuild scanned; the result is correct for
		// this plan but may not match the stamped epoch.
		mode = pubInvalid
	}
	p.cachePublishReplace(e, newT, preEpoch, preRows, mode, false)
	ok = true
	return nil
}

// mergeValues combines one aggregate cell across two disjoint row
// partitions, mirroring the engine's distributive fold: NULL is the
// identity, integer sums stay integers (so merged results are bit-identical
// to a cold aggregation), mixed numeric types demote to float.
func mergeValues(op mergeOp, a, b value.Value) value.Value {
	if a.IsNull() {
		return b
	}
	if b.IsNull() {
		return a
	}
	switch op {
	case mergeAdd:
		if a.Kind() == value.KindInt && b.Kind() == value.KindInt {
			return value.NewInt(a.Int() + b.Int())
		}
		af, _ := a.AsFloat()
		bf, _ := b.AsFloat()
		return value.NewFloat(af + bf)
	case mergeMin:
		if lessValue(b, a) {
			return b
		}
		return a
	default: // mergeMax
		if lessValue(a, b) {
			return b
		}
		return a
	}
}

// lessValue orders two non-NULL values the way min/max do: numerics
// numerically, strings lexically, bools false-first.
func lessValue(a, b value.Value) bool {
	if a.Kind() == value.KindInt && b.Kind() == value.KindInt {
		return a.Int() < b.Int()
	}
	if a.IsNumeric() && b.IsNumeric() {
		af, _ := a.AsFloat()
		bf, _ := b.AsFloat()
		return af < bf
	}
	if a.Kind() == value.KindString && b.Kind() == value.KindString {
		return a.Str() < b.Str()
	}
	if a.Kind() == value.KindBool && b.Kind() == value.KindBool {
		return !a.Bool() && b.Bool()
	}
	return a.String() < b.String()
}

// isLifecycleErr reports whether err is cancellation, a budget, or a
// contained panic — outcomes that must propagate to the caller rather than
// trigger a cache rebuild (rebuilding would dodge the user's cancel).
func isLifecycleErr(err error) bool {
	var ce *engine.CancelledError
	var le *engine.LimitError
	var pe *engine.PanicError
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) ||
		errors.As(err, &ce) || errors.As(err, &le) || errors.As(err, &pe)
}
