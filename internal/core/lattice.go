package core

import (
	"fmt"
	"strings"

	"repro/internal/expr"
	"repro/internal/storage"
)

// maxLatticeNodes caps the resolved grouping-set lattice. CUBE doubles the
// node count per dimension, so the cap corresponds to CUBE over eight
// dimensions — beyond that the cross-tab result is almost certainly a
// mistake, and the per-node plan steps would dwarf the base-table scan the
// lattice exists to avoid.
const maxLatticeNodes = 256

// mergeSelect renders the re-aggregation of an already aggregated column one
// lattice level coarser: distributive aggregates fold with sum (sum and
// count both add), min with min, max with max.
func mergeSelect(op mergeOp, col string) string {
	switch op {
	case mergeMin:
		return "min(" + quoteIdent(col) + ")"
	case mergeMax:
		return "max(" + quoteIdent(col) + ")"
	default:
		return "sum(" + quoteIdent(col) + ")"
	}
}

// planLattice generates the evaluation plan for GROUP BY ROLLUP / CUBE /
// GROUPING SETS. The paper's percentage aggregations compose with Gray
// et al.'s data cube by planning the lattice bottom-up: one scan of F
// builds the finest summary FS (grouped by the union of every set's
// dimensions, plus any Hpct BY columns), and every coarser node re-aggregates
// FS — legal because every value column is distributive (measure sums
// always; accompanying plain aggregates are restricted to sum, count, min
// and max). Vpct totals (Fj) and the final division run per node against
// the node's own summary, so percentage-of-parent semantics fall out of the
// existing super-group machinery with the node's grouping standing in for
// GROUP BY.
//
// FS shares the summary cache with planVertical's Fk (same key layout), so
// a cached finest summary answers the whole lattice under DML through the
// usual epoch/delta maintenance.
//
// Rows land in a cross-tab table FC node by node, finest first, with NULL
// filling the dimensions a node rolled away and GROUPING(d1, …) markers
// materialized as integer literals per node.
func (p *Planner) planLattice(a *analysis, opts Options) (*Plan, error) {
	kw := a.setsKind.Keyword()
	if a.class == ClassHorizontalAgg {
		return nil, fmt.Errorf("core: horizontal aggregations are not supported with GROUP BY %s", kw)
	}
	if a.class == ClassVertical {
		if opts.Vpct.UseUpdate {
			return nil, fmt.Errorf("core: the UPDATE strategy mutates its summary in place and cannot be combined with GROUP BY %s", kw)
		}
		if opts.Vpct.MissingRows != MissingNone {
			return nil, fmt.Errorf("core: missing-row handling is not supported with GROUP BY %s", kw)
		}
	}
	if a.class == ClassHorizontalPct {
		if opts.Hpct.FromFV {
			return nil, fmt.Errorf("core: the from-FV strategy is not supported with GROUP BY %s; use the direct strategy", kw)
		}
		if opts.Hpct.HashPivot {
			return nil, fmt.Errorf("core: HashPivot is not supported with GROUP BY %s", kw)
		}
	}
	if len(a.sets) == 0 {
		return nil, fmt.Errorf("core: internal: GROUP BY %s resolved to no grouping sets", kw)
	}
	if len(a.sets) > maxLatticeNodes {
		return nil, fmt.Errorf("core: GROUP BY %s expands to %d grouping sets; the limit is %d", kw, len(a.sets), maxLatticeNodes)
	}

	plan := &Plan{Class: a.class}

	// ---- gather terms ----
	// Measure columns are shared across percentage terms with the same
	// expression, exactly as planVertical shares them, so a Vertical-class
	// lattice query produces the same FS layout (and cache key) planVertical
	// would produce for its Fk.
	type mcol struct {
		sql, col string
		arg      expr.Expr
	}
	var measureOrder []mcol
	measureCols := map[string]string{}
	measureOf := func(arg expr.Expr) string {
		mSQL := arg.String()
		col, ok := measureCols[mSQL]
		if !ok {
			col = fmt.Sprintf("m%d", len(measureOrder)+1)
			measureCols[mSQL] = col
			measureOrder = append(measureOrder, mcol{sql: mSQL, col: col, arg: arg})
		}
		return col
	}

	type vpctTerm struct {
		itemIdx    int
		call       *expr.AggCall
		measureCol string
	}
	type hpctTerm struct {
		itemIdx    int
		call       *expr.AggCall
		measureCol string
		combos     []combo
	}
	var vterms []*vpctTerm
	var hterms []*hpctTerm
	var extras []int
	for idx, it := range a.items {
		switch it.kind {
		case itemPct:
			if it.agg.Fn == expr.AggVpct {
				vterms = append(vterms, &vpctTerm{itemIdx: idx, call: it.agg, measureCol: measureOf(it.agg.Arg)})
				continue
			}
			// Hpct: the feedback pass defines the pivot columns once for the
			// whole lattice; every node shares the layout.
			combos, err := p.feedbackCombos(a.table, it.agg.By, a.whereSQL())
			if err != nil {
				return nil, err
			}
			if len(combos) == 0 {
				return nil, fmt.Errorf("core: Hpct over empty input: no BY combinations in %s", a.table)
			}
			hterms = append(hterms, &hpctTerm{itemIdx: idx, call: it.agg, measureCol: measureOf(it.agg.Arg), combos: combos})
		case itemVertAgg:
			if _, ok := mergeOpFor(it.agg); !ok {
				return nil, fmt.Errorf("core: %s is not distributive and cannot be derived from the finest lattice summary; only sum, count, min and max can accompany GROUP BY %s", it.agg, kw)
			}
			extras = append(extras, idx)
		}
	}

	// ---- FS: the finest summary, the lattice's only base-table scan ----
	// Its grouping is the finest dimension list plus any Hpct BY columns:
	// node derivation needs the BY values to pivot on.
	fsGroup := append([]string(nil), a.groupCols...)
	for _, t := range hterms {
		for _, b := range t.call.By {
			if !containsFold(fsGroup, b) {
				fsGroup = append(fsGroup, b)
			}
		}
	}

	var fsCols, fsSelect []string
	for _, g := range fsGroup {
		fsCols = append(fsCols, colDef(g, a.schema[a.schema.ColumnIndex(g)].Type))
		fsSelect = append(fsSelect, quoteIdent(g))
	}
	merges := make([]mergeOp, 0, len(measureOrder)+len(extras)+1)
	for _, m := range measureOrder {
		fsCols = append(fsCols, colDef(m.col, exprType(m.arg, a.schema)))
		fsSelect = append(fsSelect, "sum("+m.sql+")")
		merges = append(merges, mergeAdd)
	}
	extraCol := map[int]string{}
	extraOp := map[int]mergeOp{}
	for n, idx := range extras {
		call := a.items[idx].agg
		col := fmt.Sprintf("x%d", n+1)
		extraCol[idx] = col
		op, _ := mergeOpFor(call)
		extraOp[idx] = op
		merges = append(merges, op)
		fsCols = append(fsCols, colDef(col, aggResultType(call, a.schema)))
		fsSelect = append(fsSelect, call.String())
	}
	// A query of bare dimensions and GROUPING markers has no value columns;
	// carry a row count so every node summary stays a well-formed relation
	// (and the grand-total node has something to aggregate).
	filler := len(measureOrder) == 0 && len(extras) == 0
	if filler {
		fsCols = append(fsCols, colDef("cnt", storage.TypeInt))
		fsSelect = append(fsSelect, "count(*)")
		merges = append(merges, mergeAdd)
	}

	// Same key layout as planVertical's Fk, so lattice and plain Vpct plans
	// share one cached summary.
	fsKey := fmt.Sprintf("fk|%s|%s|%s|%s|%s", a.table, whereSuffix(a.where),
		joinIdents(fsGroup), strings.Join(fsSelect, ","), strings.Join(fsCols, ","))
	// Virtual relations are excluded for the same reason as in planVertical:
	// no DML hook ever validates or maintains a summary cached over them.
	shareable := p.shareSummaries && len(fsGroup) > 0 && !p.Eng.IsVirtualTable(a.table)
	var fsMeta *deltaMeta
	if shareable {
		// Every column is distributive by construction, so FS is always
		// incrementally maintainable.
		fsMeta = &deltaMeta{
			base:    a.table,
			where:   whereSuffix(a.where),
			groupBy: groupByClause(fsGroup),
			selects: strings.Join(fsSelect, ", "),
			colDefs: strings.Join(fsCols, ", "),
			nGroup:  len(fsGroup),
			merges:  merges,
		}
	}
	fs := p.temp("fs")
	fsMode := cacheOff
	var fsReg *summaryEntry
	if shareable {
		fs, fsMode, fsReg = p.cacheLookup(fsKey, fs, a.table, fsMeta)
	} else {
		plan.Cleanup = append(plan.Cleanup, Step{Purpose: "drop FS", SQL: "DROP TABLE IF EXISTS " + fs})
	}
	switch fsMode {
	case cacheHitClean:
		plan.cacheHits++
		plan.Steps = append(plan.Steps, cacheHitStep("FS", fs))
	case cacheHitDelta:
		plan.cacheHits++
		plan.Steps = append(plan.Steps, p.cacheDeltaStep(fsReg, fs, "FS"))
	default:
		if fsMode == cacheMiss {
			plan.cacheRegs = append(plan.cacheRegs, fsReg)
			plan.Steps = append(plan.Steps, p.cacheCaptureStep(fsReg, a.table))
		}
		plan.Steps = append(plan.Steps,
			Step{Purpose: "create FS", SQL: fmt.Sprintf("CREATE TABLE %s (%s)", fs, strings.Join(fsCols, ", "))},
			Step{Purpose: "compute finest summary FS from F (the lattice's only base-table scan)",
				SQL: fmt.Sprintf("INSERT INTO %s SELECT %s FROM %s%s%s",
					fs, strings.Join(fsSelect, ", "), a.table, whereSuffix(a.where), groupByClause(fsGroup))},
		)
		if fsMode == cacheMiss {
			plan.Steps = append(plan.Steps, p.cachePublishStep(fsReg, "FS"))
		}
	}
	fsFromCache := fsMode == cacheHitClean || fsMode == cacheHitDelta

	p.mu.Lock()
	p.cstats.LatticePlans++
	p.cstats.LatticeNodes += int64(len(a.sets))
	if fsFromCache {
		p.cstats.LatticeFinestReused++
	}
	p.mu.Unlock()
	mCacheLatticePlans.Inc()
	for range a.sets {
		mCacheLatticeNodes.Inc()
	}
	if fsFromCache {
		mCacheLatticeReused.Inc()
	}

	// ---- output columns ----
	// One name per select item, except Hpct items which expand to one column
	// per BY combination under planHorizontalPct's naming discipline.
	htermOf := func(idx int) *hpctTerm {
		for _, t := range hterms {
			if t.itemIdx == idx {
				return t
			}
		}
		return nil
	}
	multiH := len(hterms) > 1
	itemNames := make([][]string, len(a.items))
	for idx, it := range a.items {
		switch it.kind {
		case itemGroupCol:
			name := it.col
			if it.alias != "" {
				name = it.alias
			}
			itemNames[idx] = []string{name}
		case itemPct:
			if it.agg.Fn == expr.AggVpct {
				name := "pct"
				if it.alias != "" {
					name = it.alias
				} else if cr, ok := it.agg.Arg.(*expr.ColumnRef); ok {
					name = cr.Name
				}
				itemNames[idx] = []string{name}
				continue
			}
			t := htermOf(idx)
			prefix := ""
			if multiH {
				if it.alias != "" {
					prefix = it.alias + ":"
				} else if cr, ok := t.call.Arg.(*expr.ColumnRef); ok {
					prefix = cr.Name + ":"
				} else {
					prefix = fmt.Sprintf("pct%d:", t.itemIdx)
				}
			}
			for _, c := range t.combos {
				itemNames[idx] = append(itemNames[idx], prefix+c.label)
			}
		case itemVertAgg:
			if it.alias != "" {
				itemNames[idx] = []string{it.alias}
			} else {
				itemNames[idx] = []string{it.agg.String()}
			}
		case itemGrouping:
			if it.alias != "" {
				itemNames[idx] = []string{it.alias}
			} else {
				itemNames[idx] = []string{"grouping(" + strings.Join(it.gcols, ", ") + ")"}
			}
		}
	}
	var flat []string
	for _, ns := range itemNames {
		flat = append(flat, ns...)
	}
	flat = uniqueNames(flat)
	// itemPos[idx] is the 1-based FC position of item idx's first column.
	itemPos := make([]int, len(a.items))
	pos := 0
	for idx, ns := range itemNames {
		itemPos[idx] = pos + 1
		copy(ns, flat[pos:pos+len(ns)])
		pos += len(ns)
	}

	if p.MaxColumns > 0 && len(flat) > p.MaxColumns {
		return nil, fmt.Errorf("core: result needs %d columns but MaxColumns is %d; grouping-set results cannot be partitioned",
			len(flat), p.MaxColumns)
	}
	for _, t := range hterms {
		plan.N += len(t.combos)
	}

	// ---- FC: the cross-tab result, one block of rows per lattice node ----
	var fcCols []string
	for idx, it := range a.items {
		ns := itemNames[idx]
		switch it.kind {
		case itemGroupCol:
			fcCols = append(fcCols, colDef(ns[0], a.schema[a.schema.ColumnIndex(it.col)].Type))
		case itemPct:
			for _, n := range ns {
				fcCols = append(fcCols, colDef(n, storage.TypeFloat))
			}
		case itemVertAgg:
			fcCols = append(fcCols, colDef(ns[0], aggResultType(it.agg, a.schema)))
		case itemGrouping:
			fcCols = append(fcCols, colDef(ns[0], storage.TypeInt))
		}
	}
	fc := p.temp("fc")
	plan.Cleanup = append(plan.Cleanup, Step{Purpose: "drop FC", SQL: "DROP TABLE IF EXISTS " + fc})
	plan.Steps = append(plan.Steps, Step{Purpose: "create cross-tab result FC",
		SQL: fmt.Sprintf("CREATE TABLE %s (%s)", fc, strings.Join(fcCols, ", "))})

	// Per-node ORDER BY over the node's own dimensions (by FC position)
	// keeps each block internally sorted. It is only emitted when every
	// dimension of the set is selected — a total order over the node's key —
	// so the block order cannot depend on sort stability.
	nodeOrder := func(set []string) string {
		var parts []string
		for _, d := range set {
			found := false
			for idx, it := range a.items {
				if it.kind == itemGroupCol && strings.EqualFold(it.col, d) {
					parts = append(parts, fmt.Sprintf("%d", itemPos[idx]))
					found = true
					break
				}
			}
			if !found {
				return ""
			}
		}
		if len(parts) == 0 {
			return ""
		}
		return " ORDER BY " + strings.Join(parts, ", ")
	}

	// ---- per-node derivation, finest first ----
	for ni, set := range a.sets {
		label := "(" + strings.Join(set, ", ") + ")"
		inSet := func(col string) bool { return containsFold(set, col) }

		groupClause := ""
		if len(set) > 0 {
			groupClause = " GROUP BY " + joinIdents(set)
		}

		if len(hterms) > 0 {
			// Horizontal node: one grouped select over FS computes every
			// pivot cell, then a plain projection lands the block in FC
			// (literals — NULL dims and GROUPING markers — stay out of the
			// grouped select).
			nh := p.temp("nh")
			plan.Cleanup = append(plan.Cleanup, Step{Purpose: "drop node summary", SQL: "DROP TABLE IF EXISTS " + nh})
			var nhCols, nhSelect []string
			for _, g := range set {
				nhCols = append(nhCols, colDef(g, a.schema[a.schema.ColumnIndex(g)].Type))
				nhSelect = append(nhSelect, quoteIdent(g))
			}
			hcell := map[int][]string{} // itemIdx → value column names
			hn := 0
			for _, t := range hterms {
				m := quoteIdent(t.measureCol)
				for _, c := range t.combos {
					hn++
					col := fmt.Sprintf("h%d", hn)
					hcell[t.itemIdx] = append(hcell[t.itemIdx], col)
					cond := comboCond("", t.call.By, c.vals)
					nhCols = append(nhCols, colDef(col, storage.TypeFloat))
					nhSelect = append(nhSelect, fmt.Sprintf(
						"CASE WHEN sum(%s) <> 0 THEN sum(CASE WHEN %s THEN %s ELSE 0 END) / sum(%s) ELSE NULL END",
						m, cond, m, m))
				}
			}
			for _, idx := range extras {
				nhCols = append(nhCols, colDef(extraCol[idx], aggResultType(a.items[idx].agg, a.schema)))
				nhSelect = append(nhSelect, mergeSelect(extraOp[idx], extraCol[idx]))
			}
			plan.Steps = append(plan.Steps,
				Step{Purpose: fmt.Sprintf("create summary for lattice node %s", label),
					SQL: fmt.Sprintf("CREATE TABLE %s (%s)", nh, strings.Join(nhCols, ", "))},
				Step{Purpose: fmt.Sprintf("lattice node %s: pivot from FS", label),
					SQL: fmt.Sprintf("INSERT INTO %s SELECT %s FROM %s%s",
						nh, strings.Join(nhSelect, ", "), fs, groupClause)},
			)

			var proj []string
			for idx, it := range a.items {
				switch it.kind {
				case itemGroupCol:
					if inSet(it.col) {
						proj = append(proj, quoteIdent(it.col))
					} else {
						proj = append(proj, "NULL")
					}
				case itemPct:
					for _, c := range hcell[idx] {
						proj = append(proj, quoteIdent(c))
					}
				case itemVertAgg:
					proj = append(proj, quoteIdent(extraCol[idx]))
				case itemGrouping:
					proj = append(proj, fmt.Sprintf("%d", groupingMarker(it.gcols, set)))
				}
			}
			plan.Steps = append(plan.Steps, Step{
				Purpose: fmt.Sprintf("lattice node %d %s: append cross-tab rows to FC", ni+1, label),
				SQL: fmt.Sprintf("INSERT INTO %s SELECT %s FROM %s%s",
					fc, strings.Join(proj, ", "), nh, nodeOrder(set)),
			})
			continue
		}

		// Vertical / standard node: the finest node is served by FS itself;
		// coarser nodes re-aggregate it.
		nodeAgg := fs
		if !sameColumnSet(set, fsGroup) {
			nodeAgg = p.temp("nfk")
			plan.Cleanup = append(plan.Cleanup, Step{Purpose: "drop node summary", SQL: "DROP TABLE IF EXISTS " + nodeAgg})
			var nCols, nSelect []string
			for _, g := range set {
				nCols = append(nCols, colDef(g, a.schema[a.schema.ColumnIndex(g)].Type))
				nSelect = append(nSelect, quoteIdent(g))
			}
			for _, m := range measureOrder {
				nCols = append(nCols, colDef(m.col, exprType(m.arg, a.schema)))
				nSelect = append(nSelect, "sum("+quoteIdent(m.col)+")")
			}
			for _, idx := range extras {
				nCols = append(nCols, colDef(extraCol[idx], aggResultType(a.items[idx].agg, a.schema)))
				nSelect = append(nSelect, mergeSelect(extraOp[idx], extraCol[idx]))
			}
			if filler {
				nCols = append(nCols, colDef("cnt", storage.TypeInt))
				nSelect = append(nSelect, "sum(cnt)")
			}
			plan.Steps = append(plan.Steps,
				Step{Purpose: fmt.Sprintf("create summary for lattice node %s", label),
					SQL: fmt.Sprintf("CREATE TABLE %s (%s)", nodeAgg, strings.Join(nCols, ", "))},
				Step{Purpose: fmt.Sprintf("lattice node %s: roll up from FS", label),
					SQL: fmt.Sprintf("INSERT INTO %s SELECT %s FROM %s%s",
						nodeAgg, strings.Join(nSelect, ", "), fs, groupClause)},
			)
		}

		// Vpct totals per term: Fj groups the node summary by the node's
		// super-group (the node dimensions minus BY), and the division joins
		// it back — the paper's Section 3.1 with this node standing in for
		// GROUP BY.
		fjOf := map[int]string{}
		fjCols := map[int][]string{}
		for vi, t := range vterms {
			// An empty BY list means totals over all rows (j = 0), exactly as
			// in totalsColsOf; otherwise the node's super-group is its
			// dimensions minus BY.
			var totals []string
			if len(t.call.By) > 0 {
				for _, g := range set {
					if !containsFold(t.call.By, g) {
						totals = append(totals, g)
					}
				}
			}
			fj := p.temp("fj")
			fjOf[t.itemIdx] = fj
			fjCols[t.itemIdx] = totals
			plan.Cleanup = append(plan.Cleanup, Step{Purpose: "drop Fj", SQL: "DROP TABLE IF EXISTS " + fj})
			var cols, sel []string
			for _, g := range totals {
				cols = append(cols, colDef(g, a.schema[a.schema.ColumnIndex(g)].Type))
				sel = append(sel, quoteIdent(g))
			}
			cols = append(cols, colDef("A", storage.TypeFloat))
			sel = append(sel, "sum("+quoteIdent(t.measureCol)+")")
			gc := ""
			if len(totals) > 0 {
				gc = " GROUP BY " + joinIdents(totals)
			}
			plan.Steps = append(plan.Steps,
				Step{Purpose: fmt.Sprintf("create Fj for lattice node %s (term %d)", label, vi+1),
					SQL: fmt.Sprintf("CREATE TABLE %s (%s)", fj, strings.Join(cols, ", "))},
				Step{Purpose: fmt.Sprintf("lattice node %s: totals Fj from the node summary (term %d)", label, vi+1),
					SQL: fmt.Sprintf("INSERT INTO %s SELECT %s FROM %s%s",
						fj, strings.Join(sel, ", "), nodeAgg, gc)},
			)
		}

		from := []string{nodeAgg}
		var conds []string
		for _, t := range vterms {
			fj := fjOf[t.itemIdx]
			from = append(from, fj)
			if len(fjCols[t.itemIdx]) > 0 {
				conds = append(conds, equalityChainNullSafe(nodeAgg, fj, fjCols[t.itemIdx]))
			}
		}
		qualify := len(from) > 1
		ref := func(col string) string {
			if qualify {
				return nodeAgg + "." + quoteIdent(col)
			}
			return quoteIdent(col)
		}
		var proj []string
		for idx, it := range a.items {
			switch it.kind {
			case itemGroupCol:
				if inSet(it.col) {
					proj = append(proj, ref(it.col))
				} else {
					proj = append(proj, "NULL")
				}
			case itemPct:
				var t *vpctTerm
				for _, tt := range vterms {
					if tt.itemIdx == idx {
						t = tt
					}
				}
				fj := fjOf[idx]
				proj = append(proj, fmt.Sprintf("CASE WHEN %s.A <> 0 THEN %s / %s.A ELSE NULL END",
					fj, ref(t.measureCol), fj))
			case itemVertAgg:
				proj = append(proj, ref(extraCol[idx]))
			case itemGrouping:
				proj = append(proj, fmt.Sprintf("%d", groupingMarker(it.gcols, set)))
			}
		}
		where := ""
		if len(conds) > 0 {
			where = " WHERE " + strings.Join(conds, " AND ")
		}
		plan.Steps = append(plan.Steps, Step{
			Purpose: fmt.Sprintf("lattice node %d %s: append cross-tab rows to FC", ni+1, label),
			SQL: fmt.Sprintf("INSERT INTO %s SELECT %s FROM %s%s%s",
				fc, strings.Join(proj, ", "), strings.Join(from, ", "), where, nodeOrder(set)),
		})
	}

	// ---- final projection ----
	// No default ordering: the node-major block order is the result's shape
	// (finest first, grand total last), and a group-column sort would
	// interleave the blocks. The user's ORDER BY still applies.
	finalCols := make([]string, len(flat))
	for i, n := range flat {
		finalCols[i] = quoteIdent(n)
	}
	userOrder := ""
	if len(a.orderBy) > 0 {
		parts := make([]string, len(a.orderBy))
		for i, k := range a.orderBy {
			parts[i] = k.String()
		}
		userOrder = " ORDER BY " + strings.Join(parts, ", ")
	}
	plan.ResultTable = fc
	plan.ResultTables = []string{fc}
	plan.FinalSelect = fmt.Sprintf("SELECT %s FROM %s%s%s",
		strings.Join(finalCols, ", "), fc, userOrder, limitClause(a))
	return plan, nil
}

// groupingMarker computes the GROUPING(d1, …, dn) bit vector for a lattice
// node: bit n-1-i is set when di is rolled away (absent from the node's
// grouping set), matching the SQL standard's GROUPING semantics.
func groupingMarker(gcols, set []string) int {
	marker := 0
	for i, g := range gcols {
		if !containsFold(set, g) {
			marker |= 1 << (len(gcols) - 1 - i)
		}
	}
	return marker
}
