package expr

import (
	"strings"

	"repro/internal/value"
)

// InList is x [NOT] IN (e1, …, eN), with SQL three-valued semantics: TRUE
// if any element equals x; otherwise NULL if x or any element is NULL;
// otherwise FALSE. NOT IN negates under 3VL.
type InList struct {
	Operand Expr
	List    []Expr
	Negate  bool
}

// Eval applies the predicate.
func (n *InList) Eval(row Row) (value.Value, error) {
	x, err := n.Operand.Eval(row)
	if err != nil {
		return value.Null, err
	}
	sawNull := x.IsNull()
	found := false
	for _, e := range n.List {
		v, err := e.Eval(row)
		if err != nil {
			return value.Null, err
		}
		eq := value.SQLEqual(x, v)
		switch {
		case eq.IsNull():
			sawNull = true
		case eq.Bool():
			found = true
		}
	}
	var out value.Value
	switch {
	case found:
		out = value.NewBool(true)
	case sawNull:
		out = value.Null
	default:
		out = value.NewBool(false)
	}
	if n.Negate {
		out = value.Not(out)
	}
	return out, nil
}

// String renders the predicate.
func (n *InList) String() string {
	parts := make([]string, len(n.List))
	for i, e := range n.List {
		parts[i] = e.String()
	}
	op := " IN ("
	if n.Negate {
		op = " NOT IN ("
	}
	return "(" + n.Operand.String() + op + strings.Join(parts, ", ") + "))"
}

// Between is x [NOT] BETWEEN lo AND hi, equivalent to x >= lo AND x <= hi
// under three-valued logic.
type Between struct {
	Operand Expr
	Lo, Hi  Expr
	Negate  bool
}

// Eval applies the predicate.
func (n *Between) Eval(row Row) (value.Value, error) {
	x, err := n.Operand.Eval(row)
	if err != nil {
		return value.Null, err
	}
	lo, err := n.Lo.Eval(row)
	if err != nil {
		return value.Null, err
	}
	hi, err := n.Hi.Eval(row)
	if err != nil {
		return value.Null, err
	}
	ge, err := value.SQLCompare(">=", x, lo)
	if err != nil {
		return value.Null, err
	}
	le, err := value.SQLCompare("<=", x, hi)
	if err != nil {
		return value.Null, err
	}
	out := value.And(ge, le)
	if n.Negate {
		out = value.Not(out)
	}
	return out, nil
}

// String renders the predicate.
func (n *Between) String() string {
	op := " BETWEEN "
	if n.Negate {
		op = " NOT BETWEEN "
	}
	return "(" + n.Operand.String() + op + n.Lo.String() + " AND " + n.Hi.String() + ")"
}

// Like is x [NOT] LIKE pattern, with % matching any run and _ matching one
// character. NULL operand or pattern yields NULL.
type Like struct {
	Operand Expr
	Pattern Expr
	Negate  bool
}

// Eval applies the predicate.
func (n *Like) Eval(row Row) (value.Value, error) {
	x, err := n.Operand.Eval(row)
	if err != nil {
		return value.Null, err
	}
	p, err := n.Pattern.Eval(row)
	if err != nil {
		return value.Null, err
	}
	if x.IsNull() || p.IsNull() {
		return value.Null, nil
	}
	if x.Kind() != value.KindString || p.Kind() != value.KindString {
		return value.Null, nil
	}
	out := value.NewBool(likeMatch(x.Str(), p.Str()))
	if n.Negate {
		out = value.Not(out)
	}
	return out, nil
}

// String renders the predicate.
func (n *Like) String() string {
	op := " LIKE "
	if n.Negate {
		op = " NOT LIKE "
	}
	return "(" + n.Operand.String() + op + n.Pattern.String() + ")"
}

// likeMatch implements SQL LIKE with % and _ wildcards via two-pointer
// backtracking (linear in practice, no regexp compilation per row).
func likeMatch(s, pat string) bool {
	si, pi := 0, 0
	star, ss := -1, 0
	for si < len(s) {
		switch {
		case pi < len(pat) && (pat[pi] == '_' || pat[pi] == s[si]):
			si++
			pi++
		case pi < len(pat) && pat[pi] == '%':
			star, ss = pi, si
			pi++
		case star >= 0:
			ss++
			si = ss
			pi = star + 1
		default:
			return false
		}
	}
	for pi < len(pat) && pat[pi] == '%' {
		pi++
	}
	return pi == len(pat)
}
