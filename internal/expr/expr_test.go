package expr

import (
	"strings"
	"testing"

	"repro/internal/value"
)

// evalOn binds e against names and evaluates it on vals.
func evalOn(t *testing.T, e Expr, names []string, vals ...value.Value) value.Value {
	t.Helper()
	b, err := Bind(e, SchemaResolver(names))
	if err != nil {
		t.Fatalf("Bind(%s): %v", e, err)
	}
	v, err := b.Eval(ValuesRow(vals))
	if err != nil {
		t.Fatalf("Eval(%s): %v", e, err)
	}
	return v
}

func TestLiteralAndString(t *testing.T) {
	l := NewLiteral(value.NewString("o'brien"))
	v, err := l.Eval(nil)
	if err != nil || v.Str() != "o'brien" {
		t.Fatalf("literal eval: %v %v", v, err)
	}
	if l.String() != "'o''brien'" {
		t.Errorf("literal SQL = %q", l.String())
	}
	if NewLiteral(value.NewInt(5)).String() != "5" {
		t.Error("int literal rendering")
	}
	if NewLiteral(value.Null).String() != "NULL" {
		t.Error("null literal rendering")
	}
}

func TestColumnBindingAndEval(t *testing.T) {
	e := Col("b")
	if _, err := e.Eval(ValuesRow{value.NewInt(1)}); err == nil {
		t.Error("unbound column must not evaluate")
	}
	got := evalOn(t, e, []string{"a", "b"}, value.NewInt(1), value.NewInt(2))
	if got.Int() != 2 {
		t.Errorf("b = %v", got)
	}
	if _, err := Bind(Col("zz"), SchemaResolver([]string{"a"})); err == nil {
		t.Error("binding unknown column must fail")
	}
	q := QCol("t", "a")
	if q.String() != "t.a" {
		t.Errorf("qualified name = %q", q.String())
	}
	bc := BoundCol("x", 0)
	if !bc.Bound() {
		t.Error("BoundCol must be bound")
	}
}

func TestArithmeticExpr(t *testing.T) {
	// (a + 2) * b
	e := &BinaryOp{Op: "*",
		Left:  &BinaryOp{Op: "+", Left: Col("a"), Right: NewLiteral(value.NewInt(2))},
		Right: Col("b")}
	got := evalOn(t, e, []string{"a", "b"}, value.NewInt(3), value.NewInt(4))
	if got.Int() != 20 {
		t.Errorf("(3+2)*4 = %v", got)
	}
	if e.String() != "((a + 2) * b)" {
		t.Errorf("String = %q", e.String())
	}
}

func TestDivisionByZeroIsNull(t *testing.T) {
	e := &BinaryOp{Op: "/", Left: Col("a"), Right: Col("b")}
	got := evalOn(t, e, []string{"a", "b"}, value.NewInt(1), value.NewInt(0))
	if !got.IsNull() {
		t.Errorf("1/0 = %v, want NULL", got)
	}
}

func TestComparisonAndLogic(t *testing.T) {
	// a < 5 AND NOT (b = 'x')
	e := &BinaryOp{Op: "AND",
		Left:  &BinaryOp{Op: "<", Left: Col("a"), Right: NewLiteral(value.NewInt(5))},
		Right: &UnaryOp{Op: "NOT", Operand: &BinaryOp{Op: "=", Left: Col("b"), Right: NewLiteral(value.NewString("x"))}}}
	got := evalOn(t, e, []string{"a", "b"}, value.NewInt(3), value.NewString("y"))
	if !got.Bool() {
		t.Errorf("3<5 AND NOT y=x = %v", got)
	}
	got = evalOn(t, e, []string{"a", "b"}, value.NewInt(3), value.Null)
	if !got.IsNull() {
		t.Errorf("NULL comparison under AND = %v, want NULL", got)
	}
}

func TestUnaryMinus(t *testing.T) {
	e := &UnaryOp{Op: "-", Operand: Col("a")}
	if got := evalOn(t, e, []string{"a"}, value.NewInt(5)); got.Int() != -5 {
		t.Errorf("-5 = %v", got)
	}
	if e.String() != "(-a)" {
		t.Errorf("String = %q", e.String())
	}
}

func TestIsNullPredicate(t *testing.T) {
	e := &IsNull{Operand: Col("a")}
	if got := evalOn(t, e, []string{"a"}, value.Null); !got.Bool() {
		t.Error("NULL IS NULL must be true")
	}
	if got := evalOn(t, e, []string{"a"}, value.NewInt(0)); got.Bool() {
		t.Error("0 IS NULL must be false")
	}
	n := &IsNull{Operand: Col("a"), Negate: true}
	if got := evalOn(t, n, []string{"a"}, value.NewInt(0)); !got.Bool() {
		t.Error("0 IS NOT NULL must be true")
	}
	if !strings.Contains(n.String(), "IS NOT NULL") {
		t.Errorf("String = %q", n.String())
	}
}

func TestCaseExpr(t *testing.T) {
	// CASE WHEN d = 'Mo' THEN a WHEN d = 'Tu' THEN 0 ELSE -1 END
	c := &Case{
		Whens: []When{
			{Cond: &BinaryOp{Op: "=", Left: Col("d"), Right: NewLiteral(value.NewString("Mo"))}, Result: Col("a")},
			{Cond: &BinaryOp{Op: "=", Left: Col("d"), Right: NewLiteral(value.NewString("Tu"))}, Result: NewLiteral(value.NewInt(0))},
		},
		Else: NewLiteral(value.NewInt(-1)),
	}
	names := []string{"d", "a"}
	if got := evalOn(t, c, names, value.NewString("Mo"), value.NewInt(9)); got.Int() != 9 {
		t.Errorf("Mo arm = %v", got)
	}
	if got := evalOn(t, c, names, value.NewString("Tu"), value.NewInt(9)); got.Int() != 0 {
		t.Errorf("Tu arm = %v", got)
	}
	if got := evalOn(t, c, names, value.NewString("We"), value.NewInt(9)); got.Int() != -1 {
		t.Errorf("else arm = %v", got)
	}
	// NULL condition does not match (UNKNOWN is not truthy).
	if got := evalOn(t, c, names, value.Null, value.NewInt(9)); got.Int() != -1 {
		t.Errorf("null cond arm = %v", got)
	}
	s := c.String()
	if !strings.HasPrefix(s, "CASE WHEN") || !strings.HasSuffix(s, "END") {
		t.Errorf("String = %q", s)
	}
}

func TestCaseWithoutElseYieldsNull(t *testing.T) {
	c := &Case{Whens: []When{{Cond: NewLiteral(value.NewBool(false)), Result: NewLiteral(value.NewInt(1))}}}
	v, err := c.Eval(nil)
	if err != nil || !v.IsNull() {
		t.Errorf("CASE without ELSE = %v, %v", v, err)
	}
}

func TestScalarFunctions(t *testing.T) {
	call := func(name string, args ...Expr) Value2 {
		return Value2{t, &FuncCall{Name: name, Args: args}}
	}
	lit := func(v value.Value) Expr { return NewLiteral(v) }
	i, f, s := value.NewInt, value.NewFloat, value.NewString

	call("abs", lit(i(-4))).want(i(4))
	call("abs", lit(f(-2.5))).want(f(2.5))
	call("abs", lit(value.Null)).want(value.Null)
	call("coalesce", lit(value.Null), lit(i(7)), lit(i(8))).want(i(7))
	call("coalesce", lit(value.Null), lit(value.Null)).want(value.Null)
	call("nullif", lit(i(3)), lit(i(3))).want(value.Null)
	call("nullif", lit(i(3)), lit(i(4))).want(i(3))
	call("round", lit(f(2.567)), lit(i(2))).want(f(2.57))
	call("round", lit(f(2.5))).want(f(3))
	call("floor", lit(f(2.9))).want(f(2))
	call("ceiling", lit(f(2.1))).want(f(3))
	call("sqrt", lit(f(9))).want(f(3))
	call("sqrt", lit(f(-1))).want(value.Null)
	call("mod", lit(i(7)), lit(i(3))).want(i(1))
	call("mod", lit(i(7)), lit(i(0))).want(value.Null)
	call("least", lit(i(3)), lit(i(1)), lit(i(2))).want(i(1))
	call("greatest", lit(i(3)), lit(i(1))).want(i(3))
	call("greatest", lit(i(3)), lit(value.Null)).want(value.Null)

	// Errors.
	for _, bad := range []*FuncCall{
		{Name: "nosuch", Args: []Expr{lit(i(1))}},
		{Name: "abs", Args: []Expr{lit(s("x"))}},
		{Name: "abs", Args: []Expr{lit(i(1)), lit(i(2))}},
		{Name: "coalesce"},
		{Name: "mod", Args: []Expr{lit(s("a")), lit(i(2))}},
	} {
		if _, err := bad.Eval(nil); err == nil {
			t.Errorf("%s must fail", bad)
		}
	}
	if got := (&FuncCall{Name: "coalesce", Args: []Expr{Col("a"), NewLiteral(i(0))}}).String(); got != "coalesce(a, 0)" {
		t.Errorf("FuncCall.String = %q", got)
	}
}

// Value2 is a tiny helper for fluent scalar-function assertions.
type Value2 struct {
	t *testing.T
	e Expr
}

func (v Value2) want(w value.Value) {
	v.t.Helper()
	got, err := v.e.Eval(nil)
	if err != nil {
		v.t.Fatalf("%s: %v", v.e, err)
	}
	if got.Kind() != w.Kind() || value.Compare(got, w) != 0 {
		v.t.Errorf("%s = %v (%v), want %v (%v)", v.e, got, got.Kind(), w, w.Kind())
	}
}

func TestAggCallRefusesRowEval(t *testing.T) {
	a := &AggCall{Fn: AggSum, Arg: Col("x")}
	if _, err := a.Eval(nil); err == nil {
		t.Error("AggCall.Eval must fail")
	}
}

func TestAggCallString(t *testing.T) {
	cases := []struct {
		a    *AggCall
		want string
	}{
		{&AggCall{Fn: AggSum, Arg: Col("a")}, "sum(a)"},
		{&AggCall{Fn: AggCount, Star: true}, "count(*)"},
		{&AggCall{Fn: AggCount, Distinct: true, Arg: Col("tid")}, "count(DISTINCT tid)"},
		{&AggCall{Fn: AggVpct, Arg: Col("a"), By: []string{"city"}}, "vpct(a BY city)"},
		{&AggCall{Fn: AggHpct, Arg: Col("a"), By: []string{"d1", "d2"}}, "hpct(a BY d1, d2)"},
		{&AggCall{Fn: AggMax, Arg: NewLiteral(value.NewInt(1)), By: []string{"dept"},
			Default: NewLiteral(value.NewInt(0))}, "max(1 BY dept DEFAULT 0)"},
		{&AggCall{Fn: AggSum, Arg: Col("a"), Over: &OverSpec{PartitionBy: []string{"s", "c"}}},
			"sum(a) OVER (PARTITION BY s, c)"},
	}
	for _, c := range cases {
		if got := c.a.String(); got != c.want {
			t.Errorf("String = %q, want %q", got, c.want)
		}
	}
	if !(&AggCall{Fn: AggSum, By: []string{"x"}}).IsHorizontal() {
		t.Error("BY list must mark horizontal")
	}
	if (&AggCall{Fn: AggSum}).IsHorizontal() {
		t.Error("no BY list must not mark horizontal")
	}
}

func TestTransformAndWalk(t *testing.T) {
	// sum(a) + b: replace the AggCall with a SlotRef, then check Walk sees
	// the new shape.
	e := &BinaryOp{Op: "+", Left: &AggCall{Fn: AggSum, Arg: Col("a")}, Right: Col("b")}
	if !HasAggregate(e) {
		t.Fatal("HasAggregate must detect the sum")
	}
	out, err := Transform(e, func(n Expr) (Expr, error) {
		if _, ok := n.(*AggCall); ok {
			return &SlotRef{Index: 1, Label: "agg0"}, nil
		}
		return n, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if HasAggregate(out) {
		t.Error("aggregate not replaced")
	}
	v, err := Bind(out, SchemaResolver([]string{"a", "b"}))
	if err != nil {
		t.Fatal(err)
	}
	got, err := v.Eval(ValuesRow{value.NewInt(0), value.NewInt(5)})
	if err != nil || got.Int() != 10 { // slot 1 holds b=5, plus b=5
		t.Errorf("eval after transform = %v %v", got, err)
	}
}

func TestTransformDescendsAllNodes(t *testing.T) {
	inner := Col("x")
	e := &Case{
		Whens: []When{{Cond: &IsNull{Operand: inner}, Result: &FuncCall{Name: "abs", Args: []Expr{inner}}}},
		Else:  &UnaryOp{Op: "-", Operand: inner},
	}
	count := 0
	_, err := Transform(e, func(n Expr) (Expr, error) {
		if _, ok := n.(*ColumnRef); ok {
			count++
		}
		return n, nil
	})
	if err != nil || count != 3 {
		t.Errorf("Transform visited %d column refs, want 3 (err %v)", count, err)
	}
}

func TestColumnsHelper(t *testing.T) {
	e := &BinaryOp{Op: "+",
		Left:  &BinaryOp{Op: "*", Left: Col("a"), Right: Col("B")},
		Right: &FuncCall{Name: "abs", Args: []Expr{Col("a")}}}
	cols := Columns(e)
	if len(cols) != 2 || cols[0] != "a" || cols[1] != "B" {
		t.Errorf("Columns = %v", cols)
	}
}

func TestSlotRefString(t *testing.T) {
	if (&SlotRef{Index: 3}).String() != "$3" {
		t.Error("unlabeled SlotRef string")
	}
	if (&SlotRef{Index: 3, Label: "total"}).String() != "total" {
		t.Error("labeled SlotRef string")
	}
}
