package expr

import (
	"testing"
	"testing/quick"

	"repro/internal/value"
)

func lit(v value.Value) Expr { return NewLiteral(v) }

func evalPred(t *testing.T, e Expr) value.Value {
	t.Helper()
	v, err := e.Eval(nil)
	if err != nil {
		t.Fatalf("%s: %v", e, err)
	}
	return v
}

func TestInList(t *testing.T) {
	i := func(n int64) Expr { return lit(value.NewInt(n)) }
	cases := []struct {
		e    Expr
		want string
	}{
		{&InList{Operand: i(2), List: []Expr{i(1), i(2), i(3)}}, "true"},
		{&InList{Operand: i(5), List: []Expr{i(1), i(2)}}, "false"},
		{&InList{Operand: i(5), List: []Expr{i(1), lit(value.Null)}}, "NULL"},
		{&InList{Operand: i(1), List: []Expr{lit(value.Null), i(1)}}, "true"}, // found beats NULL
		{&InList{Operand: lit(value.Null), List: []Expr{i(1)}}, "NULL"},
		{&InList{Operand: i(5), List: []Expr{i(1), i(2)}, Negate: true}, "true"},
		{&InList{Operand: i(5), List: []Expr{i(1), lit(value.Null)}, Negate: true}, "NULL"},
		{&InList{Operand: i(1), List: []Expr{i(1)}, Negate: true}, "false"},
	}
	for _, c := range cases {
		if got := evalPred(t, c.e).String(); got != c.want {
			t.Errorf("%s = %s, want %s", c.e, got, c.want)
		}
	}
	s := (&InList{Operand: Col("x"), List: []Expr{i(1), i(2)}, Negate: true}).String()
	if s != "(x NOT IN (1, 2))" {
		t.Errorf("String = %q", s)
	}
}

func TestBetween(t *testing.T) {
	i := func(n int64) Expr { return lit(value.NewInt(n)) }
	cases := []struct {
		e    Expr
		want string
	}{
		{&Between{Operand: i(5), Lo: i(1), Hi: i(10)}, "true"},
		{&Between{Operand: i(1), Lo: i(1), Hi: i(10)}, "true"}, // inclusive
		{&Between{Operand: i(10), Lo: i(1), Hi: i(10)}, "true"},
		{&Between{Operand: i(0), Lo: i(1), Hi: i(10)}, "false"},
		{&Between{Operand: lit(value.Null), Lo: i(1), Hi: i(10)}, "NULL"},
		{&Between{Operand: i(0), Lo: lit(value.Null), Hi: i(10)}, "false"}, // 0 <= 10 true, 0 >= NULL null → AND = ... false? no: null AND true = null; 0>=null null, 0<=10 true → null
	}
	// The last case: NULL >= comparison makes the conjunction NULL, not
	// false — correct the expectation.
	cases[5].want = "NULL"
	for _, c := range cases {
		if got := evalPred(t, c.e).String(); got != c.want {
			t.Errorf("%s = %s, want %s", c.e, got, c.want)
		}
	}
	if got := evalPred(t, &Between{Operand: i(0), Lo: i(1), Hi: i(10), Negate: true}); !got.Bool() {
		t.Error("NOT BETWEEN outside range must be true")
	}
	s := (&Between{Operand: Col("x"), Lo: i(1), Hi: i(2)}).String()
	if s != "(x BETWEEN 1 AND 2)" {
		t.Errorf("String = %q", s)
	}
}

func TestLike(t *testing.T) {
	str := func(s string) Expr { return lit(value.NewString(s)) }
	cases := []struct {
		s, pat string
		want   bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%o", true},
		{"hello", "%ell%", true},
		{"hello", "h_llo", true},
		{"hello", "h_lo", false}, // length mismatch without %
		{"hello", "h__lo", true},
		{"hello", "", false},
		{"", "%", true},
		{"", "", true},
		{"abc", "a%b%c", true},
		{"abc", "%%%", true},
		{"San Francisco", "San%", true},
		{"San Francisco", "%cisco", true},
		{"aaa", "a%a", true},
		{"ab", "b%", false},
	}
	for _, c := range cases {
		got := evalPred(t, &Like{Operand: str(c.s), Pattern: str(c.pat)})
		if got.Bool() != c.want {
			t.Errorf("%q LIKE %q = %v, want %v", c.s, c.pat, got, c.want)
		}
	}
	if got := evalPred(t, &Like{Operand: lit(value.Null), Pattern: str("%")}); !got.IsNull() {
		t.Error("NULL LIKE must be NULL")
	}
	if got := evalPred(t, &Like{Operand: str("x"), Pattern: str("y"), Negate: true}); !got.Bool() {
		t.Error("NOT LIKE must negate")
	}
	if got := evalPred(t, &Like{Operand: lit(value.NewInt(1)), Pattern: str("%")}); !got.IsNull() {
		t.Error("LIKE on non-string must be NULL")
	}
	s := (&Like{Operand: Col("c"), Pattern: str("a%"), Negate: true}).String()
	if s != "(c NOT LIKE 'a%')" {
		t.Errorf("String = %q", s)
	}
}

func TestLikeMatchesPrefixSuffixProperty(t *testing.T) {
	f := func(s string) bool {
		if len(s) > 40 {
			s = s[:40]
		}
		// Strings without wildcard characters always match themselves with
		// %s%, s%, %s.
		for _, c := range s {
			if c == '%' || c == '_' {
				return true
			}
		}
		return likeMatch(s, s) && likeMatch(s, s+"%") && likeMatch(s, "%"+s) && likeMatch(s, "%"+s+"%")
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPredicateTransformWalk(t *testing.T) {
	e := &InList{
		Operand: &Between{Operand: Col("a"), Lo: Col("b"), Hi: Col("c")},
		List:    []Expr{&Like{Operand: Col("d"), Pattern: Col("e")}},
	}
	count := 0
	if err := Walk(e, func(n Expr) error {
		if _, ok := n.(*ColumnRef); ok {
			count++
		}
		return nil
	}); err != nil || count != 5 {
		t.Errorf("Walk visited %d refs (err %v), want 5", count, err)
	}
	out, err := Transform(e, func(n Expr) (Expr, error) {
		if c, ok := n.(*ColumnRef); ok {
			return BoundCol(c.Name, 0), nil
		}
		return n, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	bound := 0
	_ = Walk(out, func(n Expr) error {
		if c, ok := n.(*ColumnRef); ok && c.Bound() {
			bound++
		}
		return nil
	})
	if bound != 5 {
		t.Errorf("Transform bound %d refs, want 5", bound)
	}
}
