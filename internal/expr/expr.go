// Package expr implements scalar SQL expressions: column references,
// literals, arithmetic, comparisons, three-valued boolean logic, CASE, a
// small scalar-function library, and aggregate-call nodes. The SQL parser
// builds expression trees with unresolved column references; the engine
// binds them against a schema (resolving names to positions) before
// evaluation, so per-row evaluation involves no name lookups.
package expr

import (
	"fmt"
	"strings"

	"repro/internal/value"
)

// Row supplies column values to a bound expression by position.
type Row interface {
	ColumnValue(i int) value.Value
}

// ValuesRow adapts a value slice to the Row interface.
type ValuesRow []value.Value

// ColumnValue returns the i-th value.
func (r ValuesRow) ColumnValue(i int) value.Value { return r[i] }

// Expr is a scalar SQL expression.
type Expr interface {
	// Eval evaluates the expression against a row. Unbound column
	// references and aggregate calls report errors.
	Eval(row Row) (value.Value, error)
	// String renders the expression as SQL text.
	String() string
}

// Resolver maps a (qualifier, column) name pair to a column position.
// qualifier is empty for unqualified references.
type Resolver func(qualifier, name string) (int, error)

// SchemaResolver builds a Resolver over an ordered column-name list,
// matching case-insensitively and ignoring qualifiers (single-table scope).
func SchemaResolver(names []string) Resolver {
	return func(_, name string) (int, error) {
		for i, n := range names {
			if strings.EqualFold(n, name) {
				return i, nil
			}
		}
		return 0, fmt.Errorf("expr: unknown column %q", name)
	}
}

// Bind resolves every column reference in e using r, returning a new tree.
// Aggregate calls are left in place (the engine extracts them first); Bind
// inside an aggregate argument is performed by the engine against the input
// schema.
func Bind(e Expr, r Resolver) (Expr, error) {
	return Transform(e, func(n Expr) (Expr, error) {
		cr, ok := n.(*ColumnRef)
		if !ok {
			return n, nil
		}
		idx, err := r(cr.Qualifier, cr.Name)
		if err != nil {
			return nil, err
		}
		return &ColumnRef{Qualifier: cr.Qualifier, Name: cr.Name, Index: idx, bound: true}, nil
	})
}

// Transform rewrites the tree bottom-up: children first, then f on the
// rebuilt node. f returning the node unchanged keeps the original.
// Aggregate calls are leaves: f receives the original *AggCall node (so
// pointer-keyed slot maps work) and Transform does not descend into its
// argument — aggregate arguments are a separate binding scope that the
// engine resolves against the aggregation input.
func Transform(e Expr, f func(Expr) (Expr, error)) (Expr, error) {
	switch n := e.(type) {
	case *Literal, *ColumnRef, *SlotRef, *AggCall:
		return f(e)
	case *BinaryOp:
		l, err := Transform(n.Left, f)
		if err != nil {
			return nil, err
		}
		r, err := Transform(n.Right, f)
		if err != nil {
			return nil, err
		}
		return f(&BinaryOp{Op: n.Op, Left: l, Right: r})
	case *UnaryOp:
		x, err := Transform(n.Operand, f)
		if err != nil {
			return nil, err
		}
		return f(&UnaryOp{Op: n.Op, Operand: x})
	case *IsNull:
		x, err := Transform(n.Operand, f)
		if err != nil {
			return nil, err
		}
		return f(&IsNull{Operand: x, Negate: n.Negate})
	case *Case:
		out := &Case{}
		for _, w := range n.Whens {
			c, err := Transform(w.Cond, f)
			if err != nil {
				return nil, err
			}
			r, err := Transform(w.Result, f)
			if err != nil {
				return nil, err
			}
			out.Whens = append(out.Whens, When{Cond: c, Result: r})
		}
		if n.Else != nil {
			e2, err := Transform(n.Else, f)
			if err != nil {
				return nil, err
			}
			out.Else = e2
		}
		return f(out)
	case *FuncCall:
		out := &FuncCall{Name: n.Name}
		for _, a := range n.Args {
			a2, err := Transform(a, f)
			if err != nil {
				return nil, err
			}
			out.Args = append(out.Args, a2)
		}
		return f(out)
	case *InList:
		out := &InList{Negate: n.Negate}
		x, err := Transform(n.Operand, f)
		if err != nil {
			return nil, err
		}
		out.Operand = x
		for _, e2 := range n.List {
			t, err := Transform(e2, f)
			if err != nil {
				return nil, err
			}
			out.List = append(out.List, t)
		}
		return f(out)
	case *Between:
		x, err := Transform(n.Operand, f)
		if err != nil {
			return nil, err
		}
		lo, err := Transform(n.Lo, f)
		if err != nil {
			return nil, err
		}
		hi, err := Transform(n.Hi, f)
		if err != nil {
			return nil, err
		}
		return f(&Between{Operand: x, Lo: lo, Hi: hi, Negate: n.Negate})
	case *Like:
		x, err := Transform(n.Operand, f)
		if err != nil {
			return nil, err
		}
		pat, err := Transform(n.Pattern, f)
		if err != nil {
			return nil, err
		}
		return f(&Like{Operand: x, Pattern: pat, Negate: n.Negate})
	default:
		return nil, fmt.Errorf("expr: Transform: unknown node %T", e)
	}
}

// Walk visits every node in the tree, parents before children. Returning an
// error stops the walk.
func Walk(e Expr, f func(Expr) error) error {
	if err := f(e); err != nil {
		return err
	}
	switch n := e.(type) {
	case *BinaryOp:
		if err := Walk(n.Left, f); err != nil {
			return err
		}
		return Walk(n.Right, f)
	case *UnaryOp:
		return Walk(n.Operand, f)
	case *IsNull:
		return Walk(n.Operand, f)
	case *Case:
		for _, w := range n.Whens {
			if err := Walk(w.Cond, f); err != nil {
				return err
			}
			if err := Walk(w.Result, f); err != nil {
				return err
			}
		}
		if n.Else != nil {
			return Walk(n.Else, f)
		}
	case *FuncCall:
		for _, a := range n.Args {
			if err := Walk(a, f); err != nil {
				return err
			}
		}
	case *InList:
		if err := Walk(n.Operand, f); err != nil {
			return err
		}
		for _, e2 := range n.List {
			if err := Walk(e2, f); err != nil {
				return err
			}
		}
	case *Between:
		if err := Walk(n.Operand, f); err != nil {
			return err
		}
		if err := Walk(n.Lo, f); err != nil {
			return err
		}
		return Walk(n.Hi, f)
	case *Like:
		if err := Walk(n.Operand, f); err != nil {
			return err
		}
		return Walk(n.Pattern, f)
	case *AggCall:
		if n.Arg != nil {
			return Walk(n.Arg, f)
		}
	}
	return nil
}

// HasAggregate reports whether the tree contains an aggregate call.
func HasAggregate(e Expr) bool {
	found := false
	_ = Walk(e, func(n Expr) error {
		if _, ok := n.(*AggCall); ok {
			found = true
		}
		return nil
	})
	return found
}

// Columns returns the distinct unbound column names referenced by e, in
// first-appearance order.
func Columns(e Expr) []string {
	var out []string
	seen := make(map[string]bool)
	_ = Walk(e, func(n Expr) error {
		if cr, ok := n.(*ColumnRef); ok {
			key := strings.ToLower(cr.Name)
			if !seen[key] {
				seen[key] = true
				out = append(out, cr.Name)
			}
		}
		return nil
	})
	return out
}
