package expr

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/diag"
	"repro/internal/value"
)

// Literal is a constant value.
type Literal struct {
	Val value.Value
}

// NewLiteral wraps a value as an expression.
func NewLiteral(v value.Value) *Literal { return &Literal{Val: v} }

// Eval returns the constant.
func (l *Literal) Eval(Row) (value.Value, error) { return l.Val, nil }

// String renders the literal as SQL (strings quoted, NULL bare).
func (l *Literal) String() string {
	if l.Val.Kind() == value.KindString {
		return "'" + strings.ReplaceAll(l.Val.Str(), "'", "''") + "'"
	}
	return l.Val.String()
}

// ColumnRef names a column, optionally qualified (table.column). Before
// binding, Index is meaningless; evaluation requires a bound reference.
type ColumnRef struct {
	Qualifier string
	Name      string
	Index     int
	bound     bool
	// Span locates the reference in the statement source when the parser
	// produced it; zero for programmatically built references.
	Span diag.Span
}

// Col returns an unbound reference to name.
func Col(name string) *ColumnRef { return &ColumnRef{Name: name} }

// QCol returns an unbound qualified reference.
func QCol(qualifier, name string) *ColumnRef {
	return &ColumnRef{Qualifier: qualifier, Name: name}
}

// BoundCol returns a reference already resolved to position idx.
func BoundCol(name string, idx int) *ColumnRef {
	return &ColumnRef{Name: name, Index: idx, bound: true}
}

// Bound reports whether the reference has been resolved.
func (c *ColumnRef) Bound() bool { return c.bound }

// Eval reads the resolved column from the row.
func (c *ColumnRef) Eval(row Row) (value.Value, error) {
	if !c.bound {
		return value.Null, fmt.Errorf("expr: unbound column reference %s", c)
	}
	return row.ColumnValue(c.Index), nil
}

// String renders the (possibly qualified) name.
func (c *ColumnRef) String() string {
	if c.Qualifier != "" {
		return c.Qualifier + "." + c.Name
	}
	return c.Name
}

// SlotRef reads a row position directly. The engine substitutes SlotRefs for
// aggregate calls after computing them per group.
type SlotRef struct {
	Index int
	Label string
}

// Eval reads the slot.
func (s *SlotRef) Eval(row Row) (value.Value, error) { return row.ColumnValue(s.Index), nil }

// String renders a placeholder name.
func (s *SlotRef) String() string {
	if s.Label != "" {
		return s.Label
	}
	return fmt.Sprintf("$%d", s.Index)
}

// BinaryOp applies Op ("+", "-", "*", "/", "=", "<>", "<", "<=", ">", ">=",
// "AND", "OR") to two operands.
type BinaryOp struct {
	Op          string
	Left, Right Expr
}

// Eval applies the operator with SQL semantics (see the value package).
func (b *BinaryOp) Eval(row Row) (value.Value, error) {
	l, err := b.Left.Eval(row)
	if err != nil {
		return value.Null, err
	}
	// AND/OR could short-circuit, but SQL three-valued logic still needs the
	// right side when the left is NULL, and evaluation is side-effect free;
	// evaluate both for simplicity.
	r, err := b.Right.Eval(row)
	if err != nil {
		return value.Null, err
	}
	switch b.Op {
	case "+":
		return value.Add(l, r)
	case "-":
		return value.Sub(l, r)
	case "*":
		return value.Mul(l, r)
	case "/":
		return value.Div(l, r)
	case "AND":
		return value.And(l, r), nil
	case "OR":
		return value.Or(l, r), nil
	case "=", "<>", "!=", "<", "<=", ">", ">=":
		return value.SQLCompare(b.Op, l, r)
	default:
		return value.Null, fmt.Errorf("expr: unknown binary operator %q", b.Op)
	}
}

// String renders the operation fully parenthesized.
func (b *BinaryOp) String() string {
	return "(" + b.Left.String() + " " + b.Op + " " + b.Right.String() + ")"
}

// UnaryOp applies "-" or "NOT".
type UnaryOp struct {
	Op      string
	Operand Expr
}

// Eval applies the operator.
func (u *UnaryOp) Eval(row Row) (value.Value, error) {
	v, err := u.Operand.Eval(row)
	if err != nil {
		return value.Null, err
	}
	switch u.Op {
	case "-":
		return value.Neg(v)
	case "NOT":
		return value.Not(v), nil
	default:
		return value.Null, fmt.Errorf("expr: unknown unary operator %q", u.Op)
	}
}

// String renders the operation.
func (u *UnaryOp) String() string {
	if u.Op == "NOT" {
		return "(NOT " + u.Operand.String() + ")"
	}
	return "(" + u.Op + u.Operand.String() + ")"
}

// IsNull implements IS NULL and IS NOT NULL, which never return NULL.
type IsNull struct {
	Operand Expr
	Negate  bool
}

// Eval tests nullness.
func (i *IsNull) Eval(row Row) (value.Value, error) {
	v, err := i.Operand.Eval(row)
	if err != nil {
		return value.Null, err
	}
	return value.NewBool(v.IsNull() != i.Negate), nil
}

// String renders the predicate.
func (i *IsNull) String() string {
	if i.Negate {
		return "(" + i.Operand.String() + " IS NOT NULL)"
	}
	return "(" + i.Operand.String() + " IS NULL)"
}

// When is one WHEN … THEN … arm of a CASE.
type When struct {
	Cond   Expr
	Result Expr
}

// Case is a searched CASE expression. Arms are evaluated in order; the first
// truthy condition selects the result; the ELSE (or NULL) applies otherwise.
// The paper's horizontal strategies rest on CASE: each result column of FH is
// one sum(CASE WHEN D=v THEN A ELSE …) term.
type Case struct {
	Whens []When
	Else  Expr
}

// Eval evaluates arms in order.
func (c *Case) Eval(row Row) (value.Value, error) {
	for _, w := range c.Whens {
		cond, err := w.Cond.Eval(row)
		if err != nil {
			return value.Null, err
		}
		if cond.Truthy() {
			return w.Result.Eval(row)
		}
	}
	if c.Else != nil {
		return c.Else.Eval(row)
	}
	return value.Null, nil
}

// String renders the full CASE text.
func (c *Case) String() string {
	var sb strings.Builder
	sb.WriteString("CASE")
	for _, w := range c.Whens {
		sb.WriteString(" WHEN ")
		sb.WriteString(w.Cond.String())
		sb.WriteString(" THEN ")
		sb.WriteString(w.Result.String())
	}
	if c.Else != nil {
		sb.WriteString(" ELSE ")
		sb.WriteString(c.Else.String())
	}
	sb.WriteString(" END")
	return sb.String()
}

// FuncCall invokes a scalar function from the built-in library:
// abs, coalesce, nullif, round, floor, ceiling, sqrt, mod, least, greatest.
type FuncCall struct {
	Name string
	Args []Expr
}

// Eval dispatches on the lower-cased function name.
func (f *FuncCall) Eval(row Row) (value.Value, error) {
	args := make([]value.Value, len(f.Args))
	for i, a := range f.Args {
		v, err := a.Eval(row)
		if err != nil {
			return value.Null, err
		}
		args[i] = v
	}
	return callScalar(strings.ToLower(f.Name), args)
}

// String renders the call.
func (f *FuncCall) String() string {
	parts := make([]string, len(f.Args))
	for i, a := range f.Args {
		parts[i] = a.String()
	}
	return f.Name + "(" + strings.Join(parts, ", ") + ")"
}

func callScalar(name string, args []value.Value) (value.Value, error) {
	argc := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("expr: %s expects %d arguments, got %d", name, n, len(args))
		}
		return nil
	}
	switch name {
	case "abs":
		if err := argc(1); err != nil {
			return value.Null, err
		}
		v := args[0]
		if v.IsNull() {
			return value.Null, nil
		}
		switch v.Kind() {
		case value.KindInt:
			i := v.Int()
			if i < 0 {
				i = -i
			}
			return value.NewInt(i), nil
		case value.KindFloat:
			return value.NewFloat(math.Abs(v.Float())), nil
		}
		return value.Null, fmt.Errorf("expr: abs on %s", v.Kind())
	case "coalesce":
		if len(args) == 0 {
			return value.Null, fmt.Errorf("expr: coalesce needs arguments")
		}
		for _, a := range args {
			if !a.IsNull() {
				return a, nil
			}
		}
		return value.Null, nil
	case "nullif":
		if err := argc(2); err != nil {
			return value.Null, err
		}
		eq := value.SQLEqual(args[0], args[1])
		if !eq.IsNull() && eq.Bool() {
			return value.Null, nil
		}
		return args[0], nil
	case "round":
		if len(args) != 1 && len(args) != 2 {
			return value.Null, fmt.Errorf("expr: round expects 1 or 2 arguments")
		}
		if args[0].IsNull() {
			return value.Null, nil
		}
		f, ok := args[0].AsFloat()
		if !ok {
			return value.Null, fmt.Errorf("expr: round on %s", args[0].Kind())
		}
		digits := int64(0)
		if len(args) == 2 {
			if args[1].IsNull() {
				return value.Null, nil
			}
			d, ok := args[1].AsInt()
			if !ok {
				return value.Null, fmt.Errorf("expr: round digits must be numeric")
			}
			digits = d
		}
		scale := math.Pow(10, float64(digits))
		return value.NewFloat(math.Round(f*scale) / scale), nil
	case "floor", "ceiling", "ceil", "sqrt":
		if err := argc(1); err != nil {
			return value.Null, err
		}
		if args[0].IsNull() {
			return value.Null, nil
		}
		f, ok := args[0].AsFloat()
		if !ok {
			return value.Null, fmt.Errorf("expr: %s on %s", name, args[0].Kind())
		}
		switch name {
		case "floor":
			return value.NewFloat(math.Floor(f)), nil
		case "sqrt":
			if f < 0 {
				return value.Null, nil
			}
			return value.NewFloat(math.Sqrt(f)), nil
		default:
			return value.NewFloat(math.Ceil(f)), nil
		}
	case "mod":
		if err := argc(2); err != nil {
			return value.Null, err
		}
		if args[0].IsNull() || args[1].IsNull() {
			return value.Null, nil
		}
		a, aok := args[0].AsInt()
		b, bok := args[1].AsInt()
		if !aok || !bok {
			return value.Null, fmt.Errorf("expr: mod needs numeric arguments")
		}
		if b == 0 {
			return value.Null, nil
		}
		return value.NewInt(a % b), nil
	case "least", "greatest":
		if len(args) == 0 {
			return value.Null, fmt.Errorf("expr: %s needs arguments", name)
		}
		best := args[0]
		for _, a := range args[1:] {
			if a.IsNull() || best.IsNull() {
				return value.Null, nil
			}
			c := value.Compare(a, best)
			if (name == "least" && c < 0) || (name == "greatest" && c > 0) {
				best = a
			}
		}
		return best, nil
	default:
		return value.Null, fmt.Errorf("expr: unknown function %q", name)
	}
}

// OverSpec carries the window definition of an OLAP-style aggregate:
// fn(arg) OVER (PARTITION BY cols). This is the ANSI SQL/OLAP construct the
// paper benchmarks percentage aggregations against.
type OverSpec struct {
	PartitionBy []string
}

// AggFn names the supported aggregate functions. Vpct and Hpct are the
// paper's percentage aggregations; the standard five may also carry a BY
// list, which makes them the companion paper's horizontal aggregations.
type AggFn string

// Aggregate function names.
const (
	AggSum   AggFn = "sum"
	AggCount AggFn = "count"
	AggAvg   AggFn = "avg"
	AggMin   AggFn = "min"
	AggMax   AggFn = "max"
	AggVpct  AggFn = "vpct"
	AggHpct  AggFn = "hpct"
)

// AggCall is an aggregate invocation inside a select list. It is not
// evaluable per row: the engine extracts AggCalls, computes them per group,
// and substitutes SlotRefs. Percentage/horizontal calls (nonempty By) are
// handled by the query rewriter before the engine ever sees them.
type AggCall struct {
	Fn       AggFn
	Arg      Expr // nil when Star
	Star     bool // count(*)
	Distinct bool
	By       []string  // subgrouping columns: Vpct/Hpct/Hagg BY list
	Default  *Literal  // Hagg DEFAULT literal replacing NULL fills
	Over     *OverSpec // ANSI OLAP window, mutually exclusive with By

	// Span locates the whole call in the statement source; BySpans aligns
	// with By, one span per subgrouping column. Zero for programmatically
	// built calls.
	Span    diag.Span
	BySpans []diag.Span
}

// Eval always fails: aggregates are computed by the engine, not per row.
func (a *AggCall) Eval(Row) (value.Value, error) {
	return value.Null, fmt.Errorf("expr: aggregate %s evaluated outside aggregation", a)
}

// IsHorizontal reports whether the call carries a BY subgrouping list.
func (a *AggCall) IsHorizontal() bool { return len(a.By) > 0 }

// String renders the call, including BY / DEFAULT / OVER clauses.
func (a *AggCall) String() string {
	var sb strings.Builder
	sb.WriteString(string(a.Fn))
	sb.WriteString("(")
	if a.Distinct {
		sb.WriteString("DISTINCT ")
	}
	if a.Star {
		sb.WriteString("*")
	} else if a.Arg != nil {
		sb.WriteString(a.Arg.String())
	}
	if len(a.By) > 0 {
		sb.WriteString(" BY ")
		sb.WriteString(strings.Join(a.By, ", "))
	}
	if a.Default != nil {
		sb.WriteString(" DEFAULT ")
		sb.WriteString(a.Default.String())
	}
	sb.WriteString(")")
	if a.Over != nil {
		sb.WriteString(" OVER (PARTITION BY ")
		sb.WriteString(strings.Join(a.Over.PartitionBy, ", "))
		sb.WriteString(")")
	}
	return sb.String()
}
