package serveload

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/server"
	"repro/internal/workload"
	"repro/pctagg"
)

// Config shapes the multi-tenant server load benchmark: Tenants
// simulated tenants, each with Workers concurrent sessions, each session
// replaying Requests statements from the demo workload mix.
type Config struct {
	// Addr is an already-running pctserve instance (with the demo tables
	// loaded); empty starts an in-process server on an ephemeral port.
	Addr string
	// Tenants, Workers, Requests default to 3 × 4 × 50.
	Tenants  int
	Workers  int
	Requests int
	// MaxConcurrent and MaxQueue are each in-process tenant's admission
	// knobs; deliberately tight defaults (2 and 8) so the run exercises
	// queuing and shedding, not just the happy path.
	MaxConcurrent int
	MaxQueue      int
	// SharedBytes bounds the in-process server's shared byte pool
	// (0 = unlimited).
	SharedBytes int64
	// Retries is how often a retryable rejection (PCT210/211) is retried,
	// honoring the server's backoff hint, before the statement counts as
	// shed. Default 2.
	Retries int
}

func (c *Config) setDefaults() {
	if c.Tenants <= 0 {
		c.Tenants = 3
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Requests <= 0 {
		c.Requests = 50
	}
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = 2
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 8
	}
	if c.Retries <= 0 {
		c.Retries = 2
	}
}

// Session is one row of the server's pct_stat_sessions catalog at
// reconciliation time, before any benchmark session closed.
type Session struct {
	Tenant     string `json:"tenant"`
	Statements int64  `json:"statements"`
	Rejected   int64  `json:"rejected"`
}

// Result is the outcome of one load run. Completed counts
// statements that returned rows; Rejections counts every retryable
// admission refusal the clients saw (including ones later retried to
// success); Shed counts statements abandoned after the retry budget.
// Reconciled reports that the server's own pct_stat_sessions ledger agrees
// with the client-side counts while the sessions were still open.
type Result struct {
	Tenants    int
	Workers    int
	Requests   int
	Completed  int64
	Rejections int64
	Retries    int64
	Shed       int64
	Errors     int64
	Wall       time.Duration
	P50        time.Duration
	P99        time.Duration
	P999       time.Duration
	Max        time.Duration
	Sessions   []Session
	Reconciled bool
}

// serveMix is the statement mix each worker cycles through: vertical
// percentages, a horizontal spread, plain aggregation, and a raw scan —
// the demo-table shapes a dashboard tenant would fire.
var serveMix = []string{
	"SELECT state, Vpct(salesAmt) FROM sales GROUP BY state",
	"SELECT count(*), sum(salesAmt) FROM sales",
	"SELECT dweek, Vpct(salesAmt) FROM daily GROUP BY dweek",
	"SELECT state, city, salesAmt FROM sales",
}

// Run drives the multi-tenant load against a pctserve server and
// reconciles the client-side ledger against the server's
// pct_stat_sessions catalog before any session closes.
func Run(cfg Config, log io.Writer) (*Result, error) {
	cfg.setDefaults()
	logf := func(format string, a ...any) {
		if log != nil {
			fmt.Fprintf(log, format, a...)
		}
	}

	addr := cfg.Addr
	if addr == "" {
		db := pctagg.Open()
		if _, err := db.Exec(workload.DemoSQL); err != nil {
			return nil, err
		}
		var profiles []server.TenantProfile
		for i := 0; i < cfg.Tenants; i++ {
			profiles = append(profiles, server.TenantProfile{
				Name:          "bench" + strconv.Itoa(i),
				MaxConcurrent: cfg.MaxConcurrent,
				MaxQueue:      cfg.MaxQueue,
			})
		}
		srv := server.New(db, server.Config{
			Addr:        "127.0.0.1:0",
			Tenants:     profiles,
			SharedBytes: cfg.SharedBytes,
		})
		if err := srv.Start(); err != nil {
			return nil, err
		}
		defer srv.Close()
		addr = srv.Addr().String()
		logf("serve load: in-process server on %s\n", addr)
	}
	logf("serve load: %d tenants × %d workers × %d requests (maxconc=%d maxqueue=%d)\n",
		cfg.Tenants, cfg.Workers, cfg.Requests, cfg.MaxConcurrent, cfg.MaxQueue)

	res := &Result{Tenants: cfg.Tenants, Workers: cfg.Workers, Requests: cfg.Requests}
	type workerOut struct {
		latencies  []time.Duration
		completed  int64
		rejections int64
		retries    int64
		shed       int64
		errs       []error
	}
	outs := make([]workerOut, cfg.Tenants*cfg.Workers)
	clients := make([]*server.Client, cfg.Tenants*cfg.Workers)
	release := make(chan struct{}) // holds every session open for reconciliation
	var wg, parked sync.WaitGroup
	start := time.Now()

	for t := 0; t < cfg.Tenants; t++ {
		for w := 0; w < cfg.Workers; w++ {
			idx := t*cfg.Workers + w
			c, err := server.DialRetry(addr, "bench"+strconv.Itoa(t), 5*time.Second)
			if err != nil {
				close(release)
				return nil, fmt.Errorf("serve load: dialing worker %d: %w", idx, err)
			}
			clients[idx] = c
			wg.Add(1)
			parked.Add(1)
			go func(idx int, c *server.Client) {
				defer wg.Done()
				o := &outs[idx]
				for i := 0; i < cfg.Requests; i++ {
					sql := serveMix[(idx+i)%len(serveMix)]
					lat, rejections, err := doWithRetry(c, sql, cfg.Retries)
					o.rejections += rejections
					if rejections > 0 && err == nil {
						o.retries++
					}
					switch {
					case err == nil:
						o.completed++
						o.latencies = append(o.latencies, lat)
					case isRetryable(err):
						o.shed++
					default:
						o.errs = append(o.errs, err)
					}
				}
				parked.Done()
				<-release // stay connected until the catalog snapshot
			}(idx, c)
		}
	}

	// Every worker has its answers but is still connected: snapshot the
	// server's own per-session ledger through an observer session under a
	// separate tenant, so the benchmark rows are undisturbed.
	parked.Wait()
	res.Wall = time.Since(start)

	obs, err := server.Dial(addr, "observer")
	if err != nil {
		close(release)
		wg.Wait()
		return nil, fmt.Errorf("serve load: observer dial: %w", err)
	}
	cat, err := obs.Do(context.Background(), "SELECT tenant, statements, rejected FROM pct_stat_sessions")
	obs.Close()
	if err != nil {
		close(release)
		wg.Wait()
		return nil, fmt.Errorf("serve load: catalog read: %w", err)
	}
	for _, row := range cat.Rows {
		tenant, _ := row[0].(string)
		stmts, _ := row[1].(int64)
		rej, _ := row[2].(int64)
		if strings.HasPrefix(tenant, "bench") {
			res.Sessions = append(res.Sessions, Session{Tenant: tenant, Statements: stmts, Rejected: rej})
		}
	}
	close(release)
	wg.Wait()
	for _, c := range clients {
		c.Close()
	}

	var all []time.Duration
	var catStmts, catRej int64
	for i := range outs {
		o := &outs[i]
		res.Completed += o.completed
		res.Rejections += o.rejections
		res.Retries += o.retries
		res.Shed += o.shed
		res.Errors += int64(len(o.errs))
		all = append(all, o.latencies...)
		if len(o.errs) > 0 {
			logf("serve load: worker %d error: %v\n", i, o.errs[0])
		}
	}
	for _, s := range res.Sessions {
		catStmts += s.Statements
		catRej += s.Rejected
	}
	res.Reconciled = catStmts == res.Completed && catRej == res.Rejections+res.Shed
	if !res.Reconciled {
		logf("serve load: reconciliation MISMATCH: catalog statements=%d rejected=%d vs client completed=%d rejections+shed=%d\n",
			catStmts, catRej, res.Completed, res.Rejections+res.Shed)
	}

	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	if n := len(all); n > 0 {
		res.P50 = all[n/2]
		res.P99 = all[min(n-1, n*99/100)]
		res.P999 = all[min(n-1, n*999/1000)]
		res.Max = all[n-1]
	}
	logf("serve load: %d completed, %d rejections (%d recovered by retry), %d shed, %d errors in %s; p50=%s p99=%s p999=%s\n",
		res.Completed, res.Rejections, res.Retries, res.Shed, res.Errors, res.Wall.Round(time.Millisecond),
		res.P50.Round(time.Microsecond), res.P99.Round(time.Microsecond), res.P999.Round(time.Microsecond))
	return res, nil
}

// doWithRetry runs one statement, retrying retryable admission refusals up
// to retries times while honoring (and capping) the server's backoff hint.
// It returns the last attempt's latency and how many rejections were seen.
func doWithRetry(c *server.Client, sql string, retries int) (time.Duration, int64, error) {
	var rejections int64
	for attempt := 0; ; attempt++ {
		start := time.Now()
		_, err := c.Do(context.Background(), sql)
		lat := time.Since(start)
		if err == nil {
			return lat, rejections, nil
		}
		if !isRetryable(err) {
			return lat, rejections, err
		}
		rejections++
		if attempt >= retries {
			return lat, rejections, err
		}
		backoff := 5 * time.Millisecond
		var re *server.RemoteError
		if errors.As(err, &re) && re.Backoff > 0 && re.Backoff < 50*time.Millisecond {
			backoff = re.Backoff
		}
		time.Sleep(backoff)
	}
}

func isRetryable(err error) bool {
	var re *server.RemoteError
	return errors.As(err, &re) && re.IsRetryable
}
