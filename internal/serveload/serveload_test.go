package serveload

import (
	"testing"

	"repro/internal/leakcheck"
)

// TestRunServeLoadReconciles runs a small in-process load — tight enough
// admission knobs that queuing happens — and requires the client-side
// ledger to reconcile exactly against the server's pct_stat_sessions rows.
func TestRunServeLoadReconciles(t *testing.T) {
	defer leakcheck.Check(t)()
	res, err := Run(Config{
		Tenants:       2,
		Workers:       3,
		Requests:      8,
		MaxConcurrent: 1,
		MaxQueue:      2,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	total := int64(2 * 3 * 8)
	if got := res.Completed + res.Shed + res.Errors; got != total {
		t.Fatalf("accounted statements = %d, want %d (completed %d, shed %d, errors %d)",
			got, total, res.Completed, res.Shed, res.Errors)
	}
	if res.Errors != 0 {
		t.Fatalf("%d non-retryable errors", res.Errors)
	}
	if res.Completed == 0 {
		t.Fatal("no statement completed")
	}
	if !res.Reconciled {
		t.Fatalf("catalog did not reconcile: sessions=%+v completed=%d rejections=%d shed=%d",
			res.Sessions, res.Completed, res.Rejections, res.Shed)
	}
	if len(res.Sessions) != 2*3 {
		t.Fatalf("catalog rows = %d, want %d", len(res.Sessions), 2*3)
	}
	if res.P50 <= 0 || res.Max < res.P999 || res.P999 < res.P99 || res.P99 < res.P50 {
		t.Fatalf("implausible latency quantiles: p50=%s p99=%s p999=%s max=%s", res.P50, res.P99, res.P999, res.Max)
	}
}
