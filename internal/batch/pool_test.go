package batch

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/value"
)

func TestClassForRoundTrip(t *testing.T) {
	cases := []struct{ n, class int }{
		{0, 0}, {1, 0}, {31, 0}, {32, 0},
		{33, 1}, {64, 1},
		{65, 2},
		{1024, 5},
		{16384, numClasses - 1},
		{16385, -1},
		{-1, -1},
	}
	for _, c := range cases {
		if got := classFor(c.n); got != c.class {
			t.Errorf("classFor(%d) = %d, want %d", c.n, got, c.class)
		}
		if c.class >= 0 && classCap(c.class) < c.n {
			t.Errorf("classCap(%d) = %d < requested %d", c.class, classCap(c.class), c.n)
		}
	}
}

func TestPoolReuseAccounting(t *testing.T) {
	p := &Pool{}
	s := p.GetSel(Size)
	if cap(s) < Size || len(s) != 0 {
		t.Fatalf("GetSel(%d): len=%d cap=%d", Size, len(s), cap(s))
	}
	if st := p.Stats(); st.Gets != 1 || st.Misses != 1 || st.Hits != 0 {
		t.Fatalf("cold stats = %+v", st)
	}
	p.PutSel(s)
	if sel, _, _, _ := p.ClassCount(Size); sel != 1 {
		t.Fatalf("sel free count after Put = %d, want 1", sel)
	}
	s2 := p.GetSel(Size)
	if st := p.Stats(); st.Gets != 2 || st.Hits != 1 {
		t.Fatalf("warm stats = %+v", st)
	}
	if sel, _, _, _ := p.ClassCount(Size); sel != 0 {
		t.Fatalf("sel free count after reuse = %d, want 0", sel)
	}
	p.PutSel(s2)
	if st := p.Stats(); st.Puts != 2 {
		t.Fatalf("puts = %d, want 2", st.Puts)
	}
	if r := p.Stats().HitRatio(); r != 0.5 { // floateq:ok 1/2 is exact in binary floating point
		t.Fatalf("hit ratio = %v, want 0.5", r)
	}
}

// TestPoolClassBounds: each class's free list is bounded at maxPerClass and
// over-large requests bypass the pool entirely (Put discards them).
func TestPoolClassBounds(t *testing.T) {
	p := &Pool{}
	for i := 0; i < maxPerClass+3; i++ {
		p.PutInts(make([]int64, 0, Size))
	}
	if _, _, _, ints := p.ClassCount(Size); ints != maxPerClass {
		t.Fatalf("ints free count = %d, want bound %d", ints, maxPerClass)
	}
	if st := p.Stats(); st.Puts != maxPerClass {
		t.Fatalf("puts = %d, want %d (overflow discarded uncounted)", st.Puts, maxPerClass)
	}

	huge := p.GetBytes(1 << 20)
	if cap(huge) < 1<<20 {
		t.Fatalf("over-large get cap = %d", cap(huge))
	}
	before := p.Stats().Puts
	p.PutBytes(huge)
	if p.Stats().Puts != before {
		t.Fatal("over-large Put must discard, not pool")
	}
}

// TestPoolForeignCapacityDiscarded: a buffer whose capacity is not a class
// size (e.g. sliced down by the caller) is rejected so class accounting
// stays exact.
func TestPoolForeignCapacityDiscarded(t *testing.T) {
	p := &Pool{}
	p.PutSel(make([]int32, 0, 100)) // 100 is not a power-of-two class cap
	if sel, _, _, _ := p.ClassCount(100); sel != 0 {
		t.Fatalf("foreign-capacity buffer pooled; class count = %d", sel)
	}
	if st := p.Stats(); st.Puts != 0 {
		t.Fatalf("foreign Put counted: %+v", st)
	}
	p.PutVals(nil) // nil is a no-op, not a panic
}

// TestPoolPoisonOnPut: with poisoning on, a caller that keeps using a
// released buffer reads sentinels, not its old data — the aliasing tripwire
// the engine tests run under.
func TestPoolPoisonOnPut(t *testing.T) {
	p := &Pool{}
	p.SetPoison(true)
	defer p.SetPoison(false)

	sel := p.GetSel(64)
	sel = append(sel, 1, 2, 3)
	leaked := sel[:3] // simulated use-after-Put alias
	p.PutSel(sel)
	for i, v := range leaked {
		if v != PoisonSel {
			t.Fatalf("leaked sel[%d] = %d, want poison %d", i, v, PoisonSel)
		}
	}

	ints := p.GetInts(64)
	ints = append(ints, 7)
	leakedInts := ints[:1]
	p.PutInts(ints)
	if leakedInts[0] != PoisonInt {
		t.Fatalf("leaked ints[0] = %d, want poison %d", leakedInts[0], PoisonInt)
	}

	bs := p.GetBytes(64)
	bs = append(bs, 'k')
	leakedBytes := bs[:1]
	p.PutBytes(bs)
	if leakedBytes[0] != PoisonByte {
		t.Fatalf("leaked bytes[0] = %#x, want poison %#x", leakedBytes[0], PoisonByte)
	}

	vs := p.GetVals(32)
	vs = append(vs, value.NewInt(42))
	leakedVals := vs[:1]
	p.PutVals(vs)
	if leakedVals[0].Kind() != value.KindString {
		t.Fatalf("leaked vals[0] = %v, want poison string", leakedVals[0])
	}

	// A poisoned buffer handed out again starts zero-length; appends work.
	again := p.GetSel(64)
	if len(again) != 0 {
		t.Fatalf("reused sel len = %d, want 0", len(again))
	}
}

// TestPoolNoCrossBatchAliasing hammers the pool with a randomized
// get/fill/put schedule and checks that no two live buffers ever share
// memory: writes through one never show up in another.
func TestPoolNoCrossBatchAliasing(t *testing.T) {
	p := &Pool{}
	p.SetPoison(true)
	rng := rand.New(rand.NewSource(9))
	type live struct {
		buf  []int64
		want int64
	}
	var held []live
	for step := 0; step < 2000; step++ {
		if len(held) > 0 && rng.Intn(2) == 0 {
			i := rng.Intn(len(held))
			h := held[i]
			for j, v := range h.buf {
				if v != h.want {
					t.Fatalf("step %d: buffer %d corrupted at %d: %d != %d", step, i, j, v, h.want)
				}
			}
			p.PutInts(h.buf)
			held = append(held[:i], held[i+1:]...)
			continue
		}
		n := 1 << (3 + rng.Intn(9)) // 8..2048
		buf := p.GetInts(n)
		tag := int64(step)
		for j := 0; j < n; j++ {
			buf = append(buf, tag)
		}
		held = append(held, live{buf, tag})
	}
	for _, h := range held {
		p.PutInts(h.buf)
	}
}

// TestPoolConcurrentGets: the pool is shared by parallel workers; hammer it
// from several goroutines (run under -race in CI) and check the ledger adds
// up: every Get is a hit or a miss.
func TestPoolConcurrentGets(t *testing.T) {
	p := &Pool{}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 500; i++ {
				s := p.GetSel(1 << (3 + rng.Intn(8)))
				s = append(s, int32(i))
				p.PutSel(s)
			}
		}(int64(w))
	}
	wg.Wait()
	st := p.Stats()
	if st.Gets != 8*500 {
		t.Fatalf("gets = %d, want %d", st.Gets, 8*500)
	}
	if st.Hits+st.Misses != st.Gets {
		t.Fatalf("hits+misses = %d, gets = %d", st.Hits+st.Misses, st.Gets)
	}
}
