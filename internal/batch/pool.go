// Package batch provides the fixed-size column-batch constants and the
// size-classed buffer pool backing the vectorized execution path.
//
// The execution kernels in internal/engine and internal/core process rows
// in batches of Size (1024, matching the governor stride) and need short
// scratch slices on every statement: selection vectors, boxed value
// scratch, group-key byte buffers, and int64 accumulator scratch. A naive
// implementation allocates these per statement and feeds the GC; the pool
// recycles them across statements per power-of-two size class, the same
// discipline trex-emu's mbuf pool uses for packet buffers.
//
// Free lists are bounded and mutex-guarded (not sync.Pool) so hit/miss
// accounting is deterministic and testable; the lock is taken once per
// Get/Put, never per row.
package batch

import (
	"sync"
	"sync/atomic"

	"repro/internal/obs"
	"repro/internal/value"
)

// Size is the number of rows processed per batch. It deliberately equals
// the governor stride (engine govStride = 1024) so one batch is one
// cancellation/limit check.
const Size = 1024

// Pool size classes are powers of two from minClass to maxClass; requests
// above the largest class are served by plain make and discarded on Put.
const (
	minClassBits = 5  // 32
	maxClassBits = 14 // 16384
	numClasses   = maxClassBits - minClassBits + 1

	// maxPerClass bounds each class's free list; beyond it Put discards.
	maxPerClass = 8
)

// Pool metrics: statement-lifetime acquire/release traffic of the Default
// pool. hits/misses split Gets by whether a pooled buffer was reused.
var (
	mPoolGets   = obs.Default.Counter("batch.pool.gets")
	mPoolPuts   = obs.Default.Counter("batch.pool.puts")
	mPoolHits   = obs.Default.Counter("batch.pool.hits")
	mPoolMisses = obs.Default.Counter("batch.pool.misses")
)

// Stats is a point-in-time snapshot of a pool's traffic counters.
type Stats struct {
	Gets   int64 // buffers handed out
	Puts   int64 // buffers returned
	Hits   int64 // Gets served from a free list
	Misses int64 // Gets that had to allocate
}

// HitRatio is Hits/Gets, 0 when the pool is unused.
func (s Stats) HitRatio() float64 {
	if s.Gets == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Gets)
}

// classFor returns the free-list index for a capacity request, or -1 when
// the request exceeds the largest class and must bypass the pool.
func classFor(n int) int {
	if n < 0 {
		return -1
	}
	c := 0
	for sz := 1 << minClassBits; sz < n; sz <<= 1 {
		c++
	}
	if c >= numClasses {
		return -1
	}
	return c
}

// classCap is the capacity allocated for a class.
func classCap(c int) int { return 1 << (minClassBits + c) }

// freeLists holds one bounded LIFO free list per size class for one
// element type.
type freeLists[T any] struct {
	free [numClasses][][]T
}

// get hands out a zero-length slice with capacity ≥ n, reusing a pooled
// buffer when one is available. Reports whether the get was a hit.
func (l *freeLists[T]) get(n int) ([]T, bool) {
	c := classFor(n)
	if c < 0 {
		return make([]T, 0, n), false
	}
	if fl := l.free[c]; len(fl) > 0 {
		s := fl[len(fl)-1]
		l.free[c] = fl[:len(fl)-1]
		return s[:0], true
	}
	return make([]T, 0, classCap(c)), false
}

// put returns a buffer to its size class; over-capacity and over-full
// classes discard.
func (l *freeLists[T]) put(s []T, poison func([]T)) bool {
	c := classFor(cap(s))
	if c < 0 || classCap(c) != cap(s) {
		// Not a capacity we allocate: either above the largest class or a
		// foreign buffer; recycling it would skew class accounting.
		return false
	}
	if poison != nil {
		poison(s[:cap(s)])
	}
	if len(l.free[c]) >= maxPerClass {
		return false
	}
	l.free[c] = append(l.free[c], s[:0])
	return true
}

// Pool recycles the batch-execution scratch buffers. The zero value is
// ready to use; Default is the engine-wide instance.
type Pool struct {
	mu    sync.Mutex
	sel   freeLists[int32]       // selection vectors
	vals  freeLists[value.Value] // boxed value scratch (row buffers, key scratch)
	bytes freeLists[byte]        // group-key encode buffers
	ints  freeLists[int64]       // accumulator scratch
	gets, puts, hits, misses atomic.Int64

	poison atomic.Bool // test hook: overwrite buffers on Put
}

// Default is the pool the engine's batch kernels share.
var Default = &Pool{}

// SetPoison toggles poison-on-put: returned buffers are overwritten with
// sentinel values so any use-after-Put aliasing shows up as corrupted
// results in tests.
func (p *Pool) SetPoison(on bool) { p.poison.Store(on) }

// Sentinel values written by poison-on-put.
const (
	PoisonSel  = int32(-0x5EEDBAD)
	PoisonInt  = int64(-0x5EEDBADC0FFEE)
	PoisonByte = byte(0xA5)
)

func (p *Pool) account(hit bool) {
	p.gets.Add(1)
	mPoolGets.Inc()
	if hit {
		p.hits.Add(1)
		mPoolHits.Inc()
	} else {
		p.misses.Add(1)
		mPoolMisses.Inc()
	}
}

// GetSel acquires a selection vector with capacity ≥ n.
func (p *Pool) GetSel(n int) []int32 {
	p.mu.Lock()
	s, hit := p.sel.get(n)
	p.mu.Unlock()
	p.account(hit)
	return s
}

// PutSel releases a selection vector.
func (p *Pool) PutSel(s []int32) {
	if s == nil {
		return
	}
	var poison func([]int32)
	if p.poison.Load() {
		poison = func(b []int32) {
			for i := range b {
				b[i] = PoisonSel
			}
		}
	}
	p.mu.Lock()
	ok := p.sel.put(s, poison)
	p.mu.Unlock()
	if ok {
		p.puts.Add(1)
		mPoolPuts.Inc()
	}
}

// GetBytes acquires a byte buffer with capacity ≥ n (group-key encoding).
func (p *Pool) GetBytes(n int) []byte {
	p.mu.Lock()
	s, hit := p.bytes.get(n)
	p.mu.Unlock()
	p.account(hit)
	return s
}

// PutBytes releases a byte buffer.
func (p *Pool) PutBytes(s []byte) {
	if s == nil {
		return
	}
	var poison func([]byte)
	if p.poison.Load() {
		poison = func(b []byte) {
			for i := range b {
				b[i] = PoisonByte
			}
		}
	}
	p.mu.Lock()
	ok := p.bytes.put(s, poison)
	p.mu.Unlock()
	if ok {
		p.puts.Add(1)
		mPoolPuts.Inc()
	}
}

// GetInts acquires an int64 scratch slice with capacity ≥ n.
func (p *Pool) GetInts(n int) []int64 {
	p.mu.Lock()
	s, hit := p.ints.get(n)
	p.mu.Unlock()
	p.account(hit)
	return s
}

// PutInts releases an int64 scratch slice.
func (p *Pool) PutInts(s []int64) {
	if s == nil {
		return
	}
	var poison func([]int64)
	if p.poison.Load() {
		poison = func(b []int64) {
			for i := range b {
				b[i] = PoisonInt
			}
		}
	}
	p.mu.Lock()
	ok := p.ints.put(s, poison)
	p.mu.Unlock()
	if ok {
		p.puts.Add(1)
		mPoolPuts.Inc()
	}
}

// GetVals acquires a boxed-value scratch slice with capacity ≥ n.
func (p *Pool) GetVals(n int) []value.Value {
	p.mu.Lock()
	s, hit := p.vals.get(n)
	p.mu.Unlock()
	p.account(hit)
	return s
}

// PutVals releases a boxed-value scratch slice.
func (p *Pool) PutVals(s []value.Value) {
	if s == nil {
		return
	}
	var poison func([]value.Value)
	if p.poison.Load() {
		poison = func(b []value.Value) {
			for i := range b {
				b[i] = value.NewString("batch-pool-poison")
			}
		}
	}
	p.mu.Lock()
	ok := p.vals.put(s, poison)
	p.mu.Unlock()
	if ok {
		p.puts.Add(1)
		mPoolPuts.Inc()
	}
}

// Stats snapshots the pool's counters.
func (p *Pool) Stats() Stats {
	return Stats{
		Gets:   p.gets.Load(),
		Puts:   p.puts.Load(),
		Hits:   p.hits.Load(),
		Misses: p.misses.Load(),
	}
}

// ClassCount reports how many free buffers of each kind sit in the class
// serving capacity n — size-class reuse accounting for tests.
func (p *Pool) ClassCount(n int) (sel, vals, bytes, ints int) {
	c := classFor(n)
	if c < 0 {
		return 0, 0, 0, 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.sel.free[c]), len(p.vals.free[c]), len(p.bytes.free[c]), len(p.ints.free[c])
}
