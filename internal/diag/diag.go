// Package diag defines the structured, positioned diagnostics that the
// percentage-query static analyzer ("pctlint") emits. It is a leaf package:
// sqlparse records source spans with its types, core's analyzer collects
// rule violations as Diagnostics instead of failing on the first, and
// internal/lint layers the warning/advisory checks on top.
//
// Every diagnostic carries a stable PCTxxx code so tools (and CI gates) can
// filter or suppress by class, a severity, a source span, a human message,
// and — where the analyzer can tell — a suggested fix.
package diag

import (
	"fmt"
	"sort"
	"strings"
)

// Pos is a source position (1-based line and column; Offset is the byte
// offset in the statement text, 0-based).
type Pos struct {
	Offset int `json:"offset"`
	Line   int `json:"line"`
	Col    int `json:"col"`
}

// IsZero reports whether the position is unset.
func (p Pos) IsZero() bool { return p.Line == 0 }

// String renders "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Span is a half-open source range [Start, End).
type Span struct {
	Start Pos `json:"start"`
	End   Pos `json:"end"`
}

// IsZero reports whether the span is unset.
func (s Span) IsZero() bool { return s.Start.IsZero() }

// String renders "line:col" or "line:col-line:col" for multi-position
// spans.
func (s Span) String() string {
	if s.IsZero() {
		return "-"
	}
	if s.End.IsZero() || s.End == s.Start {
		return s.Start.String()
	}
	return s.Start.String() + "-" + s.End.String()
}

// Severity classifies a diagnostic.
type Severity int

// Severities, from most to least severe. Errors reject the query (the
// planner would refuse it); warnings flag likely-silent wrong results (the
// paper's missing-rows and division-by-zero failure modes); advisories
// suggest better evaluation strategies or portability improvements.
const (
	Error Severity = iota
	Warning
	Advisory
)

// String names the severity.
func (s Severity) String() string {
	switch s {
	case Error:
		return "error"
	case Warning:
		return "warning"
	case Advisory:
		return "advisory"
	default:
		return fmt.Sprintf("Severity(%d)", int(s))
	}
}

// MarshalText implements encoding.TextMarshaler for JSON output.
func (s Severity) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// Diagnostic is one finding of the static analyzer.
type Diagnostic struct {
	// Code is the stable identifier, "PCT001"…; see internal/lint for the
	// full registry.
	Code string `json:"code"`
	// Severity is Error, Warning, or Advisory.
	Severity Severity `json:"severity"`
	// Span locates the finding in the statement text (zero when the
	// construct has no single location, e.g. a missing GROUP BY clause).
	Span Span `json:"span"`
	// Message is the human-readable description.
	Message string `json:"message"`
	// Fix, when nonempty, suggests a concrete change.
	Fix string `json:"fix,omitempty"`
}

// String renders "line:col: severity[CODE]: message".
func (d Diagnostic) String() string {
	var sb strings.Builder
	if !d.Span.IsZero() {
		sb.WriteString(d.Span.Start.String())
		sb.WriteString(": ")
	}
	sb.WriteString(d.Severity.String())
	sb.WriteString("[")
	sb.WriteString(d.Code)
	sb.WriteString("]: ")
	sb.WriteString(d.Message)
	return sb.String()
}

// List accumulates diagnostics. The zero value is ready to use.
type List struct {
	ds []Diagnostic
}

// Add appends a diagnostic.
func (l *List) Add(d Diagnostic) { l.ds = append(l.ds, d) }

// Addf appends a diagnostic with a formatted message.
func (l *List) Addf(code string, sev Severity, span Span, format string, args ...any) {
	l.Add(Diagnostic{Code: code, Severity: sev, Span: span, Message: fmt.Sprintf(format, args...)})
}

// Extend appends every diagnostic of ds.
func (l *List) Extend(ds []Diagnostic) { l.ds = append(l.ds, ds...) }

// All returns the accumulated diagnostics.
func (l *List) All() []Diagnostic { return l.ds }

// Len returns the number of diagnostics.
func (l *List) Len() int { return len(l.ds) }

// HasErrors reports whether any diagnostic has Error severity.
func (l *List) HasErrors() bool {
	for _, d := range l.ds {
		if d.Severity == Error {
			return true
		}
	}
	return false
}

// FirstError returns the first Error-severity diagnostic in insertion
// order, or nil.
func (l *List) FirstError() *Diagnostic {
	for i := range l.ds {
		if l.ds[i].Severity == Error {
			return &l.ds[i]
		}
	}
	return nil
}

// Sort orders diagnostics by source position (unpositioned last), then by
// severity, then by code. The sort is stable so insertion order breaks
// ties.
func Sort(ds []Diagnostic) {
	sort.SliceStable(ds, func(i, j int) bool {
		a, b := ds[i], ds[j]
		switch {
		case a.Span.IsZero() != b.Span.IsZero():
			return !a.Span.IsZero()
		case a.Span.Start.Line != b.Span.Start.Line:
			return a.Span.Start.Line < b.Span.Start.Line
		case a.Span.Start.Col != b.Span.Start.Col:
			return a.Span.Start.Col < b.Span.Start.Col
		case a.Severity != b.Severity:
			return a.Severity < b.Severity
		default:
			return a.Code < b.Code
		}
	})
}

// HasErrors reports whether any diagnostic in ds has Error severity.
func HasErrors(ds []Diagnostic) bool {
	for _, d := range ds {
		if d.Severity == Error {
			return true
		}
	}
	return false
}
