package diag

// Stable diagnostic codes. PCT0xx are error-class rule violations (the
// planner rejects the query); PCT1xx are warning/advisory-class findings
// from the linter's data-aware checks. Codes are append-only: a published
// code never changes meaning.
const (
	// CodeSyntax is a lexical or syntax error from the SQL parser.
	CodeSyntax = "PCT000"

	// CodeMixedClasses: Vpct combined with Hpct or a BY-aggregate in one
	// statement (listed as future work in the paper).
	CodeMixedClasses = "PCT001"
	// CodeHpctWithHagg: Hpct combined with other horizontal aggregations.
	CodeHpctWithHagg = "PCT002"
	// CodeMultiTable: percentage queries must read from a single table F.
	CodeMultiTable = "PCT003"
	// CodeHaving: HAVING with percentage aggregations.
	CodeHaving = "PCT004"
	// CodeDistinct: SELECT DISTINCT with percentage aggregations.
	CodeDistinct = "PCT005"
	// CodeSelectStar: SELECT * with percentage aggregations.
	CodeSelectStar = "PCT006"
	// CodeGroupByPosition: GROUP BY position out of range or not a column.
	CodeGroupByPosition = "PCT007"
	// CodeGroupByUnknown: GROUP BY names a column not in F.
	CodeGroupByUnknown = "PCT008"
	// CodeGroupByDuplicate: duplicate GROUP BY column.
	CodeGroupByDuplicate = "PCT009"
	// CodeUnknownTable: the FROM table does not exist in the catalog.
	CodeUnknownTable = "PCT010"
	// CodeNotGrouped: a bare select column does not appear in GROUP BY.
	CodeNotGrouped = "PCT011"
	// CodeWindowMix: an OVER window aggregate mixed with percentage
	// aggregations.
	CodeWindowMix = "PCT012"
	// CodeNestedAgg: a percentage aggregation nested inside an expression
	// instead of being a top-level select item.
	CodeNestedAgg = "PCT013"
	// CodeBadSelectItem: a select item that is neither a grouping column
	// nor an aggregate.
	CodeBadSelectItem = "PCT014"
	// CodeVpctNoGroupBy: Vpct without a GROUP BY clause.
	CodeVpctNoGroupBy = "PCT015"
	// CodeVpctNoArg: Vpct without an expression argument.
	CodeVpctNoArg = "PCT016"
	// CodeVpctBySubset: Vpct BY list not a proper subset of GROUP BY.
	CodeVpctBySubset = "PCT017"
	// CodeVpctByUnknown: Vpct BY column not one of the GROUP BY columns.
	CodeVpctByUnknown = "PCT018"
	// CodeByRequired: Hpct or a horizontal aggregate without a BY list.
	CodeByRequired = "PCT019"
	// CodeByNotDisjoint: Hpct/Hagg BY column also in GROUP BY.
	CodeByNotDisjoint = "PCT020"
	// CodeByUnknown: Hpct/Hagg BY column not a column of F.
	CodeByUnknown = "PCT021"
	// CodeByDuplicate: duplicate column in a BY list.
	CodeByDuplicate = "PCT022"
	// CodeAggNoArg: an aggregate that requires an argument lacks one.
	CodeAggNoArg = "PCT023"
	// CodeUnknownMeasure: a measure expression references an unknown
	// column.
	CodeUnknownMeasure = "PCT024"

	// CodeDivZeroRisk: a Vpct super-group total can be zero or NULL, so
	// percentages come out NULL (the paper's division-by-zero treatment).
	CodeDivZeroRisk = "PCT101"
	// CodeMissingRows: some grouping/subgrouping combinations are absent
	// from F, so result rows (Vpct) or cells (Hpct/Hagg) are silently
	// missing or NULL.
	CodeMissingRows = "PCT102"
	// CodeColumnExplosion: the number of distinct BY combinations exceeds
	// (or approaches) the DBMS column limit.
	CodeColumnExplosion = "PCT103"
	// CodeUnorderedResult: a horizontal query without ORDER BY has
	// implementation-defined row order.
	CodeUnorderedResult = "PCT104"
	// CodeStrategy: the cost-based advisor recommends non-default
	// evaluation strategy knobs for this query.
	CodeStrategy = "PCT105"
	// CodeContradiction: interval analysis proves the WHERE predicate set
	// unsatisfiable — the query returns no rows.
	CodeContradiction = "PCT106"
	// CodeTautology: a WHERE predicate is always true (or true for every
	// non-NULL value), so it constrains nothing.
	CodeTautology = "PCT107"
	// CodeZeroDenominator: the WHERE clause pins a Vpct/Hpct measure to
	// zero, so the percentage denominator is provably zero — the static
	// sharpening of PCT101.
	CodeZeroDenominator = "PCT108"
	// CodeCmpTypeMismatch: a comparison mixes incompatible types; mixed
	// kinds order by type tag, so the predicate never matches on value.
	CodeCmpTypeMismatch = "PCT109"
	// CodeVpctByDuplicate: duplicate dimension in a Vpct BY list (PCT022
	// covers horizontal BY lists as an error). For grouping-set queries the
	// check runs per lattice node: a BY dimension duplicated within one
	// grouping set fires even when other sets are fine.
	CodeVpctByDuplicate = "PCT110"
	// CodeEmptyGroupingSets: ROLLUP()/CUBE() with no dimensions, or
	// GROUPING SETS with no sets — the lattice would be empty (or only the
	// grand total), which is never what a cube query means.
	CodeEmptyGroupingSets = "PCT111"
	// CodeDuplicateGroupingSet: the same grouping set appears more than
	// once (explicitly, or via duplicate CUBE/ROLLUP dimensions). The
	// engine evaluates each distinct set once, so the duplicate adds no
	// rows and usually means a different set was intended.
	CodeDuplicateGroupingSet = "PCT112"
	// CodeGroupingMisuse: GROUPING() used outside a grouping-set query, or
	// naming a column that is not a lattice dimension.
	CodeGroupingMisuse = "PCT113"

	// PCT2xx are runtime lifecycle codes: they classify how a statement
	// ended when the query-governance layer stopped it, not what the linter
	// found in its text. The linter never emits them; the engine's typed
	// runtime errors carry them so dashboards can aggregate cancellations,
	// limit hits, and contained panics by code.

	// CodeCancelled: the statement's context was cancelled by the caller.
	CodeCancelled = "PCT200"
	// CodeDeadline: the statement exceeded its per-statement deadline.
	CodeDeadline = "PCT201"
	// CodeRowLimit: materialized rows exceeded Limits.MaxRows.
	CodeRowLimit = "PCT202"
	// CodeGroupLimit: aggregation groups exceeded Limits.MaxGroups.
	CodeGroupLimit = "PCT203"
	// CodePivotLimit: horizontal result columns exceeded
	// Limits.MaxPivotColumns (the paper's "exceeds the maximum number of
	// columns" failure mode, surfaced as a governed error).
	CodePivotLimit = "PCT204"
	// CodeByteBudget: approximate materialized bytes exceeded
	// Limits.MaxBytes.
	CodeByteBudget = "PCT205"
	// CodePanic: a panic inside statement execution was recovered and
	// contained; the error carries the panic value and stack.
	CodePanic = "PCT206"

	// PCT21x are admission-control codes from the multi-tenant server
	// front door (internal/server). Every one is retryable: the statement
	// was never executed, and the wire error carries a backoff hint.

	// CodeQueueFull: the tenant's admission queue is at MaxQueue; the
	// statement was shed before queuing.
	CodeQueueFull = "PCT210"
	// CodeTenantCap: the tenant is at its session or concurrent-statement
	// cap (with no queue configured); the connect or statement is refused.
	CodeTenantCap = "PCT211"
	// CodeDrainRejected: the server is draining; new connects and queued
	// statements are refused so in-flight work can finish.
	CodeDrainRejected = "PCT212"
	// CodeSessionTimeout: the session sat idle past the server's
	// per-session timeout and was closed.
	CodeSessionTimeout = "PCT213"
)

// CodeInfo describes one diagnostic code for the registry.
type CodeInfo struct {
	Code string
	// DefaultSeverity is the severity the analyzer assigns findings with
	// this code.
	DefaultSeverity Severity
	// Title is a one-line summary of what the code flags.
	Title string
	// Note ties the check to the paper's usage rules or failure modes.
	Note string
	// Runtime marks lifecycle codes (PCT2xx) attached to typed runtime
	// errors by the engine's governance layer. The linter never emits them,
	// so corpus-coverage tests skip them.
	Runtime bool
}

// Registry lists every diagnostic code in order. cmd/pctlint -codes prints
// it; the docs catalogue derives from the same data.
var Registry = []CodeInfo{
	{CodeSyntax, Error, "SQL syntax error", "the statement does not parse; nothing can be checked", false},
	{CodeMixedClasses, Error, "Vpct mixed with horizontal aggregations", "combining vertical and horizontal percentage aggregations is future work in the paper", false},
	{CodeHpctWithHagg, Error, "Hpct mixed with other horizontal aggregations", "one transposition layout per statement", false},
	{CodeMultiTable, Error, "percentage query reads more than one table", "the paper defines Vpct/Hpct over a single table or view F; pre-join first", false},
	{CodeHaving, Error, "HAVING with percentage aggregations", "percentages are computed by a generated multi-statement plan; HAVING has no defined slot", false},
	{CodeDistinct, Error, "SELECT DISTINCT with percentage aggregations", "DISTINCT would drop rows after percentages are computed", false},
	{CodeSelectStar, Error, "SELECT * with percentage aggregations", "the select list must name grouping columns and aggregates explicitly", false},
	{CodeGroupByPosition, Error, "invalid GROUP BY position", "a position must index a bare column select item", false},
	{CodeGroupByUnknown, Error, "GROUP BY column not in F", "grouping columns D1..Dk must be columns of F", false},
	{CodeGroupByDuplicate, Error, "duplicate GROUP BY column", "each grouping column may appear once", false},
	{CodeUnknownTable, Error, "unknown table", "F must exist in the catalog", false},
	{CodeNotGrouped, Error, "select column not in GROUP BY", "non-aggregated select items must be grouping columns", false},
	{CodeWindowMix, Error, "window aggregate mixed with percentage aggregation", "OVER(PARTITION BY) is the paper's comparison baseline, not composable with Vpct/Hpct", false},
	{CodeNestedAgg, Error, "percentage aggregation nested in expression", "Vpct/Hpct must be top-level select items", false},
	{CodeBadSelectItem, Error, "select item neither grouping column nor aggregate", "percentage queries follow the GROUP BY select-list rules", false},
	{CodeVpctNoGroupBy, Error, "Vpct without GROUP BY", "Vpct is a two-level aggregation; rule of Section 3.1", false},
	{CodeVpctNoArg, Error, "Vpct without an argument", "Vpct needs a measure expression to total", false},
	{CodeVpctBySubset, Error, "Vpct BY list not a proper subset of GROUP BY", "the BY clause can have as many as k-1 columns (Section 3.1)", false},
	{CodeVpctByUnknown, Error, "Vpct BY column not in GROUP BY", "BY columns select the subgrouping Dj+1..Dk out of the GROUP BY list", false},
	{CodeByRequired, Error, "Hpct/horizontal aggregate without BY", "the BY list defines the transposed columns (Section 3.2)", false},
	{CodeByNotDisjoint, Error, "BY column also in GROUP BY", "Hpct BY columns must be disjoint from the GROUP BY columns (Section 3.2)", false},
	{CodeByUnknown, Error, "BY column not in F", "subgrouping columns must be columns of F", false},
	{CodeByDuplicate, Error, "duplicate BY column", "each subgrouping column may appear once", false},
	{CodeAggNoArg, Error, "aggregate without required argument", "only count(*) may omit the argument", false},
	{CodeUnknownMeasure, Error, "measure references unknown column", "measure expressions resolve against the schema of F", false},
	{CodeDivZeroRisk, Warning, "division-by-zero risk: totals can be zero or NULL", "the paper's Section on correctness: zero totals make percentages NULL", false},
	{CodeMissingRows, Warning, "missing rows: absent grouping combinations", "the paper's missing-rows failure mode; pre-/post-processing treatments apply", false},
	{CodeColumnExplosion, Warning, "Hpct column explosion vs DBMS column limit", "Hpct creates one column per BY combination; beyond the limit the result is partitioned", false},
	{CodeUnorderedResult, Advisory, "result row order not guaranteed", "add ORDER BY on the grouping columns for stable output", false},
	{CodeStrategy, Advisory, "non-default evaluation strategy recommended", "the paper's Section 4 strategy recommendations, applied to live statistics", false},
	{CodeContradiction, Warning, "contradictory WHERE predicates (query returns no rows)", "interval analysis over the WHERE clause proves the predicate set unsatisfiable", false},
	{CodeTautology, Advisory, "tautological WHERE predicate (constrains nothing)", "the predicate accepts every value (or every non-NULL value); state the intent directly or drop it", false},
	{CodeZeroDenominator, Warning, "percentage denominator provably zero", "the WHERE clause pins the measure to 0, so every percentage is NULL — the static sharpening of PCT101", false},
	{CodeCmpTypeMismatch, Warning, "comparison between incompatible types", "mixed-kind values order by type tag, not content, so the predicate never matches on value", false},
	{CodeVpctByDuplicate, Warning, "duplicate Vpct BY dimension", "the duplicate changes nothing and usually means a different column was intended; PCT022 covers horizontal BY lists; for grouping-set queries the check runs per lattice node", false},
	{CodeEmptyGroupingSets, Error, "empty ROLLUP/CUBE/GROUPING SETS", "ROLLUP()/CUBE() with no dimensions or GROUPING SETS with no sets defines no lattice to evaluate", false},
	{CodeDuplicateGroupingSet, Warning, "duplicate grouping set", "each distinct grouping set is evaluated once; the duplicate adds no rows and usually means a different set was intended", false},
	{CodeGroupingMisuse, Error, "GROUPING() misuse", "GROUPING() is only defined for ROLLUP/CUBE/GROUPING SETS queries and must name lattice dimensions", false},
	{CodeCancelled, Error, "statement cancelled", "the caller cancelled the statement's context; partial work is discarded", true},
	{CodeDeadline, Error, "statement deadline exceeded", "the per-statement deadline (Limits.Timeout) elapsed mid-execution", true},
	{CodeRowLimit, Error, "materialized-row limit exceeded", "Limits.MaxRows bounds rows a statement may materialize, instead of exhausting memory", true},
	{CodeGroupLimit, Error, "group limit exceeded", "Limits.MaxGroups bounds distinct GROUP BY / pivot groups, the other unbounded hash state", true},
	{CodePivotLimit, Error, "pivot column limit exceeded", "Limits.MaxPivotColumns is a hard cap on horizontal result width — the paper's DBMS column-limit failure mode as a governed error", true},
	{CodeByteBudget, Error, "byte budget exceeded", "Limits.MaxBytes bounds approximate materialized bytes; parallel aggregation degrades to sequential under pressure before failing", true},
	{CodePanic, Error, "panic recovered in statement execution", "a worker or dispatch panic is contained into an error carrying the stack, keeping the engine usable", true},
	{CodeQueueFull, Error, "admission queue full", "the tenant's bounded admission queue is at MaxQueue; retry after the backoff hint instead of piling on", true},
	{CodeTenantCap, Error, "tenant cap reached", "the tenant is at its session or concurrent-statement cap; the connect or statement is refused, not queued", true},
	{CodeDrainRejected, Error, "server draining", "the server stopped admitting for graceful shutdown; in-flight statements finish, queued and new work is refused", true},
	{CodeSessionTimeout, Error, "session idle timeout", "the session sat idle past the server's per-session timeout and was closed; reconnect to continue", true},
}

// Lookup returns the registry entry for a code, if known.
func Lookup(code string) (CodeInfo, bool) {
	for _, ci := range Registry {
		if ci.Code == code {
			return ci, true
		}
	}
	return CodeInfo{}, false
}
