// Full fault-point × fault-kind matrix for the server chaos points:
// {server.accept, server.admit, server.dispatch} × {error, panic, delay}.
// Each cell asserts the typed outcome on the wire, that the fault actually
// fired, that no goroutine leaks, and that the server keeps serving after
// the fault is disarmed.
package server_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/diag"
	"repro/internal/leakcheck"
	"repro/internal/obs"
	"repro/internal/server"
)

// chaosKind is one column of the matrix: the armed fault plus per-point
// outcome checks.
type chaosKind struct {
	name  string
	fault chaos.Fault
}

func chaosKinds() []chaosKind {
	return []chaosKind{
		{"error", chaos.Fault{Err: errors.New("injected server fault")}},
		{"panic", chaos.Fault{Panic: "injected server panic"}},
		{"delay", chaos.Fault{Delay: 5 * time.Millisecond}},
	}
}

// assertServerHealthy proves the server still accepts, admits, and executes
// after a fault: fresh connection, round-trip query, clean close.
func assertServerHealthy(t *testing.T, srv *server.Server) {
	t.Helper()
	c, err := server.Dial(srv.Addr().String(), "matrix")
	if err != nil {
		t.Fatalf("post-fault dial: %v", err)
	}
	defer c.Close()
	res, err := c.Do(context.Background(), "SELECT count(*) FROM sales")
	if err != nil {
		t.Fatalf("post-fault query: %v", err)
	}
	if len(res.Rows) != 1 || res.Rows[0][0] != int64(10) {
		t.Fatalf("post-fault query rows = %v, want [[10]]", res.Rows)
	}
}

// TestChaosMatrixAccept: faults at server.accept hit before the handshake,
// so every outcome surfaces at Dial. A panic is contained to the one
// connection (counted, no frame); an error is a typed refusal frame; a
// delay only slows the handshake down.
func TestChaosMatrixAccept(t *testing.T) {
	for _, k := range chaosKinds() {
		t.Run(k.name, func(t *testing.T) {
			defer leakcheck.Check(t)()
			srv := startServer(t, demoDB(t), server.Config{})
			defer srv.Close()
			chaos.Enable()
			defer chaos.Disable()
			chaos.Arm(chaos.ServerAccept, k.fault)

			panicsBefore := obs.Default.Counter("server.conn_panics").Value()
			c, err := server.Dial(srv.Addr().String(), "victim")
			switch k.name {
			case "error":
				if err == nil || !strings.Contains(err.Error(), "injected") {
					t.Fatalf("dial err = %v, want injected refusal", err)
				}
			case "panic":
				if err == nil {
					t.Fatal("dial succeeded through a panicking accept path")
				}
				if got := obs.Default.Counter("server.conn_panics").Value(); got != panicsBefore+1 {
					t.Fatalf("server.conn_panics = %d, want %d", got, panicsBefore+1)
				}
			case "delay":
				if err != nil {
					t.Fatalf("dial through delay fault: %v", err)
				}
				defer c.Close()
				if err := c.Ping(context.Background()); err != nil {
					t.Fatalf("ping after delayed accept: %v", err)
				}
			}
			if chaos.Fired(chaos.ServerAccept) == 0 {
				t.Fatal("accept fault never fired")
			}
			chaos.Disarm(chaos.ServerAccept)
			assertServerHealthy(t, srv)
		})
	}
}

// TestChaosMatrixStatement: faults at server.admit and server.dispatch hit
// inside a live session's statement path. Errors come back as wire errors,
// panics are contained into PCT206 frames, delays succeed — and in every
// cell the session itself survives.
func TestChaosMatrixStatement(t *testing.T) {
	points := []string{chaos.ServerAdmit, chaos.ServerDispatch}
	for _, point := range points {
		for _, k := range chaosKinds() {
			t.Run(point+"/"+k.name, func(t *testing.T) {
				defer leakcheck.Check(t)()
				srv := startServer(t, demoDB(t), server.Config{})
				defer srv.Close()
				c := dial(t, srv, "victim")
				defer c.Close()
				chaos.Enable()
				defer chaos.Disable()
				chaos.Arm(point, k.fault)

				res, err := c.Do(context.Background(), "SELECT count(*) FROM sales")
				switch k.name {
				case "error":
					if err == nil || !strings.Contains(err.Error(), "injected") {
						t.Fatalf("statement err = %v, want injected fault", err)
					}
				case "panic":
					if got := pctCode(err); got != diag.CodePanic {
						t.Fatalf("statement code = %q (err %v), want %s", got, err, diag.CodePanic)
					}
				case "delay":
					if err != nil {
						t.Fatalf("statement through delay fault: %v", err)
					}
					if len(res.Rows) != 1 || res.Rows[0][0] != int64(10) {
						t.Fatalf("delayed statement rows = %v, want [[10]]", res.Rows)
					}
				}
				if chaos.Fired(point) == 0 {
					t.Fatalf("%s fault never fired", point)
				}

				// The session that took the fault keeps working once the
				// fault is disarmed — containment, not teardown.
				chaos.Disarm(point)
				if _, err := c.Do(context.Background(), "SELECT count(*) FROM daily"); err != nil {
					t.Fatalf("same session after fault: %v", err)
				}
				assertServerHealthy(t, srv)
			})
		}
	}
}
