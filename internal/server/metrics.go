package server

import "repro/internal/obs"

// The server's metric handles, resolved once. Counters cover the admission
// ledger (every statement is admitted or rejected with exactly one reason),
// lifecycle events, and containment; histograms cover where statements
// spend their time: waiting for admission vs executing.
var (
	mConnects        = obs.Default.Counter("server.connects")
	mSessions        = obs.Default.Gauge("server.sessions")
	mAdmitted        = obs.Default.Counter("server.admitted")
	mRejQueueFull    = obs.Default.Counter("server.rejected.queue_full")
	mRejTenantCap    = obs.Default.Counter("server.rejected.tenant_cap")
	mRejDrain        = obs.Default.Counter("server.rejected.drain")
	mSessionTimeouts = obs.Default.Counter("server.session_timeouts")
	mConnPanics      = obs.Default.Counter("server.conn_panics")
	mDrains          = obs.Default.Counter("server.drains")
	mQueueDepth      = obs.Default.Gauge("server.queue_depth")
	mQueueWaitNs     = obs.Default.Histogram("server.queue_wait_ns")
	mStatementNs     = obs.Default.Histogram("server.statement_ns")
)
