package server

import (
	"context"
	"sync/atomic"
	"testing"
	"time"
)

// Gate is a test-only dispatch gate: every admitted statement blocks in it
// until Release (or its context is cancelled), so tests can hold statements
// in flight deterministically — no sleeps standing in for "the query is
// still running".
type Gate struct {
	s       *Server
	ch      chan struct{}
	entered atomic.Int64
}

// NewGate installs a dispatch gate on a server. Safe to call while the
// server is accepting: the hook is swapped in atomically.
func NewGate(s *Server) *Gate {
	g := &Gate{s: s, ch: make(chan struct{})}
	hook := gateFunc(func(ctx context.Context) {
		g.entered.Add(1)
		select {
		case <-g.ch:
		case <-ctx.Done():
		}
	})
	s.gate.Store(&hook)
	return g
}

// Release opens the gate for every held and future statement.
func (g *Gate) Release() { close(g.ch) }

// WaitInFlight blocks until n statements have entered the gate.
func (g *Gate) WaitInFlight(t *testing.T, n int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if g.entered.Load() >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("gate: %d statements reached the gate, want %d", g.entered.Load(), n)
}

// WaitQueued blocks until n statements are waiting in admission.
func (g *Gate) WaitQueued(t *testing.T, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		g.s.adm.mu.Lock()
		depth := len(g.s.adm.waiters)
		g.s.adm.mu.Unlock()
		if depth >= n {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("gate: admission queue never reached depth %d", n)
}
