// White-box graceful-drain suite, driven by a deterministic fake clock so
// the drain-deadline branch runs without wall-clock sleeps: in-flight
// statements complete (or are governor-cancelled at the deadline), queued
// statements shed with PCT212, late connects are refused with PCT212, and
// no goroutine leaks across any interleaving.
package server

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/diag"
	"repro/internal/leakcheck"
	"repro/internal/workload"
	"repro/pctagg"
)

// fakeClock is a manual clock: Now is advanced explicitly and After timers
// fire from Advance, never from the wall.
type fakeClock struct {
	mu     sync.Mutex
	now    time.Time
	timers []*fakeTimer
}

type fakeTimer struct {
	at time.Time
	ch chan time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{now: time.Unix(1_700_000_000, 0)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *fakeClock) After(d time.Duration) <-chan time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	t := &fakeTimer{at: c.now.Add(d), ch: make(chan time.Time, 1)}
	if d <= 0 {
		t.ch <- c.now
		return t.ch
	}
	c.timers = append(c.timers, t)
	return t.ch
}

// Advance moves the clock and fires every timer that came due.
func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	kept := c.timers[:0]
	for _, t := range c.timers {
		if !t.at.After(c.now) {
			t.ch <- c.now
		} else {
			kept = append(kept, t)
		}
	}
	c.timers = kept
}

// drainHarness is one running server over the demo tables with a fake
// clock and an installed dispatch gate.
type drainHarness struct {
	srv   *Server
	clock *fakeClock
	gate  *Gate
}

func newDrainHarness(t *testing.T, cfg Config) *drainHarness {
	t.Helper()
	db := pctagg.Open()
	if _, err := db.Exec(workload.DemoSQL); err != nil {
		t.Fatal(err)
	}
	clk := newFakeClock()
	cfg.Addr = "127.0.0.1:0"
	cfg.Clock = clk
	srv := New(db, cfg)
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	return &drainHarness{srv: srv, clock: clk, gate: NewGate(srv)}
}

// waitState polls until the server reaches the wanted lifecycle state.
func (h *drainHarness) waitState(t *testing.T, want int32) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if h.srv.state.Load() == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("server state = %d, want %d", h.srv.state.Load(), want)
}

func errCode(err error) string {
	var coded interface{ Code() string }
	if errors.As(err, &coded) {
		return coded.Code()
	}
	return ""
}

// TestDrainLetsInflightFinish: a drain with a statement in flight and one
// queued behind it sheds the queued statement with PCT212, refuses a late
// connect with PCT212, lets the in-flight statement complete, and returns
// without ever reaching the deadline — no clock advance needed.
func TestDrainLetsInflightFinish(t *testing.T) {
	defer leakcheck.Check(t)()
	h := newDrainHarness(t, Config{
		Tenants: []TenantProfile{{Name: "a", MaxConcurrent: 1, MaxQueue: 4}},
	})
	defer h.srv.Close()
	c, err := Dial(h.srv.Addr().String(), "a")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	inflight := make(chan error, 1)
	go func() {
		_, err := c.Do(context.Background(), "SELECT count(*) FROM sales")
		inflight <- err
	}()
	h.gate.WaitInFlight(t, 1)

	queued := make(chan error, 1)
	go func() {
		_, err := c.Do(context.Background(), "SELECT count(*) FROM daily")
		queued <- err
	}()
	h.gate.WaitQueued(t, 1)

	done := make(chan error, 1)
	go func() { done <- h.srv.Shutdown() }()
	h.waitState(t, stateDraining)

	// The queued statement is shed with the typed drain code.
	if code := errCode(<-queued); code != diag.CodeDrainRejected {
		t.Fatalf("queued statement code = %q, want %s", code, diag.CodeDrainRejected)
	}
	// A late connect is refused with the same typed error, not dropped.
	if _, err := Dial(h.srv.Addr().String(), "a"); errCode(err) != diag.CodeDrainRejected {
		t.Fatalf("late connect err = %v, want %s", err, diag.CodeDrainRejected)
	}
	// A statement submitted on the live session during drain is refused too.
	if _, err := c.Do(context.Background(), "SELECT count(*) FROM daily"); errCode(err) != diag.CodeDrainRejected {
		t.Fatalf("late statement err = %v, want %s", err, diag.CodeDrainRejected)
	}

	// Release the gate: the in-flight statement completes successfully and
	// the drain finishes cleanly — the deadline branch never runs.
	h.gate.Release()
	if err := <-inflight; err != nil {
		t.Fatalf("in-flight statement during drain: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	h.waitState(t, stateStopped)
}

// TestDrainDeadlineCancelsInflight drives the deadline branch with the fake
// clock: a statement that never finishes on its own is cancelled through
// the governor (PCT200 on the wire) when the drain deadline passes.
func TestDrainDeadlineCancelsInflight(t *testing.T) {
	defer leakcheck.Check(t)()
	h := newDrainHarness(t, Config{DrainTimeout: 30 * time.Second})
	defer h.srv.Close()
	c, err := Dial(h.srv.Addr().String(), "a")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	inflight := make(chan error, 1)
	go func() {
		// Held at the gate until its context dies: a stand-in for a
		// statement that outlives any reasonable drain.
		_, err := c.Do(context.Background(), "SELECT count(*) FROM sales")
		inflight <- err
	}()
	h.gate.WaitInFlight(t, 1)

	done := make(chan error, 1)
	go func() { done <- h.srv.Shutdown() }()
	h.waitState(t, stateDraining)

	// Not enough: the statement must still be in flight.
	h.clock.Advance(29 * time.Second)
	select {
	case err := <-inflight:
		t.Fatalf("statement ended before the drain deadline: %v", err)
	case err := <-done:
		t.Fatalf("drain ended before its deadline: %v", err)
	case <-time.After(50 * time.Millisecond):
	}

	// Cross the deadline: the governor cancels the statement (PCT200 over
	// the wire) and Shutdown reports the forced cancellation.
	h.clock.Advance(2 * time.Second)
	if code := errCode(<-inflight); code != diag.CodeCancelled {
		t.Fatalf("in-flight statement code = %q, want %s", code, diag.CodeCancelled)
	}
	if err := <-done; err == nil {
		t.Fatal("Shutdown reported a clean drain after forcing cancellation")
	}
	h.waitState(t, stateStopped)
}

// TestShutdownIdempotent: concurrent Shutdown/Close calls share one drain
// and all return.
func TestShutdownIdempotent(t *testing.T) {
	defer leakcheck.Check(t)()
	h := newDrainHarness(t, Config{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			h.srv.Shutdown()
		}()
	}
	wg.Wait()
	if err := h.srv.Close(); err != nil {
		t.Fatalf("Close after Shutdown: %v", err)
	}
	h.waitState(t, stateStopped)
}

// TestCloseCutsDrainShort: a hard Close during a gated drain cancels the
// in-flight statement immediately instead of waiting out the deadline.
func TestCloseCutsDrainShort(t *testing.T) {
	defer leakcheck.Check(t)()
	h := newDrainHarness(t, Config{DrainTimeout: time.Hour})
	c, err := Dial(h.srv.Addr().String(), "a")
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	inflight := make(chan error, 1)
	go func() {
		_, err := c.Do(context.Background(), "SELECT count(*) FROM sales")
		inflight <- err
	}()
	h.gate.WaitInFlight(t, 1)

	done := make(chan error, 1)
	go func() { done <- h.srv.Shutdown() }()
	h.waitState(t, stateDraining)

	h.srv.Close()
	if code := errCode(<-inflight); code != diag.CodeCancelled {
		t.Fatalf("in-flight statement code = %q, want %s", code, diag.CodeCancelled)
	}
	<-done
	h.waitState(t, stateStopped)
}
